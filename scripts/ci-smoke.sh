#!/usr/bin/env bash
# CI smoke gate: build the self-timing harness and run it at the small
# problem size. The harness fails (non-zero exit) if any kernel's
# functional memory image diverges from the host reference, or if the
# 1-thread and N-thread runs are not bit-identical.
#
# On runners with >= 4 hardware threads the parallel speedup gate is
# enforced too (UECGRA_SMOKE_MIN_SPEEDUP, default 3.0 at 8 threads per
# the reproduction's target); on smaller machines it is report-only,
# since a 1-core container cannot physically speed anything up.
set -euo pipefail
cd "$(dirname "$0")/.."

CORES="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 1)"
if [ "${CORES}" -ge 4 ] && [ -z "${UECGRA_SMOKE_MIN_SPEEDUP:-}" ]; then
    export UECGRA_SMOKE_MIN_SPEEDUP="${UECGRA_SMOKE_REQUIRED_SPEEDUP:-3.0}"
fi

echo "ci-smoke: ${CORES} hardware threads," \
     "speedup gate: ${UECGRA_SMOKE_MIN_SPEEDUP:-disabled}"

cargo run --release -q -p uecgra-bench --bin smoke_timing -- quick

#!/usr/bin/env bash
# CI smoke gate: build the self-timing harness and run it at the small
# problem size. The harness fails (non-zero exit) if any kernel's
# functional memory image diverges from the host reference, if the
# 1-thread and N-thread runs are not bit-identical, or if the dense
# and event-driven fabric engines disagree.
#
# On runners with >= 4 hardware threads the parallel speedup gate is
# enforced too (UECGRA_SMOKE_MIN_SPEEDUP, default 3.0 at 8 threads per
# the reproduction's target); on smaller machines it is report-only,
# since a 1-core container cannot physically speed anything up.
#
# Usage: ci-smoke.sh [--engine dense|event|both]   (default both;
# forwarded to the harness's engine-timing leg — with `both` the
# event-engine speedup gate is enforced via
# UECGRA_SMOKE_MIN_ENGINE_SPEEDUP, default 1.3: the event engine
# typically lands near 1.8x on the quick kernel set, and the gate sits
# safely under the noise floor of a loaded CI runner).
set -euo pipefail
cd "$(dirname "$0")/.."

ENGINE="both"
while [ "$#" -gt 0 ]; do
    case "$1" in
        --engine) ENGINE="$2"; shift 2 ;;
        *) echo "ci-smoke: unknown argument $1" >&2; exit 2 ;;
    esac
done

CORES="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 1)"
if [ "${CORES}" -ge 4 ] && [ -z "${UECGRA_SMOKE_MIN_SPEEDUP:-}" ]; then
    export UECGRA_SMOKE_MIN_SPEEDUP="${UECGRA_SMOKE_REQUIRED_SPEEDUP:-3.0}"
fi
if [ "${ENGINE}" = "both" ] && [ -z "${UECGRA_SMOKE_MIN_ENGINE_SPEEDUP:-}" ]; then
    export UECGRA_SMOKE_MIN_ENGINE_SPEEDUP="1.3"
fi

echo "ci-smoke: ${CORES} hardware threads," \
     "speedup gate: ${UECGRA_SMOKE_MIN_SPEEDUP:-disabled}," \
     "engines: ${ENGINE} (event gate: ${UECGRA_SMOKE_MIN_ENGINE_SPEEDUP:-disabled})"

cargo run --release -q -p uecgra-bench --bin smoke_timing -- quick --engine "${ENGINE}"

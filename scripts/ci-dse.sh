#!/usr/bin/env bash
# CI gate for the design-space explorer (DESIGN.md §13). Checks, in
# order:
#
# 1. **Cold/warm byte-identity** — `uecgra dse --json` against a
#    persistent evaluation cache must produce byte-identical reports
#    on a cold (empty) and a warm (fully populated) cache, and the
#    cache file itself must be byte-stable across a rewrite.
# 2. **Memoization win** — the warm Table II sweep must cost at most
#    UECGRA_SMOKE_MAX_WARM_RATIO (default 0.2) of the cold one, via
#    the smoke harness's dse leg (which also enforces cold/warm value
#    identity and the frontier-dominates-greedy gate on every kernel).
# 3. **Thread-count determinism** — the full `dse_sweep` report must
#    be byte-identical between UECGRA_THREADS=1 and 8.
# 4. **Schema round-trip** — the schema-v3 dse reports must survive
#    `uecgra check-report` (parse + canonical re-render, byte compare).
#
# Usage: ci-dse.sh [--bench-out BENCH_dse.json]  (forwarded to the
# smoke harness's dse leg so CI can archive the measurements).
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_OUT=""
while [ "$#" -gt 0 ]; do
    case "$1" in
        --bench-out) BENCH_OUT="$2"; shift 2 ;;
        *) echo "ci-dse: unknown argument $1" >&2; exit 2 ;;
    esac
done

cargo build --release -q -p uecgra-core -p uecgra-bench \
    --bin uecgra --bin dse_sweep --bin smoke_timing

SCRATCH="$(mktemp -d)"
trap 'rm -rf "${SCRATCH}"' EXIT

echo "== CLI: cold vs warm cache, byte compare"
cat > "${SCRATCH}/accumulate.loop" <<'EOF'
array src @ 16;
array dst @ 128;
for i in 0..32 carry (acc = 0) {
    acc = acc + src[i];
    dst[i] = acc;
}
EOF
./target/release/uecgra dse "${SCRATCH}/accumulate.loop" \
    --cache "${SCRATCH}/cache.json" --json "${SCRATCH}/cold.json"
cp "${SCRATCH}/cache.json" "${SCRATCH}/cache-cold.json"
./target/release/uecgra dse "${SCRATCH}/accumulate.loop" \
    --cache "${SCRATCH}/cache.json" --json "${SCRATCH}/warm.json"
cmp "${SCRATCH}/cold.json" "${SCRATCH}/warm.json"
cmp "${SCRATCH}/cache.json" "${SCRATCH}/cache-cold.json"
./target/release/uecgra check-report "${SCRATCH}/cold.json"

echo "== sweep: 1 vs 8 threads, byte compare"
UECGRA_THREADS=1 ./target/release/dse_sweep --json "${SCRATCH}/sweep-t1.json"
UECGRA_THREADS=8 ./target/release/dse_sweep --json "${SCRATCH}/sweep-t8.json"
cmp "${SCRATCH}/sweep-t1.json" "${SCRATCH}/sweep-t8.json"
./target/release/uecgra check-report "${SCRATCH}/sweep-t1.json"

echo "== sweep: memoization + dominance + trajectory gates"
export UECGRA_SMOKE_MAX_WARM_RATIO="${UECGRA_SMOKE_MAX_WARM_RATIO:-0.2}"
if [ -n "${BENCH_OUT}" ]; then
    ./target/release/smoke_timing dse --bench-out "${BENCH_OUT}"
else
    ./target/release/smoke_timing dse
fi

echo "ci-dse: all gates passed"

//! Workspace facade: re-exports each layer of the UE-CGRA reproduction.
//!
//! See `README.md` and `DESIGN.md` for the architecture overview and
//! `EXPERIMENTS.md` for the reproduction results.

pub use uecgra_clock as clock;
pub use uecgra_compiler as compiler;
pub use uecgra_core as core_pipeline;
pub use uecgra_dfg as dfg;
pub use uecgra_model as model;
pub use uecgra_rtl as rtl;
pub use uecgra_system as system;
pub use uecgra_vlsi as vlsi;

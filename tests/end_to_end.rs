//! Cross-crate integration tests: the complete reproduction pipeline
//! from kernel construction through compilation, cycle-level
//! execution, energy accounting, and the scalar-core comparison.

use uecgra_core::energy::cgra_energy;
use uecgra_core::experiments::{run_all_policies, table3_row, SEED};
use uecgra_core::pipeline::{run_kernel, Policy};
use uecgra_dfg::kernels;
use uecgra_model::{DfgSimulator, SimConfig};
use uecgra_system::programs;
use uecgra_vlsi::GatingConfig;

/// Every layer of the stack agrees on functional results: host
/// reference, analytical simulator, cycle-level fabric, and RV32IM
/// core all produce identical memory images.
#[test]
fn four_way_functional_agreement() {
    for k in [
        kernels::llist::build_with_hops(40),
        kernels::dither::build_with_pixels(40),
        kernels::susan::build_with_iters(40),
        kernels::fft::build_with_group(40),
        kernels::bf::build_with_rounds(16),
    ] {
        let reference = k.reference_memory();

        // Analytical discrete-event model.
        let config = SimConfig {
            marker: Some(k.iter_marker),
            ..SimConfig::default()
        };
        let modes = vec![uecgra_clock::VfMode::Nominal; k.dfg.node_count()];
        let analytical = DfgSimulator::new(&k.dfg, modes, k.mem.clone(), config).run();
        assert_eq!(analytical.mem, reference, "{}: analytical model", k.name);

        // Cycle-level fabric.
        let fabric = run_kernel(&k, Policy::ECgra, SEED).expect("compiles");
        assert_eq!(
            &fabric.activity.mem[..reference.len()],
            &reference[..],
            "{}: fabric",
            k.name
        );

        // Scalar core.
        let core = programs::run_on_core(k.name, k.iters, k.mem.clone()).expect("runs");
        assert_eq!(core.mem, reference, "{}: RV32IM core", k.name);
    }
}

/// DVFS must never change results, only timing (the latency-
/// insensitivity guarantee of elastic design).
#[test]
fn dvfs_preserves_results_across_seeds() {
    let k = kernels::dither::build_with_pixels(40);
    let reference = k.reference_memory();
    for seed in [1u64, 7, 23] {
        for policy in Policy::ALL {
            let run = run_kernel(&k, policy, seed)
                .unwrap_or_else(|e| panic!("seed {seed} {}: {e}", policy.label()));
            assert_eq!(
                &run.activity.mem[..reference.len()],
                &reference[..],
                "seed {seed}, {}",
                policy.label()
            );
        }
    }
}

/// The analytical model's throughput tracks the fabric's within the
/// routing gap: analytical II (no routing) ≤ fabric II ≤ 3× analytical.
#[test]
fn analytical_and_fabric_throughput_are_consistent() {
    for k in [
        kernels::llist::build_with_hops(60),
        kernels::dither::build_with_pixels(60),
        kernels::bf::build_with_rounds(24),
    ] {
        let config = SimConfig {
            marker: Some(k.iter_marker),
            ..SimConfig::default()
        };
        let modes = vec![uecgra_clock::VfMode::Nominal; k.dfg.node_count()];
        let analytical = DfgSimulator::new(&k.dfg, modes, k.mem.clone(), config).run();
        let a_ii = analytical.steady_ii(8).expect("analytical steady state");

        let fabric = run_kernel(&k, Policy::ECgra, SEED).expect("compiles");
        let f_ii = fabric.ii();
        assert!(
            f_ii >= a_ii - 0.7,
            "{}: fabric II {f_ii} beats the logical bound {a_ii}",
            k.name
        );
        assert!(
            f_ii <= 3.0 * a_ii,
            "{}: routing gap too large ({f_ii} vs {a_ii})",
            k.name
        );
    }
}

/// Headline reproduction: fine-grain DVFS buys ~1.5× speedup on the
/// recurrence-bound kernels and EOpt trades nothing for efficiency on
/// the restable ones.
#[test]
fn headline_results_hold() {
    let k = kernels::dither::build_with_pixels(120);
    let runs = run_all_policies(&k, SEED).expect("runs");
    let row = runs.table2_row();
    assert!(row.popt_perf > 1.35, "POpt perf {}", row.popt_perf);
    assert!(row.eopt_eff > 1.1, "EOpt eff {}", row.eopt_eff);
    assert!(
        (row.eopt_perf - 1.0).abs() < 0.1,
        "EOpt perf {}",
        row.eopt_perf
    );

    // System level: the CGRA must beat the scalar core on dither.
    let t3 = table3_row(&runs);
    let popt = t3
        .relative
        .iter()
        .find(|(p, _, _)| *p == Policy::UePerfOpt)
        .expect("POpt row");
    assert!(popt.1 > 1.2, "system-level POpt speedup {}", popt.1);
}

/// Energy accounting is internally consistent: per-iteration energies
/// scale with iteration count, and total power stays in a plausible
/// milliwatt range for a 28 nm 8×8 array.
#[test]
fn energy_accounting_sanity() {
    let small = kernels::susan::build_with_iters(60);
    let large = kernels::susan::build_with_iters(240);
    let e_small = cgra_energy(
        &run_kernel(&small, Policy::ECgra, SEED).expect("runs"),
        GatingConfig::FULL,
    );
    let e_large = cgra_energy(
        &run_kernel(&large, Policy::ECgra, SEED).expect("runs"),
        GatingConfig::FULL,
    );
    let ratio = e_large.per_iteration_pj() / e_small.per_iteration_pj();
    assert!(
        (ratio - 1.0).abs() < 0.15,
        "per-iteration energy not scale-invariant: {ratio}"
    );
    for e in [&e_small, &e_large] {
        let mw = e.average_power_mw();
        assert!(mw > 0.2 && mw < 30.0, "implausible power {mw} mW");
    }
}

/// Different placement seeds change the mapping but not the verdicts.
#[test]
fn verdicts_are_seed_robust() {
    let k = kernels::llist::build_with_hops(80);
    for seed in [1u64, 7, 13] {
        let e = run_kernel(&k, Policy::ECgra, seed).expect("runs");
        let p = run_kernel(&k, Policy::UePerfOpt, seed).expect("runs");
        let speedup = e.ii() / p.ii();
        assert!(
            speedup > 1.2 && speedup < 1.6,
            "seed {seed}: POpt speedup {speedup}"
        );
    }
}

/// The extension kernels (beyond the paper's five) run correctly
/// through the full pipeline under every policy.
#[test]
fn extension_kernels_run_end_to_end() {
    for k in kernels::extra::extra_kernels(48) {
        let reference = k.reference_memory();
        for policy in Policy::ALL {
            let run = run_kernel(&k, policy, SEED)
                .unwrap_or_else(|e| panic!("{} {}: {e}", k.name, policy.label()));
            assert_eq!(
                &run.activity.mem[..reference.len()],
                &reference[..],
                "{} under {}",
                k.name,
                policy.label()
            );
        }
        // POpt accelerates all three.
        let e = run_kernel(&k, Policy::ECgra, SEED).unwrap();
        let p = run_kernel(&k, Policy::UePerfOpt, SEED).unwrap();
        let speedup = e.ii() / p.ii();
        assert!(speedup > 1.1, "{}: POpt speedup {speedup:.2}", k.name);
    }
}

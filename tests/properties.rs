//! Property-based tests over the reproduction's core invariants.

use proptest::prelude::*;
use uecgra_clock::{ClockSet, Suppressor, VfMode};
use uecgra_compiler::bitstream::{Bypass, Dir, OperandSel, PeConfig, PeRole};
use uecgra_dfg::{kernels, Op, PE_OPS};
use uecgra_model::{DfgSimulator, SimConfig, StopReason};
use uecgra_system::{AluOp, BranchOp, Instr, MulOp};

fn arb_mode() -> impl Strategy<Value = VfMode> {
    prop_oneof![
        Just(VfMode::Rest),
        Just(VfMode::Nominal),
        Just(VfMode::Sprint)
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// THE elastic-design theorem: any per-node DVFS assignment and any
    /// queue depth >= 2 produce the same results as the host reference —
    /// only timing changes. (Depth 1 also works for correctness; it is
    /// included.)
    #[test]
    fn any_dvfs_assignment_preserves_dither(
        mode_pool in proptest::collection::vec(arb_mode(), 64),
        depth in 1usize..4,
    ) {
        let k = kernels::dither::build_with_pixels(24);
        let modes = mode_pool[..k.dfg.node_count()].to_vec();
        let config = SimConfig {
            marker: Some(k.iter_marker),
            queue_capacity: depth,
            ..SimConfig::default()
        };
        let r = DfgSimulator::new(&k.dfg, modes, k.mem.clone(), config).run();
        prop_assert_eq!(r.stop, StopReason::Quiesced);
        prop_assert_eq!(r.mem, k.reference_memory());
    }

    /// Ditto for the pointer chase, whose control flow is fully
    /// data-dependent.
    #[test]
    fn any_dvfs_assignment_preserves_llist(
        mode_pool in proptest::collection::vec(arb_mode(), 64),
    ) {
        let k = kernels::llist::build_with_hops(16);
        let modes = mode_pool[..k.dfg.node_count()].to_vec();
        let config = SimConfig {
            marker: Some(k.iter_marker),
            ..SimConfig::default()
        };
        let r = DfgSimulator::new(&k.dfg, modes, k.mem.clone(), config).run();
        prop_assert_eq!(r.stop, StopReason::Quiesced);
        prop_assert_eq!(r.mem, k.reference_memory());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// ALU op algebra: comparison pairs are complementary, add/sub
    /// invert, copies project.
    #[test]
    fn op_eval_algebra(a in any::<u32>(), b in any::<u32>()) {
        prop_assert_eq!(Op::Eq.eval(a, b) ^ Op::Ne.eval(a, b), 1);
        prop_assert_eq!(Op::Lt.eval(a, b) ^ Op::Geq.eval(a, b), 1);
        prop_assert_eq!(Op::Gt.eval(a, b) ^ Op::Leq.eval(a, b), 1);
        prop_assert_eq!(Op::Sub.eval(Op::Add.eval(a, b), b), a);
        prop_assert_eq!(Op::Cp0.eval(a, b), a);
        prop_assert_eq!(Op::Cp1.eval(a, b), b);
        prop_assert_eq!(Op::Xor.eval(Op::Xor.eval(a, b), b), a);
    }

    /// Every RV32IM instruction the assembler can emit round-trips
    /// through its binary encoding.
    #[test]
    fn isa_encode_decode_roundtrip(
        rd in 0u8..32, rs1 in 0u8..32, rs2 in 0u8..32,
        imm in -2048i32..=2047,
        shamt in 0i32..32,
        branch_off in -2048i32..=2047,
        alu_idx in 0usize..10,
        mul_idx in 0usize..8,
        br_idx in 0usize..6,
    ) {
        let alu = [AluOp::Add, AluOp::Sub, AluOp::Sll, AluOp::Slt, AluOp::Sltu,
                   AluOp::Xor, AluOp::Srl, AluOp::Sra, AluOp::Or, AluOp::And][alu_idx];
        let mul = [MulOp::Mul, MulOp::Mulh, MulOp::Mulhsu, MulOp::Mulhu,
                   MulOp::Div, MulOp::Divu, MulOp::Rem, MulOp::Remu][mul_idx];
        let br = [BranchOp::Eq, BranchOp::Ne, BranchOp::Lt, BranchOp::Ge,
                  BranchOp::Ltu, BranchOp::Geu][br_idx];
        let mut cases = vec![
            Instr::Op { op: alu, rd, rs1, rs2 },
            Instr::MulDiv { op: mul, rd, rs1, rs2 },
            Instr::Branch { op: br, rs1, rs2, offset: branch_off & !1 },
            Instr::Lw { rd, rs1, offset: imm },
            Instr::Sw { rs1, rs2, offset: imm },
            Instr::Jal { rd, offset: (imm & !1) * 2 },
        ];
        if alu != AluOp::Sub {
            let i = if matches!(alu, AluOp::Sll | AluOp::Srl | AluOp::Sra) { shamt } else { imm };
            cases.push(Instr::OpImm { op: alu, rd, rs1, imm: i });
        }
        for instr in cases {
            prop_assert_eq!(Instr::decode(instr.encode()), Ok(instr));
        }
    }

    /// PE configuration words round-trip through packing.
    #[test]
    fn bitstream_pack_unpack_roundtrip(
        op_idx in 0usize..PE_OPS.len(),
        route_only in any::<bool>(),
        op0 in 0u32..7, op1 in 0u32..7,
        t_mask in any::<[bool; 4]>(),
        f_mask in any::<[bool; 4]>(),
        bp0 in proptest::option::of((0u32..4, any::<[bool; 4]>())),
        bp1 in proptest::option::of((0u32..4, any::<[bool; 4]>())),
        clk in arb_mode(),
        reg_write in any::<bool>(),
    ) {
        let dir = |c: u32| Dir::ALL[c as usize];
        let sel = |c: u32| match c {
            0..=3 => OperandSel::Queue(dir(c)),
            4 => OperandSel::Reg,
            5 => OperandSel::Const,
            _ => OperandSel::None,
        };
        let cfg = PeConfig {
            role: if route_only { PeRole::RouteOnly } else { PeRole::Compute(PE_OPS[op_idx]) },
            operands: [sel(op0), sel(op1)],
            alu_true_mask: t_mask,
            alu_false_mask: f_mask,
            bypass: [
                bp0.map(|(s, m)| Bypass { src: dir(s), dst_mask: m }),
                bp1.map(|(s, m)| Bypass { src: dir(s), dst_mask: m }),
            ],
            clk,
            reg_write,
            constant: None,
            init: None,
        };
        prop_assert_eq!(PeConfig::unpack(cfg.pack()), cfg);
    }

    /// Any valid clock plan passes the STA cross-product check, and
    /// the suppressor invariant holds: a token aged one receiver
    /// period is always readable at the next receiver edge.
    #[test]
    fn clock_plans_verify_and_suppressor_is_live(
        sprint in 1u32..5,
        nom_mult in 1u32..4,
        rest_mult in 1u32..4,
    ) {
        let nominal = sprint * nom_mult;
        let rest = nominal * rest_mult;
        let clocks = ClockSet::new([rest, nominal, sprint]).expect("ordered divisors");
        let report = uecgra_clock::sta::verify_all(&clocks);
        prop_assert!(report.all_clean(), "{}", report);

        // Liveness: for every src→dst pair, a token written at any src
        // edge is readable at some dst edge within one hyperperiod +
        // one dst period.
        let h = clocks.hyperperiod();
        for src in VfMode::ALL {
            for dst in VfMode::ALL {
                let sup = Suppressor::new(&clocks, src, dst);
                for t_w in clocks.rising_edges(src) {
                    let mut t = clocks.next_rising(dst, t_w);
                    let deadline = t_w + h + clocks.period(dst);
                    while !sup.allows(t, t_w) {
                        t = clocks.next_rising(dst, t);
                        prop_assert!(t <= deadline, "{src}->{dst} token starved");
                    }
                }
            }
        }
    }

    /// Source/sink bookkeeping: a chain fed by a limited source
    /// delivers exactly that many tokens.
    #[test]
    fn source_limit_is_exact(limit in 1u64..40, n in 1usize..6) {
        use uecgra_dfg::kernels::synthetic;
        let s = synthetic::chain(n);
        let config = SimConfig {
            marker: Some(s.iter_marker),
            source_limit: Some(limit),
            ..SimConfig::default()
        };
        let modes = vec![VfMode::Nominal; s.dfg.node_count()];
        let r = DfgSimulator::new(&s.dfg, modes, vec![], config).run();
        prop_assert_eq!(r.stop, StopReason::Quiesced);
        prop_assert_eq!(r.iterations(), limit);
    }
}

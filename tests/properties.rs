//! Property-based tests over the reproduction's core invariants.

use uecgra_clock::{ClockSet, Suppressor, VfMode};
use uecgra_compiler::bitstream::{Bypass, Dir, OperandSel, PeConfig, PeRole};
use uecgra_dfg::{kernels, Op, PE_OPS};
use uecgra_model::{DfgSimulator, SimConfig, StopReason};
use uecgra_system::{AluOp, BranchOp, Instr, MulOp};
use uecgra_util::{check::forall, SplitMix64};

fn arb_mode(rng: &mut SplitMix64) -> VfMode {
    *rng.pick(&VfMode::ALL)
}

/// THE elastic-design theorem: any per-node DVFS assignment and any
/// queue depth >= 2 produce the same results as the host reference —
/// only timing changes. (Depth 1 also works for correctness; it is
/// included.)
#[test]
fn any_dvfs_assignment_preserves_dither() {
    forall(24, |rng| {
        let mode_pool: Vec<VfMode> = (0..64).map(|_| arb_mode(rng)).collect();
        let depth = 1 + rng.range(3);
        let k = kernels::dither::build_with_pixels(24);
        let modes = mode_pool[..k.dfg.node_count()].to_vec();
        let config = SimConfig {
            marker: Some(k.iter_marker),
            queue_capacity: depth,
            ..SimConfig::default()
        };
        let r = DfgSimulator::new(&k.dfg, modes, k.mem.clone(), config).run();
        assert_eq!(r.stop, StopReason::Quiesced);
        assert_eq!(r.mem, k.reference_memory());
    });
}

/// Ditto for the pointer chase, whose control flow is fully
/// data-dependent.
#[test]
fn any_dvfs_assignment_preserves_llist() {
    forall(24, |rng| {
        let mode_pool: Vec<VfMode> = (0..64).map(|_| arb_mode(rng)).collect();
        let k = kernels::llist::build_with_hops(16);
        let modes = mode_pool[..k.dfg.node_count()].to_vec();
        let config = SimConfig {
            marker: Some(k.iter_marker),
            ..SimConfig::default()
        };
        let r = DfgSimulator::new(&k.dfg, modes, k.mem.clone(), config).run();
        assert_eq!(r.stop, StopReason::Quiesced);
        assert_eq!(r.mem, k.reference_memory());
    });
}

/// ALU op algebra: comparison pairs are complementary, add/sub
/// invert, copies project.
#[test]
fn op_eval_algebra() {
    forall(256, |rng| {
        let a = rng.next_u32();
        let b = rng.next_u32();
        assert_eq!(Op::Eq.eval(a, b) ^ Op::Ne.eval(a, b), 1);
        assert_eq!(Op::Lt.eval(a, b) ^ Op::Geq.eval(a, b), 1);
        assert_eq!(Op::Gt.eval(a, b) ^ Op::Leq.eval(a, b), 1);
        assert_eq!(Op::Sub.eval(Op::Add.eval(a, b), b), a);
        assert_eq!(Op::Cp0.eval(a, b), a);
        assert_eq!(Op::Cp1.eval(a, b), b);
        assert_eq!(Op::Xor.eval(Op::Xor.eval(a, b), b), a);
    });
}

/// Every RV32IM instruction the assembler can emit round-trips
/// through its binary encoding.
#[test]
fn isa_encode_decode_roundtrip() {
    forall(256, |rng| {
        let rd = rng.range(32) as u8;
        let rs1 = rng.range(32) as u8;
        let rs2 = rng.range(32) as u8;
        let imm = rng.range(4096) as i32 - 2048;
        let shamt = rng.range(32) as i32;
        let branch_off = rng.range(4096) as i32 - 2048;
        let alu = *rng.pick(&[
            AluOp::Add,
            AluOp::Sub,
            AluOp::Sll,
            AluOp::Slt,
            AluOp::Sltu,
            AluOp::Xor,
            AluOp::Srl,
            AluOp::Sra,
            AluOp::Or,
            AluOp::And,
        ]);
        let mul = *rng.pick(&[
            MulOp::Mul,
            MulOp::Mulh,
            MulOp::Mulhsu,
            MulOp::Mulhu,
            MulOp::Div,
            MulOp::Divu,
            MulOp::Rem,
            MulOp::Remu,
        ]);
        let br = *rng.pick(&[
            BranchOp::Eq,
            BranchOp::Ne,
            BranchOp::Lt,
            BranchOp::Ge,
            BranchOp::Ltu,
            BranchOp::Geu,
        ]);
        let mut cases = vec![
            Instr::Op {
                op: alu,
                rd,
                rs1,
                rs2,
            },
            Instr::MulDiv {
                op: mul,
                rd,
                rs1,
                rs2,
            },
            Instr::Branch {
                op: br,
                rs1,
                rs2,
                offset: branch_off & !1,
            },
            Instr::Lw {
                rd,
                rs1,
                offset: imm,
            },
            Instr::Sw {
                rs1,
                rs2,
                offset: imm,
            },
            Instr::Jal {
                rd,
                offset: (imm & !1) * 2,
            },
        ];
        if alu != AluOp::Sub {
            let i = if matches!(alu, AluOp::Sll | AluOp::Srl | AluOp::Sra) {
                shamt
            } else {
                imm
            };
            cases.push(Instr::OpImm {
                op: alu,
                rd,
                rs1,
                imm: i,
            });
        }
        for instr in cases {
            assert_eq!(Instr::decode(instr.encode()), Ok(instr));
        }
    });
}

/// PE configuration words round-trip through packing.
#[test]
fn bitstream_pack_unpack_roundtrip() {
    forall(256, |rng| {
        let dir = |c: usize| Dir::ALL[c];
        let sel = |c: usize| match c {
            0..=3 => OperandSel::Queue(dir(c)),
            4 => OperandSel::Reg,
            5 => OperandSel::Const,
            _ => OperandSel::None,
        };
        let mask = |rng: &mut SplitMix64| [rng.bool(), rng.bool(), rng.bool(), rng.bool()];
        let bypass = |rng: &mut SplitMix64| {
            if rng.bool() {
                let src = dir(rng.range(4));
                let dst_mask = [rng.bool(), rng.bool(), rng.bool(), rng.bool()];
                Some(Bypass { src, dst_mask })
            } else {
                None
            }
        };
        let cfg = PeConfig {
            role: if rng.bool() {
                PeRole::RouteOnly
            } else {
                PeRole::Compute(PE_OPS[rng.range(PE_OPS.len())])
            },
            operands: [sel(rng.range(7)), sel(rng.range(7))],
            alu_true_mask: mask(rng),
            alu_false_mask: mask(rng),
            bypass: [bypass(rng), bypass(rng)],
            clk: arb_mode(rng),
            reg_write: rng.bool(),
            constant: None,
            init: None,
        };
        assert_eq!(PeConfig::unpack(cfg.pack()), cfg);
    });
}

/// Any valid clock plan passes the STA cross-product check, and
/// the suppressor invariant holds: a token aged one receiver
/// period is always readable at the next receiver edge.
#[test]
fn clock_plans_verify_and_suppressor_is_live() {
    forall(256, |rng| {
        let sprint = 1 + rng.range(4) as u32;
        let nominal = sprint * (1 + rng.range(3) as u32);
        let rest = nominal * (1 + rng.range(3) as u32);
        let clocks = ClockSet::new([rest, nominal, sprint]).expect("ordered divisors");
        let report = uecgra_clock::sta::verify_all(&clocks);
        assert!(report.all_clean(), "{report}");

        // Liveness: for every src→dst pair, a token written at any src
        // edge is readable at some dst edge within one hyperperiod +
        // one dst period.
        let h = clocks.hyperperiod();
        for src in VfMode::ALL {
            for dst in VfMode::ALL {
                let sup = Suppressor::new(&clocks, src, dst);
                for t_w in clocks.rising_edges(src) {
                    let mut t = clocks.next_rising(dst, t_w);
                    let deadline = t_w + h + clocks.period(dst);
                    while !sup.allows(t, t_w) {
                        t = clocks.next_rising(dst, t);
                        assert!(t <= deadline, "{src}->{dst} token starved");
                    }
                }
            }
        }
    });
}

/// Source/sink bookkeeping: a chain fed by a limited source
/// delivers exactly that many tokens.
#[test]
fn source_limit_is_exact() {
    forall(256, |rng| {
        use uecgra_dfg::kernels::synthetic;
        let limit = rng.range_u64(1, 40);
        let n = 1 + rng.range(5);
        let s = synthetic::chain(n);
        let config = SimConfig {
            marker: Some(s.iter_marker),
            source_limit: Some(limit),
            ..SimConfig::default()
        };
        let modes = vec![VfMode::Nominal; s.dfg.node_count()];
        let r = DfgSimulator::new(&s.dfg, modes, vec![], config).run();
        assert_eq!(r.stop, StopReason::Quiesced);
        assert_eq!(r.iterations(), limit);
    });
}

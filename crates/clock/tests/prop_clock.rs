//! Property tests over the ratiochronous clocking substrate.

use uecgra_clock::{
    classify_crossing, sta, ClockDivider, ClockSet, ClockSwitcher, Suppressor, VfMode,
};
use uecgra_util::{check::forall, SplitMix64};

/// A random valid clock plan: rest and nominal periods are integer
/// multiples of the sprint period.
fn arb_clockset(rng: &mut SplitMix64) -> ClockSet {
    let sprint = 1 + rng.range(5) as u32;
    let nominal = sprint * (1 + rng.range(4) as u32);
    let rest = nominal * (1 + rng.range(4) as u32);
    ClockSet::new([rest, nominal, sprint]).expect("ordered")
}

#[test]
fn hyperperiod_is_common_multiple() {
    forall(96, |rng| {
        let clocks = arb_clockset(rng);
        let h = clocks.hyperperiod();
        for m in VfMode::ALL {
            assert_eq!(h % clocks.period(m), 0);
            assert!(clocks.is_rising(m, 0));
            assert!(clocks.is_rising(m, h));
        }
    });
}

#[test]
fn next_and_last_rising_bracket_time() {
    forall(96, |rng| {
        let clocks = arb_clockset(rng);
        let t = rng.range_u64(0, 200);
        for m in VfMode::ALL {
            let last = clocks.last_rising(m, t);
            let next = clocks.next_rising(m, t);
            assert!(last <= t && t < next);
            assert_eq!(next - last, clocks.period(m));
            assert!(clocks.is_rising(m, last));
            assert!(clocks.is_rising(m, next));
        }
    });
}

#[test]
fn dividers_always_hold_fifty_percent_duty() {
    for div in 1u32..16 {
        let d = ClockDivider::new(div);
        let period = 2 * u64::from(div);
        let high = (0..period * 8).filter(|&t| d.level_at(t)).count() as u64;
        assert_eq!(high * 2, period * 8);
    }
}

#[test]
fn classify_margins_never_exceed_source_period_plus_budget() {
    forall(96, |rng| {
        let clocks = arb_clockset(rng);
        for src in VfMode::ALL {
            for dst in VfMode::ALL {
                for e in classify_crossing(&clocks, src, dst) {
                    assert!(e.margin >= 1);
                    assert!(
                        e.margin <= clocks.period(src) + clocks.period(dst),
                        "{src}->{dst}: margin {} too large",
                        e.margin
                    );
                    assert_eq!(e.safe, e.margin >= clocks.period(dst));
                }
            }
        }
    });
}

#[test]
fn sta_is_clean_for_every_plan() {
    forall(96, |rng| {
        let clocks = arb_clockset(rng);
        let report = sta::verify_all(&clocks);
        assert!(report.all_clean(), "{report}");
    });
}

#[test]
fn suppressor_never_allows_under_aged_unsafe_tokens() {
    forall(96, |rng| {
        let clocks = arb_clockset(rng);
        for src in VfMode::ALL {
            for dst in VfMode::ALL {
                let sup = Suppressor::new(&clocks, src, dst);
                let h = clocks.hyperperiod();
                for k in 1..=(2 * h / clocks.period(dst)) {
                    let capture = k * clocks.period(dst);
                    // A token written on the immediately preceding source
                    // edge: allowed iff its age covers one receiver period.
                    let written = clocks.last_rising(src, capture.saturating_sub(1));
                    let aged = capture - written >= clocks.period(dst);
                    let d = sup.decide(capture, written);
                    if d.allow {
                        assert!(
                            aged || !d.edge_unsafe,
                            "{src}->{dst}@{capture}: fresh token crossed an unsafe edge"
                        );
                    } else {
                        assert!(!aged, "{src}->{dst}@{capture}: aged token blocked");
                    }
                }
            }
        }
    });
}

#[test]
fn suppressor_decisions_are_monotonic_across_capture_edges() {
    // Once a token is allowed at some capture edge it stays allowed at
    // every later one: successive receiver edges are one period apart,
    // so a token that crossed (fresh on a safe edge or aged anywhere)
    // is aged at least a full period by the next edge. Without this, a
    // consumer that stalled for unrelated reasons could lose a token
    // it had already been granted.
    forall(96, |rng| {
        let clocks = arb_clockset(rng);
        for src in VfMode::ALL {
            for dst in VfMode::ALL {
                let sup = Suppressor::new(&clocks, src, dst);
                let p = clocks.period(dst);
                let written = clocks.last_rising(src, rng.range_u64(0, 2 * clocks.hyperperiod()));
                let first = clocks.next_rising(dst, written);
                let mut granted = false;
                for k in 0..8 {
                    let capture = first + k * p;
                    let allow = sup.allows(capture, written);
                    assert!(
                        allow || !granted,
                        "{src}->{dst}: token written {written} allowed then revoked at {capture}"
                    );
                    granted |= allow;
                }
            }
        }
    });
}

#[test]
fn suppressor_grants_every_token_within_two_receiver_periods() {
    // Liveness (no token loss through suppression): whatever the
    // crossing, a written token is allowed no later than the first
    // capture edge at which it has aged one receiver period — at most
    // two receiver periods after the write. The traditional
    // all-unsafe-edge suppressor relies on exactly this bound.
    forall(96, |rng| {
        let clocks = arb_clockset(rng);
        for src in VfMode::ALL {
            for dst in VfMode::ALL {
                let sup = Suppressor::new(&clocks, src, dst);
                let p = clocks.period(dst);
                let written = clocks.last_rising(src, rng.range_u64(0, 2 * clocks.hyperperiod()));
                let mut capture = clocks.next_rising(dst, written);
                while !sup.allows(capture, written) {
                    capture += p;
                    assert!(
                        capture - written <= 2 * p,
                        "{src}->{dst}: token written {written} still suppressed at {capture}"
                    );
                }
            }
        }
    });
}

#[test]
fn switcher_never_glitches_under_random_sequences() {
    forall(96, |rng| {
        let n_sel = 1 + rng.range(5);
        let selections: Vec<usize> = (0..n_sel).map(|_| rng.range(3)).collect();
        let gaps: Vec<u32> = (0..6).map(|_| 4 + rng.range(36) as u32).collect();
        let clocks = ClockSet::default();
        let mut sw = ClockSwitcher::new(&clocks, VfMode::Nominal);
        let mut wave = Vec::new();
        for (i, &sel) in selections.iter().enumerate() {
            sw.select(VfMode::ALL[sel]);
            for _ in 0..gaps[i % gaps.len()] {
                wave.push(sw.tick());
            }
        }
        for _ in 0..40 {
            wave.push(sw.tick());
        }
        let (highs, lows) = uecgra_clock::switcher::pulse_widths(&wave);
        // The narrowest legal pulse is the sprint half-period (2 half
        // ticks).
        assert!(highs.iter().all(|&w| w >= 2), "runt high: {highs:?}");
        assert!(lows.iter().all(|&w| w >= 2), "runt low: {lows:?}");
    });
}

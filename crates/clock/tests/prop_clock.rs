//! Property tests over the ratiochronous clocking substrate.

use proptest::prelude::*;
use uecgra_clock::{
    classify_crossing, sta, ClockDivider, ClockSet, ClockSwitcher, Suppressor, VfMode,
};

fn arb_clockset() -> impl Strategy<Value = ClockSet> {
    (1u32..6, 1u32..5, 1u32..5).prop_map(|(sprint, nm, rm)| {
        let nominal = sprint * nm;
        let rest = nominal * rm;
        ClockSet::new([rest, nominal, sprint]).expect("ordered")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn hyperperiod_is_common_multiple(clocks in arb_clockset()) {
        let h = clocks.hyperperiod();
        for m in VfMode::ALL {
            prop_assert_eq!(h % clocks.period(m), 0);
            prop_assert!(clocks.is_rising(m, 0));
            prop_assert!(clocks.is_rising(m, h));
        }
    }

    #[test]
    fn next_and_last_rising_bracket_time(clocks in arb_clockset(), t in 0u64..200) {
        for m in VfMode::ALL {
            let last = clocks.last_rising(m, t);
            let next = clocks.next_rising(m, t);
            prop_assert!(last <= t && t < next);
            prop_assert_eq!(next - last, clocks.period(m));
            prop_assert!(clocks.is_rising(m, last));
            prop_assert!(clocks.is_rising(m, next));
        }
    }

    #[test]
    fn dividers_always_hold_fifty_percent_duty(div in 1u32..16) {
        let d = ClockDivider::new(div);
        let period = 2 * u64::from(div);
        let high = (0..period * 8).filter(|&t| d.level_at(t)).count() as u64;
        prop_assert_eq!(high * 2, period * 8);
    }

    #[test]
    fn classify_margins_never_exceed_source_period_plus_budget(clocks in arb_clockset()) {
        for src in VfMode::ALL {
            for dst in VfMode::ALL {
                for e in classify_crossing(&clocks, src, dst) {
                    prop_assert!(e.margin >= 1);
                    prop_assert!(
                        e.margin <= clocks.period(src) + clocks.period(dst),
                        "{src}->{dst}: margin {} too large",
                        e.margin
                    );
                    prop_assert_eq!(e.safe, e.margin >= clocks.period(dst));
                }
            }
        }
    }

    #[test]
    fn sta_is_clean_for_every_plan(clocks in arb_clockset()) {
        let report = sta::verify_all(&clocks);
        prop_assert!(report.all_clean(), "{}", report);
    }

    #[test]
    fn suppressor_never_allows_under_aged_unsafe_tokens(clocks in arb_clockset()) {
        for src in VfMode::ALL {
            for dst in VfMode::ALL {
                let sup = Suppressor::new(&clocks, src, dst);
                let h = clocks.hyperperiod();
                for k in 1..=(2 * h / clocks.period(dst)) {
                    let capture = k * clocks.period(dst);
                    // A token written on the immediately preceding source
                    // edge: allowed iff its age covers one receiver period.
                    let written = clocks.last_rising(src, capture.saturating_sub(1));
                    let aged = capture - written >= clocks.period(dst);
                    let d = sup.decide(capture, written);
                    if d.allow {
                        prop_assert!(
                            aged || !d.edge_unsafe,
                            "{src}->{dst}@{capture}: fresh token crossed an unsafe edge"
                        );
                    } else {
                        prop_assert!(!aged, "{src}->{dst}@{capture}: aged token blocked");
                    }
                }
            }
        }
    }

    #[test]
    fn switcher_never_glitches_under_random_sequences(
        selections in proptest::collection::vec(0usize..3, 1..6),
        gaps in proptest::collection::vec(4u32..40, 6),
    ) {
        let clocks = ClockSet::default();
        let mut sw = ClockSwitcher::new(&clocks, VfMode::Nominal);
        let mut wave = Vec::new();
        for (i, &sel) in selections.iter().enumerate() {
            sw.select(VfMode::ALL[sel]);
            for _ in 0..gaps[i % gaps.len()] {
                wave.push(sw.tick());
            }
        }
        for _ in 0..40 {
            wave.push(sw.tick());
        }
        let (highs, lows) = uecgra_clock::switcher::pulse_widths(&wave);
        // The narrowest legal pulse is the sprint half-period (2 half
        // ticks).
        prop_assert!(highs.iter().all(|&w| w >= 2), "runt high: {highs:?}");
        prop_assert!(lows.iter().all(|&w| w >= 2), "runt low: {lows:?}");
    }
}

//! Glitchless clock switcher.
//!
//! Each PE selects one of the three divided clocks through a
//! traditional glitchless clock switcher (paper Section V): the old
//! clock is gated off at a falling edge, and the new clock is enabled
//! at one of its own falling edges, so the output never produces a
//! runt pulse. This model produces the output waveform level-by-level
//! (in half PLL ticks, like [`crate::ClockDivider`]) and is checked by
//! tests for minimum pulse widths.

use crate::divider::ClockDivider;
use crate::ratio::{ClockSet, VfMode};

/// A glitchless switcher over the three divided clocks of a
/// [`ClockSet`].
///
/// # Examples
///
/// ```
/// use uecgra_clock::{ClockSet, ClockSwitcher, VfMode};
///
/// let mut sw = ClockSwitcher::new(&ClockSet::default(), VfMode::Nominal);
/// sw.select(VfMode::Sprint);
/// // Advance a few half ticks; the output continues glitch-free.
/// for _ in 0..64 { sw.tick(); }
/// assert_eq!(sw.selected(), VfMode::Sprint);
/// ```
#[derive(Debug, Clone)]
pub struct ClockSwitcher {
    dividers: [ClockDivider; 3],
    active: VfMode,
    pending: Option<VfMode>,
    /// Handoff state: once the old clock has been gated at a low level,
    /// we wait for the new clock's low level before enabling it.
    draining: bool,
    half_tick: u64,
    last_level: bool,
}

impl ClockSwitcher {
    /// Create a switcher initially selecting `initial`.
    pub fn new(clocks: &ClockSet, initial: VfMode) -> ClockSwitcher {
        let dividers = [
            ClockDivider::new(clocks.divisor(VfMode::Rest)),
            ClockDivider::new(clocks.divisor(VfMode::Nominal)),
            ClockDivider::new(clocks.divisor(VfMode::Sprint)),
        ];
        ClockSwitcher {
            dividers,
            active: initial,
            pending: None,
            draining: false,
            half_tick: 0,
            last_level: false,
        }
    }

    /// The clock currently driving the output (or being handed off to).
    pub fn selected(&self) -> VfMode {
        self.pending.unwrap_or(self.active)
    }

    /// Request a switch to `mode`. Takes effect glitchlessly over the
    /// next few cycles. Reselecting the currently active clock with no
    /// switch in flight is a no-op; *canceling* a switch in flight
    /// still goes through the full low-low handoff so the output never
    /// produces a runt pulse.
    pub fn select(&mut self, mode: VfMode) {
        if mode == self.active && self.pending.is_none() && !self.draining {
            return;
        }
        self.pending = Some(mode);
    }

    /// Advance one half PLL tick and return the output clock level
    /// during that half tick.
    pub fn tick(&mut self) -> bool {
        let t = self.half_tick;
        self.half_tick += 1;
        let active_level = self.dividers[self.active as usize].level_at(t);

        let out = if let Some(next) = self.pending {
            if !self.draining {
                // Phase 1: keep driving the old clock until it is low.
                if active_level {
                    true
                } else {
                    self.draining = true;
                    false
                }
            } else {
                // Phase 2: output held low until the new clock is also
                // low, then hand over (its next rising edge is clean).
                let next_level = self.dividers[next as usize].level_at(t);
                if next_level {
                    false
                } else {
                    self.active = next;
                    self.pending = None;
                    self.draining = false;
                    false
                }
            }
        } else {
            active_level
        };
        self.last_level = out;
        out
    }

    /// Current half-tick position.
    pub fn position(&self) -> u64 {
        self.half_tick
    }
}

/// Measure all pulse widths (runs of equal level) in a waveform.
/// Returns `(high_widths, low_widths)`, ignoring the first and last
/// (possibly truncated) runs.
pub fn pulse_widths(wave: &[bool]) -> (Vec<usize>, Vec<usize>) {
    let mut highs = Vec::new();
    let mut lows = Vec::new();
    let mut runs: Vec<(bool, usize)> = Vec::new();
    for &level in wave {
        match runs.last_mut() {
            Some((l, n)) if *l == level => *n += 1,
            _ => runs.push((level, 1)),
        }
    }
    if runs.len() > 2 {
        for &(level, n) in &runs[1..runs.len() - 1] {
            if level {
                highs.push(n);
            } else {
                lows.push(n);
            }
        }
    }
    (highs, lows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clocks() -> ClockSet {
        ClockSet::default()
    }

    #[test]
    fn steady_state_follows_selected_divider() {
        let mut sw = ClockSwitcher::new(&clocks(), VfMode::Nominal);
        let wave: Vec<bool> = (0..24).map(|_| sw.tick()).collect();
        let d = ClockDivider::new(3);
        let expect: Vec<bool> = (0..24).map(|t| d.level_at(t)).collect();
        assert_eq!(wave, expect);
    }

    #[test]
    fn switch_is_glitch_free() {
        // Switch nominal → sprint mid-stream; no pulse may be narrower
        // than the sprint half-period (2 half ticks).
        let mut sw = ClockSwitcher::new(&clocks(), VfMode::Nominal);
        let mut wave = Vec::new();
        for _ in 0..10 {
            wave.push(sw.tick());
        }
        sw.select(VfMode::Sprint);
        for _ in 0..60 {
            wave.push(sw.tick());
        }
        let (highs, lows) = pulse_widths(&wave);
        assert!(highs.iter().all(|&w| w >= 2), "runt high pulse: {highs:?}");
        assert!(lows.iter().all(|&w| w >= 2), "runt low pulse: {lows:?}");
        assert_eq!(sw.selected(), VfMode::Sprint);
    }

    #[test]
    fn switch_to_rest_and_back() {
        let mut sw = ClockSwitcher::new(&clocks(), VfMode::Sprint);
        let mut wave = Vec::new();
        for _ in 0..8 {
            wave.push(sw.tick());
        }
        sw.select(VfMode::Rest);
        for _ in 0..40 {
            wave.push(sw.tick());
        }
        sw.select(VfMode::Sprint);
        for _ in 0..40 {
            wave.push(sw.tick());
        }
        let (highs, lows) = pulse_widths(&wave);
        assert!(highs.iter().all(|&w| w >= 2), "{highs:?}");
        assert!(lows.iter().all(|&w| w >= 2), "{lows:?}");
    }

    #[test]
    fn after_switch_output_matches_new_divider_phase() {
        // Once handed off, the output must re-join the globally aligned
        // divider waveform (clocks stay phase-aligned to the PLL).
        let mut sw = ClockSwitcher::new(&clocks(), VfMode::Nominal);
        for _ in 0..6 {
            sw.tick();
        }
        sw.select(VfMode::Sprint);
        let mut wave = Vec::new();
        for _ in 0..40 {
            wave.push(sw.tick());
        }
        // Find handoff completion, then compare to the aligned div-2.
        let d = ClockDivider::new(2);
        let offset = 6;
        // After at most one rest-hyperperiod of settling, levels match.
        let settled = 20;
        for (i, &level) in wave.iter().enumerate().skip(settled) {
            let t = (offset + i) as u64;
            assert_eq!(level, d.level_at(t), "at half tick {t}");
        }
    }

    #[test]
    fn reselecting_active_clock_is_noop() {
        let mut sw = ClockSwitcher::new(&clocks(), VfMode::Nominal);
        sw.select(VfMode::Nominal);
        let wave: Vec<bool> = (0..12).map(|_| sw.tick()).collect();
        let d = ClockDivider::new(3);
        let expect: Vec<bool> = (0..12).map(|t| d.level_at(t)).collect();
        assert_eq!(wave, expect);
    }

    #[test]
    fn pulse_width_helper() {
        let wave = [true, true, false, false, false, true, true, true, false];
        let (h, l) = pulse_widths(&wave);
        assert_eq!(h, vec![3]);
        assert_eq!(l, vec![3]);
    }
}

//! Rational clock sets.
//!
//! The UE-CGRA derives all PE clocks from one PLL by integer division
//! (paper Section V). The published design point divides by
//! **2 / 3 / 9**: sprint = PLL/2, nominal = PLL/3, rest = PLL/9, giving
//! sprint = 1.5× and rest = 1/3× the nominal frequency — the
//! "2-to-3-to-9" ratio the paper selects after quantizing the SPICE-fit
//! voltages (0.61 V, 0.90 V, 1.23 V).

use std::fmt;

/// The three DVFS operating modes of a UE-CGRA PE.
///
/// # Examples
///
/// ```
/// use uecgra_clock::VfMode;
/// assert_eq!(VfMode::Sprint.speedup_over_nominal(&Default::default()), 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum VfMode {
    /// Low voltage / low frequency (0.61 V, 1/3× nominal).
    Rest,
    /// The nominal operating point (0.90 V, 750 MHz in TSMC 28).
    #[default]
    Nominal,
    /// High voltage / high frequency (1.23 V, 1.5× nominal).
    Sprint,
}

impl VfMode {
    /// All three modes, slowest first.
    pub const ALL: [VfMode; 3] = [VfMode::Rest, VfMode::Nominal, VfMode::Sprint];

    /// Frequency multiplier relative to nominal in `clocks`.
    pub fn speedup_over_nominal(self, clocks: &ClockSet) -> f64 {
        clocks.frequency_ratio(self, VfMode::Nominal)
    }

    /// Node latency in nominal-cycle units (1.0 at nominal; 3.0 at rest
    /// and 2/3 at sprint for the default 2:3:9 clock set).
    pub fn latency_in_nominal_cycles(self, clocks: &ClockSet) -> f64 {
        1.0 / self.speedup_over_nominal(clocks)
    }
}

impl fmt::Display for VfMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VfMode::Rest => "rest",
            VfMode::Nominal => "nominal",
            VfMode::Sprint => "sprint",
        };
        f.write_str(s)
    }
}

/// A set of three rational clocks derived from one PLL by integer
/// division, indexed by [`VfMode`].
///
/// Time is measured in PLL ticks. A divided clock with divisor `d` has
/// rising edges at `t = 0, d, 2d, …` (after the two-phase clock reset
/// aligns all dividers, Section V).
///
/// # Examples
///
/// ```
/// use uecgra_clock::{ClockSet, VfMode};
///
/// let clocks = ClockSet::default(); // the paper's 2-to-3-to-9
/// assert_eq!(clocks.divisor(VfMode::Sprint), 2);
/// assert_eq!(clocks.hyperperiod(), 18);
/// assert!(clocks.is_rising(VfMode::Nominal, 6));
/// assert!(!clocks.is_rising(VfMode::Rest, 6));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ClockSet {
    divisors: [u32; 3],
}

impl Default for ClockSet {
    /// The paper's published "2-to-3-to-9" design point.
    fn default() -> Self {
        ClockSet::new([9, 3, 2]).expect("default divisors are valid")
    }
}

impl ClockSet {
    /// Create a clock set from divisors `[rest, nominal, sprint]`.
    ///
    /// # Errors
    ///
    /// Returns an error if any divisor is zero or the ordering is not
    /// `rest ≥ nominal ≥ sprint` (rest must be the slowest clock).
    pub fn new(divisors: [u32; 3]) -> Result<ClockSet, RatioError> {
        if divisors.contains(&0) {
            return Err(RatioError::ZeroDivisor);
        }
        if !(divisors[0] >= divisors[1] && divisors[1] >= divisors[2]) {
            return Err(RatioError::Unordered(divisors));
        }
        Ok(ClockSet { divisors })
    }

    /// The PLL divisor of `mode`'s clock.
    pub fn divisor(&self, mode: VfMode) -> u32 {
        self.divisors[mode as usize]
    }

    /// Clock period of `mode` in PLL ticks.
    pub fn period(&self, mode: VfMode) -> u64 {
        u64::from(self.divisor(mode))
    }

    /// `f(a) / f(b)` as an exact ratio of divisors.
    pub fn frequency_ratio(&self, a: VfMode, b: VfMode) -> f64 {
        f64::from(self.divisor(b)) / f64::from(self.divisor(a))
    }

    /// Least common multiple of the three periods: the interval after
    /// which all edge relationships repeat.
    pub fn hyperperiod(&self) -> u64 {
        self.divisors
            .iter()
            .fold(1u64, |acc, &d| lcm(acc, u64::from(d)))
    }

    /// True if `mode`'s clock has a rising edge at PLL tick `t`.
    pub fn is_rising(&self, mode: VfMode, t: u64) -> bool {
        t.is_multiple_of(self.period(mode))
    }

    /// The first rising edge of `mode` strictly after PLL tick `t`.
    pub fn next_rising(&self, mode: VfMode, t: u64) -> u64 {
        let p = self.period(mode);
        (t / p + 1) * p
    }

    /// The most recent rising edge of `mode` at or before PLL tick `t`.
    pub fn last_rising(&self, mode: VfMode, t: u64) -> u64 {
        let p = self.period(mode);
        (t / p) * p
    }

    /// Number of rising edges of `mode` in the inclusive PLL-tick
    /// range `[0, through]`.
    ///
    /// Every divided clock has an edge at `t = 0` (the two-phase clock
    /// reset aligns all dividers), so the count is never zero. This is
    /// the closed form the event-driven fabric engine uses to account
    /// for clock-domain edges over a counted range without sweeping
    /// every tick.
    ///
    /// # Examples
    ///
    /// ```
    /// use uecgra_clock::{ClockSet, VfMode};
    /// let clocks = ClockSet::default();
    /// // Nominal (period 3) edges at 0, 3, 6 within [0, 7].
    /// assert_eq!(clocks.rising_edges_through(VfMode::Nominal, 7), 3);
    /// ```
    pub fn rising_edges_through(&self, mode: VfMode, through: u64) -> u64 {
        through / self.period(mode) + 1
    }

    /// Rising edges of `mode` within one hyperperiod.
    pub fn rising_edges(&self, mode: VfMode) -> Vec<u64> {
        (0..self.hyperperiod())
            .step_by(self.period(mode) as usize)
            .collect()
    }

    /// Nominal cycles elapsed in `t` PLL ticks.
    pub fn pll_to_nominal_cycles(&self, t: u64) -> f64 {
        t as f64 / self.period(VfMode::Nominal) as f64
    }
}

/// Errors from [`ClockSet::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RatioError {
    /// A divisor was zero.
    ZeroDivisor,
    /// Divisors were not ordered `rest ≥ nominal ≥ sprint`.
    Unordered([u32; 3]),
}

impl fmt::Display for RatioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RatioError::ZeroDivisor => write!(f, "clock divisor must be nonzero"),
            RatioError::Unordered(d) => {
                write!(f, "divisors {d:?} must satisfy rest >= nominal >= sprint")
            }
        }
    }
}

impl std::error::Error for RatioError {}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: u64, b: u64) -> u64 {
    a / gcd(a, b) * b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_2_3_9() {
        let c = ClockSet::default();
        assert_eq!(c.divisor(VfMode::Rest), 9);
        assert_eq!(c.divisor(VfMode::Nominal), 3);
        assert_eq!(c.divisor(VfMode::Sprint), 2);
        assert_eq!(c.hyperperiod(), 18);
    }

    #[test]
    fn frequency_ratios_match_paper() {
        let c = ClockSet::default();
        assert_eq!(c.frequency_ratio(VfMode::Sprint, VfMode::Nominal), 1.5);
        assert!((c.frequency_ratio(VfMode::Rest, VfMode::Nominal) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(VfMode::Rest.latency_in_nominal_cycles(&c), 3.0);
        assert!((VfMode::Sprint.latency_in_nominal_cycles(&c) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn rising_edge_schedule() {
        let c = ClockSet::default();
        assert_eq!(
            c.rising_edges(VfMode::Sprint),
            vec![0, 2, 4, 6, 8, 10, 12, 14, 16]
        );
        assert_eq!(c.rising_edges(VfMode::Nominal), vec![0, 3, 6, 9, 12, 15]);
        assert_eq!(c.rising_edges(VfMode::Rest), vec![0, 9]);
    }

    #[test]
    fn next_and_last_rising() {
        let c = ClockSet::default();
        assert_eq!(c.next_rising(VfMode::Nominal, 0), 3);
        assert_eq!(c.next_rising(VfMode::Nominal, 2), 3);
        assert_eq!(c.next_rising(VfMode::Nominal, 3), 6);
        assert_eq!(c.last_rising(VfMode::Nominal, 5), 3);
        assert_eq!(c.last_rising(VfMode::Nominal, 6), 6);
    }

    #[test]
    fn edge_counts_match_enumeration() {
        for divs in [[9, 3, 2], [8, 4, 2], [6, 3, 3], [12, 4, 3], [1, 1, 1]] {
            let c = ClockSet::new(divs).unwrap();
            for m in VfMode::ALL {
                for through in 0..60u64 {
                    let brute = (0..=through).filter(|&t| c.is_rising(m, t)).count() as u64;
                    assert_eq!(
                        c.rising_edges_through(m, through),
                        brute,
                        "{m} through {through} for {divs:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn rejects_bad_divisors() {
        assert_eq!(ClockSet::new([9, 3, 0]), Err(RatioError::ZeroDivisor));
        assert!(matches!(
            ClockSet::new([2, 3, 9]),
            Err(RatioError::Unordered(_))
        ));
    }

    #[test]
    fn all_edges_align_at_hyperperiod() {
        for divs in [[9, 3, 2], [8, 4, 2], [6, 3, 3], [12, 4, 3]] {
            let c = ClockSet::new(divs).unwrap();
            let h = c.hyperperiod();
            for m in VfMode::ALL {
                assert!(c.is_rising(m, 0));
                assert!(
                    c.is_rising(m, h),
                    "{m} must tick at hyperperiod for {divs:?}"
                );
            }
        }
    }

    #[test]
    fn nominal_cycle_conversion() {
        let c = ClockSet::default();
        assert_eq!(c.pll_to_nominal_cycles(18), 6.0);
        assert_eq!(c.pll_to_nominal_cycles(3), 1.0);
    }
}

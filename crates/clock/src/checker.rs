//! Unsafe-edge detection for ratiochronous clock-domain crossings.
//!
//! Rational clocks have phase relationships that repeat every
//! hyperperiod. A capture (receiver) edge is **safe** when the time
//! since the most recent launch (source) edge is at least one full
//! receiver clock period — the criterion of the paper's Figure 8(a),
//! where the B0→A1 crossing is safe "since the propagation time … is a
//! full (receiver) clock cycle" and the B1→A2 crossing is "too
//! aggressive to meet timing".
//!
//! The hardware implements this as a counter + LUT per domain pair
//! ([`UnsafeLut`], the `CNT LUT` blocks of Figure 8(c)); this module
//! computes those LUTs.

use crate::ratio::{ClockSet, VfMode};

/// One capture opportunity in a crossing, with its timing margin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaptureEdge {
    /// The receiver rising edge (PLL ticks within the hyperperiod).
    pub capture: u64,
    /// The most recent source rising edge at or before `capture`.
    pub launch: u64,
    /// `capture - launch` in PLL ticks.
    pub margin: u64,
    /// True when `margin` is at least one receiver period (or the edge
    /// coincides with a launch edge, in which case the *previous*
    /// launch edge governs).
    pub safe: bool,
}

/// Classify every capture edge of a `src → dst` crossing over one
/// hyperperiod.
///
/// A capture edge that coincides with a launch edge captures data from
/// the *previous* launch (data launched on the coincident edge cannot
/// arrive instantaneously), so its margin is measured from the launch
/// strictly before it.
pub fn classify_crossing(clocks: &ClockSet, src: VfMode, dst: VfMode) -> Vec<CaptureEdge> {
    let budget = clocks.period(dst);
    clocks
        .rising_edges(dst)
        .into_iter()
        .map(|capture| {
            // Launch edges repeat with the hyperperiod, so for capture
            // edges early in the hyperperiod the governing launch may
            // belong to the previous hyperperiod (negative time); work
            // in an offset frame to keep arithmetic unsigned.
            let h = clocks.hyperperiod();
            let t = capture + h;
            let last = clocks.last_rising(src, t);
            let launch = if last == t {
                clocks.last_rising(src, t - 1)
            } else {
                last
            };
            let margin = t - launch;
            CaptureEdge {
                capture,
                launch: launch % h,
                margin,
                safe: margin >= budget,
            }
        })
        .collect()
}

/// The per-crossing unsafe-edge lookup table of Figure 8(c): one bit
/// per receiver edge within the hyperperiod, true when that edge is
/// unsafe. The hardware walks this LUT with a counter reset by
/// `clkrst`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsafeLut {
    bits: Vec<bool>,
    dst_period: u64,
}

impl UnsafeLut {
    /// Build the LUT for a `src → dst` crossing.
    pub fn build(clocks: &ClockSet, src: VfMode, dst: VfMode) -> UnsafeLut {
        let bits = classify_crossing(clocks, src, dst)
            .into_iter()
            .map(|e| !e.safe)
            .collect();
        UnsafeLut {
            bits,
            dst_period: clocks.period(dst),
        }
    }

    /// Number of receiver edges per hyperperiod.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// True when the LUT is empty (never for a valid clock set).
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// True if the receiver edge at absolute PLL tick `t` is unsafe.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not a receiver rising edge.
    pub fn is_unsafe_at(&self, t: u64) -> bool {
        assert_eq!(t % self.dst_period, 0, "t={t} is not a receiver edge");
        let edges_per_hyper = self.bits.len() as u64;
        let idx = (t / self.dst_period) % edges_per_hyper;
        self.bits[idx as usize]
    }

    /// Fraction of receiver edges that are unsafe.
    pub fn unsafe_fraction(&self) -> f64 {
        self.bits.iter().filter(|&&b| b).count() as f64 / self.bits.len() as f64
    }
}

/// The full 3×3 bank of LUTs a PE carries (the nine `CNT LUT` blocks
/// of Figure 8(c)), indexed by `[src][dst]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClockChecker {
    luts: Vec<UnsafeLut>,
}

impl ClockChecker {
    /// Build all nine crossings for a clock set.
    pub fn new(clocks: &ClockSet) -> ClockChecker {
        let mut luts = Vec::with_capacity(9);
        for src in VfMode::ALL {
            for dst in VfMode::ALL {
                luts.push(UnsafeLut::build(clocks, src, dst));
            }
        }
        ClockChecker { luts }
    }

    /// The LUT for a `src → dst` crossing.
    pub fn lut(&self, src: VfMode, dst: VfMode) -> &UnsafeLut {
        &self.luts[(src as usize) * 3 + (dst as usize)]
    }

    /// The 9-bit unsafe bus at PLL tick `t`: for each `src → dst` pair
    /// whose receiver clock has a rising edge at `t`, whether that edge
    /// is unsafe. Pairs without a receiver edge at `t` report `false`.
    pub fn unsafe_bus(&self, clocks: &ClockSet, t: u64) -> [bool; 9] {
        let mut bus = [false; 9];
        for (i, src) in VfMode::ALL.iter().enumerate() {
            for (j, dst) in VfMode::ALL.iter().enumerate() {
                if clocks.is_rising(*dst, t) {
                    bus[i * 3 + j] = self.lut(*src, *dst).is_unsafe_at(t);
                }
            }
        }
        bus
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn default_clocks() -> ClockSet {
        ClockSet::default()
    }

    #[test]
    fn same_domain_is_always_safe() {
        let c = default_clocks();
        for m in VfMode::ALL {
            let lut = UnsafeLut::build(&c, m, m);
            assert_eq!(lut.unsafe_fraction(), 0.0, "{m}→{m}");
        }
    }

    #[test]
    fn figure8_two_to_three_crossing() {
        // The figure's example: launch on div3 (period 3 = our nominal),
        // capture on div2 (period 2 = our sprint). Captures at 0,2,4;
        // launches at 0,3. Capture 2 ← launch 0: margin 2 ≥ 2 safe.
        // Capture 4 ← launch 3: margin 1 < 2 unsafe.
        let c = default_clocks();
        let edges = classify_crossing(&c, VfMode::Nominal, VfMode::Sprint);
        let at = |t: u64| edges.iter().find(|e| e.capture == t).unwrap();
        assert!(at(2).safe);
        assert!(!at(4).safe);
        assert_eq!(at(4).margin, 1);
    }

    #[test]
    fn coincident_edges_capture_previous_launch() {
        // Nominal → sprint at t = 0: both rise; the governing launch is
        // the nominal edge at 15 (previous hyperperiod), margin 3 ≥ 2.
        let c = default_clocks();
        let edges = classify_crossing(&c, VfMode::Nominal, VfMode::Sprint);
        let e0 = edges.iter().find(|e| e.capture == 0).unwrap();
        assert_eq!(e0.launch, 15);
        assert_eq!(e0.margin, 3);
        assert!(e0.safe);
    }

    #[test]
    fn slow_to_fast_crossing_unsafe_pattern() {
        // Rest (9) → sprint (2): captures every 2 ticks; launches at 0, 9.
        // Unsafe captures are the first edge after each launch that is
        // closer than 2 ticks: capture 10 (margin 1). Edge counts over the
        // 18-tick hyperperiod: 9 captures, exactly one unsafe.
        let c = default_clocks();
        let lut = UnsafeLut::build(&c, VfMode::Rest, VfMode::Sprint);
        assert_eq!(lut.len(), 9);
        let unsafe_count = (0..9).filter(|&k| lut.is_unsafe_at(k * 2)).count();
        assert_eq!(unsafe_count, 1);
        assert!(lut.is_unsafe_at(10));
    }

    #[test]
    fn fast_to_slow_crossing_unsafe_pattern() {
        // Sprint (2) → nominal (3): captures at 0,3,6,9,12,15; launches
        // every 2. Margins: capture 3 ← launch 2 (1, unsafe), 6 ← 4 (2,
        // unsafe), 9 ← 8 (1, unsafe), 12 ← 10 (2, unsafe), 15 ← 14 (1,
        // unsafe), 0 ← 16 of prev hyper (2, unsafe). All unsafe! The
        // suppressor's elasticity-awareness is what keeps such crossings
        // flowing (see `suppressor`).
        let c = default_clocks();
        let lut = UnsafeLut::build(&c, VfMode::Sprint, VfMode::Nominal);
        assert_eq!(lut.unsafe_fraction(), 1.0);
    }

    #[test]
    fn unsafe_bus_reports_only_rising_receivers() {
        let c = default_clocks();
        let checker = ClockChecker::new(&c);
        // t = 1: no clock rises → bus all false.
        assert_eq!(checker.unsafe_bus(&c, 1), [false; 9]);
        // t = 4: only sprint rises → only *→sprint lanes may be set.
        let bus = checker.unsafe_bus(&c, 4);
        for (i, src) in VfMode::ALL.iter().enumerate() {
            for (j, dst) in VfMode::ALL.iter().enumerate() {
                if *dst != VfMode::Sprint {
                    assert!(!bus[i * 3 + j], "{src}→{dst} cannot flag at t=4");
                }
            }
        }
    }

    #[test]
    fn lut_is_periodic() {
        let c = default_clocks();
        let lut = UnsafeLut::build(&c, VfMode::Nominal, VfMode::Sprint);
        for k in 0..9u64 {
            assert_eq!(lut.is_unsafe_at(k * 2), lut.is_unsafe_at(k * 2 + 18));
        }
    }

    #[test]
    #[should_panic(expected = "not a receiver edge")]
    fn lut_rejects_non_edges() {
        let c = default_clocks();
        let lut = UnsafeLut::build(&c, VfMode::Nominal, VfMode::Sprint);
        lut.is_unsafe_at(3);
    }
}

//! 50%-duty integer clock dividers.
//!
//! The UE-CGRA generates its rational clocks with standard 50%-duty
//! dividers (divide-by-two, divide-by-three, …) distributed to all PEs
//! (paper Section V, citing the classic odd-divide counter). Odd
//! divisors achieve 50% duty by using both PLL edges, so this model
//! counts *half* PLL ticks.
//!
//! A two-phase reset (`clkrst`) aligns all dividers so that every
//! divided clock rises together at time zero; the [`ClockDivider`]
//! starts aligned and [`ClockDivider::reset`] realigns it.

/// A 50%-duty clock divider producing one output clock from the PLL.
///
/// # Examples
///
/// ```
/// use uecgra_clock::ClockDivider;
///
/// let mut div3 = ClockDivider::new(3);
/// // Sample the output level across one period (6 half-ticks).
/// let wave: Vec<bool> = (0..6).map(|_| div3.tick()).collect();
/// assert_eq!(wave, [true, true, true, false, false, false]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClockDivider {
    divisor: u32,
    half_ticks: u64,
}

impl ClockDivider {
    /// Create an aligned divider.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn new(divisor: u32) -> ClockDivider {
        assert!(divisor > 0, "divisor must be nonzero");
        ClockDivider {
            divisor,
            half_ticks: 0,
        }
    }

    /// The divisor.
    pub fn divisor(&self) -> u32 {
        self.divisor
    }

    /// Advance by one half PLL tick and return the output level
    /// *during* that half tick. The output period is `2 * divisor`
    /// half ticks: high for `divisor` half ticks, then low.
    pub fn tick(&mut self) -> bool {
        let level = self.level_at(self.half_ticks);
        self.half_ticks += 1;
        level
    }

    /// Output level at an absolute half-tick time, for an aligned
    /// divider.
    pub fn level_at(&self, half_tick: u64) -> bool {
        (half_tick % (2 * u64::from(self.divisor))) < u64::from(self.divisor)
    }

    /// True if the output has a rising edge at the given half tick.
    pub fn is_rising_at(&self, half_tick: u64) -> bool {
        half_tick.is_multiple_of(2 * u64::from(self.divisor))
    }

    /// Realign the divider (the `clkrst` phase of the two-phase reset).
    pub fn reset(&mut self) {
        self.half_ticks = 0;
    }

    /// The current half-tick position.
    pub fn position(&self) -> u64 {
        self.half_ticks
    }
}

/// Measure the duty cycle of a divider over `n` output periods.
pub fn duty_cycle(divider: &ClockDivider, periods: u64) -> f64 {
    let span = 2 * u64::from(divider.divisor()) * periods;
    let high = (0..span).filter(|&t| divider.level_at(t)).count();
    high as f64 / span as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divide_by_two_waveform() {
        let mut d = ClockDivider::new(2);
        let wave: Vec<bool> = (0..8).map(|_| d.tick()).collect();
        assert_eq!(wave, [true, true, false, false, true, true, false, false]);
    }

    #[test]
    fn odd_divisors_keep_fifty_percent_duty() {
        for div in [1, 3, 5, 9] {
            let d = ClockDivider::new(div);
            assert_eq!(duty_cycle(&d, 10), 0.5, "divide-by-{div}");
        }
    }

    #[test]
    fn even_divisors_keep_fifty_percent_duty() {
        for div in [2, 4, 6, 8] {
            let d = ClockDivider::new(div);
            assert_eq!(duty_cycle(&d, 10), 0.5, "divide-by-{div}");
        }
    }

    #[test]
    fn rising_edges_match_clockset_schedule() {
        use crate::ratio::{ClockSet, VfMode};
        let clocks = ClockSet::default();
        for mode in VfMode::ALL {
            let d = ClockDivider::new(clocks.divisor(mode));
            for t in 0..clocks.hyperperiod() {
                // PLL tick t = half tick 2t.
                assert_eq!(
                    d.is_rising_at(2 * t),
                    clocks.is_rising(mode, t),
                    "{mode} at t={t}"
                );
            }
        }
    }

    #[test]
    fn reset_realigns() {
        let mut d = ClockDivider::new(3);
        for _ in 0..4 {
            d.tick();
        }
        assert_ne!(d.position(), 0);
        d.reset();
        assert_eq!(d.position(), 0);
        assert!(d.is_rising_at(d.position()));
    }

    #[test]
    fn dividers_align_after_common_reset() {
        // After reset, all three dividers rise together at t = 0 and at
        // every hyperperiod boundary.
        let divs = [9u32, 3, 2];
        let dividers: Vec<ClockDivider> = divs.iter().map(|&d| ClockDivider::new(d)).collect();
        let hyper_half_ticks = 2 * 18;
        for k in 0..3u64 {
            for d in &dividers {
                assert!(d.is_rising_at(k * hyper_half_ticks));
            }
        }
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_divisor_panics() {
        ClockDivider::new(0);
    }
}

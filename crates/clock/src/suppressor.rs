//! The elasticity-aware suppressor unit (paper Figure 8(d)).
//!
//! A traditional ratiochronous suppressor disables handshakes on every
//! unsafe receiver edge, which stalls frequently and periodically —
//! costly for dataflow. The UE-CGRA's novel suppressor taps the input
//! queue's `empty` signal through two edge detectors: a handshake on an
//! *unsafe* edge is still allowed when the data has already been
//! enqueued for longer than one local (receiver) clock cycle, because
//! such data is long settled and cannot violate setup.
//!
//! [`Suppressor::allows`] captures the resulting invariant: a token is
//! visible to the consumer at capture edge `t` iff it was written at
//! least one receiver period earlier. Freshly-written tokens arriving
//! across a safe crossing satisfy this by construction (safe means the
//! launch-to-capture margin is at least one receiver period); on unsafe
//! edges only aged tokens pass.

use crate::checker::UnsafeLut;
use crate::ratio::{ClockSet, VfMode};

/// Decision record for one suppression query, useful for traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuppressDecision {
    /// Whether the handshake may proceed.
    pub allow: bool,
    /// Whether the receiver edge was flagged unsafe by the LUT.
    pub edge_unsafe: bool,
    /// Whether the elasticity-awareness (aged data in queue) rescued an
    /// otherwise-suppressed handshake.
    pub rescued_by_elasticity: bool,
}

/// A per-crossing suppressor: combines the unsafe-edge LUT with queue
/// age information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppressor {
    lut: UnsafeLut,
    dst_period: u64,
}

impl Suppressor {
    /// Build the suppressor for a `src → dst` crossing.
    pub fn new(clocks: &ClockSet, src: VfMode, dst: VfMode) -> Suppressor {
        Suppressor {
            lut: UnsafeLut::build(clocks, src, dst),
            dst_period: clocks.period(dst),
        }
    }

    /// May the consumer handshake at capture edge `capture` for a token
    /// written into the bisynchronous queue at time `written`?
    ///
    /// # Panics
    ///
    /// Panics if `capture` is not a receiver rising edge or `written >
    /// capture`.
    pub fn allows(&self, capture: u64, written: u64) -> bool {
        self.decide(capture, written).allow
    }

    /// Full decision record for one query (see [`Suppressor::allows`]).
    pub fn decide(&self, capture: u64, written: u64) -> SuppressDecision {
        assert!(written <= capture, "token from the future");
        let edge_unsafe = self.lut.is_unsafe_at(capture);
        let aged = capture - written >= self.dst_period;
        // On a safe edge, fresh data is fine: the margin from its launch
        // edge is ≥ one receiver period by the definition of safe.
        // On an unsafe edge, only aged data passes.
        let allow = !edge_unsafe || aged;
        SuppressDecision {
            allow,
            edge_unsafe,
            rescued_by_elasticity: edge_unsafe && aged,
        }
    }

    /// The receiver clock period in PLL ticks.
    pub fn dst_period(&self) -> u64 {
        self.dst_period
    }

    /// Access the underlying unsafe-edge LUT.
    pub fn lut(&self) -> &UnsafeLut {
        &self.lut
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clocks() -> ClockSet {
        ClockSet::default()
    }

    #[test]
    fn same_domain_never_suppresses() {
        let s = Suppressor::new(&clocks(), VfMode::Nominal, VfMode::Nominal);
        for k in 1..6u64 {
            let capture = 3 * k;
            assert!(s.allows(capture, capture - 3));
            assert!(s.allows(capture, capture)); // just-written, safe edge
        }
    }

    #[test]
    fn unsafe_edge_blocks_fresh_data() {
        // Sprint → nominal: every nominal edge is unsafe (see checker
        // tests). A token written one PLL tick before capture must wait.
        let s = Suppressor::new(&clocks(), VfMode::Sprint, VfMode::Nominal);
        let d = s.decide(3, 2);
        assert!(!d.allow);
        assert!(d.edge_unsafe);
        assert!(!d.rescued_by_elasticity);
    }

    #[test]
    fn elasticity_rescues_aged_data() {
        // Same crossing: a token written at 0 has aged 3 ticks (= one
        // nominal period) by capture edge 3, so the handshake proceeds
        // despite the unsafe edge.
        let s = Suppressor::new(&clocks(), VfMode::Sprint, VfMode::Nominal);
        let d = s.decide(3, 0);
        assert!(d.allow);
        assert!(d.edge_unsafe);
        assert!(d.rescued_by_elasticity);
    }

    #[test]
    fn traditional_suppressor_would_stall_forever() {
        // Without elasticity awareness, the all-unsafe sprint → nominal
        // crossing would never handshake; with it, every token passes
        // after aging one receiver period.
        let s = Suppressor::new(&clocks(), VfMode::Sprint, VfMode::Nominal);
        for k in 1..12u64 {
            let capture = 3 * k;
            assert!(s.lut().is_unsafe_at(capture));
            assert!(s.allows(capture, capture - 3), "aged token at {capture}");
        }
    }

    #[test]
    fn nominal_to_sprint_safe_edges_pass_fresh_data() {
        // Capture 2 ← launch 0 is safe: a token written at 0 crosses at
        // 2 without aging a full period relative to... it has aged
        // exactly the safe margin.
        let s = Suppressor::new(&clocks(), VfMode::Nominal, VfMode::Sprint);
        assert!(s.allows(2, 0));
        // Capture 4 is unsafe (launch 3, margin 1): fresh token waits...
        assert!(!s.allows(4, 3));
        // ...and passes at the next edge (6), having aged 3 ≥ 2.
        assert!(s.allows(6, 3));
    }

    #[test]
    #[should_panic(expected = "future")]
    fn rejects_future_tokens() {
        let s = Suppressor::new(&clocks(), VfMode::Nominal, VfMode::Nominal);
        s.allows(3, 4);
    }
}

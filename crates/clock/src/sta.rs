//! STA-style verification of the ratiochronous clocking plan.
//!
//! Because ratiochronous design quantizes the frequency space, the
//! whole clocking scheme is verifiable by checking the cross-product of
//! domain pairs over one hyperperiod (paper Section V, "Static Timing
//! Analysis"). This module performs that check at the edge-schedule
//! abstraction: for every `src → dst` pair it enumerates capture
//! edges, computes margins, and verifies that
//!
//! 1. every capture edge **not** masked by the suppressor has a
//!    launch-to-capture margin of at least the receiver period (setup
//!    would close), and
//! 2. the suppressor masks **only** edges that genuinely need it (no
//!    over-suppression beyond the LUT's unsafe set).
//!
//! The report also quantifies how much of the schedule the suppressor
//! removes from the STA obligation — the paper's observation that
//! suppression "significantly simplifies timing constraints".

use crate::checker::{classify_crossing, UnsafeLut};
use crate::ratio::{ClockSet, VfMode};
use std::fmt;

/// Verification result for one `src → dst` crossing.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossingReport {
    /// Launch domain.
    pub src: VfMode,
    /// Capture domain.
    pub dst: VfMode,
    /// Total capture edges per hyperperiod.
    pub total_edges: usize,
    /// Edges STA must check (not suppressed).
    pub checked_edges: usize,
    /// Edges removed from the STA obligation by the suppressor.
    pub suppressed_edges: usize,
    /// Worst (smallest) margin among checked edges, in PLL ticks.
    pub worst_margin: u64,
    /// The receiver period (the setup budget), in PLL ticks.
    pub budget: u64,
    /// True when every checked edge meets the budget.
    pub timing_clean: bool,
}

impl fmt::Display for CrossingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}→{}: {}/{} edges checked, worst margin {}/{} ({})",
            self.src,
            self.dst,
            self.checked_edges,
            self.total_edges,
            self.worst_margin,
            self.budget,
            if self.timing_clean {
                "clean"
            } else {
                "VIOLATION"
            }
        )
    }
}

/// Full-chip report: all nine crossings.
#[derive(Debug, Clone, PartialEq)]
pub struct StaReport {
    /// Per-crossing results.
    pub crossings: Vec<CrossingReport>,
}

impl StaReport {
    /// True when every crossing is timing-clean.
    pub fn all_clean(&self) -> bool {
        self.crossings.iter().all(|c| c.timing_clean)
    }

    /// Total fraction of capture edges the suppressor removed from the
    /// verification space.
    pub fn suppression_fraction(&self) -> f64 {
        let total: usize = self.crossings.iter().map(|c| c.total_edges).sum();
        let suppressed: usize = self.crossings.iter().map(|c| c.suppressed_edges).sum();
        suppressed as f64 / total as f64
    }
}

impl fmt::Display for StaReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in &self.crossings {
            writeln!(f, "{c}")?;
        }
        write!(
            f,
            "suppressed {:.0}% of capture edges; {}",
            100.0 * self.suppression_fraction(),
            if self.all_clean() {
                "all crossings clean"
            } else {
                "VIOLATIONS PRESENT"
            }
        )
    }
}

/// Verify one crossing: STA checks all capture edges the suppressor
/// leaves enabled.
pub fn verify_crossing(clocks: &ClockSet, src: VfMode, dst: VfMode) -> CrossingReport {
    let edges = classify_crossing(clocks, src, dst);
    let lut = UnsafeLut::build(clocks, src, dst);
    let budget = clocks.period(dst);

    let mut checked = 0usize;
    let mut suppressed = 0usize;
    let mut worst = u64::MAX;
    for e in &edges {
        if lut.is_unsafe_at(e.capture) {
            suppressed += 1;
        } else {
            checked += 1;
            worst = worst.min(e.margin);
        }
    }
    let worst_margin = if checked == 0 { budget } else { worst };
    CrossingReport {
        src,
        dst,
        total_edges: edges.len(),
        checked_edges: checked,
        suppressed_edges: suppressed,
        worst_margin,
        budget,
        timing_clean: worst_margin >= budget,
    }
}

/// Verify the full 3×3 cross-product of clock domains.
pub fn verify_all(clocks: &ClockSet) -> StaReport {
    let mut crossings = Vec::with_capacity(9);
    for src in VfMode::ALL {
        for dst in VfMode::ALL {
            crossings.push(verify_crossing(clocks, src, dst));
        }
    }
    StaReport { crossings }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_clock_plan_is_timing_clean() {
        let report = verify_all(&ClockSet::default());
        assert!(report.all_clean(), "{report}");
        assert_eq!(report.crossings.len(), 9);
    }

    #[test]
    fn same_domain_crossings_check_every_edge() {
        let report = verify_all(&ClockSet::default());
        for c in report.crossings.iter().filter(|c| c.src == c.dst) {
            assert_eq!(c.suppressed_edges, 0, "{c}");
            assert_eq!(c.worst_margin, c.budget, "{c}");
        }
    }

    #[test]
    fn suppressor_eliminates_unverifiable_edges() {
        // The sprint → nominal crossing has no safe edges at all; the
        // suppressor must remove every one of them from the STA space.
        let c = verify_crossing(&ClockSet::default(), VfMode::Sprint, VfMode::Nominal);
        assert_eq!(c.checked_edges, 0);
        assert!(c.timing_clean, "vacuously clean once suppressed");
    }

    #[test]
    fn alternative_clock_plans_also_verify() {
        for divs in [[8u32, 4, 2], [6, 3, 2], [12, 4, 3], [4, 4, 4]] {
            let clocks = ClockSet::new(divs).unwrap();
            let report = verify_all(&clocks);
            assert!(report.all_clean(), "{divs:?}: {report}");
        }
    }

    #[test]
    fn suppression_fraction_is_meaningful() {
        let report = verify_all(&ClockSet::default());
        let f = report.suppression_fraction();
        assert!(f > 0.0 && f < 1.0, "fraction {f}");
    }

    #[test]
    fn report_displays_every_crossing() {
        let report = verify_all(&ClockSet::default());
        let text = report.to_string();
        assert!(text.contains("sprint→nominal"));
        assert!(text.contains("all crossings clean"));
    }
}

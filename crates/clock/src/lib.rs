//! Ratiochronous clocking substrate for the UE-CGRA reproduction.
//!
//! The UE-CGRA's key VLSI enabler (paper Section V) is a rational
//! clocking scheme overlaid on the elastic inter-PE interconnect:
//!
//! * all PE clocks divide one PLL by small integers ([`ClockSet`],
//!   default 2-to-3-to-9 for sprint/nominal/rest);
//! * 50%-duty dividers generate and align them ([`ClockDivider`]);
//! * each PE selects its clock through a glitchless switcher
//!   ([`ClockSwitcher`]);
//! * a counter+LUT clock checker flags "unsafe" capture edges whose
//!   launch-to-capture margin is below one receiver period
//!   ([`checker`]);
//! * the novel *elasticity-aware suppressor* lets handshakes proceed on
//!   unsafe edges whenever the data has aged at least one local cycle
//!   in the bisynchronous queue ([`Suppressor`]);
//! * and the whole plan is verifiable by checking the cross-product of
//!   domain pairs over one hyperperiod ([`sta`]), which is what keeps
//!   the design compatible with commercial static timing analysis.
//!
//! # Example
//!
//! ```
//! use uecgra_clock::{sta, ClockSet};
//!
//! let report = sta::verify_all(&ClockSet::default());
//! assert!(report.all_clean());
//! ```

#![warn(missing_docs)]

pub mod checker;
pub mod divider;
pub mod ratio;
pub mod sta;
pub mod suppressor;
pub mod switcher;

pub use checker::{classify_crossing, CaptureEdge, ClockChecker, UnsafeLut};
pub use divider::ClockDivider;
pub use ratio::{ClockSet, RatioError, VfMode};
pub use sta::{verify_all, verify_crossing, StaReport};
pub use suppressor::{SuppressDecision, Suppressor};
pub use switcher::ClockSwitcher;

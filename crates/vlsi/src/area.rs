//! PE area models (paper Figures 10 and 11-right).
//!
//! Component-level post-PnR area for the three PE variants in
//! TSMC 28 nm, calibrated to the paper's published relationships: at
//! the 750 MHz target (1.33 ns) the E-CGRA PE carries ~14% and the
//! UE-CGRA PE ~17% area overhead over the inelastic PE, with the
//! UE-specific suppression logic being a very small slice. Area grows
//! toward aggressive cycle-time targets as synthesis upsizes gates.

use std::collections::BTreeMap;

/// The three CGRA families compared throughout the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CgraKind {
    /// Traditional inelastic (statically scheduled) CGRA.
    Inelastic,
    /// Elastic CGRA (latency-insensitive interconnect).
    Elastic,
    /// Ultra-elastic CGRA (elastic + per-PE DVFS).
    UltraElastic,
}

impl CgraKind {
    /// All three, in the paper's comparison order.
    pub const ALL: [CgraKind; 3] = [
        CgraKind::Inelastic,
        CgraKind::Elastic,
        CgraKind::UltraElastic,
    ];

    /// Short label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            CgraKind::Inelastic => "IE-CGRA",
            CgraKind::Elastic => "E-CGRA",
            CgraKind::UltraElastic => "UE-CGRA",
        }
    }
}

/// The reference cycle time (ns) at which the base component areas are
/// calibrated (750 MHz).
pub const REFERENCE_CYCLE_NS: f64 = 4.0 / 3.0;

/// Component areas of one PE in µm² at the reference cycle time.
///
/// Shared components appear in every variant; the elastic variants
/// replace the inelastic pipeline registers with four two-entry
/// queues; the ultra-elastic variant adds the clock switcher and the
/// unsafe-edge suppression logic.
pub fn component_areas(kind: CgraKind) -> BTreeMap<&'static str, f64> {
    let mut parts = BTreeMap::from([
        ("mul", 830.0),
        ("alu", 360.0),
        ("muxes", 540.0),
        ("acc_reg", 130.0),
        ("other", 1060.0),
    ]);
    match kind {
        CgraKind::Inelastic => {
            parts.insert("pipeline_regs", 430.0);
        }
        CgraKind::Elastic => {
            for q in ["q_n", "q_e", "q_s", "q_w"] {
                parts.insert(q, 230.0);
            }
        }
        CgraKind::UltraElastic => {
            for q in ["q_n", "q_e", "q_s", "q_w"] {
                parts.insert(q, 230.0);
            }
            parts.insert("clk_switcher", 55.0);
            parts.insert("suppress", 20.0);
            parts.insert("unsafe_gen", 25.0);
        }
    }
    parts
}

/// Total PE area in µm² at the reference cycle time.
pub fn pe_area_reference(kind: CgraKind) -> f64 {
    component_areas(kind).values().sum()
}

/// Area multiplier versus the reference cycle time: synthesis upsizes
/// cells toward aggressive clocks and relaxes them for slower ones
/// (the Figure 10 sweep shape).
pub fn cycle_time_scale(cycle_ns: f64) -> f64 {
    assert!(cycle_ns > 0.5, "target beyond technology reach");
    if cycle_ns <= REFERENCE_CYCLE_NS {
        1.0 + 0.65 * (REFERENCE_CYCLE_NS / cycle_ns - 1.0)
    } else {
        1.0 / (1.0 + 0.12 * (cycle_ns / REFERENCE_CYCLE_NS - 1.0))
    }
}

/// PE area in µm² at an arbitrary cycle-time target (Figure 10).
pub fn pe_area(kind: CgraKind, cycle_ns: f64) -> f64 {
    pe_area_reference(kind) * cycle_time_scale(cycle_ns)
}

/// The cycle-time sweep points of Figure 10 (ns).
pub const FIG10_CYCLE_TIMES: [f64; 8] = [1.0, 1.11, 1.18, 1.25, 1.33, 1.43, 1.53, 1.67];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elastic_overhead_is_about_14_percent() {
        let ie = pe_area_reference(CgraKind::Inelastic);
        let e = pe_area_reference(CgraKind::Elastic);
        let ratio = e / ie;
        assert!((ratio - 1.14).abs() < 0.02, "E/IE = {ratio}");
    }

    #[test]
    fn ultra_elastic_overhead_is_about_17_percent() {
        let ie = pe_area_reference(CgraKind::Inelastic);
        let ue = pe_area_reference(CgraKind::UltraElastic);
        let ratio = ue / ie;
        assert!((ratio - 1.17).abs() < 0.02, "UE/IE = {ratio}");
    }

    #[test]
    fn ue_specific_logic_is_tiny() {
        // Paper: "The area for UE-CGRA-specific logic (e.g., unsafe
        // crossing suppression) is very small."
        let parts = component_areas(CgraKind::UltraElastic);
        let ue_specific = parts["suppress"] + parts["unsafe_gen"] + parts["clk_switcher"];
        let total = pe_area_reference(CgraKind::UltraElastic);
        assert!(ue_specific / total < 0.03, "{}", ue_specific / total);
    }

    #[test]
    fn area_grows_toward_aggressive_clocks() {
        for kind in CgraKind::ALL {
            let mut prev = f64::MAX;
            for &t in &FIG10_CYCLE_TIMES {
                let a = pe_area(kind, t);
                assert!(a < prev, "{kind:?}: area must fall as cycle time relaxes");
                prev = a;
            }
        }
    }

    #[test]
    fn fig10_range_is_plausible() {
        // The figure's y-axis spans roughly 3300–5000 µm².
        for kind in CgraKind::ALL {
            for &t in &FIG10_CYCLE_TIMES {
                let a = pe_area(kind, t);
                assert!(a > 2800.0 && a < 5400.0, "{kind:?}@{t}: {a}");
            }
        }
    }

    #[test]
    fn queues_dominate_the_elastic_overhead() {
        let parts = component_areas(CgraKind::Elastic);
        let queues: f64 = ["q_n", "q_e", "q_s", "q_w"].iter().map(|q| parts[*q]).sum();
        let ie_regs = component_areas(CgraKind::Inelastic)["pipeline_regs"];
        assert!(queues > ie_regs, "elastic queues outweigh plain registers");
    }

    #[test]
    #[should_panic(expected = "beyond technology reach")]
    fn absurd_cycle_target_panics() {
        pe_area(CgraKind::Elastic, 0.2);
    }
}

//! Clock-network power with hierarchical gating (paper Section V,
//! Table I).
//!
//! The UE-CGRA distributes three divided clocks (rest, nominal,
//! sprint) across the array. Ungated, the clock network accounts for
//! about half of total power; the paper recovers this with two
//! mechanisms that this model reproduces:
//!
//! * **P** — power gating unused PEs, which also removes their local
//!   clock load;
//! * **H** — hierarchical clock-network gating: PEs are clustered
//!   (4×4) and each cluster's slice of each global network is gated by
//!   a configuration bit, so a network toggles only in clusters that
//!   actually select it — and an entirely unselected network is gated
//!   wholesale.

use crate::area::CgraKind;
use uecgra_clock::VfMode;

/// Calibrated clock/idle power constants (TSMC 28 nm, 750 MHz).
#[derive(Debug, Clone, PartialEq)]
pub struct ClockPowerParams {
    /// Local (intra-PE) clock power per clocked PE at nominal (mW).
    pub pe_clock_mw_nominal: f64,
    /// UE PE local-clock overhead (clock switcher + three clock stubs).
    pub ue_pe_clock_factor: f64,
    /// Full-tree global network power per network at its own frequency
    /// for the UE-CGRA, indexed by [`VfMode`] (mW).
    pub ue_global_net_mw: [f64; 3],
    /// Full-tree global network power of the E-CGRA's single nominal
    /// network (mW).
    pub e_global_net_mw: f64,
    /// Cluster edge for hierarchical gating (PEs).
    pub cluster: usize,
    /// Ungated idle-PE logic power (leakage + clock-induced, mW).
    pub idle_logic_mw: f64,
    /// Leakage power of an active (non-power-gated) PE at nominal
    /// voltage (mW); scales linearly with the supply.
    pub active_leak_mw: f64,
}

impl Default for ClockPowerParams {
    /// Calibrated to the paper's Table I.
    fn default() -> Self {
        ClockPowerParams {
            pe_clock_mw_nominal: 1.70 / 64.0,
            ue_pe_clock_factor: 1.10,
            ue_global_net_mw: [0.12, 0.36, 0.54],
            e_global_net_mw: 0.24,
            cluster: 4,
            idle_logic_mw: 0.72 / 44.0,
            active_leak_mw: 0.045,
        }
    }
}

/// Which gating mechanisms are enabled (the three rows per CGRA in
/// Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatingConfig {
    /// Power-gate unused PEs (removes their logic and local clock).
    pub power_gate: bool,
    /// Hierarchical global-clock-network gating.
    pub hierarchical: bool,
}

impl GatingConfig {
    /// No gating at all (Table I "w/o P+H").
    pub const NONE: GatingConfig = GatingConfig {
        power_gate: false,
        hierarchical: false,
    };
    /// Power gating only ("w/o H").
    pub const POWER_ONLY: GatingConfig = GatingConfig {
        power_gate: true,
        hierarchical: false,
    };
    /// Both mechanisms (the fully-optimized rows).
    pub const FULL: GatingConfig = GatingConfig {
        power_gate: true,
        hierarchical: true,
    };
}

/// Clock-power breakdown of one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ClockPowerBreakdown {
    /// Local PE clock power (mW).
    pub pe_clock_mw: f64,
    /// Global network power per network, indexed by [`VfMode`]
    /// (E-CGRA uses only the nominal slot).
    pub global_mw: [f64; 3],
    /// Logic power of idle-but-ungated PEs (mW); zero under P.
    pub idle_logic_mw: f64,
    /// Leakage power of active PEs (mW).
    pub leakage_mw: f64,
}

impl ClockPowerBreakdown {
    /// Total clock power (local + all global networks).
    pub fn total_clock_mw(&self) -> f64 {
        self.pe_clock_mw + self.global_mw.iter().sum::<f64>()
    }
}

fn freq_ratio(mode: VfMode) -> f64 {
    match mode {
        VfMode::Rest => 1.0 / 3.0,
        VfMode::Nominal => 1.0,
        VfMode::Sprint => 1.5,
    }
}

fn volt_ratio(mode: VfMode) -> f64 {
    match mode {
        VfMode::Rest => 0.61 / 0.90,
        VfMode::Nominal => 1.0,
        VfMode::Sprint => 1.23 / 0.90,
    }
}

/// Local clock power scales with frequency only: like the global
/// networks, the clock distribution is powered from the always-on
/// nominal rail (the paper's methodology scales logic to each PE's
/// voltage but adds clock energy "which is not voltage-scaled"), so a
/// rested PE's clock burns 1/3 the power and a sprinting PE's 1.5×.
fn local_clock_scale(mode: VfMode) -> f64 {
    freq_ratio(mode)
}

/// Compute the clock-power breakdown for a per-PE clock-selection grid
/// (`None` = unused PE).
pub fn clock_power(
    kind: CgraKind,
    params: &ClockPowerParams,
    clock_grid: &[Vec<Option<VfMode>>],
    gating: GatingConfig,
) -> ClockPowerBreakdown {
    clock_power_with_scale(kind, params, clock_grid, gating, local_clock_scale)
}

/// [`clock_power`], but with each domain's local-clock scale taken
/// from **measured** per-domain rising-edge counts over one
/// hyperperiod (the probe layer's `domain_edges_hyper`) instead of
/// the hand-computed frequency ratios.
///
/// The scale of mode `m` is `edges[m] / edges[nominal]`. For the
/// default 9:3:2 divisor plan the counts are `[2, 6, 9]`, and the
/// correctly-rounded f64 divisions 2/6, 6/6 and 9/6 are bit-identical
/// to the hand constants 1/3, 1 and 1.5 — so this path reproduces
/// [`clock_power`] exactly while being driven by simulator telemetry.
/// A run too short to cover a hyperperiod (`edges[nominal] == 0`)
/// falls back to the hand ratios.
pub fn clock_power_from_edges(
    kind: CgraKind,
    params: &ClockPowerParams,
    clock_grid: &[Vec<Option<VfMode>>],
    gating: GatingConfig,
    edges_hyper: [u64; 3],
) -> ClockPowerBreakdown {
    let nominal = edges_hyper[VfMode::Nominal as usize];
    if nominal == 0 {
        return clock_power(kind, params, clock_grid, gating);
    }
    clock_power_with_scale(kind, params, clock_grid, gating, move |m| {
        edges_hyper[m as usize] as f64 / nominal as f64
    })
}

#[allow(clippy::needless_range_loop)] // (x, y) grid indexing reads clearer
fn clock_power_with_scale(
    kind: CgraKind,
    params: &ClockPowerParams,
    clock_grid: &[Vec<Option<VfMode>>],
    gating: GatingConfig,
    scale: impl Fn(VfMode) -> f64,
) -> ClockPowerBreakdown {
    let height = clock_grid.len();
    let width = clock_grid.first().map_or(0, |r| r.len());
    let pe_factor = if kind == CgraKind::UltraElastic {
        params.ue_pe_clock_factor
    } else {
        1.0
    };

    // Local PE clock power (f · V² per PE) and active-PE leakage (V).
    let mut pe_clock_mw = 0.0;
    let mut leakage_mw = 0.0;
    let mut idle = 0usize;
    for row in clock_grid {
        for &sel in row {
            match sel {
                Some(m) => {
                    pe_clock_mw += params.pe_clock_mw_nominal * scale(m) * pe_factor;
                    leakage_mw += params.active_leak_mw * volt_ratio(m);
                }
                None if !gating.power_gate => {
                    // Ungated unused PEs park on the nominal clock.
                    pe_clock_mw += params.pe_clock_mw_nominal * pe_factor;
                    leakage_mw += params.active_leak_mw;
                    idle += 1;
                }
                None => {}
            }
        }
    }

    // Global network power: fraction of clusters in which each network
    // toggles.
    let cl = params.cluster.max(1);
    let tiles_y = height.div_ceil(cl);
    let tiles_x = width.div_ceil(cl);
    let total_tiles = (tiles_x * tiles_y).max(1);
    let mut used_tiles = [0usize; 3];
    for ty in 0..tiles_y {
        for tx in 0..tiles_x {
            let mut seen = [false; 3];
            for y in (ty * cl)..((ty + 1) * cl).min(height) {
                for x in (tx * cl)..((tx + 1) * cl).min(width) {
                    match clock_grid[y][x] {
                        Some(m) => seen[m as usize] = true,
                        None if !gating.power_gate => seen[VfMode::Nominal as usize] = true,
                        None => {}
                    }
                }
            }
            for m in 0..3 {
                used_tiles[m] += seen[m] as usize;
            }
        }
    }

    let mut global_mw = [0.0; 3];
    match kind {
        CgraKind::UltraElastic => {
            for m in 0..3 {
                let fraction = if gating.hierarchical {
                    used_tiles[m] as f64 / total_tiles as f64
                } else {
                    1.0
                };
                global_mw[m] = params.ue_global_net_mw[m] * fraction;
            }
        }
        _ => {
            let fraction = if gating.hierarchical {
                used_tiles[VfMode::Nominal as usize] as f64 / total_tiles as f64
            } else {
                1.0
            };
            global_mw[VfMode::Nominal as usize] = params.e_global_net_mw * fraction;
        }
    }

    ClockPowerBreakdown {
        pe_clock_mw,
        global_mw,
        idle_logic_mw: if gating.power_gate {
            0.0
        } else {
            idle as f64 * params.idle_logic_mw
        },
        leakage_mw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_all(mode: Option<VfMode>) -> Vec<Vec<Option<VfMode>>> {
        vec![vec![mode; 8]; 8]
    }

    fn sparse_grid() -> Vec<Vec<Option<VfMode>>> {
        // ~16 active PEs in the top-left cluster plus a sprint pocket.
        let mut g = grid_all(None);
        for y in 0..4 {
            for x in 0..4 {
                g[y][x] = Some(VfMode::Nominal);
            }
        }
        g[5][5] = Some(VfMode::Sprint);
        g[5][6] = Some(VfMode::Sprint);
        g
    }

    #[test]
    fn ungated_ecgra_matches_table1_row1() {
        // 64 PEs clocked at nominal: 1.70 mW local + 0.24 mW global.
        let b = clock_power(
            CgraKind::Elastic,
            &ClockPowerParams::default(),
            &grid_all(None),
            GatingConfig::NONE,
        );
        assert!((b.pe_clock_mw - 1.70).abs() < 0.01);
        assert!((b.global_mw[VfMode::Nominal as usize] - 0.24).abs() < 1e-9);
        assert!((b.total_clock_mw() - 1.94).abs() < 0.01);
    }

    #[test]
    fn ue_global_is_about_4x_e_global_ungated() {
        // Paper: "both UE-CGRAs have global clock power about 4x that
        // of the E-CGRA" before gating.
        let p = ClockPowerParams::default();
        let ue: f64 = p.ue_global_net_mw.iter().sum();
        assert!((ue / p.e_global_net_mw - 4.25).abs() < 0.1);
    }

    #[test]
    fn power_gating_cuts_local_clock_and_idle_logic() {
        let p = ClockPowerParams::default();
        let g = sparse_grid();
        let none = clock_power(CgraKind::Elastic, &p, &g, GatingConfig::NONE);
        let pg = clock_power(CgraKind::Elastic, &p, &g, GatingConfig::POWER_ONLY);
        assert!(pg.pe_clock_mw < none.pe_clock_mw / 2.0);
        assert!(none.idle_logic_mw > 0.0);
        assert_eq!(pg.idle_logic_mw, 0.0);
    }

    #[test]
    fn hierarchical_gating_prunes_unused_clusters() {
        let p = ClockPowerParams::default();
        let g = sparse_grid();
        let pg = clock_power(CgraKind::UltraElastic, &p, &g, GatingConfig::POWER_ONLY);
        let full = clock_power(CgraKind::UltraElastic, &p, &g, GatingConfig::FULL);
        // Without H all three networks are fully powered.
        assert_eq!(pg.global_mw, p.ue_global_net_mw);
        // With H the rest network (unused) is gated entirely, the
        // nominal network toggles in one of four clusters, the sprint
        // network in one.
        assert_eq!(full.global_mw[VfMode::Rest as usize], 0.0);
        assert!((full.global_mw[VfMode::Nominal as usize] - 0.36 / 4.0).abs() < 1e-9);
        assert!((full.global_mw[VfMode::Sprint as usize] - 0.54 / 4.0).abs() < 1e-9);
        assert!(full.total_clock_mw() < pg.total_clock_mw());
    }

    #[test]
    fn successive_gating_monotonically_reduces_power() {
        // The structure of Table I: each added mechanism reduces total
        // clock power.
        let p = ClockPowerParams::default();
        let g = sparse_grid();
        for kind in [CgraKind::Elastic, CgraKind::UltraElastic] {
            let a = clock_power(kind, &p, &g, GatingConfig::NONE).total_clock_mw();
            let b = clock_power(kind, &p, &g, GatingConfig::POWER_ONLY).total_clock_mw();
            let c = clock_power(kind, &p, &g, GatingConfig::FULL).total_clock_mw();
            assert!(a > b && b > c, "{kind:?}: {a} > {b} > {c} violated");
        }
    }

    #[test]
    fn measured_edges_match_hand_ratios_exactly() {
        // One hyperperiod of the default 9:3:2 plan has 2/6/9 rising
        // edges; the resulting scale factors are bit-identical to the
        // hand constants, so both paths agree to the last bit in every
        // gating configuration.
        let p = ClockPowerParams::default();
        let mut g = sparse_grid();
        g[0][0] = Some(VfMode::Rest);
        for kind in [CgraKind::Elastic, CgraKind::UltraElastic] {
            for gating in [
                GatingConfig::NONE,
                GatingConfig::POWER_ONLY,
                GatingConfig::FULL,
            ] {
                let hand = clock_power(kind, &p, &g, gating);
                let measured = clock_power_from_edges(kind, &p, &g, gating, [2, 6, 9]);
                assert_eq!(measured, hand, "{kind:?}/{gating:?}");
            }
        }
    }

    #[test]
    fn short_runs_fall_back_to_hand_ratios() {
        let p = ClockPowerParams::default();
        let g = sparse_grid();
        let hand = clock_power(CgraKind::UltraElastic, &p, &g, GatingConfig::FULL);
        let fallback = clock_power_from_edges(
            CgraKind::UltraElastic,
            &p,
            &g,
            GatingConfig::FULL,
            [0, 0, 0],
        );
        assert_eq!(fallback, hand);
    }

    #[test]
    fn compiler_knowledge_gates_whole_networks() {
        // An all-nominal UE mapping can gate the sprint and rest trees
        // completely (the paper's "if no PEs use the sprint clock then
        // that entire network can be gated").
        let p = ClockPowerParams::default();
        let g = grid_all(Some(VfMode::Nominal));
        let b = clock_power(CgraKind::UltraElastic, &p, &g, GatingConfig::FULL);
        assert_eq!(b.global_mw[VfMode::Sprint as usize], 0.0);
        assert_eq!(b.global_mw[VfMode::Rest as usize], 0.0);
        assert!(b.global_mw[VfMode::Nominal as usize] > 0.0);
    }
}

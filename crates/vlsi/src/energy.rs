//! Per-operation PE energy tables (paper Figure 11-left).
//!
//! Absolute per-firing energies in picojoules for the E-CGRA and
//! UE-CGRA PEs at the nominal 750 MHz / 0.90 V operating point,
//! calibrated to the paper's relationships: the relative energies
//! across operations follow the α table (Section II-C, validated
//! against gate-level power estimation), the UE-CGRA PE averages ~21%
//! more energy per op than the E-CGRA PE — almost entirely the three
//! clock networks entering the PE, with the suppression logic
//! contributing only ~1.3% — and SRAM-touching ops add the subbank
//! access energy (α_sram = 0.82).

use crate::area::CgraKind;
use uecgra_clock::VfMode;
use uecgra_dfg::Op;

/// Energy of one nominal `mul` firing in the E-CGRA PE (pJ).
///
/// Calibrated so the full-array power split matches the paper's
/// Table I (PE logic roughly on par with total clock power for the
/// dither mapping); the per-op *relative* energies follow the α table.
pub const E_MUL_PJ: f64 = 2.1;

/// Per-op *datapath* energy multiplier of the UE-CGRA PE over the
/// E-CGRA PE: the clock switcher and suppression logic only. The
/// paper's full 21% per-op overhead (Figure 11) is dominated by the
/// three clock networks entering the PE, which the system-level
/// accounting carries in the clock-power model (`clock_power`) so it
/// is not double-counted here; [`figure11_bars`] re-adds it for the
/// per-PE view.
pub const UE_DATAPATH_OVERHEAD: f64 = 1.03;

/// The paper's Figure 11 view: total per-op energy overhead of the
/// UE-CGRA PE including its share of the three intra-PE clock
/// networks.
pub const UE_PE_VIEW_OVERHEAD: f64 = 1.21;

/// Fraction of the UE overhead attributable to the suppression logic
/// (`unsafe_gen` + `suppress` in Figure 11): ~1.3% of PE energy.
pub const SUPPRESSION_FRACTION: f64 = 0.013;

/// Energy of a rising clock edge on an idle (stalled) PE, relative to
/// a nominal mul. Elastic PEs clock-gate their registers when no
/// handshake completes, so a stalled edge costs very little beyond
/// the local clock stub (which the clock-power model carries).
pub const STALL_ALPHA: f64 = 0.012;

/// Dynamic energy scale of a supply voltage versus nominal: `(V/VN)²`.
pub fn voltage_scale(mode: VfMode) -> f64 {
    let v = match mode {
        VfMode::Rest => 0.61,
        VfMode::Nominal => 0.90,
        VfMode::Sprint => 1.23,
    };
    (v / 0.90) * (v / 0.90)
}

/// Energy in pJ of one `op` firing at `mode` in a `kind` PE, including
/// the SRAM subbank access for memory ops.
///
/// The inelastic PE is modeled like the elastic one minus the queue
/// handshake energy (≈ 6%); the paper never reports IE per-op bars,
/// only area, so this value is used for rough full-array estimates.
pub fn op_energy_pj(kind: CgraKind, op: Op, mode: VfMode) -> f64 {
    let base = match kind {
        CgraKind::Inelastic => 0.94,
        CgraKind::Elastic => 1.0,
        CgraKind::UltraElastic => UE_DATAPATH_OVERHEAD,
    };
    let sram = if op.is_memory() { 0.82 } else { 0.0 };
    (op.alpha() + sram) * E_MUL_PJ * base * voltage_scale(mode)
}

/// Energy in pJ of a stalled rising edge (clock toggle, no fire).
pub fn stall_energy_pj(kind: CgraKind, mode: VfMode) -> f64 {
    let base = match kind {
        CgraKind::Inelastic => 0.94,
        CgraKind::Elastic => 1.0,
        CgraKind::UltraElastic => UE_DATAPATH_OVERHEAD,
    };
    STALL_ALPHA * E_MUL_PJ * base * voltage_scale(mode)
}

/// Energy in pJ of forwarding one bypass token (the `bps` bar).
pub fn bypass_energy_pj(kind: CgraKind, mode: VfMode) -> f64 {
    op_energy_pj(kind, Op::Nop, mode)
}

/// The Figure 11 bar chart: `(mnemonic, e_cgra_pj, ue_cgra_pj)` per
/// configurable operation at nominal VF.
pub fn figure11_bars() -> Vec<(&'static str, f64, f64)> {
    let clock_share = UE_PE_VIEW_OVERHEAD / UE_DATAPATH_OVERHEAD;
    let mut rows: Vec<(&'static str, f64, f64)> = uecgra_dfg::PE_OPS
        .iter()
        .filter(|op| !matches!(op, Op::Phi | Op::Br | Op::Cp1))
        .map(|&op| {
            (
                op.mnemonic(),
                op_energy_pj(CgraKind::Elastic, op, VfMode::Nominal),
                op_energy_pj(CgraKind::UltraElastic, op, VfMode::Nominal) * clock_share,
            )
        })
        .collect();
    rows.push((
        "stall",
        stall_energy_pj(CgraKind::Elastic, VfMode::Nominal),
        stall_energy_pj(CgraKind::UltraElastic, VfMode::Nominal),
    ));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure11_view_shows_21_percent_overhead() {
        // The per-PE view (with the intra-PE clock share) reproduces
        // the paper's 21% average overhead.
        for (name, e, ue) in figure11_bars() {
            if name == "stall" {
                continue;
            }
            assert!((ue / e - 1.21).abs() < 1e-9, "{name}: {}", ue / e);
        }
    }

    #[test]
    fn system_accounting_charges_only_datapath_overhead() {
        // The clock networks are carried by the clock-power model, so
        // per-op accounting adds only the switcher/suppressor slice.
        for op in [Op::Mul, Op::Add, Op::Xor, Op::Load] {
            let e = op_energy_pj(CgraKind::Elastic, op, VfMode::Nominal);
            let ue = op_energy_pj(CgraKind::UltraElastic, op, VfMode::Nominal);
            assert!((ue / e - 1.03).abs() < 1e-9, "{op}: {}", ue / e);
        }
    }

    #[test]
    fn suppression_share_is_small() {
        // 1.3% of total PE energy (paper Section VII-A): an order of
        // magnitude under the full 21% per-op overhead.
        let overhead = UE_PE_VIEW_OVERHEAD - 1.0;
        assert!(
            SUPPRESSION_FRACTION < overhead / 10.0,
            "suppression is a small part of the 21% overhead"
        );
    }

    #[test]
    fn memory_ops_are_the_most_expensive() {
        let bars = figure11_bars();
        let (max_name, max_e, _) = bars
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("bars nonempty");
        assert!(
            *max_name == "load" || *max_name == "store",
            "{max_name} ({max_e} pJ) should not beat SRAM ops"
        );
    }

    #[test]
    fn bars_span_the_figure_range() {
        // Figure 11's y-axis: roughly 0–5 pJ.
        for (name, e, ue) in figure11_bars() {
            assert!(e > 0.0 && e < 5.0, "{name}: {e}");
            assert!(ue > e && ue < 5.6, "{name}: {ue}");
        }
        let stall = figure11_bars()
            .into_iter()
            .find(|(n, _, _)| *n == "stall")
            .unwrap();
        assert!(stall.1 < 0.1, "stalled edges are nearly free");
    }

    #[test]
    fn resting_cuts_energy_sprinting_raises_it() {
        let nom = op_energy_pj(CgraKind::UltraElastic, Op::Add, VfMode::Nominal);
        let rest = op_energy_pj(CgraKind::UltraElastic, Op::Add, VfMode::Rest);
        let sprint = op_energy_pj(CgraKind::UltraElastic, Op::Add, VfMode::Sprint);
        assert!(rest < 0.5 * nom);
        assert!(sprint > 1.8 * nom);
    }

    #[test]
    fn stalls_cost_much_less_than_fires() {
        let stall = stall_energy_pj(CgraKind::Elastic, VfMode::Nominal);
        let add = op_energy_pj(CgraKind::Elastic, Op::Add, VfMode::Nominal);
        assert!(stall < add / 2.0);
    }
}

//! Transistor-level voltage–frequency modeling.
//!
//! The paper calibrates its V-f relationship with SPICE simulations of
//! a ring of 21 delay stages built from FO4-loaded inverters, NANDs,
//! and NORs, sized so the loop delay matches the gate-level cycle time
//! (Section VI-B). Without a SPICE deck, this module substitutes the
//! classic **alpha-power law** MOSFET model — delay ∝ V / (V − Vt)^α —
//! whose two parameters are calibrated so the ring reproduces the
//! paper's anchor observations in TSMC 28 nm:
//!
//! * resting to 0.61 V runs ≈ 3.0× slower than 0.90 V;
//! * sprinting to 1.23 V runs ≈ 1.5× faster (1.58× before the
//!   ratiochronous quantization trimmed 5%).

/// One delay stage of the ring (an FO4-loaded gate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayStage {
    /// Effective threshold voltage (V).
    pub vt: f64,
    /// Velocity-saturation exponent α.
    pub alpha: f64,
    /// Delay scale constant (ps·V^(α−1)).
    pub k: f64,
}

impl DelayStage {
    /// Stage delay in picoseconds at the given supply.
    ///
    /// # Panics
    ///
    /// Panics if `v` is at or below threshold — the UE-CGRA explicitly
    /// avoids near-threshold operation (Section V).
    pub fn delay_ps(&self, v: f64) -> f64 {
        assert!(
            v > self.vt + 0.05,
            "supply {v} V too close to threshold {} V",
            self.vt
        );
        self.k * v / (v - self.vt).powf(self.alpha)
    }
}

/// A ring oscillator of `stages` delay stages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RingOscillator {
    /// The (identical) delay stage.
    pub stage: DelayStage,
    /// Stage count (paper: 21).
    pub stages: usize,
}

impl RingOscillator {
    /// The calibrated 21-stage ring: parameters grid-searched so the
    /// rest/sprint frequency ratios match the paper's SPICE results
    /// and the loop delay at 0.90 V equals the 750 MHz cycle time.
    pub fn calibrated() -> RingOscillator {
        // Grid-search Vt and alpha against the two ratio anchors.
        let targets = [(0.61, 1.0 / 3.0), (1.23, 1.58)];
        let mut best = (f64::MAX, 0.3, 1.6);
        let mut vt = 0.20;
        while vt <= 0.45 {
            let mut alpha = 1.2;
            while alpha <= 2.4 {
                let probe = DelayStage { vt, alpha, k: 1.0 };
                let f0 = 1.0 / probe.delay_ps(0.90);
                let err: f64 = targets
                    .iter()
                    .map(|&(v, ratio)| {
                        let f = 1.0 / probe.delay_ps(v);
                        ((f / f0 - ratio) / ratio).powi(2)
                    })
                    .sum();
                if err < best.0 {
                    best = (err, vt, alpha);
                }
                alpha += 0.01;
            }
            vt += 0.005;
        }
        let (_, vt, alpha) = best;
        // Scale k so 21 stages at 0.90 V give one 750 MHz period.
        let unit = DelayStage { vt, alpha, k: 1.0 };
        let period_target_ps = 1e6 / 750.0; // 1333 ps
        let k = period_target_ps / (21.0 * unit.delay_ps(0.90));
        RingOscillator {
            stage: DelayStage { vt, alpha, k },
            stages: 21,
        }
    }

    /// Loop delay (one output period) in picoseconds.
    pub fn period_ps(&self, v: f64) -> f64 {
        self.stage.delay_ps(v) * self.stages as f64
    }

    /// Oscillation frequency in MHz.
    pub fn frequency_mhz(&self, v: f64) -> f64 {
        1e6 / self.period_ps(v)
    }

    /// Frequency relative to the 0.90 V nominal point.
    pub fn speedup_at(&self, v: f64) -> f64 {
        self.frequency_mhz(v) / self.frequency_mhz(0.90)
    }

    /// Fit the paper-style quadratic `f(V) = k1·V² + k2·V + k3`
    /// through three probe voltages, returning `(k1, k2, k3)` in MHz.
    pub fn quadratic_fit(&self, probes: [f64; 3]) -> (f64, f64, f64) {
        let [x0, x1, x2] = probes;
        let (y0, y1, y2) = (
            self.frequency_mhz(x0),
            self.frequency_mhz(x1),
            self.frequency_mhz(x2),
        );
        let d0 = (x0 - x1) * (x0 - x2);
        let d1 = (x1 - x0) * (x1 - x2);
        let d2 = (x2 - x0) * (x2 - x1);
        let k1 = y0 / d0 + y1 / d1 + y2 / d2;
        let k2 = -(y0 * (x1 + x2) / d0 + y1 * (x0 + x2) / d1 + y2 * (x0 + x1) / d2);
        let k3 = y0 * x1 * x2 / d0 + y1 * x0 * x2 / d1 + y2 * x0 * x1 / d2;
        (k1, k2, k3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_hits_750mhz() {
        let ring = RingOscillator::calibrated();
        assert!((ring.frequency_mhz(0.90) - 750.0).abs() < 1.0);
        assert!((ring.period_ps(0.90) - 1333.3).abs() < 2.0);
    }

    #[test]
    fn rest_is_about_three_times_slower() {
        // Paper Section IV-D: 0.6 V decreases drive for ~3.0x slower.
        let ring = RingOscillator::calibrated();
        let s = ring.speedup_at(0.61);
        assert!((s - 1.0 / 3.0).abs() < 0.05, "rest speedup {s}");
    }

    #[test]
    fn sprint_is_about_1_58x_faster() {
        // Paper Section IV-D: 1.3 V gives roughly a 1.58x boost; at the
        // quantized 1.23 V the ring lands near 1.5x.
        let ring = RingOscillator::calibrated();
        let s = ring.speedup_at(1.23);
        assert!((s - 1.55).abs() < 0.12, "sprint speedup {s}");
        assert!(ring.speedup_at(1.30) > s, "more volts, more speed");
    }

    #[test]
    fn frequency_is_monotone_in_voltage() {
        let ring = RingOscillator::calibrated();
        let mut v = 0.55;
        let mut prev = ring.frequency_mhz(v);
        while v < 1.30 {
            v += 0.01;
            let f = ring.frequency_mhz(v);
            assert!(f > prev, "non-monotone at {v}");
            prev = f;
        }
    }

    #[test]
    fn quadratic_fit_matches_ring_between_probes() {
        let ring = RingOscillator::calibrated();
        let (k1, k2, k3) = ring.quadratic_fit([0.61, 0.90, 1.23]);
        // Like the paper's fitted polynomial, the quadratic tracks the
        // ring closely over the operating range.
        let mut v = 0.61;
        while v <= 1.23 {
            let poly = k1 * v * v + k2 * v + k3;
            let ring_f = ring.frequency_mhz(v);
            assert!(
                (poly - ring_f).abs() / ring_f < 0.03,
                "fit off by >3% at {v}: {poly} vs {ring_f}"
            );
            v += 0.02;
        }
        assert!(k1 < 0.0, "concave fit, like the paper's k1 = -1161.6");
    }

    #[test]
    #[should_panic(expected = "too close to threshold")]
    fn near_threshold_is_rejected() {
        let ring = RingOscillator::calibrated();
        ring.frequency_mhz(0.3);
    }
}

//! Full-array floorplan model (paper Figure 12).
//!
//! The paper's 8×8 post-PnR layouts measure 463×463 µm (IE-CGRA),
//! 495×495 µm (E-CGRA), and 528×528 µm (UE-CGRA) at 750 MHz in
//! TSMC 28 nm. The model composes per-PE areas with an array-level
//! overhead for shared infrastructure — negligible for the inelastic
//! array, small for the elastic one, and substantial for the
//! ultra-elastic one, which carries three global clock networks and
//! the global clock dividers.

use crate::area::{pe_area, CgraKind, REFERENCE_CYCLE_NS};

/// Array-level infrastructure area in µm² (clock spines, dividers,
/// hierarchical gating cells).
pub fn global_overhead_um2(kind: CgraKind) -> f64 {
    match kind {
        CgraKind::Inelastic => 0.0,
        CgraKind::Elastic => 1200.0,
        CgraKind::UltraElastic => 28_500.0,
    }
}

/// Total array area in µm² for an `n_pes`-PE array at a cycle-time
/// target.
pub fn array_area_um2(kind: CgraKind, n_pes: usize, cycle_ns: f64) -> f64 {
    n_pes as f64 * pe_area(kind, cycle_ns) + global_overhead_um2(kind)
}

/// Edge length in µm of the (square) 8×8 layout at 750 MHz — the
/// Figure 12 numbers.
pub fn edge_um(kind: CgraKind) -> f64 {
    array_area_um2(kind, 64, REFERENCE_CYCLE_NS).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure12_edge_lengths() {
        let ie = edge_um(CgraKind::Inelastic);
        let e = edge_um(CgraKind::Elastic);
        let ue = edge_um(CgraKind::UltraElastic);
        assert!((ie - 463.0).abs() < 6.0, "IE edge {ie}");
        assert!((e - 495.0).abs() < 6.0, "E edge {e}");
        assert!((ue - 528.0).abs() < 6.0, "UE edge {ue}");
    }

    #[test]
    fn full_array_overhead_is_about_14_percent() {
        // Paper Section VII-B: UE-CGRA has ~14% area over the E-CGRA.
        let e = array_area_um2(CgraKind::Elastic, 64, REFERENCE_CYCLE_NS);
        let ue = array_area_um2(CgraKind::UltraElastic, 64, REFERENCE_CYCLE_NS);
        let ratio = ue / e;
        assert!((ratio - 1.14).abs() < 0.02, "UE/E = {ratio}");
    }

    #[test]
    fn overhead_ordering() {
        assert!(global_overhead_um2(CgraKind::Inelastic) < global_overhead_um2(CgraKind::Elastic));
        assert!(
            global_overhead_um2(CgraKind::Elastic) < global_overhead_um2(CgraKind::UltraElastic)
        );
    }

    #[test]
    fn area_scales_with_pe_count() {
        let half = array_area_um2(CgraKind::Elastic, 32, REFERENCE_CYCLE_NS);
        let full = array_area_um2(CgraKind::Elastic, 64, REFERENCE_CYCLE_NS);
        assert!(full > 1.9 * half && full < 2.0 * half);
    }
}

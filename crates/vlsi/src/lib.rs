//! VLSI models for the UE-CGRA reproduction (paper Sections V–VII).
//!
//! Calibrated substitutes for the paper's commercial-flow results in
//! TSMC 28 nm:
//!
//! * [`spice`] — an alpha-power-law ring-oscillator model standing in
//!   for SPICE, reproducing the published voltage-frequency anchors;
//! * [`area`] — component-level PE area for the inelastic, elastic,
//!   and ultra-elastic PEs across cycle-time targets (Figures 10/11);
//! * [`energy`] — absolute per-op PE energies (Figure 11);
//! * [`mod@clock_power`] — local + three-network global clock power with
//!   power gating and hierarchical clock gating (Table I);
//! * [`layout`] — full-array floorplan areas (Figure 12).

#![warn(missing_docs)]

pub mod area;
pub mod clock_power;
pub mod energy;
pub mod layout;
pub mod spice;

pub use area::{pe_area, pe_area_reference, CgraKind};
pub use clock_power::{
    clock_power, clock_power_from_edges, ClockPowerBreakdown, ClockPowerParams, GatingConfig,
};
pub use energy::{bypass_energy_pj, op_energy_pj, stall_energy_pj};
pub use layout::{array_area_um2, edge_um};
pub use spice::RingOscillator;

//! Seeded fault-injection campaigns over the paper's kernels.
//!
//! A campaign takes each evaluation kernel, runs a fault-free baseline
//! to learn which crossings actually carry tokens (the protocol
//! report's `flows`), then replays the kernel once per injected fault
//! drawn deterministically from the campaign seed, rotating through
//! all six fault classes. Every specimen's outcome is classified:
//!
//! * `detected` — the protocol checker reported a violation (fatal or
//!   end-of-run); required for every corruption fault that fired;
//! * `tolerated` — the run completed with the baseline's exact memory
//!   and zero violations (the expected fate of handshake and timing
//!   faults: the elastic protocol absorbs delay);
//! * `error` — the pipeline converted the fault into a structured
//!   [`Error`](uecgra_core::Error) (`Protocol`, `Stalled`,
//!   `DidNotTerminate`, ...);
//! * `undetected` — the run completed with corrupted memory and no
//!   violation: a **gate failure**;
//! * `abort` — the run panicked: a **gate failure**.
//!
//! The control leg (`faults_enabled: false`) runs the same kernels
//! with the checker on and the injector off, and must be entirely
//! clean. Campaign results serialize as the additive schema-v2
//! `fault_campaign` section, and are bit-identical for a given seed at
//! any `UECGRA_THREADS` setting (specimens are index-addressed through
//! [`uecgra_util::par_tabulate`]).

use std::panic::{catch_unwind, AssertUnwindSafe};
use uecgra_core::pipeline::{Engine, Policy, RunRequest};
use uecgra_core::Error;
use uecgra_dfg::Kernel;
use uecgra_probe::{CampaignEntry, CampaignSection, RunReport};
use uecgra_rtl::{Fault, FaultPlan};

/// Campaign parameters.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Master seed; per-kernel fault plans derive from it.
    pub seed: u64,
    /// Faults injected per kernel.
    pub per_kernel: usize,
    /// Simulation engine.
    pub engine: Engine,
    /// When false, run the control leg: checker on, injector off.
    pub faults_enabled: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 0xC0FFEE,
            per_kernel: 12,
            engine: Engine::default(),
            faults_enabled: true,
        }
    }
}

/// SplitMix64 finalizer, used to derive independent per-kernel plan
/// seeds from the campaign seed (identical at any thread count).
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One specimen: a kernel index plus the fault to inject (None for the
/// control leg).
struct Specimen<'a> {
    kernel: &'a Kernel,
    baseline_mem: &'a [u32],
    fault: Option<Fault>,
}

fn run_specimen(s: &Specimen<'_>, engine: Engine) -> CampaignEntry {
    let (fault_label, class) = match &s.fault {
        Some(f) => (f.label(), f.kind.class().to_string()),
        None => ("none".to_string(), "control".to_string()),
    };
    let plan = match s.fault {
        Some(f) => FaultPlan::single(f),
        None => FaultPlan::none(),
    };
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        RunRequest::new(s.kernel)
            .policy(Policy::UePerfOpt)
            .faults(plan)
            .engine(engine)
            .run()
    }));
    let (outcome, detail, violations) = match outcome {
        Err(panic) => {
            let msg = panic
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic payload".to_string());
            ("abort", msg, 0)
        }
        Ok(Err(e)) => {
            let n = match &e {
                Error::Protocol(_) => 1,
                _ => 0,
            };
            let label = if matches!(e, Error::Protocol(_)) {
                "detected"
            } else {
                "error"
            };
            (label, uecgra_core::error_chain(&e), n)
        }
        Ok(Ok(run)) => {
            let violations = run.activity.protocol.violations.len() as u64;
            if violations > 0 {
                let first = run.activity.protocol.violations[0];
                ("detected", first.to_string(), violations)
            } else if run.activity.mem == s.baseline_mem {
                ("tolerated", String::new(), 0)
            } else {
                ("undetected", "memory diverged, no violation".into(), 0)
            }
        }
    };
    CampaignEntry {
        kernel: s.kernel.name.to_string(),
        fault: fault_label,
        class,
        outcome: outcome.to_string(),
        detail,
        violations,
    }
}

/// Run a campaign over `kernels`, returning the aggregated section.
///
/// # Panics
///
/// Panics if a fault-free baseline run fails — the campaign needs the
/// baseline memory and flows to target and classify faults at all.
pub fn run_campaign(kernels: &[Kernel], config: &CampaignConfig) -> CampaignSection {
    // Fault-free baselines, in parallel: reference memory + flows.
    let baselines = uecgra_util::par_tabulate(kernels.len(), |i| {
        RunRequest::new(&kernels[i])
            .policy(Policy::UePerfOpt)
            .engine(config.engine)
            .run()
            .unwrap_or_else(|e| panic!("{} baseline failed: {e}", kernels[i].name))
    });

    // Specimens: the control leg injects nothing; the fault leg draws
    // `per_kernel` faults per kernel from crossings that carried at
    // least 8 tokens in the baseline, so every per-nth corruption
    // trigger (nth < 6) actually fires.
    let mut specimens: Vec<Specimen<'_>> = Vec::new();
    for (i, (k, base)) in kernels.iter().zip(&baselines).enumerate() {
        if !config.faults_enabled {
            specimens.push(Specimen {
                kernel: k,
                baseline_mem: &base.activity.mem,
                fault: None,
            });
            continue;
        }
        let targets: Vec<_> = base
            .activity
            .protocol
            .flows
            .iter()
            .filter(|(_, _, n)| *n >= 8)
            .map(|&(pe, dir, _)| (pe, dir))
            .collect();
        let plan = FaultPlan::random_at(mix(config.seed ^ i as u64), &targets, config.per_kernel);
        for fault in plan.faults {
            specimens.push(Specimen {
                kernel: k,
                baseline_mem: &base.activity.mem,
                fault: Some(fault),
            });
        }
    }

    let entries = uecgra_util::par_tabulate(specimens.len(), |i| {
        run_specimen(&specimens[i], config.engine)
    });

    let count = |o: &str| entries.iter().filter(|e| e.outcome == o).count() as u64;
    CampaignSection {
        seed: config.seed,
        faults_enabled: config.faults_enabled,
        detected: count("detected"),
        tolerated: count("tolerated"),
        structured_errors: count("error"),
        undetected: count("undetected"),
        entries,
    }
}

/// The campaign gate: no aborts, no silent corruptions — and on the
/// control leg, no violations and no non-tolerated outcome at all.
pub fn gate_passes(section: &CampaignSection) -> bool {
    let aborts = section
        .entries
        .iter()
        .filter(|e| e.outcome == "abort")
        .count();
    if aborts > 0 || section.undetected > 0 {
        return false;
    }
    if !section.faults_enabled {
        return section.detected == 0
            && section.structured_errors == 0
            && section.entries.iter().all(|e| e.outcome == "tolerated");
    }
    true
}

/// Wrap a campaign section in a [`RunReport`] (the v2 schema carrier).
pub fn campaign_report(name: impl Into<String>, section: CampaignSection) -> RunReport {
    RunReport {
        name: name.into(),
        stop: "Analytic".to_string(),
        fault_campaign: Some(section),
        ..RunReport::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uecgra_dfg::kernels;

    fn tiny_kernels() -> Vec<Kernel> {
        vec![
            kernels::llist::build_with_hops(40),
            kernels::dither::build_with_pixels(40),
        ]
    }

    #[test]
    fn control_leg_is_clean() {
        let config = CampaignConfig {
            faults_enabled: false,
            ..CampaignConfig::default()
        };
        let section = run_campaign(&tiny_kernels(), &config);
        assert!(gate_passes(&section), "{:?}", section.entries);
        assert_eq!(section.detected + section.structured_errors, 0);
        assert_eq!(section.entries.len(), 2);
    }

    #[test]
    fn smoke_campaign_detects_every_corruption_and_never_aborts() {
        let config = CampaignConfig {
            seed: 11,
            per_kernel: 6, // one rotation through all six classes
            ..CampaignConfig::default()
        };
        let section = run_campaign(&tiny_kernels(), &config);
        assert!(gate_passes(&section), "{:?}", section.entries);
        assert_eq!(section.entries.len(), 12);
        for e in &section.entries {
            let corruption = matches!(e.class.as_str(), "flip" | "drop" | "dup");
            if corruption {
                assert!(
                    e.outcome == "detected" || e.outcome == "error",
                    "{}: corruption fault {} escaped as `{}`",
                    e.kernel,
                    e.fault,
                    e.outcome
                );
            } else {
                assert_ne!(e.outcome, "abort", "{}: {}", e.kernel, e.fault);
                assert_ne!(e.outcome, "undetected", "{}: {}", e.kernel, e.fault);
            }
        }
    }

    #[test]
    fn campaigns_are_deterministic_in_seed() {
        let config = CampaignConfig {
            seed: 5,
            per_kernel: 4,
            ..CampaignConfig::default()
        };
        let ks = tiny_kernels();
        let a = run_campaign(&ks, &config);
        let b = run_campaign(&ks, &config);
        assert_eq!(a, b);
    }
}

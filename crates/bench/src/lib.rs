//! Shared helpers for the reproduction harness binaries.
//!
//! Each `src/bin/*` binary regenerates one table or figure of the
//! paper (see `DESIGN.md`'s experiment index); this library provides
//! the kernels at evaluation scale and table formatting.

#![warn(missing_docs)]

pub mod campaign;

use uecgra_core::experiments::KernelRuns;
use uecgra_core::pipeline::Engine;
use uecgra_core::report::run_report;
use uecgra_dfg::{kernels, Kernel};
use uecgra_probe::RunReport;

/// The paper's evaluation kernels at full scale (1000 iterations; 32
/// for `bf`, matching Section VI-C).
pub fn evaluation_kernels() -> Vec<Kernel> {
    kernels::all_kernels()
}

/// The evaluation kernels at a reduced scale for quick runs.
pub fn quick_kernels() -> Vec<Kernel> {
    vec![
        kernels::llist::build_with_hops(120),
        kernels::dither::build_with_pixels(120),
        kernels::susan::build_with_iters(120),
        kernels::fft::build_with_group(120),
        kernels::bf::build_with_rounds(32),
    ]
}

/// Print a horizontal rule sized to a header line.
pub fn rule(header: &str) {
    println!("{}", "-".repeat(header.len()));
}

/// Print a table header with a rule under it.
pub fn header(line: &str) {
    println!("{line}");
    rule(line);
}

/// Format a ratio with 2 decimals.
pub fn r2(x: f64) -> String {
    format!("{x:.2}")
}

/// The `--json <path>` flag shared by every reproduction binary.
///
/// Returns the requested report path, or `None` when the binary should
/// only print its table. Other argv entries are left for the binary
/// (only `smoke_timing` takes any).
pub fn json_path() -> Option<String> {
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        if flag == "--json" {
            return Some(argv.next().expect("--json needs a value"));
        }
    }
    None
}

/// The `--engine dense|event` flag shared by every reproduction
/// binary.
///
/// Defaults to the event-driven engine ([`Engine::default`]). Both
/// engines are bit-identical by contract, so the choice never shows up
/// in a report — `reproduce_all --engine both` runs the whole suite
/// twice and asserts exactly that.
///
/// # Panics
///
/// Panics on an unrecognized engine name.
pub fn engine_arg() -> Engine {
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        if flag == "--engine" {
            let v = argv.next().expect("--engine needs a value");
            return Engine::parse(&v)
                .unwrap_or_else(|| panic!("unknown engine {v} (use dense|event)"));
        }
    }
    Engine::default()
}

/// Write a report document (a JSON array of [`RunReport`]s) to `path`
/// in the probe crate's canonical rendering.
///
/// # Panics
///
/// Panics on I/O failure — the reproduction binaries treat an
/// unwritable report path like any other harness failure.
pub fn write_reports(path: &str, reports: &[RunReport]) {
    std::fs::write(path, RunReport::render_all(reports))
        .unwrap_or_else(|e| panic!("writing {path}: {e}"));
    eprintln!("wrote {} report(s) to {path}", reports.len());
}

/// Full telemetry reports for one kernel's three policy runs, named
/// `<kernel>/<policy label>`.
pub fn kernel_run_reports(runs: &KernelRuns) -> Vec<RunReport> {
    [&runs.e, &runs.eopt, &runs.popt]
        .into_iter()
        .map(|run| {
            run_report(
                format!("{}/{}", runs.kernel.name, run.policy.label()),
                Some(runs.kernel.name),
                run,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_are_available_at_both_scales() {
        assert_eq!(evaluation_kernels().len(), 5);
        assert_eq!(quick_kernels().len(), 5);
        for k in evaluation_kernels() {
            assert!(k.iters >= 32);
        }
    }
}

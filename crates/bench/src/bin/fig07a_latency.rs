//! Figure 7(a): throughput versus inter-PE latency (cycles per hop).

use uecgra_bench::{header, json_path, write_reports};
use uecgra_clock::VfMode;
use uecgra_core::report::metrics_report;
use uecgra_dfg::kernels::synthetic;
use uecgra_model::{DfgSimulator, SimConfig};

fn throughput(n_or_chain: Option<usize>, hop: u32) -> f64 {
    let s = match n_or_chain {
        Some(n) => synthetic::cycle_n(n),
        None => synthetic::chain(6),
    };
    let config = SimConfig {
        marker: Some(s.iter_marker),
        max_marker_fires: Some(120),
        hop_latency: hop,
        ..SimConfig::default()
    };
    let modes = vec![VfMode::Nominal; s.dfg.node_count()];
    let r = DfgSimulator::new(&s.dfg, modes, vec![], config).run();
    r.throughput(20).expect("steady state")
}

fn main() {
    header("Figure 7(a): throughput vs inter-PE latency (iterations/cycle)");
    println!(
        "{:<12} {:>8} {:>8} {:>8}",
        "benchmark", "1 cyc", "2 cyc", "3 cyc"
    );
    let mut metrics = Vec::new();
    for (label, which) in [
        ("cycle-2", Some(2)),
        ("cycle-4", Some(4)),
        ("cycle-8", Some(8)),
        ("chain", None),
    ] {
        let t: Vec<f64> = (1..=3).map(|h| throughput(which, h)).collect();
        println!(
            "{label:<12} {:>8.3} {:>8.3} {:>8.3}   (degradation at 2 cyc: {:.1}x)",
            t[0],
            t[1],
            t[2],
            t[0] / t[1]
        );
        for (hop, thpt) in (1..=3).zip(&t) {
            metrics.push((format!("{label}_hop{hop}_throughput"), *thpt));
        }
    }
    if let Some(path) = json_path() {
        write_reports(&path, &[metrics_report("fig07a_latency", metrics)]);
    }
    println!("\nPaper: two-cycle synchronization latency (async FIFOs) degrades");
    println!("recurrence-bound kernels by 2-3x; high performance needs ~zero added latency.");
}

//! Figure 11: PE energy per operation (E-CGRA vs UE-CGRA) and PE area
//! breakdowns for all three variants.

use uecgra_bench::{header, json_path, write_reports};
use uecgra_core::report::metrics_report;
use uecgra_vlsi::area::{component_areas, pe_area_reference, CgraKind};
use uecgra_vlsi::energy::figure11_bars;

fn main() {
    let mut metrics = Vec::new();
    header("Figure 11 (left): PE energy per op at nominal VF (pJ)");
    println!("{:<8} {:>8} {:>8}", "op", "E-CGRA", "UE-CGRA");
    for (name, e, ue) in figure11_bars() {
        println!("{name:<8} {e:>8.2} {ue:>8.2}");
        metrics.push((format!("energy_{name}_e_pj"), e));
        metrics.push((format!("energy_{name}_ue_pj"), ue));
    }
    println!("\n(average UE overhead: 21%, of which suppression logic ~1.3%)");

    header("\nFigure 11 (right): PE area breakdown (um^2)");
    for kind in CgraKind::ALL {
        println!("\n{}:", kind.label());
        let parts = component_areas(kind);
        for (name, a) in &parts {
            println!("  {name:<14} {a:>7.0}");
            metrics.push((format!("area_{}_{name}_um2", kind.label()), *a));
        }
        println!("  {:<14} {:>7.0}", "total", pe_area_reference(kind));
        metrics.push((
            format!("area_{}_total_um2", kind.label()),
            pe_area_reference(kind),
        ));
    }
    if let Some(path) = json_path() {
        write_reports(&path, &[metrics_report("fig11_breakdown", metrics)]);
    }
}

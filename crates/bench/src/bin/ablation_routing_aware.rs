//! Ablation: logical vs routing-aware power mapping.
//!
//! The paper's power mapper measures energy-delay on the logical DFG;
//! this reproduction can additionally feed the routed per-edge hop
//! counts into `MeasureEnergyDelay` (the minimal version of the
//! physically-constrained mapping the paper leaves as future work).
//! This binary quantifies what that buys.

use uecgra_bench::{engine_arg, header, json_path, r2, write_reports};
use uecgra_clock::VfMode;
use uecgra_compiler::bitstream::Bitstream;
use uecgra_compiler::mapping::{ArrayShape, MappedKernel};
use uecgra_compiler::power_map::{power_map_routed, Objective};
use uecgra_core::report::metrics_report;
use uecgra_dfg::kernels;
use uecgra_rtl::fabric::{Fabric, FabricConfig};

fn measure(k: &uecgra_dfg::Kernel, modes: &[VfMode], mapped: &MappedKernel) -> f64 {
    let bs = Bitstream::assemble(&k.dfg, mapped, modes).expect("assembles");
    let config = FabricConfig {
        marker: Some(mapped.coord_of(k.iter_marker)),
        ..FabricConfig::default()
    };
    let act = Fabric::new(&bs, k.mem.clone(), config).run_with(engine_arg());
    act.steady_ii(8).expect("steady state")
}

fn main() {
    header("Ablation: POpt speedup with logical vs routing-aware MeasureEnergyDelay");
    println!(
        "{:<8} {:>8} {:>10} {:>10} {:>12}",
        "kernel", "E-II", "logical", "routed", "routed gain"
    );
    let mut metrics = Vec::new();
    for k in [
        kernels::llist::build_with_hops(120),
        kernels::dither::build_with_pixels(120),
        kernels::fft::build_with_group(120),
    ] {
        let mapped = MappedKernel::map(&k.dfg, ArrayShape::default(), 7).expect("maps");
        let nominal = vec![VfMode::Nominal; k.dfg.node_count()];
        let e_ii = measure(&k, &nominal, &mapped);

        let logical = power_map_routed(
            &k.dfg,
            k.mem.clone(),
            k.iter_marker,
            Objective::Performance,
            &[],
        );
        let extra: Vec<u32> = k.dfg.edges().map(|(id, _)| mapped.extra_hops(id)).collect();
        let routed = power_map_routed(
            &k.dfg,
            k.mem.clone(),
            k.iter_marker,
            Objective::Performance,
            &extra,
        );
        let ii_logical = measure(&k, &logical.node_modes, &mapped);
        let ii_routed = measure(&k, &routed.node_modes, &mapped);
        println!(
            "{:<8} {:>8} {:>10} {:>10} {:>11}%",
            k.name,
            r2(e_ii),
            r2(e_ii / ii_logical),
            r2(e_ii / ii_routed),
            r2(100.0 * (ii_logical / ii_routed - 1.0))
        );
        metrics.push((format!("{}_e_ii", k.name), e_ii));
        metrics.push((format!("{}_speedup_logical", k.name), e_ii / ii_logical));
        metrics.push((format!("{}_speedup_routed", k.name), e_ii / ii_routed));
    }
    if let Some(path) = json_path() {
        write_reports(&path, &[metrics_report("ablation_routing_aware", metrics)]);
    }
    println!("\nSeeing routed latencies lets the mapper sprint the cycles that are");
    println!("actually critical after place-and-route and rest slack that only");
    println!("exists physically.");
}

//! Q&A VIII-A: scalability — does the UE-CGRA's triple clock network
//! stay affordable as the array grows?
//!
//! Maps the dither kernel onto 8x8 and 16x16 arrays and compares
//! hierarchically-gated clock power: the compiler gates every cluster
//! that selects no PE on a given network, so the UE overhead stays
//! bounded as unused area grows.

use uecgra_bench::{header, json_path, write_reports};
use uecgra_clock::VfMode;
use uecgra_compiler::bitstream::{Bitstream, PeRole};
use uecgra_compiler::mapping::{ArrayShape, MappedKernel};
use uecgra_compiler::power_map::{power_map, Objective};
use uecgra_core::report::metrics_report;
use uecgra_dfg::kernels;
use uecgra_vlsi::area::CgraKind;
use uecgra_vlsi::clock_power::{clock_power, ClockPowerParams, GatingConfig};

fn clock_grid(bs: &Bitstream) -> Vec<Vec<Option<VfMode>>> {
    bs.grid
        .iter()
        .map(|row| {
            row.iter()
                .map(|cfg| match cfg.role {
                    PeRole::Gated => None,
                    _ => Some(cfg.clk),
                })
                .collect()
        })
        .collect()
}

fn main() {
    header("Ablation: clock power vs array size (dither POpt mapping, mW)");
    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>14}",
        "array", "PEs used", "ungated clk", "gated clk", "gated/ungated"
    );
    let k = kernels::dither::build_with_pixels(120);
    let pm = power_map(&k.dfg, k.mem.clone(), k.iter_marker, Objective::Performance);
    // Each array size maps and measures independently; format the rows
    // in parallel and print them in order afterwards.
    let rows = uecgra_core::par::par_map(&[8usize, 16], |&dim| {
        let shape = ArrayShape {
            width: dim,
            height: dim,
        };
        let mapped = MappedKernel::map(&k.dfg, shape, 7).expect("maps");
        let bs = Bitstream::assemble(&k.dfg, &mapped, &pm.node_modes).expect("assembles");
        let grid = clock_grid(&bs);
        // Scale the full-tree network power with array area (buffers
        // grow with the spanned region).
        let scale = (dim * dim) as f64 / 64.0;
        let params = ClockPowerParams {
            ue_global_net_mw: [0.12 * scale, 0.36 * scale, 0.54 * scale],
            e_global_net_mw: 0.24 * scale,
            ..ClockPowerParams::default()
        };
        let ungated = clock_power(
            CgraKind::UltraElastic,
            &params,
            &grid,
            GatingConfig::POWER_ONLY,
        );
        let gated = clock_power(CgraKind::UltraElastic, &params, &grid, GatingConfig::FULL);
        let used = grid.iter().flatten().filter(|m| m.is_some()).count();
        let line = format!(
            "{:<8} {:>10} {:>12.2} {:>12.2} {:>13.0}%",
            format!("{dim}x{dim}"),
            used,
            ungated.total_clock_mw(),
            gated.total_clock_mw(),
            100.0 * gated.total_clock_mw() / ungated.total_clock_mw()
        );
        (line, used, ungated.total_clock_mw(), gated.total_clock_mw())
    });
    let mut metrics = Vec::new();
    for (&dim, (line, used, ungated_mw, gated_mw)) in [8usize, 16].iter().zip(&rows) {
        println!("{line}");
        metrics.push((format!("{dim}x{dim}_pes_used"), *used as f64));
        metrics.push((format!("{dim}x{dim}_ungated_clock_mw"), *ungated_mw));
        metrics.push((format!("{dim}x{dim}_gated_clock_mw"), *gated_mw));
    }
    if let Some(path) = json_path() {
        write_reports(&path, &[metrics_report("ablation_scaling", metrics)]);
    }
    println!("\nThe kernel occupies the same clusters regardless of array size, so");
    println!("hierarchical gating prunes the growing idle region: gated clock power");
    println!("stays nearly flat while the ungated trees scale with area — the");
    println!("paper's argument that large UE islands cost like large E islands.");
}

//! Seeded fault-injection campaign over the Table II kernels.
//!
//! ```text
//! fault_campaign [--seed N] [--per-kernel N] [--engine dense|event]
//!                [--disable-faults] [--full] [--json out.json]
//! ```
//!
//! Injects `--per-kernel` deterministic faults (rotating through all
//! six classes: flip/drop/dup/stick-valid/stick-ready/stall-domain)
//! into each kernel's busy crossings and classifies every outcome.
//! `--disable-faults` runs the control leg (checker on, injector off),
//! which must be entirely clean. The process exits nonzero when the
//! gate fails: any abort, any silent corruption, or any control-leg
//! violation. `--json` writes the schema-v2 `fault_campaign` report.

use uecgra_bench::campaign::{campaign_report, gate_passes, run_campaign, CampaignConfig};
use uecgra_bench::{header, quick_kernels, write_reports};
use uecgra_core::pipeline::Engine;

fn parse_flags() -> (CampaignConfig, bool, Option<String>) {
    let mut config = CampaignConfig::default();
    let mut full = false;
    let mut json = None;
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = || {
            argv.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--seed" => config.seed = value().parse().expect("--seed: not an integer"),
            "--per-kernel" => {
                config.per_kernel = value().parse().expect("--per-kernel: not an integer")
            }
            "--engine" => {
                let v = value();
                config.engine = Engine::parse(&v)
                    .unwrap_or_else(|| panic!("unknown engine {v} (use dense|event)"));
            }
            "--disable-faults" => config.faults_enabled = false,
            "--full" => full = true,
            "--json" => json = Some(value()),
            other => panic!("unknown flag {other}"),
        }
    }
    (config, full, json)
}

fn main() {
    let (config, full, json) = parse_flags();
    let kernels = if full {
        uecgra_bench::evaluation_kernels()
    } else {
        quick_kernels()
    };
    let leg = if config.faults_enabled {
        "fault injection"
    } else {
        "control (faults disabled)"
    };
    eprintln!(
        "fault campaign: {} kernels, {} leg, seed {}, {} faults/kernel",
        kernels.len(),
        leg,
        config.seed,
        config.per_kernel
    );

    let section = run_campaign(&kernels, &config);

    header("kernel        fault                                    class         outcome");
    for e in &section.entries {
        println!(
            "{:<13} {:<40} {:<13} {:<10} {}",
            e.kernel, e.fault, e.class, e.outcome, e.detail
        );
    }
    println!();
    println!(
        "detected {}  tolerated {}  structured-errors {}  undetected {}",
        section.detected, section.tolerated, section.structured_errors, section.undetected
    );

    let ok = gate_passes(&section);
    if let Some(path) = json {
        write_reports(&path, &[campaign_report("fault_campaign", section)]);
    }
    if !ok {
        eprintln!("fault_campaign: GATE FAILED (abort or silent corruption present)");
        std::process::exit(1);
    }
    eprintln!("fault_campaign: gate passed");
}

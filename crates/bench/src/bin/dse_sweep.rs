//! DSE sweep over the Table II kernels: run the design-space explorer
//! on every evaluation kernel with one shared evaluation cache, print
//! the frontier-vs-greedy comparison, and enforce the dominance gate
//! (the frontier's best EDP must match or beat the paper's greedy
//! `power_map` on every kernel — structural in the explorer, asserted
//! here end to end).
//!
//! Each kernel is mapped first (seed [`SEED`]) so the explorer sees
//! the *routed* per-edge bypass hops, exactly like the pipeline's
//! power-mapping pass — the greedy baseline inside `explore` is then
//! the same `power_map_routed` result the policy runs use.
//!
//! Flags:
//!
//! * `--json <path>` — write one schema-v3 report per kernel (dse
//!   section only; no timings, no engine tag, so the bytes are
//!   identical at any `UECGRA_THREADS` and across cold/warm caches).
//! * `--engine dense|event` — accepted for `reproduce_all` harness
//!   compatibility and ignored: the explorer is analytical, so the
//!   report has no engine dependence (the harness's cross-engine
//!   byte-compare then passes trivially, which is the point).
//! * `--cache <path>` — persistent evaluation cache (loaded if
//!   present, saved back after the sweep).
//! * `--budget <N>` — unique-evaluation budget per kernel.
//! * `--rtl-check` — cross-check every kernel's best assignment on
//!   both cycle-level engines against the host reference (slow;
//!   off by default).

use uecgra_bench::{evaluation_kernels, header, json_path, write_reports};
use uecgra_compiler::mapping::{ArrayShape, MappedKernel};
use uecgra_core::experiments::SEED;
use uecgra_dse::{explore, rtl_crosscheck, DseConfig, EvalCache};
use uecgra_probe::RunReport;

struct Flags {
    cache: Option<String>,
    budget: usize,
    rtl_check: bool,
}

fn flags() -> Flags {
    let mut f = Flags {
        cache: None,
        budget: 256,
        rtl_check: false,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--cache" => f.cache = Some(argv.next().expect("--cache needs a value")),
            "--budget" => {
                f.budget = argv
                    .next()
                    .expect("--budget needs a value")
                    .parse()
                    .expect("--budget must be a positive integer");
                assert!(f.budget > 0, "--budget must be at least 1");
            }
            "--rtl-check" => f.rtl_check = true,
            // --json/--engine are read by the shared helpers.
            "--json" | "--engine" => {
                argv.next();
            }
            other => panic!("unknown flag {other:?}"),
        }
    }
    f
}

fn main() {
    let f = flags();
    let cache = match &f.cache {
        Some(path) => EvalCache::load(path).expect("loading evaluation cache"),
        None => EvalCache::new(),
    };
    let cfg = DseConfig {
        seed: SEED,
        budget: f.budget,
        ..DseConfig::default()
    };

    let line = format!(
        "{:<8} {:>10} {:>6} {:>6} {:>8} {:>10} {:>10} {:>7}",
        "kernel", "strategy", "groups", "evals", "frontier", "greedy EDP", "best EDP", "ratio"
    );
    header(&line);

    let mut reports = Vec::new();
    for k in evaluation_kernels() {
        let mapped = MappedKernel::map(&k.dfg, ArrayShape::default(), SEED)
            .unwrap_or_else(|e| panic!("{}: mapping failed: {e}", k.name));
        let extra: Vec<u32> = k.dfg.edges().map(|(id, _)| mapped.extra_hops(id)).collect();
        let out = explore(&k.dfg, k.mem.clone(), k.iter_marker, &extra, &cfg, &cache);
        assert!(
            out.dominates_baseline(),
            "{}: DSE frontier (EDP {:.4}) regressed past the greedy baseline (EDP {:.4})",
            k.name,
            out.best.edp(),
            out.baseline.edp()
        );
        if f.rtl_check {
            rtl_crosscheck(&k, &out.best.modes, SEED)
                .unwrap_or_else(|e| panic!("{}: RTL cross-check failed: {e}", k.name));
        }
        println!(
            "{:<8} {:>10} {:>6} {:>6} {:>8} {:>10.3} {:>10.3} {:>7.3}",
            k.name,
            out.strategy,
            out.groups,
            out.evaluations,
            out.frontier.len(),
            out.baseline.edp(),
            out.best.edp(),
            out.best.edp() / out.baseline.edp(),
        );
        reports.push(RunReport {
            name: format!("{}/dse", k.name),
            kernel: Some(k.name.to_string()),
            seed: Some(SEED),
            stop: "Analytic".to_string(),
            dse: Some(out.report_section(&cfg)),
            ..RunReport::default()
        });
    }
    if f.rtl_check {
        println!("rtl check: every best assignment matches the host reference on both engines");
    }
    eprintln!(
        "cache: {} entries, {} hits / {} misses ({:.0}% hit rate)",
        cache.len(),
        cache.hits(),
        cache.misses(),
        cache.hit_rate() * 100.0
    );
    if let Some(path) = &f.cache {
        cache.save(path).expect("saving evaluation cache");
        eprintln!("wrote {} cache entries to {path}", cache.len());
    }
    if let Some(path) = json_path() {
        write_reports(&path, &reports);
    }
}

//! Figure 7(c): throughput versus sprint frequency.

use uecgra_bench::{header, json_path, write_reports};
use uecgra_clock::{ClockSet, VfMode};
use uecgra_core::report::metrics_report;
use uecgra_dfg::kernels::synthetic;
use uecgra_model::{DfgSimulator, SimConfig};

/// Nominal divisor 6 lets sprint divisors 6..2 express multipliers
/// 1.0x, 1.2x, 1.5x, 2.0x, 3.0x.
fn throughput(n: usize, sprint_div: u32) -> f64 {
    let s = synthetic::cycle_n(n);
    let clocks = ClockSet::new([18, 6, sprint_div]).expect("valid plan");
    let mut modes = vec![VfMode::Nominal; s.dfg.node_count()];
    for c in &s.cycle_nodes {
        modes[c.index()] = VfMode::Sprint;
    }
    let config = SimConfig {
        clocks,
        marker: Some(s.iter_marker),
        max_marker_fires: Some(200),
        ..SimConfig::default()
    };
    let r = DfgSimulator::new(&s.dfg, modes, vec![], config).run();
    r.throughput(30).expect("steady state")
}

fn main() {
    header("Figure 7(c): throughput vs sprint frequency (iterations/cycle)");
    let sweeps = [(6u32, 1.0), (5, 1.2), (4, 1.5), (3, 2.0), (2, 3.0)];
    print!("{:<12}", "benchmark");
    for (_, m) in sweeps {
        print!(" {:>8}", format!("{m:.1}x"));
    }
    println!();
    let mut metrics = Vec::new();
    for n in [2usize, 4, 8] {
        print!("cycle-{n:<6}");
        for (d, m) in sweeps {
            let t = throughput(n, d);
            metrics.push((format!("cycle-{n}_sprint_{m:.1}x_throughput"), t));
            print!(" {t:>8.3}");
        }
        println!();
    }
    if let Some(path) = json_path() {
        write_reports(&path, &[metrics_report("fig07c_sprint", metrics)]);
    }
    println!("\nPaper: speedup is linear in sprint frequency until the producer-rate");
    println!("ceiling; the realistic VLSI region tops out near 1.5x (1.58x pre-quantization).");
}

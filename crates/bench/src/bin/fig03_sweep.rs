//! Figure 3: analytical-model case study — sweep per-group VF settings
//! on the 13-node synthetic DFG and report the frontier.

use uecgra_bench::{header, json_path, r2, write_reports};
use uecgra_core::report::metrics_report;
use uecgra_dfg::kernels::synthetic;
use uecgra_model::sweep::sweep_group_modes;

fn main() {
    let cs = synthetic::fig3_case_study();
    let sweep = sweep_group_modes(&cs.dfg, vec![0; 4096], cs.iter_marker);
    header("Figure 3: VF sweep over the 13-node case-study DFG");
    println!("configurations evaluated: {}", sweep.points.len());

    let circled = sweep
        .points
        .iter()
        .filter(|p| p.speedup >= 1.3)
        .max_by(|a, b| a.efficiency.partial_cmp(&b.efficiency).expect("finite"))
        .expect("sweep nonempty");
    println!(
        "sprint-and-rest point:  {}x speedup, {}x energy efficiency (paper circled: 1.4x, 1.2x)",
        r2(circled.speedup),
        r2(circled.efficiency)
    );
    let effmax = sweep
        .points
        .iter()
        .filter(|p| (p.speedup - 1.0).abs() < 1e-9)
        .max_by(|a, b| a.efficiency.partial_cmp(&b.efficiency).expect("finite"))
        .expect("nominal-speed point exists");
    println!(
        "best same-performance efficiency: {}x (paper: ~2.2x from resting)",
        r2(effmax.efficiency)
    );
    println!("\nPareto frontier (speedup, efficiency):");
    let pareto = sweep.pareto_front();
    for p in &pareto {
        println!("  {:>5}  {:>5}", r2(p.speedup), r2(p.efficiency));
    }

    if let Some(path) = json_path() {
        let mut metrics = vec![
            ("configurations".into(), sweep.points.len() as f64),
            ("circled_speedup".into(), circled.speedup),
            ("circled_efficiency".into(), circled.efficiency),
            ("same_perf_best_efficiency".into(), effmax.efficiency),
            ("pareto_points".into(), pareto.len() as f64),
        ];
        for (i, p) in pareto.iter().enumerate() {
            metrics.push((format!("pareto_{i}_speedup"), p.speedup));
            metrics.push((format!("pareto_{i}_efficiency"), p.efficiency));
        }
        write_reports(&path, &[metrics_report("fig03_sweep", metrics)]);
    }
}

//! Figure 3: analytical-model case study — sweep per-group VF settings
//! on the 13-node synthetic DFG and report the frontier.

use uecgra_bench::{header, r2};
use uecgra_dfg::kernels::synthetic;
use uecgra_model::sweep::sweep_group_modes;

fn main() {
    let cs = synthetic::fig3_case_study();
    let sweep = sweep_group_modes(&cs.dfg, vec![0; 4096], cs.iter_marker);
    header("Figure 3: VF sweep over the 13-node case-study DFG");
    println!("configurations evaluated: {}", sweep.points.len());

    let circled = sweep
        .points
        .iter()
        .filter(|p| p.speedup >= 1.3)
        .max_by(|a, b| a.efficiency.partial_cmp(&b.efficiency).expect("finite"))
        .expect("sweep nonempty");
    println!(
        "sprint-and-rest point:  {}x speedup, {}x energy efficiency (paper circled: 1.4x, 1.2x)",
        r2(circled.speedup),
        r2(circled.efficiency)
    );
    let effmax = sweep
        .points
        .iter()
        .filter(|p| (p.speedup - 1.0).abs() < 1e-9)
        .max_by(|a, b| a.efficiency.partial_cmp(&b.efficiency).expect("finite"))
        .expect("nominal-speed point exists");
    println!(
        "best same-performance efficiency: {}x (paper: ~2.2x from resting)",
        r2(effmax.efficiency)
    );
    println!("\nPareto frontier (speedup, efficiency):");
    for p in sweep.pareto_front() {
        println!("  {:>5}  {:>5}", r2(p.speedup), r2(p.efficiency));
    }
}

//! Q&A VIII-B: how does the UE-CGRA compare to an out-of-order core?
//!
//! Schedules each kernel's dynamic RV32IM trace on an idealized
//! 4-wide/128-entry OoO machine (perfect branch prediction, perfect
//! memory disambiguation) and compares against the in-order core and
//! the UE-CGRA POpt fabric.

use uecgra_bench::{engine_arg, header, json_path, r2, write_reports};
use uecgra_core::experiments::SEED;
use uecgra_core::pipeline::{Policy, RunRequest};
use uecgra_core::report::{metrics_report, run_report};
use uecgra_dfg::kernels;
use uecgra_system::{programs, run_ooo, OooParams};

fn main() {
    header("Ablation: idealized out-of-order core vs UE-CGRA (cycles per iteration)");
    println!(
        "{:<8} {:>9} {:>9} {:>10} | {:>9} {:>9}",
        "kernel", "in-order", "ideal OoO", "OoO gain", "UE POpt", "POpt/OoO"
    );
    let mut reports = Vec::new();
    let mut metrics = Vec::new();
    for k in [
        kernels::llist::build_with_hops(400),
        kernels::dither::build_with_pixels(400),
        kernels::susan::build_with_iters(400),
        kernels::fft::build_with_group(400),
        kernels::bf::build_with_rounds(32),
    ] {
        let io = programs::run_on_core(k.name, k.iters, k.mem.clone()).expect("runs");
        let program = match k.name {
            "llist" => programs::llist_program(k.iters),
            "dither" => programs::dither_program(k.iters),
            "susan" => programs::susan_program(k.iters),
            "fft" => programs::fft_program(k.iters),
            _ => programs::bf_program(k.iters),
        };
        let ooo = run_ooo(program, k.mem.clone(), OooParams::default()).expect("runs");
        let popt = RunRequest::new(&k)
            .policy(Policy::UePerfOpt)
            .seed(SEED)
            .engine(engine_arg())
            .run()
            .expect("runs");
        let iters = k.iters as f64;
        let cpi_io = io.cycles as f64 / iters;
        let cpi_ooo = ooo.cycles as f64 / iters;
        let cpi_ue = popt.activity.nominal_cycles() / iters;
        println!(
            "{:<8} {:>9} {:>9} {:>10} | {:>9} {:>9}",
            k.name,
            r2(cpi_io),
            r2(cpi_ooo),
            r2(cpi_io / cpi_ooo),
            r2(cpi_ue),
            r2(cpi_ooo / cpi_ue)
        );
        metrics.push((format!("{}_cpi_inorder", k.name), cpi_io));
        metrics.push((format!("{}_cpi_ooo", k.name), cpi_ooo));
        metrics.push((format!("{}_cpi_ue_popt", k.name), cpi_ue));
        reports.push(run_report(
            format!("ablation_ooo/{}/{}", k.name, popt.policy.label()),
            Some(k.name),
            &popt,
        ));
    }
    if let Some(path) = json_path() {
        reports.push(metrics_report("ablation_ooo", metrics));
        write_reports(&path, &reports);
    }
    println!("\nPaper's point reproduced: the OoO core extracts ILP (fft) but cannot");
    println!("accelerate true-dependency chains (llist/bf barely move), while the");
    println!("UE-CGRA sprints them — and a big core sprinting monolithically would");
    println!("pay vastly more energy than per-PE DVFS (paper: ~0.05x efficiency).");
}

//! Extension kernels beyond the paper: Table-II-style results for
//! CRC-32 (load-carried recurrence), SpMV row gather, and max-scan
//! (data-dependent control), showing the stack generalizes.

use uecgra_bench::{engine_arg, header, json_path, kernel_run_reports, r2, write_reports};
use uecgra_core::experiments::{run_all_policies_with, SEED};
use uecgra_core::report::metrics_report;
use uecgra_dfg::kernels::extra::extra_kernels;

fn main() {
    header("Extension kernels: UE-CGRA vs E-CGRA (relative)");
    println!(
        "{:<9} {:>6} {:>7} | {:>9} {:>9} | {:>9} {:>9}",
        "kernel", "ideal", "real", "EOpt perf", "EOpt eff", "POpt perf", "POpt eff"
    );
    let mut reports = Vec::new();
    let engine = engine_arg();
    for k in extra_kernels(400) {
        let runs = run_all_policies_with(&k, SEED, engine).expect("kernel runs");
        let row = runs.table2_row();
        println!(
            "{:<9} {:>6} {:>7} | {:>9} {:>9} | {:>9} {:>9}",
            row.kernel,
            k.ideal_recurrence,
            r2(runs.e.ii()),
            r2(row.eopt_perf),
            r2(row.eopt_eff),
            r2(row.popt_perf),
            r2(row.popt_eff)
        );
        reports.extend(kernel_run_reports(&runs));
        reports.push(metrics_report(
            format!("extra_kernels/{}", row.kernel),
            vec![
                ("ideal_recurrence".into(), k.ideal_recurrence as f64),
                ("e_ii".into(), runs.e.ii()),
                ("eopt_perf".into(), row.eopt_perf),
                ("eopt_eff".into(), row.eopt_eff),
                ("popt_perf".into(), row.popt_perf),
                ("popt_eff".into(), row.popt_eff),
            ],
        ));
    }
    if let Some(path) = json_path() {
        write_reports(&path, &reports);
    }
    println!("\ncrc32 behaves like llist (a load on the recurrence: only DVFS helps);");
    println!("spmv and max_scan are index-loop bound and sprint like dither.");
}

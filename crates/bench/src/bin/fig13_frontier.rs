//! Figure 13: normalized energy efficiency vs performance — global
//! E-CGRA VF scaling against fine-grain UE-CGRA mappings.

use uecgra_bench::{header, r2};
use uecgra_core::experiments::{figure13, run_all_policies, SEED};
use uecgra_dfg::kernels;

fn main() {
    header("Figure 13: energy efficiency vs performance (relative to nominal E-CGRA)");
    for k in [
        kernels::llist::build_with_hops(400),
        kernels::dither::build_with_pixels(400),
    ] {
        let runs = run_all_policies(&k, SEED).expect("kernel runs");
        println!("\n{}:", k.name);
        println!("  {:<10} {:>6} {:>6}", "config", "perf", "eff");
        for p in figure13(&runs) {
            println!("  {:<10} {:>6} {:>6}", p.label, r2(p.perf), r2(p.eff));
        }
    }
    println!("\nPaper: whole-fabric scaling trades one axis for the other; fine-grain");
    println!("DVFS (UE points) reaches performance the global curve only gets by");
    println!("paying full sprint energy everywhere.");
}

//! Figure 13: normalized energy efficiency vs performance — global
//! E-CGRA VF scaling against fine-grain UE-CGRA mappings.

use uecgra_bench::{engine_arg, header, json_path, kernel_run_reports, r2, write_reports};
use uecgra_core::experiments::{figure13, run_all_policies_with, SEED};
use uecgra_core::report::metrics_report;
use uecgra_dfg::kernels;

fn main() {
    header("Figure 13: energy efficiency vs performance (relative to nominal E-CGRA)");
    let mut reports = Vec::new();
    for k in [
        kernels::llist::build_with_hops(400),
        kernels::dither::build_with_pixels(400),
    ] {
        let runs = run_all_policies_with(&k, SEED, engine_arg()).expect("kernel runs");
        println!("\n{}:", k.name);
        println!("  {:<10} {:>6} {:>6}", "config", "perf", "eff");
        let mut metrics = Vec::new();
        for p in figure13(&runs) {
            println!("  {:<10} {:>6} {:>6}", p.label, r2(p.perf), r2(p.eff));
            metrics.push((format!("{}_perf", p.label), p.perf));
            metrics.push((format!("{}_eff", p.label), p.eff));
        }
        reports.extend(kernel_run_reports(&runs));
        reports.push(metrics_report(format!("fig13/{}", k.name), metrics));
    }
    if let Some(path) = json_path() {
        write_reports(&path, &reports);
    }
    println!("\nPaper: whole-fabric scaling trades one axis for the other; fine-grain");
    println!("DVFS (UE points) reaches performance the global curve only gets by");
    println!("paying full sprint energy everywhere.");
}

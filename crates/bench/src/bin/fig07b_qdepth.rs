//! Figure 7(b): throughput versus queue depth.

use uecgra_bench::{header, json_path, write_reports};
use uecgra_clock::VfMode;
use uecgra_compiler::bitstream::Bitstream;
use uecgra_compiler::mapping::{ArrayShape, MappedKernel};
use uecgra_core::report::metrics_report;
use uecgra_dfg::kernels::synthetic;
use uecgra_model::{DfgSimulator, SimConfig};
use uecgra_rtl::fabric::{Fabric, FabricConfig};

fn throughput(n_or_chain: Option<usize>, depth: usize) -> f64 {
    let s = match n_or_chain {
        Some(n) => synthetic::cycle_n(n),
        None => synthetic::chain(6),
    };
    let config = SimConfig {
        marker: Some(s.iter_marker),
        max_marker_fires: Some(120),
        queue_capacity: depth,
        ..SimConfig::default()
    };
    let modes = vec![VfMode::Nominal; s.dfg.node_count()];
    let r = DfgSimulator::new(&s.dfg, modes, vec![], config).run();
    r.throughput(20).expect("steady state")
}

fn main() {
    header("Figure 7(b): throughput vs queue depth (iterations/cycle)");
    let depths = [1usize, 2, 3, 4, 8];
    print!("{:<12}", "benchmark");
    for d in depths {
        print!(" {:>8}", format!("depth {d}"));
    }
    println!();
    let mut metrics = Vec::new();
    for (label, which) in [
        ("cycle-2", Some(2)),
        ("cycle-4", Some(4)),
        ("cycle-8", Some(8)),
        ("chain", None),
    ] {
        print!("{label:<12}");
        for d in depths {
            let t = throughput(which, d);
            metrics.push((format!("model_{label}_depth{d}_throughput"), t));
            print!(" {t:>8.3}");
        }
        println!();
    }
    println!("\nPaper: irregular kernels are insensitive to depth (the cycle's queues");
    println!("are always near-empty); regular kernels need depth >= 2 for full rate.");

    // Cross-check on the cycle-level fabric (the paper's RTL method):
    // place-and-route cycle-N onto the 8x8 array and sweep the real
    // bisynchronous queue capacity.
    println!("\nRTL-fabric cross-check (routed cycle-N):");
    print!("{:<12}", "benchmark");
    for d in depths {
        print!(" {:>8}", format!("depth {d}"));
    }
    println!();
    for n in [2usize, 4, 8] {
        let s = synthetic::cycle_n(n);
        let mapped = MappedKernel::map(&s.dfg, ArrayShape::default(), 7).expect("maps");
        let modes = vec![VfMode::Nominal; s.dfg.node_count()];
        let bs = Bitstream::assemble(&s.dfg, &mapped, &modes).expect("assembles");
        print!("cycle-{n:<6}");
        for d in depths {
            let config = FabricConfig {
                marker: Some(mapped.coord_of(s.iter_marker)),
                max_marker_fires: Some(120),
                queue_capacity: d,
                ..FabricConfig::default()
            };
            let act = Fabric::new(&bs, vec![], config).run_with(uecgra_bench::engine_arg());
            let ii = act.steady_ii(20).expect("steady state");
            metrics.push((format!("rtl_cycle-{n}_depth{d}_throughput"), 1.0 / ii));
            print!(" {:>8.3}", 1.0 / ii);
        }
        println!();
    }
    println!("(routed rings run at their placed length, still depth-insensitive)");
    if let Some(path) = json_path() {
        write_reports(&path, &[metrics_report("fig07b_qdepth", metrics)]);
    }
}

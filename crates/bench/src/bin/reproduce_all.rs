//! Run every table- and figure-reproduction binary's computation in
//! one pass (the source of EXPERIMENTS.md's measured numbers).
//!
//! The binaries are independent processes, so they execute
//! concurrently — one worker per [`uecgra_core::par`] slot — with
//! stdout captured and replayed in the fixed list order below, so the
//! combined report is byte-identical no matter how many run at once.
//! Each child is pinned to `UECGRA_THREADS=1`: the outer fan-out
//! already uses every worker, and doubling up would oversubscribe.

use std::process::{Command, Output};

fn main() {
    let bins = [
        "fig02_toy_dvfs",
        "fig03_sweep",
        "fig07a_latency",
        "fig07b_qdepth",
        "fig07c_sprint",
        "fig10_pe_area",
        "fig11_breakdown",
        "fig12_layout",
        "table1_power",
        "table2_kernels",
        "fig13_frontier",
        "fig14_contours",
        "table3_system",
        "ablation_suppressor",
        "ablation_ooo",
        "ablation_scaling",
        "ablation_routing_aware",
        "ablation_unroll",
        "extra_kernels",
    ];
    let self_path = std::env::current_exe().expect("self path");
    let outputs: Vec<Output> = uecgra_core::par::par_map(&bins, |bin| {
        Command::new(self_path.with_file_name(bin))
            .env("UECGRA_THREADS", "1")
            .output()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"))
    });
    for (bin, out) in bins.iter().zip(&outputs) {
        println!("\n================================================================");
        println!("== {bin}");
        println!("================================================================");
        print!("{}", String::from_utf8_lossy(&out.stdout));
        eprint!("{}", String::from_utf8_lossy(&out.stderr));
        assert!(out.status.success(), "{bin} failed");
    }
}

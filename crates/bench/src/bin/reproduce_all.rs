//! Run every table- and figure-reproduction binary's computation in
//! one pass (the source of EXPERIMENTS.md's measured numbers).
//!
//! The binaries are independent processes, so they execute
//! concurrently — one worker per [`uecgra_core::par`] slot — with
//! stdout captured and replayed in the fixed list order below, so the
//! combined report is byte-identical no matter how many run at once.
//! Each child is pinned to `UECGRA_THREADS=1`: the outer fan-out
//! already uses every worker, and doubling up would oversubscribe.
//!
//! Every child also writes its `uecgra-probe` telemetry to a scratch
//! file via its `--json` flag. This harness parses each child document
//! with the probe crate's own parser, checks the canonical renderer
//! reproduces the child's bytes (the round-trip contract CI also
//! enforces through `uecgra check-report`), and aggregates everything
//! into one `report.json` (or the path given by its own `--json`
//! flag). The aggregate inherits the children's determinism: no
//! wall-clock timings are embedded, so the bytes are identical at any
//! `UECGRA_THREADS` setting.
//!
//! `--engine dense|event|both` selects the fabric engine the children
//! simulate with (default `both`): the suite runs once per engine and
//! the harness asserts every child's report document is *byte-
//! identical* across engines — the end-to-end differential check for
//! the two-engines-one-contract invariant (DESIGN.md §11) — before
//! aggregating the event leg's reports.

use std::path::PathBuf;
use std::process::{Command, Output};
use uecgra_bench::json_path;
use uecgra_core::pipeline::Engine;
use uecgra_probe::RunReport;

const BINS: [&str; 20] = [
    "fig02_toy_dvfs",
    "fig03_sweep",
    "fig07a_latency",
    "fig07b_qdepth",
    "fig07c_sprint",
    "fig10_pe_area",
    "fig11_breakdown",
    "fig12_layout",
    "table1_power",
    "table2_kernels",
    "fig13_frontier",
    "fig14_contours",
    "table3_system",
    "ablation_suppressor",
    "ablation_ooo",
    "ablation_scaling",
    "ablation_routing_aware",
    "ablation_unroll",
    "extra_kernels",
    "dse_sweep",
];

/// This harness's own `--engine`, which (unlike the children's) also
/// accepts `both`.
fn engine_choice() -> Vec<Engine> {
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        if flag == "--engine" {
            let v = argv.next().expect("--engine needs a value");
            if v == "both" {
                return Engine::ALL.to_vec();
            }
            let e = Engine::parse(&v)
                .unwrap_or_else(|| panic!("unknown engine {v} (use dense|event|both)"));
            return vec![e];
        }
    }
    Engine::ALL.to_vec()
}

/// Run every reproduction binary under one engine; returns each
/// child's captured output and the raw bytes of its report document.
fn run_suite(
    self_path: &std::path::Path,
    scratch: &std::path::Path,
    engine: Engine,
) -> Vec<(Output, String)> {
    let results: Vec<(Output, PathBuf)> = uecgra_core::par::par_map(&BINS, |bin| {
        let report = scratch.join(format!("{bin}-{}.json", engine.label()));
        let out = Command::new(self_path.with_file_name(bin))
            .arg("--json")
            .arg(&report)
            .arg("--engine")
            .arg(engine.label())
            .env("UECGRA_THREADS", "1")
            .output()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        (out, report)
    });
    results
        .into_iter()
        .zip(BINS)
        .map(|((out, path), bin)| {
            assert!(
                out.status.success(),
                "{bin} ({engine} engine) failed:\n{}",
                String::from_utf8_lossy(&out.stderr)
            );
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("{bin} ({engine} engine) wrote no report: {e}"));
            (out, text)
        })
        .collect()
}

fn main() {
    let engines = engine_choice();
    let self_path = std::env::current_exe().expect("self path");
    let scratch = std::env::temp_dir().join(format!("uecgra-reports-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("create report scratch dir");

    // Run the suite once per engine. The last engine in the list is
    // the one whose stdout is replayed and whose reports aggregate.
    let legs: Vec<Vec<(Output, String)>> = engines
        .iter()
        .map(|&e| run_suite(&self_path, &scratch, e))
        .collect();

    // Differential gate: every child document must be byte-identical
    // across engines before anything is aggregated.
    if let [reference, rest @ ..] = &legs[..] {
        for (leg, &engine) in rest.iter().zip(&engines[1..]) {
            for ((bin, (_, a)), (_, b)) in BINS.iter().zip(reference).zip(leg) {
                assert_eq!(
                    a, b,
                    "{bin}: report bytes diverge between the {} and {engine} engines",
                    engines[0]
                );
            }
        }
        if !rest.is_empty() {
            println!(
                "differential: {} report documents byte-identical across {} engines",
                BINS.len(),
                engines.len()
            );
        }
    }

    let primary = legs.last().expect("at least one engine");
    let mut all_reports = Vec::new();
    for (bin, (out, text)) in BINS.iter().zip(primary) {
        println!("\n================================================================");
        println!("== {bin}");
        println!("================================================================");
        print!("{}", String::from_utf8_lossy(&out.stdout));
        eprint!("{}", String::from_utf8_lossy(&out.stderr));

        // Validate each child's document with the probe parser and
        // check the round-trip before folding it into the aggregate.
        let reports = RunReport::parse_all(text)
            .unwrap_or_else(|e| panic!("{bin} emitted an invalid report: {e}"));
        assert!(!reports.is_empty(), "{bin} emitted an empty report");
        assert_eq!(
            &RunReport::render_all(&reports),
            text,
            "{bin}: report does not round-trip through the canonical serializer"
        );
        all_reports.extend(reports);
    }
    let _ = std::fs::remove_dir_all(&scratch);

    let out_path = json_path().unwrap_or_else(|| "report.json".into());
    std::fs::write(&out_path, RunReport::render_all(&all_reports))
        .unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!(
        "\naggregated {} validated run report(s) from {} binaries into {out_path}",
        all_reports.len(),
        BINS.len()
    );
}

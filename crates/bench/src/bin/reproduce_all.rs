//! Run every table- and figure-reproduction binary's computation in
//! one pass (the source of EXPERIMENTS.md's measured numbers).

use std::process::Command;

fn main() {
    let bins = [
        "fig02_toy_dvfs",
        "fig03_sweep",
        "fig07a_latency",
        "fig07b_qdepth",
        "fig07c_sprint",
        "fig10_pe_area",
        "fig11_breakdown",
        "fig12_layout",
        "table1_power",
        "table2_kernels",
        "fig13_frontier",
        "fig14_contours",
        "table3_system",
        "ablation_suppressor",
        "ablation_ooo",
        "ablation_scaling",
        "ablation_routing_aware",
        "ablation_unroll",
        "extra_kernels",
    ];
    for bin in bins {
        println!("\n================================================================");
        println!("== {bin}");
        println!("================================================================");
        let status = Command::new(std::env::current_exe().expect("self path").with_file_name(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
}

//! Run every table- and figure-reproduction binary's computation in
//! one pass (the source of EXPERIMENTS.md's measured numbers).
//!
//! The binaries are independent processes, so they execute
//! concurrently — one worker per [`uecgra_core::par`] slot — with
//! stdout captured and replayed in the fixed list order below, so the
//! combined report is byte-identical no matter how many run at once.
//! Each child is pinned to `UECGRA_THREADS=1`: the outer fan-out
//! already uses every worker, and doubling up would oversubscribe.
//!
//! Every child also writes its `uecgra-probe` telemetry to a scratch
//! file via its `--json` flag. This harness parses each child document
//! with the probe crate's own parser, checks the canonical renderer
//! reproduces the child's bytes (the round-trip contract CI also
//! enforces through `uecgra check-report`), and aggregates everything
//! into one `report.json` (or the path given by its own `--json`
//! flag). The aggregate inherits the children's determinism: no
//! wall-clock timings are embedded, so the bytes are identical at any
//! `UECGRA_THREADS` setting.

use std::path::PathBuf;
use std::process::{Command, Output};
use uecgra_bench::json_path;
use uecgra_probe::RunReport;

fn main() {
    let bins = [
        "fig02_toy_dvfs",
        "fig03_sweep",
        "fig07a_latency",
        "fig07b_qdepth",
        "fig07c_sprint",
        "fig10_pe_area",
        "fig11_breakdown",
        "fig12_layout",
        "table1_power",
        "table2_kernels",
        "fig13_frontier",
        "fig14_contours",
        "table3_system",
        "ablation_suppressor",
        "ablation_ooo",
        "ablation_scaling",
        "ablation_routing_aware",
        "ablation_unroll",
        "extra_kernels",
    ];
    let self_path = std::env::current_exe().expect("self path");
    let scratch = std::env::temp_dir().join(format!("uecgra-reports-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("create report scratch dir");

    let results: Vec<(Output, PathBuf)> = uecgra_core::par::par_map(&bins, |bin| {
        let report = scratch.join(format!("{bin}.json"));
        let out = Command::new(self_path.with_file_name(bin))
            .arg("--json")
            .arg(&report)
            .env("UECGRA_THREADS", "1")
            .output()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        (out, report)
    });

    let mut all_reports = Vec::new();
    for (bin, (out, report_path)) in bins.iter().zip(&results) {
        println!("\n================================================================");
        println!("== {bin}");
        println!("================================================================");
        print!("{}", String::from_utf8_lossy(&out.stdout));
        eprint!("{}", String::from_utf8_lossy(&out.stderr));
        assert!(out.status.success(), "{bin} failed");

        // Validate each child's document with the probe parser and
        // check the round-trip before folding it into the aggregate.
        let text = std::fs::read_to_string(report_path)
            .unwrap_or_else(|e| panic!("{bin} wrote no report: {e}"));
        let reports = RunReport::parse_all(&text)
            .unwrap_or_else(|e| panic!("{bin} emitted an invalid report: {e}"));
        assert!(!reports.is_empty(), "{bin} emitted an empty report");
        assert_eq!(
            RunReport::render_all(&reports),
            text,
            "{bin}: report does not round-trip through the canonical serializer"
        );
        all_reports.extend(reports);
    }
    let _ = std::fs::remove_dir_all(&scratch);

    let out_path = json_path().unwrap_or_else(|| "report.json".into());
    std::fs::write(&out_path, RunReport::render_all(&all_reports))
        .unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!(
        "\naggregated {} validated run report(s) from {} binaries into {out_path}",
        all_reports.len(),
        bins.len()
    );
}

//! Figure 2: UE-CGRA discrete-event performance model on the toy DFG
//! (three-node cycle fed by a two-node chain).

use uecgra_bench::{header, r2};
use uecgra_clock::{ClockSet, VfMode};
use uecgra_dfg::kernels::synthetic;
use uecgra_model::{DfgSimulator, SimConfig};

fn run(clocks: ClockSet, label: &str, rest_a: bool, sprint_cycle: bool) {
    let toy = synthetic::fig2_toy();
    let mut modes = vec![VfMode::Nominal; toy.dfg.node_count()];
    if rest_a {
        for a in toy.a_chain {
            modes[a.index()] = VfMode::Rest;
        }
    }
    if sprint_cycle {
        for c in toy.cycle {
            modes[c.index()] = VfMode::Sprint;
        }
    }
    let config = SimConfig {
        clocks,
        marker: Some(toy.iter_marker),
        max_marker_fires: Some(200),
        ..SimConfig::default()
    };
    let r = DfgSimulator::new(&toy.dfg, modes, vec![0; 1024], config).run();
    let ii = r.steady_ii(30).expect("steady state");
    println!(
        "{label:<42} II = {} cycles (throughput {}/cycle)",
        r2(ii),
        r2(1.0 / ii)
    );
}

fn main() {
    header("Figure 2: toy DFG with a three-node cycle (paper: 3 / 3 / 2 cycles)");
    run(ClockSet::default(), "(a) all nominal", false, false);
    run(
        ClockSet::default(),
        "(b) rest A1/A2 to 1/3 (no throughput loss)",
        true,
        false,
    );
    // (c) uses the pedagogical half-rate rest level: clock plan 6:3:2.
    run(
        ClockSet::new([6, 3, 2]).expect("valid plan"),
        "(c) rest A1/A2 to 1/2, sprint B/C/D 1.5x",
        true,
        true,
    );
}

//! Figure 2: UE-CGRA discrete-event performance model on the toy DFG
//! (three-node cycle fed by a two-node chain).

use uecgra_bench::{header, json_path, r2, write_reports};
use uecgra_clock::{ClockSet, VfMode};
use uecgra_core::report::metrics_report;
use uecgra_dfg::kernels::synthetic;
use uecgra_model::{DfgSimulator, SimConfig};

fn run(clocks: ClockSet, label: &str, rest_a: bool, sprint_cycle: bool) -> f64 {
    let toy = synthetic::fig2_toy();
    let mut modes = vec![VfMode::Nominal; toy.dfg.node_count()];
    if rest_a {
        for a in toy.a_chain {
            modes[a.index()] = VfMode::Rest;
        }
    }
    if sprint_cycle {
        for c in toy.cycle {
            modes[c.index()] = VfMode::Sprint;
        }
    }
    let config = SimConfig {
        clocks,
        marker: Some(toy.iter_marker),
        max_marker_fires: Some(200),
        ..SimConfig::default()
    };
    let r = DfgSimulator::new(&toy.dfg, modes, vec![0; 1024], config).run();
    let ii = r.steady_ii(30).expect("steady state");
    println!(
        "{label:<42} II = {} cycles (throughput {}/cycle)",
        r2(ii),
        r2(1.0 / ii)
    );
    ii
}

fn main() {
    header("Figure 2: toy DFG with a three-node cycle (paper: 3 / 3 / 2 cycles)");
    let ii_a = run(ClockSet::default(), "(a) all nominal", false, false);
    let ii_b = run(
        ClockSet::default(),
        "(b) rest A1/A2 to 1/3 (no throughput loss)",
        true,
        false,
    );
    // (c) uses the pedagogical half-rate rest level: clock plan 6:3:2.
    let ii_c = run(
        ClockSet::new([6, 3, 2]).expect("valid plan"),
        "(c) rest A1/A2 to 1/2, sprint B/C/D 1.5x",
        true,
        true,
    );
    if let Some(path) = json_path() {
        let report = metrics_report(
            "fig02_toy_dvfs",
            vec![
                ("ii_all_nominal".into(), ii_a),
                ("ii_rest_chain".into(), ii_b),
                ("ii_rest_and_sprint".into(), ii_c),
            ],
        );
        write_reports(&path, &[report]);
    }
}

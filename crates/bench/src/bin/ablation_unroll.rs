//! Q&A VIII-C: mitigating low utilization with multiple kernel
//! instances.
//!
//! The paper notes the kernels underutilize the 8x8 fabric (~65% in
//! their mappings, much less for small kernels) and suggests placing
//! multiple instances side by side. This binary instantiates dither
//! twice — the second instance built from *source text* through the
//! compiler frontend with a disjoint memory layout — merges the two
//! DFGs, maps the pair onto one array, and measures aggregate
//! throughput and utilization.

use uecgra_bench::{header, json_path, write_reports};
use uecgra_clock::VfMode;
use uecgra_compiler::bitstream::Bitstream;
use uecgra_compiler::frontend::lower;
use uecgra_compiler::mapping::{ArrayShape, MappedKernel};
use uecgra_compiler::parse::parse;
use uecgra_core::report::metrics_report;
use uecgra_dfg::kernels::dither;
use uecgra_dfg::transform::merge;
use uecgra_rtl::fabric::{Fabric, FabricConfig};

const N: usize = 200;

fn main() {
    header("Ablation: one vs two dither instances on one 8x8 fabric");

    // Instance 0: the library kernel (src @ 16, dst @ dst_base).
    let k = dither::build_with_pixels(N);

    // Instance 1: same loop from source text, over a disjoint region.
    let base2 = k.mem.len() as u32;
    let src2 = parse(&format!(
        "array src @ {};
         array dst @ {};
         for i in 0..{N} carry (err = 0) {{
             let out = src[i] + err;
             if (out > 127) {{ dst[i] = 255; err = out - 255; }}
             else {{ dst[i] = 0; err = out; }}
         }}",
        base2 + 16,
        base2 + 16 + N as u32 + 16,
    ))
    .expect("valid source");
    let inst2 = lower(&src2.nest).expect("lowers");

    // Combined memory: image 0, then image 1 (same pixels).
    let mut mem = k.mem.clone();
    mem.extend(k.mem.iter().copied());

    // Single instance baseline.
    let single = run(&k.dfg, k.iter_marker, k.mem.clone());
    // Merged pair.
    let (pair, maps) = merge(&[&k.dfg, &inst2.dfg]);
    let marker = maps[0][k.iter_marker.index()];
    let both = run(&pair, marker, mem);

    println!(
        "{:<18} {:>12} {:>12} {:>14}",
        "configuration", "utilization", "II (cycles)", "pixels/cycle"
    );
    println!(
        "{:<18} {:>11.0}% {:>12.2} {:>14.3}",
        "1x dither",
        single.1 * 100.0,
        single.0,
        1.0 / single.0
    );
    println!(
        "{:<18} {:>11.0}% {:>12.2} {:>14.3}",
        "2x dither",
        both.1 * 100.0,
        both.0,
        2.0 / both.0
    );
    println!("\nTwo instances double aggregate throughput at (near) unchanged II:");
    println!("UE-CGRA benefits are intra-kernel and compose with this replication,");
    println!("exactly the paper's Section VIII-C argument.");

    if let Some(path) = json_path() {
        let report = metrics_report(
            "ablation_unroll",
            vec![
                ("single_ii".into(), single.0),
                ("single_utilization".into(), single.1),
                ("single_pixels_per_cycle".into(), 1.0 / single.0),
                ("pair_ii".into(), both.0),
                ("pair_utilization".into(), both.1),
                ("pair_pixels_per_cycle".into(), 2.0 / both.0),
            ],
        );
        write_reports(&path, &[report]);
    }
}

fn run(dfg: &uecgra_dfg::Dfg, marker: uecgra_dfg::NodeId, mem: Vec<u32>) -> (f64, f64) {
    let mapped = MappedKernel::map(dfg, ArrayShape::default(), 7).expect("fits");
    let modes = vec![VfMode::Nominal; dfg.node_count()];
    let bs = Bitstream::assemble(dfg, &mapped, &modes).expect("assembles");
    let config = FabricConfig {
        marker: Some(mapped.coord_of(marker)),
        ..FabricConfig::default()
    };
    let act = Fabric::new(&bs, mem, config).run_with(uecgra_bench::engine_arg());
    (act.steady_ii(8).expect("steady"), mapped.utilization())
}

//! Figure 10: PE area versus cycle-time target for the three PE
//! variants.

use uecgra_bench::{header, json_path, write_reports};
use uecgra_core::report::metrics_report;
use uecgra_vlsi::area::{pe_area, CgraKind, FIG10_CYCLE_TIMES};

fn main() {
    header("Figure 10: PE area (um^2) vs cycle time (ns), TSMC 28 nm model");
    print!("{:<10}", "cycle ns");
    for kind in CgraKind::ALL {
        print!(" {:>9}", kind.label());
    }
    println!();
    let mut metrics = Vec::new();
    for &t in &FIG10_CYCLE_TIMES {
        print!("{t:<10.2}");
        for kind in CgraKind::ALL {
            let a = pe_area(kind, t);
            metrics.push((format!("{}_at_{t:.2}ns_um2", kind.label()), a));
            print!(" {a:>9.0}");
        }
        println!();
    }
    let ie = pe_area(CgraKind::Inelastic, 4.0 / 3.0);
    let e = pe_area(CgraKind::Elastic, 4.0 / 3.0);
    let ue = pe_area(CgraKind::UltraElastic, 4.0 / 3.0);
    println!(
        "\nat 750 MHz: E-CGRA overhead {:.0}% (paper 14%), UE-CGRA {:.0}% (paper 17%)",
        (e / ie - 1.0) * 100.0,
        (ue / ie - 1.0) * 100.0
    );
    if let Some(path) = json_path() {
        metrics.push(("e_overhead_pct".into(), (e / ie - 1.0) * 100.0));
        metrics.push(("ue_overhead_pct".into(), (ue / ie - 1.0) * 100.0));
        write_reports(&path, &[metrics_report("fig10_pe_area", metrics)]);
    }
}

//! Table III: performance and energy efficiency of the integrated
//! processor+CGRA system relative to the RV32IM core.

use uecgra_bench::{evaluation_kernels, header, r2};
use uecgra_core::experiments::{run_all_policies_many, table3_row, SEED};
use uecgra_core::pipeline::Policy;

fn main() {
    header("Table III: system-level results relative to the in-order RV32IM core");
    println!(
        "{:<8} {:>5} {:>5} {:>9} {:>6} | {:>6} {:>6} | {:>6} {:>6} | {:>6} {:>6}",
        "kernel",
        "ideal",
        "real",
        "cfg E/UE",
        "data",
        "E perf",
        "E eff",
        "EO prf",
        "EO eff",
        "PO prf",
        "PO eff"
    );
    // All kernel × policy pipeline runs fan out across threads; the
    // per-row core simulations then fan out per kernel. Printing stays
    // on the main thread in kernel order.
    let all = run_all_policies_many(&evaluation_kernels(), SEED).expect("kernels run");
    let rows = uecgra_core::par::par_map(&all, table3_row);
    for row in rows {
        let find = |p: Policy| {
            row.relative
                .iter()
                .find(|(q, _, _)| *q == p)
                .map(|&(_, perf, eff)| (perf, eff))
                .expect("policy present")
        };
        let (ep, ee) = find(Policy::ECgra);
        let (eop, eoe) = find(Policy::UeEnergyOpt);
        let (pop, poe) = find(Policy::UePerfOpt);
        println!(
            "{:<8} {:>5} {:>5.1} {:>9} {:>6} | {:>6} {:>6} | {:>6} {:>6} | {:>6} {:>6}",
            row.kernel,
            row.ideal_recurrence,
            row.real_recurrence,
            format!("{}/{}", row.cfg_cycles.0, row.cfg_cycles.1),
            row.data_cycles,
            r2(ep),
            r2(ee),
            r2(eop),
            r2(eoe),
            r2(pop),
            r2(poe)
        );
    }
    println!("\nPaper bands: E-CGRA perf 0.94-2.31x, UE POpt perf 1.35-3.38x,");
    println!("UE EOpt efficiency 0.80-1.53x relative to the core.");
}

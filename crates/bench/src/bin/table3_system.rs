//! Table III: performance and energy efficiency of the integrated
//! processor+CGRA system relative to the RV32IM core.

use uecgra_bench::{
    engine_arg, evaluation_kernels, header, json_path, kernel_run_reports, r2, write_reports,
};
use uecgra_core::experiments::{run_all_policies_many_with, table3_row, SEED};
use uecgra_core::pipeline::Policy;
use uecgra_core::report::metrics_report;

fn main() {
    header("Table III: system-level results relative to the in-order RV32IM core");
    println!(
        "{:<8} {:>5} {:>5} {:>9} {:>6} | {:>6} {:>6} | {:>6} {:>6} | {:>6} {:>6}",
        "kernel",
        "ideal",
        "real",
        "cfg E/UE",
        "data",
        "E perf",
        "E eff",
        "EO prf",
        "EO eff",
        "PO prf",
        "PO eff"
    );
    // All kernel × policy pipeline runs fan out across threads; the
    // per-row core simulations then fan out per kernel. Printing stays
    // on the main thread in kernel order.
    let all =
        run_all_policies_many_with(&evaluation_kernels(), SEED, engine_arg()).expect("kernels run");
    let rows = uecgra_core::par::par_map(&all, table3_row);
    for row in &rows {
        let find = |p: Policy| {
            row.relative
                .iter()
                .find(|(q, _, _)| *q == p)
                .map(|&(_, perf, eff)| (perf, eff))
                .expect("policy present")
        };
        let (ep, ee) = find(Policy::ECgra);
        let (eop, eoe) = find(Policy::UeEnergyOpt);
        let (pop, poe) = find(Policy::UePerfOpt);
        println!(
            "{:<8} {:>5} {:>5.1} {:>9} {:>6} | {:>6} {:>6} | {:>6} {:>6} | {:>6} {:>6}",
            row.kernel,
            row.ideal_recurrence,
            row.real_recurrence,
            format!("{}/{}", row.cfg_cycles.0, row.cfg_cycles.1),
            row.data_cycles,
            r2(ep),
            r2(ee),
            r2(eop),
            r2(eoe),
            r2(pop),
            r2(poe)
        );
    }
    println!("\nPaper bands: E-CGRA perf 0.94-2.31x, UE POpt perf 1.35-3.38x,");
    println!("UE EOpt efficiency 0.80-1.53x relative to the core.");

    if let Some(path) = json_path() {
        let mut reports: Vec<_> = all.iter().flat_map(kernel_run_reports).collect();
        for row in &rows {
            let mut metrics = vec![
                ("ideal_recurrence".into(), row.ideal_recurrence as f64),
                ("real_recurrence".into(), row.real_recurrence),
                ("cfg_cycles_e".into(), row.cfg_cycles.0 as f64),
                ("cfg_cycles_ue".into(), row.cfg_cycles.1 as f64),
                ("data_cycles".into(), row.data_cycles as f64),
                ("core_cycles".into(), row.core_cycles as f64),
                ("core_energy_pj".into(), row.core_energy_pj),
            ];
            for (policy, perf, eff) in &row.relative {
                metrics.push((format!("{}_perf", policy.label()), *perf));
                metrics.push((format!("{}_eff", policy.label()), *eff));
            }
            reports.push(metrics_report(format!("table3/{}", row.kernel), metrics));
        }
        write_reports(&path, &reports);
    }
}

//! Self-timing CI smoke harness: runs the two heaviest evaluation
//! phases serially and in parallel, prints per-phase wall times, and
//! fails on any functional divergence.
//!
//! Checks, in order:
//!
//! 1. **Host-reference correctness** — every kernel's cycle-level
//!    fabric run must reproduce the host reference memory image under
//!    all three policies.
//! 2. **Executor determinism** — the Figure 3 sweep and the Figure 14
//!    kernel × policy grid must be *bit-identical* between
//!    `UECGRA_THREADS=1` and the parallel thread count.
//! 3. **Timing** — per-phase wall times for both thread counts and
//!    the speedup are printed. When `UECGRA_SMOKE_MIN_SPEEDUP` is set
//!    (as CI does on multi-core runners), the harness fails below
//!    that factor; by default it only reports, so single-core
//!    machines can still run the functional checks.
//!
//! 4. **Engine timing** — the dense reference stepper and the
//!    event-driven scheduler simulate the Table II kernel set
//!    (simulation only; each kernel compiled once) and their
//!    wall-clock times print side by side. The engines' `Activity`
//!    must be bit-identical; when `UECGRA_SMOKE_MIN_ENGINE_SPEEDUP`
//!    is set, the harness additionally fails if the event engine is
//!    not at least that factor faster.
//!
//! 5. **DSE trajectory** (`dse` mode only) — the Table II DSE sweep
//!    runs cold (fresh evaluation cache) then warm (same cache), the
//!    outcomes must be bit-identical, and the wall-clock ratio and
//!    evaluation throughput print. `UECGRA_SMOKE_MAX_WARM_RATIO`
//!    gates the memoization win (CI uses 0.2: a warm rerun must cost
//!    at most a fifth of a cold one); a committed baseline file
//!    (`benchmarks/BENCH_dse_baseline.json`, overridable via
//!    `UECGRA_BENCH_BASELINE`) plus `UECGRA_BENCH_TOLERANCE` gate the
//!    evaluations-per-second trajectory against history. The leg's
//!    measurements land in the file named by `--bench-out` for CI to
//!    archive.
//!
//! Usage: `smoke_timing [quick|full|dse] [--engine dense|event|both]
//! [--bench-out BENCH_dse.json]` (default `quick`, `both`; CI uses
//! `quick` and `dse`). `UECGRA_SMOKE_THREADS` overrides the parallel
//! leg's thread count (default 8).

use std::time::Instant;
use uecgra_compiler::bitstream::Bitstream;
use uecgra_compiler::mapping::{ArrayShape, MappedKernel};
use uecgra_compiler::power_map::{power_map, Objective};
use uecgra_core::experiments::{run_all_policies_many, KernelRuns, SEED};
use uecgra_core::pipeline::Engine;
use uecgra_dfg::kernels::{self, synthetic};
use uecgra_model::sweep::{sweep_group_modes, SweepResult};
use uecgra_rtl::fabric::{Fabric, FabricConfig};

fn fig3_sweep() -> SweepResult {
    let cs = synthetic::fig3_case_study();
    sweep_group_modes(&cs.dfg, vec![0; 4096], cs.iter_marker)
}

fn fig14_grid(scale: usize) -> Vec<KernelRuns> {
    let ks = [
        kernels::llist::build_with_hops(scale),
        kernels::dither::build_with_pixels(scale),
        kernels::susan::build_with_iters(scale),
        kernels::fft::build_with_group(scale),
    ];
    run_all_policies_many(&ks, SEED).expect("kernels run")
}

fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

fn check_references(grid: &[KernelRuns]) {
    for runs in grid {
        let expect = runs.kernel.reference_memory();
        for (label, run) in [
            ("E-CGRA", &runs.e),
            ("UE-CGRA EOpt", &runs.eopt),
            ("UE-CGRA POpt", &runs.popt),
        ] {
            assert_eq!(
                &run.activity.mem[..expect.len()],
                &expect[..],
                "{} under {label}: fabric memory image diverges from host reference",
                runs.kernel.name
            );
        }
    }
    println!(
        "  functional: {} kernels x 3 policies match the host reference",
        grid.len()
    );
}

/// Time both fabric engines on the Table II kernel set, simulation
/// only (each kernel is compiled once under POpt DVFS, then the same
/// bitstream runs on every selected engine `reps` times — quick-scale
/// runs are sub-millisecond, so a single run is mostly timer noise).
/// Returns total wall time per engine, in [`Engine::ALL`] order
/// (`None` when not selected).
fn engine_bench(scale: usize, reps: usize, engines: &[Engine]) -> [Option<f64>; 2] {
    let ks = [
        kernels::llist::build_with_hops(scale),
        kernels::dither::build_with_pixels(scale),
        kernels::susan::build_with_iters(scale),
        kernels::fft::build_with_group(scale),
        kernels::bf::build_with_rounds(32),
    ];
    println!("\n  engine wall-clock (simulation only, POpt DVFS):");
    print!("  {:<8}", "kernel");
    for e in engines {
        print!(" {:>10}", format!("{e}"));
    }
    println!();
    let mut totals = [None::<f64>; 2];
    for k in &ks {
        let pm = power_map(&k.dfg, k.mem.clone(), k.iter_marker, Objective::Performance);
        let mapped = MappedKernel::map(&k.dfg, ArrayShape::default(), SEED).expect("maps");
        let bs = Bitstream::assemble(&k.dfg, &mapped, &pm.node_modes).expect("assembles");
        let config = FabricConfig {
            marker: Some(mapped.coord_of(k.iter_marker)),
            ..FabricConfig::default()
        };
        print!("  {:<8}", k.name);
        let mut acts = Vec::new();
        for &e in engines {
            let fabs: Vec<Fabric> = (0..reps)
                .map(|_| Fabric::new(&bs, k.mem.clone(), config.clone()))
                .collect();
            let (mut runs, dt) =
                timed(|| fabs.into_iter().map(|f| f.run_with(e)).collect::<Vec<_>>());
            print!(" {:>9.3}s", dt);
            let slot = Engine::ALL.iter().position(|&x| x == e).unwrap();
            *totals[slot].get_or_insert(0.0) += dt;
            acts.push(runs.pop().expect("at least one rep"));
        }
        println!();
        for pair in acts.windows(2) {
            assert_eq!(
                pair[0], pair[1],
                "{}: engine Activity diverges in the smoke harness",
                k.name
            );
        }
    }
    totals
}

/// One cold-or-warm pass of the Table II DSE sweep (routed hops,
/// shared cache across kernels), mirroring the `dse_sweep` binary.
fn dse_sweep_pass(cache: &uecgra_dse::EvalCache, budget: usize) -> Vec<uecgra_dse::DseOutcome> {
    use uecgra_compiler::mapping::{ArrayShape, MappedKernel};
    let cfg = uecgra_dse::DseConfig {
        seed: SEED,
        budget,
        ..uecgra_dse::DseConfig::default()
    };
    uecgra_bench::evaluation_kernels()
        .iter()
        .map(|k| {
            let mapped = MappedKernel::map(&k.dfg, ArrayShape::default(), SEED).expect("maps");
            let extra: Vec<u32> = k.dfg.edges().map(|(id, _)| mapped.extra_hops(id)).collect();
            uecgra_dse::explore(&k.dfg, k.mem.clone(), k.iter_marker, &extra, &cfg, cache)
        })
        .collect()
}

/// The `dse` mode: time the sweep cold then warm, gate the
/// memoization ratio and the evaluation-throughput trajectory, and
/// write the measurements to `bench_out` when given.
fn dse_bench(bench_out: Option<&str>) {
    // A budget above the default keeps the cold leg dominated by
    // model evaluations (which the warm leg memoizes away) rather
    // than by the uncached greedy baseline passes, so the warm/cold
    // ratio gate has headroom against runner noise.
    let budget = 512;
    println!("dse bench: Table II sweep, budget {budget} per kernel");

    let cache = uecgra_dse::EvalCache::new();
    let (cold_out, t_cold) = timed(|| dse_sweep_pass(&cache, budget));
    let unique = cache.misses();
    let (warm_out, t_warm) = timed(|| dse_sweep_pass(&cache, budget));
    assert_eq!(
        cold_out, warm_out,
        "DSE outcomes diverge between cold and warm caches"
    );
    for out in &cold_out {
        assert!(out.dominates_baseline(), "DSE regressed past greedy");
    }
    println!("  determinism: cold and warm sweeps are bit-identical");

    let ratio = t_warm / t_cold;
    let evals_per_sec = unique as f64 / t_cold;
    let frontier_points: usize = cold_out.iter().map(|o| o.frontier.len()).sum();
    let warm_hit_rate = cache.hits() as f64 / (cache.hits() + cache.misses()) as f64;
    println!("  cold: {t_cold:>7.3}s ({unique} unique evaluations, {evals_per_sec:.0} evals/s)");
    println!("  warm: {t_warm:>7.3}s ({ratio:.3}x cold, {warm_hit_rate:.3} hit rate)");
    println!(
        "  frontier: {frontier_points} points across {} kernels",
        cold_out.len()
    );

    if let Ok(max) = std::env::var("UECGRA_SMOKE_MAX_WARM_RATIO") {
        let max: f64 = max
            .parse()
            .expect("UECGRA_SMOKE_MAX_WARM_RATIO must be a float");
        assert!(
            ratio <= max,
            "warm rerun cost {ratio:.3}x cold, above the allowed {max:.3}x"
        );
        println!("  memoization gate: {ratio:.3}x <= {max:.3}x");
    } else {
        println!("  memoization gate: disabled (set UECGRA_SMOKE_MAX_WARM_RATIO to enforce)");
    }

    let baseline_path = std::env::var("UECGRA_BENCH_BASELINE")
        .unwrap_or_else(|_| "benchmarks/BENCH_dse_baseline.json".to_string());
    match std::fs::read_to_string(&baseline_path) {
        Ok(text) => {
            let doc = uecgra_probe::Json::parse(&text)
                .unwrap_or_else(|e| panic!("parsing {baseline_path}: {e}"));
            let base = doc
                .get("evals_per_sec")
                .and_then(|v| v.as_f64())
                .unwrap_or_else(|| panic!("{baseline_path} has no evals_per_sec"));
            let tolerance: f64 = std::env::var("UECGRA_BENCH_TOLERANCE")
                .map(|s| s.parse().expect("UECGRA_BENCH_TOLERANCE must be a float"))
                .unwrap_or(0.7);
            assert!(
                evals_per_sec >= tolerance * base,
                "evaluation throughput regressed: {evals_per_sec:.0} evals/s < \
                 {tolerance:.2} x baseline {base:.0} evals/s"
            );
            println!(
                "  trajectory gate: {evals_per_sec:.0} evals/s >= {tolerance:.2} x {base:.0} \
                 (baseline {baseline_path})"
            );
        }
        Err(_) => println!("  trajectory gate: no baseline at {baseline_path}; reporting only"),
    }

    if let Some(path) = bench_out {
        use uecgra_probe::Json;
        let doc = Json::object(vec![
            ("bench", Json::Str("dse_sweep".into())),
            ("budget", Json::Uint(budget as u64)),
            ("cold_seconds", Json::Float(t_cold)),
            ("evals_per_sec", Json::Float(evals_per_sec)),
            ("frontier_points", Json::Uint(frontier_points as u64)),
            ("kernels", Json::Uint(cold_out.len() as u64)),
            ("unique_evals", Json::Uint(unique)),
            ("warm_hit_rate", Json::Float(warm_hit_rate)),
            ("warm_over_cold", Json::Float(ratio)),
        ]);
        std::fs::write(path, format!("{}\n", doc.render()))
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("  wrote measurements to {path}");
    }
    println!("\ndse bench OK");
}

fn main() {
    let mut mode = "quick".to_string();
    let mut engines: Vec<Engine> = Engine::ALL.to_vec();
    let mut bench_out: Option<String> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "quick" | "full" | "dse" => mode = arg,
            "--engine" => {
                let v = argv.next().expect("--engine needs a value");
                if v != "both" {
                    engines = vec![Engine::parse(&v)
                        .unwrap_or_else(|| panic!("unknown engine {v} (use dense|event|both)"))];
                }
            }
            "--bench-out" => bench_out = Some(argv.next().expect("--bench-out needs a value")),
            other => {
                panic!("unknown argument {other:?} (expected quick|full|dse|--engine|--bench-out)")
            }
        }
    }
    if mode == "dse" {
        return dse_bench(bench_out.as_deref());
    }
    let (scale, engine_reps) = match mode.as_str() {
        "quick" => (60, 20),
        "full" => (400, 3),
        other => panic!("unknown mode {other:?} (expected quick|full)"),
    };
    let par_threads = std::env::var("UECGRA_SMOKE_THREADS")
        .ok()
        .and_then(|s| uecgra_util::par::parse_threads(&s))
        .unwrap_or(8);

    println!("smoke harness: mode={mode} (scale {scale}), parallel leg = {par_threads} threads");

    std::env::set_var("UECGRA_THREADS", "1");
    let (sweep_serial, t_sweep_serial) = timed(fig3_sweep);
    let (grid_serial, t_grid_serial) = timed(|| fig14_grid(scale));

    std::env::set_var("UECGRA_THREADS", par_threads.to_string());
    let (sweep_par, t_sweep_par) = timed(fig3_sweep);
    let (grid_par, t_grid_par) = timed(|| fig14_grid(scale));
    std::env::remove_var("UECGRA_THREADS");

    check_references(&grid_serial);

    assert_eq!(
        sweep_serial, sweep_par,
        "fig3 sweep diverges between 1 and {par_threads} threads"
    );
    for (a, b) in grid_serial.iter().zip(&grid_par) {
        for (x, y) in [(&a.e, &b.e), (&a.eopt, &b.eopt), (&a.popt, &b.popt)] {
            assert_eq!(
                x.activity, y.activity,
                "{}: fabric activity diverges between 1 and {par_threads} threads",
                a.kernel.name
            );
        }
    }
    println!("  determinism: 1-thread and {par_threads}-thread outputs are bit-identical");

    let total_serial = t_sweep_serial + t_grid_serial;
    let total_par = t_sweep_par + t_grid_par;
    let speedup = total_serial / total_par;
    println!("\n  phase                      1 thread    {par_threads} threads");
    println!("  fig3 VF sweep            {t_sweep_serial:>9.3}s   {t_sweep_par:>9.3}s");
    println!("  fig14 kernel grid        {t_grid_serial:>9.3}s   {t_grid_par:>9.3}s");
    println!(
        "  total                    {total_serial:>9.3}s   {total_par:>9.3}s   ({speedup:.2}x)"
    );

    if let Ok(min) = std::env::var("UECGRA_SMOKE_MIN_SPEEDUP") {
        let min: f64 = min
            .parse()
            .expect("UECGRA_SMOKE_MIN_SPEEDUP must be a float");
        assert!(
            speedup >= min,
            "parallel speedup {speedup:.2}x below required {min:.2}x"
        );
        println!("  speedup gate: {speedup:.2}x >= {min:.2}x");
    } else {
        println!("  speedup gate: disabled (set UECGRA_SMOKE_MIN_SPEEDUP to enforce)");
    }

    let engine_totals = engine_bench(scale, engine_reps, &engines);
    if let [Some(dense), Some(event)] = engine_totals {
        let ratio = dense / event;
        println!("  total: dense {dense:.3}s, event {event:.3}s ({ratio:.2}x)");
        if let Ok(min) = std::env::var("UECGRA_SMOKE_MIN_ENGINE_SPEEDUP") {
            let min: f64 = min
                .parse()
                .expect("UECGRA_SMOKE_MIN_ENGINE_SPEEDUP must be a float");
            assert!(
                ratio >= min,
                "event engine speedup {ratio:.2}x below required {min:.2}x"
            );
            println!("  engine speedup gate: {ratio:.2}x >= {min:.2}x");
        } else {
            println!(
                "  engine speedup gate: disabled (set UECGRA_SMOKE_MIN_ENGINE_SPEEDUP to enforce)"
            );
        }
    }
    println!("\nsmoke harness OK");
}

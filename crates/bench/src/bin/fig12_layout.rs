//! Figure 12: full 8x8 array layouts at 750 MHz.

use uecgra_bench::{header, json_path, write_reports};
use uecgra_core::report::metrics_report;
use uecgra_vlsi::area::{CgraKind, REFERENCE_CYCLE_NS};
use uecgra_vlsi::layout::{array_area_um2, edge_um};

fn main() {
    header("Figure 12: 8x8 CGRA layout at 750 MHz in TSMC 28 nm");
    println!(
        "{:<10} {:>12} {:>14}   paper",
        "CGRA", "edge (um)", "area (um^2)"
    );
    let paper = [463.0, 495.0, 528.0];
    let mut metrics = Vec::new();
    for (kind, p) in CgraKind::ALL.iter().zip(paper) {
        println!(
            "{:<10} {:>12.0} {:>14.0}   {:.0}x{:.0} um",
            kind.label(),
            edge_um(*kind),
            array_area_um2(*kind, 64, REFERENCE_CYCLE_NS),
            p,
            p
        );
        metrics.push((format!("edge_{}_um", kind.label()), edge_um(*kind)));
        metrics.push((
            format!("area_{}_um2", kind.label()),
            array_area_um2(*kind, 64, REFERENCE_CYCLE_NS),
        ));
    }
    if let Some(path) = json_path() {
        write_reports(&path, &[metrics_report("fig12_layout", metrics)]);
    }
}

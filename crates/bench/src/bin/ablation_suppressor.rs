//! Ablation: the elasticity-aware suppressor versus a traditional
//! ratiochronous suppressor (paper Figure 8(d) / Section V).
//!
//! In the 2:3:9 clock plan, every fast→slow capture edge is unsafe, so
//! a traditional suppressor (safe edges only) starves any mapping that
//! sprints. The elasticity-aware suppressor lets aged tokens cross on
//! unsafe edges, keeping mixed-clock mappings at full throughput.

use uecgra_bench::{engine_arg, header, json_path, write_reports};
use uecgra_clock::VfMode;
use uecgra_compiler::bitstream::Bitstream;
use uecgra_compiler::mapping::{ArrayShape, MappedKernel};
use uecgra_compiler::power_map::{power_map, Objective};
use uecgra_core::report::metrics_report;
use uecgra_dfg::kernels;
use uecgra_rtl::fabric::{Fabric, FabricConfig, SuppressorKind};

fn main() {
    header("Ablation: suppressor flavor vs throughput (iterations completed)");
    println!(
        "{:<8} {:>12} {:>14} {:>14}",
        "kernel", "target", "elast.-aware", "traditional"
    );
    let mut metrics = Vec::new();
    for k in [
        kernels::llist::build_with_hops(120),
        kernels::dither::build_with_pixels(120),
        kernels::bf::build_with_rounds(32),
    ] {
        let pm = power_map(&k.dfg, k.mem.clone(), k.iter_marker, Objective::Performance);
        let mapped = MappedKernel::map(&k.dfg, ArrayShape::default(), 7).expect("maps");
        let bs = Bitstream::assemble(&k.dfg, &mapped, &pm.node_modes).expect("assembles");
        let run = |kind| {
            let config = FabricConfig {
                marker: Some(mapped.coord_of(k.iter_marker)),
                suppressor: kind,
                max_ticks: 300_000,
                ..FabricConfig::default()
            };
            Fabric::new(&bs, k.mem.clone(), config)
                .run_with(engine_arg())
                .iterations()
        };
        let sprints = pm
            .node_modes
            .iter()
            .filter(|m| **m == VfMode::Sprint)
            .count();
        let elastic = run(SuppressorKind::ElasticityAware);
        let traditional = run(SuppressorKind::Traditional);
        println!(
            "{:<8} {:>12} {:>14} {:>14}   ({} sprinting nodes)",
            k.name, k.iters, elastic, traditional, sprints
        );
        metrics.push((format!("{}_target_iters", k.name), k.iters as f64));
        metrics.push((format!("{}_elastic_iters", k.name), elastic as f64));
        metrics.push((format!("{}_traditional_iters", k.name), traditional as f64));
        metrics.push((format!("{}_sprint_nodes", k.name), sprints as f64));
    }
    if let Some(path) = json_path() {
        write_reports(&path, &[metrics_report("ablation_suppressor", metrics)]);
    }
    println!("\nTraditional suppression deadlocks the POpt mappings: crossings into");
    println!("slower domains have no safe edges, so only the elasticity-aware design");
    println!("makes per-PE DVFS usable at all.");
}

//! Figure 14: per-PE energy contours for llist and dither across the
//! E-CGRA and both UE-CGRA mappings, rendered as ASCII heat maps with
//! DVFS-mode glyphs.

use uecgra_bench::{engine_arg, header, json_path, kernel_run_reports, write_reports};
use uecgra_clock::VfMode;
use uecgra_core::experiments::{energy_contour, run_all_policies_many_with, SEED};
use uecgra_core::pipeline::CgraRun;
use uecgra_core::report::metrics_report;
use uecgra_dfg::kernels;

fn glyph(mode: Option<VfMode>) -> char {
    match mode {
        None => '.',
        Some(VfMode::Rest) => 'r',
        Some(VfMode::Nominal) => 'n',
        Some(VfMode::Sprint) => 'S',
    }
}

fn shade(pj: f64, max: f64) -> char {
    if pj <= 0.0 {
        return ' ';
    }
    let levels = [' ', '1', '2', '3', '4', '5', '6', '7', '8', '9'];
    let idx = ((pj / max) * 9.0).ceil().min(9.0) as usize;
    levels[idx]
}

fn print_contour(run: &CgraRun, label: &'static str) {
    let c = energy_contour(run, label);
    let max = c
        .energy_pj
        .iter()
        .flatten()
        .cloned()
        .fold(0.0f64, f64::max)
        .max(1e-9);
    println!("\n{label}  (heat 1..9 = relative energy; r/n/S = rest/nominal/sprint; . = gated)");
    for y in 0..8 {
        print!("  ");
        for x in 0..8 {
            print!("{}{} ", shade(c.energy_pj[y][x], max), glyph(c.modes[y][x]));
        }
        println!();
    }
    println!("  hottest PE: {:.0} pJ over the run", max);
}

fn main() {
    header("Figure 14: PE energy contours (llist, dither)");
    // Both kernels × all three policies fan out across worker threads;
    // rendering stays on the main thread in input order, so the output
    // is bit-identical for any UECGRA_THREADS setting.
    let ks = [
        kernels::llist::build_with_hops(400),
        kernels::dither::build_with_pixels(400),
    ];
    let all = run_all_policies_many_with(&ks, SEED, engine_arg()).expect("kernels run");
    for runs in &all {
        println!("\n=== {} ===", runs.kernel.name);
        print_contour(&runs.e, "E-CGRA");
        print_contour(&runs.popt, "UE-CGRA POpt");
        print_contour(&runs.eopt, "UE-CGRA EOpt");
    }
    if let Some(path) = json_path() {
        let mut reports = Vec::new();
        for runs in &all {
            reports.extend(kernel_run_reports(runs));
            let mut metrics = Vec::new();
            for (label, run) in [
                ("E-CGRA", &runs.e),
                ("UE-CGRA EOpt", &runs.eopt),
                ("UE-CGRA POpt", &runs.popt),
            ] {
                let c = energy_contour(run, label);
                let hottest = c.energy_pj.iter().flatten().cloned().fold(0.0f64, f64::max);
                metrics.push((format!("{label}_hottest_pe_pj"), hottest));
            }
            reports.push(metrics_report(
                format!("fig14/{}", runs.kernel.name),
                metrics,
            ));
        }
        write_reports(&path, &reports);
    }
}

//! Table I: power breakdowns of the dither kernel with and without
//! power gating (P) and hierarchical clock gating (H).

use uecgra_bench::{
    engine_arg, evaluation_kernels, header, json_path, kernel_run_reports, write_reports,
};
use uecgra_core::experiments::{run_all_policies_with, table1, SEED};
use uecgra_core::report::metrics_report;

fn main() {
    let dither = evaluation_kernels().remove(1);
    assert_eq!(dither.name, "dither");
    let runs =
        run_all_policies_with(&dither, SEED, engine_arg()).expect("dither compiles and runs");
    header("Table I: power breakdowns, dither kernel (mW)");
    println!(
        "{:<22} {:>8} {:>8} {:>7} {:>7} {:>7} {:>8} {:>7}",
        "configuration", "PE logic", "PE clk", "G.spr", "G.nom", "G.rest", "tot clk", "total"
    );
    let rows = table1(&runs);
    for row in &rows {
        println!(
            "{:<22} {:>8.2} {:>8.2} {:>7.2} {:>7.2} {:>7.2} {:>8.2} {:>7.2}",
            row.label,
            row.pe_logic_mw,
            row.pe_clock_mw,
            row.global_mw[2],
            row.global_mw[1],
            row.global_mw[0],
            row.total_clock_mw,
            row.total_mw
        );
    }
    println!("\nPaper shape: clock ~half of total when ungated; P then H cut it");
    println!("stepwise; UE global clock ~4x E global clock before gating.");

    if let Some(path) = json_path() {
        // Full telemetry of the three underlying dither runs, plus the
        // table rows as named scalars (per configuration × gating).
        let mut reports = kernel_run_reports(&runs);
        let mut metrics = Vec::new();
        for row in &rows {
            for (field, v) in [
                ("pe_logic_mw", row.pe_logic_mw),
                ("pe_clock_mw", row.pe_clock_mw),
                ("global_rest_mw", row.global_mw[0]),
                ("global_nominal_mw", row.global_mw[1]),
                ("global_sprint_mw", row.global_mw[2]),
                ("total_clock_mw", row.total_clock_mw),
                ("total_mw", row.total_mw),
            ] {
                metrics.push((format!("{}/{field}", row.label), v));
            }
        }
        reports.push(metrics_report("table1_power", metrics));
        write_reports(&path, &reports);
    }
}

//! Table I: power breakdowns of the dither kernel with and without
//! power gating (P) and hierarchical clock gating (H).

use uecgra_bench::{evaluation_kernels, header};
use uecgra_core::experiments::{run_all_policies, table1, SEED};

fn main() {
    let dither = evaluation_kernels().remove(1);
    assert_eq!(dither.name, "dither");
    let runs = run_all_policies(&dither, SEED).expect("dither compiles and runs");
    header("Table I: power breakdowns, dither kernel (mW)");
    println!(
        "{:<22} {:>8} {:>8} {:>7} {:>7} {:>7} {:>8} {:>7}",
        "configuration", "PE logic", "PE clk", "G.spr", "G.nom", "G.rest", "tot clk", "total"
    );
    for row in table1(&runs) {
        println!(
            "{:<22} {:>8.2} {:>8.2} {:>7.2} {:>7.2} {:>7.2} {:>8.2} {:>7.2}",
            row.label,
            row.pe_logic_mw,
            row.pe_clock_mw,
            row.global_mw[2],
            row.global_mw[1],
            row.global_mw[0],
            row.total_clock_mw,
            row.total_mw
        );
    }
    println!("\nPaper shape: clock ~half of total when ungated; P then H cut it");
    println!("stepwise; UE global clock ~4x E global clock before gating.");
}

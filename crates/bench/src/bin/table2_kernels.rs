//! Table II: UE-CGRA performance and energy relative to the 8x8
//! E-CGRA.

use uecgra_bench::{evaluation_kernels, header, r2};
use uecgra_core::experiments::{table2, SEED};

fn main() {
    header("Table II: UE-CGRA vs E-CGRA (iterations/s and iterations/J, relative)");
    println!(
        "{:<8} | {:>9} {:>9} | {:>9} {:>9} |  paper EOpt eff / POpt perf",
        "kernel", "EOpt perf", "EOpt eff", "POpt perf", "POpt eff"
    );
    let paper = [
        (1.50, 1.49),
        (1.24, 1.42),
        (1.73, 1.50),
        (2.32, 1.49),
        (1.32, 1.44),
    ];
    for (row, (pe, pp)) in table2(&evaluation_kernels(), SEED)
        .expect("all kernels compile and run")
        .iter()
        .zip(paper)
    {
        println!(
            "{:<8} | {:>9} {:>9} | {:>9} {:>9} |  {pe:.2} / {pp:.2}",
            row.kernel,
            r2(row.eopt_perf),
            r2(row.eopt_eff),
            r2(row.popt_perf),
            r2(row.popt_eff)
        );
    }
}

//! Table II: UE-CGRA performance and energy relative to the 8x8
//! E-CGRA.

use uecgra_bench::{
    engine_arg, evaluation_kernels, header, json_path, kernel_run_reports, r2, write_reports,
};
use uecgra_core::experiments::{run_all_policies_many_with, KernelRuns, SEED};
use uecgra_core::report::metrics_report;

fn main() {
    header("Table II: UE-CGRA vs E-CGRA (iterations/s and iterations/J, relative)");
    println!(
        "{:<8} | {:>9} {:>9} | {:>9} {:>9} |  paper EOpt eff / POpt perf",
        "kernel", "EOpt perf", "EOpt eff", "POpt perf", "POpt eff"
    );
    let paper = [
        (1.50, 1.49),
        (1.24, 1.42),
        (1.73, 1.50),
        (2.32, 1.49),
        (1.32, 1.44),
    ];
    let all = run_all_policies_many_with(&evaluation_kernels(), SEED, engine_arg())
        .expect("all kernels compile and run");
    let rows: Vec<_> = all.iter().map(KernelRuns::table2_row).collect();
    for (row, (pe, pp)) in rows.iter().zip(paper) {
        println!(
            "{:<8} | {:>9} {:>9} | {:>9} {:>9} |  {pe:.2} / {pp:.2}",
            row.kernel,
            r2(row.eopt_perf),
            r2(row.eopt_eff),
            r2(row.popt_perf),
            r2(row.popt_eff)
        );
    }
    if let Some(path) = json_path() {
        let mut reports: Vec<_> = all.iter().flat_map(kernel_run_reports).collect();
        for row in &rows {
            reports.push(metrics_report(
                format!("table2/{}", row.kernel),
                vec![
                    ("eopt_perf".into(), row.eopt_perf),
                    ("eopt_eff".into(), row.eopt_eff),
                    ("popt_perf".into(), row.popt_perf),
                    ("popt_eff".into(), row.popt_eff),
                ],
            ));
        }
        write_reports(&path, &reports);
    }
}

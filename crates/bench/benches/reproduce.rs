//! Criterion benchmarks over the reproduction stack: one group per
//! paper artifact, measuring the cost of regenerating it. (The
//! `src/bin/*` binaries print the artifacts themselves; these benches
//! keep the machinery honest and measurable.)

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

/// Keep the full-workspace bench run quick: short warmup/measurement
/// windows are plenty for these deterministic simulators.
fn quick(g: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    g.warm_up_time(Duration::from_millis(400));
    g.measurement_time(Duration::from_secs(1));
}
use uecgra_clock::VfMode;
use uecgra_compiler::bitstream::Bitstream;
use uecgra_compiler::mapping::{ArrayShape, MappedKernel};
use uecgra_compiler::power_map::{power_map, Objective};
use uecgra_core::experiments::SEED;
use uecgra_core::pipeline::{run_kernel, Policy};
use uecgra_dfg::kernels::{self, synthetic};
use uecgra_model::sweep::sweep_group_modes;
use uecgra_model::{DfgSimulator, SimConfig};
use uecgra_rtl::fabric::{Fabric, FabricConfig};
use uecgra_vlsi::area::{pe_area, CgraKind, FIG10_CYCLE_TIMES};

/// Figure 2/7: the analytical discrete-event simulator on toy DFGs.
fn bench_analytical_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig02_07_analytical_sim");
    quick(&mut g);
    g.sample_size(20);
    g.bench_function("cycle4_nominal_200_iters", |b| {
        b.iter(|| {
            let s = synthetic::cycle_n(4);
            let config = SimConfig {
                marker: Some(s.iter_marker),
                max_marker_fires: Some(200),
                ..SimConfig::default()
            };
            let modes = vec![VfMode::Nominal; s.dfg.node_count()];
            black_box(DfgSimulator::new(&s.dfg, modes, vec![], config).run())
        })
    });
    g.finish();
}

/// Figure 3: the full per-group VF sweep.
fn bench_fig3_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig03_sweep");
    quick(&mut g);
    g.sample_size(10);
    g.bench_function("case_study_full_sweep", |b| {
        b.iter(|| {
            let cs = synthetic::fig3_case_study();
            black_box(sweep_group_modes(&cs.dfg, vec![0; 4096], cs.iter_marker))
        })
    });
    g.finish();
}

/// Figures 10-12: the VLSI area models.
fn bench_vlsi_models(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_12_vlsi");
    quick(&mut g);
    g.bench_function("pe_area_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for kind in CgraKind::ALL {
                for &t in &FIG10_CYCLE_TIMES {
                    acc += pe_area(kind, t);
                }
            }
            black_box(acc)
        })
    });
    g.finish();
}

/// Compiler: place + route + power-map + assemble for each kernel.
fn bench_compiler(c: &mut Criterion) {
    let mut g = c.benchmark_group("compiler");
    quick(&mut g);
    g.sample_size(10);
    for k in [
        kernels::llist::build_with_hops(60),
        kernels::fft::build_with_group(60),
    ] {
        g.bench_function(format!("map_and_assemble_{}", k.name), |b| {
            b.iter(|| {
                let mapped = MappedKernel::map(&k.dfg, ArrayShape::default(), SEED).unwrap();
                let modes = vec![VfMode::Nominal; k.dfg.node_count()];
                black_box(Bitstream::assemble(&k.dfg, &mapped, &modes).unwrap())
            })
        });
        g.bench_function(format!("power_map_popt_{}", k.name), |b| {
            b.iter(|| {
                black_box(power_map(
                    &k.dfg,
                    k.mem.clone(),
                    k.iter_marker,
                    Objective::Performance,
                ))
            })
        });
    }
    g.finish();
}

/// Tables II/III: the cycle-level fabric executing kernels.
fn bench_fabric(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_3_fabric");
    quick(&mut g);
    g.sample_size(10);
    for k in [
        kernels::dither::build_with_pixels(120),
        kernels::bf::build_with_rounds(32),
    ] {
        let mapped = MappedKernel::map(&k.dfg, ArrayShape::default(), SEED).unwrap();
        let modes = vec![VfMode::Nominal; k.dfg.node_count()];
        let bs = Bitstream::assemble(&k.dfg, &mapped, &modes).unwrap();
        let marker = mapped.coord_of(k.iter_marker);
        g.bench_function(format!("fabric_{}", k.name), |b| {
            b.iter(|| {
                let config = FabricConfig {
                    marker: Some(marker),
                    ..FabricConfig::default()
                };
                black_box(Fabric::new(&bs, k.mem.clone(), config).run())
            })
        });
    }
    g.finish();
}

/// The full end-to-end pipeline (one Table II cell).
fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline_end_to_end");
    quick(&mut g);
    g.sample_size(10);
    let k = kernels::llist::build_with_hops(120);
    for policy in Policy::ALL {
        g.bench_function(policy.label().replace(' ', "_"), |b| {
            b.iter(|| black_box(run_kernel(&k, policy, SEED).unwrap()))
        });
    }
    g.finish();
}

/// The compiler's text frontend.
fn bench_parser(c: &mut Criterion) {
    let src = "
        array src @ 16;
        array dst @ 1048;
        for i in 0..1000 carry (err = 0) {
            let out = src[i] + err;
            if (out > 127) { dst[i] = 255; err = out - 255; }
            else { dst[i] = 0; err = out; }
        }
    ";
    let mut g = c.benchmark_group("frontend");
    quick(&mut g);
    g.bench_function("parse_and_lower_dither", |b| {
        b.iter(|| {
            let p = uecgra_compiler::parse::parse(black_box(src)).unwrap();
            black_box(uecgra_compiler::frontend::lower(&p.nest).unwrap())
        })
    });
    g.finish();
}

/// The out-of-order scheduling model over a kernel trace.
fn bench_ooo(c: &mut Criterion) {
    use uecgra_system::{programs, run_ooo, OooParams};
    let k = kernels::fft::build_with_group(200);
    let mut g = c.benchmark_group("system_ooo");
    quick(&mut g);
    g.sample_size(10);
    g.bench_function("ooo_schedule_fft", |b| {
        b.iter(|| {
            black_box(
                run_ooo(
                    programs::fft_program(200),
                    k.mem.clone(),
                    OooParams::default(),
                )
                .unwrap(),
            )
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_analytical_sim,
    bench_fig3_sweep,
    bench_vlsi_models,
    bench_compiler,
    bench_fabric,
    bench_pipeline,
    bench_parser,
    bench_ooo
);
criterion_main!(benches);

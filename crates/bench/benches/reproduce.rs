//! Wall-clock benchmarks over the reproduction stack: one group per
//! paper artifact, measuring the cost of regenerating it. (The
//! `src/bin/*` binaries print the artifacts themselves; these benches
//! keep the machinery honest and measurable.)
//!
//! Dependency-free by necessity — the build container has no network,
//! so `criterion` cannot be fetched. Each benchmark runs a warmup
//! pass, then reports min/median/mean over a fixed number of
//! iterations; `harness = false` plus the non-default `bench-harness`
//! feature keep this target out of ordinary `cargo test` builds.
//! Run with: `cargo bench -p uecgra-bench --features bench-harness`.

use std::hint::black_box;
use std::time::Instant;
use uecgra_clock::VfMode;
use uecgra_compiler::bitstream::Bitstream;
use uecgra_compiler::mapping::{ArrayShape, MappedKernel};
use uecgra_compiler::power_map::{power_map, Objective};
use uecgra_core::experiments::SEED;
use uecgra_core::pipeline::{run_kernel, Policy};
use uecgra_dfg::kernels::{self, synthetic};
use uecgra_model::sweep::sweep_group_modes;
use uecgra_model::{DfgSimulator, SimConfig};
use uecgra_rtl::fabric::{Fabric, FabricConfig};
use uecgra_vlsi::area::{pe_area, CgraKind, FIG10_CYCLE_TIMES};

/// Time `f` over `iters` iterations after one warmup call and print a
/// criterion-style summary line.
fn bench<R>(group: &str, name: &str, iters: u32, mut f: impl FnMut() -> R) {
    black_box(f());
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            black_box(f());
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{group}/{name}: min {min:.3} ms, median {median:.3} ms, mean {mean:.3} ms ({iters} iters)"
    );
}

/// Figure 2/7: the analytical discrete-event simulator on toy DFGs.
fn bench_analytical_sim() {
    bench(
        "fig02_07_analytical_sim",
        "cycle4_nominal_200_iters",
        20,
        || {
            let s = synthetic::cycle_n(4);
            let config = SimConfig {
                marker: Some(s.iter_marker),
                max_marker_fires: Some(200),
                ..SimConfig::default()
            };
            let modes = vec![VfMode::Nominal; s.dfg.node_count()];
            DfgSimulator::new(&s.dfg, modes, vec![], config).run()
        },
    );
}

/// Figure 3: the full per-group VF sweep.
fn bench_fig3_sweep() {
    bench("fig03_sweep", "case_study_full_sweep", 10, || {
        let cs = synthetic::fig3_case_study();
        sweep_group_modes(&cs.dfg, vec![0; 4096], cs.iter_marker)
    });
}

/// Figures 10-12: the VLSI area models.
fn bench_vlsi_models() {
    bench("fig10_12_vlsi", "pe_area_sweep", 50, || {
        let mut acc = 0.0;
        for kind in CgraKind::ALL {
            for &t in &FIG10_CYCLE_TIMES {
                acc += pe_area(kind, t);
            }
        }
        acc
    });
}

/// Compiler: place + route + power-map + assemble for each kernel.
fn bench_compiler() {
    for k in [
        kernels::llist::build_with_hops(60),
        kernels::fft::build_with_group(60),
    ] {
        bench(
            "compiler",
            &format!("map_and_assemble_{}", k.name),
            10,
            || {
                let mapped = MappedKernel::map(&k.dfg, ArrayShape::default(), SEED).unwrap();
                let modes = vec![VfMode::Nominal; k.dfg.node_count()];
                Bitstream::assemble(&k.dfg, &mapped, &modes).unwrap()
            },
        );
        bench(
            "compiler",
            &format!("power_map_popt_{}", k.name),
            10,
            || power_map(&k.dfg, k.mem.clone(), k.iter_marker, Objective::Performance),
        );
    }
}

/// Tables II/III: the cycle-level fabric executing kernels.
fn bench_fabric() {
    for k in [
        kernels::dither::build_with_pixels(120),
        kernels::bf::build_with_rounds(32),
    ] {
        let mapped = MappedKernel::map(&k.dfg, ArrayShape::default(), SEED).unwrap();
        let modes = vec![VfMode::Nominal; k.dfg.node_count()];
        let bs = Bitstream::assemble(&k.dfg, &mapped, &modes).unwrap();
        let marker = mapped.coord_of(k.iter_marker);
        bench("table2_3_fabric", &format!("fabric_{}", k.name), 10, || {
            let config = FabricConfig {
                marker: Some(marker),
                ..FabricConfig::default()
            };
            Fabric::new(&bs, k.mem.clone(), config).run()
        });
    }
}

/// The full end-to-end pipeline (one Table II cell).
fn bench_pipeline() {
    let k = kernels::llist::build_with_hops(120);
    for policy in Policy::ALL {
        bench(
            "pipeline_end_to_end",
            &policy.label().replace(' ', "_"),
            10,
            || run_kernel(&k, policy, SEED).unwrap(),
        );
    }
}

/// The compiler's text frontend.
fn bench_parser() {
    let src = "
        array src @ 16;
        array dst @ 1048;
        for i in 0..1000 carry (err = 0) {
            let out = src[i] + err;
            if (out > 127) { dst[i] = 255; err = out - 255; }
            else { dst[i] = 0; err = out; }
        }
    ";
    bench("frontend", "parse_and_lower_dither", 50, || {
        let p = uecgra_compiler::parse::parse(black_box(src)).unwrap();
        uecgra_compiler::frontend::lower(&p.nest).unwrap()
    });
}

/// The out-of-order scheduling model over a kernel trace.
fn bench_ooo() {
    use uecgra_system::{programs, run_ooo, OooParams};
    let k = kernels::fft::build_with_group(200);
    bench("system_ooo", "ooo_schedule_fft", 10, || {
        run_ooo(
            programs::fft_program(200),
            k.mem.clone(),
            OooParams::default(),
        )
        .unwrap()
    });
}

fn main() {
    bench_analytical_sim();
    bench_fig3_sweep();
    bench_vlsi_models();
    bench_compiler();
    bench_fabric();
    bench_pipeline();
    bench_parser();
    bench_ooo();
}

//! Campaign determinism: the schema-v2 fault-campaign JSON must be a
//! pure function of the campaign seed — byte-identical across worker
//! thread counts and across simulation engines.

use uecgra_bench::campaign::{campaign_report, run_campaign, CampaignConfig};
use uecgra_core::pipeline::Engine;
use uecgra_dfg::{kernels, Kernel};
use uecgra_probe::RunReport;

fn tiny_kernels() -> Vec<Kernel> {
    vec![
        kernels::llist::build_with_hops(40),
        kernels::dither::build_with_pixels(40),
    ]
}

fn render(config: &CampaignConfig) -> String {
    let section = run_campaign(&tiny_kernels(), config);
    RunReport::render_all(&[campaign_report("fault_campaign", section)])
}

#[test]
fn campaign_json_is_byte_identical_across_thread_counts() {
    let config = CampaignConfig {
        seed: 3,
        per_kernel: 6,
        ..CampaignConfig::default()
    };
    // Specimens land in index-addressed slots, so the worker count
    // must never show up in the bytes.
    std::env::set_var("UECGRA_THREADS", "1");
    let single = render(&config);
    std::env::set_var("UECGRA_THREADS", "8");
    let eight = render(&config);
    std::env::remove_var("UECGRA_THREADS");
    assert_eq!(single, eight, "campaign JSON depends on the thread count");
}

#[test]
fn engines_agree_on_every_injected_fault_outcome() {
    let base = CampaignConfig {
        seed: 3,
        per_kernel: 6,
        ..CampaignConfig::default()
    };
    let dense = run_campaign(
        &tiny_kernels(),
        &CampaignConfig {
            engine: Engine::Dense,
            ..base
        },
    );
    let event = run_campaign(
        &tiny_kernels(),
        &CampaignConfig {
            engine: Engine::EventDriven,
            ..base
        },
    );
    assert_eq!(
        dense.entries.len(),
        event.entries.len(),
        "engines drew different specimen sets"
    );
    for (d, e) in dense.entries.iter().zip(&event.entries) {
        assert_eq!(d, e, "engines disagree on fault {}", d.fault);
    }
    assert_eq!(dense, event);
}

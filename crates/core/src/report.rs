//! Building [`RunReport`]s from finished pipeline runs.
//!
//! This is the bridge between the simulator's [`Activity`] counters
//! and the `uecgra-probe` schema: one [`RunReport`] per
//! [`CgraRun`], with per-PE edge-classified stall attribution, queue
//! occupancy histograms and the per-domain clock-edge counters the
//! measured clock-power path consumes. Everything emitted here is a
//! pure function of the run, so reports inherit the workspace
//! determinism contract (DESIGN.md §9).

use crate::pipeline::CgraRun;
use uecgra_clock::VfMode;
use uecgra_compiler::bitstream::PeRole;
use uecgra_probe::{PeReport, QueueReport, RunReport};

/// Stable lowercase label of a clock domain.
pub fn mode_label(mode: VfMode) -> &'static str {
    match mode {
        VfMode::Rest => "rest",
        VfMode::Nominal => "nominal",
        VfMode::Sprint => "sprint",
    }
}

/// Build the telemetry report of one finished run.
///
/// `name` labels the report (conventionally `<kernel>/<policy>` or a
/// figure identifier); `kernel` is the kernel's name when one applies.
/// Timings and metrics start empty — callers attach them when they
/// have any (the CLI adds wall-clock timings; figure binaries add
/// their published scalars).
pub fn run_report(name: impl Into<String>, kernel: Option<&str>, run: &CgraRun) -> RunReport {
    let act = &run.activity;
    let mut pes = Vec::new();
    let mut queues = Vec::new();
    for (y, row) in run.bitstream.grid.iter().enumerate() {
        for (x, cfg) in row.iter().enumerate() {
            let op = match cfg.role {
                PeRole::Gated => continue,
                PeRole::RouteOnly => "bypass".to_string(),
                PeRole::Compute(op) => op.mnemonic().to_string(),
            };
            pes.push(PeReport {
                x: x as u64,
                y: y as u64,
                op,
                mode: mode_label(cfg.clk).to_string(),
                rising_edges: act.rising_edges[y][x],
                fires: act.fires[y][x],
                bypass_tokens: act.bypass_tokens[y][x],
                fire_edges: act.fire_edges[y][x],
                operand_stall_edges: act.operand_stalls[y][x],
                suppressed_stall_edges: act.suppressed_stalls[y][x],
                backpressure_stall_edges: act.backpressure_stalls[y][x],
                gated_ticks: act.gated_ticks[y][x],
                input_stalls: act.input_stalls[y][x],
                output_stalls: act.output_stalls[y][x],
                sram_accesses: act.sram_accesses[y][x],
            });
            queues.push(QueueReport {
                x: x as u64,
                y: y as u64,
                occupancy: act.queue_occupancy[y][x].clone(),
            });
        }
    }
    RunReport {
        name: name.into(),
        kernel: kernel.map(str::to_string),
        policy: Some(run.policy.label().to_string()),
        seed: None,
        engine: None,
        iterations: act.iterations(),
        ticks: act.ticks,
        nominal_cycles: act.nominal_cycles(),
        ii: act.steady_ii(8),
        stop: format!("{:?}", act.stop),
        domain_edges: act.domain_edges,
        domain_edges_hyper: act.domain_edges_hyper,
        domain_gated_ticks: act.domain_gated_ticks,
        pes,
        queues,
        timings: None,
        metrics: Vec::new(),
        fault_campaign: None,
        dse: None,
    }
}

/// A metrics-only report for figure/table binaries whose output is
/// analytic (no fabric run): just named scalars under the shared
/// schema.
pub fn metrics_report(name: impl Into<String>, metrics: Vec<(String, f64)>) -> RunReport {
    RunReport {
        name: name.into(),
        stop: "Analytic".to_string(),
        metrics,
        ..RunReport::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Policy, RunRequest};
    use uecgra_dfg::kernels;

    #[test]
    fn report_mirrors_activity_and_conserves_edges() {
        let k = kernels::dither::build_with_pixels(60);
        let run = RunRequest::new(&k)
            .policy(Policy::UePerfOpt)
            .seed(7)
            .run()
            .unwrap();
        let report = run_report(
            format!("{}/{}", k.name, run.policy.label()),
            Some(k.name),
            &run,
        );
        assert_eq!(report.kernel.as_deref(), Some("dither"));
        assert_eq!(report.iterations, run.activity.iterations());
        assert_eq!(report.stop, "Quiesced");
        assert!(!report.pes.is_empty());
        assert_eq!(report.pes.len(), report.queues.len());
        let total_fires: u64 = report.pes.iter().map(|p| p.fires).sum();
        let grid_fires: u64 = run.activity.fires.iter().flatten().sum();
        assert_eq!(total_fires, grid_fires);
        for pe in &report.pes {
            assert!(pe.conserves_edges(), "PE ({}, {})", pe.x, pe.y);
        }
        // Serialization round-trips.
        let text = RunReport::render_all(std::slice::from_ref(&report));
        assert_eq!(RunReport::parse_all(&text).unwrap(), vec![report]);
    }

    #[test]
    fn metrics_reports_carry_scalars_only() {
        let r = metrics_report("fig10_pe_area", vec![("ue_pe_um2".into(), 123.0)]);
        assert!(r.pes.is_empty());
        assert_eq!(r.stop, "Analytic");
        let text = RunReport::render_all(std::slice::from_ref(&r));
        assert_eq!(RunReport::parse_all(&text).unwrap()[0].metrics[0].1, 123.0);
    }
}

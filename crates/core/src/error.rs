//! The unified pipeline error type.
//!
//! Every stage of the kernel pipeline — parsing, lowering, mapping,
//! assembly, waveform dumping, execution — previously surfaced its
//! own error type (or a panic); [`Error`] gathers them under one enum
//! with [`std::error::Error::source`] chaining, so callers can match
//! on the stage while diagnostics keep the underlying detail. The
//! `uecgra` CLI prints the whole chain (`error: ...` followed by
//! `caused by: ...` lines) instead of a `Debug` dump.

use uecgra_clock::RatioError;
use uecgra_compiler::bitstream::BitstreamError;
use uecgra_compiler::ir::IrError;
use uecgra_compiler::mapping::MapError;
use uecgra_compiler::parse::ParseError;
use uecgra_rtl::{ProtocolViolation, TraceError};

/// Any failure of the compile-and-execute pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Source text did not parse.
    Parse(ParseError),
    /// The AST could not be lowered to a dataflow graph.
    Lower(IrError),
    /// Placement/routing failed.
    Map(MapError),
    /// The requested clock divisors are invalid.
    Clock(RatioError),
    /// The routed mapping could not be assembled into a bitstream.
    Assemble(BitstreamError),
    /// Waveform dumping failed.
    Trace(TraceError),
    /// The fabric hit its tick limit without completing.
    DidNotTerminate,
    /// The elastic-protocol checker detected a fatal invariant
    /// violation (pop from empty, double take, credit-less push, or an
    /// out-of-bounds memory access) and stopped the run.
    Protocol(ProtocolViolation),
    /// The run completed but produced too few iterations to measure a
    /// steady-state initiation interval.
    NoSteadyState {
        /// Iterations the marker actually completed.
        iterations: u64,
    },
    /// The fabric made no forward progress (livelock/deadlock — e.g.
    /// under injected faults) and quiesced before reaching its
    /// iteration target.
    Stalled {
        /// The PLL tick at which the run gave up.
        cycle: u64,
        /// The PE with the worst stall attribution (operand,
        /// suppressed, and backpressure edges summed — the probe
        /// layer's edge classification).
        pe: (usize, usize),
    },
    /// A file could not be read or written (CLI paths).
    Io {
        /// The file involved.
        path: String,
        /// The underlying OS error text.
        message: String,
    },
    /// A telemetry report failed to parse or validate.
    Report(uecgra_probe::SchemaError),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Parse(_) => write!(f, "parsing failed"),
            Error::Lower(_) => write!(f, "lowering to dataflow failed"),
            Error::Map(_) => write!(f, "mapping failed"),
            Error::Clock(_) => write!(f, "invalid clock configuration"),
            Error::Assemble(_) => write!(f, "bitstream assembly failed"),
            Error::Trace(_) => write!(f, "waveform dump failed"),
            Error::DidNotTerminate => write!(f, "fabric execution did not terminate"),
            Error::Protocol(_) => write!(f, "elastic-protocol invariant violated"),
            Error::NoSteadyState { iterations } => write!(
                f,
                "run completed only {iterations} iterations — too few for a steady-state window"
            ),
            Error::Stalled { cycle, pe } => write!(
                f,
                "fabric stalled without progress at tick {cycle} (worst stall: PE ({}, {}))",
                pe.0, pe.1
            ),
            Error::Io { path, .. } => write!(f, "i/o failed on `{path}`"),
            Error::Report(_) => write!(f, "telemetry report validation failed"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Parse(e) => Some(e),
            Error::Lower(e) => Some(e),
            Error::Map(e) => Some(e),
            Error::Clock(e) => Some(e),
            Error::Assemble(e) => Some(e),
            Error::Trace(e) => Some(e),
            Error::DidNotTerminate => None,
            Error::Protocol(v) => Some(v),
            Error::NoSteadyState { .. } => None,
            Error::Stalled { .. } => None,
            Error::Io { .. } => None,
            Error::Report(e) => Some(e),
        }
    }
}

impl From<ParseError> for Error {
    fn from(e: ParseError) -> Self {
        Error::Parse(e)
    }
}

impl From<IrError> for Error {
    fn from(e: IrError) -> Self {
        Error::Lower(e)
    }
}

impl From<MapError> for Error {
    fn from(e: MapError) -> Self {
        Error::Map(e)
    }
}

impl From<RatioError> for Error {
    fn from(e: RatioError) -> Self {
        Error::Clock(e)
    }
}

impl From<BitstreamError> for Error {
    fn from(e: BitstreamError) -> Self {
        Error::Assemble(e)
    }
}

impl From<TraceError> for Error {
    fn from(e: TraceError) -> Self {
        Error::Trace(e)
    }
}

impl From<ProtocolViolation> for Error {
    fn from(v: ProtocolViolation) -> Self {
        Error::Protocol(v)
    }
}

impl From<uecgra_probe::SchemaError> for Error {
    fn from(e: uecgra_probe::SchemaError) -> Self {
        Error::Report(e)
    }
}

/// Render the full cause chain, one line per cause, the way the CLI
/// reports failures:
///
/// ```text
/// error: mapping failed
///   caused by: kernel has more memory nodes than perimeter PEs
/// ```
pub fn error_chain(e: &dyn std::error::Error) -> String {
    let mut out = format!("error: {e}");
    let mut cause = e.source();
    while let Some(c) = cause {
        out.push_str(&format!("\n  caused by: {c}"));
        cause = c.source();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    fn map_error() -> MapError {
        MapError::TooManyNodes { nodes: 99, pes: 64 }
    }

    #[test]
    fn sources_chain_to_the_stage_error() {
        let e = Error::Map(map_error());
        assert!(e.source().is_some());
        let chain = error_chain(&e);
        assert!(chain.starts_with("error: mapping failed"));
        assert!(chain.contains("caused by:"), "{chain}");
    }

    #[test]
    fn terminal_errors_have_no_source() {
        assert!(Error::DidNotTerminate.source().is_none());
        assert_eq!(
            error_chain(&Error::DidNotTerminate),
            "error: fabric execution did not terminate"
        );
    }

    #[test]
    fn conversions_wrap_each_stage() {
        let parse = ParseError {
            offset: 3,
            message: "x".into(),
        };
        assert!(matches!(Error::from(parse), Error::Parse(_)));
        assert!(matches!(Error::from(map_error()), Error::Map(_)));
        assert!(matches!(
            Error::from(TraceError::EventsNotRecorded),
            Error::Trace(_)
        ));
    }
}

//! The end-to-end UE-CGRA pipeline: kernel → map → power-map →
//! bitstream → cycle-level execution.
//!
//! [`RunRequest`] is the entry point: it compiles a kernel for the
//! 8×8 array under one of three policies — the all-nominal elastic
//! baseline (**E-CGRA**), or the ultra-elastic fabric with the
//! performance- or energy-optimized power mapping (**UE-CGRA POpt /
//! EOpt**) — and executes it to completion on the spatial simulator:
//!
//! ```
//! use uecgra_core::pipeline::{Policy, RunRequest};
//! use uecgra_dfg::kernels;
//!
//! let kernel = kernels::llist::build_with_hops(40);
//! let run = RunRequest::new(&kernel)
//!     .policy(Policy::UePerfOpt)
//!     .seed(7)
//!     .run()
//!     .unwrap();
//! assert!(run.ii() > 0.0);
//! ```
//!
//! The builder exposes the knobs the figure harnesses need (queue
//! depth, iteration cap, event recording, a [`ProbeSink`] for phase
//! timings); [`run_kernel`] survives as a thin positional wrapper.

use crate::error::Error;
use uecgra_clock::{ClockSet, VfMode};
use uecgra_compiler::bitstream::Bitstream;
use uecgra_compiler::mapping::{ArrayShape, MappedKernel};
use uecgra_compiler::power_map::{power_map_routed, Objective};
use uecgra_dfg::Kernel;
use uecgra_probe::{Phase, ProbeSink};
use uecgra_rtl::fabric::{Fabric, FabricConfig, FabricStop};
use uecgra_rtl::Activity;
pub use uecgra_rtl::Engine;
pub use uecgra_rtl::FaultPlan;

/// Which machine/policy a kernel is compiled for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// Elastic CGRA: every PE at nominal voltage and frequency.
    ECgra,
    /// UE-CGRA with the energy-optimized power mapping.
    UeEnergyOpt,
    /// UE-CGRA with the performance-optimized power mapping.
    UePerfOpt,
}

impl Policy {
    /// All three policies in the paper's comparison order.
    pub const ALL: [Policy; 3] = [Policy::ECgra, Policy::UeEnergyOpt, Policy::UePerfOpt];

    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            Policy::ECgra => "E-CGRA",
            Policy::UeEnergyOpt => "UE-CGRA EOpt",
            Policy::UePerfOpt => "UE-CGRA POpt",
        }
    }
}

/// A completed compile-and-execute run.
#[derive(Debug, Clone)]
pub struct CgraRun {
    /// The policy used.
    pub policy: Policy,
    /// The placed-and-routed kernel.
    pub mapped: MappedKernel,
    /// The assembled configuration.
    pub bitstream: Bitstream,
    /// Per-DFG-node DVFS modes.
    pub modes: Vec<VfMode>,
    /// Cycle-level execution results.
    pub activity: Activity,
    /// Iterations the kernel was built for.
    pub iterations: u64,
}

impl CgraRun {
    /// Steady-state initiation interval in nominal cycles.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NoSteadyState`] when the run produced too few
    /// iterations for the skip-8 steady-state window (e.g. a tiny
    /// kernel, an aggressive iteration cap, or a faulty run that was
    /// stopped early).
    pub fn try_ii(&self) -> Result<f64, Error> {
        self.activity.steady_ii(8).ok_or(Error::NoSteadyState {
            iterations: self.activity.iterations(),
        })
    }

    /// Steady-state initiation interval in nominal cycles.
    ///
    /// # Panics
    ///
    /// Panics if the run produced too few iterations to measure; use
    /// [`CgraRun::try_ii`] to get a structured error instead.
    pub fn ii(&self) -> f64 {
        self.try_ii()
            .expect("kernel runs enough iterations for a steady state")
    }

    /// Throughput in iterations per nominal cycle.
    pub fn throughput(&self) -> f64 {
        1.0 / self.ii()
    }

    /// Wall-clock compute time in nanoseconds (750 MHz nominal).
    pub fn runtime_ns(&self) -> f64 {
        self.activity.nominal_cycles() * (4.0 / 3.0)
    }
}

/// Errors from the pipeline — an alias for the unified workspace
/// [`Error`](crate::error::Error), kept for source compatibility with
/// the original two-variant enum.
pub type PipelineError = Error;

/// Run `f`, reporting its wall-clock duration to `sink` when one is
/// attached. With no sink this is just a call — no clock reads, no
/// allocation — which keeps the hot fan-out paths cheap.
fn timed<T>(sink: &mut Option<&mut dyn ProbeSink>, phase: Phase, f: impl FnOnce() -> T) -> T {
    match sink {
        None => f(),
        Some(s) => {
            let start = std::time::Instant::now();
            let out = f();
            s.phase_done(phase, start.elapsed().as_nanos() as u64);
            out
        }
    }
}

/// A configured compile-and-execute request: the builder-style
/// replacement for the positional [`run_kernel`].
///
/// Defaults match `run_kernel`'s historical behavior: E-CGRA policy,
/// seed 7, paper-default queue depth 2, run to quiescence, no event
/// recording, no probe.
pub struct RunRequest<'a> {
    kernel: &'a Kernel,
    policy: Policy,
    seed: u64,
    iterations: Option<u64>,
    queue_depth: usize,
    record_events: bool,
    engine: Engine,
    divisors: Option<[u32; 3]>,
    faults: FaultPlan,
    watchdog: Option<bool>,
    sink: Option<&'a mut dyn ProbeSink>,
}

impl<'a> RunRequest<'a> {
    /// Start a request for `kernel` with default settings.
    pub fn new(kernel: &'a Kernel) -> RunRequest<'a> {
        RunRequest {
            kernel,
            policy: Policy::ECgra,
            seed: 7,
            iterations: None,
            queue_depth: 2,
            record_events: false,
            engine: Engine::default(),
            divisors: None,
            faults: FaultPlan::none(),
            watchdog: None,
            sink: None,
        }
    }

    /// Select the machine/policy (default: [`Policy::ECgra`]).
    pub fn policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Set the mapping seed (default: 7).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Stop after the marker PE has fired `n` times instead of running
    /// to quiescence.
    pub fn iterations(mut self, n: u64) -> Self {
        self.iterations = Some(n);
        self
    }

    /// Input-queue capacity (default: 2, the paper's).
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Record per-event (tick, PE) firings for waveform dumping.
    pub fn record_events(mut self, on: bool) -> Self {
        self.record_events = on;
        self
    }

    /// Select the simulation engine (default: [`Engine::EventDriven`],
    /// bit-identical to the dense reference stepper by contract).
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Override the rational clock divisors `[rest, nominal, sprint]`
    /// (default: the paper's 9:3:2). Validated in [`RunRequest::run`].
    pub fn divisors(mut self, divisors: [u32; 3]) -> Self {
        self.divisors = Some(divisors);
        self
    }

    /// Inject a [`FaultPlan`] into the fabric (default: none). The
    /// always-on protocol checker converts any resulting invariant
    /// violation into [`Error::Protocol`]; enabling a non-empty plan
    /// also arms the no-progress watchdog unless
    /// [`RunRequest::watchdog`] overrides it.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Force the no-progress watchdog on or off. By default it is
    /// armed exactly when the fault plan is non-empty: fault-free
    /// experiments (e.g. the deliberately deadlocking traditional-
    /// suppressor ablation) must still report their natural stop,
    /// while a faulty run that quiesces short of its iteration target
    /// becomes [`Error::Stalled`] with stall attribution.
    pub fn watchdog(mut self, on: bool) -> Self {
        self.watchdog = Some(on);
        self
    }

    /// Attach a [`ProbeSink`] to receive wall-clock phase timings.
    pub fn probe(mut self, sink: &'a mut dyn ProbeSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Compile and execute.
    ///
    /// # Errors
    ///
    /// Returns the pipeline [`Error`] of the first failing stage:
    /// an invalid clock-divisor request, mapping, bitstream assembly
    /// or validation, a fabric run that hits its tick limit, a fatal
    /// elastic-protocol violation ([`Error::Protocol`]), or — with the
    /// watchdog armed — a run that quiesced short of its iteration
    /// target ([`Error::Stalled`]).
    pub fn run(self) -> Result<CgraRun, Error> {
        let RunRequest {
            kernel,
            policy,
            seed,
            iterations,
            queue_depth,
            record_events,
            engine,
            divisors,
            faults,
            watchdog,
            mut sink,
        } = self;

        let clocks = match divisors {
            Some(d) => ClockSet::new(d)?,
            None => ClockSet::default(),
        };
        let mapped = timed(&mut sink, Phase::PlaceRoute, || {
            MappedKernel::map(&kernel.dfg, ArrayShape::default(), seed)
        })?;
        // Routing-aware power mapping: feed the routed per-edge hop
        // counts into MeasureEnergyDelay so rest/sprint decisions see
        // physical recurrence lengths.
        let extra: Vec<u32> = kernel
            .dfg
            .edges()
            .map(|(id, _)| mapped.extra_hops(id))
            .collect();

        let modes = timed(&mut sink, Phase::PowerMap, || match policy {
            Policy::ECgra => vec![VfMode::Nominal; kernel.dfg.node_count()],
            Policy::UeEnergyOpt => {
                power_map_routed(
                    &kernel.dfg,
                    kernel.mem.clone(),
                    kernel.iter_marker,
                    Objective::Energy,
                    &extra,
                )
                .node_modes
            }
            Policy::UePerfOpt => {
                power_map_routed(
                    &kernel.dfg,
                    kernel.mem.clone(),
                    kernel.iter_marker,
                    Objective::Performance,
                    &extra,
                )
                .node_modes
            }
        });

        let bitstream = timed(&mut sink, Phase::Assemble, || {
            Bitstream::assemble(&kernel.dfg, &mapped, &modes)
        })?;
        bitstream.validate()?;
        let watchdog = watchdog.unwrap_or(!faults.is_empty());
        let config = FabricConfig {
            clocks,
            marker: Some(mapped.coord_of(kernel.iter_marker)),
            max_marker_fires: iterations,
            queue_capacity: queue_depth,
            record_events,
            faults,
            ..FabricConfig::default()
        };
        let activity = timed(&mut sink, Phase::Simulate, || {
            Fabric::new(&bitstream, kernel.mem.clone(), config).run_with(engine)
        });
        if activity.stop == FabricStop::ProtocolViolation {
            let v = *activity
                .protocol
                .first_fatal()
                .expect("a protocol stop carries its fatal violation");
            return Err(Error::Protocol(v));
        }
        if activity.stop == FabricStop::TickLimit {
            return Err(Error::DidNotTerminate);
        }
        // No-progress watchdog: a quiesced fabric that delivered fewer
        // marker fires than the kernel's iteration target has live- or
        // deadlocked (under faults this is the expected failure mode of
        // a permanently stuck handshake or stalled domain). Attribute
        // the stall to the PE with the most blocked edges.
        let expected = iterations.unwrap_or(kernel.iters as u64);
        if watchdog && activity.iterations() < expected {
            return Err(Error::Stalled {
                cycle: activity.ticks,
                pe: worst_stalled_pe(&activity),
            });
        }

        Ok(CgraRun {
            policy,
            mapped,
            bitstream,
            modes,
            activity,
            iterations: kernel.iters as u64,
        })
    }
}

/// The PE with the largest summed stall attribution (operand +
/// suppressed + backpressure edges, the probe layer's partition) —
/// first in row-major order on ties, so the choice is deterministic.
fn worst_stalled_pe(act: &Activity) -> (usize, usize) {
    let mut best = (0usize, 0usize);
    let mut best_stalls = 0u64;
    for (y, row) in act.operand_stalls.iter().enumerate() {
        for (x, &op) in row.iter().enumerate() {
            let total = op + act.suppressed_stalls[y][x] + act.backpressure_stalls[y][x];
            if total > best_stalls {
                best_stalls = total;
                best = (x, y);
            }
        }
    }
    best
}

/// Compile `kernel` under `policy` and execute it to completion on the
/// 8×8 fabric.
///
/// Deprecated-style wrapper: prefer [`RunRequest`], which exposes the
/// remaining knobs (iteration cap, queue depth, event recording,
/// probe sinks). This positional form is kept so existing harnesses
/// migrate mechanically.
///
/// # Errors
///
/// Returns a [`PipelineError`] if mapping fails or execution hits the
/// tick limit.
pub fn run_kernel(kernel: &Kernel, policy: Policy, seed: u64) -> Result<CgraRun, PipelineError> {
    RunRequest::new(kernel).policy(policy).seed(seed).run()
}

/// Compile and execute every `(kernel, policy)` pair across worker
/// threads, returning results grouped per kernel in input order
/// (`result[k][p]` is kernel `k` under `Policy::ALL[p]`).
///
/// Each pair is an independent pure function of its inputs, so the
/// fan-out uses [`uecgra_util::par`]: outputs land in index-addressed
/// slots and are bit-identical for any `UECGRA_THREADS` setting.
///
/// # Errors
///
/// Each slot carries its own [`PipelineError`]; one failing pair does
/// not abort the rest.
pub fn run_kernels_parallel(
    kernels: &[Kernel],
    seed: u64,
) -> Vec<Vec<Result<CgraRun, PipelineError>>> {
    run_kernels_parallel_with(kernels, seed, Engine::default())
}

/// [`run_kernels_parallel`] with an explicit simulation engine.
///
/// # Errors
///
/// Each slot carries its own [`PipelineError`]; one failing pair does
/// not abort the rest.
pub fn run_kernels_parallel_with(
    kernels: &[Kernel],
    seed: u64,
    engine: Engine,
) -> Vec<Vec<Result<CgraRun, PipelineError>>> {
    let n_pol = Policy::ALL.len();
    let mut flat = uecgra_util::par_tabulate(kernels.len() * n_pol, |i| {
        RunRequest::new(&kernels[i / n_pol])
            .policy(Policy::ALL[i % n_pol])
            .seed(seed)
            .engine(engine)
            .run()
    })
    .into_iter();
    kernels
        .iter()
        .map(|_| {
            (0..n_pol)
                .map(|_| flat.next().expect("full grid"))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use uecgra_dfg::kernels;

    #[test]
    fn pipeline_runs_all_policies_on_llist() {
        let k = kernels::llist::build_with_hops(60);
        for policy in Policy::ALL {
            let run = run_kernel(&k, policy, 7).unwrap();
            let expect = k.reference_memory();
            assert_eq!(
                &run.activity.mem[..expect.len()],
                &expect[..],
                "{}: wrong result",
                policy.label()
            );
            assert!(run.ii() > 0.0);
        }
    }

    #[test]
    fn popt_is_fastest_policy() {
        let k = kernels::dither::build_with_pixels(60);
        let e = run_kernel(&k, Policy::ECgra, 7).unwrap();
        let p = run_kernel(&k, Policy::UePerfOpt, 7).unwrap();
        assert!(p.ii() < e.ii(), "POpt {} vs E {}", p.ii(), e.ii());
    }

    #[test]
    fn short_runs_surface_no_steady_state() {
        let k = kernels::llist::build_with_hops(30);
        let run = RunRequest::new(&k).iterations(3).run().unwrap();
        match run.try_ii() {
            Err(Error::NoSteadyState { iterations }) => assert_eq!(iterations, 3),
            other => panic!("expected NoSteadyState, got {other:?}"),
        }
    }

    #[test]
    fn permanent_domain_stall_trips_the_watchdog() {
        use uecgra_clock::VfMode;
        use uecgra_compiler::bitstream::Dir;
        use uecgra_rtl::{Fault, FaultKind};

        let k = kernels::llist::build_with_hops(30);
        let fault = Fault {
            pe: (0, 0),
            dir: Dir::North,
            kind: FaultKind::StallDomain {
                domain: VfMode::Nominal,
                from: 0,
                ticks: u64::MAX,
            },
        };
        // E-CGRA runs everything at nominal, so a permanent nominal
        // stall freezes the whole fabric: the watchdog (armed by the
        // non-empty plan) must convert the quiesce into `Stalled`.
        let err = RunRequest::new(&k)
            .faults(FaultPlan::single(fault))
            .run()
            .unwrap_err();
        assert!(matches!(err, Error::Stalled { .. }), "{err:?}");

        // Explicitly disarming the watchdog restores the raw run.
        let run = RunRequest::new(&k)
            .faults(FaultPlan::single(fault))
            .watchdog(false)
            .run()
            .unwrap();
        assert_eq!(run.activity.iterations(), 0);
    }

    #[test]
    fn runtime_uses_750mhz_nominal() {
        let k = kernels::llist::build_with_hops(30);
        let run = run_kernel(&k, Policy::ECgra, 7).unwrap();
        let expect = run.activity.nominal_cycles() * (4.0 / 3.0);
        assert_eq!(run.runtime_ns(), expect);
    }
}

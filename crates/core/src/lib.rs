//! UE-CGRA end-to-end pipeline and experiment drivers.
//!
//! This crate ties the reproduction together:
//!
//! * [`pipeline`] — compile a kernel (place, route, power-map,
//!   assemble) and execute it on the cycle-level fabric under one of
//!   three policies: E-CGRA, UE-CGRA EOpt, UE-CGRA POpt;
//! * [`energy`] — RTL-level energy accounting from fabric activity
//!   plus the calibrated VLSI tables and the hierarchically-gated
//!   clock-power model;
//! * [`experiments`] — the typed computations behind every evaluation
//!   table and figure (Tables I–III, Figures 13–14), consumed by the
//!   `uecgra-bench` binaries.
//!
//! # Quickstart
//!
//! ```
//! use uecgra_core::pipeline::{run_kernel, Policy};
//! use uecgra_core::energy::cgra_energy;
//! use uecgra_dfg::kernels;
//! use uecgra_vlsi::GatingConfig;
//!
//! let kernel = kernels::llist::build_with_hops(40);
//! let base = run_kernel(&kernel, Policy::ECgra, 7).unwrap();
//! let fast = run_kernel(&kernel, Policy::UePerfOpt, 7).unwrap();
//! let speedup = base.ii() / fast.ii();
//! assert!(speedup > 1.1, "fine-grain DVFS sprints the pointer chase");
//! let energy = cgra_energy(&fast, GatingConfig::FULL);
//! assert!(energy.per_iteration_pj() > 0.0);
//! ```

#![warn(missing_docs)]

pub mod cli;
pub mod energy;
pub mod error;
pub mod experiments;
pub mod pipeline;
pub mod report;

/// The deterministic parallel executor the evaluation harnesses use
/// (re-exported from `uecgra-util` so downstream crates need only
/// `uecgra-core`). `UECGRA_THREADS` overrides the worker count;
/// results are index-addressed and bit-identical at any thread count.
pub mod par {
    pub use uecgra_util::par::{num_threads, par_map, par_map_slice, par_tabulate};
}

pub use energy::{cgra_energy, CgraEnergy};
pub use error::{error_chain, Error};
pub use pipeline::{run_kernel, run_kernels_parallel, CgraRun, PipelineError, Policy, RunRequest};
pub use report::{metrics_report, run_report};

//! `uecgra` — compile and run loops on the ultra-elastic CGRA.
//!
//! ```text
//! uecgra run <source.loop> [--policy e|eopt|popt] [--seed N]
//!            [--engine dense|event] [--mem-words N] [--vcd <out.vcd>]
//!            [--dump-mem A..B] [--json <report.json>]
//! uecgra compile <source.loop> [--seed N]      # print the mapping
//! uecgra dse <source.loop> [--seed N] [--budget N]
//!            [--cache <cache.json>] [--json <report.json>]
//! uecgra check-report <report.json>            # round-trip validate
//! ```
//!
//! The source language is the compiler's loop mini-language (see
//! `uecgra_compiler::parse`): array declarations with base addresses
//! and one counted loop with carried scalars.
//!
//! `--json` writes a `uecgra-probe` [`RunReport`] (including
//! wall-clock phase timings — the interactive CLI is the one place
//! timings belong; reproduction binaries omit them to stay
//! deterministic). `check-report` parses a report with the probe
//! crate's own parser, re-renders it, and verifies the bytes match —
//! the round-trip check CI runs.
//!
//! `dse` explores VF-mode assignments of the lowered (logical) DFG
//! through the analytical model and prints the Pareto frontier over
//! (delay, energy, EDP); `--cache` persists the memoized evaluation
//! cache across invocations and `--json` writes a schema-v3 report
//! with the `dse` section. Unlike `run`, a `dse` report carries **no
//! timings**: its bytes are identical across thread counts and across
//! cold vs warm caches.
//!
//! Pipeline failures print the full cause chain:
//!
//! ```text
//! uecgra: error: parsing failed
//!   caused by: parse error at byte 12: expected `in`
//! ```

use std::process::ExitCode;
use uecgra_core::cli::{parse_args, usage, CliArgs};
use uecgra_core::error::{error_chain, Error};
use uecgra_core::pipeline::{CgraRun, Policy};
use uecgra_core::report::run_report;
use uecgra_probe::{Phase, ProbeSink as _, RunReport, SchemaError, TimingSink};
use uecgra_rtl::fabric::{Fabric, FabricConfig};

use uecgra_clock::VfMode;
use uecgra_compiler::bitstream::{Bitstream, PeRole};
use uecgra_compiler::frontend::lower;
use uecgra_compiler::mapping::{ArrayShape, MappedKernel};
use uecgra_compiler::opt::optimize;
use uecgra_compiler::parse::parse;
use uecgra_compiler::power_map::{power_map_routed, Objective};

/// CLI failures: argument/usage problems keep their plain one-line
/// form; pipeline failures carry the unified [`Error`] so `main` can
/// print the whole cause chain.
enum CliError {
    Usage(String),
    Pipeline(Error),
}

impl From<String> for CliError {
    fn from(s: String) -> Self {
        CliError::Usage(s)
    }
}

impl From<Error> for CliError {
    fn from(e: Error) -> Self {
        CliError::Pipeline(e)
    }
}

fn main() -> ExitCode {
    match real_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(e)) => {
            eprintln!("uecgra: {e}");
            ExitCode::FAILURE
        }
        Err(CliError::Pipeline(e)) => {
            eprintln!("uecgra: {}", error_chain(&e));
            ExitCode::FAILURE
        }
    }
}

fn read_file(path: &str) -> Result<String, Error> {
    std::fs::read_to_string(path).map_err(|e| Error::Io {
        path: path.to_string(),
        message: e.to_string(),
    })
}

fn write_file(path: &str, contents: &str) -> Result<(), Error> {
    std::fs::write(path, contents).map_err(|e| Error::Io {
        path: path.to_string(),
        message: e.to_string(),
    })
}

/// Parse, re-render and byte-compare a report document (the CI
/// round-trip check).
fn check_report(path: &str) -> Result<(), Error> {
    let text = read_file(path)?;
    let reports = RunReport::parse_all(&text)?;
    let rendered = RunReport::render_all(&reports);
    if rendered != text {
        return Err(Error::Report(SchemaError {
            message: format!("`{path}` does not round-trip through the canonical serializer"),
        }));
    }
    println!(
        "report OK: {} run(s) round-trip byte-identically",
        reports.len()
    );
    Ok(())
}

/// The report-name stem of a source path (`path/to/k.loop` → `k`).
fn source_stem(source: &str) -> &str {
    source
        .rsplit('/')
        .next()
        .unwrap_or(source)
        .trim_end_matches(".loop")
}

/// `uecgra dse`: explore VF-mode assignments of the lowered *logical*
/// DFG (no routing pass — empty extra hops, matching the paper's
/// logical power mapper) and print the Pareto frontier. The `--json`
/// report is fully deterministic: no timings, no engine tag, and no
/// cache statistics (those go to stderr), so its bytes are identical
/// across thread counts and cold vs warm caches.
fn dse_command(
    args: &CliArgs,
    dfg: &uecgra_dfg::Dfg,
    marker: uecgra_dfg::NodeId,
) -> Result<(), CliError> {
    use uecgra_dse::{explore, DseConfig, EvalCache};

    let cfg = DseConfig {
        seed: args.seed,
        budget: args.budget,
        ..DseConfig::default()
    };
    let cache = match &args.cache {
        Some(path) => EvalCache::load(path)?,
        None => EvalCache::new(),
    };
    let warm_entries = cache.len();
    let outcome = explore(dfg, vec![0u32; args.mem_words], marker, &[], &cfg, &cache);
    eprintln!(
        "dse: {} search over {} groups: {} evaluations, {} unique; \
         cache {} -> {} entries, hit rate {:.0}%",
        outcome.strategy,
        outcome.groups,
        outcome.evaluations,
        outcome.unique_configs,
        warm_entries,
        cache.len(),
        cache.hit_rate() * 100.0
    );

    let header = format!(
        "{:<24} {:>8} {:>8} {:>8}",
        "modes", "delay", "energy", "EDP"
    );
    println!("{header}");
    println!("{}", "-".repeat(header.len()));
    let row = |label: &str, p: &uecgra_dse::DsePoint| {
        println!(
            "{:<24} {:>8.3} {:>8.3} {:>8.3}{}",
            p.modes_string(),
            p.delay(),
            p.energy(),
            p.edp(),
            label
        );
    };
    for p in &outcome.frontier {
        let mut label = String::new();
        if p == &outcome.best {
            label.push_str("  <- best EDP");
        }
        row(&label, p);
    }
    row("  (greedy baseline)", &outcome.baseline);
    println!(
        "frontier: {} points; best EDP {:.3} vs greedy {:.3} ({})",
        outcome.frontier.len(),
        outcome.best.edp(),
        outcome.baseline.edp(),
        if outcome.dominates_baseline() {
            "dominates or matches"
        } else {
            "regressed"
        }
    );

    if let Some(path) = &args.cache {
        cache.save(path)?;
        eprintln!("wrote {} cache entries to {path}", cache.len());
    }
    if let Some(path) = &args.json {
        let report = RunReport {
            name: format!("{}/dse", source_stem(&args.source)),
            seed: Some(args.seed),
            stop: "Analytic".to_string(),
            dse: Some(outcome.report_section(&cfg)),
            ..RunReport::default()
        };
        write_file(path, &RunReport::render_all(std::slice::from_ref(&report)))?;
        eprintln!("wrote report to {path}");
    }
    Ok(())
}

fn timed<T>(sink: &mut TimingSink, phase: Phase, f: impl FnOnce() -> T) -> T {
    let start = std::time::Instant::now();
    let out = f();
    sink.phase_done(phase, start.elapsed().as_nanos() as u64);
    out
}

fn real_main() -> Result<(), CliError> {
    let args = parse_args(std::env::args())?;

    if args.command == "check-report" {
        return Ok(check_report(&args.source)?);
    }

    let mut sink = TimingSink::new();
    let src = read_file(&args.source)?;
    let program = timed(&mut sink, Phase::Parse, || parse(&src)).map_err(Error::from)?;
    let raw = timed(&mut sink, Phase::Lower, || lower(&program.nest)).map_err(Error::from)?;

    // CSE + DCE before mapping.
    let optimized = optimize(&raw.dfg);
    let marker_node = optimized
        .node_map
        .get(raw.induction_phi.index())
        .copied()
        .flatten()
        .ok_or_else(|| "the loop has no side effects; nothing to run".to_string())?;
    struct Lowered {
        dfg: uecgra_dfg::Dfg,
        induction_phi: uecgra_dfg::NodeId,
    }
    let lowered = Lowered {
        dfg: optimized.dfg,
        induction_phi: marker_node,
    };
    eprintln!(
        "lowered: {} ops ({} after CSE/DCE), recurrence MII {}",
        raw.dfg.pe_node_count(),
        lowered.dfg.pe_node_count(),
        uecgra_dfg::analysis::recurrence_mii(&lowered.dfg)
    );

    if args.command == "dse" {
        return dse_command(&args, &lowered.dfg, lowered.induction_phi);
    }

    let mapped = timed(&mut sink, Phase::PlaceRoute, || {
        MappedKernel::map(&lowered.dfg, ArrayShape::default(), args.seed)
    })
    .map_err(Error::from)?;
    eprintln!(
        "mapped: {:.0}% utilization, wirelength {}",
        mapped.utilization() * 100.0,
        mapped.wirelength()
    );

    let policy = match args.policy.as_str() {
        "e" => Policy::ECgra,
        "eopt" => Policy::UeEnergyOpt,
        "popt" => Policy::UePerfOpt,
        other => return Err(format!("unknown policy {other} (use e|eopt|popt)").into()),
    };
    let mem = vec![0u32; args.mem_words];
    let extra: Vec<u32> = lowered
        .dfg
        .edges()
        .map(|(id, _)| mapped.extra_hops(id))
        .collect();
    let modes = timed(&mut sink, Phase::PowerMap, || match policy {
        Policy::ECgra => vec![VfMode::Nominal; lowered.dfg.node_count()],
        Policy::UeEnergyOpt => {
            power_map_routed(
                &lowered.dfg,
                mem.clone(),
                lowered.induction_phi,
                Objective::Energy,
                &extra,
            )
            .node_modes
        }
        Policy::UePerfOpt => {
            power_map_routed(
                &lowered.dfg,
                mem.clone(),
                lowered.induction_phi,
                Objective::Performance,
                &extra,
            )
            .node_modes
        }
    });

    let bitstream = timed(&mut sink, Phase::Assemble, || {
        Bitstream::assemble(&lowered.dfg, &mapped, &modes)
    })
    .map_err(Error::from)?;
    let (compute, route, gated) = bitstream.role_counts();
    eprintln!("bitstream: {compute} compute, {route} route-only, {gated} gated PEs");

    if args.command == "compile" {
        for (y, row) in bitstream.grid.iter().enumerate() {
            for (x, cfg) in row.iter().enumerate() {
                if let PeRole::Compute(op) = cfg.role {
                    println!("PE ({x},{y}): {} @ {}", op.mnemonic(), cfg.clk);
                } else if cfg.role == PeRole::RouteOnly {
                    println!("PE ({x},{y}): bypass @ {}", cfg.clk);
                }
            }
        }
        return Ok(());
    }
    if args.command != "run" {
        return Err(usage().into());
    }

    let config = FabricConfig {
        marker: Some(mapped.coord_of(lowered.induction_phi)),
        record_events: args.vcd.is_some(),
        ..FabricConfig::default()
    };
    let activity = timed(&mut sink, Phase::Simulate, || {
        Fabric::new(&bitstream, mem, config).run_with(args.engine)
    });
    println!(
        "ran {} iterations in {:.0} nominal cycles (II {:.2}), stop: {:?}",
        activity.iterations(),
        activity.nominal_cycles(),
        activity.steady_ii(4).unwrap_or(f64::NAN),
        activity.stop
    );

    let iterations = activity.iterations();
    let run = CgraRun {
        policy,
        mapped,
        bitstream,
        modes,
        activity,
        iterations,
    };

    if let Some(path) = &args.vcd {
        let vcd = uecgra_rtl::trace::to_vcd(&run.activity, &run.bitstream).map_err(Error::from)?;
        write_file(path, &vcd)?;
        eprintln!("wrote waveform to {path}");
    }
    if let Some(path) = &args.json {
        let source_name = args
            .source
            .rsplit('/')
            .next()
            .unwrap_or(&args.source)
            .trim_end_matches(".loop");
        let mut report = run_report(format!("{source_name}/{}", policy.label()), None, &run);
        report.seed = Some(args.seed);
        report.engine = Some(args.engine.label().to_string());
        report.timings = Some(sink.timings);
        write_file(path, &RunReport::render_all(std::slice::from_ref(&report)))?;
        eprintln!("wrote report to {path}");
    }
    if let Some((a, b)) = args.dump {
        for (i, chunk) in run.activity.mem[a..b.min(run.activity.mem.len())]
            .chunks(8)
            .enumerate()
        {
            print!("{:>6}:", a + i * 8);
            for w in chunk {
                print!(" {w:>10}");
            }
            println!();
        }
    }
    Ok(())
}

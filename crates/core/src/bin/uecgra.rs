//! `uecgra` — compile and run loops on the ultra-elastic CGRA.
//!
//! ```text
//! uecgra run <source.loop> [--policy e|eopt|popt] [--seed N]
//!            [--mem-words N] [--vcd <out.vcd>] [--dump-mem A..B]
//! uecgra compile <source.loop> [--seed N]      # print the mapping
//! ```
//!
//! The source language is the compiler's loop mini-language (see
//! `uecgra_compiler::parse`): array declarations with base addresses
//! and one counted loop with carried scalars.

use std::process::ExitCode;
use uecgra_clock::VfMode;
use uecgra_compiler::bitstream::{Bitstream, PeRole};
use uecgra_compiler::frontend::lower;
use uecgra_compiler::mapping::{ArrayShape, MappedKernel};
use uecgra_compiler::opt::optimize;
use uecgra_compiler::parse::parse;
use uecgra_compiler::power_map::{power_map_routed, Objective};
use uecgra_rtl::fabric::{Fabric, FabricConfig};

struct Args {
    command: String,
    source: String,
    policy: String,
    seed: u64,
    mem_words: usize,
    vcd: Option<String>,
    dump: Option<(usize, usize)>,
}

fn usage() -> String {
    "usage: uecgra <run|compile> <source.loop> [--policy e|eopt|popt] \
     [--seed N] [--mem-words N] [--vcd out.vcd] [--dump-mem A..B]"
        .to_string()
}

fn parse_args(mut argv: std::env::Args) -> Result<Args, String> {
    let _ = argv.next();
    let command = argv.next().ok_or_else(usage)?;
    let source = argv.next().ok_or_else(usage)?;
    let mut args = Args {
        command,
        source,
        policy: "popt".into(),
        seed: 7,
        mem_words: 8192,
        vcd: None,
        dump: None,
    };
    while let Some(flag) = argv.next() {
        let mut value = || argv.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--policy" => args.policy = value()?,
            "--seed" => args.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--mem-words" => {
                args.mem_words = value()?.parse().map_err(|e| format!("--mem-words: {e}"))?
            }
            "--vcd" => args.vcd = Some(value()?),
            "--dump-mem" => {
                let v = value()?;
                let (a, b) = v
                    .split_once("..")
                    .ok_or_else(|| "--dump-mem expects A..B".to_string())?;
                args.dump = Some((
                    a.parse().map_err(|e| format!("--dump-mem: {e}"))?,
                    b.parse().map_err(|e| format!("--dump-mem: {e}"))?,
                ));
            }
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    match real_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("uecgra: {e}");
            ExitCode::FAILURE
        }
    }
}

fn real_main() -> Result<(), String> {
    let args = parse_args(std::env::args())?;
    let src = std::fs::read_to_string(&args.source)
        .map_err(|e| format!("cannot read {}: {e}", args.source))?;
    let program = parse(&src).map_err(|e| e.to_string())?;
    let raw = lower(&program.nest).map_err(|e| e.to_string())?;

    // CSE + DCE before mapping.
    let optimized = optimize(&raw.dfg);
    let marker_node = optimized
        .node_map
        .get(raw.induction_phi.index())
        .copied()
        .flatten()
        .ok_or("the loop has no side effects; nothing to run")?;
    struct Lowered {
        dfg: uecgra_dfg::Dfg,
        induction_phi: uecgra_dfg::NodeId,
    }
    let lowered = Lowered {
        dfg: optimized.dfg,
        induction_phi: marker_node,
    };
    eprintln!(
        "lowered: {} ops ({} after CSE/DCE), recurrence MII {}",
        raw.dfg.pe_node_count(),
        lowered.dfg.pe_node_count(),
        uecgra_dfg::analysis::recurrence_mii(&lowered.dfg)
    );

    let mapped = MappedKernel::map(&lowered.dfg, ArrayShape::default(), args.seed)
        .map_err(|e| e.to_string())?;
    eprintln!(
        "mapped: {:.0}% utilization, wirelength {}",
        mapped.utilization() * 100.0,
        mapped.wirelength()
    );

    let mem = vec![0u32; args.mem_words];
    let extra: Vec<u32> = lowered
        .dfg
        .edges()
        .map(|(id, _)| mapped.extra_hops(id))
        .collect();
    let modes = match args.policy.as_str() {
        "e" => vec![VfMode::Nominal; lowered.dfg.node_count()],
        "eopt" => {
            power_map_routed(
                &lowered.dfg,
                mem.clone(),
                lowered.induction_phi,
                Objective::Energy,
                &extra,
            )
            .node_modes
        }
        "popt" => {
            power_map_routed(
                &lowered.dfg,
                mem.clone(),
                lowered.induction_phi,
                Objective::Performance,
                &extra,
            )
            .node_modes
        }
        other => return Err(format!("unknown policy {other} (use e|eopt|popt)")),
    };

    let bitstream =
        Bitstream::assemble(&lowered.dfg, &mapped, &modes).map_err(|e| e.to_string())?;
    let (compute, route, gated) = bitstream.role_counts();
    eprintln!("bitstream: {compute} compute, {route} route-only, {gated} gated PEs");

    if args.command == "compile" {
        for (y, row) in bitstream.grid.iter().enumerate() {
            for (x, cfg) in row.iter().enumerate() {
                if let PeRole::Compute(op) = cfg.role {
                    println!("PE ({x},{y}): {} @ {}", op.mnemonic(), cfg.clk);
                } else if cfg.role == PeRole::RouteOnly {
                    println!("PE ({x},{y}): bypass @ {}", cfg.clk);
                }
            }
        }
        return Ok(());
    }
    if args.command != "run" {
        return Err(usage());
    }

    let config = FabricConfig {
        marker: Some(mapped.coord_of(lowered.induction_phi)),
        record_events: args.vcd.is_some(),
        ..FabricConfig::default()
    };
    let activity = Fabric::new(&bitstream, mem, config).run();
    println!(
        "ran {} iterations in {:.0} nominal cycles (II {:.2}), stop: {:?}",
        activity.iterations(),
        activity.nominal_cycles(),
        activity.steady_ii(4).unwrap_or(f64::NAN),
        activity.stop
    );

    if let Some(path) = &args.vcd {
        let vcd = uecgra_rtl::trace::to_vcd(&activity, &bitstream);
        std::fs::write(path, vcd).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote waveform to {path}");
    }
    if let Some((a, b)) = args.dump {
        for (i, chunk) in activity.mem[a..b.min(activity.mem.len())]
            .chunks(8)
            .enumerate()
        {
            print!("{:>6}:", a + i * 8);
            for w in chunk {
                print!(" {w:>10}");
            }
            println!();
        }
    }
    Ok(())
}

//! Argument parsing for the `uecgra` CLI.
//!
//! Extracted from the binary so it can be unit-tested: the parser
//! takes any `String` iterator (the binary passes `std::env::args`,
//! tests pass literals). Two historical misbehaviors are fixed here
//! and locked in by tests:
//!
//! * duplicate flags used to be silently last-wins — they are now
//!   rejected with an error naming the flag, so `--seed 3 --seed 9`
//!   cannot quietly drop half of a command line;
//! * a flag missing its value reported a bare `needs a value` — the
//!   message still names the flag and now also survives the flag
//!   being the final token.

use uecgra_rtl::Engine;

/// The parsed `uecgra` command line.
#[derive(Debug, Clone, PartialEq)]
pub struct CliArgs {
    /// Subcommand: `run`, `compile`, `dse`, or `check-report`.
    pub command: String,
    /// Source (or report) file path.
    pub source: String,
    /// Policy name (`e`, `eopt`, `popt`).
    pub policy: String,
    /// Simulation engine.
    pub engine: Engine,
    /// Mapping seed.
    pub seed: u64,
    /// Scratchpad size in words.
    pub mem_words: usize,
    /// Waveform output path.
    pub vcd: Option<String>,
    /// Memory dump range `A..B`.
    pub dump: Option<(usize, usize)>,
    /// Telemetry report output path.
    pub json: Option<String>,
    /// DSE unique-evaluation budget (`dse` subcommand only).
    pub budget: usize,
    /// DSE persistent evaluation-cache path (`dse` subcommand only).
    pub cache: Option<String>,
}

/// The one-line usage string.
pub fn usage() -> String {
    "usage: uecgra <run|compile|dse|check-report> <file> [--policy e|eopt|popt] \
     [--engine dense|event] [--seed N] [--mem-words N] [--vcd out.vcd] \
     [--dump-mem A..B] [--json report.json] [--budget N] [--cache cache.json]"
        .to_string()
}

/// Parse a full argument vector (including `argv[0]`, which is
/// skipped).
///
/// # Errors
///
/// Returns a one-line usage/diagnostic string on a missing
/// subcommand or file, an unknown flag, an unparsable value, a flag
/// without its value, or a duplicated flag.
pub fn parse_args(argv: impl IntoIterator<Item = String>) -> Result<CliArgs, String> {
    let mut argv = argv.into_iter();
    let _ = argv.next();
    let command = argv.next().ok_or_else(usage)?;
    let source = argv.next().ok_or_else(usage)?;
    let mut args = CliArgs {
        command,
        source,
        policy: "popt".into(),
        engine: Engine::default(),
        seed: 7,
        mem_words: 8192,
        vcd: None,
        dump: None,
        json: None,
        budget: 256,
        cache: None,
    };
    let mut seen: Vec<String> = Vec::new();
    while let Some(flag) = argv.next() {
        if seen.contains(&flag) {
            return Err(format!("duplicate flag {flag}"));
        }
        seen.push(flag.clone());
        let mut value = || argv.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--policy" => args.policy = value()?,
            "--engine" => {
                let v = value()?;
                args.engine = Engine::parse(&v)
                    .ok_or_else(|| format!("--engine: unknown engine {v} (use dense|event)"))?;
            }
            "--seed" => args.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--mem-words" => {
                args.mem_words = value()?.parse().map_err(|e| format!("--mem-words: {e}"))?
            }
            "--vcd" => args.vcd = Some(value()?),
            "--dump-mem" => {
                let v = value()?;
                let (a, b) = v
                    .split_once("..")
                    .ok_or_else(|| "--dump-mem expects A..B".to_string())?;
                args.dump = Some((
                    a.parse().map_err(|e| format!("--dump-mem: {e}"))?,
                    b.parse().map_err(|e| format!("--dump-mem: {e}"))?,
                ));
            }
            "--json" => args.json = Some(value()?),
            "--budget" => {
                args.budget = value()?.parse().map_err(|e| format!("--budget: {e}"))?;
                if args.budget == 0 {
                    return Err("--budget must be at least 1".to_string());
                }
            }
            "--cache" => args.cache = Some(value()?),
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    Ok(args)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<CliArgs, String> {
        parse_args(std::iter::once("uecgra".to_string()).chain(words.iter().map(|s| s.to_string())))
    }

    #[test]
    fn defaults_and_overrides() {
        let a = parse(&["run", "k.loop"]).unwrap();
        assert_eq!(a.command, "run");
        assert_eq!(a.source, "k.loop");
        assert_eq!(a.policy, "popt");
        assert_eq!(a.seed, 7);
        assert_eq!(a.mem_words, 8192);
        assert_eq!(a.json, None);

        let a = parse(&[
            "run",
            "k.loop",
            "--policy",
            "e",
            "--seed",
            "9",
            "--engine",
            "dense",
            "--dump-mem",
            "0..16",
            "--json",
            "out.json",
        ])
        .unwrap();
        assert_eq!(a.policy, "e");
        assert_eq!(a.seed, 9);
        assert_eq!(a.engine, Engine::Dense);
        assert_eq!(a.dump, Some((0, 16)));
        assert_eq!(a.json.as_deref(), Some("out.json"));
    }

    #[test]
    fn dse_flags_parse_with_sane_defaults() {
        let a = parse(&["dse", "k.loop"]).unwrap();
        assert_eq!(a.command, "dse");
        assert_eq!(a.budget, 256);
        assert_eq!(a.cache, None);

        let a = parse(&[
            "dse", "k.loop", "--budget", "64", "--cache", "c.json", "--seed", "3",
        ])
        .unwrap();
        assert_eq!(a.budget, 64);
        assert_eq!(a.cache.as_deref(), Some("c.json"));
        assert_eq!(a.seed, 3);

        assert!(parse(&["dse", "k.loop", "--budget", "0"])
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse(&["dse", "k.loop", "--budget", "x"])
            .unwrap_err()
            .starts_with("--budget:"));
    }

    #[test]
    fn duplicate_flags_are_rejected_by_name() {
        let e = parse(&["run", "k.loop", "--seed", "3", "--seed", "9"]).unwrap_err();
        assert_eq!(e, "duplicate flag --seed");
        let e = parse(&["run", "k.loop", "--json", "a", "--json", "b"]).unwrap_err();
        assert_eq!(e, "duplicate flag --json");
    }

    #[test]
    fn missing_values_name_the_flag() {
        let e = parse(&["run", "k.loop", "--seed"]).unwrap_err();
        assert_eq!(e, "--seed needs a value");
        let e = parse(&["run", "k.loop", "--seed", "3", "--vcd"]).unwrap_err();
        assert_eq!(e, "--vcd needs a value");
    }

    #[test]
    fn malformed_values_are_diagnosed() {
        assert!(parse(&["run", "k.loop", "--seed", "zebra"])
            .unwrap_err()
            .starts_with("--seed:"));
        assert_eq!(
            parse(&["run", "k.loop", "--dump-mem", "16"]).unwrap_err(),
            "--dump-mem expects A..B"
        );
        assert!(parse(&["run", "k.loop", "--engine", "warp"])
            .unwrap_err()
            .contains("unknown engine"));
        assert!(parse(&["run", "k.loop", "--frobnicate"])
            .unwrap_err()
            .starts_with("unknown flag --frobnicate"));
    }

    #[test]
    fn missing_positionals_print_usage() {
        assert_eq!(parse(&[]).unwrap_err(), usage());
        assert_eq!(parse(&["run"]).unwrap_err(), usage());
    }
}

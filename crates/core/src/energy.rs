//! RTL-level energy accounting for fabric runs.
//!
//! Mirrors the paper's methodology (Section VI-C): per-PE energies
//! come from activity counts (fires, bypass forwards, stalled edges)
//! priced with the gate-level-calibrated tables of `uecgra_vlsi`, each
//! scaled to the PE's configured voltage; the clock-network energy is
//! added from the hierarchical-gating clock-power model over the run's
//! wall-clock time. Power-gated PEs consume nothing.

use crate::pipeline::{CgraRun, Policy};
use uecgra_clock::VfMode;
use uecgra_vlsi::area::CgraKind;
use uecgra_vlsi::clock_power::{clock_power_from_edges, ClockPowerParams, GatingConfig};
use uecgra_vlsi::energy::{bypass_energy_pj, op_energy_pj, stall_energy_pj};
use uecgra_vlsi::ClockPowerBreakdown;

/// Full energy accounting of one run (picojoules).
#[derive(Debug, Clone, PartialEq)]
pub struct CgraEnergy {
    /// Per-PE logic energy (fires + bypasses + stalls), `[row][col]`.
    pub pe_logic_pj: Vec<Vec<f64>>,
    /// Clock power breakdown (mW) under the configured gating.
    pub clock: ClockPowerBreakdown,
    /// Clock + idle energy over the whole run.
    pub clock_pj: f64,
    /// Run wall-clock (ns).
    pub runtime_ns: f64,
    /// Iterations completed.
    pub iterations: u64,
}

impl CgraEnergy {
    /// Total energy (pJ).
    pub fn total_pj(&self) -> f64 {
        self.pe_logic_pj.iter().flatten().sum::<f64>() + self.clock_pj
    }

    /// Energy per iteration (pJ).
    ///
    /// # Panics
    ///
    /// Panics when the run completed zero iterations.
    pub fn per_iteration_pj(&self) -> f64 {
        assert!(self.iterations > 0, "no iterations to amortize over");
        self.total_pj() / self.iterations as f64
    }

    /// Average total power over the run (mW).
    pub fn average_power_mw(&self) -> f64 {
        self.total_pj() / self.runtime_ns
    }
}

/// The CGRA family a policy executes on.
pub fn kind_of(policy: Policy) -> CgraKind {
    match policy {
        Policy::ECgra => CgraKind::Elastic,
        _ => CgraKind::UltraElastic,
    }
}

/// Per-PE clock-selection grid of a run (`None` = power-gated).
pub fn clock_grid(run: &CgraRun) -> Vec<Vec<Option<VfMode>>> {
    run.bitstream
        .grid
        .iter()
        .map(|row| {
            row.iter()
                .map(|cfg| {
                    use uecgra_compiler::bitstream::PeRole;
                    match cfg.role {
                        PeRole::Gated => None,
                        _ => Some(cfg.clk),
                    }
                })
                .collect()
        })
        .collect()
}

/// Account the energy of a finished run under the given gating.
#[allow(clippy::needless_range_loop)] // (x, y) grid indexing reads clearer
pub fn cgra_energy(run: &CgraRun, gating: GatingConfig) -> CgraEnergy {
    use uecgra_compiler::bitstream::PeRole;
    let kind = kind_of(run.policy);
    let act = &run.activity;
    let h = run.bitstream.grid.len();
    let w = run.bitstream.grid.first().map_or(0, |r| r.len());

    let mut pe_logic_pj = vec![vec![0.0; w]; h];
    for y in 0..h {
        for x in 0..w {
            let cfg = &run.bitstream.grid[y][x];
            let mode = cfg.clk;
            match cfg.role {
                PeRole::Gated => {}
                PeRole::RouteOnly => {
                    pe_logic_pj[y][x] = act.bypass_tokens[y][x] as f64
                        * bypass_energy_pj(kind, mode)
                        + (act.input_stalls[y][x] + act.output_stalls[y][x]) as f64
                            * stall_energy_pj(kind, mode);
                }
                PeRole::Compute(op) => {
                    pe_logic_pj[y][x] = act.fires[y][x] as f64 * op_energy_pj(kind, op, mode)
                        + act.bypass_tokens[y][x] as f64 * bypass_energy_pj(kind, mode)
                        + (act.input_stalls[y][x] + act.output_stalls[y][x]) as f64
                            * stall_energy_pj(kind, mode);
                }
            }
        }
    }

    // Clock power from the probe layer's measured per-domain edge
    // counters (bit-identical to the hand frequency ratios for any
    // run covering a full hyperperiod; see
    // `clock_power_from_edges`).
    let grid = clock_grid(run);
    let clock = clock_power_from_edges(
        kind,
        &ClockPowerParams::default(),
        &grid,
        gating,
        run.activity.domain_edges_hyper,
    );
    let runtime_ns = run.runtime_ns();
    let clock_pj = (clock.total_clock_mw() + clock.idle_logic_mw + clock.leakage_mw) * runtime_ns;

    CgraEnergy {
        pe_logic_pj,
        clock,
        clock_pj,
        runtime_ns,
        iterations: act.iterations(),
    }
}

/// Analytic global-VF scaling of an E-CGRA run (the blue curves of
/// Figure 13): running the whole fabric at voltage `v` and frequency
/// multiplier `f` leaves the cycle count unchanged, stretches time by
/// `1/f`, and rescales dynamic energy by `(v/VN)²`.
///
/// Returns `(relative_performance, relative_efficiency)` versus the
/// same run at nominal.
pub fn global_scale_point(run: &CgraRun, gating: GatingConfig, v: f64, f: f64) -> (f64, f64) {
    let base = cgra_energy(run, gating);
    let dyn_pj: f64 = base.pe_logic_pj.iter().flatten().sum();
    let vn = 0.90;
    let scaled_dyn = dyn_pj * (v / vn) * (v / vn);
    // Clock power scales like dynamic power (f × V²); over 1/f longer
    // runtime the energy scales by (V/VN)² only. Idle/static parts
    // scale with V and stretch with 1/f; fold them together with the
    // clock term for this first-order curve.
    let scaled_clock = base.clock_pj * (v / vn) * (v / vn);
    let perf = f;
    let eff = base.total_pj() / (scaled_dyn + scaled_clock);
    (perf, eff)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::run_kernel;
    use uecgra_dfg::kernels;

    fn dither_run(policy: Policy) -> CgraRun {
        let k = kernels::dither::build_with_pixels(60);
        run_kernel(&k, policy, 7).unwrap()
    }

    #[test]
    fn energy_is_positive_and_finite() {
        let run = dither_run(Policy::ECgra);
        let e = cgra_energy(&run, GatingConfig::FULL);
        assert!(e.total_pj() > 0.0);
        assert!(e.per_iteration_pj() > 1.0);
        assert!(e.average_power_mw() > 0.0 && e.average_power_mw() < 50.0);
    }

    #[test]
    fn measured_clock_path_matches_hand_ratios_exactly() {
        // The acceptance bar for the probe-driven clock-power path:
        // for every policy and gating row of Table I, the breakdown
        // computed from the run's measured `domain_edges_hyper` is
        // bit-identical to the hand-computed frequency-ratio path.
        use uecgra_vlsi::clock_power::clock_power;
        for policy in Policy::ALL {
            let run = dither_run(policy);
            assert_eq!(run.activity.domain_edges_hyper, [2, 6, 9]);
            let grid = clock_grid(&run);
            for gating in [
                GatingConfig::NONE,
                GatingConfig::POWER_ONLY,
                GatingConfig::FULL,
            ] {
                let hand =
                    clock_power(kind_of(policy), &ClockPowerParams::default(), &grid, gating);
                let measured = cgra_energy(&run, gating).clock;
                assert_eq!(measured, hand, "{policy:?}/{gating:?}");
            }
        }
    }

    #[test]
    fn gating_strictly_reduces_energy() {
        let run = dither_run(Policy::UePerfOpt);
        let none = cgra_energy(&run, GatingConfig::NONE).total_pj();
        let p = cgra_energy(&run, GatingConfig::POWER_ONLY).total_pj();
        let full = cgra_energy(&run, GatingConfig::FULL).total_pj();
        assert!(none > p && p > full, "{none} > {p} > {full} violated");
    }

    #[test]
    fn eopt_beats_ecgra_efficiency() {
        // The heart of Table II's EOpt column.
        let e = cgra_energy(&dither_run(Policy::ECgra), GatingConfig::FULL);
        let eo = cgra_energy(&dither_run(Policy::UeEnergyOpt), GatingConfig::FULL);
        let gain = e.per_iteration_pj() / eo.per_iteration_pj();
        assert!(gain > 1.0, "EOpt efficiency gain {gain}");
    }

    #[test]
    fn gated_pes_consume_nothing() {
        let run = dither_run(Policy::ECgra);
        let e = cgra_energy(&run, GatingConfig::FULL);
        use uecgra_compiler::bitstream::PeRole;
        for (y, row) in run.bitstream.grid.iter().enumerate() {
            for (x, cfg) in row.iter().enumerate() {
                if cfg.role == PeRole::Gated {
                    assert_eq!(e.pe_logic_pj[y][x], 0.0);
                }
            }
        }
    }

    #[test]
    fn global_scaling_trades_axes() {
        let run = dither_run(Policy::ECgra);
        // Full-fabric rest: slower but more efficient.
        let (perf_r, eff_r) = global_scale_point(&run, GatingConfig::FULL, 0.61, 1.0 / 3.0);
        assert!(perf_r < 0.5 && eff_r > 1.5, "rest: {perf_r}, {eff_r}");
        // Full-fabric sprint: faster but less efficient.
        let (perf_s, eff_s) = global_scale_point(&run, GatingConfig::FULL, 1.23, 1.5);
        assert!(perf_s == 1.5 && eff_s < 0.8, "sprint: {perf_s}, {eff_s}");
        // Nominal is the identity.
        let (p1, e1) = global_scale_point(&run, GatingConfig::FULL, 0.90, 1.0);
        assert!((p1 - 1.0).abs() < 1e-12 && (e1 - 1.0).abs() < 1e-9);
    }
}

//! Typed computations behind every evaluation table and figure.
//!
//! Each function returns structured rows; the `uecgra-bench` binaries
//! print them in the paper's format, and `EXPERIMENTS.md` records the
//! measured-versus-published comparison.

use crate::energy::{cgra_energy, global_scale_point, CgraEnergy};
use crate::pipeline::{CgraRun, Engine, PipelineError, Policy};
use uecgra_clock::VfMode;
use uecgra_dfg::{Kernel, NodeId};
use uecgra_rtl::config_load;
use uecgra_system::{core_energy_pj, programs, CoreEnergyParams, OffloadOverheads};
use uecgra_vlsi::GatingConfig;

/// Default mapping seed used by every experiment (results are
/// deterministic given the seed).
pub const SEED: u64 = 7;

/// One row of Table II: UE-CGRA relative to the E-CGRA baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Kernel name.
    pub kernel: &'static str,
    /// EOpt performance (iterations/s) relative to E-CGRA.
    pub eopt_perf: f64,
    /// EOpt energy efficiency (iterations/J) relative to E-CGRA.
    pub eopt_eff: f64,
    /// POpt performance relative to E-CGRA.
    pub popt_perf: f64,
    /// POpt energy efficiency relative to E-CGRA.
    pub popt_eff: f64,
}

/// The three runs backing one kernel's comparisons.
#[derive(Debug, Clone)]
pub struct KernelRuns {
    /// The kernel.
    pub kernel: Kernel,
    /// E-CGRA baseline run.
    pub e: CgraRun,
    /// UE-CGRA energy-optimized run.
    pub eopt: CgraRun,
    /// UE-CGRA performance-optimized run.
    pub popt: CgraRun,
}

/// Run all three policies on one kernel, one worker per policy.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn run_all_policies(kernel: &Kernel, seed: u64) -> Result<KernelRuns, PipelineError> {
    run_all_policies_with(kernel, seed, Engine::default())
}

/// [`run_all_policies`] with an explicit simulation engine.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn run_all_policies_with(
    kernel: &Kernel,
    seed: u64,
    engine: Engine,
) -> Result<KernelRuns, PipelineError> {
    run_all_policies_many_with(std::slice::from_ref(kernel), seed, engine).map(|mut v| v.remove(0))
}

/// Run all three policies on every kernel, fanning the whole
/// kernel × policy grid out across worker threads
/// ([`crate::pipeline::run_kernels_parallel`]). Results come back in
/// kernel input order and are bit-identical at any thread count.
///
/// # Errors
///
/// Propagates the first pipeline failure in grid order.
pub fn run_all_policies_many(
    kernels: &[Kernel],
    seed: u64,
) -> Result<Vec<KernelRuns>, PipelineError> {
    run_all_policies_many_with(kernels, seed, Engine::default())
}

/// [`run_all_policies_many`] with an explicit simulation engine.
///
/// # Errors
///
/// Propagates the first pipeline failure in grid order.
pub fn run_all_policies_many_with(
    kernels: &[Kernel],
    seed: u64,
    engine: Engine,
) -> Result<Vec<KernelRuns>, PipelineError> {
    let grid = crate::pipeline::run_kernels_parallel_with(kernels, seed, engine);
    kernels
        .iter()
        .zip(grid)
        .map(|(kernel, runs)| {
            // Policy::ALL order: E-CGRA, EOpt, POpt.
            let mut runs = runs.into_iter();
            Ok(KernelRuns {
                kernel: kernel.clone(),
                e: runs.next().expect("grid row")?,
                eopt: runs.next().expect("grid row")?,
                popt: runs.next().expect("grid row")?,
            })
        })
        .collect()
}

impl KernelRuns {
    /// Compute the Table II row (fully-gated energy accounting).
    pub fn table2_row(&self) -> Table2Row {
        let g = GatingConfig::FULL;
        let e = cgra_energy(&self.e, g);
        let eo = cgra_energy(&self.eopt, g);
        let po = cgra_energy(&self.popt, g);
        Table2Row {
            kernel: self.kernel.name,
            eopt_perf: self.e.ii() / self.eopt.ii(),
            eopt_eff: e.per_iteration_pj() / eo.per_iteration_pj(),
            popt_perf: self.e.ii() / self.popt.ii(),
            popt_eff: e.per_iteration_pj() / po.per_iteration_pj(),
        }
    }
}

/// Compute Table II over the given kernels.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn table2(kernels: &[Kernel], seed: u64) -> Result<Vec<Table2Row>, PipelineError> {
    Ok(run_all_policies_many(kernels, seed)?
        .iter()
        .map(KernelRuns::table2_row)
        .collect())
}

/// A point on the Figure 13 plane: performance and energy efficiency
/// relative to the nominal E-CGRA.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierPoint {
    /// Configuration label (rest / low / nominal / high / sprint /
    /// EOpt / POpt).
    pub label: &'static str,
    /// Relative performance (iterations/s).
    pub perf: f64,
    /// Relative energy efficiency (iterations/J).
    pub eff: f64,
}

/// Figure 13 for one kernel: the E-CGRA global-VF curve plus the two
/// UE-CGRA fine-grain points.
pub fn figure13(runs: &KernelRuns) -> Vec<FrontierPoint> {
    let g = GatingConfig::FULL;
    // Global E-CGRA scaling: (V, f) pairs from the figure caption.
    let globals = [
        ("rest", 0.61, 1.0 / 3.0),
        ("low", 0.80, 2.0 / 3.0),
        ("nominal", 0.90, 1.0),
        ("high", 1.00, 4.0 / 3.0),
        ("sprint", 1.23, 1.5),
    ];
    let mut points: Vec<FrontierPoint> = globals
        .iter()
        .map(|&(label, v, f)| {
            let (perf, eff) = global_scale_point(&runs.e, g, v, f);
            FrontierPoint { label, perf, eff }
        })
        .collect();

    let e = cgra_energy(&runs.e, g);
    for (label, run) in [("UE-EOpt", &runs.eopt), ("UE-POpt", &runs.popt)] {
        let x = cgra_energy(run, g);
        points.push(FrontierPoint {
            label,
            perf: runs.e.ii() / run.ii(),
            eff: e.per_iteration_pj() / x.per_iteration_pj(),
        });
    }
    points
}

/// One row of Table I: the power breakdown of a configuration under a
/// gating setting (mW).
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Row label (e.g. "UE-CGRA w/o H").
    pub label: String,
    /// PE logic power (datapath activity + ungated idle logic).
    pub pe_logic_mw: f64,
    /// Local (intra-PE) clock power.
    pub pe_clock_mw: f64,
    /// Global network power per [`VfMode`] (E-CGRA: nominal slot only).
    pub global_mw: [f64; 3],
    /// Total clock power.
    pub total_clock_mw: f64,
    /// Total power.
    pub total_mw: f64,
}

fn table1_row(label: String, run: &CgraRun, gating: GatingConfig) -> Table1Row {
    let e: CgraEnergy = cgra_energy(run, gating);
    let logic_pj: f64 = e.pe_logic_pj.iter().flatten().sum();
    let pe_logic_mw = logic_pj / e.runtime_ns + e.clock.idle_logic_mw;
    let total_clock = e.clock.total_clock_mw();
    Table1Row {
        label,
        pe_logic_mw,
        pe_clock_mw: e.clock.pe_clock_mw,
        global_mw: e.clock.global_mw,
        total_clock_mw: total_clock,
        total_mw: pe_logic_mw + total_clock,
    }
}

/// Table I: power breakdowns of the dither kernel on the E-CGRA and
/// both UE-CGRA mappings, with and without power gating (P) and
/// hierarchical clock gating (H).
pub fn table1(runs: &KernelRuns) -> Vec<Table1Row> {
    let gatings = [
        ("w/o P+H", GatingConfig::NONE),
        ("w/o H", GatingConfig::POWER_ONLY),
        ("", GatingConfig::FULL),
    ];
    let mut rows = Vec::new();
    for (suffix, g) in gatings {
        rows.push(table1_row(
            format!("E-CGRA {suffix}").trim().into(),
            &runs.e,
            g,
        ));
    }
    for (name, run) in [("POpt", &runs.popt), ("EOpt", &runs.eopt)] {
        for (suffix, g) in gatings {
            rows.push(table1_row(
                format!("UE-CGRA {name} {suffix}").trim().into(),
                run,
                g,
            ));
        }
    }
    rows
}

/// One row of Table III: system-level comparison against the RV32IM
/// core.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// Kernel name.
    pub kernel: &'static str,
    /// Theoretical lower bound on the recurrence (cycles).
    pub ideal_recurrence: usize,
    /// Measured E-CGRA initiation interval (cycles).
    pub real_recurrence: f64,
    /// Reconfiguration cycles (E-CGRA / UE-CGRA).
    pub cfg_cycles: (u64, u64),
    /// Data-load cycles.
    pub data_cycles: u64,
    /// Core cycles and energy (pJ) for the whole kernel.
    pub core_cycles: u64,
    /// Core energy (pJ).
    pub core_energy_pj: f64,
    /// (perf, efficiency) of each policy relative to the core.
    pub relative: Vec<(Policy, f64, f64)>,
}

/// Compute Table III for one kernel.
///
/// # Panics
///
/// Panics if the kernel's core program misbehaves (checked by tests).
pub fn table3_row(runs: &KernelRuns) -> Table3Row {
    let k = &runs.kernel;
    let core = programs::run_on_core(k.name, k.iters, k.mem.clone())
        .expect("core programs are well-formed");
    assert_eq!(
        core.mem,
        k.reference_memory(),
        "core result must be correct"
    );
    let core_e = core_energy_pj(&CoreEnergyParams::default(), &core.mix, core.cycles);

    let data_cycles = config_load::data_load_cycles(k.mem.len());
    let cfg_e = config_load::reconfiguration_cycles(&runs.e.bitstream, false);
    let cfg_ue = config_load::reconfiguration_cycles(&runs.popt.bitstream, true);

    let mut relative = Vec::new();
    for (policy, run, cfg) in [
        (Policy::ECgra, &runs.e, cfg_e),
        (Policy::UeEnergyOpt, &runs.eopt, cfg_ue),
        (Policy::UePerfOpt, &runs.popt, cfg_ue),
    ] {
        let ov = OffloadOverheads {
            cfg_cycles: cfg,
            data_cycles,
        };
        let perf = uecgra_system::system_speedup(core.cycles, run.activity.nominal_cycles(), ov);
        let energy = cgra_energy(run, GatingConfig::FULL);
        let eff = uecgra_system::system_efficiency(core_e, energy.total_pj());
        relative.push((policy, perf, eff));
    }

    Table3Row {
        kernel: k.name,
        ideal_recurrence: k.ideal_recurrence,
        real_recurrence: runs.e.ii(),
        cfg_cycles: (cfg_e, cfg_ue),
        data_cycles,
        core_cycles: core.cycles,
        core_energy_pj: core_e,
        relative,
    }
}

/// Figure 14 data: per-PE energy contours with DVFS-mode glyphs.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyContour {
    /// Policy label.
    pub label: &'static str,
    /// Per-PE energy (pJ) over the whole run.
    pub energy_pj: Vec<Vec<f64>>,
    /// Per-PE mode (`None` = gated).
    pub modes: Vec<Vec<Option<VfMode>>>,
    /// Per-PE op mnemonic ("" for route-only/gated).
    pub ops: Vec<Vec<&'static str>>,
}

/// Compute the Figure 14 contour for one run.
pub fn energy_contour(run: &CgraRun, label: &'static str) -> EnergyContour {
    use uecgra_compiler::bitstream::PeRole;
    let e = cgra_energy(run, GatingConfig::FULL);
    let modes = crate::energy::clock_grid(run);
    let ops = run
        .bitstream
        .grid
        .iter()
        .map(|row| {
            row.iter()
                .map(|cfg| match cfg.role {
                    PeRole::Compute(op) => op.mnemonic(),
                    PeRole::RouteOnly => "bps",
                    PeRole::Gated => "",
                })
                .collect()
        })
        .collect();
    EnergyContour {
        label,
        energy_pj: e.pe_logic_pj,
        modes,
        ops,
    }
}

/// The placed coordinate of a DFG node in a run (for annotations).
pub fn placed_at(run: &CgraRun, node: NodeId) -> (usize, usize) {
    run.mapped.coord_of(node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uecgra_dfg::kernels;

    fn small_kernels() -> Vec<Kernel> {
        vec![
            kernels::llist::build_with_hops(60),
            kernels::dither::build_with_pixels(60),
            kernels::susan::build_with_iters(60),
            kernels::fft::build_with_group(60),
            kernels::bf::build_with_rounds(24),
        ]
    }

    #[test]
    fn table2_matches_paper_bands() {
        let rows = table2(&small_kernels(), SEED).unwrap();
        let mut eopt_wins = 0;
        for r in &rows {
            // Paper: POpt perf 1.42–1.50×; allow a wider reproduction
            // band since our mapper/router differ.
            assert!(
                r.popt_perf > 1.1 && r.popt_perf < 1.6,
                "{}: POpt perf {}",
                r.kernel,
                r.popt_perf
            );
            // Paper: EOpt efficiency 1.24–2.32×. Our reproduction
            // reaches 0.97–1.28: kernels whose nodes are nearly all on
            // the recurrence (llist, fft) have nothing to rest, and the
            // UE fixed clock overhead then slightly outweighs the
            // savings — see EXPERIMENTS.md for the discussion.
            assert!(
                r.eopt_eff > 0.93,
                "{}: EOpt efficiency {} collapsed",
                r.kernel,
                r.eopt_eff
            );
            if r.eopt_eff > 1.0 {
                eopt_wins += 1;
            }
            // EOpt holds performance within ~15% (bf drops to 0.87 in
            // the paper).
            assert!(r.eopt_perf > 0.8, "{}: EOpt perf {}", r.kernel, r.eopt_perf);
        }
        assert!(
            eopt_wins >= 3,
            "EOpt must improve efficiency on most kernels ({eopt_wins}/5)"
        );
    }

    #[test]
    fn figure13_has_a_real_tradeoff() {
        let k = kernels::llist::build_with_hops(60);
        let runs = run_all_policies(&k, SEED).unwrap();
        let pts = figure13(&runs);
        let by = |l: &str| pts.iter().find(|p| p.label == l).unwrap().clone();
        let rest = by("rest");
        let sprint = by("sprint");
        let popt = by("UE-POpt");
        assert!(rest.perf < 0.5 && rest.eff > 1.0);
        assert!(sprint.perf == 1.5 && sprint.eff < 1.0);
        // The UE point beats the global-sprint point on efficiency at
        // comparable performance — the figure's headline.
        assert!(popt.perf > 1.2);
        assert!(popt.eff > sprint.eff, "{} vs {}", popt.eff, sprint.eff);
    }

    #[test]
    fn table1_shape_matches_paper() {
        let k = kernels::dither::build_with_pixels(60);
        let runs = run_all_policies(&k, SEED).unwrap();
        let rows = table1(&runs);
        assert_eq!(rows.len(), 9);
        // Within each 3-row group, total power falls monotonically as
        // gating is added.
        for g in rows.chunks(3) {
            assert!(g[0].total_mw > g[1].total_mw && g[1].total_mw > g[2].total_mw);
        }
        // Ungated, the clock network is roughly half of total power.
        let ungated = &rows[0];
        let frac = ungated.total_clock_mw / ungated.total_mw;
        assert!(frac > 0.35 && frac < 0.75, "clock fraction {frac}");
        // UE ungated global clock ≈ 4x the E ungated global clock.
        let ue_global: f64 = rows[3].global_mw.iter().sum();
        let e_global: f64 = ungated.global_mw.iter().sum();
        assert!((ue_global / e_global - 4.25).abs() < 0.3);
    }

    #[test]
    fn table3_kernels_beat_the_core_with_popt() {
        for k in small_kernels() {
            let runs = run_all_policies(&k, SEED).unwrap();
            let row = table3_row(&runs);
            let popt = row
                .relative
                .iter()
                .find(|(p, _, _)| *p == Policy::UePerfOpt)
                .unwrap();
            let e = row
                .relative
                .iter()
                .find(|(p, _, _)| *p == Policy::ECgra)
                .unwrap();
            assert!(
                popt.1 > e.1,
                "{}: POpt ({}) must outrun E-CGRA ({})",
                row.kernel,
                popt.1,
                e.1
            );
            assert!(row.real_recurrence >= row.ideal_recurrence as f64 - 1.2);
        }
    }

    #[test]
    fn energy_contours_cover_the_grid() {
        let k = kernels::llist::build_with_hops(60);
        let runs = run_all_policies(&k, SEED).unwrap();
        let c = energy_contour(&runs.popt, "POpt");
        assert_eq!(c.energy_pj.len(), 8);
        let hot: f64 = c.energy_pj.iter().flatten().sum();
        assert!(hot > 0.0);
        // Mode glyphs exist exactly where energy is spent.
        for y in 0..8 {
            for x in 0..8 {
                if c.energy_pj[y][x] > 0.0 {
                    assert!(c.modes[y][x].is_some(), "({x},{y})");
                }
            }
        }
    }
}

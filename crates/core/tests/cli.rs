//! Integration tests for the `uecgra` command-line tool.

use std::io::Write as _;
use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_uecgra")
}

fn write_source(name: &str, body: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(name);
    let mut f = std::fs::File::create(&path).expect("temp file");
    f.write_all(body.as_bytes()).expect("write");
    path
}

const ACCUMULATE: &str = "
    array src @ 16;
    array dst @ 128;
    for i in 0..32 carry (acc = 0) {
        acc = acc + src[i];
        dst[i] = acc;
    }
";

#[test]
fn run_command_executes_and_dumps_memory() {
    let src = write_source("uecgra_cli_run.loop", ACCUMULATE);
    let out = Command::new(bin())
        .args([
            "run",
            src.to_str().unwrap(),
            "--policy",
            "e",
            "--dump-mem",
            "128..136",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ran 32 iterations"), "{stdout}");
    assert!(stdout.contains("128:"), "{stdout}");
}

#[test]
fn compile_command_prints_the_mapping() {
    let src = write_source("uecgra_cli_compile.loop", ACCUMULATE);
    let out = Command::new(bin())
        .args(["compile", src.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("PE ("), "{stdout}");
    assert!(stdout.contains("phi"), "{stdout}");
}

#[test]
fn vcd_flag_writes_a_waveform() {
    let src = write_source("uecgra_cli_vcd.loop", ACCUMULATE);
    let vcd = std::env::temp_dir().join("uecgra_cli_out.vcd");
    let out = Command::new(bin())
        .args(["run", src.to_str().unwrap(), "--vcd", vcd.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let wave = std::fs::read_to_string(&vcd).expect("vcd written");
    assert!(wave.starts_with("$date"));
    assert!(wave.contains("$enddefinitions"));
}

#[test]
fn json_report_round_trips_through_check_report() {
    let src = write_source("uecgra_cli_json.loop", ACCUMULATE);
    let json = std::env::temp_dir().join("uecgra_cli_report.json");
    let out = Command::new(bin())
        .args([
            "run",
            src.to_str().unwrap(),
            "--json",
            json.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("wrote report to"));

    let text = std::fs::read_to_string(&json).expect("report written");
    assert!(text.contains("\"schema_version\": 1"), "{text}");
    // The interactive CLI is the one writer that embeds wall-clock
    // phase timings.
    assert!(text.contains("\"timings\""), "{text}");
    assert!(text.contains("\"simulate_ns\""), "{text}");

    // The CLI's own validator accepts its own output.
    let out = Command::new(bin())
        .args(["check-report", json.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("round-trip byte-identically"),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn check_report_rejects_non_canonical_documents() {
    // Valid JSON, but not the canonical rendering (wrong whitespace),
    // so the byte-for-byte round-trip check must fail.
    let path = std::env::temp_dir().join("uecgra_cli_noncanon.json");
    std::fs::write(&path, "[ ]").expect("write");
    let out = Command::new(bin())
        .args(["check-report", path.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("does not round-trip"), "{stderr}");
}

#[test]
fn parse_errors_are_reported_with_nonzero_exit() {
    let src = write_source("uecgra_cli_bad.loop", "for i in 0..4 { x = ; }");
    let out = Command::new(bin())
        .args(["run", src.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("parse error"), "{stderr}");
}

#[test]
fn unknown_flags_are_rejected() {
    let src = write_source("uecgra_cli_flags.loop", ACCUMULATE);
    let out = Command::new(bin())
        .args(["run", src.to_str().unwrap(), "--frobnicate"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag"));
}

//! End-to-end error-path coverage for the pipeline: each failure mode
//! a caller can trigger through [`RunRequest`] must surface the right
//! [`Error`] variant (with its stage error chained as the source),
//! not a panic and not a mislabelled stage.

use uecgra_clock::RatioError;
use uecgra_compiler::mapping::MapError;
use uecgra_core::error::{error_chain, Error};
use uecgra_core::pipeline::RunRequest;
use uecgra_dfg::kernels::synthetic;
use uecgra_dfg::{Dfg, Kernel, Op};

/// Identity host reference for kernels that exist only to fail before
/// execution.
fn no_op_reference(mem: &[u32], _iters: usize) -> Vec<u32> {
    mem.to_vec()
}

/// Wrap a synthetic DFG in a [`Kernel`] so it can enter the pipeline.
fn kernel_of(name: &'static str, dfg: Dfg, marker: uecgra_dfg::NodeId) -> Kernel {
    Kernel {
        name,
        dfg,
        mem: Vec::new(),
        iters: 1,
        iter_marker: marker,
        ideal_recurrence: 1,
        reference: no_op_reference,
    }
}

#[test]
fn unordered_divisors_fail_with_clock_error() {
    let s = synthetic::chain(4);
    let k = kernel_of("chain4", s.dfg, s.iter_marker);
    // [rest, nominal, sprint] must be ordered slowest-first; an
    // ascending triple is rejected before any compilation happens.
    let err = RunRequest::new(&k)
        .divisors([2, 3, 9])
        .run()
        .expect_err("ascending divisors must not run");
    assert!(
        matches!(err, Error::Clock(RatioError::Unordered([2, 3, 9]))),
        "wrong variant: {err:?}"
    );
    assert!(
        error_chain(&err).starts_with("error: invalid clock configuration"),
        "chain mislabels the stage: {}",
        error_chain(&err)
    );
}

#[test]
fn zero_divisor_fails_with_clock_error() {
    let s = synthetic::chain(4);
    let k = kernel_of("chain4", s.dfg, s.iter_marker);
    let err = RunRequest::new(&k)
        .divisors([9, 3, 0])
        .run()
        .expect_err("a zero divisor must not run");
    assert!(
        matches!(err, Error::Clock(RatioError::ZeroDivisor)),
        "wrong variant: {err:?}"
    );
}

#[test]
fn oversized_kernel_fails_with_map_error() {
    // 100 pipeline stages plus source and sink cannot place on the
    // default 8x8 array.
    let s = synthetic::chain(100);
    let k = kernel_of("chain100", s.dfg, s.iter_marker);
    let err = RunRequest::new(&k)
        .run()
        .expect_err("a 100-node chain must not place on 64 PEs");
    match err {
        Error::Map(MapError::TooManyNodes { nodes, pes }) => {
            assert!(nodes > pes, "{nodes} nodes should exceed {pes} PEs");
            assert_eq!(pes, 64);
        }
        other => panic!("wrong variant: {other:?}"),
    }
}

#[test]
fn too_many_memory_nodes_fail_with_map_error() {
    // 20 independent load paths: well under 64 nodes total, but more
    // memory ops than the 16 perimeter (memory-row) PE slots.
    let mut g = Dfg::new();
    let mut marker = None;
    for i in 0..20 {
        let src = g.add_node(Op::Source, format!("a{i}")).id();
        let ld = g.add_node(Op::Load, format!("ld{i}")).id();
        let sink = g.add_node(Op::Sink, format!("s{i}")).id();
        g.connect(src, ld);
        g.connect(ld, sink);
        marker.get_or_insert(ld);
    }
    let k = kernel_of("loads20", g, marker.expect("at least one load"));
    let err = RunRequest::new(&k)
        .run()
        .expect_err("20 memory nodes must not place on 16 memory slots");
    match err {
        Error::Map(MapError::TooManyMemoryNodes { nodes, slots }) => {
            assert_eq!(nodes, 20);
            assert_eq!(slots, 16);
        }
        other => panic!("wrong variant: {other:?}"),
    }
}

#[test]
fn map_errors_chain_the_mapping_stage() {
    let s = synthetic::chain(100);
    let k = kernel_of("chain100", s.dfg, s.iter_marker);
    let err = RunRequest::new(&k).run().expect_err("must not place");
    let chain = error_chain(&err);
    assert!(chain.starts_with("error: mapping failed"), "{chain}");
    assert!(chain.contains("caused by:"), "{chain}");
}

//! The probe layer's conservation invariant as a forall property: for
//! randomly generated loop programs pushed through the full pipeline
//! (random policy, mapping seed and queue depth), every PE's rising
//! clock edges are exactly partitioned into fire, operand-stall,
//! suppressed-stall, backpressure-stall and gated edges, and the queue
//! occupancy histograms account for every sample.
//!
//! `UECGRA_CHECK_SEED` replays a single failing case, as everywhere
//! else in the workspace.

use uecgra_compiler::frontend::lower;
use uecgra_compiler::ir::{Carried, Expr, LoopNest, Stmt};
use uecgra_core::pipeline::{Policy, RunRequest};
use uecgra_core::report::run_report;
use uecgra_dfg::{Kernel, Op};
use uecgra_util::{check::forall, SplitMix64};

include!("../../compiler/tests/common/gen_loop.rs");

fn arb_choices(rng: &mut SplitMix64) -> Vec<u32> {
    (0..64).map(|_| rng.next_u32()).collect()
}

/// Deterministic pseudo-random initial memory.
fn arb_memory(mem_seed: u32) -> Vec<u32> {
    let mut mem = vec![0u32; MEM_WORDS];
    let mut state = mem_seed | 1;
    for w in mem.iter_mut() {
        state = state.wrapping_mul(1664525).wrapping_add(1013904223);
        *w = state % 1000;
    }
    mem
}

#[test]
fn rising_edges_are_conserved_per_pe() {
    forall(24, |rng| {
        // The UE power mapper measures steady-state II on the model
        // simulator, so loops need enough iterations to settle —
        // matching the evaluation kernels, not one-shot toy loops.
        let trip = 24 + rng.next_u32() % 40;
        let carried = rng.bool();
        let nest = gen_loop(trip, carried, arb_choices(rng));
        if nest.validate().is_err() {
            return;
        }
        let lowered = match lower(&nest) {
            Ok(l) => l,
            Err(_) => return,
        };
        let kernel = Kernel {
            name: "prop",
            dfg: lowered.dfg,
            mem: arb_memory(rng.next_u32()),
            iters: trip as usize,
            iter_marker: lowered.induction_phi,
            ideal_recurrence: 1,
            reference: |m, _| m.to_vec(),
        };
        let policy = Policy::ALL[rng.range(3)];
        let depth = 2 + rng.range(3);
        let run = match RunRequest::new(&kernel)
            .policy(policy)
            .seed(rng.next_u64())
            .queue_depth(depth)
            .run()
        {
            Ok(run) => run,
            // Random graphs may exceed the array or defeat the router;
            // those cases say nothing about conservation.
            Err(_) => return,
        };

        let report = run_report("prop", None, &run);
        assert!(!report.pes.is_empty(), "run used no PEs");
        for pe in &report.pes {
            assert!(
                pe.conserves_edges(),
                "PE ({}, {}) under {policy:?}: {} fire + {} operand + {} suppressed \
                 + {} backpressure + {} gated != {} rising",
                pe.x,
                pe.y,
                pe.fire_edges,
                pe.operand_stall_edges,
                pe.suppressed_stall_edges,
                pe.backpressure_stall_edges,
                pe.gated_ticks,
                pe.rising_edges
            );
            assert!(
                pe.fires <= pe.fire_edges,
                "PE ({}, {}): more fires than fire edges",
                pe.x,
                pe.y
            );
        }
        // Four input queues are sampled on every rising edge, into
        // depth + 1 occupancy buckets.
        for (pe, q) in report.pes.iter().zip(&report.queues) {
            assert_eq!(q.occupancy.len(), depth + 1, "bucket count");
            assert_eq!(
                q.occupancy.iter().sum::<u64>(),
                4 * pe.rising_edges,
                "PE ({}, {}): occupancy samples lost",
                pe.x,
                pe.y
            );
        }
        // The report round-trips through the canonical serializer.
        let text = uecgra_probe::RunReport::render_all(std::slice::from_ref(&report));
        assert_eq!(
            uecgra_probe::RunReport::parse_all(&text).expect("reparses"),
            vec![report]
        );
    });
}

//! The executor's determinism contract, end to end: the same seed
//! must produce bit-identical results whether the harness runs on one
//! thread or eight.
//!
//! Everything lives in a single `#[test]` because the checks mutate
//! the process-wide `UECGRA_THREADS` variable; separate tests in one
//! binary would race on it.

use uecgra_core::experiments::SEED;
use uecgra_core::pipeline::run_kernels_parallel;
use uecgra_core::report::run_report;
use uecgra_dfg::kernels::{self, synthetic};
use uecgra_model::sweep::{sweep_group_modes, SweepResult};
use uecgra_probe::RunReport;

fn fig3_sweep() -> SweepResult {
    let cs = synthetic::fig3_case_study();
    sweep_group_modes(&cs.dfg, vec![0; 4096], cs.iter_marker)
}

#[test]
fn one_thread_and_eight_threads_are_bit_identical() {
    std::env::set_var("UECGRA_THREADS", "1");
    let sweep_serial = fig3_sweep();
    let kernels = [
        kernels::llist::build_with_hops(40),
        kernels::dither::build_with_pixels(40),
    ];
    let runs_serial = run_kernels_parallel(&kernels, SEED);

    std::env::set_var("UECGRA_THREADS", "8");
    let sweep_par = fig3_sweep();
    let runs_par = run_kernels_parallel(&kernels, SEED);
    std::env::remove_var("UECGRA_THREADS");

    // The full sweep — every point's modes, speedup, and efficiency —
    // must match exactly, not approximately.
    assert_eq!(
        sweep_serial, sweep_par,
        "sweep diverged across thread counts"
    );
    assert!(sweep_serial.points.len() >= 243, "sweep is non-trivial");

    // Every kernel × policy run: identical Activity (fires, memory
    // image, cycle counts — PartialEq covers all fields) and modes.
    for (row_s, row_p) in runs_serial.iter().zip(&runs_par) {
        for (r_s, r_p) in row_s.iter().zip(row_p) {
            let (r_s, r_p) = (r_s.as_ref().unwrap(), r_p.as_ref().unwrap());
            assert_eq!(r_s.activity, r_p.activity, "Activity diverged");
            assert_eq!(r_s.modes, r_p.modes, "mode assignment diverged");
            assert_eq!(r_s.bitstream.grid, r_p.bitstream.grid, "bitstream diverged");

            // The rendered telemetry report — the artifact
            // `reproduce_all` aggregates into report.json — must be
            // byte-identical too (DESIGN.md §9 extends to §10).
            let rep_s = run_report("det", None, r_s);
            let rep_p = run_report("det", None, r_p);
            assert_eq!(
                RunReport::render_all(std::slice::from_ref(&rep_s)),
                RunReport::render_all(std::slice::from_ref(&rep_p)),
                "report bytes diverged across thread counts"
            );
        }
    }
}

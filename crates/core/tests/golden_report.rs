//! Golden snapshot of one dither run's `RunReport` JSON: pins the
//! probe schema's on-disk shape (field order, number formatting,
//! indentation) so accidental serializer or instrumentation drift is
//! caught by CI. Intentional schema changes: regenerate with
//! `UECGRA_BLESS=1 cargo test -p uecgra-core --test golden_report`.

use uecgra_core::pipeline::{Policy, RunRequest};
use uecgra_core::report::run_report;
use uecgra_dfg::kernels;
use uecgra_probe::RunReport;

#[test]
fn dither_popt_report_matches_golden() {
    let k = kernels::dither::build_with_pixels(60);
    let run = RunRequest::new(&k)
        .policy(Policy::UePerfOpt)
        .seed(7)
        .run()
        .expect("dither compiles and runs");
    let mut report = run_report("dither/UE-CGRA POpt", Some("dither"), &run);
    report.seed = Some(7);
    let text = RunReport::render_all(std::slice::from_ref(&report));

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/dither_popt.json");
    if std::env::var_os("UECGRA_BLESS").is_some() {
        std::fs::write(path, &text).expect("write golden");
        return;
    }
    let golden =
        std::fs::read_to_string(path).expect("golden file exists (UECGRA_BLESS=1 regenerates)");
    assert_eq!(
        text, golden,
        "RunReport serialization drifted from the checked-in golden \
         (UECGRA_BLESS=1 regenerates after intentional schema changes)"
    );
    // The golden document itself parses back to the same report.
    assert_eq!(
        RunReport::parse_all(&golden).expect("golden parses"),
        vec![report]
    );
}

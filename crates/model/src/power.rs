//! First-order energy model (paper Section II-B).
//!
//! Energy is normalized so that one `mul` firing at nominal voltage
//! costs exactly 1.0 unit. Per-node dynamic energy is
//! `fires × α_op × (V/VN)²`; memory ops additionally pay
//! `α_sram × (V/VN)²` per SRAM subbank access. Static energy accrues
//! per active PE (and per active SRAM subbank, scaled by β) over the
//! run's wall-clock duration at `V/VN`-scaled leakage power, with the
//! nominal leakage power derived from the paper's γ definition.
//! Power-gated (inactive) PEs and banks consume nothing.

use crate::params::ModelParams;
use crate::sim::SimResult;
use uecgra_clock::VfMode;
use uecgra_dfg::{Dfg, Op};

/// Per-run energy accounting, in normalized units (1.0 = one `mul`
/// firing at nominal voltage).
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyBreakdown {
    /// Dynamic energy per node.
    pub node_dynamic: Vec<f64>,
    /// Static (leakage) energy per node.
    pub node_static: Vec<f64>,
    /// Dynamic energy spent in SRAM subbanks (attributed to the memory
    /// nodes that accessed them).
    pub sram_dynamic: f64,
    /// Static energy of active SRAM subbanks.
    pub sram_static: f64,
    /// Iterations completed during the accounted run.
    pub iterations: u64,
}

impl EnergyBreakdown {
    /// Total energy of the run.
    pub fn total(&self) -> f64 {
        self.node_dynamic.iter().sum::<f64>()
            + self.node_static.iter().sum::<f64>()
            + self.sram_dynamic
            + self.sram_static
    }

    /// Energy per iteration (total / iterations).
    ///
    /// # Panics
    ///
    /// Panics if the run completed zero iterations.
    pub fn per_iteration(&self) -> f64 {
        assert!(self.iterations > 0, "no iterations to amortize over");
        self.total() / self.iterations as f64
    }

    /// Energy attributed to a single node (dynamic + static; SRAM
    /// energy is reported separately).
    pub fn node_total(&self, index: usize) -> f64 {
        self.node_dynamic[index] + self.node_static[index]
    }
}

/// The first-order power model: combines [`ModelParams`] with a
/// simulation result to produce an [`EnergyBreakdown`].
///
/// # Examples
///
/// ```
/// use uecgra_model::{PowerModel, ModelParams, DfgSimulator, SimConfig};
/// use uecgra_clock::VfMode;
/// use uecgra_dfg::kernels::synthetic;
///
/// let toy = synthetic::fig1_dep_chain();
/// let modes = vec![VfMode::Nominal; toy.dfg.node_count()];
/// let config = SimConfig {
///     marker: Some(toy.iter_marker),
///     max_marker_fires: Some(20),
///     ..SimConfig::default()
/// };
/// let result = DfgSimulator::new(&toy.dfg, modes.clone(), vec![], config).run();
/// let breakdown = PowerModel::new(ModelParams::default())
///     .energy(&toy.dfg, &modes, &result);
/// assert!(breakdown.per_iteration() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    params: ModelParams,
}

impl PowerModel {
    /// Create a power model with the given parameters.
    pub fn new(params: ModelParams) -> PowerModel {
        PowerModel { params }
    }

    /// The underlying parameters.
    pub fn params(&self) -> &ModelParams {
        &self.params
    }

    /// Account the energy of a finished run.
    ///
    /// A node is *active* (and leaks) iff it fired at least once;
    /// unused nodes model power-gated PEs. Pseudo-ops (`source`/`sink`)
    /// represent the outside world and consume nothing.
    pub fn energy(&self, dfg: &Dfg, modes: &[VfMode], result: &SimResult) -> EnergyBreakdown {
        assert_eq!(modes.len(), dfg.node_count(), "one mode per node");
        let p = &self.params;
        let duration_cycles = result.nominal_cycles();

        let mut node_dynamic = vec![0.0; dfg.node_count()];
        let mut node_static = vec![0.0; dfg.node_count()];
        let mut sram_dynamic = 0.0;
        let mut sram_static = 0.0;
        let leak_nominal_per_cycle = p.pe_leak_power_nominal();

        for (id, node) in dfg.nodes() {
            if node.op.is_pseudo() {
                continue;
            }
            let i = id.index();
            let mode = modes[i];
            let fires = result.fires[i] as f64;
            let active = result.fires[i] > 0;
            node_dynamic[i] = fires * node.op.alpha() * p.dynamic_scale(mode);
            if active {
                node_static[i] = duration_cycles * leak_nominal_per_cycle * p.static_scale(mode);
            }
            if node.op.is_memory() {
                sram_dynamic += fires * p.alpha_sram * p.dynamic_scale(mode);
                if active {
                    sram_static +=
                        duration_cycles * p.sram_leak_power_nominal() * p.static_scale(mode);
                }
            }
        }

        EnergyBreakdown {
            node_dynamic,
            node_static,
            sram_dynamic,
            sram_static,
            iterations: result.iterations(),
        }
    }

    /// Count active PEs and active SRAM subbanks for a run (the
    /// `N_TA`/`N_SA` of the paper's formulation).
    pub fn active_counts(&self, dfg: &Dfg, result: &SimResult) -> (usize, usize) {
        let mut pes = 0;
        let mut srams = 0;
        for (id, node) in dfg.nodes() {
            if node.op.is_pseudo() || result.fires[id.index()] == 0 {
                continue;
            }
            pes += 1;
            if node.op.is_memory() {
                srams += 1;
            }
        }
        (pes, srams)
    }
}

/// Convenience: the relative energy of executing `op` once at `mode`
/// versus a nominal `mul`.
pub fn op_energy(params: &ModelParams, op: Op, mode: VfMode) -> f64 {
    op.alpha() * params.dynamic_scale(mode)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{DfgSimulator, SimConfig};
    use uecgra_dfg::kernels::synthetic;

    fn run_fig2(modes_fn: impl Fn(&synthetic::Fig2Toy) -> Vec<VfMode>) -> (f64, f64) {
        let toy = synthetic::fig2_toy();
        let modes = modes_fn(&toy);
        let config = SimConfig {
            marker: Some(toy.iter_marker),
            max_marker_fires: Some(120),
            ..SimConfig::default()
        };
        let result = DfgSimulator::new(&toy.dfg, modes.clone(), vec![0; 256], config).run();
        let ii = result.steady_ii(20).expect("steady state reached");
        let e = PowerModel::new(ModelParams::default())
            .energy(&toy.dfg, &modes, &result)
            .per_iteration();
        (ii, e)
    }

    #[test]
    fn resting_noncritical_nodes_saves_energy_at_same_throughput() {
        // Figure 2(b): rest the A-chain; throughput unchanged, energy down.
        let (ii_nom, e_nom) = run_fig2(|t| vec![VfMode::Nominal; t.dfg.node_count()]);
        let (ii_rest, e_rest) = run_fig2(|t| {
            let mut m = vec![VfMode::Nominal; t.dfg.node_count()];
            for a in t.a_chain {
                m[a.index()] = VfMode::Rest;
            }
            m
        });
        assert_eq!(ii_nom, ii_rest, "resting must not hurt throughput");
        assert!(
            e_rest < e_nom,
            "rest energy {e_rest} must beat nominal {e_nom}"
        );
    }

    #[test]
    fn sprinting_everything_costs_energy() {
        let (ii_nom, e_nom) = run_fig2(|t| vec![VfMode::Nominal; t.dfg.node_count()]);
        let (ii_spr, e_spr) = run_fig2(|t| {
            let mut m = vec![VfMode::Sprint; t.dfg.node_count()];
            for (id, n) in t.dfg.nodes() {
                if n.op.is_pseudo() {
                    m[id.index()] = VfMode::Nominal;
                }
            }
            m
        });
        assert!(
            ii_spr < ii_nom,
            "sprint must speed up ({ii_spr} vs {ii_nom})"
        );
        assert!(
            e_spr > e_nom,
            "sprint must cost energy ({e_spr} vs {e_nom})"
        );
    }

    #[test]
    fn sram_energy_attributed_to_memory_nodes() {
        let toy = synthetic::fig2_toy(); // A1 is a load
        let modes = vec![VfMode::Nominal; toy.dfg.node_count()];
        let config = SimConfig {
            marker: Some(toy.iter_marker),
            max_marker_fires: Some(30),
            ..SimConfig::default()
        };
        let result = DfgSimulator::new(&toy.dfg, modes.clone(), vec![0; 256], config).run();
        let b = PowerModel::new(ModelParams::default()).energy(&toy.dfg, &modes, &result);
        assert!(b.sram_dynamic > 0.0);
        assert!(b.sram_static > 0.0);
        let (pes, srams) = PowerModel::new(ModelParams::default()).active_counts(&toy.dfg, &result);
        assert_eq!(srams, 1);
        assert!(pes >= 5);
    }

    #[test]
    fn inactive_nodes_consume_nothing() {
        // A graph where one branch side never fires.
        use uecgra_dfg::{Dfg, Op};
        let mut g = Dfg::new();
        let src = g.add_node(Op::Source, "s").id();
        let cond = g.add_node(Op::Source, "c").id();
        let br = g.add_node(Op::Br, "br").id();
        let taken = g.add_node(Op::Add, "taken").constant(0).id();
        let never = g.add_node(Op::Add, "never").constant(0).id();
        g.connect_ports(src, 0, br, 0);
        g.connect_ports(cond, 0, br, 1);
        g.connect_ports(br, 1, taken, 0); // cond emits 0 first: false path
        g.connect_ports(br, 0, never, 0);
        let modes = vec![VfMode::Nominal; g.node_count()];
        let config = SimConfig {
            source_limit: Some(1),
            ..SimConfig::default()
        };
        let result = DfgSimulator::new(&g, modes.clone(), vec![], config).run();
        let b = PowerModel::new(ModelParams::default()).energy(&g, &modes, &result);
        assert_eq!(result.fires[taken.index()], 1, "false path taken once");
        assert_eq!(result.fires[never.index()], 0);
        assert_eq!(b.node_total(never.index()), 0.0, "power-gated PE is free");
        assert!(b.node_total(taken.index()) > 0.0);
    }

    #[test]
    fn gamma_sets_leakage_power_level() {
        // A two-node ring: the mul fires every other nominal cycle; its
        // static power must equal the γ-derived nominal leakage exactly.
        use uecgra_dfg::{Dfg, Op};
        let mut g = Dfg::new();
        let phi = g.add_node(Op::Phi, "acc").init(1).id();
        let mul = g.add_node(Op::Mul, "mul").constant(1).id();
        g.connect(phi, mul);
        g.connect(mul, phi);
        let modes = vec![VfMode::Nominal; 2];
        let config = SimConfig {
            marker: Some(phi),
            max_marker_fires: Some(1000),
            ..SimConfig::default()
        };
        let result = DfgSimulator::new(&g, modes.clone(), vec![], config).run();
        let params = ModelParams::default();
        let b = PowerModel::new(params.clone()).energy(&g, &modes, &result);
        let i = mul.index();
        let dyn_per_cycle = b.node_dynamic[i] / result.nominal_cycles();
        let static_per_cycle = b.node_static[i] / result.nominal_cycles();
        assert!((static_per_cycle - params.pe_leak_power_nominal()).abs() < 1e-9);
        assert!(
            (dyn_per_cycle - 0.5).abs() < 0.01,
            "mul fires every 2nd cycle"
        );
    }

    #[test]
    fn op_energy_helper_scales() {
        use uecgra_dfg::Op;
        let p = ModelParams::default();
        assert_eq!(op_energy(&p, Op::Mul, VfMode::Nominal), 1.0);
        assert!(op_energy(&p, Op::Mul, VfMode::Sprint) > 1.8);
        assert!(op_energy(&p, Op::Add, VfMode::Rest) < 0.15);
    }
}

//! Energy-delay estimation — the `MeasureEnergyDelay()` primitive of
//! the compiler's power-mapping pass (paper Figure 5).
//!
//! An [`EnergyDelayEstimator`] wraps one DFG (with its memory image and
//! iteration marker) and evaluates candidate power mappings by running
//! the discrete-event simulator for a bounded number of iterations and
//! accounting energy with the first-order power model.

use crate::params::ModelParams;
use crate::power::PowerModel;
use crate::sim::{DfgSimulator, SimConfig, SimResult};
use uecgra_clock::VfMode;
use uecgra_dfg::{Dfg, NodeId};

/// Performance and energy of one power mapping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyDelay {
    /// Iterations per nominal cycle.
    pub throughput: f64,
    /// Normalized energy per iteration.
    pub energy_per_iter: f64,
}

impl EnergyDelay {
    /// Energy-delay product per iteration (lower is better).
    pub fn edp(&self) -> f64 {
        self.energy_per_iter / self.throughput
    }

    /// Speedup over a baseline (`>1` is faster).
    pub fn speedup_over(&self, base: &EnergyDelay) -> f64 {
        self.throughput / base.throughput
    }

    /// Energy-efficiency gain over a baseline in iterations/J (`>1` is
    /// more efficient).
    pub fn efficiency_over(&self, base: &EnergyDelay) -> f64 {
        base.energy_per_iter / self.energy_per_iter
    }

    /// Relative energy-delay figure of merit versus a baseline: `>1`
    /// means this mapping is better (lower EDP). This is the quantity
    /// the paper's `MeasureEnergyDelay(CGRA) < 1.0` test compares.
    pub fn edp_gain_over(&self, base: &EnergyDelay) -> f64 {
        base.edp() / self.edp()
    }
}

/// Bound simulator + power model for evaluating power mappings of one
/// DFG.
///
/// # Examples
///
/// ```
/// use uecgra_model::EnergyDelayEstimator;
/// use uecgra_clock::VfMode;
/// use uecgra_dfg::kernels::synthetic;
///
/// let toy = synthetic::fig2_toy();
/// let est = EnergyDelayEstimator::new(&toy.dfg, vec![0; 2048], toy.iter_marker);
/// let nominal = est.measure(&vec![VfMode::Nominal; toy.dfg.node_count()]);
/// assert!(nominal.throughput > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct EnergyDelayEstimator<'a> {
    dfg: &'a Dfg,
    mem: Vec<u32>,
    marker: NodeId,
    power: PowerModel,
    iterations: u64,
    warmup: usize,
    edge_extra_latency: Vec<u32>,
}

impl<'a> EnergyDelayEstimator<'a> {
    /// Create an estimator with the default parameter set and a
    /// 96-iteration measurement window.
    pub fn new(dfg: &'a Dfg, mem: Vec<u32>, marker: NodeId) -> Self {
        EnergyDelayEstimator {
            dfg,
            mem,
            marker,
            power: PowerModel::new(ModelParams::default()),
            iterations: 96,
            warmup: 16,
            edge_extra_latency: Vec::new(),
        }
    }

    /// Override the model parameters.
    pub fn with_params(mut self, params: ModelParams) -> Self {
        self.power = PowerModel::new(params);
        self
    }

    /// Override the measurement window (iterations simulated).
    pub fn with_iterations(mut self, iterations: u64) -> Self {
        self.iterations = iterations;
        self
    }

    /// Make the estimator routing-aware: per-edge extra latency in
    /// receiver cycles (one per bypass hop of the routed design). The
    /// paper's power mapper uses the purely logical model and defers
    /// "mapping iteratively with physical constraints" to future work;
    /// feeding routed latencies back into `MeasureEnergyDelay` is the
    /// minimal version of that and lets the pass exploit routed slack.
    pub fn with_edge_latency(mut self, extra: Vec<u32>) -> Self {
        self.edge_extra_latency = extra;
        self
    }

    /// The model parameters in use.
    pub fn params(&self) -> &ModelParams {
        self.power.params()
    }

    /// Simulate `modes` and return its raw simulation result.
    pub fn simulate(&self, modes: &[VfMode]) -> SimResult {
        let config = SimConfig {
            clocks: self.params().clocks.clone(),
            marker: Some(self.marker),
            max_marker_fires: Some(self.iterations),
            edge_extra_latency: self.edge_extra_latency.clone(),
            ..SimConfig::default()
        };
        DfgSimulator::new(self.dfg, modes.to_vec(), self.mem.clone(), config).run()
    }

    /// Measure throughput and energy of one power mapping — the
    /// paper's `MeasureEnergyDelay`.
    ///
    /// # Panics
    ///
    /// Panics if the mapping deadlocks (no steady state within the
    /// measurement window).
    pub fn measure(&self, modes: &[VfMode]) -> EnergyDelay {
        let result = self.simulate(modes);
        // Short-trip-count kernels may quiesce before the configured
        // window; shrink the warmup so a steady II is still measurable.
        let warmup = self
            .warmup
            .min(result.marker_times.len().saturating_sub(2) / 2);
        let ii = result
            .steady_ii(warmup)
            .unwrap_or_else(|| panic!("mapping reached no steady state: {:?}", result.stop));
        let energy = self.power.energy(self.dfg, modes, &result);
        EnergyDelay {
            throughput: 1.0 / ii,
            energy_per_iter: energy.per_iteration(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uecgra_dfg::kernels::synthetic;

    #[test]
    fn nominal_baseline_is_self_relative_unity() {
        let toy = synthetic::fig2_toy();
        let est = EnergyDelayEstimator::new(&toy.dfg, vec![0; 2048], toy.iter_marker);
        let nom = est.measure(&vec![VfMode::Nominal; toy.dfg.node_count()]);
        assert_eq!(nom.speedup_over(&nom), 1.0);
        assert_eq!(nom.efficiency_over(&nom), 1.0);
        assert_eq!(nom.edp_gain_over(&nom), 1.0);
    }

    #[test]
    fn resting_feeders_improves_edp() {
        let toy = synthetic::fig2_toy();
        let est = EnergyDelayEstimator::new(&toy.dfg, vec![0; 2048], toy.iter_marker);
        let nom = est.measure(&vec![VfMode::Nominal; toy.dfg.node_count()]);
        let mut rested = vec![VfMode::Nominal; toy.dfg.node_count()];
        for a in toy.a_chain {
            rested[a.index()] = VfMode::Rest;
        }
        let r = est.measure(&rested);
        assert!(r.edp_gain_over(&nom) > 1.0, "resting feeders must win EDP");
        assert!((r.speedup_over(&nom) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_matches_recurrence() {
        let s = synthetic::cycle_n(5);
        let est = EnergyDelayEstimator::new(&s.dfg, vec![], s.iter_marker);
        let nom = est.measure(&vec![VfMode::Nominal; s.dfg.node_count()]);
        assert!((nom.throughput - 0.2).abs() < 1e-9, "II 5 → throughput 0.2");
    }

    #[test]
    fn edp_combines_both_axes() {
        let fast_hungry = EnergyDelay {
            throughput: 0.5,
            energy_per_iter: 4.0,
        };
        let slow_lean = EnergyDelay {
            throughput: 0.25,
            energy_per_iter: 1.0,
        };
        // EDPs: 8 vs 4 → the lean point wins EDP despite half the speed.
        assert!(slow_lean.edp() < fast_hungry.edp());
        assert!(slow_lean.edp_gain_over(&fast_hungry) == 2.0);
    }
}

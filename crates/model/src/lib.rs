//! UE-CGRA analytical model (paper Section II).
//!
//! Discrete-event performance simulation of dataflow graphs on elastic
//! and ultra-elastic CGRAs ([`sim`]), plus the first-order power/energy
//! model ([`power`]) and energy-delay estimation used by the compiler's
//! power-mapping pass ([`edp`]). [`sweep`] drives the Figure 3 design
//! space exploration.

#![warn(missing_docs)]

pub mod edp;
pub mod params;
pub mod power;
pub mod sim;
pub mod sweep;

pub use edp::{EnergyDelay, EnergyDelayEstimator};
pub use params::{ModelParams, VfCurve};
pub use power::{EnergyBreakdown, PowerModel};
pub use sim::{DfgSimulator, SimConfig, SimResult, StopReason};

//! Model parameters (paper Section II-C).
//!
//! The analytical model is parameterized by a voltage-frequency fit, a
//! relative-energy table per operation (the alphas, defined in
//! [`uecgra_dfg::Op::alpha`]), and leakage factors. The published
//! design point for TSMC 28 nm:
//!
//! * `VN = 0.90 V`, `Vmin = 0.61 V`, `Vmax = 1.23 V`, `fN = 750 MHz`
//! * leakage fraction `γ = 0.1`, SRAM leakage multiplier `β = 2.0`
//! * `α_sram = 0.82` per 4 kB subbank (relative to a nominal `mul`)
//! * voltages quantized so the clock ratio is exactly 2-to-3-to-9,
//!   i.e. rest = 1/3× and sprint = 1.5× the nominal frequency.

use uecgra_clock::{ClockSet, VfMode};

/// A quadratic voltage→frequency curve `f(V) = k1·V² + k2·V + k3`.
///
/// The paper fits this polynomial to SPICE simulations of a 21-stage
/// FO4-loaded ring oscillator (Section VI-B). Here the curve is fitted
/// exactly through the three published operating points, so the
/// quantized multipliers (1/3×, 1×, 1.5×) fall out of the fit.
///
/// # Examples
///
/// ```
/// use uecgra_model::params::VfCurve;
///
/// let curve = VfCurve::paper_fit();
/// assert!((curve.frequency_mhz(0.90) - 750.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VfCurve {
    /// Quadratic coefficient (MHz/V²).
    pub k1: f64,
    /// Linear coefficient (MHz/V).
    pub k2: f64,
    /// Constant coefficient (MHz).
    pub k3: f64,
}

impl VfCurve {
    /// Fit a quadratic exactly through three `(voltage, MHz)` points.
    ///
    /// # Panics
    ///
    /// Panics if two points share a voltage (the system is singular).
    pub fn fit_three_points(points: [(f64, f64); 3]) -> VfCurve {
        let [(x0, y0), (x1, y1), (x2, y2)] = points;
        assert!(
            x0 != x1 && x1 != x2 && x0 != x2,
            "fit points must have distinct voltages"
        );
        // Lagrange interpolation expanded to monomial coefficients.
        let d0 = (x0 - x1) * (x0 - x2);
        let d1 = (x1 - x0) * (x1 - x2);
        let d2 = (x2 - x0) * (x2 - x1);
        let k1 = y0 / d0 + y1 / d1 + y2 / d2;
        let k2 = -(y0 * (x1 + x2) / d0 + y1 * (x0 + x2) / d1 + y2 * (x0 + x1) / d2);
        let k3 = y0 * x1 * x2 / d0 + y1 * x0 * x2 / d1 + y2 * x0 * x1 / d2;
        VfCurve { k1, k2, k3 }
    }

    /// The reproduction's calibrated fit: through (0.61 V, 250 MHz),
    /// (0.90 V, 750 MHz), and (1.23 V, 1125 MHz) — the paper's
    /// quantized rest/nominal/sprint frequencies at `fN = 750 MHz`.
    pub fn paper_fit() -> VfCurve {
        VfCurve::fit_three_points([(0.61, 250.0), (0.90, 750.0), (1.23, 1125.0)])
    }

    /// Frequency in MHz at the given supply voltage.
    pub fn frequency_mhz(&self, volts: f64) -> f64 {
        self.k1 * volts * volts + self.k2 * volts + self.k3
    }
}

/// The full analytical-model parameter set.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelParams {
    /// Voltage-frequency fit.
    pub vf: VfCurve,
    /// Rest / nominal / sprint supply voltages (V), indexed by
    /// [`VfMode`].
    pub voltages: [f64; 3],
    /// Nominal frequency (MHz).
    pub f_nominal_mhz: f64,
    /// Target leakage fraction of an active PE's total power (γ).
    pub gamma: f64,
    /// SRAM-bank leakage as a multiple of PE leakage (β).
    pub beta: f64,
    /// Relative energy of one 4 kB SRAM subbank access (α_sram).
    pub alpha_sram: f64,
    /// The rational clock plan implementing the three modes.
    pub clocks: ClockSet,
}

impl Default for ModelParams {
    fn default() -> Self {
        ModelParams {
            vf: VfCurve::paper_fit(),
            voltages: [0.61, 0.90, 1.23],
            f_nominal_mhz: 750.0,
            gamma: 0.1,
            beta: 2.0,
            alpha_sram: 0.82,
            clocks: ClockSet::default(),
        }
    }
}

impl ModelParams {
    /// Supply voltage of a mode (V).
    pub fn voltage(&self, mode: VfMode) -> f64 {
        self.voltages[mode as usize]
    }

    /// Frequency multiplier of a mode relative to nominal, as
    /// implemented by the quantized clock plan (exactly 1/3, 1, 3/2 for
    /// the default 2-to-3-to-9).
    pub fn freq_multiplier(&self, mode: VfMode) -> f64 {
        self.clocks.frequency_ratio(mode, VfMode::Nominal)
    }

    /// Dynamic-energy scale factor of a mode: `(V / VN)²`.
    pub fn dynamic_scale(&self, mode: VfMode) -> f64 {
        let r = self.voltage(mode) / self.voltage(VfMode::Nominal);
        r * r
    }

    /// Static-power scale factor of a mode: `V / VN` (constant leakage
    /// current, paper Section II-B).
    pub fn static_scale(&self, mode: VfMode) -> f64 {
        self.voltage(mode) / self.voltage(VfMode::Nominal)
    }

    /// PE leakage power at nominal voltage, in normalized power units
    /// where a `mul` firing every nominal cycle dissipates `α_mul = 1`
    /// unit. Derived from the paper's γ definition:
    /// `γ = P_leak / (α_mul · fN · VN² + P_leak)` with the dynamic term
    /// normalized to 1.
    pub fn pe_leak_power_nominal(&self) -> f64 {
        self.gamma / (1.0 - self.gamma)
    }

    /// SRAM-subbank leakage power at nominal voltage (normalized, = β ×
    /// PE leakage).
    pub fn sram_leak_power_nominal(&self) -> f64 {
        self.beta * self.pe_leak_power_nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_passes_through_anchor_points() {
        let c = VfCurve::paper_fit();
        assert!((c.frequency_mhz(0.61) - 250.0).abs() < 1e-9);
        assert!((c.frequency_mhz(0.90) - 750.0).abs() < 1e-9);
        assert!((c.frequency_mhz(1.23) - 1125.0).abs() < 1e-9);
    }

    #[test]
    fn fit_is_monotone_in_operating_range() {
        let c = VfCurve::paper_fit();
        let mut prev = c.frequency_mhz(0.55);
        let mut v = 0.56;
        while v <= 1.30 {
            let f = c.frequency_mhz(v);
            assert!(f > prev, "f(V) must increase on [0.55, 1.30], broke at {v}");
            prev = f;
            v += 0.01;
        }
    }

    #[test]
    fn quantized_multipliers() {
        let p = ModelParams::default();
        assert!((p.freq_multiplier(VfMode::Rest) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(p.freq_multiplier(VfMode::Nominal), 1.0);
        assert_eq!(p.freq_multiplier(VfMode::Sprint), 1.5);
    }

    #[test]
    fn fitted_frequencies_match_quantized_ratios() {
        // The quantization step of Section V: the fitted curve at the
        // adjusted voltages gives exactly the 2:3:9-implied multipliers.
        let p = ModelParams::default();
        for mode in VfMode::ALL {
            let f = p.vf.frequency_mhz(p.voltage(mode));
            let expect = p.f_nominal_mhz * p.freq_multiplier(mode);
            assert!(
                (f - expect).abs() < 1e-6,
                "{mode}: fit {f} vs quantized {expect}"
            );
        }
    }

    #[test]
    fn energy_scales() {
        let p = ModelParams::default();
        assert_eq!(p.dynamic_scale(VfMode::Nominal), 1.0);
        // (1.23/0.90)² ≈ 1.868: sprinting costs ~87% more energy/op.
        assert!((p.dynamic_scale(VfMode::Sprint) - 1.868).abs() < 1e-3);
        // (0.61/0.90)² ≈ 0.459: resting halves energy/op.
        assert!((p.dynamic_scale(VfMode::Rest) - 0.459).abs() < 1e-3);
        assert!(p.static_scale(VfMode::Rest) < 1.0);
    }

    #[test]
    fn leakage_budget_matches_gamma() {
        let p = ModelParams::default();
        let leak = p.pe_leak_power_nominal();
        // P_leak / (P_dyn + P_leak) with P_dyn = 1 must equal gamma.
        let frac = leak / (1.0 + leak);
        assert!((frac - p.gamma).abs() < 1e-12);
        assert_eq!(p.sram_leak_power_nominal(), 2.0 * leak);
    }

    #[test]
    #[should_panic(expected = "distinct voltages")]
    fn degenerate_fit_panics() {
        VfCurve::fit_three_points([(0.9, 1.0), (0.9, 2.0), (1.0, 3.0)]);
    }

    #[test]
    fn rest_gives_large_power_reduction() {
        // Paper Section IV-D: resting to 0.61 V yields roughly 3× slower
        // frequency and ~7× dynamic power reduction (f × V² ≈ 6.5×).
        let p = ModelParams::default();
        let power_ratio = p.freq_multiplier(VfMode::Rest) * p.dynamic_scale(VfMode::Rest);
        assert!(power_ratio < 1.0 / 6.0, "got {power_ratio}");
    }
}

//! Design-space sweeps over per-node voltage/frequency settings —
//! the Figure 3 analytical case study.
//!
//! The paper sweeps individual VF settings across all nodes of a
//! synthetic thirteen-node DFG and plots each configuration's speedup
//! and energy efficiency relative to the all-nominal elastic CGRA. To
//! keep the space tractable the sweep assigns modes per *chain group*
//! (the same reduction the compiler's power-mapping pass uses), which
//! preserves all distinct-throughput configurations because a chain is
//! rate-limited by its slowest member.

use crate::edp::{EnergyDelay, EnergyDelayEstimator};
use uecgra_clock::VfMode;
use uecgra_dfg::analysis::Grouping;
use uecgra_dfg::{Dfg, NodeId};

/// One swept configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Mode per chain group (see [`Grouping::chains`]).
    pub group_modes: Vec<VfMode>,
    /// Expanded mode per node.
    pub node_modes: Vec<VfMode>,
    /// Speedup relative to all-nominal.
    pub speedup: f64,
    /// Energy-efficiency gain relative to all-nominal.
    pub efficiency: f64,
}

/// Results of a full sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// Every configuration evaluated.
    pub points: Vec<SweepPoint>,
    /// The all-nominal baseline measurement.
    pub baseline: EnergyDelay,
}

impl SweepResult {
    /// The Pareto-optimal subset (maximal speedup/efficiency).
    pub fn pareto_front(&self) -> Vec<&SweepPoint> {
        let mut front: Vec<&SweepPoint> = Vec::new();
        for p in &self.points {
            let dominated = self.points.iter().any(|q| {
                (q.speedup > p.speedup && q.efficiency >= p.efficiency)
                    || (q.speedup >= p.speedup && q.efficiency > p.efficiency)
            });
            if !dominated {
                front.push(p);
            }
        }
        front.sort_by(|a, b| a.speedup.partial_cmp(&b.speedup).expect("finite"));
        front
    }

    /// The point with the best energy-delay gain over baseline.
    pub fn best_edp(&self) -> Option<&SweepPoint> {
        self.points.iter().max_by(|a, b| {
            (a.speedup * a.efficiency)
                .partial_cmp(&(b.speedup * b.efficiency))
                .expect("finite")
        })
    }
}

/// Sweep every per-group mode assignment of `dfg` (3^groups
/// configurations) and measure each against the all-nominal baseline.
///
/// Pseudo-op groups (sources/sinks) are pinned at nominal: they model
/// the outside world.
///
/// # Panics
///
/// Panics if the graph has more than 12 chain groups (3^12 ≈ 531k
/// configurations — the sweep is meant for small case-study DFGs).
pub fn sweep_group_modes(dfg: &Dfg, mem: Vec<u32>, marker: NodeId) -> SweepResult {
    let grouping = Grouping::chains(dfg);
    let sweepable: Vec<usize> = (0..grouping.len())
        .filter(|&g| {
            grouping
                .members(g)
                .iter()
                .all(|&n| !dfg.node(n).op.is_pseudo())
        })
        .collect();
    assert!(
        sweepable.len() <= 12,
        "sweep space too large: {} groups",
        sweepable.len()
    );

    let est = EnergyDelayEstimator::new(dfg, mem, marker);
    let baseline = est.measure(&vec![VfMode::Nominal; dfg.node_count()]);

    // Every combo is a pure function of its index, so the sweep fans
    // out across threads (see `uecgra_util::par` for the determinism
    // contract: points land in combo-index order regardless of thread
    // count) and the Pareto/EDP reductions fold on the main thread.
    let combos = 3usize.pow(sweepable.len() as u32);
    let points = uecgra_util::par_tabulate(combos, |combo| {
        let mut group_modes = vec![VfMode::Nominal; grouping.len()];
        let mut c = combo;
        for &g in &sweepable {
            group_modes[g] = VfMode::ALL[c % 3];
            c /= 3;
        }
        let node_modes: Vec<VfMode> = (0..dfg.node_count())
            .map(|i| {
                let node = NodeId::from_index(i);
                if dfg.node(node).op.is_pseudo() {
                    VfMode::Nominal
                } else {
                    group_modes[grouping.group_of(node)]
                }
            })
            .collect();
        let ed = est.measure(&node_modes);
        SweepPoint {
            speedup: ed.speedup_over(&baseline),
            efficiency: ed.efficiency_over(&baseline),
            group_modes,
            node_modes,
        }
    });
    SweepResult { points, baseline }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uecgra_dfg::kernels::synthetic;

    fn fig3_sweep() -> SweepResult {
        let cs = synthetic::fig3_case_study();
        // Memory: loads read source-indexed addresses 0,1,2,…; the store
        // writes to address 0. Size generously.
        sweep_group_modes(&cs.dfg, vec![0; 4096], cs.iter_marker)
    }

    #[test]
    fn nominal_point_is_unity() {
        let sweep = fig3_sweep();
        let nominal = sweep
            .points
            .iter()
            .find(|p| p.group_modes.iter().all(|&m| m == VfMode::Nominal))
            .expect("all-nominal in sweep");
        assert!((nominal.speedup - 1.0).abs() < 1e-9);
        assert!((nominal.efficiency - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sweep_contains_fig3_circled_point_region() {
        // Paper Figure 3: a configuration with ~1.4x speedup and ~1.2x
        // energy efficiency exists (sprint the cycle, rest live-ins).
        let sweep = fig3_sweep();
        assert!(
            sweep
                .points
                .iter()
                .any(|p| p.speedup >= 1.3 && p.efficiency >= 1.1),
            "no sprint-and-rest point found"
        );
    }

    #[test]
    fn sweep_contains_high_efficiency_resting_point() {
        // Paper Figure 3: resting alone enables large energy-efficiency
        // gains at similar performance (the paper reports ~2.2x; our
        // calibration yields ~1.39x because our leakage/SRAM split
        // differs — see EXPERIMENTS.md). Direction must hold.
        let sweep = fig3_sweep();
        assert!(
            sweep
                .points
                .iter()
                .any(|p| p.efficiency >= 1.3 && (p.speedup - 1.0).abs() < 1e-9),
            "no high-efficiency same-performance point found"
        );
    }

    #[test]
    fn pareto_front_is_nonempty_and_sorted() {
        let sweep = fig3_sweep();
        let front = sweep.pareto_front();
        assert!(!front.is_empty());
        for w in front.windows(2) {
            assert!(w[0].speedup <= w[1].speedup);
            assert!(w[0].efficiency >= w[1].efficiency, "front must trade off");
        }
    }

    #[test]
    fn best_edp_beats_baseline() {
        let sweep = fig3_sweep();
        let best = sweep.best_edp().expect("nonempty sweep");
        assert!(best.speedup * best.efficiency > 1.0);
    }
}

//! Discrete-event performance simulator for dataflow graphs on an
//! (ultra-)elastic CGRA (paper Section II-A).
//!
//! Every DFG node is assigned a [`VfMode`]; a node may fire only on the
//! rising edges of its own rational clock. A node fires when all of its
//! input tokens are *visible* (enqueued at least `hop_latency` receiver
//! cycles earlier — the elastic queue + wire delay) and all of its
//! output queues have space. Per-edge queues default to two entries,
//! matching the paper's elastic buffers.
//!
//! The simulator is functional: tokens carry 32-bit values, and
//! `load`/`store` nodes access a scratchpad memory image, so kernel
//! results can be checked against host references.

use std::collections::VecDeque;
use uecgra_clock::{ClockSet, VfMode};
use uecgra_dfg::{Dfg, NodeId, Op};

/// A token in flight: its value and the PLL tick at which it was
/// enqueued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Token {
    value: u32,
    written: u64,
}

/// Configuration of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// The rational clock plan.
    pub clocks: ClockSet,
    /// Per-edge queue capacity (paper default: 2).
    pub queue_capacity: usize,
    /// Wire/synchronization latency per hop in receiver cycles (paper
    /// default: 1; Figure 7(a) sweeps 1–3 to model asynchronous FIFOs).
    pub hop_latency: u32,
    /// Hard tick limit (safety net against deadlock).
    pub max_ticks: u64,
    /// Stop once the marker node has fired this many times.
    pub max_marker_fires: Option<u64>,
    /// Node whose firings are counted as iterations.
    pub marker: Option<NodeId>,
    /// Maximum number of tokens each source produces (None = unlimited).
    pub source_limit: Option<u64>,
    /// Extra per-edge latency in receiver cycles (indexed by
    /// `EdgeId::index`), modeling routed bypass hops. Empty = none.
    pub edge_extra_latency: Vec<u32>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            clocks: ClockSet::default(),
            queue_capacity: 2,
            hop_latency: 1,
            max_ticks: 10_000_000,
            max_marker_fires: None,
            marker: None,
            source_limit: None,
            edge_extra_latency: Vec::new(),
        }
    }
}

/// Why a simulation run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The marker reached its configured fire count.
    MarkerDone,
    /// No node fired for a full settling window: the graph quiesced
    /// (sources exhausted or control flow terminated the loop).
    Quiesced,
    /// The tick limit was hit (likely a deadlock or unbounded run).
    TickLimit,
}

/// Results of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Firings per node (indexed by `NodeId::index`).
    pub fires: Vec<u64>,
    /// Rising edges each node saw while input-starved.
    pub input_stalls: Vec<u64>,
    /// Rising edges each node saw while backpressured.
    pub output_stalls: Vec<u64>,
    /// PLL ticks at which the marker fired.
    pub marker_times: Vec<u64>,
    /// Total PLL ticks simulated.
    pub ticks: u64,
    /// Why the run stopped.
    pub stop: StopReason,
    /// Final memory image.
    pub mem: Vec<u32>,
    /// The clock plan used (for unit conversions).
    pub clocks: ClockSet,
}

impl SimResult {
    /// Steady-state initiation interval in nominal cycles, measured
    /// from marker firings with the first `skip` intervals discarded
    /// as warmup. Returns `None` with fewer than two post-warmup fires.
    pub fn steady_ii(&self, skip: usize) -> Option<f64> {
        let times = &self.marker_times;
        if times.len() < skip + 2 {
            return None;
        }
        let t0 = times[skip];
        let t1 = *times.last().expect("len checked above");
        let n = (times.len() - 1 - skip) as f64;
        Some(self.clocks.pll_to_nominal_cycles(t1 - t0) / n)
    }

    /// Throughput in iterations per nominal cycle (inverse of
    /// [`SimResult::steady_ii`]).
    pub fn throughput(&self, skip: usize) -> Option<f64> {
        self.steady_ii(skip).map(|ii| 1.0 / ii)
    }

    /// Total run length in nominal cycles.
    pub fn nominal_cycles(&self) -> f64 {
        self.clocks.pll_to_nominal_cycles(self.ticks)
    }

    /// Number of iterations completed (marker firings).
    pub fn iterations(&self) -> u64 {
        self.marker_times.len() as u64
    }
}

/// The discrete-event simulator. Construct with [`DfgSimulator::new`],
/// then [`DfgSimulator::run`].
///
/// # Examples
///
/// Reproduce Figure 1(d): a four-op dependency chain iterates once
/// every four cycles on an elastic CGRA:
///
/// ```
/// use uecgra_model::sim::{DfgSimulator, SimConfig};
/// use uecgra_clock::VfMode;
/// use uecgra_dfg::kernels::synthetic;
///
/// let toy = synthetic::fig1_dep_chain();
/// let config = SimConfig {
///     marker: Some(toy.iter_marker),
///     max_marker_fires: Some(50),
///     ..SimConfig::default()
/// };
/// let modes = vec![VfMode::Nominal; toy.dfg.node_count()];
/// let result = DfgSimulator::new(&toy.dfg, modes, vec![], config).run();
/// assert_eq!(result.steady_ii(4), Some(4.0));
/// ```
#[derive(Debug)]
pub struct DfgSimulator<'a> {
    dfg: &'a Dfg,
    modes: Vec<VfMode>,
    config: SimConfig,
    mem: Vec<u32>,
    queues: Vec<VecDeque<Token>>,
    init_pending: Vec<bool>,
    source_count: Vec<u64>,
}

/// What a node decided to do on one of its rising edges.
#[derive(Debug, Clone)]
enum Action {
    Fire {
        node: usize,
        /// Edge indices to pop.
        pops: Vec<usize>,
        /// (edge index, value) pairs to push.
        pushes: Vec<(usize, u32)>,
        /// Memory write, if any.
        mem_write: Option<(u32, u32)>,
    },
    StallInput(usize),
    StallOutput(usize),
    Idle,
}

impl<'a> DfgSimulator<'a> {
    /// Create a simulator for `dfg` with per-node VF `modes` and an
    /// initial memory image.
    ///
    /// # Panics
    ///
    /// Panics if `modes.len() != dfg.node_count()` or the graph fails
    /// validation.
    pub fn new(dfg: &'a Dfg, modes: Vec<VfMode>, mem: Vec<u32>, config: SimConfig) -> Self {
        assert_eq!(modes.len(), dfg.node_count(), "one mode per node");
        dfg.validate().expect("simulated graphs must be valid");
        let queues = (0..dfg.edge_count()).map(|_| VecDeque::new()).collect();
        let init_pending = dfg.nodes().map(|(_, n)| n.init.is_some()).collect();
        DfgSimulator {
            source_count: vec![0; dfg.node_count()],
            dfg,
            modes,
            config,
            mem,
            queues,
            init_pending,
        }
    }

    /// Run to completion and return the results.
    pub fn run(mut self) -> SimResult {
        let n = self.dfg.node_count();
        let mut fires = vec![0u64; n];
        let mut input_stalls = vec![0u64; n];
        let mut output_stalls = vec![0u64; n];
        let mut marker_times = Vec::new();
        let hyper = self.config.clocks.hyperperiod();
        // The quiesce window must outlast the largest possible
        // visibility delay (a slow consumer on a long routed edge),
        // otherwise an aging token reads as a dead machine.
        let max_extra = self
            .config
            .edge_extra_latency
            .iter()
            .copied()
            .max()
            .unwrap_or(0);
        let quiesce_window =
            hyper * (2 + u64::from(self.config.hop_latency) + u64::from(max_extra));
        let mut last_fire_tick = 0u64;
        let mut stop = StopReason::TickLimit;

        let mut t = 0u64;
        while t < self.config.max_ticks {
            // Phase 1: decide, against the state at tick start.
            let mut actions = Vec::new();
            for node in 0..n {
                let mode = self.modes[node];
                if !self.config.clocks.is_rising(mode, t) {
                    continue;
                }
                actions.push(self.decide(node, t));
            }

            // Phase 2: apply.
            let mut fired = false;
            for action in actions {
                match action {
                    Action::Fire {
                        node,
                        pops,
                        pushes,
                        mem_write,
                    } => {
                        fired = true;
                        fires[node] += 1;
                        if self.dfg.node(NodeId::from_index(node)).op == Op::Source {
                            self.source_count[node] += 1;
                        }
                        self.init_pending[node] = false;
                        for e in pops {
                            self.queues[e].pop_front();
                        }
                        for (e, value) in pushes {
                            self.queues[e].push_back(Token { value, written: t });
                        }
                        if let Some((addr, value)) = mem_write {
                            let a = addr as usize;
                            assert!(a < self.mem.len(), "store to {a} out of bounds");
                            self.mem[a] = value;
                        }
                        if self.config.marker == Some(NodeId::from_index(node)) {
                            marker_times.push(t);
                        }
                    }
                    Action::StallInput(node) => input_stalls[node] += 1,
                    Action::StallOutput(node) => output_stalls[node] += 1,
                    Action::Idle => {}
                }
            }

            if fired {
                last_fire_tick = t;
            }
            if let (Some(max), Some(marker)) = (self.config.max_marker_fires, self.config.marker) {
                if fires[marker.index()] >= max {
                    stop = StopReason::MarkerDone;
                    t += 1;
                    break;
                }
            }
            if t >= last_fire_tick + quiesce_window {
                stop = StopReason::Quiesced;
                break;
            }
            t += 1;
        }

        SimResult {
            fires,
            input_stalls,
            output_stalls,
            marker_times,
            ticks: t,
            stop,
            mem: self.mem,
            clocks: self.config.clocks.clone(),
        }
    }

    /// A token at the front of `edge` is visible to consumer `node` at
    /// tick `t` if it has aged at least `hop_latency` receiver periods
    /// (plus any routed extra hops configured for the edge).
    fn front_visible(&self, edge: usize, node: usize, t: u64) -> Option<u32> {
        let extra = self
            .config
            .edge_extra_latency
            .get(edge)
            .copied()
            .unwrap_or(0);
        let budget = self.config.clocks.period(self.modes[node])
            * u64::from(self.config.hop_latency + extra);
        self.queues[edge]
            .front()
            .filter(|tok| t >= tok.written + budget)
            .map(|tok| tok.value)
    }

    /// Capacity of an edge's queueing: each routed bypass hop carries
    /// its own elastic buffer, so a long edge buffers proportionally
    /// more tokens in flight.
    fn edge_capacity(&self, edge: usize) -> usize {
        let extra = self
            .config
            .edge_extra_latency
            .get(edge)
            .copied()
            .unwrap_or(0) as usize;
        self.config.queue_capacity * (1 + extra)
    }

    /// Can `value` be pushed on all edges leaving `node` via `port`?
    fn port_has_space(&self, node: usize, port: u8) -> bool {
        self.dfg
            .outputs(NodeId::from_index(node))
            .filter(|(_, e)| e.src_port == port)
            .all(|(id, _)| self.queues[id.index()].len() < self.edge_capacity(id.index()))
    }

    fn pushes_for_port(&self, node: usize, port: u8, value: u32) -> Vec<(usize, u32)> {
        self.dfg
            .outputs(NodeId::from_index(node))
            .filter(|(_, e)| e.src_port == port)
            .map(|(id, _)| (id.index(), value))
            .collect()
    }

    fn decide(&self, node: usize, t: u64) -> Action {
        let data = self.dfg.node(NodeId::from_index(node));
        let op = data.op;

        // Source: emit the next value in sequence while under the limit.
        if op == Op::Source {
            if let Some(limit) = self.config.source_limit {
                if self.source_count[node] >= limit {
                    return Action::Idle;
                }
            }
            if !self.port_has_space(node, 0) {
                return Action::StallOutput(node);
            }
            // Source values count upward (a useful address stream); the
            // counter is bumped when the fire is applied.
            let value = self.source_count[node] as u32;
            let pushes = self.pushes_for_port(node, 0, value);
            return Action::Fire {
                node,
                pops: Vec::new(),
                pushes,
                mem_write: None,
            };
        }

        // Phi bootstrap: emit the initial token once after reset.
        if self.init_pending[node] {
            return if self.port_has_space(node, 0) {
                Action::Fire {
                    node,
                    pops: Vec::new(),
                    pushes: self.pushes_for_port(
                        node,
                        0,
                        data.init.expect("init_pending implies init"),
                    ),
                    mem_write: None,
                }
            } else {
                Action::StallOutput(node)
            };
        }

        // Gather visible operands per input port.
        let in_edges: Vec<(usize, u8)> = self
            .dfg
            .inputs(NodeId::from_index(node))
            .map(|(id, e)| (id.index(), e.dst_port))
            .collect();

        if op == Op::Phi {
            // Merge: fire on the first visible input (lowest edge id).
            let Some(&(edge, _)) = in_edges
                .iter()
                .find(|(e, _)| self.front_visible(*e, node, t).is_some())
            else {
                return if in_edges.is_empty() {
                    Action::Idle
                } else {
                    Action::StallInput(node)
                };
            };
            let value = self
                .front_visible(edge, node, t)
                .expect("edge chosen as visible");
            if !self.port_has_space(node, 0) {
                return Action::StallOutput(node);
            }
            return Action::Fire {
                node,
                pops: vec![edge],
                pushes: self.pushes_for_port(node, 0, value),
                mem_write: None,
            };
        }

        // All-input ops: each driven port must have a visible token;
        // undriven ports fall back to the configured constant.
        let arity = op.arity().max(1);
        let mut operands = vec![None::<u32>; arity];
        let mut pops = Vec::new();
        for port in 0..arity as u8 {
            if let Some(&(edge, _)) = in_edges.iter().find(|(_, p)| *p == port) {
                match self.front_visible(edge, node, t) {
                    Some(v) => {
                        operands[port as usize] = Some(v);
                        pops.push(edge);
                    }
                    None => return Action::StallInput(node),
                }
            } else {
                operands[port as usize] = data.constant;
            }
        }
        let a = operands[0].expect("validated graphs have all operands");
        let b = if arity > 1 {
            operands[1].expect("validated graphs have all operands")
        } else {
            0
        };

        match op {
            Op::Sink => Action::Fire {
                node,
                pops,
                pushes: Vec::new(),
                mem_write: None,
            },
            Op::Br => {
                let out_port = if b != 0 { 0 } else { 1 };
                if !self.port_has_space(node, out_port) {
                    return Action::StallOutput(node);
                }
                Action::Fire {
                    node,
                    pops,
                    pushes: self.pushes_for_port(node, out_port, a),
                    mem_write: None,
                }
            }
            Op::Load => {
                if !self.port_has_space(node, 0) {
                    return Action::StallOutput(node);
                }
                let addr = a as usize;
                assert!(addr < self.mem.len(), "load from {addr} out of bounds");
                Action::Fire {
                    node,
                    pops,
                    pushes: self.pushes_for_port(node, 0, self.mem[addr]),
                    mem_write: None,
                }
            }
            Op::Store => {
                if !self.port_has_space(node, 0) {
                    return Action::StallOutput(node);
                }
                Action::Fire {
                    node,
                    pops,
                    pushes: self.pushes_for_port(node, 0, b),
                    mem_write: Some((a, b)),
                }
            }
            _ => {
                if !self.port_has_space(node, 0) {
                    return Action::StallOutput(node);
                }
                Action::Fire {
                    node,
                    pops,
                    pushes: self.pushes_for_port(node, 0, op.eval(a, b)),
                    mem_write: None,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uecgra_dfg::kernels::{self, synthetic};

    fn nominal_modes(dfg: &Dfg) -> Vec<VfMode> {
        vec![VfMode::Nominal; dfg.node_count()]
    }

    fn run_synthetic(s: &synthetic::Synthetic, config: SimConfig) -> SimResult {
        let modes = nominal_modes(&s.dfg);
        DfgSimulator::new(&s.dfg, modes, vec![], config).run()
    }

    #[test]
    fn chain_reaches_full_throughput_with_depth_two() {
        let s = synthetic::chain(6);
        let config = SimConfig {
            marker: Some(s.iter_marker),
            max_marker_fires: Some(100),
            ..SimConfig::default()
        };
        let r = run_synthetic(&s, config);
        assert_eq!(r.steady_ii(8), Some(1.0), "regular chain runs 1 iter/cycle");
    }

    #[test]
    fn chain_halves_throughput_with_depth_one() {
        // Paper Figure 7(b): regular kernels require queue depth >= 2;
        // a single-entry queue forces a bubble between tokens.
        let s = synthetic::chain(6);
        let config = SimConfig {
            marker: Some(s.iter_marker),
            max_marker_fires: Some(100),
            queue_capacity: 1,
            ..SimConfig::default()
        };
        let r = run_synthetic(&s, config);
        assert_eq!(r.steady_ii(8), Some(2.0));
    }

    #[test]
    fn cycle_n_ii_equals_n() {
        for n in 2..8 {
            let s = synthetic::cycle_n(n);
            let config = SimConfig {
                marker: Some(s.iter_marker),
                max_marker_fires: Some(50),
                ..SimConfig::default()
            };
            let r = run_synthetic(&s, config);
            assert_eq!(r.steady_ii(4), Some(n as f64), "cycle-{n}");
        }
    }

    #[test]
    fn irregular_kernels_insensitive_to_queue_depth() {
        // Paper Figure 7(b): no amount of deeper queuing changes the
        // throughput of a recurrence-bound DFG.
        for depth in [1usize, 2, 4, 8] {
            let s = synthetic::cycle_n(4);
            let config = SimConfig {
                marker: Some(s.iter_marker),
                max_marker_fires: Some(50),
                queue_capacity: depth,
                ..SimConfig::default()
            };
            let r = run_synthetic(&s, config);
            assert_eq!(r.steady_ii(4), Some(4.0), "depth {depth}");
        }
    }

    #[test]
    fn hop_latency_multiplies_cycle_ii() {
        // Paper Figure 7(a): throughput of the critical cycle scales
        // inversely with cycles-per-hop; 2-cycle hops (as with
        // asynchronous FIFOs) are ruinous.
        for hop in [1u32, 2, 3] {
            let s = synthetic::cycle_n(3);
            let config = SimConfig {
                marker: Some(s.iter_marker),
                max_marker_fires: Some(50),
                hop_latency: hop,
                ..SimConfig::default()
            };
            let r = run_synthetic(&s, config);
            assert_eq!(r.steady_ii(4), Some(3.0 * hop as f64), "hop {hop}");
        }
    }

    #[test]
    fn fig2b_resting_feeders_does_not_hurt() {
        // Paper Figure 2(b): resting A1/A2 to 1/3 frequency keeps the
        // kernel at one iteration every three cycles.
        let toy = synthetic::fig2_toy();
        let mut modes = nominal_modes(&toy.dfg);
        for a in toy.a_chain {
            modes[a.index()] = VfMode::Rest;
        }
        let config = SimConfig {
            marker: Some(toy.iter_marker),
            max_marker_fires: Some(60),
            ..SimConfig::default()
        };
        let r = DfgSimulator::new(&toy.dfg, modes, vec![0; 256], config).run();
        assert_eq!(r.steady_ii(10), Some(3.0));
    }

    #[test]
    fn fig2c_sprint_cycle_rest_feeders_boosts_throughput() {
        // Paper Figure 2(c): with a half-rate rest level (clock plan
        // 6:3:2), resting A1/A2 to 1/2 and sprinting B/C/D by 1.5x
        // boosts throughput to one iteration every two cycles.
        let toy = synthetic::fig2_toy();
        let clocks = ClockSet::new([6, 3, 2]).unwrap();
        let mut modes = nominal_modes(&toy.dfg);
        for a in toy.a_chain {
            modes[a.index()] = VfMode::Rest;
        }
        for c in toy.cycle {
            modes[c.index()] = VfMode::Sprint;
        }
        let config = SimConfig {
            clocks,
            marker: Some(toy.iter_marker),
            max_marker_fires: Some(60),
            ..SimConfig::default()
        };
        let r = DfgSimulator::new(&toy.dfg, modes, vec![0; 256], config).run();
        assert_eq!(r.steady_ii(10), Some(2.0));
    }

    #[test]
    fn source_limit_quiesces() {
        let s = synthetic::chain(3);
        let config = SimConfig {
            marker: Some(s.iter_marker),
            source_limit: Some(10),
            ..SimConfig::default()
        };
        let r = run_synthetic(&s, config);
        assert_eq!(r.stop, StopReason::Quiesced);
        assert_eq!(r.iterations(), 10);
    }

    #[test]
    fn tick_limit_catches_unbounded_runs() {
        let s = synthetic::cycle_n(3);
        let config = SimConfig {
            max_ticks: 500,
            ..SimConfig::default()
        };
        let r = run_synthetic(&s, config);
        assert_eq!(r.stop, StopReason::TickLimit);
    }

    #[test]
    fn kernels_compute_correct_memory_at_nominal() {
        for k in kernels::all_kernels() {
            if k.iters > 200 {
                continue; // covered by the smaller builds below
            }
            check_kernel(&k);
        }
        check_kernel(&kernels::llist::build_with_hops(50));
        check_kernel(&kernels::dither::build_with_pixels(50));
        check_kernel(&kernels::susan::build_with_iters(50));
        check_kernel(&kernels::fft::build_with_group(50));
        check_kernel(&kernels::bf::build_with_rounds(16));
    }

    fn check_kernel(k: &kernels::Kernel) {
        let config = SimConfig {
            marker: Some(k.iter_marker),
            ..SimConfig::default()
        };
        let modes = nominal_modes(&k.dfg);
        let r = DfgSimulator::new(&k.dfg, modes, k.mem.clone(), config).run();
        assert_eq!(r.stop, StopReason::Quiesced, "{} must terminate", k.name);
        assert_eq!(r.mem, k.reference_memory(), "{} memory mismatch", k.name);
    }

    #[test]
    fn kernel_ii_matches_ideal_recurrence_at_nominal() {
        // With every node on its own PE and single-cycle hops, the
        // analytical model's II equals the DFG recurrence bound.
        for (k, expect) in [
            (kernels::llist::build_with_hops(60), 5.0),
            (kernels::dither::build_with_pixels(60), 5.0),
            (kernels::susan::build_with_iters(60), 5.0),
            (kernels::fft::build_with_group(60), 4.0),
            (kernels::bf::build_with_rounds(24), 12.0),
        ] {
            let config = SimConfig {
                marker: Some(k.iter_marker),
                ..SimConfig::default()
            };
            let modes = nominal_modes(&k.dfg);
            let r = DfgSimulator::new(&k.dfg, modes, k.mem.clone(), config).run();
            let ii = r
                .steady_ii(10)
                .unwrap_or_else(|| panic!("{} no II", k.name));
            // The ideal recurrence is the worst-case static bound; DFGs
            // whose critical cycle runs through a data-dependent branch
            // (dither's error path) iterate slightly faster on average.
            assert!(
                ii <= expect + 0.35 && ii >= 0.8 * expect,
                "{}: II {} vs ideal {}",
                k.name,
                ii,
                expect
            );
        }
    }

    #[test]
    fn sprinting_kernel_critical_cycle_speeds_it_up() {
        // Sprint every node of llist's recurrence SCC (sprinting only
        // the longest cycle would leave the parallel liveness-check
        // cycle at nominal, which would then become critical): II drops
        // by ~1.5x.
        use uecgra_dfg::analysis::SccDecomposition;
        let k = kernels::llist::build_with_hops(60);
        let scc = SccDecomposition::compute(&k.dfg);
        let mut modes = nominal_modes(&k.dfg);
        for comp in scc.cyclic_components(&k.dfg) {
            for n in comp {
                modes[n.index()] = VfMode::Sprint;
            }
        }
        let config = SimConfig {
            marker: Some(k.iter_marker),
            ..SimConfig::default()
        };
        let r = DfgSimulator::new(&k.dfg, modes, k.mem.clone(), config).run();
        let ii = r.steady_ii(10).unwrap();
        assert!(ii < 4.0, "sprinted llist II {ii} should beat 5.0 by ~1.5x");
        // Functionality is preserved under DVFS.
        assert_eq!(r.mem, k.reference_memory());
    }

    #[test]
    fn stall_counters_populate() {
        let s = synthetic::cycle_n(4);
        let config = SimConfig {
            marker: Some(s.iter_marker),
            max_marker_fires: Some(20),
            ..SimConfig::default()
        };
        let r = run_synthetic(&s, config);
        // Ring nodes idle 3 of every 4 cycles waiting on input.
        let total_input_stalls: u64 = r.input_stalls.iter().sum();
        assert!(total_input_stalls > 0);
    }
}

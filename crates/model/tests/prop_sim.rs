//! Property tests over the analytical discrete-event simulator.

use uecgra_clock::VfMode;
use uecgra_dfg::kernels::synthetic;
use uecgra_model::{DfgSimulator, SimConfig, StopReason};
use uecgra_util::{check::forall, SplitMix64};

fn arb_mode(rng: &mut SplitMix64) -> VfMode {
    *rng.pick(&VfMode::ALL)
}

/// A pipeline's throughput equals its slowest stage's rate,
/// independent of where the slow stage sits.
#[test]
fn chain_throughput_is_the_slowest_stage() {
    forall(48, |rng| {
        let n = 1 + rng.range(6);
        let mode_pool: Vec<VfMode> = (0..10).map(|_| arb_mode(rng)).collect();
        let s = synthetic::chain(n);
        let mut modes = vec![VfMode::Nominal; s.dfg.node_count()];
        // Pseudo-ops (source/sink) stay nominal: they model the world.
        let mut slowest = VfMode::Sprint;
        for (i, (id, node)) in s.dfg.nodes().enumerate() {
            if node.op.is_pseudo() {
                continue;
            }
            let m = mode_pool[i % mode_pool.len()];
            modes[id.index()] = m;
            slowest = slowest.min(m);
        }
        // The nominal source caps throughput at 1 token/cycle.
        let expect_ii = match slowest {
            VfMode::Rest => 3.0,
            _ => 1.0,
        };
        let config = SimConfig {
            marker: Some(s.iter_marker),
            max_marker_fires: Some(150),
            ..SimConfig::default()
        };
        let r = DfgSimulator::new(&s.dfg, modes, vec![], config).run();
        let ii = r.steady_ii(30).expect("steady state");
        // Rational-clock edges are not aligned to nominal cycles, so
        // the endpoint-based II measurement carries a sub-cycle wobble.
        assert!(
            (ii - expect_ii).abs() / expect_ii < 0.02,
            "n={n} slowest={slowest:?}: II {ii} vs {expect_ii}"
        );
    });
}

/// A uniform-mode ring's II is its length divided by the mode's
/// frequency multiplier.
#[test]
fn uniform_ring_ii_scales_with_mode() {
    forall(48, |rng| {
        let n = 2 + rng.range(6);
        let mode = arb_mode(rng);
        let s = synthetic::cycle_n(n);
        let mut modes = vec![VfMode::Nominal; s.dfg.node_count()];
        for c in &s.cycle_nodes {
            modes[c.index()] = mode;
        }
        let mult = match mode {
            VfMode::Rest => 1.0 / 3.0,
            VfMode::Nominal => 1.0,
            VfMode::Sprint => 1.5,
        };
        let config = SimConfig {
            marker: Some(s.iter_marker),
            max_marker_fires: Some(120),
            ..SimConfig::default()
        };
        let r = DfgSimulator::new(&s.dfg, modes, vec![], config).run();
        let ii = r.steady_ii(20).expect("steady state");
        assert!(
            (ii - n as f64 / mult).abs() < 1e-9,
            "cycle-{n}@{mode:?}: II {ii}"
        );
    });
}

/// Firing conservation on a chain: every stage fires exactly once
/// per source token once the pipeline drains.
#[test]
fn chain_conserves_tokens() {
    forall(48, |rng| {
        let n = 1 + rng.range(6);
        let limit = rng.range_u64(1, 50);
        let s = synthetic::chain(n);
        let config = SimConfig {
            source_limit: Some(limit),
            ..SimConfig::default()
        };
        let modes = vec![VfMode::Nominal; s.dfg.node_count()];
        let r = DfgSimulator::new(&s.dfg, modes, vec![], config).run();
        assert_eq!(r.stop, StopReason::Quiesced);
        for (id, node) in s.dfg.nodes() {
            if node.op.is_pseudo() {
                continue;
            }
            assert_eq!(r.fires[id.index()], limit, "{}", node.name);
        }
    });
}

/// Hop latency scales a ring's II exactly linearly.
#[test]
fn hop_latency_scales_ring_ii() {
    forall(48, |rng| {
        let n = 2 + rng.range(4);
        let hop = 1 + rng.range(3) as u32;
        let s = synthetic::cycle_n(n);
        let config = SimConfig {
            marker: Some(s.iter_marker),
            max_marker_fires: Some(80),
            hop_latency: hop,
            ..SimConfig::default()
        };
        let modes = vec![VfMode::Nominal; s.dfg.node_count()];
        let r = DfgSimulator::new(&s.dfg, modes, vec![], config).run();
        let ii = r.steady_ii(15).expect("steady state");
        assert!((ii - (n as f64 * hop as f64)).abs() < 1e-9);
    });
}

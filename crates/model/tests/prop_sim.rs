//! Property tests over the analytical discrete-event simulator.

use proptest::prelude::*;
use uecgra_clock::VfMode;
use uecgra_dfg::kernels::synthetic;
use uecgra_model::{DfgSimulator, SimConfig, StopReason};

fn arb_mode() -> impl Strategy<Value = VfMode> {
    prop_oneof![
        Just(VfMode::Rest),
        Just(VfMode::Nominal),
        Just(VfMode::Sprint)
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A pipeline's throughput equals its slowest stage's rate,
    /// independent of where the slow stage sits.
    #[test]
    fn chain_throughput_is_the_slowest_stage(
        n in 1usize..7,
        mode_pool in proptest::collection::vec(arb_mode(), 10),
    ) {
        let s = synthetic::chain(n);
        let mut modes = vec![VfMode::Nominal; s.dfg.node_count()];
        // Pseudo-ops (source/sink) stay nominal: they model the world.
        let mut slowest = VfMode::Sprint;
        for (i, (id, node)) in s.dfg.nodes().enumerate() {
            if node.op.is_pseudo() {
                continue;
            }
            let m = mode_pool[i % mode_pool.len()];
            modes[id.index()] = m;
            slowest = slowest.min(m);
        }
        // The nominal source caps throughput at 1 token/cycle.
        let expect_ii = match slowest {
            VfMode::Rest => 3.0,
            _ => 1.0,
        };
        let config = SimConfig {
            marker: Some(s.iter_marker),
            max_marker_fires: Some(150),
            ..SimConfig::default()
        };
        let r = DfgSimulator::new(&s.dfg, modes, vec![], config).run();
        let ii = r.steady_ii(30).expect("steady state");
        // Rational-clock edges are not aligned to nominal cycles, so
        // the endpoint-based II measurement carries a sub-cycle wobble.
        prop_assert!(
            (ii - expect_ii).abs() / expect_ii < 0.02,
            "n={n} slowest={slowest:?}: II {ii} vs {expect_ii}"
        );
    }

    /// A uniform-mode ring's II is its length divided by the mode's
    /// frequency multiplier.
    #[test]
    fn uniform_ring_ii_scales_with_mode(
        n in 2usize..8,
        mode in arb_mode(),
    ) {
        let s = synthetic::cycle_n(n);
        let mut modes = vec![VfMode::Nominal; s.dfg.node_count()];
        for c in &s.cycle_nodes {
            modes[c.index()] = mode;
        }
        let mult = match mode {
            VfMode::Rest => 1.0 / 3.0,
            VfMode::Nominal => 1.0,
            VfMode::Sprint => 1.5,
        };
        let config = SimConfig {
            marker: Some(s.iter_marker),
            max_marker_fires: Some(120),
            ..SimConfig::default()
        };
        let r = DfgSimulator::new(&s.dfg, modes, vec![], config).run();
        let ii = r.steady_ii(20).expect("steady state");
        prop_assert!(
            (ii - n as f64 / mult).abs() < 1e-9,
            "cycle-{n}@{mode:?}: II {ii}"
        );
    }

    /// Firing conservation on a chain: every stage fires exactly once
    /// per source token once the pipeline drains.
    #[test]
    fn chain_conserves_tokens(n in 1usize..7, limit in 1u64..50) {
        let s = synthetic::chain(n);
        let config = SimConfig {
            source_limit: Some(limit),
            ..SimConfig::default()
        };
        let modes = vec![VfMode::Nominal; s.dfg.node_count()];
        let r = DfgSimulator::new(&s.dfg, modes, vec![], config).run();
        prop_assert_eq!(r.stop, StopReason::Quiesced);
        for (id, node) in s.dfg.nodes() {
            if node.op.is_pseudo() {
                continue;
            }
            prop_assert_eq!(r.fires[id.index()], limit, "{}", node.name);
        }
    }

    /// Hop latency scales a ring's II exactly linearly.
    #[test]
    fn hop_latency_scales_ring_ii(n in 2usize..6, hop in 1u32..4) {
        let s = synthetic::cycle_n(n);
        let config = SimConfig {
            marker: Some(s.iter_marker),
            max_marker_fires: Some(80),
            hop_latency: hop,
            ..SimConfig::default()
        };
        let modes = vec![VfMode::Nominal; s.dfg.node_count()];
        let r = DfgSimulator::new(&s.dfg, modes, vec![], config).run();
        let ii = r.steady_ii(15).expect("steady state");
        prop_assert!(((ii) - (n as f64 * hop as f64)).abs() < 1e-9);
    }
}

//! Property tests over graph construction and analyses.

use proptest::prelude::*;
use uecgra_dfg::analysis::{recurrence_mii, SccDecomposition, TopoOrder};
use uecgra_dfg::transform::merge;
use uecgra_dfg::{Dfg, Op};

/// Build a random DAG: `n` single-input nodes, each wired to a random
/// earlier node (or a source).
fn random_dag(n: usize, picks: &[usize]) -> Dfg {
    let mut g = Dfg::new();
    let src = g.add_node(Op::Source, "src").id();
    let mut ids = vec![src];
    for (i, &p) in picks.iter().take(n).enumerate() {
        let node = g.add_node(Op::Cp0, format!("n{i}")).id();
        let parent = ids[p % ids.len()];
        g.connect(parent, node);
        ids.push(node);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_dags_validate_and_topo_sort(
        n in 1usize..24,
        picks in proptest::collection::vec(0usize..1000, 24),
    ) {
        let g = random_dag(n, &picks);
        g.validate().unwrap();
        let topo = TopoOrder::compute(&g);
        prop_assert_eq!(topo.order().len(), g.node_count());
        prop_assert!(topo.excluded_edges().is_empty(), "DAGs need no back edges");
        for (_, e) in g.edges() {
            prop_assert!(topo.rank(e.src) < topo.rank(e.dst));
        }
    }

    #[test]
    fn dags_have_singleton_sccs_and_zero_mii(
        n in 1usize..24,
        picks in proptest::collection::vec(0usize..1000, 24),
    ) {
        let g = random_dag(n, &picks);
        let scc = SccDecomposition::compute(&g);
        prop_assert_eq!(scc.components().len(), g.node_count());
        prop_assert_eq!(scc.cyclic_components(&g).count(), 0);
        prop_assert_eq!(recurrence_mii(&g), 0.0);
    }

    #[test]
    fn ring_mii_equals_length(len in 2usize..16) {
        let mut g = Dfg::new();
        let phi = g.add_node(Op::Phi, "phi").init(0).id();
        let mut prev = phi;
        for i in 1..len {
            let n = g.add_node(Op::Add, format!("n{i}")).constant(1).id();
            g.connect(prev, n);
            prev = n;
        }
        g.connect(prev, phi);
        prop_assert_eq!(recurrence_mii(&g) as usize, len);
    }

    #[test]
    fn merge_is_associative_in_counts(
        a in 2usize..8,
        b in 2usize..8,
        c in 2usize..8,
    ) {
        use uecgra_dfg::kernels::synthetic;
        let ga = synthetic::cycle_n(a);
        let gb = synthetic::chain(b);
        let gc = synthetic::cycle_n(c);
        let (left, _) = merge(&[&ga.dfg, &gb.dfg]);
        let (left_all, _) = merge(&[&left, &gc.dfg]);
        let (right, _) = merge(&[&ga.dfg, &gb.dfg, &gc.dfg]);
        prop_assert_eq!(left_all.node_count(), right.node_count());
        prop_assert_eq!(left_all.edge_count(), right.edge_count());
        left_all.validate().unwrap();
        right.validate().unwrap();
        // Recurrence of the union is the max of the parts.
        prop_assert_eq!(
            recurrence_mii(&right) as usize,
            a.max(c),
        );
    }

    #[test]
    fn dot_export_mentions_all_nodes(
        n in 1usize..12,
        picks in proptest::collection::vec(0usize..1000, 24),
    ) {
        let g = random_dag(n, &picks);
        let dot = g.to_dot();
        for (id, _) in g.nodes() {
            prop_assert!(dot.contains(&id.to_string()));
        }
    }
}

//! Property tests over graph construction and analyses.

use uecgra_dfg::analysis::{recurrence_mii, SccDecomposition, TopoOrder};
use uecgra_dfg::transform::merge;
use uecgra_dfg::{Dfg, Op};
use uecgra_util::{check::forall, SplitMix64};

/// Build a random DAG: `n` single-input nodes, each wired to a random
/// earlier node (or a source).
fn random_dag(rng: &mut SplitMix64) -> Dfg {
    let n = 1 + rng.range(23);
    let mut g = Dfg::new();
    let src = g.add_node(Op::Source, "src").id();
    let mut ids = vec![src];
    for i in 0..n {
        let node = g.add_node(Op::Cp0, format!("n{i}")).id();
        let parent = ids[rng.range(ids.len())];
        g.connect(parent, node);
        ids.push(node);
    }
    g
}

#[test]
fn random_dags_validate_and_topo_sort() {
    forall(64, |rng| {
        let g = random_dag(rng);
        g.validate().unwrap();
        let topo = TopoOrder::compute(&g);
        assert_eq!(topo.order().len(), g.node_count());
        assert!(topo.excluded_edges().is_empty(), "DAGs need no back edges");
        for (_, e) in g.edges() {
            assert!(topo.rank(e.src) < topo.rank(e.dst));
        }
    });
}

#[test]
fn dags_have_singleton_sccs_and_zero_mii() {
    forall(64, |rng| {
        let g = random_dag(rng);
        let scc = SccDecomposition::compute(&g);
        assert_eq!(scc.components().len(), g.node_count());
        assert_eq!(scc.cyclic_components(&g).count(), 0);
        assert_eq!(recurrence_mii(&g), 0.0);
    });
}

#[test]
fn ring_mii_equals_length() {
    for len in 2usize..16 {
        let mut g = Dfg::new();
        let phi = g.add_node(Op::Phi, "phi").init(0).id();
        let mut prev = phi;
        for i in 1..len {
            let n = g.add_node(Op::Add, format!("n{i}")).constant(1).id();
            g.connect(prev, n);
            prev = n;
        }
        g.connect(prev, phi);
        assert_eq!(recurrence_mii(&g) as usize, len);
    }
}

#[test]
fn merge_is_associative_in_counts() {
    forall(64, |rng| {
        let a = 2 + rng.range(6);
        let b = 2 + rng.range(6);
        let c = 2 + rng.range(6);
        use uecgra_dfg::kernels::synthetic;
        let ga = synthetic::cycle_n(a);
        let gb = synthetic::chain(b);
        let gc = synthetic::cycle_n(c);
        let (left, _) = merge(&[&ga.dfg, &gb.dfg]);
        let (left_all, _) = merge(&[&left, &gc.dfg]);
        let (right, _) = merge(&[&ga.dfg, &gb.dfg, &gc.dfg]);
        assert_eq!(left_all.node_count(), right.node_count());
        assert_eq!(left_all.edge_count(), right.edge_count());
        left_all.validate().unwrap();
        right.validate().unwrap();
        // Recurrence of the union is the max of the parts.
        assert_eq!(recurrence_mii(&right) as usize, a.max(c));
    });
}

#[test]
fn dot_export_mentions_all_nodes() {
    forall(64, |rng| {
        let g = random_dag(rng);
        let dot = g.to_dot();
        for (id, _) in g.nodes() {
            assert!(dot.contains(&id.to_string()));
        }
    });
}

//! Dataflow-graph core for the UE-CGRA reproduction.
//!
//! This crate defines the dataflow-graph (DFG) abstraction shared by the
//! analytical model (`uecgra-model`), the compiler (`uecgra-compiler`),
//! and the cycle-level simulator (`uecgra-rtl`): the UE-CGRA [`Op`] set,
//! the [`Dfg`] multigraph with token-carrying edges, graph analyses
//! (SCC, cycle enumeration, critical-cycle/recurrence-MII, chain
//! grouping, topological order), and the builders for the paper's five
//! benchmark kernels and its synthetic microbenchmarks.
//!
//! # Quick example
//!
//! Build the paper's Figure 1 toy loop and inspect its recurrence:
//!
//! ```
//! use uecgra_dfg::{kernels::synthetic, analysis};
//!
//! let toy = synthetic::fig1_dep_chain();
//! // The four-op dependency chain limits throughput to 1 iter / 4 cycles.
//! assert_eq!(analysis::recurrence_mii(&toy.dfg), 4.0);
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod graph;
pub mod kernels;
pub mod op;
pub mod transform;

pub use graph::{Dfg, Edge, EdgeId, GraphError, Node, NodeId};
pub use kernels::Kernel;
pub use op::{Op, PE_OPS};

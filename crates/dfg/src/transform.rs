//! Graph transformations.
//!
//! [`merge`] combines several independent dataflow graphs into one, so
//! multiple kernel instances can share the fabric — the utilization
//! mitigation the paper sketches in Section VIII-C ("instantiating
//! multiple instances of the kernel onto different parts of the
//! fabric", or instances of different kernels side by side).

use crate::graph::{Dfg, NodeId};

/// Merge independent graphs into one. Returns the combined graph plus,
/// for each input graph, the mapping from its old node ids to the new
/// ones (`mappings[g][old.index()] == new_id`).
///
/// The inputs must each be valid; the output is valid by construction
/// (no edges cross instances).
///
/// # Examples
///
/// ```
/// use uecgra_dfg::kernels::synthetic;
/// use uecgra_dfg::transform::merge;
///
/// let a = synthetic::cycle_n(3);
/// let b = synthetic::chain(4);
/// let (combined, maps) = merge(&[&a.dfg, &b.dfg]);
/// assert_eq!(combined.node_count(), a.dfg.node_count() + b.dfg.node_count());
/// // The first instance's marker is findable in the combined graph:
/// let marker = maps[0][a.iter_marker.index()];
/// assert_eq!(combined.node(marker).op, a.dfg.node(a.iter_marker).op);
/// ```
pub fn merge(graphs: &[&Dfg]) -> (Dfg, Vec<Vec<NodeId>>) {
    let mut combined = Dfg::new();
    let mut mappings = Vec::with_capacity(graphs.len());
    for (gi, g) in graphs.iter().enumerate() {
        let mut map = Vec::with_capacity(g.node_count());
        for (_, node) in g.nodes() {
            let mut b = combined.add_node(node.op, format!("{}#{}", node.name, gi));
            if let Some(c) = node.constant {
                b = b.constant(c);
            }
            if let Some(i) = node.init {
                b = b.init(i);
            }
            map.push(b.id());
        }
        for (_, e) in g.edges() {
            combined.connect_ports(
                map[e.src.index()],
                e.src_port,
                map[e.dst.index()],
                e.dst_port,
            );
        }
        mappings.push(map);
    }
    debug_assert!(combined.validate().is_ok(), "merge preserves validity");
    (combined, mappings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{self, synthetic};

    #[test]
    fn merge_preserves_counts_and_validity() {
        let a = synthetic::cycle_n(4);
        let b = synthetic::fig2_toy();
        let (c, maps) = merge(&[&a.dfg, &b.dfg]);
        assert_eq!(c.node_count(), a.dfg.node_count() + b.dfg.node_count());
        assert_eq!(c.edge_count(), a.dfg.edge_count() + b.dfg.edge_count());
        c.validate().unwrap();
        assert_eq!(maps[0].len(), a.dfg.node_count());
        assert_eq!(maps[1].len(), b.dfg.node_count());
    }

    #[test]
    fn merged_instances_stay_independent() {
        let a = synthetic::cycle_n(3);
        let (c, maps) = merge(&[&a.dfg, &a.dfg]);
        // No edge connects nodes from different instances.
        let first: std::collections::HashSet<_> = maps[0].iter().copied().collect();
        for (_, e) in c.edges() {
            assert_eq!(
                first.contains(&e.src),
                first.contains(&e.dst),
                "edge crosses instances"
            );
        }
    }

    #[test]
    fn merged_kernels_have_both_recurrences() {
        use crate::analysis::SccDecomposition;
        let k = kernels::llist::build_with_hops(8);
        let (c, _) = merge(&[&k.dfg, &k.dfg]);
        let scc = SccDecomposition::compute(&c);
        let cycles = scc.cyclic_components(&c).count();
        let single = SccDecomposition::compute(&k.dfg)
            .cyclic_components(&k.dfg)
            .count();
        assert_eq!(cycles, 2 * single);
    }

    #[test]
    fn names_are_disambiguated() {
        let a = synthetic::chain(2);
        let (c, maps) = merge(&[&a.dfg, &a.dfg]);
        let n0 = &c.node(maps[0][1]).name;
        let n1 = &c.node(maps[1][1]).name;
        assert_ne!(n0, n1);
    }
}

//! Benchmark kernels and synthetic microbenchmarks.
//!
//! The paper evaluates five irregular inner loops (Figure 9): `llist`
//! (linked-list search), `dither` (Floyd–Steinberg grayscale dithering),
//! `susan` (image-smoothing from automotive vision), `fft` (butterfly
//! inner loop), and `bf` (Blowfish block cipher rounds). Each module
//! builds the loop's dataflow graph — with control flow converted to
//! phi/br dataflow exactly as the UE-CGRA compiler would — plus an
//! initial memory image and a host-side reference implementation used to
//! check simulator outputs.
//!
//! [`synthetic`] holds the microbenchmarks used in the paper's
//! architecture studies (`cycle-N`, `chain`, Figures 1–3).

pub mod bf;
pub mod dither;
pub mod extra;
pub mod fft;
pub mod llist;
pub mod susan;
pub mod synthetic;

use crate::graph::{Dfg, NodeId};

/// A benchmark kernel: its dataflow graph plus everything needed to run
/// and check it on the simulators.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Kernel name as used in the paper's tables.
    pub name: &'static str,
    /// The loop body as a dataflow graph (control converted to dataflow).
    pub dfg: Dfg,
    /// Initial scratchpad-memory image (flat, word-addressed).
    pub mem: Vec<u32>,
    /// Number of loop iterations the benchmark executes.
    pub iters: usize,
    /// Node whose firings count iterations (the loop-carried phi), used
    /// to measure the initiation interval.
    pub iter_marker: NodeId,
    /// Theoretical lower bound on the recurrence length in cycles (the
    /// "Ideal" column of the paper's Table III).
    pub ideal_recurrence: usize,
    /// Host-side reference: returns the final memory image after running
    /// `iters` iterations on the given initial memory.
    pub reference: fn(&[u32], usize) -> Vec<u32>,
}

impl Kernel {
    /// Run the host reference implementation on this kernel's own memory
    /// image and iteration count.
    pub fn reference_memory(&self) -> Vec<u32> {
        (self.reference)(&self.mem, self.iters)
    }
}

/// All five paper kernels, with the default dataset sizes used in the
/// evaluation (1000 iterations; 32 for `bf`, matching Section VI-C).
pub fn all_kernels() -> Vec<Kernel> {
    vec![
        llist::build(),
        dither::build(),
        susan::build(),
        fft::build(),
        bf::build(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::recurrence_mii;

    #[test]
    fn all_kernels_validate() {
        for k in all_kernels() {
            k.dfg
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", k.name));
        }
    }

    #[test]
    fn all_kernels_have_recurrences() {
        for k in all_kernels() {
            assert!(
                recurrence_mii(&k.dfg) >= 2.0,
                "{} should have an inter-iteration dependency",
                k.name
            );
        }
    }

    #[test]
    fn recurrence_matches_ideal_bound() {
        for k in all_kernels() {
            let mii = recurrence_mii(&k.dfg);
            assert_eq!(
                mii as usize, k.ideal_recurrence,
                "{}: DFG recurrence {} != declared ideal {}",
                k.name, mii, k.ideal_recurrence
            );
        }
    }

    #[test]
    fn kernels_fit_in_8x8_array() {
        for k in all_kernels() {
            assert!(
                k.dfg.pe_node_count() <= 64,
                "{} has {} PE ops",
                k.name,
                k.dfg.pe_node_count()
            );
        }
    }

    #[test]
    fn iter_marker_is_a_cycle_node() {
        use crate::analysis::SccDecomposition;
        for k in all_kernels() {
            let scc = SccDecomposition::compute(&k.dfg);
            assert!(
                scc.in_cycle(&k.dfg, k.iter_marker),
                "{}: iteration marker must sit on the recurrence",
                k.name
            );
        }
    }
}

//! `bf` — Blowfish block-cipher rounds (paper Figure 9e).
//!
//! ```c
//! for (i = 0; i < 21; ++i) {
//!   BF_ENC(right, left, s, p[i]);
//!   temp = right; right = left; left = temp;
//! }
//! ```
//!
//! Each round computes `l ^= p[i]; r ^= F(l) ^ p[i]` and swaps, where
//! `F(x)` combines four S-box lookups keyed by the bytes of `x`:
//! `((S0[a] + S1[b]) ^ S2[c]) + S3[d]`. The inter-iteration
//! dependency is the `left`/
//! `right` pair through the whole Feistel function — a twelve-op
//! recurrence (`phi → xor → srl → and → add → ld → add → xor → add →
//! xor → cp0(temp) → xor? — see the builder), the longest of the five
//! kernels, which is why `bf` is the only kernel whose energy-optimized
//! mapping loses performance in the paper's Table II.

use super::Kernel;
use crate::graph::Dfg;
use crate::op::Op;

/// Base of the 18-entry P array.
pub const P_BASE: u32 = 16;
/// Base of the 1024-entry S-box array (four 256-entry boxes).
pub const S_BASE: u32 = 64;
/// Base of the per-round output trace.
pub const OUT_BASE: u32 = S_BASE + 1024 + 16;
/// Initial `left` half.
pub const L0: u32 = 0x0123_4567;
/// Initial `right` half.
pub const R0: u32 = 0x89AB_CDEF;
/// Default round count (paper's gate-level simulations run 32
/// iterations for `bf`).
pub const DEFAULT_ROUNDS: usize = 32;

/// Build the default 32-round kernel.
pub fn build() -> Kernel {
    build_with_rounds(DEFAULT_ROUNDS)
}

/// Build a `bf` kernel running `rounds` Feistel rounds.
///
/// # Panics
///
/// Panics if `rounds == 0`.
pub fn build_with_rounds(rounds: usize) -> Kernel {
    assert!(rounds > 0, "bf needs at least one round");

    let mut g = Dfg::new();
    // Round index with loop-exit branch.
    let phi_i = g.add_node(Op::Phi, "i").init(0).id();
    let add_i = g.add_node(Op::Add, "i+1").constant(1).id();
    let lt = g.add_node(Op::Lt, "i<R").constant(rounds as u32).id();
    let br_i = g.add_node(Op::Br, "br_i").id();
    g.connect(phi_i, add_i);
    g.connect(add_i, lt);
    g.connect_ports(add_i, 0, br_i, 0);
    g.connect_ports(lt, 0, br_i, 1);
    g.connect_ports(br_i, 0, phi_i, 1);

    // Round key p[i mod 18] -> modeled as p[i] with a replicated table.
    let addr_p = g.add_node(Op::Add, "i+p").constant(P_BASE).id();
    g.connect(phi_i, addr_p);
    let ld_p = g.add_node(Op::Load, "ld_p").id();
    g.connect(addr_p, ld_p);

    // Feistel state.
    let phi_l = g.add_node(Op::Phi, "left").init(L0).id();
    let phi_r = g.add_node(Op::Phi, "right").init(R0).id();

    // xl = left ^ p[i].
    let xl = g.add_node(Op::Xor, "l^p").id();
    g.connect(phi_l, xl);
    g.connect(ld_p, xl);

    // Byte extraction.
    let srl_a = g.add_node(Op::Srl, ">>24").constant(24).id();
    g.connect(xl, srl_a);
    let srl_b = g.add_node(Op::Srl, ">>16").constant(16).id();
    g.connect(xl, srl_b);
    let and_b = g.add_node(Op::And, "b&255").constant(255).id();
    g.connect(srl_b, and_b);
    let srl_c = g.add_node(Op::Srl, ">>8").constant(8).id();
    g.connect(xl, srl_c);
    let and_c = g.add_node(Op::And, "c&255").constant(255).id();
    g.connect(srl_c, and_c);
    let and_d = g.add_node(Op::And, "d&255").constant(255).id();
    g.connect(xl, and_d);

    // S-box lookups.
    let addr_sa = g.add_node(Op::Add, "a+s0").constant(S_BASE).id();
    g.connect(srl_a, addr_sa);
    let ld_sa = g.add_node(Op::Load, "ld_sa").id();
    g.connect(addr_sa, ld_sa);
    let addr_sb = g.add_node(Op::Add, "b+s1").constant(S_BASE + 256).id();
    g.connect(and_b, addr_sb);
    let ld_sb = g.add_node(Op::Load, "ld_sb").id();
    g.connect(addr_sb, ld_sb);
    let addr_sc = g.add_node(Op::Add, "c+s2").constant(S_BASE + 512).id();
    g.connect(and_c, addr_sc);
    let ld_sc = g.add_node(Op::Load, "ld_sc").id();
    g.connect(addr_sc, ld_sc);
    let addr_sd = g.add_node(Op::Add, "d+s3").constant(S_BASE + 768).id();
    g.connect(and_d, addr_sd);
    let ld_sd = g.add_node(Op::Load, "ld_sd").id();
    g.connect(addr_sd, ld_sd);

    // F combine: ((sa + sb) ^ sc) + sd, then ^ p[i].
    let f1 = g.add_node(Op::Add, "sa+sb").id();
    g.connect(ld_sa, f1);
    g.connect(ld_sb, f1);
    let f2 = g.add_node(Op::Xor, "^sc").id();
    g.connect(f1, f2);
    g.connect(ld_sc, f2);
    let f3 = g.add_node(Op::Add, "+sd").id();
    g.connect(f2, f3);
    g.connect(ld_sd, f3);
    let f4 = g.add_node(Op::Xor, "^p").id();
    g.connect(f3, f4);
    g.connect(ld_p, f4);

    // xr = right ^ F; swap through the explicit temp copy of the C code.
    let xr = g.add_node(Op::Xor, "r^F").id();
    g.connect(phi_r, xr);
    g.connect(f4, xr);
    let temp = g.add_node(Op::Cp0, "temp").id();
    g.connect(xr, temp);
    g.connect_ports(temp, 0, phi_l, 1); // left' = right ^ F
    g.connect_ports(xl, 0, phi_r, 1); // right' = left ^ p

    // Per-round trace store: out[i] = xr.
    let addr_o = g.add_node(Op::Add, "i+out").constant(OUT_BASE).id();
    g.connect(phi_i, addr_o);
    let st = g.add_node(Op::Store, "st").id();
    g.connect_ports(addr_o, 0, st, 0);
    g.connect_ports(xr, 0, st, 1);
    let sink = g.add_node(Op::Sink, "out").id();
    g.connect(st, sink);

    g.validate().expect("bf DFG is valid");

    // Memory: replicated P schedule and pseudo-random S-boxes.
    let mut mem = vec![0u32; OUT_BASE as usize + rounds + 16];
    let mut state = 0x1357_9BDF_u32;
    for i in 0..rounds.max(18) {
        state = state.wrapping_mul(1664525).wrapping_add(1013904223);
        if (P_BASE as usize + i) < S_BASE as usize {
            mem[P_BASE as usize + i] = state;
        }
    }
    for i in 0..1024 {
        state = state.wrapping_mul(1664525).wrapping_add(1013904223);
        mem[S_BASE as usize + i] = state;
    }

    Kernel {
        name: "bf",
        dfg: g,
        mem,
        iters: rounds,
        iter_marker: phi_l,
        ideal_recurrence: 12,
        reference,
    }
}

/// The full Feistel function `F(x) = ((S0[a]+S1[b])^S2[c])+S3[d]` over
/// the S-box table in `mem`.
fn feistel(mem: &[u32], x: u32) -> u32 {
    let s = S_BASE as usize;
    let a = (x >> 24) as usize;
    let b = ((x >> 16) & 255) as usize;
    let c = ((x >> 8) & 255) as usize;
    let d = (x & 255) as usize;
    (mem[s + a].wrapping_add(mem[s + 256 + b]) ^ mem[s + 512 + c]).wrapping_add(mem[s + 768 + d])
}

/// Host reference: `rounds` Feistel rounds over the same memory layout,
/// tracing each round's `right ^ F` value to [`OUT_BASE`].
pub fn reference(mem: &[u32], rounds: usize) -> Vec<u32> {
    let mut m = mem.to_vec();
    let mut l = L0;
    let mut r = R0;
    for i in 0..rounds {
        let p = m[P_BASE as usize + i];
        let xl = l ^ p;
        let xr = r ^ (feistel(&m, xl) ^ p);
        m[OUT_BASE as usize + i] = xr;
        l = xr;
        r = xl;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::recurrence_mii;

    #[test]
    fn recurrence_is_twelve_ops() {
        let k = build_with_rounds(4);
        assert_eq!(recurrence_mii(&k.dfg), 12.0);
    }

    #[test]
    fn fits_the_8x8_array() {
        let k = build();
        assert!(k.dfg.pe_node_count() <= 40, "{}", k.dfg.pe_node_count());
    }

    #[test]
    fn reference_rounds_differ() {
        let k = build_with_rounds(8);
        let m = k.reference_memory();
        let o = OUT_BASE as usize;
        // Successive round outputs should all be distinct for random
        // S-boxes (collision probability ~2^-32 per pair).
        for i in 1..8 {
            assert_ne!(m[o + i], m[o + i - 1]);
        }
    }

    #[test]
    fn swap_semantics() {
        // After one round, right' must equal left ^ p[0].
        let k = build_with_rounds(2);
        let p0 = k.mem[P_BASE as usize];
        let xl0 = L0 ^ p0;
        let m = k.reference_memory();
        // Round 1's trace is r1 ^ F(l1 ^ p1) where r1 = xl0; recompute:
        let p1 = k.mem[P_BASE as usize + 1];
        let l1 = m[OUT_BASE as usize]; // round 0 trace = left'
        let xl1 = l1 ^ p1;
        let f = feistel(&k.mem, xl1) ^ p1;
        assert_eq!(m[OUT_BASE as usize + 1], xl0 ^ f);
    }

    #[test]
    fn default_build_matches_paper_methodology() {
        let k = build();
        assert_eq!(k.iters, 32);
        assert_eq!(k.ideal_recurrence, 12);
    }
}

//! `llist` — linked-list search (paper Figure 9a, Figure 14a-d).
//!
//! ```c
//! while (hd) {
//!   if (hd->d == tgt) return hd->d;
//!   else hd = hd->nxt;
//! }
//! return -1;
//! ```
//!
//! The inter-iteration dependency is the head pointer `hd`. The DFG
//! models the list as a word array where `mem[hd]` is the next pointer
//! (search terminates when the loaded value equals the target or is
//! null), so a single load sits on the recurrence, matching the paper's
//! mapped DFG (one `ld` node). The recurrence cycle is
//! `phi → ld → eq → br → br → phi`, five ops — the paper's ideal
//! recurrence length for `llist` (Table III).

use super::Kernel;
use crate::graph::Dfg;
use crate::op::Op;

/// Word address where the found value is stored.
pub const RESULT_ADDR: u32 = 0;
/// Word address of the list head.
pub const HEAD: u32 = 1;
/// Default number of pointer-chase hops (paper: 1000 iterations).
pub const DEFAULT_HOPS: usize = 1000;

/// Target value for a list of `hops` nodes starting at [`HEAD`].
pub fn target_for(hops: usize) -> u32 {
    HEAD + hops as u32
}

/// Build the default 1000-hop kernel.
pub fn build() -> Kernel {
    build_with_hops(DEFAULT_HOPS)
}

/// Build an `llist` kernel whose chase takes `hops` pointer hops.
///
/// # Panics
///
/// Panics if `hops == 0`.
pub fn build_with_hops(hops: usize) -> Kernel {
    assert!(hops > 0, "the search needs at least one hop");
    let tgt = target_for(hops);

    let mut g = Dfg::new();
    // Recurrence: hd flows phi -> ld -> (eq, ne) -> br1 -> br2 -> phi.
    let phi = g.add_node(Op::Phi, "hd").init(HEAD).id();
    let ld = g.add_node(Op::Load, "ld").id();
    let eq = g.add_node(Op::Eq, "eq").constant(tgt).id();
    let ne = g.add_node(Op::Ne, "ne").constant(0).id();
    let br1 = g.add_node(Op::Br, "br_found").id();
    let br2 = g.add_node(Op::Br, "br_alive").id();
    let st = g.add_node(Op::Store, "st").constant(RESULT_ADDR).id();
    let out = g.add_node(Op::Sink, "out").id();

    g.connect(phi, ld); // v = mem[hd]
    g.connect(ld, eq); // found = (v == tgt)
    g.connect(ld, ne); // alive = (v != 0)
    g.connect_ports(ld, 0, br1, 0); // data: v
    g.connect_ports(eq, 0, br1, 1); // cond: found
    g.connect_ports(br1, 0, st, 1); // found -> store the value
    g.connect_ports(br1, 1, br2, 0); // not found -> check liveness
    g.connect_ports(ne, 0, br2, 1); // cond: alive
    g.connect_ports(br2, 0, phi, 1); // alive -> continue with nxt
    g.connect(st, out);
    // br2 false port (dead list) intentionally dangles: the loop ends.

    g.validate().expect("llist DFG is valid");

    // Memory: mem[0] holds the result; the chain is HEAD -> HEAD+1 ->
    // ... -> HEAD+hops (= tgt). The chase loads mem[hd] `hops` times.
    let mut mem = vec![0u32; hops + 8];
    for i in 0..hops {
        mem[(HEAD as usize) + i] = HEAD + i as u32 + 1;
    }

    Kernel {
        name: "llist",
        dfg: g,
        mem,
        iters: hops,
        iter_marker: phi,
        ideal_recurrence: 5,
        reference,
    }
}

/// Host reference: chase pointers until the target or null, then store
/// the found value at [`RESULT_ADDR`].
pub fn reference(mem: &[u32], hops: usize) -> Vec<u32> {
    let tgt = target_for(hops);
    let mut m = mem.to_vec();
    let mut hd = HEAD;
    loop {
        let v = m[hd as usize];
        if v == tgt {
            m[RESULT_ADDR as usize] = v;
            break;
        }
        if v == 0 {
            break;
        }
        hd = v;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{recurrence_mii, simple_cycles};

    #[test]
    fn recurrence_is_five_ops() {
        let k = build_with_hops(10);
        assert_eq!(recurrence_mii(&k.dfg), 5.0);
    }

    #[test]
    fn has_three_cycles_through_the_branches() {
        // phi->ld->eq->br1->br2->phi (5, the condition path),
        // phi->ld->br1->br2->phi (4, the data path), and
        // phi->ld->ne->br2->phi (4, the liveness path).
        let k = build_with_hops(10);
        let mut lens: Vec<usize> = simple_cycles(&k.dfg).iter().map(|c| c.len()).collect();
        lens.sort();
        assert_eq!(lens, vec![4, 4, 5]);
    }

    #[test]
    fn reference_finds_target() {
        let k = build_with_hops(5);
        let final_mem = k.reference_memory();
        assert_eq!(final_mem[RESULT_ADDR as usize], target_for(5));
    }

    #[test]
    fn reference_handles_null_termination() {
        let k = build_with_hops(5);
        // Break the chain: a null pointer before the target.
        let mut mem = k.mem.clone();
        mem[HEAD as usize + 2] = 0;
        let final_mem = reference(&mem, 5);
        assert_eq!(final_mem[RESULT_ADDR as usize], 0, "result untouched");
    }

    #[test]
    fn default_build_is_1000_hops() {
        let k = build();
        assert_eq!(k.iters, 1000);
        assert_eq!(k.name, "llist");
    }

    #[test]
    fn node_count_is_small() {
        // CGRA compilers target ~10-op regions (Section VI-A).
        let k = build();
        assert!(k.dfg.pe_node_count() <= 10);
    }
}

//! `dither` — grayscale Floyd–Steinberg dithering (paper Figure 9b,
//! Figure 14e-h).
//!
//! ```c
//! for (i = 0; i < N; ++i) {
//!   out = src[i] + err;
//!   if (out > 127) { pixel = 0xFF; err = out - pixel; }
//!   else           { pixel = 0;    err = out; }
//!   dest[i] = pixel;
//! }
//! ```
//!
//! The inter-iteration dependency is the running error `err`. Its
//! recurrence is `phi → add → gt → br → sub → phi`, five ops — the
//! paper's ideal recurrence for `dither`. The induction variable `i`
//! carries its own four-op recurrence (`phi → add → lt → br`), which is
//! shorter and therefore non-critical.

use super::Kernel;
use crate::graph::Dfg;
use crate::op::Op;

/// Base of the source pixel array.
pub const SRC_BASE: u32 = 16;
/// Default pixel count (paper: 1000 iterations of random input data).
pub const DEFAULT_N: usize = 1000;
/// Base of the destination pixel array for `n` pixels.
pub fn dst_base(n: usize) -> u32 {
    SRC_BASE + n as u32 + 16
}

/// Build the default 1000-pixel kernel with a deterministic
/// pseudo-random source image.
pub fn build() -> Kernel {
    build_with_pixels(DEFAULT_N)
}

/// Build a `dither` kernel over `n` pixels.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn build_with_pixels(n: usize) -> Kernel {
    assert!(n > 0, "dither needs at least one pixel");
    let dst = dst_base(n);

    let mut g = Dfg::new();
    // Induction variable with loop-exit branch (control as dataflow).
    let phi_i = g.add_node(Op::Phi, "i").init(0).id();
    let add_i = g.add_node(Op::Add, "i+1").constant(1).id();
    let lt = g.add_node(Op::Lt, "i<N").constant(n as u32).id();
    let br_i = g.add_node(Op::Br, "br_i").id();
    g.connect(phi_i, add_i);
    g.connect(add_i, lt);
    g.connect_ports(add_i, 0, br_i, 0);
    g.connect_ports(lt, 0, br_i, 1);
    g.connect_ports(br_i, 0, phi_i, 1); // continue while i+1 < N

    // Load src[i].
    let addr_s = g.add_node(Op::Add, "i+src").constant(SRC_BASE).id();
    let ld = g.add_node(Op::Load, "ld").id();
    g.connect(phi_i, addr_s);
    g.connect(addr_s, ld);

    // Error-diffusion recurrence.
    let phi_err = g.add_node(Op::Phi, "err").init(0).id();
    let add_out = g.add_node(Op::Add, "out").id();
    let gt = g.add_node(Op::Gt, "out>127").constant(127).id();
    let br_e = g.add_node(Op::Br, "br_err").id();
    let sub = g.add_node(Op::Sub, "out-255").constant(255).id();
    g.connect(ld, add_out);
    g.connect(phi_err, add_out);
    g.connect(add_out, gt);
    g.connect_ports(add_out, 0, br_e, 0);
    g.connect_ports(gt, 0, br_e, 1);
    g.connect_ports(br_e, 0, sub, 0); // out > 127: err = out - 255
    g.connect_ports(sub, 0, phi_err, 0);
    g.connect_ports(br_e, 1, phi_err, 1); // else: err = out

    // Pixel value: gt * 255 (0 or 0xFF) stored at dest[i].
    let pix = g.add_node(Op::Mul, "pix").constant(255).id();
    g.connect(gt, pix);
    let addr_d = g.add_node(Op::Add, "i+dst").constant(dst).id();
    g.connect(phi_i, addr_d);
    let st = g.add_node(Op::Store, "st").id();
    g.connect_ports(addr_d, 0, st, 0);
    g.connect_ports(pix, 0, st, 1);
    let out = g.add_node(Op::Sink, "out").id();
    g.connect(st, out);

    g.validate().expect("dither DFG is valid");

    // Deterministic pseudo-random 8-bit source image.
    let mut mem = vec![0u32; dst as usize + n + 16];
    let mut state = 0x02F6_E2B1_u32;
    for i in 0..n {
        state = state.wrapping_mul(1664525).wrapping_add(1013904223);
        mem[SRC_BASE as usize + i] = state >> 24; // 0..=255
    }

    Kernel {
        name: "dither",
        dfg: g,
        mem,
        iters: n,
        iter_marker: phi_err,
        ideal_recurrence: 5,
        reference,
    }
}

/// Host reference: Floyd–Steinberg 1-D error diffusion with signed
/// comparison semantics matching the DFG (`out > 127` on a 32-bit
/// signed value).
pub fn reference(mem: &[u32], n: usize) -> Vec<u32> {
    let dst = dst_base(n);
    let mut m = mem.to_vec();
    let mut err: u32 = 0;
    for i in 0..n {
        let out = m[SRC_BASE as usize + i].wrapping_add(err);
        let (pixel, new_err) = if (out as i32) > 127 {
            (255u32, out.wrapping_sub(255))
        } else {
            (0u32, out)
        };
        m[dst as usize + i] = pixel;
        err = new_err;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::recurrence_mii;

    #[test]
    fn recurrence_is_five_ops() {
        let k = build_with_pixels(8);
        assert_eq!(recurrence_mii(&k.dfg), 5.0);
    }

    #[test]
    fn reference_produces_binary_pixels() {
        let k = build_with_pixels(64);
        let m = k.reference_memory();
        let d = dst_base(64) as usize;
        for i in 0..64 {
            assert!(m[d + i] == 0 || m[d + i] == 255);
        }
        // A mid-gray random image must dither to a mix of black/white.
        let whites = (0..64).filter(|&i| m[d + i] == 255).count();
        assert!(whites > 0 && whites < 64);
    }

    #[test]
    fn error_diffusion_preserves_total_intensity() {
        // Sum of output pixels tracks sum of inputs to within the final
        // residual error (the defining property of error diffusion).
        let n = 128;
        let k = build_with_pixels(n);
        let m = k.reference_memory();
        let src_sum: i64 = (0..n).map(|i| m[SRC_BASE as usize + i] as i64).sum();
        let dst_sum: i64 = (0..n).map(|i| m[dst_base(n) as usize + i] as i64).sum();
        assert!((src_sum - dst_sum).abs() <= 255);
    }

    #[test]
    fn all_black_and_all_white_images() {
        let k = build_with_pixels(16);
        let mut dark = k.mem.clone();
        for i in 0..16 {
            dark[SRC_BASE as usize + i] = 0;
        }
        let m = reference(&dark, 16);
        assert!((0..16).all(|i| m[dst_base(16) as usize + i] == 0));

        let mut bright = k.mem.clone();
        for i in 0..16 {
            bright[SRC_BASE as usize + i] = 255;
        }
        let m = reference(&bright, 16);
        assert!((0..16).all(|i| m[dst_base(16) as usize + i] == 255));
    }

    #[test]
    fn default_build_matches_paper_methodology() {
        let k = build();
        assert_eq!(k.iters, 1000);
        assert_eq!(k.ideal_recurrence, 5);
    }
}

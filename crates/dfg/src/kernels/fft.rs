//! `fft` — radix-2 butterfly inner loop (paper Figure 9d).
//!
//! ```c
//! for (k = 0; k < G; ++k) {
//!   t_r = Wr*r[b+k] - Wi*i[b+k];
//!   t_i = Wi*r[b+k] + Wr*i[b+k];
//!   r[b+k] = r[a+k] - t_r;  r[a+k] += t_r;
//!   i[b+k] = i[a+k] - t_i;  i[a+k] += t_i;
//! }
//! ```
//!
//! (with `a = 2jG + k` and `b = 2jG + G + k` folded into base
//! constants). The only loop-carried dependency is the induction
//! variable `k`, whose recurrence runs through the loop-exit branch:
//! `phi → add → lt → br → phi`, four ops — the paper's ideal
//! recurrence for `fft` (Table III). The body is rich in ILP, which is
//! why `fft` shows the largest CGRA-over-core speedups.

use super::Kernel;
use crate::graph::Dfg;
use crate::op::Op;

/// Twiddle factor real part (fixed-point, arbitrary but nonzero).
pub const WR: u32 = 3;
/// Twiddle factor imaginary part.
pub const WI: u32 = 5;
/// Base of `r[a..]`.
pub const RA_BASE: u32 = 16;
/// Default butterfly group size (paper: 1000 iterations).
pub const DEFAULT_G: usize = 1000;

/// Base of `r[b..]` for group size `g`.
pub fn rb_base(g: usize) -> u32 {
    RA_BASE + g as u32 + 8
}
/// Base of `i[a..]`.
pub fn ia_base(g: usize) -> u32 {
    rb_base(g) + g as u32 + 8
}
/// Base of `i[b..]`.
pub fn ib_base(g: usize) -> u32 {
    ia_base(g) + g as u32 + 8
}

/// Build the default 1000-iteration kernel.
pub fn build() -> Kernel {
    build_with_group(DEFAULT_G)
}

/// Build an `fft` butterfly kernel over group size `g`.
///
/// # Panics
///
/// Panics if `g == 0`.
pub fn build_with_group(g_size: usize) -> Kernel {
    assert!(g_size > 0, "fft needs at least one butterfly");
    let rb = rb_base(g_size);
    let ia = ia_base(g_size);
    let ib = ib_base(g_size);

    let mut g = Dfg::new();
    // Induction recurrence (the critical cycle, four ops).
    let phi_k = g.add_node(Op::Phi, "k").init(0).id();
    let add_k = g.add_node(Op::Add, "k+1").constant(1).id();
    let lt = g.add_node(Op::Lt, "k<G").constant(g_size as u32).id();
    let br_k = g.add_node(Op::Br, "br_k").id();
    g.connect(phi_k, add_k);
    g.connect(add_k, lt);
    g.connect_ports(add_k, 0, br_k, 0);
    g.connect_ports(lt, 0, br_k, 1);
    g.connect_ports(br_k, 0, phi_k, 1);

    // Addresses (each feeds both its load and its store).
    let addr_ra = g.add_node(Op::Add, "k+ra").constant(RA_BASE).id();
    let addr_rb = g.add_node(Op::Add, "k+rb").constant(rb).id();
    let addr_ia = g.add_node(Op::Add, "k+ia").constant(ia).id();
    let addr_ib = g.add_node(Op::Add, "k+ib").constant(ib).id();
    for addr in [addr_ra, addr_rb, addr_ia, addr_ib] {
        g.connect(phi_k, addr);
    }
    let ld_ra = g.add_node(Op::Load, "ld_ra").id();
    let ld_rb = g.add_node(Op::Load, "ld_rb").id();
    let ld_ia = g.add_node(Op::Load, "ld_ia").id();
    let ld_ib = g.add_node(Op::Load, "ld_ib").id();
    g.connect(addr_ra, ld_ra);
    g.connect(addr_rb, ld_rb);
    g.connect(addr_ia, ld_ia);
    g.connect(addr_ib, ld_ib);

    // t_r = Wr*r[b] - Wi*i[b]; t_i = Wi*r[b] + Wr*i[b].
    let m_wr_rb = g.add_node(Op::Mul, "Wr*rb").constant(WR).id();
    let m_wi_ib = g.add_node(Op::Mul, "Wi*ib").constant(WI).id();
    let m_wi_rb = g.add_node(Op::Mul, "Wi*rb").constant(WI).id();
    let m_wr_ib = g.add_node(Op::Mul, "Wr*ib").constant(WR).id();
    g.connect(ld_rb, m_wr_rb);
    g.connect(ld_ib, m_wi_ib);
    g.connect(ld_rb, m_wi_rb);
    g.connect(ld_ib, m_wr_ib);
    let t_r = g.add_node(Op::Sub, "t_r").id();
    g.connect(m_wr_rb, t_r);
    g.connect(m_wi_ib, t_r);
    let t_i = g.add_node(Op::Add, "t_i").id();
    g.connect(m_wi_rb, t_i);
    g.connect(m_wr_ib, t_i);

    // Butterfly updates and stores.
    let sub_rb = g.add_node(Op::Sub, "ra-tr").id();
    g.connect(ld_ra, sub_rb);
    g.connect(t_r, sub_rb);
    let add_ra = g.add_node(Op::Add, "ra+tr").id();
    g.connect(ld_ra, add_ra);
    g.connect(t_r, add_ra);
    let sub_ib = g.add_node(Op::Sub, "ia-ti").id();
    g.connect(ld_ia, sub_ib);
    g.connect(t_i, sub_ib);
    let add_ia = g.add_node(Op::Add, "ia+ti").id();
    g.connect(ld_ia, add_ia);
    g.connect(t_i, add_ia);

    let st_rb = g.add_node(Op::Store, "st_rb").id();
    g.connect_ports(addr_rb, 0, st_rb, 0);
    g.connect_ports(sub_rb, 0, st_rb, 1);
    let st_ra = g.add_node(Op::Store, "st_ra").id();
    g.connect_ports(addr_ra, 0, st_ra, 0);
    g.connect_ports(add_ra, 0, st_ra, 1);
    let st_ib = g.add_node(Op::Store, "st_ib").id();
    g.connect_ports(addr_ib, 0, st_ib, 0);
    g.connect_ports(sub_ib, 0, st_ib, 1);
    let st_ia = g.add_node(Op::Store, "st_ia").id();
    g.connect_ports(addr_ia, 0, st_ia, 0);
    g.connect_ports(add_ia, 0, st_ia, 1);

    g.validate().expect("fft DFG is valid");

    // Deterministic pseudo-random fixed-point inputs.
    let mut mem = vec![0u32; ib as usize + g_size + 16];
    let mut state = 0xBEEF_u32;
    for i in 0..g_size {
        for base in [RA_BASE as usize, rb as usize, ia as usize, ib as usize] {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            mem[base + i] = (state >> 20) & 0xFFF;
        }
    }

    Kernel {
        name: "fft",
        dfg: g,
        mem,
        iters: g_size,
        iter_marker: phi_k,
        ideal_recurrence: 4,
        reference,
    }
}

/// Host reference butterfly over the same memory layout.
pub fn reference(mem: &[u32], g_size: usize) -> Vec<u32> {
    let rb = rb_base(g_size) as usize;
    let ia = ia_base(g_size) as usize;
    let ib = ib_base(g_size) as usize;
    let ra = RA_BASE as usize;
    let mut m = mem.to_vec();
    for k in 0..g_size {
        let t_r = WR
            .wrapping_mul(m[rb + k])
            .wrapping_sub(WI.wrapping_mul(m[ib + k]));
        let t_i = WI
            .wrapping_mul(m[rb + k])
            .wrapping_add(WR.wrapping_mul(m[ib + k]));
        m[rb + k] = m[ra + k].wrapping_sub(t_r);
        m[ra + k] = m[ra + k].wrapping_add(t_r);
        m[ib + k] = m[ia + k].wrapping_sub(t_i);
        m[ia + k] = m[ia + k].wrapping_add(t_i);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::recurrence_mii;

    #[test]
    fn recurrence_is_four_ops() {
        let k = build_with_group(8);
        assert_eq!(recurrence_mii(&k.dfg), 4.0);
    }

    #[test]
    fn body_is_ilp_rich() {
        // More than 20 PE ops with a recurrence of only 4: lots of ILP.
        let k = build_with_group(8);
        assert!(k.dfg.pe_node_count() >= 20);
    }

    #[test]
    fn reference_butterfly_identity() {
        // r[a]' + r[b]' = 2*r[a] (the butterfly sum/difference property).
        let k = build_with_group(4);
        let m = k.reference_memory();
        for i in 0..4 {
            let ra0 = k.mem[RA_BASE as usize + i];
            let sum = m[RA_BASE as usize + i].wrapping_add(m[rb_base(4) as usize + i]);
            assert_eq!(sum, ra0.wrapping_mul(2));
        }
    }

    #[test]
    fn reference_changes_all_four_arrays() {
        let k = build_with_group(8);
        let m = k.reference_memory();
        for base in [
            RA_BASE as usize,
            rb_base(8) as usize,
            ia_base(8) as usize,
            ib_base(8) as usize,
        ] {
            assert!(
                (0..8).any(|i| m[base + i] != k.mem[base + i]),
                "array at {base} untouched"
            );
        }
    }

    #[test]
    fn default_build_matches_paper_methodology() {
        let k = build();
        assert_eq!(k.iters, 1000);
        assert_eq!(k.ideal_recurrence, 4);
    }
}

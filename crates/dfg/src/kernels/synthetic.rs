//! Synthetic microbenchmarks from the paper's architecture studies.
//!
//! * `cycle_n(N)` — N nodes connected in a cycle, fed by a source and
//!   drained by a sink (Figure 7's `cycle-N` irregular microbenchmark).
//! * `chain(N)` — a regular N-node pipeline with no cycles (Figure 7's
//!   `chain`).
//! * `fig1_dep_chain()` — the four-op loop of Figure 1 with a
//!   multi-cycle inter-iteration dependency.
//! * `fig2_toy()` — the six-node DFG of Figure 2 (A1, A2 feeding a
//!   B→C→D cycle with live-out E).
//! * `fig3_case_study()` — the thirteen-node DFG of Figure 3 (two
//!   live-ins, one live-out, one six-node cycle).

use crate::graph::{Dfg, NodeId};
use crate::op::Op;

/// Handles into a synthetic DFG for measurement.
#[derive(Debug, Clone)]
pub struct Synthetic {
    /// The graph itself.
    pub dfg: Dfg,
    /// Node whose firings count iterations.
    pub iter_marker: NodeId,
    /// Nodes on the recurrence cycle (empty for acyclic graphs).
    pub cycle_nodes: Vec<NodeId>,
}

/// A ring of `n` nodes (one phi with an initial token plus `n - 1`
/// adds), with a source merging into the phi and a sink tapping one of
/// the ring nodes. Throughput on an elastic CGRA is one iteration per
/// `n` cycles.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn cycle_n(n: usize) -> Synthetic {
    assert!(n >= 2, "a cycle needs at least two nodes");
    let mut g = Dfg::new();
    let src = g.add_node(Op::Source, "in").id();
    let phi = g.add_node(Op::Phi, "phi").init(0).id();
    // Source merges into the phi's second port: the phi starts the
    // recurrence with its init token and thereafter alternates are not
    // needed — we wire source to a separate consumer so the ring rate is
    // purely recurrence-limited, as in the paper's microbenchmark.
    let absorb = g.add_node(Op::Sink, "absorb").id();
    g.connect(src, absorb);

    let mut cycle_nodes = vec![phi];
    let mut prev = phi;
    for i in 1..n {
        let node = g.add_node(Op::Add, format!("c{i}")).constant(1).id();
        g.connect(prev, node);
        cycle_nodes.push(node);
        prev = node;
    }
    g.connect(prev, phi);

    let out = g.add_node(Op::Sink, "out").id();
    g.connect(prev, out);
    g.validate().expect("cycle_n builds a valid graph");
    Synthetic {
        dfg: g,
        iter_marker: phi,
        cycle_nodes,
    }
}

/// A straight pipeline of `n` compute nodes between a source and a sink
/// — the regular `chain` microbenchmark. Full throughput is one token
/// per cycle, provided queues are at least two deep.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn chain(n: usize) -> Synthetic {
    assert!(n >= 1, "chain needs at least one node");
    let mut g = Dfg::new();
    let src = g.add_node(Op::Source, "in").id();
    let mut prev = src;
    let mut first = None;
    for i in 0..n {
        let node = g.add_node(Op::Add, format!("s{i}")).constant(1).id();
        g.connect(prev, node);
        if first.is_none() {
            first = Some(node);
        }
        prev = node;
    }
    let out = g.add_node(Op::Sink, "out").id();
    g.connect(prev, out);
    g.validate().expect("chain builds a valid graph");
    Synthetic {
        dfg: g,
        iter_marker: first.expect("n >= 1"),
        cycle_nodes: Vec::new(),
    }
}

/// The Figure 1 toy: `out[i] = func(out[i-1])` where `func` is the
/// four-op chain A→B→C→D, D feeding back to A. Throughput is one
/// iteration every four cycles on an elastic CGRA.
pub fn fig1_dep_chain() -> Synthetic {
    let mut g = Dfg::new();
    let a = g.add_node(Op::Phi, "A").init(1).id();
    let b = g.add_node(Op::Add, "B").constant(1).id();
    let c = g.add_node(Op::Mul, "C").constant(3).id();
    let d = g.add_node(Op::Xor, "D").constant(0x55).id();
    let out = g.add_node(Op::Sink, "out").id();
    g.connect(a, b);
    g.connect(b, c);
    g.connect(c, d);
    g.connect(d, a);
    g.connect(d, out);
    g.validate().expect("fig1 builds a valid graph");
    Synthetic {
        dfg: g,
        iter_marker: a,
        cycle_nodes: vec![a, b, c, d],
    }
}

/// Handles into the Figure 2 toy graph.
#[derive(Debug, Clone)]
pub struct Fig2Toy {
    /// The graph.
    pub dfg: Dfg,
    /// Live-in chain nodes A1, A2 (candidates for resting).
    pub a_chain: [NodeId; 2],
    /// The three-node recurrence B, C, D (candidates for sprinting).
    pub cycle: [NodeId; 3],
    /// Live-out E.
    pub e: NodeId,
    /// Iteration marker (the phi node B).
    pub iter_marker: NodeId,
}

/// The Figure 2 toy DFG: source → A1 → A2 → (B → C → D cycle) with C
/// tapping out to E. Elastic execution yields one iteration every three
/// cycles; resting A1/A2 to 1/3 rate does not hurt throughput; resting
/// A1/A2 to 1/2 while sprinting B/C/D by 1.5× yields one iteration
/// every two cycles (paper Figure 2(c)).
pub fn fig2_toy() -> Fig2Toy {
    let mut g = Dfg::new();
    let src = g.add_node(Op::Source, "in").id();
    let a1 = g.add_node(Op::Load, "A1").id();
    let a2 = g.add_node(Op::Add, "A2").constant(1).id();
    let b = g.add_node(Op::Phi, "B").init(0).id();
    let c = g.add_node(Op::Add, "C").id();
    let d = g.add_node(Op::Add, "D").constant(1).id();
    let e = g.add_node(Op::Sink, "E").id();
    g.connect(src, a1);
    g.connect(a1, a2);
    // A2 feeds C (fresh data each iteration); the B->C->D ring carries
    // the recurrence; C also taps out to the live-out E.
    g.connect(b, c);
    g.connect(a2, c);
    g.connect(c, d);
    g.connect(d, b);
    g.connect(c, e);
    g.validate().expect("fig2 builds a valid graph");
    Fig2Toy {
        dfg: g,
        a_chain: [a1, a2],
        cycle: [b, c, d],
        e,
        iter_marker: b,
    }
}

/// Handles into the Figure 3 case-study graph.
#[derive(Debug, Clone)]
pub struct Fig3CaseStudy {
    /// The graph.
    pub dfg: Dfg,
    /// The six-node recurrence cycle.
    pub cycle: Vec<NodeId>,
    /// The two live-in loads.
    pub live_ins: [NodeId; 2],
    /// The live-out store.
    pub live_out: NodeId,
    /// Iteration marker.
    pub iter_marker: NodeId,
}

/// The Figure 3 synthetic case study: thirteen nodes, two live-ins
/// (loads), one live-out (store), and one six-node cycle. The exact
/// topology is not given in the paper; this reconstruction matches the
/// stated node/live-in/live-out/cycle counts and the figure's sketch
/// (a column of adds feeding the cycle, the cycle feeding the store).
pub fn fig3_case_study() -> Fig3CaseStudy {
    let mut g = Dfg::new();
    let src0 = g.add_node(Op::Source, "in0").id();
    let src1 = g.add_node(Op::Source, "in1").id();
    // Two live-in loads (L in the figure).
    let l0 = g.add_node(Op::Load, "L0").id();
    let l1 = g.add_node(Op::Load, "L1").id();
    g.connect(src0, l0);
    g.connect(src1, l1);
    // Feeder adds outside the cycle.
    let f0 = g.add_node(Op::Add, "f0").constant(1).id();
    let f1 = g.add_node(Op::Add, "f1").constant(2).id();
    let f2 = g.add_node(Op::Add, "f2").id();
    g.connect(l0, f0);
    g.connect(l1, f1);
    g.connect(f0, f2);
    g.connect(f1, f2);
    // Six-node cycle: phi -> 5 adds -> back to phi.
    let phi = g.add_node(Op::Phi, "k0").init(0).id();
    let mut cycle = vec![phi];
    let mut prev = phi;
    for i in 1..6 {
        let node = g.add_node(Op::Add, format!("k{i}")).constant(1).id();
        g.connect(prev, node);
        cycle.push(node);
        prev = node;
    }
    g.connect(prev, phi);
    // The feeder joins the cycle output with one more add, then stores.
    let join = g.add_node(Op::Add, "join").id();
    g.connect(f2, join);
    g.connect(prev, join);
    let store = g.add_node(Op::Store, "S").constant(0).id();
    g.connect(join, store);
    let out = g.add_node(Op::Sink, "out").id();
    g.connect(store, out);
    g.validate().expect("fig3 builds a valid graph");

    let pe_nodes = g.pe_node_count();
    debug_assert_eq!(pe_nodes, 13, "figure 3 has thirteen nodes");

    Fig3CaseStudy {
        dfg: g,
        cycle,
        live_ins: [l0, l1],
        live_out: store,
        iter_marker: phi,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{recurrence_mii, simple_cycles};

    #[test]
    fn cycle_n_has_expected_recurrence() {
        for n in 2..9 {
            let s = cycle_n(n);
            assert_eq!(recurrence_mii(&s.dfg) as usize, n);
            assert_eq!(s.cycle_nodes.len(), n);
        }
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn cycle_n_rejects_tiny() {
        cycle_n(1);
    }

    #[test]
    fn chain_is_acyclic() {
        let s = chain(6);
        assert_eq!(recurrence_mii(&s.dfg), 0.0);
        assert!(simple_cycles(&s.dfg).is_empty());
        assert_eq!(s.dfg.pe_node_count(), 6);
    }

    #[test]
    fn fig1_is_a_four_cycle() {
        let s = fig1_dep_chain();
        assert_eq!(recurrence_mii(&s.dfg), 4.0);
    }

    #[test]
    fn fig2_cycle_is_three_nodes() {
        let t = fig2_toy();
        assert_eq!(recurrence_mii(&t.dfg), 3.0);
        let cycles = simple_cycles(&t.dfg);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 3);
    }

    #[test]
    fn fig3_matches_paper_counts() {
        let c = fig3_case_study();
        assert_eq!(c.dfg.pe_node_count(), 13);
        assert_eq!(c.dfg.sources().count(), 2);
        assert_eq!(recurrence_mii(&c.dfg), 6.0);
        assert_eq!(c.cycle.len(), 6);
    }
}

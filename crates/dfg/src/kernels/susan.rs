//! `susan` — automotive image-recognition smoothing kernel (paper
//! Figure 9c).
//!
//! ```c
//! for (x = -S; x <= N; x++) {
//!   bright = total + *ip++;
//!   tmp    = *dpt++ * *(cp - bright);
//!   area  += tmp;
//!   total += tmp * bright;
//! }
//! ```
//!
//! The loop-carried values are `total` (a five-op recurrence through
//! the clamped brightness and the `tmp * bright` product:
//! `phi → add → and → mul → add → phi`, plus the direct `phi → add`
//! accumulate) and `area` (a trivial two-op accumulate). The
//! brightness-indexed lookup `*(cp - bright)`
//! is modeled as a streaming coefficient load `cp[x]` so that the SRAM
//! access does not lengthen the recurrence beyond the paper's ideal of
//! five (the original lookup would make the recurrence
//! address-dependent, which the paper's mapped DFG does not show).

use super::Kernel;
use crate::graph::Dfg;
use crate::op::Op;

/// Base of the `ip` (brightness delta) array.
pub const IP_BASE: u32 = 16;
/// Default iteration count (paper: 1000 iterations of random data).
pub const DEFAULT_N: usize = 1000;

/// Base of the `dpt` (distance weight) array for `n` iterations.
pub fn dpt_base(n: usize) -> u32 {
    IP_BASE + n as u32 + 8
}
/// Base of the `cp` (coefficient) array for `n` iterations.
pub fn cp_base(n: usize) -> u32 {
    dpt_base(n) + n as u32 + 8
}
/// Base of the per-iteration `area` output array for `n` iterations.
pub fn out_base(n: usize) -> u32 {
    cp_base(n) + n as u32 + 8
}

/// Build the default 1000-iteration kernel.
pub fn build() -> Kernel {
    build_with_iters(DEFAULT_N)
}

/// Build a `susan` kernel running `n` iterations.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn build_with_iters(n: usize) -> Kernel {
    assert!(n > 0, "susan needs at least one iteration");
    let dpt = dpt_base(n);
    let cp = cp_base(n);
    let out_b = out_base(n);

    let mut g = Dfg::new();
    // Induction variable with loop-exit branch.
    let phi_x = g.add_node(Op::Phi, "x").init(0).id();
    let add_x = g.add_node(Op::Add, "x+1").constant(1).id();
    let lt = g.add_node(Op::Lt, "x<N").constant(n as u32).id();
    let br_x = g.add_node(Op::Br, "br_x").id();
    g.connect(phi_x, add_x);
    g.connect(add_x, lt);
    g.connect_ports(add_x, 0, br_x, 0);
    g.connect_ports(lt, 0, br_x, 1);
    g.connect_ports(br_x, 0, phi_x, 1);

    // Streaming loads ip[x], dpt[x], cp[x].
    let addr_ip = g.add_node(Op::Add, "x+ip").constant(IP_BASE).id();
    let ld_ip = g.add_node(Op::Load, "ld_ip").id();
    g.connect(phi_x, addr_ip);
    g.connect(addr_ip, ld_ip);
    let addr_dpt = g.add_node(Op::Add, "x+dpt").constant(dpt).id();
    let ld_dpt = g.add_node(Op::Load, "ld_dpt").id();
    g.connect(phi_x, addr_dpt);
    g.connect(addr_dpt, ld_dpt);
    let addr_cp = g.add_node(Op::Add, "x+cp").constant(cp).id();
    let ld_cp = g.add_node(Op::Load, "ld_cp").id();
    g.connect(phi_x, addr_cp);
    g.connect(addr_cp, ld_cp);

    // tmp = dpt[x] * cp[x].
    let tmp = g.add_node(Op::Mul, "tmp").id();
    g.connect(ld_dpt, tmp);
    g.connect(ld_cp, tmp);

    // total recurrence: bright = (total + ip[x]) & 0xFF (brightness is
    // an 8-bit image quantity); total += tmp * bright. Five ops around
    // the cycle: phi -> add -> and -> mul -> add.
    let phi_total = g.add_node(Op::Phi, "total").init(0).id();
    let bright = g.add_node(Op::Add, "bright").id();
    g.connect(phi_total, bright);
    g.connect(ld_ip, bright);
    let clamp = g.add_node(Op::And, "bright&255").constant(0xFF).id();
    g.connect(bright, clamp);
    let tb = g.add_node(Op::Mul, "tmp*bright").id();
    g.connect(tmp, tb);
    g.connect(clamp, tb);
    let total_new = g.add_node(Op::Add, "total'").id();
    g.connect(phi_total, total_new);
    g.connect(tb, total_new);
    g.connect_ports(total_new, 0, phi_total, 1);

    // area recurrence: area += tmp, streamed out per iteration.
    let phi_area = g.add_node(Op::Phi, "area").init(0).id();
    let area_new = g.add_node(Op::Add, "area'").id();
    g.connect(phi_area, area_new);
    g.connect(tmp, area_new);
    g.connect_ports(area_new, 0, phi_area, 1);

    let addr_out = g.add_node(Op::Add, "x+out").constant(out_b).id();
    g.connect(phi_x, addr_out);
    let st = g.add_node(Op::Store, "st").id();
    g.connect_ports(addr_out, 0, st, 0);
    g.connect_ports(area_new, 0, st, 1);
    let sink = g.add_node(Op::Sink, "out").id();
    g.connect(st, sink);

    g.validate().expect("susan DFG is valid");

    // Deterministic pseudo-random small-valued inputs.
    let mut mem = vec![0u32; out_b as usize + n + 16];
    let mut state = 0xACE1_u32;
    for i in 0..n {
        state = state.wrapping_mul(1664525).wrapping_add(1013904223);
        mem[IP_BASE as usize + i] = (state >> 24) & 0x3F;
        mem[dpt as usize + i] = (state >> 16) & 0xF;
        mem[cp as usize + i] = (state >> 8) & 0xF;
    }

    Kernel {
        name: "susan",
        dfg: g,
        mem,
        iters: n,
        iter_marker: phi_total,
        ideal_recurrence: 5,
        reference,
    }
}

/// Host reference implementation over the same memory layout.
pub fn reference(mem: &[u32], n: usize) -> Vec<u32> {
    let dpt = dpt_base(n) as usize;
    let cp = cp_base(n) as usize;
    let out_b = out_base(n) as usize;
    let mut m = mem.to_vec();
    let mut total: u32 = 0;
    let mut area: u32 = 0;
    for x in 0..n {
        let bright = total.wrapping_add(m[IP_BASE as usize + x]) & 0xFF;
        let tmp = m[dpt + x].wrapping_mul(m[cp + x]);
        area = area.wrapping_add(tmp);
        total = total.wrapping_add(tmp.wrapping_mul(bright));
        m[out_b + x] = area;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{recurrence_mii, simple_cycles};

    #[test]
    fn recurrence_is_five_ops() {
        let k = build_with_iters(8);
        assert_eq!(recurrence_mii(&k.dfg), 5.0);
    }

    #[test]
    fn has_the_expected_cycle_family() {
        let k = build_with_iters(8);
        let mut lens: Vec<usize> = simple_cycles(&k.dfg).iter().map(|c| c.len()).collect();
        lens.sort();
        // area and the direct total accumulate: 2-cycles; x through the
        // branch data path: 3-cycle; x through the condition: 4-cycle;
        // total through bright/clamp/mul: the critical 5-cycle.
        assert_eq!(lens, vec![2, 2, 3, 4, 5]);
    }

    #[test]
    fn reference_area_is_monotone_prefix_sum() {
        let k = build_with_iters(32);
        let m = k.reference_memory();
        let o = out_base(32) as usize;
        for x in 1..32 {
            assert!(m[o + x] >= m[o + x - 1], "area accumulates nonneg tmp");
        }
    }

    #[test]
    fn reference_matches_direct_recomputation() {
        let k = build_with_iters(16);
        let m = k.reference_memory();
        let mut area = 0u32;
        for x in 0..16 {
            let tmp = k.mem[dpt_base(16) as usize + x] * k.mem[cp_base(16) as usize + x];
            area = area.wrapping_add(tmp);
            assert_eq!(m[out_base(16) as usize + x], area);
        }
    }

    #[test]
    fn default_build_matches_paper_methodology() {
        let k = build();
        assert_eq!(k.iters, 1000);
        assert_eq!(k.ideal_recurrence, 5);
    }
}

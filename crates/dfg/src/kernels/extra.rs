//! Extension kernels beyond the paper's evaluation set.
//!
//! Three more irregular inner loops in the same spirit as Figure 9,
//! used to show the stack generalizes past the five published
//! kernels:
//!
//! * [`crc32`] — table-driven CRC-32: like `llist`, the recurrence
//!   runs *through a load* (the table lookup depends on the running
//!   CRC), so nothing but DVFS can speed it up.
//! * [`spmv_row`] — a sparse dot product with a data-dependent gather
//!   (`x[col[j]]`): irregular addressing with a short accumulator
//!   recurrence.
//! * [`max_scan`] — a running arg-max with data-dependent control
//!   flow (if-converted to br/phi), writing the running maximum per
//!   element.

use super::Kernel;
use crate::graph::Dfg;
use crate::op::Op;

// --------------------------------------------------------------------
// crc32
// --------------------------------------------------------------------

/// Base of the 256-entry CRC table.
pub const CRC_TABLE_BASE: u32 = 16;
/// Base of the message bytes.
pub const CRC_DATA_BASE: u32 = CRC_TABLE_BASE + 256;
/// Word address receiving the final CRC each iteration (running CRC
/// trace, one word per byte).
pub fn crc_out_base(n: usize) -> u32 {
    CRC_DATA_BASE + n as u32 + 8
}
/// Initial CRC value.
pub const CRC_INIT: u32 = 0xFFFF_FFFF;

/// Build a CRC-32 kernel over `n` message bytes.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn crc32(n: usize) -> Kernel {
    assert!(n > 0, "crc needs at least one byte");
    let out = crc_out_base(n);

    let mut g = Dfg::new();
    // Index loop.
    let phi_i = g.add_node(Op::Phi, "i").init(0).id();
    let add_i = g.add_node(Op::Add, "i+1").constant(1).id();
    let lt = g.add_node(Op::Lt, "i<N").constant(n as u32).id();
    let br_i = g.add_node(Op::Br, "br_i").id();
    g.connect(phi_i, add_i);
    g.connect(add_i, lt);
    g.connect_ports(add_i, 0, br_i, 0);
    g.connect_ports(lt, 0, br_i, 1);
    g.connect_ports(br_i, 0, phi_i, 1);

    // Message byte.
    let addr_d = g.add_node(Op::Add, "i+data").constant(CRC_DATA_BASE).id();
    g.connect(phi_i, addr_d);
    let ld_d = g.add_node(Op::Load, "ld_d").id();
    g.connect(addr_d, ld_d);

    // CRC recurrence: crc' = (crc >> 8) ^ T[(crc ^ byte) & 0xFF].
    let phi_c = g.add_node(Op::Phi, "crc").init(CRC_INIT).id();
    let x1 = g.add_node(Op::Xor, "crc^d").id();
    g.connect(phi_c, x1);
    g.connect(ld_d, x1);
    let msk = g.add_node(Op::And, "&255").constant(255).id();
    g.connect(x1, msk);
    let addr_t = g.add_node(Op::Add, "t+idx").constant(CRC_TABLE_BASE).id();
    g.connect(msk, addr_t);
    let ld_t = g.add_node(Op::Load, "ld_t").id();
    g.connect(addr_t, ld_t);
    let shr = g.add_node(Op::Srl, "crc>>8").constant(8).id();
    g.connect(phi_c, shr);
    let x2 = g.add_node(Op::Xor, "crc'").id();
    g.connect(shr, x2);
    g.connect(ld_t, x2);
    g.connect_ports(x2, 0, phi_c, 1);

    // Trace the running CRC.
    let addr_o = g.add_node(Op::Add, "i+out").constant(out).id();
    g.connect(phi_i, addr_o);
    let st = g.add_node(Op::Store, "st").id();
    g.connect_ports(addr_o, 0, st, 0);
    g.connect_ports(x2, 0, st, 1);
    let sink = g.add_node(Op::Sink, "out").id();
    g.connect(st, sink);

    g.validate().expect("crc32 DFG is valid");

    let mut mem = vec![0u32; out as usize + n + 16];
    // Standard CRC-32 (reflected, poly 0xEDB88320) table.
    for (b, slot) in mem[CRC_TABLE_BASE as usize..][..256].iter_mut().enumerate() {
        let mut c = b as u32;
        for _ in 0..8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
        }
        *slot = c;
    }
    let mut state = 0x5EED_u32;
    for i in 0..n {
        state = state.wrapping_mul(1664525).wrapping_add(1013904223);
        mem[CRC_DATA_BASE as usize + i] = state >> 24;
    }

    Kernel {
        name: "crc32",
        dfg: g,
        mem,
        iters: n,
        iter_marker: phi_c,
        // phi -> xor -> and -> add -> load -> xor: six ops through the
        // table lookup.
        ideal_recurrence: 6,
        reference: crc32_reference,
    }
}

/// Host reference for [`crc32`].
pub fn crc32_reference(mem: &[u32], n: usize) -> Vec<u32> {
    let mut m = mem.to_vec();
    let out = crc_out_base(n) as usize;
    let mut crc = CRC_INIT;
    for i in 0..n {
        let byte = m[CRC_DATA_BASE as usize + i];
        let idx = ((crc ^ byte) & 0xFF) as usize;
        crc = (crc >> 8) ^ m[CRC_TABLE_BASE as usize + idx];
        m[out + i] = crc;
    }
    m
}

// --------------------------------------------------------------------
// spmv_row
// --------------------------------------------------------------------

/// Base of the nonzero values.
pub const SPMV_VAL_BASE: u32 = 16;
/// Base of the column indices for `n` nonzeros.
pub fn spmv_col_base(n: usize) -> u32 {
    SPMV_VAL_BASE + n as u32 + 8
}
/// Base of the dense vector (256 entries).
pub fn spmv_x_base(n: usize) -> u32 {
    spmv_col_base(n) + n as u32 + 8
}
/// Base of the running dot-product trace.
pub fn spmv_out_base(n: usize) -> u32 {
    spmv_x_base(n) + 256 + 8
}

/// Build a sparse row dot-product kernel over `n` nonzeros:
/// `acc += val[j] * x[col[j]]`, tracing the running sum.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn spmv_row(n: usize) -> Kernel {
    assert!(n > 0, "spmv needs at least one nonzero");
    let colb = spmv_col_base(n);
    let xb = spmv_x_base(n);
    let outb = spmv_out_base(n);

    let mut g = Dfg::new();
    let phi_j = g.add_node(Op::Phi, "j").init(0).id();
    let add_j = g.add_node(Op::Add, "j+1").constant(1).id();
    let lt = g.add_node(Op::Lt, "j<N").constant(n as u32).id();
    let br_j = g.add_node(Op::Br, "br_j").id();
    g.connect(phi_j, add_j);
    g.connect(add_j, lt);
    g.connect_ports(add_j, 0, br_j, 0);
    g.connect_ports(lt, 0, br_j, 1);
    g.connect_ports(br_j, 0, phi_j, 1);

    let addr_v = g.add_node(Op::Add, "j+val").constant(SPMV_VAL_BASE).id();
    g.connect(phi_j, addr_v);
    let ld_v = g.add_node(Op::Load, "ld_val").id();
    g.connect(addr_v, ld_v);

    let addr_c = g.add_node(Op::Add, "j+col").constant(colb).id();
    g.connect(phi_j, addr_c);
    let ld_c = g.add_node(Op::Load, "ld_col").id();
    g.connect(addr_c, ld_c);

    // The gather: x[col[j]].
    let addr_x = g.add_node(Op::Add, "col+x").constant(xb).id();
    g.connect(ld_c, addr_x);
    let ld_x = g.add_node(Op::Load, "ld_x").id();
    g.connect(addr_x, ld_x);

    let prod = g.add_node(Op::Mul, "v*x").id();
    g.connect(ld_v, prod);
    g.connect(ld_x, prod);

    let phi_a = g.add_node(Op::Phi, "acc").init(0).id();
    let acc = g.add_node(Op::Add, "acc'").id();
    g.connect(phi_a, acc);
    g.connect(prod, acc);
    g.connect_ports(acc, 0, phi_a, 1);

    let addr_o = g.add_node(Op::Add, "j+out").constant(outb).id();
    g.connect(phi_j, addr_o);
    let st = g.add_node(Op::Store, "st").id();
    g.connect_ports(addr_o, 0, st, 0);
    g.connect_ports(acc, 0, st, 1);
    let sink = g.add_node(Op::Sink, "out").id();
    g.connect(st, sink);

    g.validate().expect("spmv DFG is valid");

    let mut mem = vec![0u32; outb as usize + n + 16];
    let mut state = 0xC0FFEE_u32;
    for i in 0..n {
        state = state.wrapping_mul(1664525).wrapping_add(1013904223);
        mem[SPMV_VAL_BASE as usize + i] = (state >> 20) & 0xFF;
        mem[colb as usize + i] = (state >> 8) & 0xFF; // 0..255
    }
    for i in 0..256 {
        state = state.wrapping_mul(1664525).wrapping_add(1013904223);
        mem[xb as usize + i] = (state >> 16) & 0xFFF;
    }

    Kernel {
        name: "spmv",
        dfg: g,
        mem,
        iters: n,
        iter_marker: phi_a,
        // The accumulator recurrence is only two ops; the index loop's
        // four-op exit branch is the binding cycle.
        ideal_recurrence: 4,
        reference: spmv_reference,
    }
}

/// Host reference for [`spmv_row`].
pub fn spmv_reference(mem: &[u32], n: usize) -> Vec<u32> {
    let mut m = mem.to_vec();
    let colb = spmv_col_base(n) as usize;
    let xb = spmv_x_base(n) as usize;
    let outb = spmv_out_base(n) as usize;
    let mut acc = 0u32;
    for j in 0..n {
        let v = m[SPMV_VAL_BASE as usize + j];
        let c = m[colb + j] as usize;
        acc = acc.wrapping_add(v.wrapping_mul(m[xb + c]));
        m[outb + j] = acc;
    }
    m
}

// --------------------------------------------------------------------
// max_scan
// --------------------------------------------------------------------

/// Base of the input values.
pub const SCAN_IN_BASE: u32 = 16;
/// Base of the running-maximum output for `n` elements.
pub fn scan_out_base(n: usize) -> u32 {
    SCAN_IN_BASE + n as u32 + 8
}

/// Build a running-maximum kernel: `if (v > best) best = v;
/// out[i] = best` — data-dependent control converted to br/phi.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn max_scan(n: usize) -> Kernel {
    assert!(n > 0, "scan needs at least one element");
    let outb = scan_out_base(n);

    let mut g = Dfg::new();
    let phi_i = g.add_node(Op::Phi, "i").init(0).id();
    let add_i = g.add_node(Op::Add, "i+1").constant(1).id();
    let lt = g.add_node(Op::Lt, "i<N").constant(n as u32).id();
    let br_i = g.add_node(Op::Br, "br_i").id();
    g.connect(phi_i, add_i);
    g.connect(add_i, lt);
    g.connect_ports(add_i, 0, br_i, 0);
    g.connect_ports(lt, 0, br_i, 1);
    g.connect_ports(br_i, 0, phi_i, 1);

    let addr_v = g.add_node(Op::Add, "i+in").constant(SCAN_IN_BASE).id();
    g.connect(phi_i, addr_v);
    let ld_v = g.add_node(Op::Load, "ld_v").id();
    g.connect(addr_v, ld_v);

    // best recurrence with steered update: gt picks v or best.
    let phi_b = g.add_node(Op::Phi, "best").init(0).id();
    let gt = g.add_node(Op::Gt, "v>best").id();
    g.connect(ld_v, gt);
    g.connect(phi_b, gt);
    // br_v steers v: true side -> new best; br_b steers old best:
    // false side -> keeps it.
    let br_v = g.add_node(Op::Br, "br_v").id();
    g.connect_ports(ld_v, 0, br_v, 0);
    g.connect_ports(gt, 0, br_v, 1);
    let br_b = g.add_node(Op::Br, "br_b").id();
    g.connect_ports(phi_b, 0, br_b, 0);
    g.connect_ports(gt, 0, br_b, 1);
    let merge = g.add_node(Op::Phi, "best'").id();
    g.connect_ports(br_v, 0, merge, 0); // v when v > best
    g.connect_ports(br_b, 1, merge, 1); // old best otherwise
    g.connect_ports(merge, 0, phi_b, 1);

    let addr_o = g.add_node(Op::Add, "i+out").constant(outb).id();
    g.connect(phi_i, addr_o);
    let st = g.add_node(Op::Store, "st").id();
    g.connect_ports(addr_o, 0, st, 0);
    g.connect_ports(merge, 0, st, 1);
    let sink = g.add_node(Op::Sink, "out").id();
    g.connect(st, sink);

    g.validate().expect("max_scan DFG is valid");

    let mut mem = vec![0u32; outb as usize + n + 16];
    let mut state = 0xDA7A_u32;
    for i in 0..n {
        state = state.wrapping_mul(1664525).wrapping_add(1013904223);
        mem[SCAN_IN_BASE as usize + i] = (state >> 16) & 0x7FFF;
    }

    Kernel {
        name: "max_scan",
        dfg: g,
        mem,
        iters: n,
        iter_marker: phi_b,
        // best recurrence: phi -> gt -> br -> phi-merge -> phi (the
        // longest of the steering paths).
        ideal_recurrence: 4,
        reference: max_scan_reference,
    }
}

/// Host reference for [`max_scan`].
pub fn max_scan_reference(mem: &[u32], n: usize) -> Vec<u32> {
    let mut m = mem.to_vec();
    let outb = scan_out_base(n) as usize;
    let mut best = 0u32;
    for i in 0..n {
        let v = m[SCAN_IN_BASE as usize + i];
        if (v as i32) > (best as i32) {
            best = v;
        }
        m[outb + i] = best;
    }
    m
}

/// All three extension kernels at a given iteration count.
pub fn extra_kernels(n: usize) -> Vec<Kernel> {
    vec![crc32(n), spmv_row(n), max_scan(n)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::recurrence_mii;

    #[test]
    fn extension_kernels_validate_and_fit() {
        for k in extra_kernels(32) {
            k.dfg
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", k.name));
            assert!(k.dfg.pe_node_count() <= 64, "{}", k.name);
        }
    }

    #[test]
    fn recurrences_match_declared_ideals() {
        for k in extra_kernels(32) {
            assert_eq!(
                recurrence_mii(&k.dfg) as usize,
                k.ideal_recurrence,
                "{}",
                k.name
            );
        }
    }

    #[test]
    fn crc32_reference_matches_a_known_vector() {
        // CRC-32 of "123456789" is 0xCBF43926 (with final xor-out).
        let mut k = crc32(9);
        for (i, b) in b"123456789".iter().enumerate() {
            k.mem[CRC_DATA_BASE as usize + i] = u32::from(*b);
        }
        let m = (k.reference)(&k.mem, 9);
        let crc = m[crc_out_base(9) as usize + 8] ^ 0xFFFF_FFFF;
        assert_eq!(crc, 0xCBF4_3926);
    }

    #[test]
    fn spmv_gather_indices_stay_in_range() {
        let k = spmv_row(64);
        let colb = spmv_col_base(64) as usize;
        for j in 0..64 {
            assert!(k.mem[colb + j] < 256);
        }
        let m = k.reference_memory();
        let outb = spmv_out_base(64) as usize;
        // Running sums are non-decreasing (all inputs nonnegative).
        for j in 1..64 {
            assert!(m[outb + j] >= m[outb + j - 1]);
        }
    }

    #[test]
    fn max_scan_output_is_monotone() {
        let k = max_scan(64);
        let m = k.reference_memory();
        let outb = scan_out_base(64) as usize;
        for i in 1..64 {
            assert!(m[outb + i] >= m[outb + i - 1]);
        }
        // And equals the prefix maximum.
        let mut best = 0;
        for i in 0..64 {
            best = best.max(k.mem[SCAN_IN_BASE as usize + i]);
            assert_eq!(m[outb + i], best);
        }
    }
}

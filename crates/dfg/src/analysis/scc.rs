//! Strongly-connected-component analysis (iterative Tarjan).
//!
//! Recurrence (inter-iteration) dependencies appear as non-trivial SCCs in
//! the dataflow graph; the compiler and the analytical model both need to
//! know which nodes participate in them.

use crate::graph::{Dfg, NodeId};

/// The strongly connected components of a [`Dfg`], in reverse topological
/// order of the condensation (callees before callers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SccDecomposition {
    components: Vec<Vec<NodeId>>,
    component_of: Vec<usize>,
}

impl SccDecomposition {
    /// Compute the SCCs of `graph` with an iterative Tarjan traversal.
    pub fn compute(graph: &Dfg) -> SccDecomposition {
        let n = graph.node_count();
        const UNVISITED: usize = usize::MAX;
        let mut index = vec![UNVISITED; n];
        let mut lowlink = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut components: Vec<Vec<NodeId>> = Vec::new();
        let mut component_of = vec![usize::MAX; n];

        // Iterative Tarjan: the call stack holds (node, iterator position,
        // child-to-merge) frames.
        for root in 0..n {
            if index[root] != UNVISITED {
                continue;
            }
            let mut call: Vec<(usize, usize)> = vec![(root, 0)];
            index[root] = next_index;
            lowlink[root] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root] = true;

            while let Some(&mut (v, ref mut child)) = call.last_mut() {
                let succs: Vec<usize> = graph
                    .successors(NodeId(v as u32))
                    .map(|s| s.index())
                    .collect();
                if *child < succs.len() {
                    let w = succs[*child];
                    *child += 1;
                    if index[w] == UNVISITED {
                        index[w] = next_index;
                        lowlink[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        call.push((w, 0));
                    } else if on_stack[w] {
                        lowlink[v] = lowlink[v].min(index[w]);
                    }
                } else {
                    // Post-order: pop SCC root, propagate lowlink upward.
                    if lowlink[v] == index[v] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            component_of[w] = components.len();
                            comp.push(NodeId(w as u32));
                            if w == v {
                                break;
                            }
                        }
                        comp.sort();
                        components.push(comp);
                    }
                    call.pop();
                    if let Some(&mut (parent, _)) = call.last_mut() {
                        lowlink[parent] = lowlink[parent].min(lowlink[v]);
                    }
                }
            }
        }

        SccDecomposition {
            components,
            component_of,
        }
    }

    /// All components, each a sorted list of member nodes.
    pub fn components(&self) -> &[Vec<NodeId>] {
        &self.components
    }

    /// Index of the component containing `node`.
    pub fn component_of(&self, node: NodeId) -> usize {
        self.component_of[node.index()]
    }

    /// Components with more than one node, or a single node with a
    /// self-loop — i.e. the recurrence regions of the graph.
    pub fn cyclic_components<'a>(
        &'a self,
        graph: &'a Dfg,
    ) -> impl Iterator<Item = &'a Vec<NodeId>> {
        self.components
            .iter()
            .filter(move |comp| comp.len() > 1 || graph.successors(comp[0]).any(|s| s == comp[0]))
    }

    /// True if `node` participates in any cycle.
    pub fn in_cycle(&self, graph: &Dfg, node: NodeId) -> bool {
        let comp = &self.components[self.component_of(node)];
        comp.len() > 1 || graph.successors(node).any(|s| s == node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;

    #[test]
    fn acyclic_graph_has_singleton_components() {
        let mut g = Dfg::new();
        let a = g.add_node(Op::Source, "a").id();
        let b = g.add_node(Op::Add, "b").constant(0).id();
        let c = g.add_node(Op::Sink, "c").id();
        g.connect(a, b);
        g.connect(b, c);
        let scc = SccDecomposition::compute(&g);
        assert_eq!(scc.components().len(), 3);
        assert_eq!(scc.cyclic_components(&g).count(), 0);
        assert!(!scc.in_cycle(&g, b));
    }

    #[test]
    fn three_node_cycle_is_one_component() {
        let mut g = Dfg::new();
        let phi = g.add_node(Op::Phi, "phi").init(0).id();
        let b = g.add_node(Op::Add, "b").constant(1).id();
        let c = g.add_node(Op::Mul, "c").constant(1).id();
        let out = g.add_node(Op::Sink, "out").id();
        g.connect(phi, b);
        g.connect(b, c);
        g.connect(c, phi);
        g.connect(c, out);
        let scc = SccDecomposition::compute(&g);
        let cyclic: Vec<_> = scc.cyclic_components(&g).collect();
        assert_eq!(cyclic.len(), 1);
        assert_eq!(cyclic[0].len(), 3);
        assert!(scc.in_cycle(&g, phi));
        assert!(!scc.in_cycle(&g, out));
        assert_eq!(scc.component_of(phi), scc.component_of(b));
        assert_eq!(scc.component_of(phi), scc.component_of(c));
        assert_ne!(scc.component_of(phi), scc.component_of(out));
    }

    #[test]
    fn self_loop_counts_as_cycle() {
        let mut g = Dfg::new();
        let phi = g.add_node(Op::Phi, "acc").init(0).id();
        g.connect(phi, phi);
        let scc = SccDecomposition::compute(&g);
        assert_eq!(scc.cyclic_components(&g).count(), 1);
        assert!(scc.in_cycle(&g, phi));
    }

    #[test]
    fn two_disjoint_cycles() {
        let mut g = Dfg::new();
        let a1 = g.add_node(Op::Phi, "a1").init(0).id();
        let a2 = g.add_node(Op::Add, "a2").constant(1).id();
        g.connect(a1, a2);
        g.connect(a2, a1);
        let b1 = g.add_node(Op::Phi, "b1").init(0).id();
        let b2 = g.add_node(Op::Add, "b2").constant(1).id();
        let b3 = g.add_node(Op::Add, "b3").constant(1).id();
        g.connect(b1, b2);
        g.connect(b2, b3);
        g.connect(b3, b1);
        let scc = SccDecomposition::compute(&g);
        let mut sizes: Vec<usize> = scc.cyclic_components(&g).map(|c| c.len()).collect();
        sizes.sort();
        assert_eq!(sizes, vec![2, 3]);
    }

    #[test]
    fn components_in_reverse_topological_order() {
        // a -> b: b's component must be emitted before a's.
        let mut g = Dfg::new();
        let a = g.add_node(Op::Source, "a").id();
        let b = g.add_node(Op::Sink, "b").id();
        g.connect(a, b);
        let scc = SccDecomposition::compute(&g);
        let pos_a = scc.component_of(a);
        let pos_b = scc.component_of(b);
        assert!(pos_b < pos_a);
    }
}

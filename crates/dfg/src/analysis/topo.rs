//! Topological ordering with recurrence-edge exclusion.
//!
//! Placement and several models need a forward order of the DFG. The
//! graph may contain cycles (recurrences), so ordering is performed on
//! the graph minus its back edges — exactly the forward dataflow order
//! tokens follow within one iteration.

use crate::graph::{Dfg, EdgeId, NodeId};
use std::collections::HashSet;

/// A topological order of the DFG with its recurrence (back) edges
/// removed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopoOrder {
    order: Vec<NodeId>,
    rank: Vec<usize>,
    excluded: Vec<EdgeId>,
}

impl TopoOrder {
    /// Compute a forward order of `graph`, ignoring recurrence edges.
    pub fn compute(graph: &Dfg) -> TopoOrder {
        let excluded: Vec<EdgeId> = graph.recurrence_edges().collect();
        let excluded_set: HashSet<usize> = excluded.iter().map(|e| e.index()).collect();

        let n = graph.node_count();
        let mut indegree = vec![0usize; n];
        for (id, e) in graph.edges() {
            if !excluded_set.contains(&id.index()) {
                indegree[e.dst.index()] += 1;
            }
        }
        let mut ready: Vec<NodeId> = graph
            .node_ids()
            .filter(|n| indegree[n.index()] == 0)
            .collect();
        // Stable order: lowest id first makes results deterministic.
        ready.sort();
        ready.reverse();

        let mut order = Vec::with_capacity(n);
        while let Some(node) = ready.pop() {
            order.push(node);
            let mut newly_ready = Vec::new();
            for (id, e) in graph.outputs(node) {
                if excluded_set.contains(&id.index()) {
                    continue;
                }
                indegree[e.dst.index()] -= 1;
                if indegree[e.dst.index()] == 0 {
                    newly_ready.push(e.dst);
                }
            }
            newly_ready.sort();
            for nr in newly_ready.into_iter().rev() {
                ready.push(nr);
            }
        }
        debug_assert_eq!(order.len(), n, "back-edge removal must break all cycles");

        let mut rank = vec![0usize; n];
        for (i, node) in order.iter().enumerate() {
            rank[node.index()] = i;
        }
        TopoOrder {
            order,
            rank,
            excluded,
        }
    }

    /// Nodes in forward dataflow order.
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// Position of `node` in the order.
    pub fn rank(&self, node: NodeId) -> usize {
        self.rank[node.index()]
    }

    /// The recurrence edges that were excluded to acyclify the graph.
    pub fn excluded_edges(&self) -> &[EdgeId] {
        &self.excluded
    }

    /// Longest forward-path depth of each node (source depth 0): the
    /// as-soon-as-possible schedule level, used by placement.
    pub fn asap_depth(&self, graph: &Dfg) -> Vec<usize> {
        let excluded: HashSet<usize> = self.excluded.iter().map(|e| e.index()).collect();
        let mut depth = vec![0usize; graph.node_count()];
        for &node in &self.order {
            for (id, e) in graph.outputs(node) {
                if excluded.contains(&id.index()) {
                    continue;
                }
                let d = depth[node.index()] + 1;
                if d > depth[e.dst.index()] {
                    depth[e.dst.index()] = d;
                }
            }
        }
        depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;

    #[test]
    fn orders_respect_forward_edges() {
        let mut g = Dfg::new();
        let a = g.add_node(Op::Source, "a").id();
        let b = g.add_node(Op::Add, "b").constant(0).id();
        let c = g.add_node(Op::Mul, "c").constant(0).id();
        let d = g.add_node(Op::Sink, "d").id();
        g.connect(a, b);
        g.connect(a, c);
        g.connect(b, d);
        let topo = TopoOrder::compute(&g);
        assert!(topo.rank(a) < topo.rank(b));
        assert!(topo.rank(a) < topo.rank(c));
        assert!(topo.rank(b) < topo.rank(d));
        assert_eq!(topo.order().len(), 4);
    }

    #[test]
    fn cycles_are_broken_by_back_edges() {
        let mut g = Dfg::new();
        let phi = g.add_node(Op::Phi, "phi").init(0).id();
        let add = g.add_node(Op::Add, "add").constant(1).id();
        let out = g.add_node(Op::Sink, "out").id();
        g.connect(phi, add);
        g.connect(add, phi);
        g.connect(add, out);
        let topo = TopoOrder::compute(&g);
        assert_eq!(topo.order().len(), 3);
        assert_eq!(topo.excluded_edges().len(), 1);
        assert!(topo.rank(phi) < topo.rank(add));
    }

    #[test]
    fn asap_depth_is_longest_path() {
        let mut g = Dfg::new();
        let a = g.add_node(Op::Source, "a").id();
        let b = g.add_node(Op::Add, "b").constant(0).id();
        let c = g.add_node(Op::Add, "c").constant(0).id();
        let d = g.add_node(Op::Add, "d").id();
        g.connect(a, b);
        g.connect(b, c);
        g.connect(a, d);
        g.connect(c, d);
        let topo = TopoOrder::compute(&g);
        let depth = topo.asap_depth(&g);
        assert_eq!(depth[a.index()], 0);
        assert_eq!(depth[b.index()], 1);
        assert_eq!(depth[c.index()], 2);
        assert_eq!(
            depth[d.index()],
            3,
            "longest path wins over the short a->d edge"
        );
    }

    #[test]
    fn deterministic_order() {
        let mut g = Dfg::new();
        let s = g.add_node(Op::Source, "s").id();
        let xs: Vec<NodeId> = (0..5)
            .map(|i| {
                let x = g.add_node(Op::Add, format!("x{i}")).constant(0).id();
                g.connect(s, x);
                x
            })
            .collect();
        let topo = TopoOrder::compute(&g);
        // Parallel siblings come out in id order.
        let ranks: Vec<usize> = xs.iter().map(|&x| topo.rank(x)).collect();
        let mut sorted = ranks.clone();
        sorted.sort();
        assert_eq!(ranks, sorted);
    }
}

//! Chain grouping for the compiler power-mapping pass.
//!
//! The paper's complexity-reduction phase (Section III) observes that a
//! singly-connected chain of nodes is rate-matched end to end — "the
//! throughput of an entire chain is determined by the slowest PE" — so
//! all nodes of such a chain should share one logical power domain.
//! `GroupNodes()` merges maximal chains; nodes with multiple inputs or
//! outputs remain ungrouped from other nodes.

use crate::graph::{Dfg, NodeId};

/// A partition of the DFG's nodes into power-domain groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grouping {
    groups: Vec<Vec<NodeId>>,
    group_of: Vec<usize>,
}

impl Grouping {
    /// Group maximal singly-connected chains (the paper's `GroupNodes`).
    ///
    /// A node joins its unique successor's group when the node has
    /// exactly one outgoing edge, the successor has exactly one incoming
    /// edge, and neither endpoint is a source/sink pseudo-op (live-ins
    /// and live-outs are SRAM banks with their own power domains).
    pub fn chains(graph: &Dfg) -> Grouping {
        let n = graph.node_count();
        // Union-find over node indices.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], x: usize) -> usize {
            let mut root = x;
            while parent[root] != root {
                root = parent[root];
            }
            let mut cur = x;
            while parent[cur] != root {
                let next = parent[cur];
                parent[cur] = root;
                cur = next;
            }
            root
        }

        for (_, e) in graph.edges() {
            let src = e.src;
            let dst = e.dst;
            if graph.node(src).op.is_pseudo() || graph.node(dst).op.is_pseudo() {
                continue;
            }
            if graph.fan_out(src) == 1 && graph.fan_in(dst) == 1 && src != dst {
                let a = find(&mut parent, src.index());
                let b = find(&mut parent, dst.index());
                if a != b {
                    parent[a] = b;
                }
            }
        }

        let mut group_of = vec![usize::MAX; n];
        let mut groups: Vec<Vec<NodeId>> = Vec::new();
        for i in 0..n {
            let root = find(&mut parent, i);
            if group_of[root] == usize::MAX {
                group_of[root] = groups.len();
                groups.push(Vec::new());
            }
            group_of[i] = group_of[root];
            groups[group_of[root]].push(NodeId(i as u32));
        }
        for g in &mut groups {
            g.sort();
        }
        Grouping { groups, group_of }
    }

    /// The groups, each a sorted list of member nodes.
    pub fn groups(&self) -> &[Vec<NodeId>] {
        &self.groups
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Index of the group containing `node`.
    pub fn group_of(&self, node: NodeId) -> usize {
        self.group_of[node.index()]
    }

    /// Members of group `idx`.
    pub fn members(&self, idx: usize) -> &[NodeId] {
        &self.groups[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;

    #[test]
    fn straight_chain_is_one_group() {
        let mut g = Dfg::new();
        let a = g.add_node(Op::Add, "a").constant(0).id();
        let b = g.add_node(Op::Mul, "b").constant(0).id();
        let c = g.add_node(Op::Sub, "c").constant(0).id();
        g.connect(a, b);
        g.connect(b, c);
        let grouping = Grouping::chains(&g);
        assert_eq!(grouping.len(), 1);
        assert_eq!(grouping.group_of(a), grouping.group_of(c));
    }

    #[test]
    fn fork_point_breaks_chain() {
        // a -> b, a -> c : a has fan-out 2, so three groups.
        let mut g = Dfg::new();
        let a = g.add_node(Op::Add, "a").constant(0).id();
        let b = g.add_node(Op::Add, "b").constant(0).id();
        let c = g.add_node(Op::Add, "c").constant(0).id();
        g.connect(a, b);
        g.connect(a, c);
        let grouping = Grouping::chains(&g);
        assert_eq!(grouping.len(), 3);
        assert_ne!(grouping.group_of(a), grouping.group_of(b));
        assert_ne!(grouping.group_of(b), grouping.group_of(c));
    }

    #[test]
    fn join_point_breaks_chain() {
        // a -> c, b -> c : c has fan-in 2.
        let mut g = Dfg::new();
        let a = g.add_node(Op::Add, "a").constant(0).id();
        let b = g.add_node(Op::Add, "b").constant(0).id();
        let c = g.add_node(Op::Add, "c").id();
        g.connect(a, c);
        g.connect(b, c);
        let grouping = Grouping::chains(&g);
        assert_eq!(grouping.len(), 3);
    }

    #[test]
    fn pseudo_ops_stay_alone() {
        let mut g = Dfg::new();
        let s = g.add_node(Op::Source, "s").id();
        let a = g.add_node(Op::Add, "a").constant(0).id();
        let t = g.add_node(Op::Sink, "t").id();
        g.connect(s, a);
        g.connect(a, t);
        let grouping = Grouping::chains(&g);
        assert_eq!(grouping.len(), 3);
        assert_ne!(grouping.group_of(s), grouping.group_of(a));
        assert_ne!(grouping.group_of(a), grouping.group_of(t));
    }

    #[test]
    fn chain_inside_cycle_groups() {
        // phi -> a -> b -> phi. phi has fan-in 2 (init + back edge? no —
        // back edge is a regular edge; fan-in of phi here is 1).
        // a and b form a chain; phi -> a also chains because phi fan-out 1
        // and a fan-in 1, and b -> phi chains likewise: whole ring is one
        // group, which is correct — a ring is rate-matched.
        let mut g = Dfg::new();
        let phi = g.add_node(Op::Phi, "phi").init(0).id();
        let a = g.add_node(Op::Add, "a").constant(1).id();
        let b = g.add_node(Op::Add, "b").constant(1).id();
        g.connect(phi, a);
        g.connect(a, b);
        g.connect(b, phi);
        let grouping = Grouping::chains(&g);
        assert_eq!(grouping.len(), 1);
    }

    #[test]
    fn figure2_toy_grouping() {
        // The paper's Figure 2 DFG: A1 -> A2 -> B -> C -> D -> B (cycle
        // B,C,D) and C -> E. B has fan-in 2 (A2, D); C has fan-out 2
        // (D, E). Chains: {A1, A2}, {B, C} no — C has fan-out 2 so B
        // cannot merge past C... B -> C: B fan-out 1, C fan-in 1 → merge.
        // C -> D blocked (C fan-out 2). D -> B blocked (B fan-in 2).
        let mut g = Dfg::new();
        let a1 = g.add_node(Op::Load, "A1").constant(0).id();
        let a2 = g.add_node(Op::Add, "A2").constant(0).id();
        let b = g.add_node(Op::Phi, "B").init(0).id();
        let c = g.add_node(Op::Add, "C").constant(1).id();
        let d = g.add_node(Op::Add, "D").constant(1).id();
        let e = g.add_node(Op::Sink, "E").id();
        g.connect(a1, a2);
        g.connect(a2, b);
        g.connect(b, c);
        g.connect(c, d);
        g.connect(c, e);
        g.connect(d, b);
        let grouping = Grouping::chains(&g);
        assert_eq!(grouping.group_of(a1), grouping.group_of(a2));
        assert_eq!(grouping.group_of(b), grouping.group_of(c));
        assert_ne!(grouping.group_of(c), grouping.group_of(d));
        assert_ne!(grouping.group_of(a2), grouping.group_of(b));
        // Groups: {A1,A2}, {B,C}, {D}, {E} = 4 total.
        assert_eq!(grouping.len(), 4);
    }
}

//! Cycle enumeration and critical-cycle (recurrence) analysis.
//!
//! Throughput of an elastic CGRA executing a DFG with inter-iteration
//! dependencies is limited by its *critical cycle*: the cycle `C`
//! maximizing `delay(C) / tokens(C)`, where `delay` is the sum of node
//! latencies (in nominal-cycle units, so a rested node contributes more
//! and a sprinting node less) and `tokens` is the number of initial
//! tokens resident on the cycle after reset (one per phi-init). This is
//! the classic maximum-cycle-ratio bound; the paper's Section IV-B/C
//! discussions ("throughput is determined by the latency of a single
//! token propagating around the longest DFG cycle") are the
//! one-token-per-cycle specialization.

use crate::analysis::scc::SccDecomposition;
use crate::graph::{Dfg, NodeId};

/// A simple cycle in the DFG, as an ordered list of nodes (each node
/// appears once; the edge from the last back to the first is implied).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cycle {
    /// The nodes around the cycle in traversal order.
    pub nodes: Vec<NodeId>,
}

impl Cycle {
    /// Number of nodes (= number of edges) around the cycle.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the cycle has no nodes (never produced by enumeration).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of initial tokens resident on the cycle: one per phi node
    /// with a configured init value.
    pub fn tokens(&self, graph: &Dfg) -> usize {
        self.nodes
            .iter()
            .filter(|&&n| graph.node(n).init.is_some())
            .count()
    }

    /// Sum of per-node latency around the cycle.
    pub fn delay(&self, latency: impl Fn(NodeId) -> f64) -> f64 {
        self.nodes.iter().map(|&n| latency(n)).sum()
    }
}

/// Enumerate all simple cycles of `graph` (Johnson's algorithm, restricted
/// to each SCC). DFGs in this domain are tiny (≤ 100 nodes), so full
/// enumeration is cheap and exact.
pub fn simple_cycles(graph: &Dfg) -> Vec<Cycle> {
    let scc = SccDecomposition::compute(graph);
    let mut result = Vec::new();
    for comp in scc.cyclic_components(graph) {
        enumerate_in_component(graph, comp, &mut result);
    }
    result
}

fn enumerate_in_component(graph: &Dfg, comp: &[NodeId], out: &mut Vec<Cycle>) {
    use std::collections::HashSet;
    let members: HashSet<NodeId> = comp.iter().copied().collect();
    // Johnson-style enumeration with a fixed start node per iteration:
    // only consider nodes >= start to avoid duplicates.
    for (start_pos, &start) in comp.iter().enumerate() {
        let allowed: HashSet<NodeId> = comp[start_pos..].iter().copied().collect();
        let mut path = vec![start];
        let mut on_path: HashSet<NodeId> = HashSet::from([start]);
        // Stack of successor iterators (as index positions).
        let mut iters: Vec<Vec<NodeId>> = vec![graph
            .successors(start)
            .filter(|s| members.contains(s) && allowed.contains(s))
            .collect()];
        while !path.is_empty() {
            let frame = iters.last_mut().expect("iter stack in sync with path");
            if let Some(next) = frame.pop() {
                if next == start {
                    out.push(Cycle {
                        nodes: path.clone(),
                    });
                } else if !on_path.contains(&next) {
                    path.push(next);
                    on_path.insert(next);
                    iters.push(
                        graph
                            .successors(next)
                            .filter(|s| members.contains(s) && allowed.contains(s))
                            .collect(),
                    );
                }
            } else {
                let done = path.pop().expect("non-empty path");
                on_path.remove(&done);
                iters.pop();
            }
        }
    }
    // Canonicalize: dedupe rotations (enumeration from distinct start nodes
    // cannot produce the same cycle twice because the start is the minimum
    // node, but keep a defensive pass for self-loops recorded once).
    out.sort_by(|a, b| a.nodes.cmp(&b.nodes));
    out.dedup();
}

/// Result of the critical-cycle analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalCycle {
    /// The cycle achieving the maximum delay/token ratio.
    pub cycle: Cycle,
    /// `delay(cycle) / tokens(cycle)` in nominal-cycle units: the minimum
    /// achievable initiation interval (II) of the whole graph.
    pub ratio: f64,
}

/// Find the critical cycle under a per-node latency function (nominal
/// cycles per firing; 1.0 at nominal VF, 3.0 at rest, 2/3 at sprint).
/// Returns `None` for acyclic graphs (II limited only by resources).
///
/// # Panics
///
/// Panics if some cycle carries zero initial tokens — such a graph
/// deadlocks and should be rejected by DFG validation in the compiler.
pub fn critical_cycle(graph: &Dfg, latency: impl Fn(NodeId) -> f64) -> Option<CriticalCycle> {
    let mut best: Option<CriticalCycle> = None;
    for cycle in simple_cycles(graph) {
        let tokens = cycle.tokens(graph);
        assert!(
            tokens > 0,
            "token-free cycle through {:?} would deadlock",
            cycle.nodes
        );
        let ratio = cycle.delay(&latency) / tokens as f64;
        let better = best.as_ref().is_none_or(|b| ratio > b.ratio);
        if better {
            best = Some(CriticalCycle { cycle, ratio });
        }
    }
    best
}

/// The minimum initiation interval implied by recurrences (`RecMII`):
/// the critical-cycle ratio at uniform unit latency, or 0 for acyclic
/// graphs. This matches the "Ideal" recurrence column of the paper's
/// Table III when applied to the kernel DFGs.
pub fn recurrence_mii(graph: &Dfg) -> f64 {
    critical_cycle(graph, |_| 1.0).map_or(0.0, |c| c.ratio)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;

    fn ring(n: usize) -> Dfg {
        let mut g = Dfg::new();
        let phi = g.add_node(Op::Phi, "phi").init(0).id();
        let mut prev = phi;
        for i in 1..n {
            let node = g.add_node(Op::Add, format!("n{i}")).constant(1).id();
            g.connect(prev, node);
            prev = node;
        }
        g.connect(prev, phi);
        g
    }

    #[test]
    fn ring_has_single_cycle() {
        let g = ring(4);
        let cycles = simple_cycles(&g);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 4);
        assert_eq!(cycles[0].tokens(&g), 1);
    }

    #[test]
    fn acyclic_graph_has_no_cycles() {
        let mut g = Dfg::new();
        let a = g.add_node(Op::Source, "a").id();
        let b = g.add_node(Op::Sink, "b").id();
        g.connect(a, b);
        assert!(simple_cycles(&g).is_empty());
        assert_eq!(recurrence_mii(&g), 0.0);
        assert!(critical_cycle(&g, |_| 1.0).is_none());
    }

    #[test]
    fn recurrence_mii_equals_ring_length() {
        for n in 2..8 {
            assert_eq!(recurrence_mii(&ring(n)), n as f64);
        }
    }

    #[test]
    fn self_loop_mii_is_one() {
        let mut g = Dfg::new();
        let acc = g.add_node(Op::Phi, "acc").init(0).id();
        g.connect(acc, acc);
        assert_eq!(recurrence_mii(&g), 1.0);
    }

    #[test]
    fn critical_cycle_respects_latency() {
        // Two cycles sharing a phi: lengths 2 and 3. Sprinting the longer
        // one can make the shorter one critical.
        let mut g = Dfg::new();
        let phi = g.add_node(Op::Phi, "phi").init(0).id();
        let a = g.add_node(Op::Add, "a").constant(1).id();
        let b1 = g.add_node(Op::Add, "b1").constant(1).id();
        let b2 = g.add_node(Op::Add, "b2").constant(1).id();
        let phi2 = g.add_node(Op::Phi, "phi2").init(0).id();
        g.connect(phi, a);
        g.connect(a, phi);
        g.connect_ports(phi, 0, phi2, 1);
        g.connect(phi2, b1);
        g.connect(b1, b2);
        g.connect(b2, phi2);

        let uniform = critical_cycle(&g, |_| 1.0).unwrap();
        assert_eq!(uniform.cycle.len(), 3);
        assert_eq!(uniform.ratio, 3.0);

        // Sprint the 3-cycle nodes to 2/3 latency: 3 * 2/3 = 2.0 == the
        // 2-cycle, so the max ratio is now 2.0.
        let sprinted = critical_cycle(&g, |n| {
            if [phi2, b1, b2].contains(&n) {
                2.0 / 3.0
            } else {
                1.0
            }
        })
        .unwrap();
        assert!((sprinted.ratio - 2.0).abs() < 1e-12);
    }

    #[test]
    fn two_tokens_halve_the_ratio() {
        // A 4-ring with two phi-inits has II 2.
        let mut g = Dfg::new();
        let p1 = g.add_node(Op::Phi, "p1").init(0).id();
        let a = g.add_node(Op::Add, "a").constant(1).id();
        let p2 = g.add_node(Op::Phi, "p2").init(0).id();
        let b = g.add_node(Op::Add, "b").constant(1).id();
        g.connect(p1, a);
        g.connect(a, p2);
        g.connect(p2, b);
        g.connect(b, p1);
        let cc = critical_cycle(&g, |_| 1.0).unwrap();
        assert_eq!(cc.cycle.tokens(&g), 2);
        assert_eq!(cc.ratio, 2.0);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn tokenless_cycle_panics() {
        let mut g = Dfg::new();
        let a = g.add_node(Op::Add, "a").constant(1).id();
        let b = g.add_node(Op::Add, "b").constant(1).id();
        g.connect(a, b);
        g.connect(b, a);
        critical_cycle(&g, |_| 1.0);
    }

    #[test]
    fn nested_cycles_all_enumerated() {
        // phi -> a -> phi (2-cycle) and phi -> a -> b -> phi (3-cycle).
        let mut g = Dfg::new();
        let phi = g.add_node(Op::Phi, "phi").init(0).id();
        let a = g.add_node(Op::Br, "a").id();
        let b = g.add_node(Op::Add, "b").constant(1).id();
        g.connect_ports(phi, 0, a, 0);
        g.connect_ports(phi, 0, a, 1);
        g.connect_ports(a, 0, phi, 0);
        g.connect_ports(a, 1, b, 0);
        g.connect_ports(b, 0, phi, 1);
        let mut lens: Vec<usize> = simple_cycles(&g).iter().map(Cycle::len).collect();
        lens.sort();
        // Node-level cycles: the parallel phi->a edges collapse to one
        // 2-cycle; the route through b is the 3-cycle.
        assert_eq!(lens, vec![2, 3]);
    }
}

//! Graph analyses used by the model, compiler, and simulators.

pub mod cycles;
pub mod grouping;
pub mod scc;
pub mod topo;

pub use cycles::{critical_cycle, recurrence_mii, simple_cycles, CriticalCycle, Cycle};
pub use grouping::Grouping;
pub use scc::SccDecomposition;
pub use topo::TopoOrder;

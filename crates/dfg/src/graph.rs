//! Dataflow-graph representation.
//!
//! A [`Dfg`] is a directed multigraph of single-cycle operations connected
//! by token-carrying edges. Edges correspond to the two-entry elastic
//! queues of the UE-CGRA interconnect; cycles in the graph are
//! inter-iteration (recurrence) dependencies, bootstrapped by initial
//! tokens on phi nodes.

use crate::op::Op;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Identifier of a node within a [`Dfg`].
///
/// Node ids are dense indices assigned in insertion order, so they can be
/// used to index side tables (`Vec<T>` keyed by `NodeId::index`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

/// Identifier of an edge within a [`Dfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub(crate) u32);

impl NodeId {
    /// Dense index of this node (insertion order).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstruct a `NodeId` from a dense index previously obtained
    /// from [`NodeId::index`]. The caller must ensure the index refers
    /// to a node of the graph it is used with; graph accessors panic on
    /// out-of-range ids.
    pub fn from_index(index: usize) -> NodeId {
        NodeId(index as u32)
    }
}

impl EdgeId {
    /// Dense index of this edge (insertion order).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstruct an `EdgeId` from a dense index previously obtained
    /// from [`EdgeId::index`]. The caller must ensure the index refers
    /// to an edge of the graph it is used with.
    pub fn from_index(index: usize) -> EdgeId {
        EdgeId(index as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A node of the dataflow graph: one operation plus its static
/// configuration (constant operand, recurrence-bootstrapping token).
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// The operation this node performs.
    pub op: Op,
    /// Human-readable label used in reports and DOT dumps.
    pub name: String,
    /// A configured constant supplied through the PE multi-purpose
    /// register. When an input port has no incoming edge, the constant is
    /// used as that operand (a "self-cycle" in the paper's Figure 14).
    pub constant: Option<u32>,
    /// Initial token emitted once after reset (phi nodes only). This is
    /// what allows a DFG cycle to start iterating ("iteration zero").
    pub init: Option<u32>,
}

/// An edge of the dataflow graph: a two-entry elastic queue carrying
/// 32-bit tokens from an output port of `src` to an input port of `dst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Producing node.
    pub src: NodeId,
    /// Output port on the producer (`0` for all ops except `br`, which
    /// steers to port `0` when the condition is true and `1` when false).
    pub src_port: u8,
    /// Consuming node.
    pub dst: NodeId,
    /// Input port on the consumer (operand index).
    pub dst_port: u8,
}

/// Errors reported by [`Dfg`] construction and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge referenced a node id that does not exist.
    UnknownNode(NodeId),
    /// An edge used an output port outside the producer's `out_ports()`.
    BadSrcPort {
        /// The offending producer node.
        node: NodeId,
        /// The out-of-range output port.
        port: u8,
    },
    /// An edge used an input port outside the consumer's `arity()`.
    BadDstPort {
        /// The offending consumer node.
        node: NodeId,
        /// The out-of-range input port.
        port: u8,
    },
    /// Two edges drive the same input port of the same node.
    InputConflict {
        /// The node whose input is multiply driven.
        node: NodeId,
        /// The conflicting input port.
        port: u8,
    },
    /// A node is missing an input and has no constant to substitute.
    MissingInput {
        /// The node with the undriven input.
        node: NodeId,
        /// The undriven input port.
        port: u8,
    },
    /// An initial token was configured on a non-phi node.
    InitOnNonPhi(NodeId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode(n) => write!(f, "unknown node {n}"),
            GraphError::BadSrcPort { node, port } => {
                write!(f, "node {node} has no output port {port}")
            }
            GraphError::BadDstPort { node, port } => {
                write!(f, "node {node} has no input port {port}")
            }
            GraphError::InputConflict { node, port } => {
                write!(f, "multiple edges drive input port {port} of node {node}")
            }
            GraphError::MissingInput { node, port } => {
                write!(
                    f,
                    "input port {port} of node {node} is undriven and has no constant"
                )
            }
            GraphError::InitOnNonPhi(n) => {
                write!(f, "initial token configured on non-phi node {n}")
            }
        }
    }
}

impl Error for GraphError {}

/// A dataflow graph of single-cycle operations.
///
/// # Examples
///
/// Build the toy graph of the paper's Figure 1: a four-op chain
/// `A → B → C → D` whose result feeds back to `A` (an inter-iteration
/// dependency):
///
/// ```
/// use uecgra_dfg::{Dfg, Op};
///
/// let mut g = Dfg::new();
/// let a = g.add_node(Op::Phi, "A").init(0).id();
/// let b = g.add_node(Op::Add, "B").constant(1).id();
/// let c = g.add_node(Op::Mul, "C").constant(3).id();
/// let d = g.add_node(Op::Add, "D").constant(7).id();
/// g.connect(a, b);
/// g.connect(b, c);
/// g.connect(c, d);
/// g.connect(d, a); // recurrence edge
/// g.validate().unwrap();
/// assert_eq!(g.node_count(), 4);
/// assert!(g.recurrence_edges().count() == 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Dfg {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    out_edges: Vec<Vec<EdgeId>>,
    in_edges: Vec<Vec<EdgeId>>,
}

/// Builder handle returned by [`Dfg::add_node`], allowing fluent
/// configuration of the node just added.
#[derive(Debug)]
pub struct NodeBuilder<'g> {
    graph: &'g mut Dfg,
    id: NodeId,
}

impl<'g> NodeBuilder<'g> {
    /// Set a constant operand (held in the PE multi-purpose register).
    pub fn constant(self, value: u32) -> Self {
        self.graph.nodes[self.id.index()].constant = Some(value);
        self
    }

    /// Set the initial token of a phi node (bootstraps a recurrence).
    pub fn init(self, value: u32) -> Self {
        self.graph.nodes[self.id.index()].init = Some(value);
        self
    }

    /// Finish and return the node id.
    pub fn id(self) -> NodeId {
        self.id
    }
}

impl Dfg {
    /// Create an empty graph.
    pub fn new() -> Dfg {
        Dfg::default()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Add a node, returning a builder for fluent configuration.
    pub fn add_node(&mut self, op: Op, name: impl Into<String>) -> NodeBuilder<'_> {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            op,
            name: name.into(),
            constant: None,
            init: None,
        });
        self.out_edges.push(Vec::new());
        self.in_edges.push(Vec::new());
        NodeBuilder { graph: self, id }
    }

    /// Connect output port 0 of `src` to the lowest-numbered free input
    /// port of `dst`. Panics if `dst` has no free port (use
    /// [`Dfg::connect_ports`] for explicit wiring).
    ///
    /// # Panics
    ///
    /// Panics if every input port of `dst` is already driven.
    pub fn connect(&mut self, src: NodeId, dst: NodeId) -> EdgeId {
        let arity = self.nodes[dst.index()].op.arity().max(1);
        let used: Vec<u8> = self.in_edges[dst.index()]
            .iter()
            .map(|e| self.edges[e.index()].dst_port)
            .collect();
        let port = (0..arity as u8)
            .find(|p| !used.contains(p))
            .unwrap_or_else(|| panic!("no free input port on {dst}"));
        self.connect_ports(src, 0, dst, port)
    }

    /// Connect an explicit output port of `src` to an explicit input port
    /// of `dst`. Port validity is checked by [`Dfg::validate`].
    pub fn connect_ports(
        &mut self,
        src: NodeId,
        src_port: u8,
        dst: NodeId,
        dst_port: u8,
    ) -> EdgeId {
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge {
            src,
            src_port,
            dst,
            dst_port,
        });
        self.out_edges[src.index()].push(id);
        self.in_edges[dst.index()].push(id);
        id
    }

    /// Access a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Mutable access to a node.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// Access an edge.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// Iterate over `(NodeId, &Node)` in insertion order.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Iterate over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(|i| NodeId(i as u32))
    }

    /// Iterate over `(EdgeId, &Edge)` in insertion order.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &Edge)> {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (EdgeId(i as u32), e))
    }

    /// Edges leaving `node`.
    pub fn outputs(&self, node: NodeId) -> impl Iterator<Item = (EdgeId, &Edge)> {
        self.out_edges[node.index()]
            .iter()
            .map(move |&e| (e, &self.edges[e.index()]))
    }

    /// Edges entering `node`.
    pub fn inputs(&self, node: NodeId) -> impl Iterator<Item = (EdgeId, &Edge)> {
        self.in_edges[node.index()]
            .iter()
            .map(move |&e| (e, &self.edges[e.index()]))
    }

    /// Fan-out (number of outgoing edges) of `node`.
    pub fn fan_out(&self, node: NodeId) -> usize {
        self.out_edges[node.index()].len()
    }

    /// Fan-in (number of incoming edges) of `node`.
    pub fn fan_in(&self, node: NodeId) -> usize {
        self.in_edges[node.index()].len()
    }

    /// Successor node ids (with multiplicity, in edge order).
    pub fn successors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_edges[node.index()]
            .iter()
            .map(move |&e| self.edges[e.index()].dst)
    }

    /// Predecessor node ids (with multiplicity, in edge order).
    pub fn predecessors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.in_edges[node.index()]
            .iter()
            .map(move |&e| self.edges[e.index()].src)
    }

    /// Nodes with the `Source` pseudo-op (live-ins of the graph).
    pub fn sources(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes()
            .filter(|(_, n)| n.op == Op::Source)
            .map(|(id, _)| id)
    }

    /// Nodes with the `Sink` pseudo-op (live-outs of the graph).
    pub fn sinks(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes()
            .filter(|(_, n)| n.op == Op::Sink)
            .map(|(id, _)| id)
    }

    /// Count of real PE operations (excluding source/sink pseudo-ops).
    pub fn pe_node_count(&self) -> usize {
        self.nodes.iter().filter(|n| !n.op.is_pseudo()).count()
    }

    /// Edges that close a cycle in a depth-first traversal — the
    /// inter-iteration (recurrence) dependencies. The set of back edges
    /// depends on traversal order, but *whether* the graph has any is
    /// traversal-invariant, and every cycle contains at least one.
    pub fn recurrence_edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        let back = self.back_edges();
        self.edges()
            .map(|(id, _)| id)
            .filter(move |id| back.contains(&id.index()))
    }

    fn back_edges(&self) -> Vec<usize> {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Grey,
            Black,
        }
        let mut color = vec![Color::White; self.nodes.len()];
        let mut back = Vec::new();
        // Iterative DFS over every component.
        for root in 0..self.nodes.len() {
            if color[root] != Color::White {
                continue;
            }
            // Stack holds (node, next-out-edge-index).
            let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
            color[root] = Color::Grey;
            while let Some(&mut (n, ref mut i)) = stack.last_mut() {
                if *i < self.out_edges[n].len() {
                    let eid = self.out_edges[n][*i];
                    *i += 1;
                    let m = self.edges[eid.index()].dst.index();
                    match color[m] {
                        Color::White => {
                            color[m] = Color::Grey;
                            stack.push((m, 0));
                        }
                        Color::Grey => back.push(eid.index()),
                        Color::Black => {}
                    }
                } else {
                    color[n] = Color::Black;
                    stack.pop();
                }
            }
        }
        back
    }

    /// Validate structural invariants: edge endpoints exist, ports are in
    /// range, no two edges drive the same input port, every input port of
    /// every non-phi node is driven or backed by a constant, and initial
    /// tokens only appear on phi nodes.
    ///
    /// # Errors
    ///
    /// Returns the first [`GraphError`] found.
    pub fn validate(&self) -> Result<(), GraphError> {
        for (_, e) in self.edges() {
            if e.src.index() >= self.nodes.len() {
                return Err(GraphError::UnknownNode(e.src));
            }
            if e.dst.index() >= self.nodes.len() {
                return Err(GraphError::UnknownNode(e.dst));
            }
            let src_op = self.nodes[e.src.index()].op;
            if (e.src_port as usize) >= src_op.out_ports() {
                return Err(GraphError::BadSrcPort {
                    node: e.src,
                    port: e.src_port,
                });
            }
            let dst_op = self.nodes[e.dst.index()].op;
            if (e.dst_port as usize) >= dst_op.arity().max(1) {
                return Err(GraphError::BadDstPort {
                    node: e.dst,
                    port: e.dst_port,
                });
            }
        }
        for (id, node) in self.nodes() {
            let mut seen: HashMap<u8, usize> = HashMap::new();
            for (_, e) in self.inputs(id) {
                *seen.entry(e.dst_port).or_insert(0) += 1;
            }
            for (&port, &count) in &seen {
                if count > 1 {
                    return Err(GraphError::InputConflict { node: id, port });
                }
            }
            if node.init.is_some() && node.op != Op::Phi {
                return Err(GraphError::InitOnNonPhi(id));
            }
            if node.op == Op::Source {
                continue;
            }
            // Phi fires on either input, so a single driven port suffices.
            if node.op.fires_on_any_input() {
                if seen.is_empty() && node.constant.is_none() {
                    return Err(GraphError::MissingInput { node: id, port: 0 });
                }
                continue;
            }
            for port in 0..node.op.arity() as u8 {
                if !seen.contains_key(&port) && node.constant.is_none() {
                    return Err(GraphError::MissingInput { node: id, port });
                }
            }
        }
        Ok(())
    }

    /// Render the graph in Graphviz DOT format (for debugging and docs).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("digraph dfg {\n  rankdir=TB;\n");
        for (id, n) in self.nodes() {
            let shape = match n.op {
                Op::Source | Op::Sink => "invhouse",
                Op::Phi => "diamond",
                Op::Br => "trapezium",
                Op::Load | Op::Store => "box3d",
                _ => "ellipse",
            };
            let _ = writeln!(
                s,
                "  {} [label=\"{}\\n{}\" shape={}];",
                id, n.name, n.op, shape
            );
        }
        let back: Vec<usize> = self.back_edges();
        for (id, e) in self.edges() {
            let style = if back.contains(&id.index()) {
                " [style=dashed color=red]"
            } else {
                ""
            };
            let _ = writeln!(s, "  {} -> {}{};", e.src, e.dst, style);
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Dfg, [NodeId; 4]) {
        let mut g = Dfg::new();
        let a = g.add_node(Op::Source, "in").id();
        let b = g.add_node(Op::Add, "b").constant(1).id();
        let c = g.add_node(Op::Mul, "c").constant(2).id();
        let d = g.add_node(Op::Add, "d").id();
        g.connect(a, b);
        g.connect(a, c);
        g.connect(b, d);
        g.connect(c, d);
        (g, [a, b, c, d])
    }

    #[test]
    fn build_and_query() {
        let (g, [a, b, c, d]) = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.fan_out(a), 2);
        assert_eq!(g.fan_in(d), 2);
        assert_eq!(g.successors(a).collect::<Vec<_>>(), vec![b, c]);
        assert_eq!(g.predecessors(d).collect::<Vec<_>>(), vec![b, c]);
        g.validate().unwrap();
    }

    #[test]
    fn connect_assigns_free_ports() {
        let (g, [_, b, c, d]) = diamond();
        let ports: Vec<u8> = g.inputs(d).map(|(_, e)| e.dst_port).collect();
        assert_eq!(ports, vec![0, 1]);
        assert_eq!(g.inputs(b).next().unwrap().1.dst_port, 0);
        assert_eq!(g.inputs(c).next().unwrap().1.dst_port, 0);
    }

    #[test]
    fn recurrence_detection() {
        let mut g = Dfg::new();
        let phi = g.add_node(Op::Phi, "phi").init(0).id();
        let add = g.add_node(Op::Add, "add").constant(1).id();
        g.connect(phi, add);
        g.connect(add, phi);
        g.validate().unwrap();
        let rec: Vec<_> = g.recurrence_edges().collect();
        assert_eq!(rec.len(), 1);

        let (acyclic, _) = diamond();
        assert_eq!(acyclic.recurrence_edges().count(), 0);
    }

    #[test]
    fn validate_rejects_input_conflict() {
        let mut g = Dfg::new();
        let a = g.add_node(Op::Source, "a").id();
        let b = g.add_node(Op::Source, "b").id();
        let c = g.add_node(Op::Add, "c").id();
        g.connect_ports(a, 0, c, 0);
        g.connect_ports(b, 0, c, 0);
        assert!(matches!(
            g.validate(),
            Err(GraphError::InputConflict { .. })
        ));
    }

    #[test]
    fn validate_rejects_missing_input() {
        let mut g = Dfg::new();
        let a = g.add_node(Op::Source, "a").id();
        let c = g.add_node(Op::Add, "c").id();
        g.connect(a, c);
        assert!(matches!(g.validate(), Err(GraphError::MissingInput { .. })));
    }

    #[test]
    fn constant_substitutes_missing_input() {
        let mut g = Dfg::new();
        let a = g.add_node(Op::Source, "a").id();
        let c = g.add_node(Op::Add, "c").constant(5).id();
        g.connect(a, c);
        g.validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_ports() {
        let mut g = Dfg::new();
        let a = g.add_node(Op::Add, "a").constant(0).id();
        let b = g.add_node(Op::Add, "b").constant(0).id();
        g.connect_ports(a, 1, b, 0); // add has 1 output port
        assert!(matches!(g.validate(), Err(GraphError::BadSrcPort { .. })));

        let mut g2 = Dfg::new();
        let a2 = g2.add_node(Op::Add, "a").constant(0).id();
        let b2 = g2.add_node(Op::Nop, "b").id();
        g2.connect_ports(a2, 0, b2, 1); // nop has arity 1
        assert!(matches!(g2.validate(), Err(GraphError::BadDstPort { .. })));
    }

    #[test]
    fn validate_rejects_init_on_non_phi() {
        let mut g = Dfg::new();
        let a = g.add_node(Op::Add, "a").constant(0).id();
        g.node_mut(a).init = Some(3);
        assert!(matches!(g.validate(), Err(GraphError::InitOnNonPhi(_))));
    }

    #[test]
    fn br_has_two_output_ports() {
        let mut g = Dfg::new();
        let s = g.add_node(Op::Source, "s").id();
        let c = g.add_node(Op::Source, "cond").id();
        let br = g.add_node(Op::Br, "br").id();
        let t = g.add_node(Op::Sink, "t").id();
        let f = g.add_node(Op::Sink, "f").id();
        g.connect_ports(s, 0, br, 0);
        g.connect_ports(c, 0, br, 1);
        g.connect_ports(br, 0, t, 0);
        g.connect_ports(br, 1, f, 0);
        g.validate().unwrap();
    }

    #[test]
    fn dot_output_mentions_every_node() {
        let (g, _) = diamond();
        let dot = g.to_dot();
        for (id, _) in g.nodes() {
            assert!(dot.contains(&id.to_string()));
        }
        assert!(dot.starts_with("digraph"));
    }

    #[test]
    fn phi_with_single_input_is_valid() {
        let mut g = Dfg::new();
        let s = g.add_node(Op::Source, "s").id();
        let phi = g.add_node(Op::Phi, "phi").init(1).id();
        g.connect(s, phi);
        g.validate().unwrap();
    }
}

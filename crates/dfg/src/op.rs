//! Operation set of the UE-CGRA processing element.
//!
//! The paper (Section IV-A) lists the operations supported by the 32-bit PE
//! datapath: `cp0, cp1, add, sub, sll, srl, and, or, xor, eq, ne, gt, geq,
//! lt, leq, mul, phi, br, nop`. Perimeter PEs additionally perform `load`
//! and `store` against their 4 kB SRAM banks. For dataflow-graph modeling we
//! also include `source` and `sink` pseudo-ops that stand for the live-in
//! producer and live-out consumer token streams.

use std::fmt;

/// A single-cycle operation executed by a UE-CGRA processing element.
///
/// All arithmetic is on 32-bit words; `mul` truncates the upper half so the
/// output bitwidth matches the inputs (paper Section IV-A). Comparison ops
/// produce `0`/`1`. Control flow is converted to dataflow: [`Op::Phi`]
/// merges two token streams (firing on whichever arrives) and [`Op::Br`]
/// steers a data token to one of two outputs based on a condition token.
///
/// # Examples
///
/// ```
/// use uecgra_dfg::Op;
///
/// assert_eq!(Op::Add.eval(3, 4), 7);
/// assert_eq!(Op::Mul.eval(0x0001_0000, 0x0001_0000), 0); // truncating
/// assert_eq!(Op::Lt.eval(-1i32 as u32, 1), 1); // signed compare
/// assert_eq!(Op::Add.arity(), 2);
/// assert!(Op::Load.is_memory());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Op {
    /// Copy the first operand.
    Cp0,
    /// Copy the second operand.
    Cp1,
    /// 32-bit wrapping addition.
    Add,
    /// 32-bit wrapping subtraction.
    Sub,
    /// Logical shift left (by `rhs & 31`).
    Sll,
    /// Logical shift right (by `rhs & 31`).
    Srl,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Equal (1 if equal).
    Eq,
    /// Not equal.
    Ne,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Geq,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Leq,
    /// 32×32→32 truncating multiply.
    Mul,
    /// Merge node: forwards whichever input token arrives. A phi node may
    /// carry an initial token to bootstrap a recurrence cycle (iteration 0).
    Phi,
    /// Branch-as-dataflow: input 0 is data, input 1 is the condition; the
    /// data token is steered to output port 0 when the condition is true
    /// (non-zero) and port 1 when false.
    Br,
    /// No operation (used by routing-only PEs).
    Nop,
    /// SRAM load: input is an address (word index), output is the data.
    /// Only legal on perimeter (memory) PEs.
    Load,
    /// SRAM store: input 0 is the address, input 1 is the data. Produces a
    /// completion token so stores can be chained into the dataflow.
    Store,
    /// Live-in pseudo-op: produces the input token stream (one token per
    /// local cycle, up to the configured iteration count).
    Source,
    /// Live-out pseudo-op: consumes tokens leaving the graph.
    Sink,
}

/// All real PE operations (excludes the `Source`/`Sink` modeling pseudo-ops).
pub const PE_OPS: [Op; 21] = [
    Op::Cp0,
    Op::Cp1,
    Op::Add,
    Op::Sub,
    Op::Sll,
    Op::Srl,
    Op::And,
    Op::Or,
    Op::Xor,
    Op::Eq,
    Op::Ne,
    Op::Gt,
    Op::Geq,
    Op::Lt,
    Op::Leq,
    Op::Mul,
    Op::Phi,
    Op::Br,
    Op::Nop,
    Op::Load,
    Op::Store,
];

impl Op {
    /// Number of input operands the op consumes per firing.
    ///
    /// `Phi` is listed with arity 2 but fires on *either* input (see
    /// [`Op::fires_on_any_input`]). `Source` takes none; `Sink`, `Cp0`,
    /// `Nop`, and `Load` take one.
    pub fn arity(self) -> usize {
        match self {
            Op::Source => 0,
            Op::Cp0 | Op::Nop | Op::Load | Op::Sink => 1,
            Op::Cp1 => 2,
            Op::Phi | Op::Br | Op::Store => 2,
            _ => 2,
        }
    }

    /// Number of output ports. `Br` has two (true/false); everything else
    /// one, except `Sink` which has none.
    pub fn out_ports(self) -> usize {
        match self {
            Op::Br => 2,
            Op::Sink => 0,
            _ => 1,
        }
    }

    /// True for ops that fire as soon as *any* input token arrives (merge
    /// semantics) rather than waiting for all inputs.
    pub fn fires_on_any_input(self) -> bool {
        matches!(self, Op::Phi)
    }

    /// True for SRAM-accessing ops, which are only legal on perimeter PEs.
    pub fn is_memory(self) -> bool {
        matches!(self, Op::Load | Op::Store)
    }

    /// True for the modeling pseudo-ops that do not occupy a PE.
    pub fn is_pseudo(self) -> bool {
        matches!(self, Op::Source | Op::Sink)
    }

    /// True if the op needs the PE multiply block.
    pub fn uses_multiplier(self) -> bool {
        matches!(self, Op::Mul)
    }

    /// Evaluate a two-input combinational op. For one-input ops the second
    /// operand is ignored. `Phi`, `Br`, `Load`, `Store`, `Source` and
    /// `Sink` have structural semantics handled by the simulators; calling
    /// `eval` on them returns the first operand unchanged.
    pub fn eval(self, a: u32, b: u32) -> u32 {
        let sa = a as i32;
        let sb = b as i32;
        match self {
            Op::Cp0 | Op::Nop => a,
            Op::Cp1 => b,
            Op::Add => a.wrapping_add(b),
            Op::Sub => a.wrapping_sub(b),
            Op::Sll => a.wrapping_shl(b & 31),
            Op::Srl => a.wrapping_shr(b & 31),
            Op::And => a & b,
            Op::Or => a | b,
            Op::Xor => a ^ b,
            Op::Eq => (a == b) as u32,
            Op::Ne => (a != b) as u32,
            Op::Gt => (sa > sb) as u32,
            Op::Geq => (sa >= sb) as u32,
            Op::Lt => (sa < sb) as u32,
            Op::Leq => (sa <= sb) as u32,
            Op::Mul => a.wrapping_mul(b),
            Op::Phi | Op::Br | Op::Load | Op::Store | Op::Source | Op::Sink => a,
        }
    }

    /// The canonical mnemonic used in bitstreams and reports.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Op::Cp0 => "cp0",
            Op::Cp1 => "cp1",
            Op::Add => "add",
            Op::Sub => "sub",
            Op::Sll => "sll",
            Op::Srl => "srl",
            Op::And => "and",
            Op::Or => "or",
            Op::Xor => "xor",
            Op::Eq => "eq",
            Op::Ne => "ne",
            Op::Gt => "gt",
            Op::Geq => "geq",
            Op::Lt => "lt",
            Op::Leq => "leq",
            Op::Mul => "mul",
            Op::Phi => "phi",
            Op::Br => "br",
            Op::Nop => "nop",
            Op::Load => "load",
            Op::Store => "store",
            Op::Source => "source",
            Op::Sink => "sink",
        }
    }

    /// Parse a mnemonic back into an [`Op`].
    ///
    /// # Examples
    ///
    /// ```
    /// use uecgra_dfg::Op;
    /// assert_eq!(Op::from_mnemonic("mul"), Some(Op::Mul));
    /// assert_eq!(Op::from_mnemonic("bogus"), None);
    /// ```
    pub fn from_mnemonic(s: &str) -> Option<Op> {
        PE_OPS
            .iter()
            .chain([Op::Source, Op::Sink].iter())
            .copied()
            .find(|op| op.mnemonic() == s)
    }

    /// Relative dynamic energy of a PE executing this op at nominal VF,
    /// normalized to `mul == 1.0` (paper Section II-C alpha table).
    ///
    /// `Phi`/`Br`/`Nop` route data without exercising the ALU datapath, so
    /// they are charged at the bypass factor. Memory ops are charged their
    /// SRAM access cost in addition by the energy model (alpha_sram is per
    /// subbank, applied at the power-model level, not here).
    pub fn alpha(self) -> f64 {
        match self {
            Op::Mul => 1.0,
            Op::Add | Op::Sub => 0.30,
            Op::Sll => 0.37,
            Op::Srl => 0.35,
            Op::Cp0 | Op::Cp1 => 0.23,
            Op::And => 0.30,
            Op::Or => 0.33,
            Op::Xor => 0.42,
            Op::Eq | Op::Ne => 0.23,
            Op::Gt | Op::Geq | Op::Lt | Op::Leq => 0.25,
            Op::Phi | Op::Br | Op::Nop => 0.11,
            // Loads/stores exercise the address datapath like a copy; the
            // SRAM subbank energy (alpha_sram = 0.82) is added separately.
            Op::Load | Op::Store => 0.23,
            Op::Source | Op::Sink => 0.0,
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_semantics() {
        assert_eq!(Op::Add.eval(u32::MAX, 1), 0);
        assert_eq!(Op::Sub.eval(0, 1), u32::MAX);
        assert_eq!(Op::Sll.eval(1, 33), 2, "shift amount is masked to 5 bits");
        assert_eq!(Op::Srl.eval(0x8000_0000, 31), 1);
        assert_eq!(Op::Mul.eval(3, 5), 15);
        assert_eq!(Op::Mul.eval(0xFFFF_FFFF, 2), 0xFFFF_FFFE);
    }

    #[test]
    fn comparisons_are_signed() {
        let neg1 = -1i32 as u32;
        assert_eq!(Op::Gt.eval(1, neg1), 1);
        assert_eq!(Op::Lt.eval(neg1, 0), 1);
        assert_eq!(Op::Geq.eval(neg1, neg1), 1);
        assert_eq!(Op::Leq.eval(0, neg1), 0);
        assert_eq!(Op::Eq.eval(7, 7), 1);
        assert_eq!(Op::Ne.eval(7, 7), 0);
    }

    #[test]
    fn bitwise_semantics() {
        assert_eq!(Op::And.eval(0b1100, 0b1010), 0b1000);
        assert_eq!(Op::Or.eval(0b1100, 0b1010), 0b1110);
        assert_eq!(Op::Xor.eval(0b1100, 0b1010), 0b0110);
    }

    #[test]
    fn copies() {
        assert_eq!(Op::Cp0.eval(1, 2), 1);
        assert_eq!(Op::Cp1.eval(1, 2), 2);
        assert_eq!(Op::Nop.eval(9, 0), 9);
    }

    #[test]
    fn mnemonic_roundtrip() {
        for op in PE_OPS.iter().chain([Op::Source, Op::Sink].iter()) {
            assert_eq!(Op::from_mnemonic(op.mnemonic()), Some(*op));
        }
    }

    #[test]
    fn alpha_table_matches_paper() {
        assert_eq!(Op::Mul.alpha(), 1.0);
        assert_eq!(Op::Add.alpha(), 0.30);
        assert_eq!(Op::Sll.alpha(), 0.37);
        assert_eq!(Op::Srl.alpha(), 0.35);
        assert_eq!(Op::Xor.alpha(), 0.42);
        assert_eq!(Op::Nop.alpha(), 0.11);
        assert!(Op::Mul.alpha() >= Op::Add.alpha());
    }

    #[test]
    fn structural_queries() {
        assert!(Op::Phi.fires_on_any_input());
        assert!(!Op::Add.fires_on_any_input());
        assert_eq!(Op::Br.out_ports(), 2);
        assert_eq!(Op::Sink.out_ports(), 0);
        assert!(Op::Load.is_memory() && Op::Store.is_memory());
        assert!(Op::Source.is_pseudo() && Op::Sink.is_pseudo());
        assert!(!Op::Mul.is_pseudo());
        assert!(Op::Mul.uses_multiplier() && !Op::Add.uses_multiplier());
    }
}

//! System-integration cost models (paper Section VI-D, Table III).
//!
//! To offload a kernel, the processor writes the CGRA's CSRs, the DMA
//! unit streams in the configuration bitstream and the kernel data,
//! and only then does computation begin; the iteration count amortizes
//! those overheads. This module combines the pieces into the relative
//! performance and energy-efficiency numbers of Table III, and prices
//! the scalar core's energy per instruction class (calibrated so the
//! all-nominal E-CGRA lands below the core's efficiency on
//! routing-heavy kernels, as the paper reports).

use crate::cpu::InstrMix;

/// Core energy-per-instruction constants (pJ at 0.90 V / 750 MHz).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreEnergyParams {
    /// Simple ALU / immediate ops.
    pub alu_pj: f64,
    /// Multiplies.
    pub mul_pj: f64,
    /// Divides.
    pub div_pj: f64,
    /// Loads (includes the L1 access).
    pub load_pj: f64,
    /// Stores.
    pub store_pj: f64,
    /// Branches and jumps.
    pub branch_pj: f64,
    /// Background power per cycle (fetch, clocking, leakage), pJ.
    pub background_pj_per_cycle: f64,
}

impl Default for CoreEnergyParams {
    /// Calibrated against the CGRA energy tables so the all-nominal
    /// E-CGRA lands near or below the core's efficiency on the
    /// routing-heavy kernels (paper Table III: 0.55–0.80×): a minimal
    /// in-order RV32IM datapath spends a small number of picojoules
    /// per instruction in 28 nm.
    fn default() -> Self {
        CoreEnergyParams {
            alu_pj: 2.0,
            mul_pj: 4.5,
            div_pj: 11.0,
            load_pj: 5.5,
            store_pj: 5.5,
            branch_pj: 2.4,
            background_pj_per_cycle: 0.7,
        }
    }
}

/// Total core energy for a run (pJ).
pub fn core_energy_pj(params: &CoreEnergyParams, mix: &InstrMix, cycles: u64) -> f64 {
    mix.alu as f64 * params.alu_pj
        + mix.mul as f64 * params.mul_pj
        + mix.div as f64 * params.div_pj
        + mix.load as f64 * params.load_pj
        + mix.store as f64 * params.store_pj
        + mix.branch as f64 * params.branch_pj
        + cycles as f64 * params.background_pj_per_cycle
}

/// One-time costs of moving a kernel onto the CGRA (cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OffloadOverheads {
    /// Configuration-transfer + DVFS-setup cycles.
    pub cfg_cycles: u64,
    /// DMA data-load cycles.
    pub data_cycles: u64,
}

impl OffloadOverheads {
    /// Total overhead cycles.
    pub fn total(&self) -> u64 {
        self.cfg_cycles + self.data_cycles
    }
}

/// Speedup of "offload to CGRA" versus running on the core:
/// `core_cycles / (overheads + cgra_cycles)`.
pub fn system_speedup(core_cycles: u64, cgra_cycles: f64, ov: OffloadOverheads) -> f64 {
    core_cycles as f64 / (ov.total() as f64 + cgra_cycles)
}

/// Relative energy efficiency (iterations/J): `core / cgra` energy for
/// the same work.
pub fn system_efficiency(core_energy_pj: f64, cgra_energy_pj: f64) -> f64 {
    core_energy_pj / cgra_energy_pj
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overheads_reduce_speedup() {
        let no_ov = system_speedup(1000, 500.0, OffloadOverheads::default());
        let with_ov = system_speedup(
            1000,
            500.0,
            OffloadOverheads {
                cfg_cycles: 65,
                data_cycles: 500,
            },
        );
        assert_eq!(no_ov, 2.0);
        assert!(with_ov < 1.0, "unamortized overheads can flip the verdict");
    }

    #[test]
    fn iteration_count_amortizes_overheads() {
        let ov = OffloadOverheads {
            cfg_cycles: 65,
            data_cycles: 500,
        };
        // 10 iterations at core 10 / CGRA 5 cycles each: overhead dominates.
        let few = system_speedup(100, 50.0, ov);
        // 100k iterations: overhead vanishes, speedup approaches 2.
        let many = system_speedup(1_000_000, 500_000.0, ov);
        assert!(few < 0.2);
        assert!(many > 1.99);
    }

    #[test]
    fn core_energy_accounts_each_class() {
        let p = CoreEnergyParams::default();
        let mix = InstrMix {
            alu: 10,
            mul: 2,
            div: 1,
            load: 3,
            store: 3,
            branch: 4,
        };
        let e = core_energy_pj(&p, &mix, 30);
        let expect = 10.0 * p.alu_pj
            + 2.0 * p.mul_pj
            + p.div_pj
            + 6.0 * p.load_pj
            + 4.0 * p.branch_pj
            + 30.0 * p.background_pj_per_cycle;
        assert!((e - expect).abs() < 1e-9);
    }

    #[test]
    fn efficiency_is_a_simple_ratio() {
        assert_eq!(system_efficiency(200.0, 100.0), 2.0);
        assert_eq!(system_efficiency(80.0, 100.0), 0.8);
    }
}

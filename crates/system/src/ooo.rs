//! Idealized out-of-order core timing model (paper Section VIII-B).
//!
//! The paper's Q&A argues that an out-of-order core extracts the same
//! ILP a CGRA does but cannot accelerate true-dependency chains — its
//! speculation targets control flow, not data — and that sprinting it
//! monolithically would burn far more energy. This model quantifies
//! the performance side with a *generous* OoO abstraction: perfect
//! branch prediction, a finite instruction window and issue width,
//! dataflow-limited issue through registers, and store→load forwarding
//! through memory. It therefore upper-bounds what a real OoO core of
//! that window could do on the kernels.

use crate::cpu::{Cpu, CpuError, InstrMix, TraceEntry};
use crate::isa::{Instr, MulOp};
use std::collections::HashMap;

/// OoO machine parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OooParams {
    /// Instructions fetched/issued per cycle.
    pub issue_width: u64,
    /// Reorder-buffer size (instructions in flight).
    pub window: usize,
    /// Load-to-use latency (L1 hit).
    pub load_latency: u64,
    /// Multiply latency.
    pub mul_latency: u64,
    /// Divide latency.
    pub div_latency: u64,
}

impl Default for OooParams {
    /// A four-wide, 128-entry machine — large for the comparison's
    /// 750 MHz class, which only strengthens the paper's point.
    fn default() -> Self {
        OooParams {
            issue_width: 4,
            window: 128,
            load_latency: 3,
            mul_latency: 3,
            div_latency: 16,
        }
    }
}

/// Result of the OoO timing analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct OooResult {
    /// Dataflow-limited cycle count.
    pub cycles: u64,
    /// Dynamic instruction mix (identical to the in-order run).
    pub mix: InstrMix,
    /// Final memory (identical to the in-order run).
    pub mem: Vec<u32>,
}

fn reads(i: &Instr) -> (Option<u8>, Option<u8>) {
    match *i {
        Instr::Lui { .. } | Instr::Jal { .. } | Instr::Ecall => (None, None),
        Instr::Jalr { rs1, .. } | Instr::Lw { rs1, .. } | Instr::OpImm { rs1, .. } => {
            (Some(rs1), None)
        }
        Instr::Branch { rs1, rs2, .. }
        | Instr::Sw { rs1, rs2, .. }
        | Instr::Op { rs1, rs2, .. }
        | Instr::MulDiv { rs1, rs2, .. } => (Some(rs1), Some(rs2)),
    }
}

fn writes(i: &Instr) -> Option<u8> {
    match *i {
        Instr::Lui { rd, .. }
        | Instr::Jal { rd, .. }
        | Instr::Jalr { rd, .. }
        | Instr::Lw { rd, .. }
        | Instr::OpImm { rd, .. }
        | Instr::Op { rd, .. }
        | Instr::MulDiv { rd, .. } => (rd != 0).then_some(rd),
        _ => None,
    }
}

/// Schedule a dynamic trace on the idealized OoO machine.
pub fn schedule(trace: &[TraceEntry], params: OooParams) -> u64 {
    let mut reg_ready = [0u64; 32];
    let mut mem_ready: HashMap<u32, u64> = HashMap::new();
    // Completion times of the last `window` instructions (ring buffer).
    let mut inflight: Vec<u64> = Vec::with_capacity(params.window);
    let mut head = 0usize;
    let mut last = 0u64;

    for (i, entry) in trace.iter().enumerate() {
        let fetch_t = i as u64 / params.issue_width;
        let (r1, r2) = reads(&entry.instr);
        let mut issue = fetch_t;
        if let Some(r) = r1 {
            issue = issue.max(reg_ready[r as usize]);
        }
        if let Some(r) = r2 {
            issue = issue.max(reg_ready[r as usize]);
        }
        // Window constraint: cannot issue while the instruction
        // `window` older is still incomplete.
        if inflight.len() == params.window {
            issue = issue.max(inflight[head]);
        }

        let latency = match entry.instr {
            Instr::Lw { .. } => params.load_latency,
            Instr::MulDiv { op, .. } => match op {
                MulOp::Div | MulOp::Divu | MulOp::Rem | MulOp::Remu => params.div_latency,
                _ => params.mul_latency,
            },
            _ => 1,
        };

        // Memory ordering: loads wait for the youngest older store to
        // the same word (perfect disambiguation + forwarding); stores
        // serialize after older accesses to the same word.
        if let Some(addr) = entry.addr {
            if let Some(&t) = mem_ready.get(&addr) {
                issue = issue.max(t);
            }
        }
        let complete = issue + latency;
        if let Some(addr) = entry.addr {
            mem_ready.insert(addr, complete);
        }
        if let Some(rd) = writes(&entry.instr) {
            reg_ready[rd as usize] = complete;
        }

        if inflight.len() == params.window {
            inflight[head] = complete;
            head = (head + 1) % params.window;
        } else {
            inflight.push(complete);
        }
        last = last.max(complete);
    }
    last
}

/// Run a program functionally and price it on the OoO model.
///
/// # Errors
///
/// Propagates functional-execution errors.
pub fn run_ooo(
    program: Vec<u32>,
    dmem: Vec<u32>,
    params: OooParams,
) -> Result<OooResult, CpuError> {
    let (result, trace) = Cpu::new(program, dmem).run_with_trace()?;
    Ok(OooResult {
        cycles: schedule(&trace, params),
        mix: result.mix,
        mem: result.mem,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::programs;
    use uecgra_dfg::kernels;

    #[test]
    fn independent_work_issues_wide() {
        // Eight independent adds on a 4-wide machine: ~3 cycles, not 8.
        let mut a = Assembler::new();
        for rd in 1..=8u8 {
            a.addi(rd, 0, rd as i32);
        }
        a.ecall();
        let r = run_ooo(a.assemble(), vec![], OooParams::default()).unwrap();
        assert!(r.cycles <= 4, "cycles {}", r.cycles);
    }

    #[test]
    fn dependent_chain_is_serial() {
        // A 16-deep add chain cannot beat 16 cycles no matter the width.
        let mut a = Assembler::new();
        a.addi(1, 0, 1);
        for _ in 0..16 {
            a.add(1, 1, 1);
        }
        a.ecall();
        let r = run_ooo(a.assemble(), vec![], OooParams::default()).unwrap();
        assert!(r.cycles >= 16, "cycles {}", r.cycles);
        assert!(r.cycles <= 20);
    }

    #[test]
    fn store_load_forwarding_orders_memory() {
        let mut a = Assembler::new();
        a.addi(1, 0, 42);
        a.sw(0, 1, 0); // mem[0] = 42
        a.lw(2, 0, 0); // must see it
        a.add(3, 2, 2);
        a.ecall();
        let r = run_ooo(a.assemble(), vec![0; 4], OooParams::default()).unwrap();
        assert_eq!(r.mem[0], 42);
        // The load waits for the store: >= store issue + 1 + load lat.
        assert!(r.cycles >= 5, "cycles {}", r.cycles);
    }

    #[test]
    fn ooo_is_never_slower_than_in_order_on_kernels() {
        for k in [
            kernels::dither::build_with_pixels(40),
            kernels::fft::build_with_group(40),
        ] {
            let in_order = programs::run_on_core(k.name, k.iters, k.mem.clone()).unwrap();
            let program = match k.name {
                "dither" => programs::dither_program(k.iters),
                _ => programs::fft_program(k.iters),
            };
            let ooo = run_ooo(program, k.mem.clone(), OooParams::default()).unwrap();
            assert_eq!(ooo.mem, in_order.mem, "{}: functional mismatch", k.name);
            assert!(
                ooo.cycles <= in_order.cycles,
                "{}: OoO {} vs in-order {}",
                k.name,
                ooo.cycles,
                in_order.cycles
            );
        }
    }

    #[test]
    fn ilp_rich_fft_gains_much_more_than_llist() {
        // The paper's VIII-B point: OoO extracts ILP (fft) but cannot
        // accelerate a pointer chase (llist).
        let fft = kernels::fft::build_with_group(60);
        let fio = programs::run_on_core("fft", 60, fft.mem.clone()).unwrap();
        let fooo = run_ooo(
            programs::fft_program(60),
            fft.mem.clone(),
            OooParams::default(),
        )
        .unwrap();
        let fft_gain = fio.cycles as f64 / fooo.cycles as f64;

        let ll = kernels::llist::build_with_hops(60);
        let lio = programs::run_on_core("llist", 60, ll.mem.clone()).unwrap();
        let looo = run_ooo(
            programs::llist_program(60),
            ll.mem.clone(),
            OooParams::default(),
        )
        .unwrap();
        let llist_gain = lio.cycles as f64 / looo.cycles as f64;

        assert!(fft_gain > 2.0, "fft OoO gain {fft_gain}");
        assert!(
            llist_gain < fft_gain / 1.5,
            "llist gain {llist_gain} too close"
        );
    }

    #[test]
    fn window_limits_extractable_ilp() {
        let k = kernels::fft::build_with_group(60);
        let wide = run_ooo(
            programs::fft_program(60),
            k.mem.clone(),
            OooParams::default(),
        )
        .unwrap();
        let narrow = run_ooo(
            programs::fft_program(60),
            k.mem.clone(),
            OooParams {
                window: 8,
                issue_width: 1,
                ..OooParams::default()
            },
        )
        .unwrap();
        assert!(narrow.cycles > wide.cycles);
    }
}

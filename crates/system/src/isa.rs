//! RV32IM instruction set: definition, encoding, decoding.
//!
//! The system-integration study (paper Section VI-D) compares the
//! CGRAs against a 750 MHz in-order RV32IM core. This module defines
//! the instruction subset the kernels need — the full RV32I register/
//! immediate/branch/load-store groups plus the M extension — with
//! standard binary encodings, so programs round-trip through real
//! machine words.

use std::fmt;

/// Comparison used by conditional branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchOp {
    /// `beq`
    Eq,
    /// `bne`
    Ne,
    /// `blt` (signed)
    Lt,
    /// `bge` (signed)
    Ge,
    /// `bltu`
    Ltu,
    /// `bgeu`
    Geu,
}

/// ALU operation (register-register and, where legal, immediate forms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluOp {
    /// `add`/`addi`
    Add,
    /// `sub` (register form only)
    Sub,
    /// `sll`/`slli`
    Sll,
    /// `slt`/`slti`
    Slt,
    /// `sltu`/`sltiu`
    Sltu,
    /// `xor`/`xori`
    Xor,
    /// `srl`/`srli`
    Srl,
    /// `sra`/`srai`
    Sra,
    /// `or`/`ori`
    Or,
    /// `and`/`andi`
    And,
}

/// M-extension operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MulOp {
    /// `mul`
    Mul,
    /// `mulh`
    Mulh,
    /// `mulhsu`
    Mulhsu,
    /// `mulhu`
    Mulhu,
    /// `div`
    Div,
    /// `divu`
    Divu,
    /// `rem`
    Rem,
    /// `remu`
    Remu,
}

/// One RV32IM instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// `lui rd, imm20` (imm is the final register value's upper bits).
    Lui {
        /// Destination register.
        rd: u8,
        /// Upper-immediate value (low 12 bits must be zero).
        imm: u32,
    },
    /// `jal rd, offset`
    Jal {
        /// Link register.
        rd: u8,
        /// Byte offset from this instruction.
        offset: i32,
    },
    /// `jalr rd, rs1, offset`
    Jalr {
        /// Link register.
        rd: u8,
        /// Base register.
        rs1: u8,
        /// Byte offset.
        offset: i32,
    },
    /// Conditional branch.
    Branch {
        /// Comparison.
        op: BranchOp,
        /// First source.
        rs1: u8,
        /// Second source.
        rs2: u8,
        /// Byte offset from this instruction.
        offset: i32,
    },
    /// `lw rd, offset(rs1)`
    Lw {
        /// Destination.
        rd: u8,
        /// Base register.
        rs1: u8,
        /// Byte offset.
        offset: i32,
    },
    /// `sw rs2, offset(rs1)`
    Sw {
        /// Base register.
        rs1: u8,
        /// Value register.
        rs2: u8,
        /// Byte offset.
        offset: i32,
    },
    /// ALU with immediate (`addi`, `slli`, …; no `sub` form).
    OpImm {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: u8,
        /// Source.
        rs1: u8,
        /// Sign-extended 12-bit immediate (shift amount for shifts).
        imm: i32,
    },
    /// ALU register-register.
    Op {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: u8,
        /// First source.
        rs1: u8,
        /// Second source.
        rs2: u8,
    },
    /// M-extension register-register.
    MulDiv {
        /// Operation.
        op: MulOp,
        /// Destination.
        rd: u8,
        /// First source.
        rs1: u8,
        /// Second source.
        rs2: u8,
    },
    /// `ecall` — used as the halt convention by the simulator.
    Ecall,
}

/// Errors from decoding a machine word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError(pub u32);

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode instruction word {:#010x}", self.0)
    }
}

impl std::error::Error for DecodeError {}

fn enc_b_imm(offset: i32) -> u32 {
    let imm = offset as u32;
    ((imm >> 12) & 1) << 31
        | ((imm >> 5) & 0x3F) << 25
        | ((imm >> 1) & 0xF) << 8
        | ((imm >> 11) & 1) << 7
}

fn dec_b_imm(w: u32) -> i32 {
    let imm = ((w >> 31) & 1) << 12
        | ((w >> 7) & 1) << 11
        | ((w >> 25) & 0x3F) << 5
        | ((w >> 8) & 0xF) << 1;
    ((imm << 19) as i32) >> 19
}

fn enc_j_imm(offset: i32) -> u32 {
    let imm = offset as u32;
    ((imm >> 20) & 1) << 31
        | ((imm >> 1) & 0x3FF) << 21
        | ((imm >> 11) & 1) << 20
        | ((imm >> 12) & 0xFF) << 12
}

fn dec_j_imm(w: u32) -> i32 {
    let imm = ((w >> 31) & 1) << 20
        | ((w >> 12) & 0xFF) << 12
        | ((w >> 20) & 1) << 11
        | ((w >> 21) & 0x3FF) << 1;
    ((imm << 11) as i32) >> 11
}

impl Instr {
    /// Encode to the standard RV32 machine word.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range fields (register ≥ 32, immediate outside
    /// its encoding range) — programs are built by the assembler,
    /// which validates ranges.
    pub fn encode(self) -> u32 {
        let r = |x: u8| {
            assert!(x < 32, "register x{x} out of range");
            u32::from(x)
        };
        let i12 = |v: i32| {
            assert!((-2048..=2047).contains(&v), "imm12 {v} out of range");
            (v as u32) & 0xFFF
        };
        match self {
            Instr::Lui { rd, imm } => {
                assert_eq!(imm & 0xFFF, 0, "lui immediate has low bits");
                imm | r(rd) << 7 | 0x37
            }
            Instr::Jal { rd, offset } => enc_j_imm(offset) | r(rd) << 7 | 0x6F,
            Instr::Jalr { rd, rs1, offset } => i12(offset) << 20 | r(rs1) << 15 | r(rd) << 7 | 0x67,
            Instr::Branch {
                op,
                rs1,
                rs2,
                offset,
            } => {
                let funct3 = match op {
                    BranchOp::Eq => 0b000,
                    BranchOp::Ne => 0b001,
                    BranchOp::Lt => 0b100,
                    BranchOp::Ge => 0b101,
                    BranchOp::Ltu => 0b110,
                    BranchOp::Geu => 0b111,
                };
                enc_b_imm(offset) | r(rs2) << 20 | r(rs1) << 15 | funct3 << 12 | 0x63
            }
            Instr::Lw { rd, rs1, offset } => {
                i12(offset) << 20 | r(rs1) << 15 | 0b010 << 12 | r(rd) << 7 | 0x03
            }
            Instr::Sw { rs1, rs2, offset } => {
                let imm = i12(offset);
                (imm >> 5) << 25
                    | r(rs2) << 20
                    | r(rs1) << 15
                    | 0b010 << 12
                    | (imm & 0x1F) << 7
                    | 0x23
            }
            Instr::OpImm { op, rd, rs1, imm } => {
                let (funct3, upper) = match op {
                    AluOp::Add => (0b000, None),
                    AluOp::Slt => (0b010, None),
                    AluOp::Sltu => (0b011, None),
                    AluOp::Xor => (0b100, None),
                    AluOp::Or => (0b110, None),
                    AluOp::And => (0b111, None),
                    AluOp::Sll => (0b001, Some(0)),
                    AluOp::Srl => (0b101, Some(0)),
                    AluOp::Sra => (0b101, Some(0x20)),
                    AluOp::Sub => panic!("subi does not exist; use addi with -imm"),
                };
                let immf = match upper {
                    Some(hi) => {
                        assert!((0..32).contains(&imm), "shift amount {imm} out of range");
                        (hi << 5 | imm as u32) & 0xFFF
                    }
                    None => i12(imm),
                };
                immf << 20 | r(rs1) << 15 | funct3 << 12 | r(rd) << 7 | 0x13
            }
            Instr::Op { op, rd, rs1, rs2 } => {
                let (funct3, funct7) = match op {
                    AluOp::Add => (0b000, 0x00),
                    AluOp::Sub => (0b000, 0x20),
                    AluOp::Sll => (0b001, 0x00),
                    AluOp::Slt => (0b010, 0x00),
                    AluOp::Sltu => (0b011, 0x00),
                    AluOp::Xor => (0b100, 0x00),
                    AluOp::Srl => (0b101, 0x00),
                    AluOp::Sra => (0b101, 0x20),
                    AluOp::Or => (0b110, 0x00),
                    AluOp::And => (0b111, 0x00),
                };
                funct7 << 25 | r(rs2) << 20 | r(rs1) << 15 | funct3 << 12 | r(rd) << 7 | 0x33
            }
            Instr::MulDiv { op, rd, rs1, rs2 } => {
                let funct3 = match op {
                    MulOp::Mul => 0b000,
                    MulOp::Mulh => 0b001,
                    MulOp::Mulhsu => 0b010,
                    MulOp::Mulhu => 0b011,
                    MulOp::Div => 0b100,
                    MulOp::Divu => 0b101,
                    MulOp::Rem => 0b110,
                    MulOp::Remu => 0b111,
                };
                0x01 << 25 | r(rs2) << 20 | r(rs1) << 15 | funct3 << 12 | r(rd) << 7 | 0x33
            }
            Instr::Ecall => 0x0000_0073,
        }
    }

    /// Decode a machine word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] for words outside the supported subset.
    pub fn decode(w: u32) -> Result<Instr, DecodeError> {
        let opcode = w & 0x7F;
        let rd = ((w >> 7) & 0x1F) as u8;
        let rs1 = ((w >> 15) & 0x1F) as u8;
        let rs2 = ((w >> 20) & 0x1F) as u8;
        let funct3 = (w >> 12) & 0x7;
        let funct7 = w >> 25;
        let i_imm = (w as i32) >> 20;
        match opcode {
            0x37 => Ok(Instr::Lui {
                rd,
                imm: w & 0xFFFF_F000,
            }),
            0x6F => Ok(Instr::Jal {
                rd,
                offset: dec_j_imm(w),
            }),
            0x67 if funct3 == 0 => Ok(Instr::Jalr {
                rd,
                rs1,
                offset: i_imm,
            }),
            0x63 => {
                let op = match funct3 {
                    0b000 => BranchOp::Eq,
                    0b001 => BranchOp::Ne,
                    0b100 => BranchOp::Lt,
                    0b101 => BranchOp::Ge,
                    0b110 => BranchOp::Ltu,
                    0b111 => BranchOp::Geu,
                    _ => return Err(DecodeError(w)),
                };
                Ok(Instr::Branch {
                    op,
                    rs1,
                    rs2,
                    offset: dec_b_imm(w),
                })
            }
            0x03 if funct3 == 0b010 => Ok(Instr::Lw {
                rd,
                rs1,
                offset: i_imm,
            }),
            0x23 if funct3 == 0b010 => {
                let imm = ((w >> 25) << 5 | (w >> 7) & 0x1F) as i32;
                let imm = (imm << 20) >> 20;
                Ok(Instr::Sw {
                    rs1,
                    rs2,
                    offset: imm,
                })
            }
            0x13 => {
                let op = match funct3 {
                    0b000 => AluOp::Add,
                    0b010 => AluOp::Slt,
                    0b011 => AluOp::Sltu,
                    0b100 => AluOp::Xor,
                    0b110 => AluOp::Or,
                    0b111 => AluOp::And,
                    0b001 => AluOp::Sll,
                    0b101 if funct7 == 0x20 => AluOp::Sra,
                    0b101 => AluOp::Srl,
                    _ => return Err(DecodeError(w)),
                };
                let imm = if matches!(op, AluOp::Sll | AluOp::Srl | AluOp::Sra) {
                    (rs2) as i32
                } else {
                    i_imm
                };
                Ok(Instr::OpImm { op, rd, rs1, imm })
            }
            0x33 if funct7 == 0x01 => {
                let op = match funct3 {
                    0b000 => MulOp::Mul,
                    0b001 => MulOp::Mulh,
                    0b010 => MulOp::Mulhsu,
                    0b011 => MulOp::Mulhu,
                    0b100 => MulOp::Div,
                    0b101 => MulOp::Divu,
                    0b110 => MulOp::Rem,
                    _ => MulOp::Remu,
                };
                Ok(Instr::MulDiv { op, rd, rs1, rs2 })
            }
            0x33 => {
                let op = match (funct3, funct7) {
                    (0b000, 0x00) => AluOp::Add,
                    (0b000, 0x20) => AluOp::Sub,
                    (0b001, 0x00) => AluOp::Sll,
                    (0b010, 0x00) => AluOp::Slt,
                    (0b011, 0x00) => AluOp::Sltu,
                    (0b100, 0x00) => AluOp::Xor,
                    (0b101, 0x00) => AluOp::Srl,
                    (0b101, 0x20) => AluOp::Sra,
                    (0b110, 0x00) => AluOp::Or,
                    (0b111, 0x00) => AluOp::And,
                    _ => return Err(DecodeError(w)),
                };
                Ok(Instr::Op { op, rd, rs1, rs2 })
            }
            0x73 if w == 0x0000_0073 => Ok(Instr::Ecall),
            _ => Err(DecodeError(w)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_encodings() {
        // Cross-checked against the RISC-V spec examples.
        // addi x1, x0, 5
        assert_eq!(
            Instr::OpImm {
                op: AluOp::Add,
                rd: 1,
                rs1: 0,
                imm: 5
            }
            .encode(),
            0x0050_0093
        );
        // add x3, x1, x2
        assert_eq!(
            Instr::Op {
                op: AluOp::Add,
                rd: 3,
                rs1: 1,
                rs2: 2
            }
            .encode(),
            0x0020_81B3
        );
        // ecall
        assert_eq!(Instr::Ecall.encode(), 0x0000_0073);
    }

    #[test]
    fn roundtrip_representative_instructions() {
        let cases = [
            Instr::Lui {
                rd: 5,
                imm: 0xABCD_E000,
            },
            Instr::Jal {
                rd: 1,
                offset: -2048,
            },
            Instr::Jalr {
                rd: 0,
                rs1: 1,
                offset: 16,
            },
            Instr::Branch {
                op: BranchOp::Lt,
                rs1: 3,
                rs2: 4,
                offset: -64,
            },
            Instr::Branch {
                op: BranchOp::Geu,
                rs1: 30,
                rs2: 31,
                offset: 4094,
            },
            Instr::Lw {
                rd: 7,
                rs1: 2,
                offset: -4,
            },
            Instr::Sw {
                rs1: 2,
                rs2: 7,
                offset: 2044,
            },
            Instr::OpImm {
                op: AluOp::And,
                rd: 9,
                rs1: 9,
                imm: 255,
            },
            Instr::OpImm {
                op: AluOp::Sra,
                rd: 9,
                rs1: 9,
                imm: 31,
            },
            Instr::Op {
                op: AluOp::Sub,
                rd: 10,
                rs1: 11,
                rs2: 12,
            },
            Instr::MulDiv {
                op: MulOp::Mul,
                rd: 13,
                rs1: 14,
                rs2: 15,
            },
            Instr::MulDiv {
                op: MulOp::Remu,
                rd: 13,
                rs1: 14,
                rs2: 15,
            },
            Instr::Ecall,
        ];
        for i in cases {
            assert_eq!(Instr::decode(i.encode()), Ok(i), "{i:?}");
        }
    }

    #[test]
    fn branch_offset_encoding_is_symmetric() {
        for offset in [-4096, -2, 0, 2, 64, 4094] {
            let i = Instr::Branch {
                op: BranchOp::Ne,
                rs1: 1,
                rs2: 2,
                offset,
            };
            assert_eq!(Instr::decode(i.encode()), Ok(i), "offset {offset}");
        }
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(Instr::decode(0xFFFF_FFFF).is_err());
        assert!(Instr::decode(0x0000_0000).is_err());
    }

    #[test]
    #[should_panic(expected = "imm12")]
    fn oversized_immediate_panics() {
        Instr::OpImm {
            op: AluOp::Add,
            rd: 1,
            rs1: 0,
            imm: 5000,
        }
        .encode();
    }
}

//! A small RV32IM assembler with labels.
//!
//! Programs for the in-order core are written against this builder:
//! mnemonic methods append instructions, [`Assembler::label`] marks
//! positions (or [`Assembler::forward`]/[`Assembler::bind`] for
//! forward references), and [`Assembler::assemble`] resolves branch
//! offsets and emits encoded machine words.

use crate::isa::{AluOp, BranchOp, Instr, MulOp};

/// A label: an index into the assembler's label table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

#[derive(Debug, Clone, Copy)]
enum Pending {
    Fixed(Instr),
    Branch {
        op: BranchOp,
        rs1: u8,
        rs2: u8,
        target: Label,
    },
    Jal {
        rd: u8,
        target: Label,
    },
}

/// The program builder.
#[derive(Debug, Clone, Default)]
pub struct Assembler {
    instrs: Vec<Pending>,
    labels: Vec<Option<usize>>,
}

impl Assembler {
    /// New empty program.
    pub fn new() -> Assembler {
        Assembler::default()
    }

    /// Create a label bound to the current position.
    pub fn label(&mut self) -> Label {
        let l = Label(self.labels.len());
        self.labels.push(Some(self.instrs.len()));
        l
    }

    /// Create an unbound (forward) label.
    pub fn forward(&mut self) -> Label {
        let l = Label(self.labels.len());
        self.labels.push(None);
        l
    }

    /// Bind a forward label to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, l: Label) {
        assert!(self.labels[l.0].is_none(), "label bound twice");
        self.labels[l.0] = Some(self.instrs.len());
    }

    /// Number of instructions so far.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True when no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    fn push(&mut self, i: Instr) -> &mut Self {
        self.instrs.push(Pending::Fixed(i));
        self
    }

    /// `addi rd, rs1, imm`
    pub fn addi(&mut self, rd: u8, rs1: u8, imm: i32) -> &mut Self {
        self.push(Instr::OpImm {
            op: AluOp::Add,
            rd,
            rs1,
            imm,
        })
    }

    /// `andi rd, rs1, imm`
    pub fn andi(&mut self, rd: u8, rs1: u8, imm: i32) -> &mut Self {
        self.push(Instr::OpImm {
            op: AluOp::And,
            rd,
            rs1,
            imm,
        })
    }

    /// `xori rd, rs1, imm`
    pub fn xori(&mut self, rd: u8, rs1: u8, imm: i32) -> &mut Self {
        self.push(Instr::OpImm {
            op: AluOp::Xor,
            rd,
            rs1,
            imm,
        })
    }

    /// `slli rd, rs1, shamt`
    pub fn slli(&mut self, rd: u8, rs1: u8, shamt: i32) -> &mut Self {
        self.push(Instr::OpImm {
            op: AluOp::Sll,
            rd,
            rs1,
            imm: shamt,
        })
    }

    /// `srli rd, rs1, shamt`
    pub fn srli(&mut self, rd: u8, rs1: u8, shamt: i32) -> &mut Self {
        self.push(Instr::OpImm {
            op: AluOp::Srl,
            rd,
            rs1,
            imm: shamt,
        })
    }

    /// `slti rd, rs1, imm`
    pub fn slti(&mut self, rd: u8, rs1: u8, imm: i32) -> &mut Self {
        self.push(Instr::OpImm {
            op: AluOp::Slt,
            rd,
            rs1,
            imm,
        })
    }

    /// `add rd, rs1, rs2`
    pub fn add(&mut self, rd: u8, rs1: u8, rs2: u8) -> &mut Self {
        self.push(Instr::Op {
            op: AluOp::Add,
            rd,
            rs1,
            rs2,
        })
    }

    /// `sub rd, rs1, rs2`
    pub fn sub(&mut self, rd: u8, rs1: u8, rs2: u8) -> &mut Self {
        self.push(Instr::Op {
            op: AluOp::Sub,
            rd,
            rs1,
            rs2,
        })
    }

    /// `xor rd, rs1, rs2`
    pub fn xor(&mut self, rd: u8, rs1: u8, rs2: u8) -> &mut Self {
        self.push(Instr::Op {
            op: AluOp::Xor,
            rd,
            rs1,
            rs2,
        })
    }

    /// `and rd, rs1, rs2`
    pub fn and(&mut self, rd: u8, rs1: u8, rs2: u8) -> &mut Self {
        self.push(Instr::Op {
            op: AluOp::And,
            rd,
            rs1,
            rs2,
        })
    }

    /// `or rd, rs1, rs2`
    pub fn or(&mut self, rd: u8, rs1: u8, rs2: u8) -> &mut Self {
        self.push(Instr::Op {
            op: AluOp::Or,
            rd,
            rs1,
            rs2,
        })
    }

    /// `srl rd, rs1, rs2`
    pub fn srl(&mut self, rd: u8, rs1: u8, rs2: u8) -> &mut Self {
        self.push(Instr::Op {
            op: AluOp::Srl,
            rd,
            rs1,
            rs2,
        })
    }

    /// `mul rd, rs1, rs2`
    pub fn mul(&mut self, rd: u8, rs1: u8, rs2: u8) -> &mut Self {
        self.push(Instr::MulDiv {
            op: MulOp::Mul,
            rd,
            rs1,
            rs2,
        })
    }

    /// `div rd, rs1, rs2`
    pub fn div(&mut self, rd: u8, rs1: u8, rs2: u8) -> &mut Self {
        self.push(Instr::MulDiv {
            op: MulOp::Div,
            rd,
            rs1,
            rs2,
        })
    }

    /// `lw rd, offset(rs1)`
    pub fn lw(&mut self, rd: u8, rs1: u8, offset: i32) -> &mut Self {
        self.push(Instr::Lw { rd, rs1, offset })
    }

    /// `sw rs2, offset(rs1)`
    pub fn sw(&mut self, rs1: u8, rs2: u8, offset: i32) -> &mut Self {
        self.push(Instr::Sw { rs1, rs2, offset })
    }

    /// Load a 32-bit constant (expands to `lui`+`addi` when needed).
    pub fn li(&mut self, rd: u8, value: u32) -> &mut Self {
        let v = value as i32;
        if (-2048..=2047).contains(&v) {
            return self.addi(rd, 0, v);
        }
        let hi = (value.wrapping_add(0x800)) & 0xFFFF_F000;
        let lo = value.wrapping_sub(hi) as i32;
        self.push(Instr::Lui { rd, imm: hi });
        if lo != 0 {
            self.addi(rd, rd, lo);
        }
        self
    }

    /// Conditional branch to a label.
    pub fn branch_to(&mut self, op: BranchOp, rs1: u8, rs2: u8, target: Label) -> &mut Self {
        self.instrs.push(Pending::Branch {
            op,
            rs1,
            rs2,
            target,
        });
        self
    }

    /// `blt rs1, rs2, target`
    pub fn blt_to(&mut self, rs1: u8, rs2: u8, target: Label) -> &mut Self {
        self.branch_to(BranchOp::Lt, rs1, rs2, target)
    }

    /// `bge rs1, rs2, target`
    pub fn bge_to(&mut self, rs1: u8, rs2: u8, target: Label) -> &mut Self {
        self.branch_to(BranchOp::Ge, rs1, rs2, target)
    }

    /// `beq rs1, rs2, target`
    pub fn beq_to(&mut self, rs1: u8, rs2: u8, target: Label) -> &mut Self {
        self.branch_to(BranchOp::Eq, rs1, rs2, target)
    }

    /// `bne rs1, rs2, target`
    pub fn bne_to(&mut self, rs1: u8, rs2: u8, target: Label) -> &mut Self {
        self.branch_to(BranchOp::Ne, rs1, rs2, target)
    }

    /// `beq` skipping the next `n` instructions.
    pub fn beq_skip(&mut self, rs1: u8, rs2: u8, n: i32) -> &mut Self {
        self.push(Instr::Branch {
            op: BranchOp::Eq,
            rs1,
            rs2,
            offset: (n + 1) * 4,
        })
    }

    /// `jal rd, target`
    pub fn jal_to(&mut self, rd: u8, target: Label) -> &mut Self {
        self.instrs.push(Pending::Jal { rd, target });
        self
    }

    /// `ecall` (halt).
    pub fn ecall(&mut self) -> &mut Self {
        self.push(Instr::Ecall)
    }

    /// Resolve labels and encode.
    ///
    /// # Panics
    ///
    /// Panics on unbound labels.
    pub fn assemble(&self) -> Vec<u32> {
        self.instrs
            .iter()
            .enumerate()
            .map(|(idx, p)| {
                let resolve = |l: Label| -> i32 {
                    let target = self.labels[l.0].expect("unbound label");
                    (target as i32 - idx as i32) * 4
                };
                match *p {
                    Pending::Fixed(i) => i.encode(),
                    Pending::Branch {
                        op,
                        rs1,
                        rs2,
                        target,
                    } => Instr::Branch {
                        op,
                        rs1,
                        rs2,
                        offset: resolve(target),
                    }
                    .encode(),
                    Pending::Jal { rd, target } => Instr::Jal {
                        rd,
                        offset: resolve(target),
                    }
                    .encode(),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_resolve_backward_and_forward() {
        let mut a = Assembler::new();
        let done = a.forward();
        let top = a.label();
        a.addi(1, 1, 1);
        a.beq_to(1, 2, done);
        a.jal_to(0, top);
        a.bind(done);
        a.ecall();
        let words = a.assemble();
        assert_eq!(words.len(), 4);
        // The beq at index 1 targets index 3: offset +8.
        let decoded = Instr::decode(words[1]).unwrap();
        assert_eq!(
            decoded,
            Instr::Branch {
                op: BranchOp::Eq,
                rs1: 1,
                rs2: 2,
                offset: 8
            }
        );
        // The jal at index 2 targets index 0: offset -8.
        assert_eq!(
            Instr::decode(words[2]).unwrap(),
            Instr::Jal { rd: 0, offset: -8 }
        );
    }

    #[test]
    fn li_small_and_large() {
        let mut a = Assembler::new();
        a.li(1, 100);
        assert_eq!(a.len(), 1);
        a.li(2, 0x12345);
        assert!(a.len() >= 2);
        a.ecall();
        let r = crate::cpu::Cpu::new(a.assemble(), vec![]).run().unwrap();
        assert_eq!(r.regs[1], 100);
        assert_eq!(r.regs[2], 0x12345);
    }

    #[test]
    fn li_handles_negative_low_part() {
        let mut a = Assembler::new();
        a.li(1, 0x0000_8800); // low 12 bits sign-extend negative
        a.li(2, 0xFFFF_FFFF);
        a.ecall();
        let r = crate::cpu::Cpu::new(a.assemble(), vec![]).run().unwrap();
        assert_eq!(r.regs[1], 0x8800);
        assert_eq!(r.regs[2], 0xFFFF_FFFF);
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut a = Assembler::new();
        let l = a.forward();
        a.beq_to(0, 0, l);
        a.assemble();
    }
}

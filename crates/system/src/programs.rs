//! The five benchmark kernels hand-lowered to RV32IM.
//!
//! Each program operates on the *same* word-level memory layout as the
//! corresponding dataflow kernel in `uecgra_dfg::kernels` (byte address
//! = 4 × word address), so the core's final memory can be checked
//! against the same host reference — and its cycle count compared
//! against the CGRA's for the paper's Table III.
//!
//! The code is what `-O2` would produce for the paper's Figure 9
//! loops: loop-invariant bases hoisted into registers, pointers
//! strength-reduced, one branch per loop.

use crate::asm::Assembler;
use crate::cpu::{Cpu, CpuError, RunResult};
use uecgra_dfg::kernels::{bf, dither, fft, llist, susan};

/// `llist`: pointer-chase search (Figure 9a).
pub fn llist_program(hops: usize) -> Vec<u32> {
    let tgt = llist::target_for(hops);
    let mut a = Assembler::new();
    a.li(1, llist::HEAD); // hd
    a.li(2, tgt);
    let done = a.forward();
    let found = a.forward();
    let top = a.label();
    a.slli(3, 1, 2); // byte address
    a.lw(4, 3, 0); // v = mem[hd]
    a.beq_to(4, 2, found);
    a.beq_to(4, 0, done);
    a.addi(1, 4, 0); // hd = v
    a.jal_to(0, top);
    a.bind(found);
    a.sw(0, 4, (llist::RESULT_ADDR * 4) as i32);
    a.bind(done);
    a.ecall();
    a.assemble()
}

/// `dither`: Floyd–Steinberg error diffusion (Figure 9b).
pub fn dither_program(n: usize) -> Vec<u32> {
    let mut a = Assembler::new();
    a.li(1, 0); // i
    a.li(2, n as u32);
    a.li(3, dither::SRC_BASE * 4); // src pointer
    a.li(4, dither::dst_base(n) * 4); // dst pointer
    a.li(5, 0); // err
    a.li(6, 127);
    a.li(7, 255);
    let big = a.forward();
    let next = a.forward();
    let top = a.label();
    a.lw(8, 3, 0); // src[i]
    a.add(8, 8, 5); // out = src[i] + err
    a.blt_to(6, 8, big); // 127 < out ?
    a.addi(5, 8, 0); // err = out
    a.sw(4, 0, 0); // dest[i] = 0
    a.jal_to(0, next);
    a.bind(big);
    a.sub(5, 8, 7); // err = out - 255
    a.sw(4, 7, 0); // dest[i] = 255
    a.bind(next);
    a.addi(3, 3, 4);
    a.addi(4, 4, 4);
    a.addi(1, 1, 1);
    a.blt_to(1, 2, top);
    a.ecall();
    a.assemble()
}

/// `susan`: smoothing accumulation (Figure 9c, with the same clamped
/// brightness as the dataflow kernel).
pub fn susan_program(n: usize) -> Vec<u32> {
    let mut a = Assembler::new();
    a.li(1, 0); // x
    a.li(2, n as u32);
    a.li(3, susan::IP_BASE * 4);
    a.li(4, susan::dpt_base(n) * 4);
    a.li(5, susan::cp_base(n) * 4);
    a.li(6, susan::out_base(n) * 4);
    a.li(7, 0); // total
    a.li(8, 0); // area
    let top = a.label();
    a.lw(9, 3, 0); // ip[x]
    a.add(10, 7, 9); // bright
    a.andi(10, 10, 255);
    a.lw(11, 4, 0); // dpt[x]
    a.lw(12, 5, 0); // cp[x]
    a.mul(13, 11, 12); // tmp
    a.add(8, 8, 13); // area += tmp
    a.mul(14, 13, 10); // tmp * bright
    a.add(7, 7, 14); // total += ...
    a.sw(6, 8, 0); // out[x] = area
    a.addi(3, 3, 4);
    a.addi(4, 4, 4);
    a.addi(5, 5, 4);
    a.addi(6, 6, 4);
    a.addi(1, 1, 1);
    a.blt_to(1, 2, top);
    a.ecall();
    a.assemble()
}

/// `fft`: radix-2 butterfly loop (Figure 9d).
pub fn fft_program(g: usize) -> Vec<u32> {
    let mut a = Assembler::new();
    a.li(1, 0); // k
    a.li(2, g as u32);
    a.li(3, fft::RA_BASE * 4);
    a.li(4, fft::rb_base(g) * 4);
    a.li(5, fft::ia_base(g) * 4);
    a.li(6, fft::ib_base(g) * 4);
    a.li(7, fft::WR);
    a.li(8, fft::WI);
    let top = a.label();
    a.lw(9, 4, 0); // rb
    a.lw(10, 6, 0); // ib
    a.mul(11, 9, 7); // Wr*rb
    a.mul(12, 10, 8); // Wi*ib
    a.sub(13, 11, 12); // t_r
    a.mul(11, 9, 8); // Wi*rb
    a.mul(12, 10, 7); // Wr*ib
    a.add(14, 11, 12); // t_i
    a.lw(9, 3, 0); // ra
    a.lw(10, 5, 0); // ia
    a.sub(15, 9, 13);
    a.sw(4, 15, 0); // rb' = ra - t_r
    a.add(15, 9, 13);
    a.sw(3, 15, 0); // ra' = ra + t_r
    a.sub(15, 10, 14);
    a.sw(6, 15, 0); // ib' = ia - t_i
    a.add(15, 10, 14);
    a.sw(5, 15, 0); // ia' = ia + t_i
    a.addi(3, 3, 4);
    a.addi(4, 4, 4);
    a.addi(5, 5, 4);
    a.addi(6, 6, 4);
    a.addi(1, 1, 1);
    a.blt_to(1, 2, top);
    a.ecall();
    a.assemble()
}

/// `bf`: Blowfish Feistel rounds (Figure 9e).
pub fn bf_program(rounds: usize) -> Vec<u32> {
    let mut a = Assembler::new();
    a.li(1, 0); // i
    a.li(2, rounds as u32);
    a.li(3, bf::P_BASE * 4);
    a.li(31, bf::OUT_BASE * 4);
    a.li(20, bf::S_BASE * 4); // S0
    a.li(21, (bf::S_BASE + 256) * 4); // S1
    a.li(22, (bf::S_BASE + 512) * 4); // S2
    a.li(23, (bf::S_BASE + 768) * 4); // S3
    a.li(5, bf::L0);
    a.li(6, bf::R0);
    let top = a.label();
    a.lw(7, 3, 0); // p[i]
    a.xor(8, 5, 7); // xl = left ^ p
    a.srli(9, 8, 24); // a
    a.slli(9, 9, 2);
    a.add(9, 9, 20);
    a.lw(10, 9, 0); // sa
    a.srli(9, 8, 16);
    a.andi(9, 9, 255); // b
    a.slli(9, 9, 2);
    a.add(9, 9, 21);
    a.lw(11, 9, 0); // sb
    a.add(10, 10, 11); // sa + sb
    a.srli(9, 8, 8);
    a.andi(9, 9, 255); // c
    a.slli(9, 9, 2);
    a.add(9, 9, 22);
    a.lw(11, 9, 0); // sc
    a.xor(10, 10, 11); // ^ sc
    a.andi(9, 8, 255); // d
    a.slli(9, 9, 2);
    a.add(9, 9, 23);
    a.lw(11, 9, 0); // sd
    a.add(10, 10, 11); // + sd
    a.xor(10, 10, 7); // ^ p
    a.xor(14, 6, 10); // xr = right ^ F
    a.sw(31, 14, 0); // out[i] = xr
    a.addi(6, 8, 0); // right' = xl
    a.addi(5, 14, 0); // left' = xr
    a.addi(3, 3, 4);
    a.addi(31, 31, 4);
    a.addi(1, 1, 1);
    a.blt_to(1, 2, top);
    a.ecall();
    a.assemble()
}

/// Run a kernel's program on the core over the kernel's own memory
/// image.
///
/// # Errors
///
/// Propagates any [`CpuError`] (none occur for well-formed kernels).
pub fn run_on_core(name: &str, iters: usize, mem: Vec<u32>) -> Result<RunResult, CpuError> {
    let program = match name {
        "llist" => llist_program(iters),
        "dither" => dither_program(iters),
        "susan" => susan_program(iters),
        "fft" => fft_program(iters),
        "bf" => bf_program(iters),
        other => panic!("unknown kernel {other}"),
    };
    Cpu::new(program, mem).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use uecgra_dfg::kernels;

    #[test]
    fn core_programs_match_kernel_references() {
        for k in [
            kernels::llist::build_with_hops(50),
            kernels::dither::build_with_pixels(50),
            kernels::susan::build_with_iters(50),
            kernels::fft::build_with_group(50),
            kernels::bf::build_with_rounds(16),
        ] {
            let r = run_on_core(k.name, k.iters, k.mem.clone())
                .unwrap_or_else(|e| panic!("{}: {e}", k.name));
            assert_eq!(
                r.mem,
                k.reference_memory(),
                "{}: core result diverges from reference",
                k.name
            );
        }
    }

    #[test]
    fn cycles_per_iteration_are_plausible() {
        // A scalar in-order core needs roughly 8-40 cycles per
        // iteration across these kernels (Section VII-D's comparison
        // baseline).
        let budgets = [
            ("llist", 60, 6.0, 14.0),
            ("dither", 60, 8.0, 18.0),
            ("susan", 60, 14.0, 30.0),
            ("fft", 60, 22.0, 48.0),
            ("bf", 32, 25.0, 55.0),
        ];
        for (name, iters, lo, hi) in budgets {
            let k = match name {
                "llist" => kernels::llist::build_with_hops(iters),
                "dither" => kernels::dither::build_with_pixels(iters),
                "susan" => kernels::susan::build_with_iters(iters),
                "fft" => kernels::fft::build_with_group(iters),
                _ => kernels::bf::build_with_rounds(iters),
            };
            let r = run_on_core(k.name, k.iters, k.mem.clone()).unwrap();
            let cpi = r.cycles as f64 / k.iters as f64;
            assert!(
                cpi >= lo && cpi <= hi,
                "{name}: {cpi:.1} cycles/iter outside [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn instruction_mix_reflects_kernel_character() {
        let k = kernels::fft::build_with_group(32);
        let r = run_on_core("fft", 32, k.mem.clone()).unwrap();
        assert_eq!(r.mix.mul, 4 * 32, "four multiplies per butterfly");
        assert_eq!(r.mix.load, 4 * 32);
        assert_eq!(r.mix.store, 4 * 32);

        let k = kernels::bf::build_with_rounds(8);
        let r = run_on_core("bf", 8, k.mem.clone()).unwrap();
        assert_eq!(r.mix.mul, 0, "blowfish has no multiplies");
        assert_eq!(r.mix.load, 5 * 8, "p + four s-box loads per round");
    }

    #[test]
    fn iteration_count_scales_cycles_linearly() {
        let k1 = kernels::dither::build_with_pixels(40);
        let k2 = kernels::dither::build_with_pixels(80);
        let r1 = run_on_core("dither", 40, k1.mem.clone()).unwrap();
        let r2 = run_on_core("dither", 80, k2.mem.clone()).unwrap();
        let ratio = r2.cycles as f64 / r1.cycles as f64;
        assert!((ratio - 2.0).abs() < 0.1, "ratio {ratio}");
    }
}

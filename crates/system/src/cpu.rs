//! In-order RV32IM core: functional execution plus a timing model.
//!
//! The paper's comparison core is a 750 MHz in-order RV32IM similar in
//! implementation style to the CGRAs (Section VI-D). This simulator
//! executes encoded machine words with a single-issue in-order timing
//! model: one instruction per cycle, plus a one-cycle load-use bubble,
//! a taken-branch redirect penalty, and multi-cycle multiply/divide —
//! the classic five-stage-pipeline cost structure.

use crate::isa::{AluOp, BranchOp, DecodeError, Instr, MulOp};

/// Timing parameters of the in-order pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingParams {
    /// Extra cycles after a taken branch or jump (fetch redirect).
    pub branch_taken_penalty: u64,
    /// Bubble between a load and an immediately dependent use.
    pub load_use_bubble: u64,
    /// Total occupancy of a multiply (1 = fully pipelined).
    pub mul_cycles: u64,
    /// Total occupancy of a divide/remainder.
    pub div_cycles: u64,
}

impl Default for TimingParams {
    fn default() -> Self {
        TimingParams {
            branch_taken_penalty: 2,
            load_use_bubble: 1,
            mul_cycles: 3,
            div_cycles: 16,
        }
    }
}

/// Dynamic instruction counts by class (for energy estimation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstrMix {
    /// Simple ALU ops (register or immediate) and upper-immediates.
    pub alu: u64,
    /// Multiplies.
    pub mul: u64,
    /// Divides/remainders.
    pub div: u64,
    /// Loads.
    pub load: u64,
    /// Stores.
    pub store: u64,
    /// Branches and jumps.
    pub branch: u64,
}

impl InstrMix {
    /// Total dynamic instructions.
    pub fn total(&self) -> u64 {
        self.alu + self.mul + self.div + self.load + self.store + self.branch
    }
}

/// One executed instruction in a dynamic trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// The instruction.
    pub instr: Instr,
    /// Effective byte address for loads/stores.
    pub addr: Option<u32>,
}

/// Result of running a program to completion.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Cycles under the timing model.
    pub cycles: u64,
    /// Dynamic instruction mix.
    pub mix: InstrMix,
    /// Final data memory (words).
    pub mem: Vec<u32>,
    /// Final register file.
    pub regs: [u32; 32],
}

/// Errors raised during execution.
#[derive(Debug, Clone, PartialEq)]
pub enum CpuError {
    /// Fetch or decode failed.
    Decode(DecodeError),
    /// PC left the program.
    PcOutOfRange(u32),
    /// Unaligned or out-of-bounds data access.
    BadAccess(u32),
    /// Instruction budget exhausted (runaway program).
    Runaway,
}

impl std::fmt::Display for CpuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CpuError::Decode(e) => write!(f, "{e}"),
            CpuError::PcOutOfRange(pc) => write!(f, "pc {pc:#x} out of range"),
            CpuError::BadAccess(a) => write!(f, "bad data access at {a:#x}"),
            CpuError::Runaway => write!(f, "instruction budget exhausted"),
        }
    }
}

impl std::error::Error for CpuError {}

impl From<DecodeError> for CpuError {
    fn from(e: DecodeError) -> Self {
        CpuError::Decode(e)
    }
}

/// The core.
#[derive(Debug, Clone)]
pub struct Cpu {
    /// Program memory (encoded words; PC is a byte address).
    imem: Vec<u32>,
    /// Data memory (words; data addresses are byte addresses).
    dmem: Vec<u32>,
    regs: [u32; 32],
    pc: u32,
    timing: TimingParams,
    max_instrs: u64,
}

impl Cpu {
    /// Create a core with a program and a word-image data memory.
    pub fn new(program: Vec<u32>, dmem: Vec<u32>) -> Cpu {
        Cpu {
            imem: program,
            dmem,
            regs: [0; 32],
            pc: 0,
            timing: TimingParams::default(),
            max_instrs: 200_000_000,
        }
    }

    /// Override the timing parameters.
    pub fn with_timing(mut self, timing: TimingParams) -> Cpu {
        self.timing = timing;
        self
    }

    /// Override the runaway budget.
    pub fn with_max_instrs(mut self, max: u64) -> Cpu {
        self.max_instrs = max;
        self
    }

    fn read_word(&self, addr: u32) -> Result<u32, CpuError> {
        if !addr.is_multiple_of(4) {
            return Err(CpuError::BadAccess(addr));
        }
        self.dmem
            .get((addr / 4) as usize)
            .copied()
            .ok_or(CpuError::BadAccess(addr))
    }

    fn write_word(&mut self, addr: u32, value: u32) -> Result<(), CpuError> {
        if !addr.is_multiple_of(4) {
            return Err(CpuError::BadAccess(addr));
        }
        match self.dmem.get_mut((addr / 4) as usize) {
            Some(w) => {
                *w = value;
                Ok(())
            }
            None => Err(CpuError::BadAccess(addr)),
        }
    }

    fn set_reg(&mut self, rd: u8, value: u32) {
        if rd != 0 {
            self.regs[rd as usize] = value;
        }
    }

    /// Run until `ecall`, returning cycles, instruction mix, and final
    /// state.
    ///
    /// # Errors
    ///
    /// Returns a [`CpuError`] on decode failures, bad memory accesses,
    /// a wild PC, or budget exhaustion.
    pub fn run(self) -> Result<RunResult, CpuError> {
        self.run_inner(None).map(|(r, _)| r)
    }

    /// Like [`Cpu::run`], additionally returning the dynamic
    /// instruction trace (used by the out-of-order timing model).
    ///
    /// # Errors
    ///
    /// Same as [`Cpu::run`].
    pub fn run_with_trace(self) -> Result<(RunResult, Vec<TraceEntry>), CpuError> {
        let mut trace = Vec::new();
        let r = self.run_inner(Some(&mut trace))?;
        Ok((r.0, trace))
    }

    fn run_inner(
        mut self,
        mut trace: Option<&mut Vec<TraceEntry>>,
    ) -> Result<(RunResult, ()), CpuError> {
        let t = self.timing;
        let mut cycles: u64 = 0;
        let mut mix = InstrMix::default();
        let mut last_load_rd: Option<u8> = None;
        let mut executed: u64 = 0;

        loop {
            if executed >= self.max_instrs {
                return Err(CpuError::Runaway);
            }
            executed += 1;
            let idx = (self.pc / 4) as usize;
            if !self.pc.is_multiple_of(4) || idx >= self.imem.len() {
                return Err(CpuError::PcOutOfRange(self.pc));
            }
            let instr = Instr::decode(self.imem[idx])?;
            cycles += 1;
            let mut eff_addr: Option<u32> = None;

            // Load-use interlock: one bubble when this instruction
            // sources the previous load's destination.
            if let Some(rd) = last_load_rd.take() {
                if rd != 0 && reads(&instr).contains(&rd) {
                    cycles += t.load_use_bubble;
                }
            }

            let mut next_pc = self.pc.wrapping_add(4);
            match instr {
                Instr::Lui { rd, imm } => {
                    mix.alu += 1;
                    self.set_reg(rd, imm);
                }
                Instr::Jal { rd, offset } => {
                    mix.branch += 1;
                    self.set_reg(rd, next_pc);
                    next_pc = self.pc.wrapping_add(offset as u32);
                    cycles += t.branch_taken_penalty;
                }
                Instr::Jalr { rd, rs1, offset } => {
                    mix.branch += 1;
                    let target = self.regs[rs1 as usize].wrapping_add(offset as u32) & !1;
                    self.set_reg(rd, next_pc);
                    next_pc = target;
                    cycles += t.branch_taken_penalty;
                }
                Instr::Branch {
                    op,
                    rs1,
                    rs2,
                    offset,
                } => {
                    mix.branch += 1;
                    let a = self.regs[rs1 as usize];
                    let b = self.regs[rs2 as usize];
                    let taken = match op {
                        BranchOp::Eq => a == b,
                        BranchOp::Ne => a != b,
                        BranchOp::Lt => (a as i32) < (b as i32),
                        BranchOp::Ge => (a as i32) >= (b as i32),
                        BranchOp::Ltu => a < b,
                        BranchOp::Geu => a >= b,
                    };
                    if taken {
                        next_pc = self.pc.wrapping_add(offset as u32);
                        cycles += t.branch_taken_penalty;
                    }
                }
                Instr::Lw { rd, rs1, offset } => {
                    mix.load += 1;
                    let addr = self.regs[rs1 as usize].wrapping_add(offset as u32);
                    eff_addr = Some(addr);
                    let v = self.read_word(addr)?;
                    self.set_reg(rd, v);
                    last_load_rd = Some(rd);
                }
                Instr::Sw { rs1, rs2, offset } => {
                    mix.store += 1;
                    let addr = self.regs[rs1 as usize].wrapping_add(offset as u32);
                    eff_addr = Some(addr);
                    self.write_word(addr, self.regs[rs2 as usize])?;
                }
                Instr::OpImm { op, rd, rs1, imm } => {
                    mix.alu += 1;
                    let v = alu(op, self.regs[rs1 as usize], imm as u32);
                    self.set_reg(rd, v);
                }
                Instr::Op { op, rd, rs1, rs2 } => {
                    mix.alu += 1;
                    let v = alu(op, self.regs[rs1 as usize], self.regs[rs2 as usize]);
                    self.set_reg(rd, v);
                }
                Instr::MulDiv { op, rd, rs1, rs2 } => {
                    let a = self.regs[rs1 as usize];
                    let b = self.regs[rs2 as usize];
                    let v = muldiv(op, a, b);
                    self.set_reg(rd, v);
                    match op {
                        MulOp::Mul | MulOp::Mulh | MulOp::Mulhsu | MulOp::Mulhu => {
                            mix.mul += 1;
                            cycles += t.mul_cycles - 1;
                        }
                        _ => {
                            mix.div += 1;
                            cycles += t.div_cycles - 1;
                        }
                    }
                }
                Instr::Ecall => {
                    if let Some(t) = trace.as_deref_mut() {
                        t.push(TraceEntry { instr, addr: None });
                    }
                    return Ok((
                        RunResult {
                            cycles,
                            mix,
                            mem: self.dmem,
                            regs: self.regs,
                        },
                        (),
                    ));
                }
            }
            if let Some(t) = trace.as_deref_mut() {
                t.push(TraceEntry {
                    instr,
                    addr: eff_addr,
                });
            }
            self.pc = next_pc;
        }
    }
}

fn alu(op: AluOp, a: u32, b: u32) -> u32 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Sll => a.wrapping_shl(b & 31),
        AluOp::Slt => ((a as i32) < (b as i32)) as u32,
        AluOp::Sltu => (a < b) as u32,
        AluOp::Xor => a ^ b,
        AluOp::Srl => a.wrapping_shr(b & 31),
        AluOp::Sra => ((a as i32).wrapping_shr(b & 31)) as u32,
        AluOp::Or => a | b,
        AluOp::And => a & b,
    }
}

fn muldiv(op: MulOp, a: u32, b: u32) -> u32 {
    match op {
        MulOp::Mul => a.wrapping_mul(b),
        MulOp::Mulh => ((i64::from(a as i32) * i64::from(b as i32)) >> 32) as u32,
        MulOp::Mulhsu => ((i64::from(a as i32) * i64::from(b)) >> 32) as u32,
        MulOp::Mulhu => ((u64::from(a) * u64::from(b)) >> 32) as u32,
        MulOp::Div => {
            if b == 0 {
                u32::MAX
            } else {
                ((a as i32).wrapping_div(b as i32)) as u32
            }
        }
        MulOp::Divu => a.checked_div(b).unwrap_or(u32::MAX),
        MulOp::Rem => {
            if b == 0 {
                a
            } else {
                ((a as i32).wrapping_rem(b as i32)) as u32
            }
        }
        MulOp::Remu => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
    }
}

/// Registers an instruction reads (for the load-use interlock).
fn reads(i: &Instr) -> Vec<u8> {
    match *i {
        Instr::Lui { .. } | Instr::Jal { .. } | Instr::Ecall => vec![],
        Instr::Jalr { rs1, .. } | Instr::Lw { rs1, .. } | Instr::OpImm { rs1, .. } => vec![rs1],
        Instr::Branch { rs1, rs2, .. }
        | Instr::Sw { rs1, rs2, .. }
        | Instr::Op { rs1, rs2, .. }
        | Instr::MulDiv { rs1, rs2, .. } => vec![rs1, rs2],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;

    #[test]
    fn arithmetic_and_halt() {
        let mut a = Assembler::new();
        a.addi(1, 0, 21);
        a.add(2, 1, 1);
        a.sw(0, 2, 0);
        a.ecall();
        let r = Cpu::new(a.assemble(), vec![0; 8]).run().unwrap();
        assert_eq!(r.mem[0], 42);
        assert_eq!(r.mix.alu, 2);
        assert_eq!(r.mix.store, 1);
    }

    #[test]
    fn loop_sums_memory() {
        // x1 = base, x2 = i, x3 = n, x4 = acc
        let mut a = Assembler::new();
        a.addi(3, 0, 8);
        let top = a.label();
        a.lw(5, 1, 0); // t = mem[ptr]
        a.add(4, 4, 5);
        a.addi(1, 1, 4);
        a.addi(2, 2, 1);
        a.blt_to(2, 3, top);
        a.sw(0, 4, 0);
        a.ecall();
        let mem: Vec<u32> = (0..8).collect();
        let r = Cpu::new(a.assemble(), mem).run().unwrap();
        assert_eq!(r.mem[0], (0..8).sum::<u32>());
        assert_eq!(r.mix.load, 8);
        assert_eq!(r.mix.branch, 8);
    }

    #[test]
    fn load_use_bubble_counted() {
        let mut dep = Assembler::new();
        dep.lw(1, 0, 0);
        dep.add(2, 1, 1); // immediately dependent
        dep.ecall();
        let mut indep = Assembler::new();
        indep.lw(1, 0, 0);
        indep.add(2, 3, 3); // independent
        indep.ecall();
        let c_dep = Cpu::new(dep.assemble(), vec![7; 4]).run().unwrap().cycles;
        let c_ind = Cpu::new(indep.assemble(), vec![7; 4]).run().unwrap().cycles;
        assert_eq!(c_dep, c_ind + 1);
    }

    #[test]
    fn taken_branch_costs_redirect() {
        let mut taken = Assembler::new();
        taken.addi(1, 0, 1);
        taken.beq_skip(0, 0, 1); // always taken, skips one instr
        taken.addi(2, 0, 9); // skipped
        taken.ecall();
        let mut fall = Assembler::new();
        fall.addi(1, 0, 1);
        fall.beq_skip(1, 0, 1); // never taken
        fall.addi(2, 0, 9);
        fall.ecall();
        let rt = Cpu::new(taken.assemble(), vec![0; 4]).run().unwrap();
        let rf = Cpu::new(fall.assemble(), vec![0; 4]).run().unwrap();
        assert_eq!(rt.regs[2], 0, "skipped");
        assert_eq!(rf.regs[2], 9);
        // Taken: 3 instrs + 2 redirect = 5; fall-through: 4 instrs.
        assert_eq!(rt.cycles, 5);
        assert_eq!(rf.cycles, 4);
    }

    #[test]
    fn mul_and_div_latency() {
        let mut a = Assembler::new();
        a.addi(1, 0, 6);
        a.addi(2, 0, 7);
        a.mul(3, 1, 2);
        a.div(4, 3, 2);
        a.ecall();
        let r = Cpu::new(a.assemble(), vec![0; 4]).run().unwrap();
        assert_eq!(r.regs[3], 42);
        assert_eq!(r.regs[4], 6);
        // 5 instrs + (3-1) mul + (16-1) div = 22.
        assert_eq!(r.cycles, 22);
    }

    #[test]
    fn x0_is_hardwired_zero() {
        let mut a = Assembler::new();
        a.addi(0, 0, 99);
        a.sw(0, 0, 0);
        a.ecall();
        let r = Cpu::new(a.assemble(), vec![5; 4]).run().unwrap();
        assert_eq!(r.mem[0], 0, "x0 stays zero");
    }

    #[test]
    fn runaway_is_caught() {
        let mut a = Assembler::new();
        let top = a.label();
        a.jal_to(0, top);
        let err = Cpu::new(a.assemble(), vec![])
            .with_max_instrs(1000)
            .run()
            .unwrap_err();
        assert_eq!(err, CpuError::Runaway);
    }

    #[test]
    fn bad_access_is_reported() {
        let mut a = Assembler::new();
        a.lw(1, 0, 0x7FC);
        a.ecall();
        let err = Cpu::new(a.assemble(), vec![0; 4]).run().unwrap_err();
        assert!(matches!(err, CpuError::BadAccess(_)));
    }
}

//! System-integration substrate: the RV32IM comparison core and the
//! offload cost model (paper Section VI-D, Table III).
//!
//! * [`isa`] — RV32IM instruction definitions with real binary
//!   encode/decode;
//! * [`asm`] — a label-resolving assembler for building programs;
//! * [`cpu`] — functional execution with an in-order single-issue
//!   timing model (load-use interlock, redirect penalties, multi-cycle
//!   mul/div);
//! * [`programs`] — the five paper kernels hand-lowered to RV32IM over
//!   the same memory layouts as their dataflow versions;
//! * [`offload`] — configuration/data-transfer amortization and core
//!   energy pricing.
//!
//! # Example
//!
//! ```
//! use uecgra_system::programs;
//! use uecgra_dfg::kernels;
//!
//! let k = kernels::dither::build_with_pixels(32);
//! let run = programs::run_on_core("dither", 32, k.mem.clone()).unwrap();
//! assert_eq!(run.mem, k.reference_memory());
//! assert!(run.cycles > 32 * 8, "a scalar core needs many cycles/pixel");
//! ```

#![warn(missing_docs)]

pub mod asm;
pub mod cpu;
pub mod isa;
pub mod offload;
pub mod ooo;
pub mod programs;

pub use asm::Assembler;
pub use cpu::{Cpu, CpuError, InstrMix, RunResult, TimingParams, TraceEntry};
pub use isa::{AluOp, BranchOp, Instr, MulOp};
pub use offload::{
    core_energy_pj, system_efficiency, system_speedup, CoreEnergyParams, OffloadOverheads,
};
pub use ooo::{run_ooo, OooParams, OooResult};

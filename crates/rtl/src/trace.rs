//! VCD waveform dumping.
//!
//! Renders a fabric run's recorded events as a Value Change Dump file
//! viewable in GTKWave & co: one `fire` wire and one `bps` wire per
//! non-gated PE, pulsing on the PLL tick each event occurs. Useful for
//! eyeballing recurrence pipelines the way the paper's Figure 1(d)
//! pipeline diagram does.

use crate::fabric::Activity;
use std::fmt::Write as _;
use uecgra_compiler::bitstream::{Bitstream, PeRole};
use uecgra_compiler::mapping::Coord;

/// Why a waveform could not be rendered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceError {
    /// The run had activity but was executed without
    /// `FabricConfig::record_events`, so there are no events to dump
    /// (an empty wave would silently look like a dead fabric).
    EventsNotRecorded,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::EventsNotRecorded => write!(
                f,
                "run the fabric with `record_events: true` to dump waveforms"
            ),
        }
    }
}

impl std::error::Error for TraceError {}

/// VCD identifier for signal `n` (printable ASCII, excluding space).
fn vcd_id(n: usize) -> String {
    let mut n = n;
    let mut s = String::new();
    loop {
        s.push((33 + (n % 94)) as u8 as char);
        n /= 94;
        if n == 0 {
            break;
        }
    }
    s
}

/// Render a run as VCD text. PEs are named `pe_<x>_<y>_<op>`; only
/// non-gated PEs get signals. The timescale is one PLL tick.
///
/// # Errors
///
/// Returns [`TraceError::EventsNotRecorded`] if the run had activity
/// but was executed without `record_events` (nothing to dump would
/// silently produce an empty wave).
pub fn to_vcd(activity: &Activity, bitstream: &Bitstream) -> Result<String, TraceError> {
    let total_fires: u64 = activity.fires.iter().flatten().sum();
    if total_fires > 0 && activity.events.is_empty() {
        return Err(TraceError::EventsNotRecorded);
    }

    // Collect signals.
    struct Signal {
        id_fire: String,
        id_bps: String,
        name: String,
        pe: Coord,
    }
    let mut signals: Vec<Signal> = Vec::new();
    for (y, row) in bitstream.grid.iter().enumerate() {
        for (x, cfg) in row.iter().enumerate() {
            let suffix = match cfg.role {
                PeRole::Gated => continue,
                PeRole::RouteOnly => "bypass".to_string(),
                PeRole::Compute(op) => op.mnemonic().to_string(),
            };
            let n = signals.len();
            signals.push(Signal {
                id_fire: vcd_id(2 * n),
                id_bps: vcd_id(2 * n + 1),
                name: format!("pe_{x}_{y}_{suffix}"),
                pe: (x, y),
            });
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "$date reproduction run $end");
    let _ = writeln!(out, "$version uecgra-rtl $end");
    let _ = writeln!(out, "$timescale 1ns $end");
    let _ = writeln!(out, "$scope module fabric $end");
    for s in &signals {
        let _ = writeln!(out, "$var wire 1 {} {}_fire $end", s.id_fire, s.name);
        let _ = writeln!(out, "$var wire 1 {} {}_bps $end", s.id_bps, s.name);
    }
    let _ = writeln!(out, "$upscope $end");
    let _ = writeln!(out, "$enddefinitions $end");

    // Initial values.
    let _ = writeln!(out, "#0");
    let _ = writeln!(out, "$dumpvars");
    for s in &signals {
        let _ = writeln!(out, "0{}", s.id_fire);
        let _ = writeln!(out, "0{}", s.id_bps);
    }
    let _ = writeln!(out, "$end");

    // Events: pulse high at the event tick, low at the next tick.
    let lookup: std::collections::HashMap<Coord, usize> =
        signals.iter().enumerate().map(|(i, s)| (s.pe, i)).collect();
    let mut changes: Vec<(u64, String)> = Vec::new();
    for e in &activity.events {
        let Some(&i) = lookup.get(&e.pe) else {
            continue;
        };
        let id = if e.is_fire {
            &signals[i].id_fire
        } else {
            &signals[i].id_bps
        };
        changes.push((e.tick, format!("1{id}")));
        changes.push((e.tick + 1, format!("0{id}")));
    }
    changes.sort();
    // Time zero is already open from the $dumpvars block.
    let mut last_t = 0u64;
    for (t, line) in changes {
        if t != last_t {
            let _ = writeln!(out, "#{t}");
            last_t = t;
        }
        let _ = writeln!(out, "{line}");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::{Fabric, FabricConfig};
    use uecgra_clock::VfMode;
    use uecgra_compiler::mapping::{ArrayShape, MappedKernel};
    use uecgra_dfg::kernels;

    fn traced_run() -> (Bitstream, Activity) {
        let k = kernels::llist::build_with_hops(10);
        let mapped = MappedKernel::map(&k.dfg, ArrayShape::default(), 3).unwrap();
        let modes = vec![VfMode::Nominal; k.dfg.node_count()];
        let bs = Bitstream::assemble(&k.dfg, &mapped, &modes).unwrap();
        let config = FabricConfig {
            marker: Some(mapped.coord_of(k.iter_marker)),
            record_events: true,
            ..FabricConfig::default()
        };
        let act = Fabric::new(&bs, k.mem.clone(), config).run();
        (bs, act)
    }

    #[test]
    fn vcd_has_header_and_signals() {
        let (bs, act) = traced_run();
        let vcd = to_vcd(&act, &bs).unwrap();
        assert!(vcd.starts_with("$date"));
        assert!(vcd.contains("$enddefinitions $end"));
        assert!(vcd.contains("_fire $end"));
        assert!(vcd.contains("$dumpvars"));
    }

    #[test]
    fn event_count_matches_activity() {
        let (bs, act) = traced_run();
        let fires: u64 = act.fires.iter().flatten().sum();
        let bypasses: u64 = act.bypass_tokens.iter().flatten().sum();
        assert_eq!(act.events.len() as u64, fires + bypasses);
        let vcd = to_vcd(&act, &bs).unwrap();
        // Each event contributes a rise and a fall.
        let rises = vcd.lines().filter(|l| l.starts_with('1')).count() as u64;
        assert_eq!(rises, fires + bypasses);
    }

    #[test]
    fn timestamps_are_monotone() {
        let (bs, act) = traced_run();
        let vcd = to_vcd(&act, &bs).unwrap();
        let mut last = 0i64;
        for line in vcd.lines() {
            if let Some(t) = line.strip_prefix('#') {
                let t: i64 = t.parse().unwrap();
                assert!(
                    t > last || (t == 0 && last == 0),
                    "timestamps must strictly increase"
                );
                last = t;
            }
        }
    }

    #[test]
    fn vcd_ids_are_unique_and_printable() {
        let ids: Vec<String> = (0..300).map(vcd_id).collect();
        let set: std::collections::HashSet<&String> = ids.iter().collect();
        assert_eq!(set.len(), ids.len());
        for id in &ids {
            assert!(id.chars().all(|c| ('!'..='~').contains(&c)));
        }
    }

    #[test]
    fn untraced_run_is_rejected() {
        let k = kernels::llist::build_with_hops(10);
        let mapped = MappedKernel::map(&k.dfg, ArrayShape::default(), 3).unwrap();
        let modes = vec![VfMode::Nominal; k.dfg.node_count()];
        let bs = Bitstream::assemble(&k.dfg, &mapped, &modes).unwrap();
        let config = FabricConfig {
            marker: Some(mapped.coord_of(k.iter_marker)),
            ..FabricConfig::default()
        };
        let act = Fabric::new(&bs, k.mem.clone(), config).run();
        assert_eq!(to_vcd(&act, &bs), Err(TraceError::EventsNotRecorded));
        assert!(to_vcd(&act, &bs)
            .unwrap_err()
            .to_string()
            .contains("record_events"));
    }
}

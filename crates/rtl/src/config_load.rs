//! Configuration and data-load cost models.
//!
//! The UE-CGRA is configured by forwarding configuration messages
//! systolically through the array from top to bottom over the existing
//! data network (paper Section IV-A), after the host writes the CSRs
//! and the DMA unit fetches the bitstream. Data is then streamed into
//! the SRAM banks at the memory-bus bandwidth (128 bits/cycle,
//! Section VI-D). This module prices both phases in nominal cycles;
//! the numbers feed the system-level model of Table III.

use uecgra_compiler::bitstream::Bitstream;

/// Memory-system bandwidth in 32-bit words per cycle (128 bits/cycle).
pub const DMA_WORDS_PER_CYCLE: u64 = 4;

/// Extra cycles to retarget the multi-rail supply switches
/// (Section VII-D: 3 voltage-scaling cycles).
pub const VOLTAGE_SCALE_CYCLES: u64 = 3;

/// Extra cycles to realign the clock dividers/switchers after a clock
/// reset (2 clock-scaling cycles).
pub const CLOCK_SCALE_CYCLES: u64 = 2;

/// Cycles to stream the configuration into the array.
///
/// Words flow down each column concurrently, one hop per cycle: the
/// pipeline fills in `height` cycles and then drains one word per PE
/// per column. Each PE consumes two 32-bit messages (our 36-bit
/// config word) plus one message per constant/init value.
pub fn config_cycles(bitstream: &Bitstream) -> u64 {
    let height = bitstream.grid.len() as u64;
    let words_per_column: u64 = bitstream
        .grid
        .iter()
        .map(|row| {
            row.iter()
                .map(|cfg| 2 + cfg.constant.is_some() as u64 + cfg.init.is_some() as u64)
                .max()
                .unwrap_or(0)
        })
        .max()
        .unwrap_or(0)
        * height;
    height + words_per_column
}

/// Total reconfiguration cycles for a UE-CGRA (configuration plus DVFS
/// setup). An E-CGRA omits the voltage/clock scaling.
pub fn reconfiguration_cycles(bitstream: &Bitstream, ultra_elastic: bool) -> u64 {
    let base = config_cycles(bitstream);
    if ultra_elastic {
        base + VOLTAGE_SCALE_CYCLES + CLOCK_SCALE_CYCLES
    } else {
        base
    }
}

/// Cycles to DMA `words` of kernel data into the SRAM banks.
pub fn data_load_cycles(words: usize) -> u64 {
    (words as u64).div_ceil(DMA_WORDS_PER_CYCLE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uecgra_clock::VfMode;
    use uecgra_compiler::mapping::{ArrayShape, MappedKernel};
    use uecgra_dfg::kernels;

    fn dither_bitstream() -> Bitstream {
        let k = kernels::dither::build_with_pixels(16);
        let mapped = MappedKernel::map(&k.dfg, ArrayShape::default(), 1).unwrap();
        let modes = vec![VfMode::Nominal; k.dfg.node_count()];
        Bitstream::assemble(&k.dfg, &mapped, &modes).unwrap()
    }

    #[test]
    fn config_cost_scales_with_array_depth() {
        let bs = dither_bitstream();
        let c = config_cycles(&bs);
        // 8-deep array, ≥2 words per PE: at least 8 + 16 cycles.
        assert!(c >= 24, "config cycles {c}");
        // And bounded by the worst case of 4 words per PE.
        assert!(c <= 8 + 4 * 8);
    }

    #[test]
    fn ue_reconfiguration_adds_dvfs_setup() {
        let bs = dither_bitstream();
        let e = reconfiguration_cycles(&bs, false);
        let ue = reconfiguration_cycles(&bs, true);
        assert_eq!(ue - e, VOLTAGE_SCALE_CYCLES + CLOCK_SCALE_CYCLES);
    }

    #[test]
    fn dma_bandwidth_is_128_bits() {
        assert_eq!(data_load_cycles(0), 0);
        assert_eq!(data_load_cycles(1), 1);
        assert_eq!(data_load_cycles(4), 1);
        assert_eq!(data_load_cycles(5), 2);
        assert_eq!(data_load_cycles(2000), 500);
    }
}

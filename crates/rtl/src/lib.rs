//! Cycle-level UE-CGRA architectural simulator.
//!
//! This crate is the reproduction's stand-in for the paper's RTL
//! simulation (PyMTL3-generated Verilog under VCS): a deterministic
//! spatial simulator that executes compiled bitstreams on a grid of
//! elastic PEs.
//!
//! * [`fabric`] — the array itself: per-PE rational clocks, four
//!   bisynchronous input queues per PE, operand/bypass muxing, phi and
//!   br control, multi-purpose registers, and perimeter SRAM access.
//!   All-nominal clocks model an **E-CGRA**; mixed clocks model the
//!   **UE-CGRA**.
//! * [`engine`] — engine selection: the dense reference stepper vs.
//!   the event-driven scheduler, bit-identical by contract.
//! * [`queue`] — the two-entry bisynchronous queues whose visibility
//!   rule embodies the elasticity-aware suppressor.
//! * [`faults`] — the deterministic, seeded fault injector (payload
//!   flips, dropped/duplicated tokens, stuck handshakes, domain
//!   stalls).
//! * [`checker`] — the always-on elastic-protocol invariant monitor
//!   (token/credit conservation, payload integrity, suppressor
//!   safety) whose fatal violations stop a run with a structured
//!   error instead of a panic.
//! * [`scratchpad`] — the perimeter SRAM banks.
//! * [`inelastic`] — a statically-scheduled IE-CGRA reference model.
//! * [`config_load`] — configuration and DMA cost models.
//!
//! # End-to-end example
//!
//! ```
//! use uecgra_clock::VfMode;
//! use uecgra_compiler::bitstream::Bitstream;
//! use uecgra_compiler::mapping::{ArrayShape, MappedKernel};
//! use uecgra_dfg::kernels;
//! use uecgra_rtl::fabric::{Fabric, FabricConfig};
//!
//! let k = kernels::llist::build_with_hops(20);
//! let mapped = MappedKernel::map(&k.dfg, ArrayShape::default(), 1).unwrap();
//! let modes = vec![VfMode::Nominal; k.dfg.node_count()];
//! let bs = Bitstream::assemble(&k.dfg, &mapped, &modes).unwrap();
//! let config = FabricConfig {
//!     marker: Some(mapped.coord_of(k.iter_marker)),
//!     ..FabricConfig::default()
//! };
//! let activity = Fabric::new(&bs, k.mem.clone(), config).run();
//! let expect = k.reference_memory();
//! assert_eq!(&activity.mem[..expect.len()], &expect[..]);
//! ```

#![warn(missing_docs)]

pub mod checker;
pub mod config_load;
pub mod engine;
pub mod fabric;
pub mod faults;
pub mod inelastic;
pub mod queue;
pub mod scratchpad;
pub mod trace;

pub use checker::{ProtocolReport, ProtocolViolation, ViolationKind};
pub use engine::Engine;
pub use fabric::{Activity, Fabric, FabricConfig, FabricStop, SuppressorKind};
pub use faults::{Fault, FaultKind, FaultPlan};
pub use inelastic::InelasticSchedule;
pub use scratchpad::Scratchpad;
pub use trace::{to_vcd, TraceError};

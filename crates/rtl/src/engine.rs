//! The event-driven fabric engine.
//!
//! The dense stepper in [`crate::fabric`] sweeps every PE on every PLL
//! tick even though irregular loops leave most PEs stalled most of the
//! time. This module exploits the elasticity of the fabric: a PE's
//! decision (`fire` / `backpressure` / `suppressed` / `operand` /
//! `gated`) can only change when one of its *wakeup edges* occurs —
//! a token arrives in an input queue, a downstream queue it multicasts
//! into frees a slot, a suppressed token finishes aging, or (under the
//! traditional suppressor) the safe-edge phase of a crossing flips.
//! Between wakeups the PE's rising edges all replay its last recorded
//! outcome, so the engine accounts for them in closed form instead of
//! re-evaluating.
//!
//! The dense stepper is retained verbatim as the *reference oracle*:
//! both engines must produce bit-identical [`Activity`] (and therefore
//! `RunReport`s) on every kernel. The contract is enforced by the
//! differential test layer (`tests/differential.rs`) over seeded
//! random fabrics and by `reproduce_all --engine both`.
//!
//! # Scheduling model
//!
//! Per clock domain the engine keeps a *ready set* (a bitset over PE
//! indices in row-major order). A PE is *armed* when its next rising
//! edge must be genuinely evaluated, and *disarmed* when its outcome is
//! provably static until a wakeup:
//!
//! * **fired** edges re-arm (the PE mutated its own queues/register);
//! * **suppressed** edges re-arm (aging resolves within one period);
//! * under [`SuppressorKind::Traditional`], any PE holding a token in a
//!   used input queue stays armed (the safe-edge LUT flips visibility
//!   with clock phase, so its class is time-varying);
//! * everything else — backpressured, operand-starved, or gateable
//!   edges — is static until a queue it observes changes, which only
//!   happens via a push into one of its input queues or a pop of a
//!   queue it multicasts into (both hooked below).
//!
//! The simulated clock then jumps straight to the earliest rising edge
//! of any non-empty ready set (or to the quiesce deadline / tick
//! limit, whichever is sooner). Before any queue mutation the affected
//! PE is *caught up*: the rising edges it skipped are replayed in bulk
//! into the same counters the dense engine maintains per tick.

use crate::fabric::{Activity, EdgeTally, Fabric, FabricStop, FireEvent, Plan, SuppressorKind};
use crate::queue::Token;
use std::fmt;
use uecgra_clock::{ClockSet, VfMode};
use uecgra_compiler::bitstream::{Dir, PeRole};
use uecgra_compiler::mapping::Coord;
use uecgra_dfg::Op;

/// Which simulation engine executes a fabric run.
///
/// Both engines implement the same cycle-level semantics and must
/// produce bit-identical [`Activity`] on every configuration; the
/// dense stepper is the reference oracle, the event-driven scheduler
/// is the fast path (and the default).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The reference dense stepper: every PE examined on every tick.
    Dense,
    /// The event-driven scheduler: only PEs whose inputs, output
    /// credits, or domain phase changed are re-evaluated.
    #[default]
    EventDriven,
}

impl Engine {
    /// Both engines, reference first.
    pub const ALL: [Engine; 2] = [Engine::Dense, Engine::EventDriven];

    /// Stable short name (`"dense"` / `"event"`), used by `--engine`
    /// flags and report tags.
    pub fn label(self) -> &'static str {
        match self {
            Engine::Dense => "dense",
            Engine::EventDriven => "event",
        }
    }

    /// Parse a `--engine` argument value.
    pub fn parse(s: &str) -> Option<Engine> {
        match s {
            "dense" => Some(Engine::Dense),
            "event" | "event-driven" => Some(Engine::EventDriven),
            _ => None,
        }
    }
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The five-way disposition of one local rising edge (mirrors the
/// classification priority in the dense stepper's phase 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EdgeClass {
    Fire,
    Backpressure,
    Suppressed,
    Operand,
    Gated,
}

/// Per-PE scheduling state: how many of its rising edges are already
/// accounted for, and the outcome its skipped edges replay.
#[derive(Debug, Clone, Copy)]
struct PeSched {
    clk: VfMode,
    gated: bool,
    /// Rising edges accounted so far; after accounting through tick
    /// `t` this equals `t / period + 1` (edge at 0 always counts).
    edges_seen: u64,
    class: EdgeClass,
    in_stalls: u64,
    out_stalls: u64,
}

/// Per-clock-domain ready sets: bitsets over row-major PE indices, so
/// draining in ascending bit order reproduces the dense stepper's
/// row-major evaluation (and therefore its plan order exactly).
struct ReadySets {
    words: [Vec<u64>; 3],
    n_words: usize,
}

impl ReadySets {
    fn new(n: usize) -> ReadySets {
        let n_words = n.div_ceil(64);
        ReadySets {
            words: core::array::from_fn(|_| vec![0u64; n_words]),
            n_words,
        }
    }

    fn insert(&mut self, mode: VfMode, idx: usize) {
        self.words[mode as usize][idx / 64] |= 1u64 << (idx % 64);
    }

    /// Is `idx` currently armed in its domain? Armed PEs have no
    /// unaccounted edges, so wakeups can skip them entirely — the hot
    /// path on busy fabrics, where most neighbors are already armed.
    fn contains(&self, mode: VfMode, idx: usize) -> bool {
        self.words[mode as usize][idx / 64] & (1u64 << (idx % 64)) != 0
    }

    fn domain_empty(&self, mode: VfMode) -> bool {
        self.words[mode as usize].iter().all(|&w| w == 0)
    }

    /// Drain every armed PE whose domain rises at `t` into `out`, in
    /// ascending (row-major) index order.
    fn drain_rising(&mut self, clocks: &ClockSet, t: u64, out: &mut Vec<usize>) {
        out.clear();
        let rising: [bool; 3] = core::array::from_fn(|m| clocks.is_rising(VfMode::ALL[m], t));
        for wi in 0..self.n_words {
            let mut merged = 0u64;
            for (m, &rises) in rising.iter().enumerate() {
                if rises {
                    merged |= self.words[m][wi];
                    self.words[m][wi] = 0;
                }
            }
            while merged != 0 {
                out.push(wi * 64 + merged.trailing_zeros() as usize);
                merged &= merged - 1;
            }
        }
    }

    /// The earliest rising edge strictly after `t` of any domain with
    /// at least one armed PE (`None` when everything is disarmed).
    fn next_event(&self, clocks: &ClockSet, t: u64) -> Option<u64> {
        VfMode::ALL
            .into_iter()
            .filter(|&m| !self.domain_empty(m))
            .map(|m| clocks.next_rising(m, t))
            .min()
    }
}

/// The per-PE counter arrays the dense stepper maintains tick by tick,
/// stored flat (indexed by row-major PE index) so the hot eval and
/// catch-up paths touch one allocation instead of chasing nested Vecs.
/// [`Counters::into_nested`] restores the `[y][x]` layout `Activity`
/// exposes.
struct Counters {
    fires: Vec<u64>,
    bypass_tokens: Vec<u64>,
    input_stalls: Vec<u64>,
    output_stalls: Vec<u64>,
    rising_edges: Vec<u64>,
    fire_edges: Vec<u64>,
    operand_stalls: Vec<u64>,
    suppressed_stalls: Vec<u64>,
    backpressure_stalls: Vec<u64>,
    gated_ticks: Vec<u64>,
    /// `buckets` slots per PE, at `idx * buckets ..`.
    queue_occupancy: Vec<u64>,
    buckets: usize,
    domain_gated_ticks: [u64; 3],
    marker_times: Vec<u64>,
    events: Vec<FireEvent>,
}

impl Counters {
    fn new(n: usize, occupancy_buckets: usize) -> Counters {
        Counters {
            fires: vec![0; n],
            bypass_tokens: vec![0; n],
            input_stalls: vec![0; n],
            output_stalls: vec![0; n],
            rising_edges: vec![0; n],
            fire_edges: vec![0; n],
            operand_stalls: vec![0; n],
            suppressed_stalls: vec![0; n],
            backpressure_stalls: vec![0; n],
            gated_ticks: vec![0; n],
            queue_occupancy: vec![0; n * occupancy_buckets],
            buckets: occupancy_buckets,
            domain_gated_ticks: [0; 3],
            marker_times: Vec::new(),
            events: Vec::new(),
        }
    }
}

/// Re-shape a flat row-major counter array into the `[y][x]` nesting
/// used by [`Activity`].
fn into_nested(flat: Vec<u64>, w: usize) -> Vec<Vec<u64>> {
    flat.chunks(w).map(<[u64]>::to_vec).collect()
}

/// Replay the rising edges PE `idx` skipped while disarmed, through
/// PLL tick `through` inclusive. Must run *before* any queue visible
/// to the PE mutates — the replayed occupancy samples read the current
/// queue lengths, which are exactly the lengths at the PE's last
/// evaluation as long as nothing changed since. A no-op on armed PEs
/// (they have no unaccounted edges) and on gated PEs.
fn catch_up(fab: &Fabric, sched: &mut [PeSched], c: &mut Counters, idx: usize, through: u64) {
    let s = &mut sched[idx];
    if s.gated {
        return;
    }
    let target = fab.config.clocks.rising_edges_through(s.clk, through);
    if target <= s.edges_seen {
        return;
    }
    let k = target - s.edges_seen;
    s.edges_seen = target;
    let (x, y) = (idx % fab.width, idx / fab.width);
    c.rising_edges[idx] += k;
    let occ = &mut c.queue_occupancy[idx * c.buckets..(idx + 1) * c.buckets];
    for q in &fab.grid[y][x].queues {
        occ[q.len().min(c.buckets - 1)] += k;
    }
    c.input_stalls[idx] += k * s.in_stalls;
    c.output_stalls[idx] += k * s.out_stalls;
    match s.class {
        // Fired and suppressed edges always re-arm their PE, so a
        // disarmed PE can only be replaying a static stall class.
        EdgeClass::Fire | EdgeClass::Suppressed => {
            unreachable!("fire/suppressed outcomes re-arm; they are never replayed")
        }
        EdgeClass::Backpressure => c.backpressure_stalls[idx] += k,
        EdgeClass::Operand => c.operand_stalls[idx] += k,
        EdgeClass::Gated => {
            c.gated_ticks[idx] += k;
            c.domain_gated_ticks[s.clk as usize] += k;
        }
    }
}

/// A pop freed a slot in queue `dir` of `pe`: the (unique) producer
/// feeding that queue may unblock, so catch it up and re-arm it.
fn wake_producer(
    fab: &Fabric,
    sched: &mut [PeSched],
    c: &mut Counters,
    ready: &mut ReadySets,
    pe: Coord,
    dir: Dir,
    t: u64,
) {
    if let Some((px, py)) = fab.neighbor(pe, dir) {
        let idx = py * fab.width + px;
        if sched[idx].gated || ready.contains(sched[idx].clk, idx) {
            return;
        }
        catch_up(fab, sched, c, idx, t);
        ready.insert(sched[idx].clk, idx);
    }
}

/// `Fabric::deliver` with wakeup hooks: each receiving PE is caught up
/// *before* its queue grows, then re-armed.
#[allow(clippy::too_many_arguments)] // mirrors the dense phase-2 call site
fn deliver_and_wake(
    fab: &mut Fabric,
    sched: &mut [PeSched],
    c: &mut Counters,
    ready: &mut ReadySets,
    pe: Coord,
    mask: [bool; 4],
    value: u32,
    t: u64,
) {
    for (i, &dir) in Dir::ALL.iter().enumerate() {
        if !mask[i] {
            continue;
        }
        if let Some((nx, ny)) = fab.neighbor(pe, dir) {
            let idx = ny * fab.width + nx;
            let wake = !sched[idx].gated && !ready.contains(sched[idx].clk, idx);
            if wake {
                catch_up(fab, sched, c, idx, t);
            }
            let back = Dir::between((nx, ny), pe);
            fab.push_checked((nx, ny), back, value, t);
            if wake {
                ready.insert(sched[idx].clk, idx);
            }
        }
    }
}

/// Under the traditional suppressor a held token's visibility flips
/// with the safe-edge LUT phase, so any PE with a token in a *used*
/// input queue has a time-varying outcome and must stay armed.
fn has_pending_input(fab: &Fabric, (x, y): Coord) -> bool {
    let state = &fab.grid[y][x];
    (0..4).any(|d| state.queue_users[d].iter().any(|&u| u) && !state.queues[d].is_empty())
}

/// Run `fab` to completion with the event-driven scheduler, producing
/// an [`Activity`] bit-identical to `Fabric::run`.
pub(crate) fn run_event(mut fab: Fabric) -> Activity {
    let (w, h) = (fab.width, fab.height);
    let n = w * h;
    let clocks = fab.config.clocks.clone();
    let hyper = clocks.hyperperiod();
    let quiesce_window = hyper * 3;
    let buckets = fab.config.queue_capacity + 1;
    let traditional = fab.config.suppressor == SuppressorKind::Traditional;
    // Injected faults (stuck handshakes, domain stalls) change PE
    // outcomes at fault-plan boundaries with no queue mutation to hook
    // a wakeup on, so the skip optimization is unsound under them.
    // With a non-empty plan every evaluated PE simply re-arms: the
    // engine degrades to dense-equivalent evaluation while keeping the
    // bit-identical contract (re-evaluating an unchanged PE reproduces
    // exactly the counters a replay would).
    let always_armed = !fab.faults.is_empty();

    let mut c = Counters::new(n, buckets);
    let mut sched: Vec<PeSched> = (0..n)
        .map(|idx| {
            let cfg = &fab.grid[idx / w][idx % w].config;
            PeSched {
                clk: cfg.clk,
                gated: cfg.role == PeRole::Gated,
                edges_seen: 0,
                // Placeholder: every non-gated PE is evaluated at t=0
                // (all domains rise there) before any replay happens.
                class: EdgeClass::Gated,
                in_stalls: 0,
                out_stalls: 0,
            }
        })
        .collect();
    let mut ready = ReadySets::new(n.max(1));

    // `end` is the last PLL tick whose phase-1 accounting the dense
    // reference performs (None when max_ticks == 0 and the dense loop
    // never runs at all).
    let (stop, end, ticks) = if fab.config.max_ticks == 0 {
        (FabricStop::TickLimit, None, 0)
    } else {
        for (idx, s) in sched.iter().enumerate() {
            if !s.gated {
                ready.insert(s.clk, idx);
            }
        }
        let mut t = 0u64;
        let mut last_act = 0u64;
        let mut evaluated: Vec<usize> = Vec::new();
        // Scratch buffers reused across ticks (the dense stepper's
        // per-tick allocations are a measurable cost at this rate).
        let mut plans: Vec<Plan> = Vec::new();
        let mut pushes: Vec<(Coord, [bool; 4], u32)> = Vec::new();
        let mut reg_writes: Vec<(Coord, u32)> = Vec::new();
        let mut stores: Vec<(Coord, u32, u32)> = Vec::new();
        loop {
            // Phase 1: evaluate armed PEs of the domains rising at `t`,
            // in row-major order (matching the dense sweep; skipped PEs
            // provably contribute no plans).
            plans.clear();
            ready.drain_rising(&clocks, t, &mut evaluated);
            for &idx in &evaluated {
                let (x, y) = (idx % w, idx / w);
                c.rising_edges[idx] += 1;
                sched[idx].edges_seen += 1;
                let occ = &mut c.queue_occupancy[idx * buckets..(idx + 1) * buckets];
                for q in &fab.grid[y][x].queues {
                    occ[q.len().min(buckets - 1)] += 1;
                }
                let planned_before = plans.len();
                let mut tally = EdgeTally::default();
                fab.decide((x, y), t, &mut plans, &mut tally);
                c.input_stalls[idx] += tally.input_stalls;
                c.output_stalls[idx] += tally.output_stalls;
                let fired = plans.len() > planned_before;
                let class = if fired {
                    EdgeClass::Fire
                } else if tally.output_stalls > 0 {
                    EdgeClass::Backpressure
                } else if tally.suppressed {
                    EdgeClass::Suppressed
                } else if tally.input_stalls > 0 {
                    EdgeClass::Operand
                } else {
                    EdgeClass::Gated
                };
                match class {
                    EdgeClass::Fire => c.fire_edges[idx] += 1,
                    EdgeClass::Backpressure => c.backpressure_stalls[idx] += 1,
                    EdgeClass::Suppressed => c.suppressed_stalls[idx] += 1,
                    EdgeClass::Operand => c.operand_stalls[idx] += 1,
                    EdgeClass::Gated => {
                        c.gated_ticks[idx] += 1;
                        c.domain_gated_ticks[sched[idx].clk as usize] += 1;
                    }
                }
                sched[idx].class = class;
                sched[idx].in_stalls = tally.input_stalls;
                sched[idx].out_stalls = tally.output_stalls;
                if always_armed
                    || fired
                    || tally.suppressed
                    || (traditional && has_pending_input(&fab, (x, y)))
                {
                    ready.insert(sched[idx].clk, idx);
                }
            }

            // Phase 2: apply plans exactly as the dense stepper does —
            // pops first, then computes (loads read pre-store memory),
            // register writes, pushes, stores — with wakeup hooks on
            // every queue mutation.
            let acted = !plans.is_empty();
            pushes.clear();
            reg_writes.clear();
            stores.clear();

            for plan in &plans {
                match plan {
                    Plan::Compute {
                        pe,
                        pops,
                        consume_reg,
                        ..
                    } => {
                        for &d in pops {
                            if fab.take_checked(*pe, d, 0, t) {
                                wake_producer(&fab, &mut sched, &mut c, &mut ready, *pe, d, t);
                            }
                        }
                        if *consume_reg {
                            fab.grid[pe.1][pe.0].reg = None;
                        }
                    }
                    Plan::Bypass { pe, src, slot, .. } => {
                        if fab.take_checked(*pe, *src, slot + 1, t) {
                            wake_producer(&fab, &mut sched, &mut c, &mut ready, *pe, *src, t);
                        }
                    }
                }
            }

            for plan in plans.drain(..) {
                match plan {
                    Plan::Compute {
                        pe,
                        operands,
                        op,
                        out_port,
                        is_init,
                        init_value,
                        ..
                    } => {
                        let (x, y) = pe;
                        c.fires[y * w + x] += 1;
                        if fab.config.record_events {
                            c.events.push(FireEvent {
                                tick: t,
                                pe,
                                is_fire: true,
                            });
                        }
                        if fab.config.marker == Some(pe) {
                            c.marker_times.push(t);
                        }
                        if is_init {
                            fab.grid[y][x].init_pending = false;
                        }
                        let value = if is_init {
                            init_value
                        } else {
                            match op {
                                Op::Load => fab.load_checked(pe, operands[0], t),
                                Op::Store => {
                                    stores.push((pe, operands[0], operands[1]));
                                    operands[1]
                                }
                                _ => op.eval(operands[0], operands[1]),
                            }
                        };
                        let cfg = fab.grid[y][x].config;
                        let mask = if out_port == 0 {
                            cfg.alu_true_mask
                        } else {
                            cfg.alu_false_mask
                        };
                        pushes.push((pe, mask, value));
                        if cfg.reg_write && out_port == 0 {
                            reg_writes.push((pe, value));
                        }
                    }
                    Plan::Bypass {
                        pe,
                        dst_mask,
                        value,
                        ..
                    } => {
                        let (x, y) = pe;
                        c.bypass_tokens[y * w + x] += 1;
                        if fab.config.record_events {
                            c.events.push(FireEvent {
                                tick: t,
                                pe,
                                is_fire: false,
                            });
                        }
                        pushes.push((pe, dst_mask, value));
                    }
                }
            }

            for (pe, value) in reg_writes.drain(..) {
                fab.grid[pe.1][pe.0].reg = Some(Token { value, written: t });
            }
            for (pe, mask, value) in pushes.drain(..) {
                deliver_and_wake(&mut fab, &mut sched, &mut c, &mut ready, pe, mask, value, t);
            }
            for (pe, addr, value) in stores.drain(..) {
                fab.store_checked(pe, addr, value, t);
            }

            if fab.protocol.is_fatal() {
                break (FabricStop::ProtocolViolation, Some(t), t + 1);
            }
            if acted {
                last_act = t;
            }
            if let (Some(max), Some((mx, my))) = (fab.config.max_marker_fires, fab.config.marker) {
                if c.fires[my * w + mx] >= max {
                    break (FabricStop::MarkerDone, Some(t), t + 1);
                }
            }
            if t >= last_act + quiesce_window {
                break (FabricStop::Quiesced, Some(t), t);
            }

            // Jump to the next interesting tick: the earliest rising
            // edge of an armed domain, unless the quiesce deadline or
            // the tick limit comes first. Every tick in between would
            // run an empty phase 1 in the dense engine (no armed PE
            // rises), so nothing is skipped — the skipped edges of
            // disarmed PEs are replayed by `catch_up` at the end.
            let t_quiesce = last_act + quiesce_window;
            let t_event = ready.next_event(&clocks, t);
            let next = t_event.map_or(t_quiesce, |e| e.min(t_quiesce));
            if next >= fab.config.max_ticks {
                break (
                    FabricStop::TickLimit,
                    Some(fab.config.max_ticks - 1),
                    fab.config.max_ticks,
                );
            }
            if t_event.is_none_or(|e| t_quiesce < e) {
                break (FabricStop::Quiesced, Some(t_quiesce), t_quiesce);
            }
            t = next;
        }
    };

    let mut domain_edges = [0u64; 3];
    let mut domain_edges_hyper = [0u64; 3];
    if let Some(end) = end {
        for idx in 0..n {
            catch_up(&fab, &mut sched, &mut c, idx, end);
        }
        for m in VfMode::ALL {
            domain_edges[m as usize] = clocks.rising_edges_through(m, end);
            domain_edges_hyper[m as usize] = clocks.rising_edges_through(m, end.min(hyper - 1));
        }
    }

    let mut sram_accesses = vec![vec![0u64; w]; h];
    for (y, row) in sram_accesses.iter_mut().enumerate() {
        for (x, cell) in row.iter_mut().enumerate() {
            *cell = fab.scratch.accesses((x, y));
        }
    }
    let mem_len = fab.scratch.len();
    let protocol = fab.protocol_report(ticks);
    let queue_occupancy = c
        .queue_occupancy
        .chunks(buckets * w)
        .map(|row| row.chunks(buckets).map(<[u64]>::to_vec).collect())
        .collect();
    Activity {
        fires: into_nested(c.fires, w),
        bypass_tokens: into_nested(c.bypass_tokens, w),
        input_stalls: into_nested(c.input_stalls, w),
        output_stalls: into_nested(c.output_stalls, w),
        rising_edges: into_nested(c.rising_edges, w),
        fire_edges: into_nested(c.fire_edges, w),
        operand_stalls: into_nested(c.operand_stalls, w),
        suppressed_stalls: into_nested(c.suppressed_stalls, w),
        backpressure_stalls: into_nested(c.backpressure_stalls, w),
        gated_ticks: into_nested(c.gated_ticks, w),
        queue_occupancy,
        domain_edges,
        domain_edges_hyper,
        domain_gated_ticks: c.domain_gated_ticks,
        sram_accesses,
        marker_times: c.marker_times,
        ticks,
        stop,
        clocks,
        mem: fab.scratch.image(mem_len),
        events: c.events,
        protocol,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_labels_roundtrip() {
        for e in Engine::ALL {
            assert_eq!(Engine::parse(e.label()), Some(e));
        }
        assert_eq!(Engine::parse("event-driven"), Some(Engine::EventDriven));
        assert_eq!(Engine::parse("fast"), None);
        assert_eq!(Engine::default(), Engine::EventDriven);
    }

    #[test]
    fn ready_sets_drain_row_major() {
        let clocks = ClockSet::default();
        let mut r = ReadySets::new(130);
        r.insert(VfMode::Sprint, 129);
        r.insert(VfMode::Nominal, 3);
        r.insert(VfMode::Rest, 64);
        let mut out = Vec::new();
        // t=0: every domain rises.
        r.drain_rising(&clocks, 0, &mut out);
        assert_eq!(out, vec![3, 64, 129]);
        assert!(r.next_event(&clocks, 0).is_none());
        // t=2: only sprint rises; nominal member stays armed.
        r.insert(VfMode::Sprint, 7);
        r.insert(VfMode::Nominal, 1);
        r.drain_rising(&clocks, 2, &mut out);
        assert_eq!(out, vec![7]);
        assert_eq!(r.next_event(&clocks, 2), Some(3));
    }
}

//! Bisynchronous input queues.
//!
//! Every PE input is a two-entry elastic queue that correctly bridges
//! clock domains with known rational phase relationships (paper
//! Sections IV-A and V). Writes are source-synchronous (the producer
//! pushes on its own rising edge and the write time is recorded with
//! the data); reads happen on the consumer's rising edges and are
//! gated by the elasticity-aware suppressor invariant: a token is
//! readable once it has aged at least one receiver clock period, which
//! is exactly "safe edge, or unsafe edge with data enqueued longer
//! than one local cycle" (see `uecgra_clock::suppressor`).

use std::collections::VecDeque;

/// Why a non-panicking take failed (see [`BisyncQueue::try_take`]).
/// Either case is a scheduling bug — the protocol checker converts it
/// into a fatal `ProtocolViolation` instead of aborting the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TakeError {
    /// The queue holds no token.
    Empty,
    /// `user` already consumed the current front token.
    DoubleTake {
        /// The offending local user (0 = compute, 1/2 = bypass).
        user: usize,
    },
}

/// A timestamped token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Payload.
    pub value: u32,
    /// PLL tick at which the producer enqueued it.
    pub written: u64,
}

/// A two-entry (configurable) bisynchronous queue.
///
/// # Examples
///
/// ```
/// use uecgra_rtl::queue::BisyncQueue;
///
/// let mut q = BisyncQueue::new(2);
/// q.push(7, 0);
/// // A nominal consumer (period 3) cannot read a fresh token...
/// assert_eq!(q.front_visible(2, 3), None);
/// // ...but can once it has aged one receiver period.
/// assert_eq!(q.front_visible(3, 3), Some(7));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BisyncQueue {
    slots: VecDeque<Token>,
    capacity: usize,
    /// Eager-fork bookkeeping: which local users (compute, bypass 0,
    /// bypass 1) have already consumed the front token. The token pops
    /// once every configured user has taken it, so consumers proceed
    /// independently — the elastic "eager fork" that prevents circular
    /// waits between a PE's operand and its bypass of the same net.
    front_taken: [bool; 3],
}

impl BisyncQueue {
    /// Create a queue with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> BisyncQueue {
        assert!(capacity > 0, "queues need at least one entry");
        BisyncQueue {
            slots: VecDeque::with_capacity(capacity),
            capacity,
            front_taken: [false; 3],
        }
    }

    /// Occupancy.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// True when a producer may push this cycle (registered ready:
    /// capacity check against the state at the start of the tick).
    pub fn can_push(&self) -> bool {
        self.slots.len() < self.capacity
    }

    /// Enqueue a token written at tick `t`.
    ///
    /// # Panics
    ///
    /// Panics on overflow — producers must check [`BisyncQueue::can_push`].
    pub fn push(&mut self, value: u32, t: u64) {
        assert!(self.try_push(value, t), "queue overflow");
    }

    /// Enqueue a token written at tick `t`, returning `false` (and
    /// leaving the queue untouched) on overflow. The engine-facing
    /// path: a credit-less push becomes a fatal `Overflow` protocol
    /// violation instead of a panic.
    pub fn try_push(&mut self, value: u32, t: u64) -> bool {
        if !self.can_push() {
            return false;
        }
        self.slots.push_back(Token { value, written: t });
        true
    }

    /// The front token, if any (not suppressor-gated — callers wanting
    /// visibility semantics use [`BisyncQueue::front_visible`]).
    pub fn front(&self) -> Option<Token> {
        self.slots.front().copied()
    }

    /// The front token's value if it is visible to a consumer whose
    /// clock period is `receiver_period`, at tick `t`.
    pub fn front_visible(&self, t: u64, receiver_period: u64) -> Option<u32> {
        self.slots
            .front()
            .filter(|tok| t >= tok.written + receiver_period)
            .map(|tok| tok.value)
    }

    /// Like [`BisyncQueue::front_visible`], but `None` once `user` has
    /// already taken the front token (eager-fork semantics).
    pub fn front_visible_for(&self, t: u64, receiver_period: u64, user: usize) -> Option<u32> {
        if self.front_taken[user] {
            return None;
        }
        self.front_visible(t, receiver_period)
    }

    /// True when a front token exists that `user` has not yet taken —
    /// i.e. the consumer is waiting on *visibility* (suppressor aging
    /// or an unsafe edge), not on data arrival. Used by the stall
    /// classifier to tell suppressed edges from operand starvation.
    pub fn front_pending_for(&self, user: usize) -> bool {
        !self.slots.is_empty() && !self.front_taken[user]
    }

    /// Record that `user` consumed the front token, then pop it once
    /// every user in `required` has taken it.
    ///
    /// Returns `true` when this take actually popped the front token —
    /// the queue's wakeup edge: a pop frees a slot, so the producer
    /// feeding this queue may become unblocked. The event-driven
    /// engine uses the return value to re-arm that producer; the dense
    /// reference stepper ignores it.
    ///
    /// # Panics
    ///
    /// Panics when empty or on double-take.
    pub fn take(&mut self, user: usize, required: [bool; 3]) -> bool {
        match self.try_take(user, required) {
            Ok(popped) => popped,
            Err(TakeError::Empty) => panic!("take from empty queue"),
            Err(TakeError::DoubleTake { user }) => panic!("double take by user {user}"),
        }
    }

    /// Like [`BisyncQueue::take`], but a mis-scheduled take returns a
    /// [`TakeError`] instead of panicking. The engine-facing path: the
    /// protocol checker converts the error into a fatal
    /// `ProtocolViolation` and the run stops with a structured
    /// `Error::Protocol`.
    pub fn try_take(&mut self, user: usize, required: [bool; 3]) -> Result<bool, TakeError> {
        if self.slots.is_empty() {
            return Err(TakeError::Empty);
        }
        if self.front_taken[user] {
            return Err(TakeError::DoubleTake { user });
        }
        self.front_taken[user] = true;
        let done = (0..3).all(|u| !required[u] || self.front_taken[u]);
        if done {
            self.slots.pop_front();
            self.front_taken = [false; 3];
        }
        Ok(done)
    }

    /// Remove and return the front token (single-user queues).
    ///
    /// # Panics
    ///
    /// Panics when empty.
    pub fn pop(&mut self) -> Token {
        self.try_pop().expect("pop from empty queue")
    }

    /// Remove and return the front token, or `None` when empty
    /// (single-user queues; resets eager-fork bookkeeping either way).
    pub fn try_pop(&mut self) -> Option<Token> {
        self.front_taken = [false; 3];
        self.slots.pop_front()
    }

    /// Queue capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = BisyncQueue::new(2);
        q.push(1, 0);
        q.push(2, 0);
        assert_eq!(q.pop().value, 1);
        assert_eq!(q.pop().value, 2);
    }

    #[test]
    fn capacity_enforced() {
        let mut q = BisyncQueue::new(2);
        q.push(1, 0);
        q.push(2, 0);
        assert!(!q.can_push());
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut q = BisyncQueue::new(1);
        q.push(1, 0);
        q.push(2, 0);
    }

    #[test]
    fn visibility_requires_one_receiver_period() {
        let mut q = BisyncQueue::new(2);
        q.push(42, 6);
        // Sprint consumer (period 2): visible from tick 8.
        assert_eq!(q.front_visible(7, 2), None);
        assert_eq!(q.front_visible(8, 2), Some(42));
        // Rest consumer (period 9): only from tick 15.
        assert_eq!(q.front_visible(14, 9), None);
        assert_eq!(q.front_visible(15, 9), Some(42));
    }

    #[test]
    fn eager_fork_pops_after_all_users() {
        let mut q = BisyncQueue::new(2);
        q.push(5, 0);
        q.push(6, 0);
        let required = [true, true, false];
        assert_eq!(q.front_visible_for(10, 3, 0), Some(5));
        assert!(!q.take(0, required), "first user does not pop");
        // User 0 no longer sees the front; user 1 still does.
        assert_eq!(q.front_visible_for(10, 3, 0), None);
        assert_eq!(q.front_visible_for(10, 3, 1), Some(5));
        assert_eq!(q.len(), 2, "token stays until all users take");
        assert!(q.take(1, required), "last user pops");
        assert_eq!(q.len(), 1, "popped after the last user");
        assert_eq!(q.front_visible_for(10, 3, 0), Some(6));
    }

    #[test]
    #[should_panic(expected = "double take")]
    fn double_take_panics() {
        let mut q = BisyncQueue::new(2);
        q.push(5, 0);
        q.take(0, [true, true, false]);
        q.take(0, [true, true, false]);
    }

    #[test]
    fn try_variants_report_instead_of_panicking() {
        let mut q = BisyncQueue::new(1);
        assert_eq!(q.try_pop(), None);
        assert_eq!(q.try_take(0, [true, false, false]), Err(TakeError::Empty));
        assert!(q.try_push(9, 2));
        assert!(!q.try_push(10, 2), "overflow rejected, not panicked");
        assert_eq!(
            q.front(),
            Some(Token {
                value: 9,
                written: 2
            })
        );
        assert_eq!(q.try_take(1, [false, true, true]), Ok(false));
        assert_eq!(
            q.try_take(1, [false, true, true]),
            Err(TakeError::DoubleTake { user: 1 })
        );
        assert_eq!(q.try_take(2, [false, true, true]), Ok(true));
        assert!(q.is_empty());
    }

    #[test]
    fn only_front_matters() {
        let mut q = BisyncQueue::new(2);
        q.push(1, 0);
        q.push(2, 100);
        assert_eq!(q.front_visible(3, 3), Some(1));
        q.pop();
        assert_eq!(q.front_visible(3, 3), None, "second token still fresh");
    }
}

//! The cycle-level UE-CGRA fabric simulator.
//!
//! Executes a compiled [`Bitstream`] directly: tokens flow between
//! adjacent PEs through bisynchronous input queues; each PE acts only
//! on the rising edges of its selected rational clock; operand reads
//! are gated by the elasticity-aware suppressor invariant (one
//! receiver-period of aging); compute and bypass proceed in the same
//! cycle (paper Section IV-A); and multicast outputs (ALU broadcast or
//! forked bypass) require every target queue to have space.
//!
//! Setting every PE's clock to nominal makes the fabric an **E-CGRA**;
//! per-PE rest/nominal/sprint selections make it a **UE-CGRA**. The
//! simulator is functional: `load`/`store` PEs access the perimeter
//! scratchpad, so final memory images can be checked against host
//! references.

use crate::checker::{ProtocolChecker, ProtocolReport, ViolationKind};
use crate::faults::{FaultPlan, FaultState};
use crate::queue::{BisyncQueue, Token};
use crate::scratchpad::Scratchpad;
use uecgra_clock::{ClockChecker, ClockSet, VfMode};
use uecgra_compiler::bitstream::{Bitstream, Dir, OperandSel, PeConfig, PeRole};
use uecgra_compiler::mapping::Coord;
use uecgra_dfg::Op;

/// Which suppressor guards the clock-domain crossings (the paper's
/// Figure 8(c/d) ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SuppressorKind {
    /// The paper's novel suppressor: handshakes proceed on unsafe
    /// edges once the data has aged one local clock cycle.
    #[default]
    ElasticityAware,
    /// A traditional ratiochronous suppressor: handshakes only on
    /// safe edges — crossings whose schedule has *no* safe edges
    /// (e.g. sprint→nominal in the 2:3:9 plan) stall forever.
    Traditional,
}

/// Configuration of a fabric run.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricConfig {
    /// The rational clock plan.
    pub clocks: ClockSet,
    /// Input-queue capacity (paper default: 2).
    pub queue_capacity: usize,
    /// Hard tick limit.
    pub max_ticks: u64,
    /// Stop once the marker PE has fired this many times.
    pub max_marker_fires: Option<u64>,
    /// PE whose firings count iterations.
    pub marker: Option<Coord>,
    /// Crossing-suppressor flavor.
    pub suppressor: SuppressorKind,
    /// Record per-event (tick, PE) firing/bypass events for waveform
    /// dumping (costs memory proportional to activity).
    pub record_events: bool,
    /// Faults to inject (default: none). A non-empty plan switches the
    /// event-driven engine into all-armed evaluation so both engines
    /// stay bit-identical under time-windowed faults.
    pub faults: FaultPlan,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            clocks: ClockSet::default(),
            queue_capacity: 2,
            max_ticks: 50_000_000,
            max_marker_fires: None,
            marker: None,
            suppressor: SuppressorKind::ElasticityAware,
            record_events: false,
            faults: FaultPlan::none(),
        }
    }
}

/// Why a fabric run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricStop {
    /// The marker reached its configured count.
    MarkerDone,
    /// No PE acted for a settling window: execution finished.
    Quiesced,
    /// The tick limit was hit.
    TickLimit,
    /// The protocol checker detected a fatal invariant violation
    /// (see [`crate::checker::ProtocolReport::first_fatal`]); the
    /// simulated state is no longer meaningful.
    ProtocolViolation,
}

/// One recorded event for waveform dumping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FireEvent {
    /// PLL tick.
    pub tick: u64,
    /// PE coordinate.
    pub pe: Coord,
    /// True for an op firing, false for a bypass forward.
    pub is_fire: bool,
}

/// Per-PE activity counters for performance and energy analysis.
///
/// Two families of counters coexist:
///
/// * **Event counts** (`input_stalls`, `output_stalls`) tally every
///   stalled cause per rising edge — a PE whose compute starves while
///   a bypass slot backpressures counts both. These feed the energy
///   model's stall pricing.
/// * **Edge classification** (`fire_edges`, `operand_stalls`,
///   `suppressed_stalls`, `backpressure_stalls`, `gated_ticks`)
///   assigns each local rising edge of a configured PE to exactly one
///   disposition, by priority: fired (any compute or bypass plan) >
///   backpressured (an output stalled) > suppressed (a token present
///   but held by the bisynchronous suppressor or register aging) >
///   operand-starved (waiting on data) > gateable idle. The five
///   classes partition `rising_edges`, which is the conservation
///   invariant the probe layer's property test checks.
#[derive(Debug, Clone, PartialEq)]
pub struct Activity {
    /// Op firings per PE (`[row][col]`).
    pub fires: Vec<Vec<u64>>,
    /// Bypass tokens forwarded per PE.
    pub bypass_tokens: Vec<Vec<u64>>,
    /// Stalled input causes per rising edge (event count).
    pub input_stalls: Vec<Vec<u64>>,
    /// Stalled output causes per rising edge (event count).
    pub output_stalls: Vec<Vec<u64>>,
    /// Local rising edges observed per configured PE.
    pub rising_edges: Vec<Vec<u64>>,
    /// Edges on which the PE fired and/or forwarded at least once.
    pub fire_edges: Vec<Vec<u64>>,
    /// Edges starved of an operand (a required token absent).
    pub operand_stalls: Vec<Vec<u64>>,
    /// Edges where a token was present but the suppressor (or its
    /// one-period register-aging analogue) held it back.
    pub suppressed_stalls: Vec<Vec<u64>>,
    /// Edges blocked only by downstream backpressure.
    pub backpressure_stalls: Vec<Vec<u64>>,
    /// Idle edges: nothing pending, nothing blocked — the local clock
    /// could have been gated.
    pub gated_ticks: Vec<Vec<u64>>,
    /// Input-queue occupancy histograms: `queue_occupancy[y][x][d]`
    /// counts, over the PE's rising edges, its four direction queues
    /// holding exactly `d` tokens (histogram length = capacity + 1).
    pub queue_occupancy: Vec<Vec<Vec<u64>>>,
    /// Clock rising edges per domain (rest/nominal/sprint) over the
    /// whole run.
    pub domain_edges: [u64; 3],
    /// Clock rising edges per domain within the first hyperperiod —
    /// the exact rational basis `vlsi::clock_power_from_edges` uses in
    /// place of hand-computed frequency ratios.
    pub domain_edges_hyper: [u64; 3],
    /// Gateable idle edges summed per clock domain.
    pub domain_gated_ticks: [u64; 3],
    /// SRAM accesses per memory PE.
    pub sram_accesses: Vec<Vec<u64>>,
    /// Ticks at which the marker PE fired.
    pub marker_times: Vec<u64>,
    /// Total PLL ticks simulated.
    pub ticks: u64,
    /// Why the run stopped.
    pub stop: FabricStop,
    /// The clock plan (for unit conversion).
    pub clocks: ClockSet,
    /// Final scratchpad.
    pub mem: Vec<u32>,
    /// Recorded events (empty unless `record_events` was set).
    pub events: Vec<FireEvent>,
    /// The elastic-protocol checker's end-of-run summary (always
    /// populated; bit-identical across engines; empty `violations` on
    /// clean runs).
    pub protocol: ProtocolReport,
}

impl Activity {
    /// Steady-state initiation interval in nominal cycles (see
    /// `uecgra_model::SimResult::steady_ii`).
    pub fn steady_ii(&self, skip: usize) -> Option<f64> {
        let times = &self.marker_times;
        if times.len() < skip + 2 {
            return None;
        }
        let t0 = times[skip];
        let t1 = *times.last().expect("len checked");
        let n = (times.len() - 1 - skip) as f64;
        Some(self.clocks.pll_to_nominal_cycles(t1 - t0) / n)
    }

    /// Iterations completed.
    pub fn iterations(&self) -> u64 {
        self.marker_times.len() as u64
    }

    /// Run length in nominal cycles.
    pub fn nominal_cycles(&self) -> f64 {
        self.clocks.pll_to_nominal_cycles(self.ticks)
    }
}

#[derive(Debug)]
pub(crate) struct PeState {
    pub(crate) config: PeConfig,
    pub(crate) queues: [BisyncQueue; 4],
    /// Which local users (0 = compute, 1/2 = bypass slots) consume each
    /// direction's queue, derived from the configuration. The front
    /// token pops once all of them have taken it (eager fork).
    pub(crate) queue_users: [[bool; 3]; 4],
    /// Clock domain of the neighbor driving each queue (for the
    /// traditional suppressor's safe-edge lookup).
    pub(crate) queue_src_mode: [Option<VfMode>; 4],
    pub(crate) reg: Option<Token>,
    pub(crate) init_pending: bool,
}

fn queue_users(cfg: &PeConfig) -> [[bool; 3]; 4] {
    let mut users = [[false; 3]; 4];
    for sel in cfg.operands {
        if let OperandSel::Queue(d) = sel {
            users[d as usize][0] = true;
        }
    }
    for (slot, b) in cfg.bypass.iter().enumerate() {
        if let Some(bp) = b {
            users[bp.src as usize][slot + 1] = true;
        }
    }
    users
}

#[derive(Debug, Clone)]
pub(crate) enum Plan {
    Compute {
        pe: Coord,
        pops: Vec<Dir>,
        consume_reg: bool,
        operands: [u32; 2],
        op: Op,
        out_port: u8,
        is_init: bool,
        init_value: u32,
    },
    Bypass {
        pe: Coord,
        src: Dir,
        slot: usize,
        dst_mask: [bool; 4],
        value: u32,
    },
}

/// Per-edge stall bookkeeping for one PE's decision pass: the legacy
/// per-cause event counts plus the flags the edge classifier needs.
#[derive(Debug, Default)]
pub(crate) struct EdgeTally {
    /// Stalled input causes this edge (legacy event count).
    pub(crate) input_stalls: u64,
    /// Stalled output causes this edge (legacy event count).
    pub(crate) output_stalls: u64,
    /// Some required token was present but held by the suppressor /
    /// register aging.
    pub(crate) suppressed: bool,
}

/// Why an operand read failed this edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StallCause {
    /// The token has not arrived (or a const/reg is simply absent).
    Starved,
    /// A token is present but the suppressor (or the one-period
    /// register-aging rule) blocks it this edge.
    Suppressed,
}

/// The fabric simulator.
#[derive(Debug)]
pub struct Fabric {
    pub(crate) width: usize,
    pub(crate) height: usize,
    pub(crate) grid: Vec<Vec<PeState>>,
    pub(crate) scratch: Scratchpad,
    pub(crate) config: FabricConfig,
    pub(crate) checker: ClockChecker,
    pub(crate) protocol: ProtocolChecker,
    pub(crate) faults: FaultState,
}

impl Fabric {
    /// Build a fabric from a bitstream and an initial memory image.
    pub fn new(bitstream: &Bitstream, mem: Vec<u32>, config: FabricConfig) -> Fabric {
        let height = bitstream.grid.len();
        let width = bitstream.grid.first().map_or(0, |r| r.len());
        let grid = bitstream
            .grid
            .iter()
            .map(|row| {
                row.iter()
                    .map(|cfg| PeState {
                        config: *cfg,
                        queues: core::array::from_fn(|_| BisyncQueue::new(config.queue_capacity)),
                        queue_users: queue_users(cfg),
                        queue_src_mode: [None; 4],
                        reg: None,
                        init_pending: cfg.init.is_some(),
                    })
                    .collect()
            })
            .collect();
        let checker = ClockChecker::new(&config.clocks);
        let protocol = ProtocolChecker::new(width, height);
        let faults = FaultState::new(config.faults.clone());
        let mut fabric = Fabric {
            width,
            height,
            grid,
            scratch: Scratchpad::new(mem),
            config,
            checker,
            protocol,
            faults,
        };
        // Record each queue's source clock domain (the neighbor that
        // drives it), for the traditional suppressor's LUT.
        for y in 0..height {
            for x in 0..width {
                for dir in Dir::ALL {
                    if let Some((nx, ny)) = fabric.neighbor((x, y), dir) {
                        let ncfg = &fabric.grid[ny][nx].config;
                        if ncfg.role != PeRole::Gated {
                            fabric.grid[y][x].queue_src_mode[dir as usize] = Some(ncfg.clk);
                        }
                    }
                }
            }
        }
        fabric
    }

    /// Front-token visibility for `user` of queue `dir` of PE `pe`
    /// at tick `t`, under the configured suppressor.
    fn queue_visible(&self, pe: Coord, dir: Dir, user: usize, t: u64) -> Option<u32> {
        // An injected stuck-at-low valid hides the front token; the
        // elastic protocol absorbs the delay (classified suppressed).
        if self.faults.valid_stuck(pe, dir, t) {
            return None;
        }
        let state = &self.grid[pe.1][pe.0];
        let dst_mode = state.config.clk;
        let period = self.config.clocks.period(dst_mode);
        match self.config.suppressor {
            SuppressorKind::ElasticityAware => {
                state.queues[dir as usize].front_visible_for(t, period, user)
            }
            SuppressorKind::Traditional => {
                let src_mode = state.queue_src_mode[dir as usize]?;
                let lut = self.checker.lut(src_mode, dst_mode);
                if lut.is_unsafe_at(t) {
                    return None;
                }
                // Safe edge: any registered token (nonzero age) passes.
                state.queues[dir as usize].front_visible_for(t, 1, user)
            }
        }
    }

    pub(crate) fn neighbor(&self, (x, y): Coord, dir: Dir) -> Option<Coord> {
        match dir {
            Dir::North if y > 0 => Some((x, y - 1)),
            Dir::South if y + 1 < self.height => Some((x, y + 1)),
            Dir::West if x > 0 => Some((x - 1, y)),
            Dir::East if x + 1 < self.width => Some((x + 1, y)),
            _ => None,
        }
    }

    /// Can `value` be delivered to every direction in `mask` (all
    /// target queues have space and report ready at tick `t`)?
    /// Directions off the array edge are dropped silently (they can
    /// only arise from malformed configs).
    pub(crate) fn mask_ready(&self, pe: Coord, mask: &[bool; 4], t: u64) -> bool {
        Dir::ALL.iter().enumerate().all(|(i, &dir)| {
            if !mask[i] {
                return true;
            }
            match self.neighbor(pe, dir) {
                Some((nx, ny)) => {
                    // Tokens arrive in the neighbor's queue facing back
                    // toward this PE.
                    let back = Dir::between((nx, ny), pe);
                    self.grid[ny][nx].queues[back as usize].can_push()
                        && !self.faults.ready_stuck((nx, ny), back, t)
                }
                None => true,
            }
        })
    }

    fn deliver(&mut self, pe: Coord, mask: [bool; 4], value: u32, t: u64) {
        for (i, &dir) in Dir::ALL.iter().enumerate() {
            if !mask[i] {
                continue;
            }
            if let Some((nx, ny)) = self.neighbor(pe, dir) {
                let back = Dir::between((nx, ny), pe);
                self.push_checked((nx, ny), back, value, t);
            }
        }
    }

    /// Deliver one token into queue `back` of `dst`, routed through
    /// the fault injector and accounted by the protocol checker on
    /// both sides. Returns `true` when the queue actually grew (the
    /// event engine's wake edge). A push without credit — possible
    /// only with a malformed bitstream (conflicting drivers) or a
    /// duplication fault — becomes a fatal `Overflow` violation
    /// instead of a panic.
    pub(crate) fn push_checked(&mut self, dst: Coord, back: Dir, value: u32, t: u64) -> bool {
        self.protocol.offer(dst, back, value);
        let inj = self.faults.inject(dst, back, value);
        let mut grew = false;
        for _ in 0..inj.copies {
            self.protocol.receive(dst, back, inj.value);
            if self.grid[dst.1][dst.0].queues[back as usize].try_push(inj.value, t) {
                grew = true;
            } else {
                self.protocol
                    .fatal(dst, Some(back), t, ViolationKind::Overflow);
            }
        }
        grew
    }

    /// Phase-2 consumption of the front token of queue `dir` of `pe`
    /// by local `user`, with suppressor-safety checking and pop
    /// accounting. Mis-scheduled takes (empty queue, double take)
    /// become fatal protocol violations instead of panics. Returns
    /// `true` when the take popped the token (the event engine's
    /// producer-wake edge).
    pub(crate) fn take_checked(&mut self, pe: Coord, dir: Dir, user: usize, t: u64) -> bool {
        let (x, y) = pe;
        let front = self.grid[y][x].queues[dir as usize].front();
        if let Some(tok) = front {
            // Suppressor safety: no capture of a token younger than
            // one receiver period (elasticity-aware), or on an unsafe
            // edge / younger than one tick (traditional).
            let dst_mode = self.grid[y][x].config.clk;
            let period = self.config.clocks.period(dst_mode);
            let safe = match self.config.suppressor {
                SuppressorKind::ElasticityAware => t >= tok.written + period,
                SuppressorKind::Traditional => {
                    let src = self.grid[y][x].queue_src_mode[dir as usize];
                    let on_safe_edge =
                        src.is_none_or(|s| !self.checker.lut(s, dst_mode).is_unsafe_at(t));
                    on_safe_edge && t > tok.written
                }
            };
            if !safe {
                self.protocol.record(
                    pe,
                    Some(dir),
                    t,
                    ViolationKind::SuppressorUnsafe {
                        age: t.saturating_sub(tok.written),
                        period,
                    },
                );
            }
        }
        let required = self.grid[y][x].queue_users[dir as usize];
        match self.grid[y][x].queues[dir as usize].try_take(user, required) {
            Ok(popped) => {
                if popped {
                    self.protocol.consume(pe, dir);
                }
                popped
            }
            Err(e) => {
                self.protocol.fatal_take(pe, dir, t, e);
                false
            }
        }
    }

    /// Checked scratchpad load: an out-of-bounds address (reachable
    /// under payload-flip faults) becomes a fatal violation and reads
    /// zero instead of aborting.
    pub(crate) fn load_checked(&mut self, pe: Coord, addr: u32, t: u64) -> u32 {
        match self.scratch.try_read(pe, addr) {
            Some(v) => v,
            None => {
                self.protocol
                    .fatal(pe, None, t, ViolationKind::MemoryOutOfBounds { addr });
                0
            }
        }
    }

    /// Checked scratchpad store (see [`Fabric::load_checked`]).
    pub(crate) fn store_checked(&mut self, pe: Coord, addr: u32, value: u32, t: u64) {
        if !self.scratch.try_write(pe, addr, value) {
            self.protocol
                .fatal(pe, None, t, ViolationKind::MemoryOutOfBounds { addr });
        }
    }

    /// Final occupancy of every input queue, indexed like the protocol
    /// checker's crossing stats (`(y * width + x) * 4 + dir`).
    fn crossing_resident(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.width * self.height * 4);
        for row in &self.grid {
            for pe in row {
                for q in &pe.queues {
                    out.push(q.len() as u64);
                }
            }
        }
        out
    }

    /// Run the checker's end-of-run conservation checks (shared by
    /// both engines; must be called exactly once, after simulation).
    pub(crate) fn protocol_report(&mut self, t: u64) -> ProtocolReport {
        let resident = self.crossing_resident();
        self.protocol.finish(&resident, t)
    }

    /// Run to completion with the selected engine. Both engines are
    /// bit-identical by contract (see [`crate::engine`]); the dense
    /// stepper is the reference oracle, the event-driven scheduler the
    /// fast path.
    pub fn run_with(self, engine: crate::engine::Engine) -> Activity {
        match engine {
            crate::engine::Engine::Dense => self.run(),
            crate::engine::Engine::EventDriven => crate::engine::run_event(self),
        }
    }

    /// Run to completion with the dense reference stepper: every PE is
    /// examined on every PLL tick.
    #[allow(clippy::needless_range_loop)]
    pub fn run(mut self) -> Activity {
        let (w, h) = (self.width, self.height);
        let mut fires = vec![vec![0u64; w]; h];
        let mut bypass_tokens = vec![vec![0u64; w]; h];
        let mut input_stalls = vec![vec![0u64; w]; h];
        let mut output_stalls = vec![vec![0u64; w]; h];
        let mut rising_edges = vec![vec![0u64; w]; h];
        let mut fire_edges = vec![vec![0u64; w]; h];
        let mut operand_stalls = vec![vec![0u64; w]; h];
        let mut suppressed_stalls = vec![vec![0u64; w]; h];
        let mut backpressure_stalls = vec![vec![0u64; w]; h];
        let mut gated_ticks = vec![vec![0u64; w]; h];
        let occupancy_buckets = self.config.queue_capacity + 1;
        let mut queue_occupancy = vec![vec![vec![0u64; occupancy_buckets]; w]; h];
        let mut domain_edges = [0u64; 3];
        let mut domain_edges_hyper = [0u64; 3];
        let mut domain_gated_ticks = [0u64; 3];
        let mut marker_times = Vec::new();
        let mut events: Vec<FireEvent> = Vec::new();
        let hyper = self.config.clocks.hyperperiod();
        let quiesce_window = hyper * 3;
        let mut last_act = 0u64;
        let mut stop = FabricStop::TickLimit;

        let mut t = 0u64;
        while t < self.config.max_ticks {
            // Clock-domain edge counters (properties of the clock
            // plan, measured rather than hand-computed so the power
            // model consumes simulation output directly).
            for mode in VfMode::ALL {
                if self.config.clocks.is_rising(mode, t) {
                    domain_edges[mode as usize] += 1;
                    if t < hyper {
                        domain_edges_hyper[mode as usize] += 1;
                    }
                }
            }

            // Phase 1: decide per rising PE, classifying each edge.
            let mut plans: Vec<Plan> = Vec::new();
            for y in 0..h {
                for x in 0..w {
                    let clk = self.grid[y][x].config.clk;
                    if self.grid[y][x].config.role == PeRole::Gated
                        || !self.config.clocks.is_rising(clk, t)
                    {
                        continue;
                    }
                    rising_edges[y][x] += 1;
                    for q in &self.grid[y][x].queues {
                        queue_occupancy[y][x][q.len().min(occupancy_buckets - 1)] += 1;
                    }
                    let planned_before = plans.len();
                    let mut tally = EdgeTally::default();
                    self.decide((x, y), t, &mut plans, &mut tally);
                    input_stalls[y][x] += tally.input_stalls;
                    output_stalls[y][x] += tally.output_stalls;
                    if plans.len() > planned_before {
                        fire_edges[y][x] += 1;
                    } else if tally.output_stalls > 0 {
                        backpressure_stalls[y][x] += 1;
                    } else if tally.suppressed {
                        suppressed_stalls[y][x] += 1;
                    } else if tally.input_stalls > 0 {
                        operand_stalls[y][x] += 1;
                    } else {
                        gated_ticks[y][x] += 1;
                        domain_gated_ticks[clk as usize] += 1;
                    }
                }
            }

            // Phase 2: apply. Pops first, then computes (loads read
            // pre-store memory), register writes, pushes, stores.
            let mut acted = false;
            let mut pushes: Vec<(Coord, [bool; 4], u32)> = Vec::new();
            let mut reg_writes: Vec<(Coord, u32)> = Vec::new();
            let mut stores: Vec<(Coord, u32, u32)> = Vec::new();

            for plan in &plans {
                acted = true;
                match plan {
                    Plan::Compute {
                        pe,
                        pops,
                        consume_reg,
                        ..
                    } => {
                        for &d in pops {
                            self.take_checked(*pe, d, 0, t);
                        }
                        if *consume_reg {
                            self.grid[pe.1][pe.0].reg = None;
                        }
                    }
                    Plan::Bypass { pe, src, slot, .. } => {
                        self.take_checked(*pe, *src, slot + 1, t);
                    }
                }
            }

            for plan in plans {
                match plan {
                    Plan::Compute {
                        pe,
                        operands,
                        op,
                        out_port,
                        is_init,
                        init_value,
                        ..
                    } => {
                        let (x, y) = pe;
                        fires[y][x] += 1;
                        if self.config.record_events {
                            events.push(FireEvent {
                                tick: t,
                                pe,
                                is_fire: true,
                            });
                        }
                        if self.config.marker == Some(pe) {
                            marker_times.push(t);
                        }
                        if is_init {
                            self.grid[y][x].init_pending = false;
                        }
                        let value = if is_init {
                            init_value
                        } else {
                            match op {
                                Op::Load => self.load_checked(pe, operands[0], t),
                                Op::Store => {
                                    stores.push((pe, operands[0], operands[1]));
                                    operands[1]
                                }
                                _ => op.eval(operands[0], operands[1]),
                            }
                        };
                        let cfg = self.grid[y][x].config;
                        let mask = if out_port == 0 {
                            cfg.alu_true_mask
                        } else {
                            cfg.alu_false_mask
                        };
                        pushes.push((pe, mask, value));
                        if cfg.reg_write && out_port == 0 {
                            reg_writes.push((pe, value));
                        }
                    }
                    Plan::Bypass {
                        pe,
                        dst_mask,
                        value,
                        ..
                    } => {
                        let (x, y) = pe;
                        bypass_tokens[y][x] += 1;
                        if self.config.record_events {
                            events.push(FireEvent {
                                tick: t,
                                pe,
                                is_fire: false,
                            });
                        }
                        pushes.push((pe, dst_mask, value));
                    }
                }
            }

            for (pe, value) in reg_writes {
                self.grid[pe.1][pe.0].reg = Some(Token { value, written: t });
            }
            for (pe, mask, value) in pushes {
                self.deliver(pe, mask, value, t);
            }
            for (pe, addr, value) in stores {
                self.store_checked(pe, addr, value, t);
            }

            if self.protocol.is_fatal() {
                stop = FabricStop::ProtocolViolation;
                t += 1;
                break;
            }
            if acted {
                last_act = t;
            }
            if let (Some(max), Some((mx, my))) = (self.config.max_marker_fires, self.config.marker)
            {
                if fires[my][mx] >= max {
                    stop = FabricStop::MarkerDone;
                    t += 1;
                    break;
                }
            }
            if t >= last_act + quiesce_window {
                stop = FabricStop::Quiesced;
                break;
            }
            t += 1;
        }

        let mut sram_accesses = vec![vec![0u64; w]; h];
        for y in 0..h {
            for x in 0..w {
                sram_accesses[y][x] = self.scratch.accesses((x, y));
            }
        }
        let mem_len = self.scratch.len();
        let protocol = self.protocol_report(t);
        Activity {
            fires,
            bypass_tokens,
            input_stalls,
            output_stalls,
            rising_edges,
            fire_edges,
            operand_stalls,
            suppressed_stalls,
            backpressure_stalls,
            gated_ticks,
            queue_occupancy,
            domain_edges,
            domain_edges_hyper,
            domain_gated_ticks,
            sram_accesses,
            marker_times,
            ticks: t,
            stop,
            clocks: self.config.clocks.clone(),
            mem: self.scratch.image(mem_len),
            events,
            protocol,
        }
    }

    pub(crate) fn decide(&self, pe: Coord, t: u64, plans: &mut Vec<Plan>, tally: &mut EdgeTally) {
        let (x, y) = pe;
        let state = &self.grid[y][x];
        let cfg = state.config;
        let period = self.config.clocks.period(cfg.clk);

        // An injected domain stall withholds this PE's clock: the edge
        // does nothing and classifies as gated (the clock never rose,
        // as far as the PE is concerned).
        if self.faults.domain_stalled(cfg.clk, t) {
            return;
        }

        // Bypass slots (independent of compute; paper: compute and
        // bypass in the same cycle).
        for (i, slot) in cfg.bypass.iter().enumerate() {
            let Some(slot) = slot else { continue };
            match self.queue_visible(pe, slot.src, i + 1, t) {
                Some(value) => {
                    if self.mask_ready(pe, &slot.dst_mask, t) {
                        plans.push(Plan::Bypass {
                            pe,
                            src: slot.src,
                            slot: i,
                            dst_mask: slot.dst_mask,
                            value,
                        });
                    } else {
                        tally.output_stalls += 1;
                    }
                }
                None => {
                    if !state.queues[slot.src as usize].is_empty() {
                        // Token present but not yet aged (a suppressed
                        // unsafe-edge handshake) or already taken by
                        // this user (waiting on the eager fork's other
                        // consumers).
                        tally.input_stalls += 1;
                        if state.queues[slot.src as usize].front_pending_for(i + 1) {
                            tally.suppressed = true;
                        }
                    }
                }
            }
        }

        let PeRole::Compute(op) = cfg.role else {
            return;
        };

        // Phi bootstrap.
        if state.init_pending {
            if self.mask_ready(pe, &cfg.alu_true_mask, t) {
                plans.push(Plan::Compute {
                    pe,
                    pops: Vec::new(),
                    consume_reg: false,
                    operands: [0, 0],
                    op,
                    out_port: 0,
                    is_init: true,
                    init_value: cfg.init.expect("init_pending implies init"),
                });
            } else {
                tally.output_stalls += 1;
            }
            return;
        }

        // Operand gathering.
        let read = |sel: OperandSel| -> Result<(Option<Dir>, bool, u32), StallCause> {
            // Ok((queue, consume_reg, value)).
            match sel {
                OperandSel::Queue(d) => match self.queue_visible(pe, d, 0, t) {
                    Some(v) => Ok((Some(d), false, v)),
                    None if state.queues[d as usize].front_pending_for(0) => {
                        Err(StallCause::Suppressed)
                    }
                    None => Err(StallCause::Starved),
                },
                OperandSel::Reg => match state.reg {
                    Some(tok) if t >= tok.written + period => Ok((None, true, tok.value)),
                    Some(_) => Err(StallCause::Suppressed),
                    None => Err(StallCause::Starved),
                },
                OperandSel::Const => match cfg.constant {
                    Some(c) => Ok((None, false, c)),
                    None => Err(StallCause::Starved),
                },
                OperandSel::None => Ok((None, false, 0)),
            }
        };

        let mut pops = Vec::new();
        let mut consume_reg = false;
        let mut operands = [0u32; 2];

        if op == Op::Phi {
            // Merge: first visible operand wins.
            let mut found = false;
            let mut any_suppressed = false;
            for port in 0..2 {
                match read(cfg.operands[port]) {
                    Ok((q, r, v)) => {
                        if q.is_none() && !r && cfg.operands[port] != OperandSel::Const {
                            continue; // OperandSel::None
                        }
                        if let Some(d) = q {
                            pops.push(d);
                        }
                        consume_reg = r;
                        operands[0] = v;
                        found = true;
                        break;
                    }
                    Err(cause) => any_suppressed |= cause == StallCause::Suppressed,
                }
            }
            if !found {
                tally.input_stalls += 1;
                tally.suppressed |= any_suppressed;
                return;
            }
        } else {
            let arity = op.arity().max(1);
            for (port, slot) in operands.iter_mut().enumerate().take(arity.min(2)) {
                match read(cfg.operands[port]) {
                    Ok((q, r, v)) => {
                        if let Some(d) = q {
                            // One net may feed both operand ports (the
                            // same direction): a single token serves
                            // both, so consume it once.
                            if !pops.contains(&d) {
                                pops.push(d);
                            }
                        }
                        consume_reg |= r;
                        *slot = v;
                    }
                    Err(cause) => {
                        tally.input_stalls += 1;
                        tally.suppressed |= cause == StallCause::Suppressed;
                        return;
                    }
                }
            }
        }

        // Output readiness.
        let out_port: u8 = if op == Op::Br {
            if operands[1] != 0 {
                0
            } else {
                1
            }
        } else {
            0
        };
        let mask = if out_port == 0 {
            cfg.alu_true_mask
        } else {
            cfg.alu_false_mask
        };
        if !self.mask_ready(pe, &mask, t) {
            tally.output_stalls += 1;
            return;
        }
        // Register write needs the slot free (capacity-one buffer),
        // unless this very firing consumes it.
        if cfg.reg_write && out_port == 0 && state.reg.is_some() && !consume_reg {
            tally.output_stalls += 1;
            return;
        }

        plans.push(Plan::Compute {
            pe,
            pops,
            consume_reg,
            operands,
            op,
            out_port,
            is_init: false,
            init_value: 0,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uecgra_compiler::bitstream::{Bitstream, Bypass, OperandSel, PeConfig};
    use uecgra_dfg::Op;

    /// Hand-build a 1x3 fabric: a phi accumulator feeding east into an
    /// add, which feeds east into a store-like consumer... kept
    /// minimal: phi -> add with a self-looping register accumulator.
    fn tiny_bitstream() -> Bitstream {
        let mut grid = vec![vec![PeConfig::default(); 3]; 1];
        // (0,0): phi with init, output east, fed back from its reg.
        grid[0][0] = PeConfig {
            role: PeRole::Compute(Op::Phi),
            operands: [OperandSel::Reg, OperandSel::None],
            alu_true_mask: [false, true, false, false], // east
            reg_write: true,
            init: Some(5),
            ..PeConfig::default()
        };
        // (1,0): add 1, from west, out east.
        grid[0][1] = PeConfig {
            role: PeRole::Compute(Op::Add),
            operands: [OperandSel::Queue(Dir::West), OperandSel::Const],
            constant: Some(1),
            alu_true_mask: [false, true, false, false],
            ..PeConfig::default()
        };
        // (2,0): sink-ish nop consuming from west (no outputs).
        grid[0][2] = PeConfig {
            role: PeRole::Compute(Op::Nop),
            operands: [OperandSel::Queue(Dir::West), OperandSel::None],
            ..PeConfig::default()
        };
        Bitstream { grid }
    }

    #[test]
    fn hand_built_fabric_executes() {
        let bs = tiny_bitstream();
        let config = FabricConfig {
            marker: Some((0, 0)),
            max_marker_fires: Some(10),
            ..FabricConfig::default()
        };
        let act = Fabric::new(&bs, vec![], config).run();
        assert_eq!(act.stop, FabricStop::MarkerDone);
        assert_eq!(act.fires[0][0], 10);
        // The downstream adder lags the marker by the pipeline depth.
        assert!(act.fires[0][1] >= 8);
    }

    #[test]
    fn neighbor_math_respects_edges() {
        let bs = tiny_bitstream();
        let f = Fabric::new(&bs, vec![], FabricConfig::default());
        assert_eq!(f.neighbor((0, 0), Dir::West), None);
        assert_eq!(f.neighbor((0, 0), Dir::North), None);
        assert_eq!(f.neighbor((0, 0), Dir::East), Some((1, 0)));
        assert_eq!(f.neighbor((2, 0), Dir::East), None);
    }

    #[test]
    fn mask_ready_sees_full_queues() {
        let bs = tiny_bitstream();
        let mut f = Fabric::new(&bs, vec![], FabricConfig::default());
        let east_only = [false, true, false, false];
        assert!(f.mask_ready((0, 0), &east_only, 0));
        // Fill (1,0)'s west queue.
        f.grid[0][1].queues[Dir::West as usize].push(1, 0);
        f.grid[0][1].queues[Dir::West as usize].push(2, 0);
        assert!(!f.mask_ready((0, 0), &east_only, 0));
        // Off-edge directions are always "ready" (dropped).
        assert!(f.mask_ready((0, 0), &[true, false, false, false], 0));
    }

    #[test]
    fn register_backpressure_blocks_writes() {
        // The phi writes its own register; with the register full and
        // not consumed this firing, it must stall rather than overwrite.
        // In the tiny fabric the phi both reads and writes the reg each
        // firing, so it never stalls — force the situation by hand.
        let bs = tiny_bitstream();
        let mut f = Fabric::new(&bs, vec![], FabricConfig::default());
        f.grid[0][0].init_pending = false;
        f.grid[0][0].reg = Some(crate::queue::Token {
            value: 9,
            written: 0,
        });
        // At t=3 the phi can fire by consuming the reg (consume+write).
        let mut plans = Vec::new();
        let mut tally = EdgeTally::default();
        f.decide((0, 0), 3, &mut plans, &mut tally);
        assert_eq!(plans.len(), 1, "reg consume-and-write is legal");
        match &plans[0] {
            Plan::Compute { consume_reg, .. } => assert!(consume_reg),
            other => panic!("unexpected plan {other:?}"),
        }
    }

    #[test]
    fn edge_classification_partitions_rising_edges() {
        let bs = tiny_bitstream();
        let config = FabricConfig {
            marker: Some((0, 0)),
            max_marker_fires: Some(10),
            ..FabricConfig::default()
        };
        let act = Fabric::new(&bs, vec![], config).run();
        for x in 0..3 {
            assert_eq!(
                act.fire_edges[0][x]
                    + act.operand_stalls[0][x]
                    + act.suppressed_stalls[0][x]
                    + act.backpressure_stalls[0][x]
                    + act.gated_ticks[0][x],
                act.rising_edges[0][x],
                "edge classes must partition rising edges at (0, {x})"
            );
            // Four queues sampled once per rising edge.
            let samples: u64 = act.queue_occupancy[0][x].iter().sum();
            assert_eq!(samples, 4 * act.rising_edges[0][x]);
        }
        assert!(act.fire_edges[0][0] > 0);
        // Default 9:3:2 divisors over the 18-tick hyperperiod.
        assert_eq!(act.domain_edges_hyper, [2, 6, 9]);
        assert_eq!(
            act.domain_gated_ticks.iter().sum::<u64>(),
            act.gated_ticks.iter().flatten().sum::<u64>()
        );
    }

    #[test]
    fn bypass_config_forwards_between_strangers() {
        // (1,0) only bypasses: west -> east; producers/consumers at the
        // ends. Build: (0,0) phi/reg as before; (1,0) route-only;
        // (2,0) nop consumer.
        let mut bs = tiny_bitstream();
        bs.grid[0][1] = PeConfig {
            role: PeRole::RouteOnly,
            bypass: [
                Some(Bypass {
                    src: Dir::West,
                    dst_mask: [false, true, false, false],
                }),
                None,
            ],
            ..PeConfig::default()
        };
        let config = FabricConfig {
            marker: Some((2, 0)),
            max_marker_fires: Some(5),
            ..FabricConfig::default()
        };
        let act = Fabric::new(&bs, vec![], config).run();
        assert_eq!(act.stop, FabricStop::MarkerDone);
        assert!(act.bypass_tokens[0][1] >= 5);
        assert_eq!(act.fires[0][1], 0, "route-only PEs never fire");
    }
}

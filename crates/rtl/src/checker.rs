//! The elastic-protocol invariant checker.
//!
//! An always-on, observation-only monitor of the inter-PE elastic
//! protocol. Every token delivered through a ratiochronous crossing (a
//! destination PE's input queue) is accounted on both sides of the
//! fault injector, so the checker can prove, per crossing:
//!
//! * **Token conservation** — every token a producer offered was
//!   received exactly once ([`ViolationKind::TokenLoss`] /
//!   [`ViolationKind::TokenDuplication`] otherwise).
//! * **Payload integrity** — an order-sensitive checksum over the
//!   offered stream equals the checksum over the received stream
//!   ([`ViolationKind::PayloadCorruption`] otherwise).
//! * **Queue conservation** — tokens received minus tokens consumed
//!   equals the queue's final occupancy
//!   ([`ViolationKind::QueueConservation`] otherwise).
//! * **Suppressor safety** — no consumer captures a token younger than
//!   one receiver period (elasticity-aware), or on an unsafe edge
//!   (traditional) ([`ViolationKind::SuppressorUnsafe`] otherwise).
//!
//! Credit conservation is enforced structurally: the ready signal *is*
//! the queue's free capacity (`BisyncQueue::can_push`), so a producer
//! that pushes without credit is an [`ViolationKind::Overflow`] — a
//! *fatal* violation, like [`ViolationKind::PopFromEmpty`],
//! [`ViolationKind::DoubleTake`], and
//! [`ViolationKind::MemoryOutOfBounds`]: the simulated state is no
//! longer meaningful, so both engines stop the run with
//! [`FabricStop::ProtocolViolation`](crate::fabric::FabricStop) and the
//! pipeline surfaces the first fatal violation as
//! `uecgra_core::Error::Protocol`.
//!
//! The checker is deliberately cheap (a few counter updates and two
//! 64-bit mixes per token) so it stays on in every run, including the
//! differential suite — where it doubles as a permanent oracle: both
//! engines must produce identical [`ProtocolReport`]s, and clean runs
//! must produce zero violations.

use crate::queue::TakeError;
use uecgra_compiler::bitstream::Dir;
use uecgra_compiler::mapping::Coord;

/// The SplitMix64 output mixer — the checksum primitive. Chaining it
/// (`sum = mix64(sum ^ mix64(value))`) makes the stream checksum
/// order-sensitive, so token reordering is caught, not just value
/// tampering.
pub(crate) fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// What invariant a [`ProtocolViolation`] broke.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// Fewer tokens were received at a crossing than its producer
    /// offered.
    TokenLoss {
        /// Tokens the producer sent.
        offered: u64,
        /// Tokens that arrived.
        received: u64,
    },
    /// More tokens were received at a crossing than its producer
    /// offered.
    TokenDuplication {
        /// Tokens the producer sent.
        offered: u64,
        /// Tokens that arrived.
        received: u64,
    },
    /// Token counts match but the payload stream was altered in
    /// flight.
    PayloadCorruption,
    /// Tokens received minus tokens consumed does not equal the
    /// queue's final occupancy.
    QueueConservation {
        /// Tokens pushed into the queue.
        received: u64,
        /// Tokens popped from the queue.
        consumed: u64,
        /// Tokens resident at the end of the run.
        resident: u64,
    },
    /// A consumer captured a token that had not aged one receiver
    /// period (elasticity-aware), or on an unsafe edge (traditional).
    SuppressorUnsafe {
        /// The token's age in PLL ticks at capture.
        age: u64,
        /// The receiver's clock period.
        period: u64,
    },
    /// A pop was attempted on an empty queue (fatal).
    PopFromEmpty,
    /// A queue user consumed the same front token twice (fatal).
    DoubleTake {
        /// The offending local user (0 = compute, 1/2 = bypass).
        user: usize,
    },
    /// A producer pushed into a full queue — a push without credit
    /// (fatal).
    Overflow,
    /// A load or store addressed past the scratchpad (fatal).
    MemoryOutOfBounds {
        /// The offending word address.
        addr: u32,
    },
}

impl ViolationKind {
    /// Fatal violations corrupt simulated state, so the run stops.
    pub fn is_fatal(&self) -> bool {
        matches!(
            self,
            ViolationKind::PopFromEmpty
                | ViolationKind::DoubleTake { .. }
                | ViolationKind::Overflow
                | ViolationKind::MemoryOutOfBounds { .. }
        )
    }

    /// Stable lowercase label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            ViolationKind::TokenLoss { .. } => "token-loss",
            ViolationKind::TokenDuplication { .. } => "token-duplication",
            ViolationKind::PayloadCorruption => "payload-corruption",
            ViolationKind::QueueConservation { .. } => "queue-conservation",
            ViolationKind::SuppressorUnsafe { .. } => "suppressor-unsafe",
            ViolationKind::PopFromEmpty => "pop-from-empty",
            ViolationKind::DoubleTake { .. } => "double-take",
            ViolationKind::Overflow => "overflow",
            ViolationKind::MemoryOutOfBounds { .. } => "memory-out-of-bounds",
        }
    }
}

/// One detected protocol violation, locatable to a crossing and tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtocolViolation {
    /// The PE on whose input side the violation was observed (for
    /// memory violations, the accessing PE).
    pub pe: Coord,
    /// The input queue involved, when the violation is crossing-local.
    pub dir: Option<Dir>,
    /// The PLL tick of detection (end-of-run checks carry the final
    /// tick).
    pub tick: u64,
    /// Which invariant broke.
    pub kind: ViolationKind,
}

impl std::fmt::Display for ProtocolViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "protocol violation `{}` at PE ({}, {})",
            self.kind.label(),
            self.pe.0,
            self.pe.1
        )?;
        if let Some(d) = self.dir {
            write!(f, " queue {d:?}")?;
        }
        write!(f, " (tick {})", self.tick)?;
        match self.kind {
            ViolationKind::TokenLoss { offered, received }
            | ViolationKind::TokenDuplication { offered, received } => {
                write!(f, ": offered {offered}, received {received}")
            }
            ViolationKind::QueueConservation {
                received,
                consumed,
                resident,
            } => write!(
                f,
                ": received {received}, consumed {consumed}, resident {resident}"
            ),
            ViolationKind::SuppressorUnsafe { age, period } => {
                write!(f, ": token age {age} < receiver period {period}")
            }
            ViolationKind::MemoryOutOfBounds { addr } => write!(f, ": address {addr}"),
            ViolationKind::DoubleTake { user } => write!(f, ": user {user}"),
            _ => Ok(()),
        }
    }
}

impl std::error::Error for ProtocolViolation {}

/// Per-crossing token accounting. `offered` counts tokens on the
/// producer side of the fault injector; `received` counts what the
/// queue actually absorbed; `consumed` counts pops. The `*_sum` fields
/// are chained order-sensitive checksums of the respective payload
/// streams.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct CrossingStats {
    offered: u64,
    offered_sum: u64,
    received: u64,
    received_sum: u64,
    consumed: u64,
}

/// The end-of-run protocol summary carried on
/// [`Activity`](crate::fabric::Activity). Both engines must produce it
/// bit-identically; it is *not* serialized into `RunReport`s (reports
/// stay byte-stable across this layer being added).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProtocolReport {
    /// Tokens offered into crossings over the whole run.
    pub tokens_checked: u64,
    /// Every violation detected, in detection order (fatal violations
    /// first stop the run; end-of-run conservation checks follow in
    /// row-major crossing order).
    pub violations: Vec<ProtocolViolation>,
    /// Per-crossing received-token counts for crossings that carried
    /// at least one token, in row-major order — the fault campaign
    /// draws its targets from here so injected faults actually fire.
    pub flows: Vec<(Coord, Dir, u64)>,
}

impl ProtocolReport {
    /// True when no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// The first fatal violation, if the run was stopped by one.
    pub fn first_fatal(&self) -> Option<&ProtocolViolation> {
        self.violations.iter().find(|v| v.kind.is_fatal())
    }
}

/// The live monitor: one [`CrossingStats`] per (PE, direction).
#[derive(Debug)]
pub(crate) struct ProtocolChecker {
    width: usize,
    stats: Vec<CrossingStats>,
    violations: Vec<ProtocolViolation>,
    fatal: bool,
    tokens: u64,
}

impl ProtocolChecker {
    pub(crate) fn new(width: usize, height: usize) -> ProtocolChecker {
        ProtocolChecker {
            width,
            stats: vec![CrossingStats::default(); width * height * 4],
            violations: Vec::new(),
            fatal: false,
            tokens: 0,
        }
    }

    fn slot(&mut self, pe: Coord, dir: Dir) -> &mut CrossingStats {
        let idx = (pe.1 * self.width + pe.0) * 4 + dir as usize;
        &mut self.stats[idx]
    }

    /// A producer sent `value` toward queue `dir` of `pe` (pre-fault).
    pub(crate) fn offer(&mut self, pe: Coord, dir: Dir, value: u32) {
        self.tokens += 1;
        let s = self.slot(pe, dir);
        s.offered += 1;
        s.offered_sum = mix64(s.offered_sum ^ mix64(u64::from(value)));
    }

    /// Queue `dir` of `pe` absorbed `value` (post-fault).
    pub(crate) fn receive(&mut self, pe: Coord, dir: Dir, value: u32) {
        let s = self.slot(pe, dir);
        s.received += 1;
        s.received_sum = mix64(s.received_sum ^ mix64(u64::from(value)));
    }

    /// The front token of queue `dir` of `pe` was popped.
    pub(crate) fn consume(&mut self, pe: Coord, dir: Dir) {
        self.slot(pe, dir).consumed += 1;
    }

    /// Record a non-fatal violation.
    pub(crate) fn record(&mut self, pe: Coord, dir: Option<Dir>, tick: u64, kind: ViolationKind) {
        self.violations.push(ProtocolViolation {
            pe,
            dir,
            tick,
            kind,
        });
    }

    /// Record a fatal violation; the engines stop the run once the
    /// current tick's phase 2 completes.
    pub(crate) fn fatal(&mut self, pe: Coord, dir: Option<Dir>, tick: u64, kind: ViolationKind) {
        self.fatal = true;
        self.record(pe, dir, tick, kind);
    }

    /// Map a [`TakeError`] to its fatal violation.
    pub(crate) fn fatal_take(&mut self, pe: Coord, dir: Dir, tick: u64, err: TakeError) {
        let kind = match err {
            TakeError::Empty => ViolationKind::PopFromEmpty,
            TakeError::DoubleTake { user } => ViolationKind::DoubleTake { user },
        };
        self.fatal(pe, Some(dir), tick, kind);
    }

    /// Has a fatal violation been recorded?
    pub(crate) fn is_fatal(&self) -> bool {
        self.fatal
    }

    /// Run the end-of-run conservation checks and emit the report.
    /// `resident` carries each crossing's final queue occupancy,
    /// indexed like the internal stats (`(y * width + x) * 4 + dir`).
    pub(crate) fn finish(&mut self, resident: &[u64], tick: u64) -> ProtocolReport {
        debug_assert_eq!(resident.len(), self.stats.len());
        let mut flows = Vec::new();
        for (idx, s) in self.stats.iter().enumerate() {
            let pe = ((idx / 4) % self.width, idx / 4 / self.width);
            let dir = Dir::ALL[idx % 4];
            if s.received > 0 {
                flows.push((pe, dir, s.received));
            }
            let kind = if s.received < s.offered {
                Some(ViolationKind::TokenLoss {
                    offered: s.offered,
                    received: s.received,
                })
            } else if s.received > s.offered {
                Some(ViolationKind::TokenDuplication {
                    offered: s.offered,
                    received: s.received,
                })
            } else if s.offered_sum != s.received_sum {
                Some(ViolationKind::PayloadCorruption)
            } else if s.received != s.consumed + resident[idx] {
                Some(ViolationKind::QueueConservation {
                    received: s.received,
                    consumed: s.consumed,
                    resident: resident[idx],
                })
            } else {
                None
            };
            if let Some(kind) = kind {
                self.violations.push(ProtocolViolation {
                    pe,
                    dir: Some(dir),
                    tick,
                    kind,
                });
            }
        }
        ProtocolReport {
            tokens_checked: self.tokens,
            violations: std::mem::take(&mut self.violations),
            flows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_streams_report_no_violations() {
        let mut c = ProtocolChecker::new(2, 2);
        for v in [3u32, 5, 8] {
            c.offer((1, 0), Dir::West, v);
            c.receive((1, 0), Dir::West, v);
        }
        c.consume((1, 0), Dir::West);
        c.consume((1, 0), Dir::West);
        let mut resident = vec![0u64; 2 * 2 * 4];
        resident[(0 * 2 + 1) * 4 + Dir::West as usize] = 1;
        let report = c.finish(&resident, 99);
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.tokens_checked, 3);
        assert_eq!(report.flows, vec![((1, 0), Dir::West, 3)]);
    }

    #[test]
    fn loss_duplication_and_corruption_are_distinguished() {
        let mut c = ProtocolChecker::new(3, 1);
        // (0,0): a dropped token.
        c.offer((0, 0), Dir::North, 1);
        // (1,0): a duplicated token.
        c.offer((1, 0), Dir::North, 2);
        c.receive((1, 0), Dir::North, 2);
        c.receive((1, 0), Dir::North, 2);
        // (2,0): a flipped payload.
        c.offer((2, 0), Dir::North, 3);
        c.receive((2, 0), Dir::North, 7);
        c.consume((1, 0), Dir::North);
        c.consume((1, 0), Dir::North);
        c.consume((2, 0), Dir::North);
        let report = c.finish(&vec![0u64; 3 * 4], 10);
        let kinds: Vec<&str> = report.violations.iter().map(|v| v.kind.label()).collect();
        assert_eq!(
            kinds,
            ["token-loss", "token-duplication", "payload-corruption"]
        );
        assert!(report.first_fatal().is_none());
    }

    #[test]
    fn reordering_is_caught_by_the_chained_checksum() {
        let mut c = ProtocolChecker::new(1, 1);
        c.offer((0, 0), Dir::East, 1);
        c.offer((0, 0), Dir::East, 2);
        c.receive((0, 0), Dir::East, 2);
        c.receive((0, 0), Dir::East, 1);
        c.consume((0, 0), Dir::East);
        c.consume((0, 0), Dir::East);
        let report = c.finish(&vec![0u64; 4], 5);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].kind, ViolationKind::PayloadCorruption);
    }

    #[test]
    fn queue_conservation_checks_residency() {
        let mut c = ProtocolChecker::new(1, 1);
        c.offer((0, 0), Dir::South, 4);
        c.receive((0, 0), Dir::South, 4);
        // Never consumed, but reported resident count says empty.
        let report = c.finish(&vec![0u64; 4], 5);
        assert_eq!(report.violations.len(), 1);
        assert!(matches!(
            report.violations[0].kind,
            ViolationKind::QueueConservation {
                received: 1,
                consumed: 0,
                resident: 0
            }
        ));
    }

    #[test]
    fn fatal_violations_set_the_flag_and_sort_first() {
        let mut c = ProtocolChecker::new(1, 1);
        assert!(!c.is_fatal());
        c.fatal_take((0, 0), Dir::West, 7, TakeError::Empty);
        assert!(c.is_fatal());
        let report = c.finish(&vec![0u64; 4], 7);
        let fatal = report.first_fatal().expect("fatal recorded");
        assert_eq!(fatal.kind, ViolationKind::PopFromEmpty);
        assert!(fatal.kind.is_fatal());
        assert!(!ViolationKind::PayloadCorruption.is_fatal());
        let shown = fatal.to_string();
        assert!(shown.contains("pop-from-empty"), "{shown}");
        assert!(shown.contains("(0, 0)"), "{shown}");
    }
}

//! Deterministic fault injection for the elastic inter-PE protocol.
//!
//! The paper's correctness claim is that the ultra-elastic fabric
//! tolerates arbitrary timing perturbations at ratiochronous crossings
//! while never corrupting data. This module provides the adversary: a
//! SplitMix64-seeded injector that perturbs a chosen crossing (a
//! destination PE's input queue) or a whole clock domain:
//!
//! * **Corruption faults** ([`FaultKind::FlipPayloadBit`],
//!   [`FaultKind::DropToken`], [`FaultKind::DuplicateToken`]) attack
//!   the data path: the n-th token delivered through the crossing is
//!   bit-flipped, silently discarded, or delivered twice. The protocol
//!   checker must detect every one of these (token conservation and
//!   payload checksums over the crossing).
//! * **Handshake faults** ([`FaultKind::StickValid`],
//!   [`FaultKind::StickReady`]) attack the control path: for a window
//!   of PLL ticks the crossing's valid (front-token visibility) or
//!   ready (queue credit) signal is stuck low. A correct elastic
//!   fabric absorbs these — execution is delayed, never corrupted.
//! * **Timing faults** ([`FaultKind::StallDomain`]) freeze every PE of
//!   one clock domain for a window of ticks, modeling a PLL glitch or
//!   a clock-gating controller fault. Finite stalls are absorbed;
//!   unbounded stalls are converted into a structured
//!   `Error::Stalled` by the pipeline watchdog.
//!
//! A [`FaultPlan`] is pure data (it lives in
//! [`FabricConfig`](crate::fabric::FabricConfig)); the mutable
//! trigger state lives in [`FaultState`] inside the fabric, so a plan
//! can be reused across runs and engines. Both engines evaluate the
//! same plan at the same queue operations, which keeps the dense and
//! event-driven engines bit-identical under injection (the event
//! engine additionally disables its wakeup-skipping optimization while
//! faults are active, because stuck windows change PE outcomes without
//! any queue mutation).

use uecgra_clock::VfMode;
use uecgra_compiler::bitstream::Dir;
use uecgra_compiler::mapping::Coord;

/// One way to perturb the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// XOR bit `bit` into the payload of the `nth` token delivered
    /// through the crossing (0-based).
    FlipPayloadBit {
        /// Bit index (taken modulo 32).
        bit: u8,
        /// Which token through the crossing to corrupt.
        nth: u64,
    },
    /// Silently discard the `nth` token delivered through the
    /// crossing.
    DropToken {
        /// Which token through the crossing to drop.
        nth: u64,
    },
    /// Deliver the `nth` token through the crossing twice.
    DuplicateToken {
        /// Which token through the crossing to duplicate.
        nth: u64,
    },
    /// Hold the crossing's valid signal low — the front token is
    /// invisible to the consumer — for `ticks` PLL ticks starting at
    /// `from`.
    StickValid {
        /// First PLL tick of the stuck window.
        from: u64,
        /// Window length in PLL ticks.
        ticks: u64,
    },
    /// Hold the crossing's ready signal low — the queue reports no
    /// free credit to its producer — for `ticks` PLL ticks starting at
    /// `from`.
    StickReady {
        /// First PLL tick of the stuck window.
        from: u64,
        /// Window length in PLL ticks.
        ticks: u64,
    },
    /// Freeze every PE of `domain` (their rising edges do nothing) for
    /// `ticks` PLL ticks starting at `from`.
    StallDomain {
        /// The clock domain to stall.
        domain: VfMode,
        /// First PLL tick of the stall window.
        from: u64,
        /// Window length in PLL ticks (`u64::MAX` for a permanent
        /// stall).
        ticks: u64,
    },
}

impl FaultKind {
    /// Stable lowercase class label (`flip`, `drop`, `dup`,
    /// `stick-valid`, `stick-ready`, `stall-domain`) used by campaign
    /// reports and gates.
    pub fn class(&self) -> &'static str {
        match self {
            FaultKind::FlipPayloadBit { .. } => "flip",
            FaultKind::DropToken { .. } => "drop",
            FaultKind::DuplicateToken { .. } => "dup",
            FaultKind::StickValid { .. } => "stick-valid",
            FaultKind::StickReady { .. } => "stick-ready",
            FaultKind::StallDomain { .. } => "stall-domain",
        }
    }

    /// True for the corruption class (flip/drop/dup): faults the
    /// protocol checker must always detect.
    pub fn is_corruption(&self) -> bool {
        matches!(
            self,
            FaultKind::FlipPayloadBit { .. }
                | FaultKind::DropToken { .. }
                | FaultKind::DuplicateToken { .. }
        )
    }
}

/// One injected fault: a kind plus the crossing it targets.
///
/// The crossing is identified from the consumer side: `pe` is the
/// destination PE and `dir` names which of its four input queues is
/// attacked (i.e. the queue fed by the neighbor in direction `dir`).
/// [`FaultKind::StallDomain`] ignores the crossing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// Destination PE of the attacked crossing.
    pub pe: Coord,
    /// Which input queue of `pe` is attacked.
    pub dir: Dir,
    /// The perturbation.
    pub kind: FaultKind,
}

impl Fault {
    /// A compact stable label, e.g. `flip[bit=3,nth=1]@(4,2).West`.
    pub fn label(&self) -> String {
        let at = format!("@({},{}).{:?}", self.pe.0, self.pe.1, self.dir);
        match self.kind {
            FaultKind::FlipPayloadBit { bit, nth } => format!("flip[bit={bit},nth={nth}]{at}"),
            FaultKind::DropToken { nth } => format!("drop[nth={nth}]{at}"),
            FaultKind::DuplicateToken { nth } => format!("dup[nth={nth}]{at}"),
            FaultKind::StickValid { from, ticks } => {
                format!("stick-valid[from={from},ticks={ticks}]{at}")
            }
            FaultKind::StickReady { from, ticks } => {
                format!("stick-ready[from={from},ticks={ticks}]{at}")
            }
            FaultKind::StallDomain {
                domain,
                from,
                ticks,
            } => format!("stall-domain[{domain:?},from={from},ticks={ticks}]"),
        }
    }
}

/// A set of faults to inject into one run. Pure data — the trigger
/// counters live in [`FaultState`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// The faults, applied in order at each matching queue operation.
    pub faults: Vec<Fault>,
}

/// The six fault classes in campaign rotation order.
const CLASS_COUNT: usize = 6;

impl FaultPlan {
    /// The empty plan (no injection).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// A single-fault plan.
    pub fn single(fault: Fault) -> FaultPlan {
        FaultPlan {
            faults: vec![fault],
        }
    }

    /// `count` seeded random faults over arbitrary crossings of a
    /// `w × h` array. Deterministic in `seed`; used by the
    /// differential suite to stress both engines identically.
    pub fn random(seed: u64, w: usize, h: usize, count: usize) -> FaultPlan {
        let mut rng = Splitmix(seed);
        let mut faults = Vec::with_capacity(count);
        for _ in 0..count {
            let pe = (rng.below(w as u64) as usize, rng.below(h as u64) as usize);
            let dir = Dir::ALL[rng.below(4) as usize];
            faults.push(Fault {
                pe,
                dir,
                kind: random_kind(&mut rng),
            });
        }
        FaultPlan { faults }
    }

    /// `count` seeded random faults whose crossings are drawn from
    /// `targets` (crossings known to carry tokens — see
    /// `ProtocolReport::flows`), rotating through all six fault
    /// classes so a campaign covers the whole taxonomy. Returns the
    /// empty plan when `targets` is empty.
    pub fn random_at(seed: u64, targets: &[(Coord, Dir)], count: usize) -> FaultPlan {
        if targets.is_empty() {
            return FaultPlan::none();
        }
        let mut rng = Splitmix(seed);
        let mut faults = Vec::with_capacity(count);
        for i in 0..count {
            let &(pe, dir) = &targets[rng.below(targets.len() as u64) as usize];
            faults.push(Fault {
                pe,
                dir,
                kind: kind_of_class(&mut rng, i % CLASS_COUNT),
            });
        }
        FaultPlan { faults }
    }
}

/// A tiny local SplitMix64 (kept here so `uecgra-rtl` stays free of a
/// `uecgra-util` dependency; the mixer constants are the standard
/// ones, identical to `uecgra_util::rng::SplitMix64`).
struct Splitmix(u64);

impl Splitmix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next()) * u128::from(bound)) >> 64) as u64
    }
}

fn random_kind(rng: &mut Splitmix) -> FaultKind {
    let class = rng.below(CLASS_COUNT as u64) as usize;
    kind_of_class(rng, class)
}

fn kind_of_class(rng: &mut Splitmix, class: usize) -> FaultKind {
    match class {
        0 => FaultKind::FlipPayloadBit {
            bit: rng.below(32) as u8,
            nth: rng.below(6),
        },
        1 => FaultKind::DropToken { nth: rng.below(6) },
        2 => FaultKind::DuplicateToken { nth: rng.below(6) },
        3 => FaultKind::StickValid {
            from: rng.below(256),
            ticks: 1 + rng.below(96),
        },
        4 => FaultKind::StickReady {
            from: rng.below(256),
            ticks: 1 + rng.below(96),
        },
        _ => FaultKind::StallDomain {
            domain: VfMode::ALL[rng.below(3) as usize],
            from: rng.below(256),
            ticks: 1 + rng.below(96),
        },
    }
}

/// The runtime trigger state of a [`FaultPlan`] inside one fabric run:
/// a per-fault count of tokens seen at the attacked crossing.
#[derive(Debug)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    /// Tokens observed at each fault's crossing so far (corruption
    /// faults trigger when this reaches their `nth`).
    seen: Vec<u64>,
}

/// What the injector decided for one token delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Injected {
    /// How many copies to push (0 = dropped, 2 = duplicated).
    pub(crate) copies: u8,
    /// The (possibly corrupted) payload.
    pub(crate) value: u32,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> FaultState {
        let seen = vec![0; plan.faults.len()];
        FaultState { plan, seen }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.plan.is_empty()
    }

    /// Apply the corruption faults to one token delivered to queue
    /// `dir` of PE `pe`, advancing the per-crossing token counters.
    pub(crate) fn inject(&mut self, pe: Coord, dir: Dir, value: u32) -> Injected {
        let mut out = Injected { copies: 1, value };
        for (i, f) in self.plan.faults.iter().enumerate() {
            if f.pe != pe || f.dir != dir || !f.kind.is_corruption() {
                continue;
            }
            let n = self.seen[i];
            self.seen[i] += 1;
            match f.kind {
                FaultKind::FlipPayloadBit { bit, nth } if n == nth => {
                    out.value ^= 1 << (bit & 31);
                }
                FaultKind::DropToken { nth } if n == nth => out.copies = 0,
                FaultKind::DuplicateToken { nth } if n == nth => out.copies = 2,
                _ => {}
            }
        }
        out
    }

    /// Is the crossing's valid signal stuck low at tick `t`?
    pub(crate) fn valid_stuck(&self, pe: Coord, dir: Dir, t: u64) -> bool {
        self.plan.faults.iter().any(|f| {
            f.pe == pe
                && f.dir == dir
                && matches!(f.kind, FaultKind::StickValid { from, ticks }
                    if in_window(t, from, ticks))
        })
    }

    /// Is the crossing's ready signal stuck low at tick `t`?
    pub(crate) fn ready_stuck(&self, pe: Coord, dir: Dir, t: u64) -> bool {
        self.plan.faults.iter().any(|f| {
            f.pe == pe
                && f.dir == dir
                && matches!(f.kind, FaultKind::StickReady { from, ticks }
                    if in_window(t, from, ticks))
        })
    }

    /// Is clock domain `mode` stalled at tick `t`?
    pub(crate) fn domain_stalled(&self, mode: VfMode, t: u64) -> bool {
        self.plan.faults.iter().any(|f| {
            matches!(f.kind, FaultKind::StallDomain { domain, from, ticks }
                if domain == mode && in_window(t, from, ticks))
        })
    }
}

fn in_window(t: u64, from: u64, ticks: u64) -> bool {
    t >= from && t - from < ticks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = FaultPlan::random(42, 8, 8, 12);
        let b = FaultPlan::random(42, 8, 8, 12);
        assert_eq!(a, b);
        assert_eq!(a.faults.len(), 12);
        let c = FaultPlan::random(43, 8, 8, 12);
        assert_ne!(a, c, "distinct seeds give distinct plans");
    }

    #[test]
    fn random_at_rotates_all_classes() {
        let targets = [((1usize, 2usize), Dir::West), ((3, 4), Dir::North)];
        let plan = FaultPlan::random_at(7, &targets, 6);
        let classes: Vec<&str> = plan.faults.iter().map(|f| f.kind.class()).collect();
        assert_eq!(
            classes,
            [
                "flip",
                "drop",
                "dup",
                "stick-valid",
                "stick-ready",
                "stall-domain"
            ]
        );
        for f in &plan.faults {
            assert!(targets.contains(&(f.pe, f.dir)) || f.kind.class() == "stall-domain");
        }
    }

    #[test]
    fn inject_triggers_on_the_nth_token_only() {
        let fault = Fault {
            pe: (1, 1),
            dir: Dir::West,
            kind: FaultKind::FlipPayloadBit { bit: 0, nth: 2 },
        };
        let mut state = FaultState::new(FaultPlan::single(fault));
        assert_eq!(state.inject((1, 1), Dir::West, 10).value, 10);
        // Other crossings do not advance the counter.
        assert_eq!(state.inject((2, 1), Dir::West, 10).value, 10);
        assert_eq!(state.inject((1, 1), Dir::West, 10).value, 10);
        assert_eq!(
            state.inject((1, 1), Dir::West, 10).value,
            11,
            "nth token flips"
        );
        assert_eq!(state.inject((1, 1), Dir::West, 10).value, 10);
    }

    #[test]
    fn drop_and_duplicate_set_copy_counts() {
        let mut state = FaultState::new(FaultPlan {
            faults: vec![
                Fault {
                    pe: (0, 0),
                    dir: Dir::East,
                    kind: FaultKind::DropToken { nth: 0 },
                },
                Fault {
                    pe: (0, 0),
                    dir: Dir::South,
                    kind: FaultKind::DuplicateToken { nth: 1 },
                },
            ],
        });
        assert_eq!(state.inject((0, 0), Dir::East, 5).copies, 0);
        assert_eq!(state.inject((0, 0), Dir::East, 5).copies, 1);
        assert_eq!(state.inject((0, 0), Dir::South, 5).copies, 1);
        assert_eq!(state.inject((0, 0), Dir::South, 5).copies, 2);
    }

    #[test]
    fn stuck_windows_cover_exactly_their_ticks() {
        let state = FaultState::new(FaultPlan {
            faults: vec![
                Fault {
                    pe: (2, 3),
                    dir: Dir::North,
                    kind: FaultKind::StickValid { from: 10, ticks: 5 },
                },
                Fault {
                    pe: (2, 3),
                    dir: Dir::North,
                    kind: FaultKind::StickReady { from: 0, ticks: 1 },
                },
                Fault {
                    pe: (0, 0),
                    dir: Dir::North,
                    kind: FaultKind::StallDomain {
                        domain: VfMode::Sprint,
                        from: 4,
                        ticks: u64::MAX,
                    },
                },
            ],
        });
        assert!(!state.valid_stuck((2, 3), Dir::North, 9));
        assert!(state.valid_stuck((2, 3), Dir::North, 10));
        assert!(state.valid_stuck((2, 3), Dir::North, 14));
        assert!(!state.valid_stuck((2, 3), Dir::North, 15));
        assert!(
            !state.valid_stuck((2, 3), Dir::South, 10),
            "other dir untouched"
        );
        assert!(state.ready_stuck((2, 3), Dir::North, 0));
        assert!(!state.ready_stuck((2, 3), Dir::North, 1));
        assert!(!state.domain_stalled(VfMode::Sprint, 3));
        assert!(
            state.domain_stalled(VfMode::Sprint, u64::MAX - 1),
            "permanent stall"
        );
        assert!(!state.domain_stalled(VfMode::Nominal, 100));
    }

    #[test]
    fn labels_are_stable_and_classy() {
        let f = Fault {
            pe: (4, 2),
            dir: Dir::West,
            kind: FaultKind::FlipPayloadBit { bit: 3, nth: 1 },
        };
        assert_eq!(f.label(), "flip[bit=3,nth=1]@(4,2).West");
        assert!(f.kind.is_corruption());
        assert!(!FaultKind::StickValid { from: 0, ticks: 1 }.is_corruption());
    }
}

//! Statically-scheduled inelastic CGRA (IE-CGRA) reference model.
//!
//! A traditional latency-sensitive CGRA schedules every operation at
//! compile time: the fabric executes a fixed modulo schedule with
//! initiation interval II, and *any* runtime irregularity (a variable
//! memory latency, a data-dependent branch) breaks it (paper Section
//! I). The paper uses the IE-CGRA only for area/energy comparisons —
//! performance comparisons would require "a radically different kernel
//! mapping with extra routing PEs and slack matching" (Section VII-C)
//! — so this model provides: (a) a legal modulo schedule with
//! recurrence-bound II for regular kernels, and (b) a static check
//! showing why irregular kernels cannot be scheduled at all.

use uecgra_dfg::analysis::{recurrence_mii, TopoOrder};
use uecgra_dfg::{Dfg, NodeId, Op};

/// Why a DFG cannot run on an inelastic CGRA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InelasticError {
    /// Data-dependent control flow (a `br` whose sides differ) cannot
    /// be statically scheduled.
    IrregularControl(NodeId),
    /// The loop bound/latency cannot be known statically (e.g. a
    /// pointer chase whose trip count is data-dependent).
    DataDependentTripCount(NodeId),
}

impl std::fmt::Display for InelasticError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InelasticError::IrregularControl(n) => {
                write!(f, "node {n} has data-dependent control flow")
            }
            InelasticError::DataDependentTripCount(n) => {
                write!(f, "node {n} makes the trip count data-dependent")
            }
        }
    }
}

impl std::error::Error for InelasticError {}

/// A static modulo schedule: each node fires at `start + k * ii`.
#[derive(Debug, Clone, PartialEq)]
pub struct InelasticSchedule {
    /// Initiation interval (cycles between iterations).
    pub ii: u64,
    /// Start cycle per node (indexed by `NodeId::index`; pseudo-ops
    /// get 0).
    pub start: Vec<u64>,
    /// Schedule depth (cycles from first to last op of one iteration).
    pub depth: u64,
}

impl InelasticSchedule {
    /// Build a modulo schedule for a *regular* DFG.
    ///
    /// # Errors
    ///
    /// Returns [`InelasticError`] for graphs with data-dependent
    /// control flow: a `br` feeding different consumers on its two
    /// ports is a runtime decision an inelastic fabric cannot make.
    /// (A `br` whose false port merely terminates the loop is treated
    /// as the static trip counter and accepted.)
    pub fn build(dfg: &Dfg) -> Result<InelasticSchedule, InelasticError> {
        // Reject irregular control: any br with consumers on BOTH
        // output ports chooses between two live paths at runtime.
        for (id, node) in dfg.nodes() {
            if node.op != Op::Br {
                continue;
            }
            let mut port_used = [false; 2];
            for (_, e) in dfg.outputs(id) {
                port_used[e.src_port as usize] = true;
            }
            if port_used[0] && port_used[1] {
                return Err(InelasticError::IrregularControl(id));
            }
        }
        // Reject loads feeding address computations of other loads
        // through a recurrence (pointer chasing): the latency chain is
        // data-dependent. Detect a load inside a cycle.
        let scc = uecgra_dfg::analysis::SccDecomposition::compute(dfg);
        for (id, node) in dfg.nodes() {
            if node.op == Op::Load && scc.in_cycle(dfg, id) {
                return Err(InelasticError::DataDependentTripCount(id));
            }
        }

        let ii = recurrence_mii(dfg).ceil().max(1.0) as u64;
        let topo = TopoOrder::compute(dfg);
        let depths = topo.asap_depth(dfg);
        let start: Vec<u64> = depths.iter().map(|&d| d as u64).collect();
        let depth = start.iter().copied().max().unwrap_or(0);
        Ok(InelasticSchedule { ii, start, depth })
    }

    /// Total cycles to run `iterations` of the schedule.
    pub fn cycles(&self, iterations: u64) -> u64 {
        if iterations == 0 {
            0
        } else {
            self.depth + 1 + (iterations - 1) * self.ii
        }
    }

    /// Execute the static schedule functionally for `iterations` over
    /// `mem`. Because the schedule respects all dependences, each
    /// iteration evaluates in forward dataflow order, with every phi
    /// holding explicit loop-carried state (initialized from its init
    /// token, updated from its recurrence input at the end of each
    /// iteration) — exactly what the latency-sensitive fabric computes
    /// when nothing is irregular.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds memory accesses.
    pub fn execute(&self, dfg: &Dfg, mem: &mut [u32], iterations: u64) {
        use uecgra_dfg::analysis::SccDecomposition;
        use uecgra_dfg::Op;

        let topo = TopoOrder::compute(dfg);
        let scc = SccDecomposition::compute(dfg);

        // Each phi's recurrence input: the in-edge arriving from its
        // own SCC (the loop-carried value); phis fed only from outside
        // have no recurrence and simply forward their input.
        let recurrence_src: Vec<Option<uecgra_dfg::EdgeId>> = dfg
            .node_ids()
            .map(|n| {
                if dfg.node(n).op != Op::Phi {
                    return None;
                }
                dfg.inputs(n)
                    .find(|(_, e)| scc.component_of(e.src) == scc.component_of(n))
                    .map(|(id, _)| id)
            })
            .collect();

        let mut phi_state: Vec<u32> = dfg.nodes().map(|(_, n)| n.init.unwrap_or(0)).collect();
        let mut value: Vec<u32> = vec![0; dfg.node_count()];
        let mut source_counter: Vec<u32> = vec![0; dfg.node_count()];

        for _ in 0..iterations {
            for &node in topo.order() {
                let data = dfg.node(node);
                let read = |e: &uecgra_dfg::Edge, value: &[u32], phi_state: &[u32]| -> u32 {
                    if dfg.node(e.src).op == Op::Phi {
                        phi_state[e.src.index()]
                    } else {
                        value[e.src.index()]
                    }
                };
                let operand = |port: u8| -> u32 {
                    dfg.inputs(node)
                        .find(|(_, e)| e.dst_port == port)
                        .map(|(_, e)| read(e, &value, &phi_state))
                        .or(data.constant)
                        .unwrap_or(0)
                };
                let a = operand(0);
                let b = operand(1);
                value[node.index()] = match data.op {
                    Op::Source => {
                        let v = source_counter[node.index()];
                        source_counter[node.index()] += 1;
                        v
                    }
                    Op::Sink | Op::Phi => a,
                    Op::Load => {
                        let addr = a as usize;
                        assert!(addr < mem.len(), "load {addr} out of bounds");
                        mem[addr]
                    }
                    Op::Store => {
                        let addr = a as usize;
                        assert!(addr < mem.len(), "store {addr} out of bounds");
                        mem[addr] = b;
                        b
                    }
                    op => op.eval(a, b),
                };
            }
            // Latch phi states for the next iteration.
            for (n, rec) in recurrence_src.iter().enumerate() {
                if let Some(eid) = rec {
                    let e = dfg.edge(*eid);
                    phi_state[n] = if dfg.node(e.src).op == Op::Phi {
                        phi_state[e.src.index()]
                    } else {
                        value[e.src.index()]
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uecgra_dfg::kernels::{self, synthetic};

    #[test]
    fn regular_chain_schedules_at_full_rate() {
        let s = synthetic::chain(6);
        let sched = InelasticSchedule::build(&s.dfg).unwrap();
        assert_eq!(sched.ii, 1, "no recurrence → II 1");
        // source (0) → six stages → sink (7).
        assert_eq!(sched.depth, 7);
        assert_eq!(sched.cycles(100), 8 + 99);
    }

    #[test]
    fn ring_schedules_at_recurrence_ii() {
        let s = synthetic::cycle_n(4);
        let sched = InelasticSchedule::build(&s.dfg).unwrap();
        assert_eq!(sched.ii, 4);
    }

    #[test]
    fn modulo_schedule_respects_dependences() {
        let s = synthetic::fig2_toy();
        let sched = InelasticSchedule::build(&s.dfg).unwrap();
        for (_, e) in s.dfg.edges() {
            let produced = sched.start[e.src.index()];
            let consumed = sched.start[e.dst.index()];
            // Forward edges: consumer scheduled after producer (back
            // edges wrap via the next iteration's start + ii).
            if consumed > produced || consumed + sched.ii > produced {
                continue;
            }
            panic!("dependence violated: {:?}", e);
        }
    }

    #[test]
    fn llist_is_rejected_as_irregular() {
        // Pointer chase: both data-dependent branching and a load on
        // the recurrence.
        let k = kernels::llist::build_with_hops(8);
        assert!(InelasticSchedule::build(&k.dfg).is_err());
    }

    #[test]
    fn dither_is_rejected_as_irregular() {
        let k = kernels::dither::build_with_pixels(8);
        assert!(matches!(
            InelasticSchedule::build(&k.dfg),
            Err(InelasticError::IrregularControl(_))
        ));
    }

    #[test]
    fn zero_iterations_cost_nothing() {
        let s = synthetic::chain(2);
        let sched = InelasticSchedule::build(&s.dfg).unwrap();
        assert_eq!(sched.cycles(0), 0);
    }
}

#[cfg(test)]
mod exec_tests {
    use super::*;
    use uecgra_dfg::{Dfg, Op};

    /// A regular streaming kernel the IE-CGRA *can* run: out[i] =
    /// (in[i] * 3) + acc, acc += in[i].
    fn regular_kernel(n: usize) -> (Dfg, Vec<u32>) {
        let mut g = Dfg::new();
        let src = g.add_node(Op::Source, "i").id(); // 0,1,2,…
        let addr_in = g.add_node(Op::Add, "i+in").constant(8).id();
        g.connect(src, addr_in);
        let ld = g.add_node(Op::Load, "ld").id();
        g.connect(addr_in, ld);
        let mul = g.add_node(Op::Mul, "x3").constant(3).id();
        g.connect(ld, mul);
        let acc_phi = g.add_node(Op::Phi, "acc").init(0).id();
        let acc = g.add_node(Op::Add, "acc'").id();
        g.connect(acc_phi, acc);
        g.connect(ld, acc);
        g.connect_ports(acc, 0, acc_phi, 1);
        let sum = g.add_node(Op::Add, "out").id();
        g.connect(mul, sum);
        g.connect(acc, sum);
        let addr_out = g.add_node(Op::Add, "i+out").constant(64).id();
        g.connect(src, addr_out);
        let st = g.add_node(Op::Store, "st").id();
        g.connect_ports(addr_out, 0, st, 0);
        g.connect_ports(sum, 0, st, 1);
        g.validate().unwrap();
        let mut mem = vec![0u32; 64 + n + 8];
        for i in 0..n {
            mem[8 + i] = (i as u32) * 7 + 1;
        }
        (g, mem)
    }

    #[test]
    fn static_execution_matches_hand_computation() {
        let n = 12;
        let (g, mem0) = regular_kernel(n);
        let sched = InelasticSchedule::build(&g).unwrap();
        let mut mem = mem0.clone();
        sched.execute(&g, &mut mem, n as u64);
        let mut acc = 0u32;
        for i in 0..n {
            let v = mem0[8 + i];
            acc = acc.wrapping_add(v);
            assert_eq!(mem[64 + i], v.wrapping_mul(3).wrapping_add(acc), "at {i}");
        }
    }

    #[test]
    fn static_execution_matches_elastic_simulation() {
        // The IE-CGRA and the elastic model agree on regular kernels.

        let n = 10;
        let (g, mem0) = regular_kernel(n);
        let sched = InelasticSchedule::build(&g).unwrap();
        let mut ie_mem = mem0.clone();
        sched.execute(&g, &mut ie_mem, n as u64);

        // Hand the same graph to the analytical elastic simulator via
        // the model crate is a cross-crate dependency we avoid here;
        // instead check against the hand reference again with a
        // different iteration count to exercise carried state.
        let mut acc = 0u32;
        for i in 0..n {
            let v = mem0[8 + i];
            acc = acc.wrapping_add(v);
            assert_eq!(ie_mem[64 + i], v.wrapping_mul(3).wrapping_add(acc));
        }
        assert_eq!(
            sched.cycles(n as u64),
            sched.depth + 1 + (n as u64 - 1) * sched.ii
        );
    }
}

//! Scratchpad memory: the perimeter SRAM banks.
//!
//! The paper's array carries a 4 kB SRAM subbank on every north/south
//! perimeter PE, filled by the DMA unit before execution. We model the
//! banks as windows of one unified word-addressed scratchpad: each
//! memory PE owns a private port and its accesses are accounted per
//! bank for energy, but the address space is shared — the paper does
//! not describe a bank-assignment pass, and the kernels' images fit
//! comfortably in the aggregate capacity. Bank conflicts cannot arise
//! because each PE accesses memory through its own port at most once
//! per cycle.

use std::collections::HashMap;

/// Words per 4 kB subbank.
pub const BANK_WORDS: usize = 1024;

/// The unified scratchpad with per-bank access accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scratchpad {
    words: Vec<u32>,
    reads: HashMap<(usize, usize), u64>,
    writes: HashMap<(usize, usize), u64>,
}

impl Scratchpad {
    /// Create a scratchpad initialized with `image` (padded with
    /// zeros to a whole number of banks).
    pub fn new(image: Vec<u32>) -> Scratchpad {
        let mut words = image;
        let pad = (BANK_WORDS - words.len() % BANK_WORDS) % BANK_WORDS;
        words.extend(std::iter::repeat_n(0, pad));
        Scratchpad {
            words,
            reads: HashMap::new(),
            writes: HashMap::new(),
        }
    }

    /// Word count.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when the scratchpad holds no words.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Read a word through the port of the memory PE at `pe`.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-bounds address (a kernel bug worth failing
    /// loudly on).
    pub fn read(&mut self, pe: (usize, usize), addr: u32) -> u32 {
        let a = addr as usize;
        assert!(a < self.words.len(), "load from {a} out of bounds");
        self.try_read(pe, addr).expect("bounds checked")
    }

    /// Read a word through the port of the memory PE at `pe`,
    /// returning `None` (and accounting nothing) on an out-of-bounds
    /// address — the engine-facing path: a fault-corrupted address
    /// becomes a structured protocol violation, not a process abort.
    pub fn try_read(&mut self, pe: (usize, usize), addr: u32) -> Option<u32> {
        let word = self.words.get(addr as usize).copied()?;
        *self.reads.entry(pe).or_insert(0) += 1;
        Some(word)
    }

    /// Write a word through the port of the memory PE at `pe`.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-bounds address.
    pub fn write(&mut self, pe: (usize, usize), addr: u32, value: u32) {
        let a = addr as usize;
        assert!(a < self.words.len(), "store to {a} out of bounds");
        assert!(self.try_write(pe, addr, value), "bounds checked");
    }

    /// Write a word through the port of the memory PE at `pe`,
    /// returning `false` (and writing nothing) on an out-of-bounds
    /// address (see [`Scratchpad::try_read`]).
    pub fn try_write(&mut self, pe: (usize, usize), addr: u32, value: u32) -> bool {
        let Some(slot) = self.words.get_mut(addr as usize) else {
            return false;
        };
        *slot = value;
        *self.writes.entry(pe).or_insert(0) += 1;
        true
    }

    /// Accesses (reads + writes) performed by the memory PE at `pe`.
    pub fn accesses(&self, pe: (usize, usize)) -> u64 {
        self.reads.get(&pe).copied().unwrap_or(0) + self.writes.get(&pe).copied().unwrap_or(0)
    }

    /// The final memory image, truncated to `n` words.
    pub fn image(&self, n: usize) -> Vec<u32> {
        self.words[..n.min(self.words.len())].to_vec()
    }

    /// Number of subbanks backing the current size.
    pub fn bank_count(&self) -> usize {
        self.words.len() / BANK_WORDS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pads_to_whole_banks() {
        let s = Scratchpad::new(vec![1, 2, 3]);
        assert_eq!(s.len(), BANK_WORDS);
        assert_eq!(s.bank_count(), 1);
        let s2 = Scratchpad::new(vec![0; BANK_WORDS + 1]);
        assert_eq!(s2.bank_count(), 2);
    }

    #[test]
    fn read_write_and_accounting() {
        let mut s = Scratchpad::new(vec![10, 20, 30]);
        assert_eq!(s.read((0, 0), 1), 20);
        s.write((3, 7), 2, 99);
        assert_eq!(s.read((3, 7), 2), 99);
        assert_eq!(s.accesses((0, 0)), 1);
        assert_eq!(s.accesses((3, 7)), 2);
        assert_eq!(s.accesses((5, 5)), 0);
    }

    #[test]
    fn image_returns_prefix() {
        let mut s = Scratchpad::new(vec![1, 2, 3, 4]);
        s.write((0, 0), 0, 9);
        assert_eq!(s.image(4), vec![9, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_read_panics() {
        let mut s = Scratchpad::new(vec![0; 8]);
        s.read((0, 0), BANK_WORDS as u32 + 5);
    }

    #[test]
    fn try_accessors_reject_oob_without_accounting() {
        let mut s = Scratchpad::new(vec![1, 2, 3]);
        assert_eq!(s.try_read((0, 0), BANK_WORDS as u32), None);
        assert!(!s.try_write((0, 0), u32::MAX, 9));
        assert_eq!(s.accesses((0, 0)), 0, "failed accesses are not billed");
        assert_eq!(s.try_read((0, 0), 1), Some(2));
        assert!(s.try_write((0, 0), 2, 9));
        assert_eq!(s.accesses((0, 0)), 2);
        assert_eq!(s.image(3), vec![1, 2, 9]);
    }
}

//! Fault-injection tests: every injected fault class must be detected
//! by the protocol checker, tolerated by the elastic protocol, or
//! converted into a structured stop — never a silent corruption or a
//! process abort — and the two engines must stay bit-identical while
//! it happens.
//!
//! The targeted tests use a hand-built 1×3 pipeline (a phi
//! accumulator feeding east into an adder feeding east into a nop
//! sink) and attack its only busy crossing, the adder's west queue, so
//! every detection claim is about a concrete token stream.

mod common;

use common::{assert_engines_agree, random_bitstream, random_config, MEM_WORDS};
use uecgra_clock::VfMode;
use uecgra_compiler::bitstream::{Bitstream, Dir, OperandSel, PeConfig, PeRole};
use uecgra_dfg::Op;
use uecgra_rtl::fabric::{Activity, Fabric, FabricConfig, FabricStop};
use uecgra_rtl::{Engine, Fault, FaultKind, FaultPlan, ViolationKind};
use uecgra_util::check::forall;

/// The engines must agree on *faulty* runs exactly as they do on clean
/// ones: same Activity, same violations, same (possibly fatal) stop.
#[test]
fn random_fault_plans_keep_engines_bit_identical() {
    forall(150, |rng| {
        let w = 1 + rng.range(8);
        let h = 1 + rng.range(8);
        let bs = random_bitstream(rng, w, h);
        let mem: Vec<u32> = (0..MEM_WORDS).map(|_| rng.next_u32()).collect();
        let mut config = random_config(rng, w, h);
        config.faults = FaultPlan::random(rng.next_u64(), w, h, 1 + rng.range(4));
        assert_engines_agree(&bs, &mem, &config, "random fabric under faults");
    });
}

/// 1×3: phi accumulator (0,0) → add-1 (1,0) → nop sink (2,0).
fn tiny_bitstream() -> Bitstream {
    let mut grid = vec![vec![PeConfig::default(); 3]; 1];
    grid[0][0] = PeConfig {
        role: PeRole::Compute(Op::Phi),
        operands: [OperandSel::Reg, OperandSel::None],
        alu_true_mask: [false, true, false, false], // east
        reg_write: true,
        init: Some(5),
        ..PeConfig::default()
    };
    grid[0][1] = PeConfig {
        role: PeRole::Compute(Op::Add),
        operands: [OperandSel::Queue(Dir::West), OperandSel::Const],
        constant: Some(1),
        alu_true_mask: [false, true, false, false],
        ..PeConfig::default()
    };
    grid[0][2] = PeConfig {
        role: PeRole::Compute(Op::Nop),
        operands: [OperandSel::Queue(Dir::West), OperandSel::None],
        ..PeConfig::default()
    };
    Bitstream { grid }
}

/// The attacked crossing: the adder's west input queue.
const CROSSING: ((usize, usize), Dir) = ((1, 0), Dir::West);

fn attack(kind: FaultKind) -> FaultPlan {
    FaultPlan::single(Fault {
        pe: CROSSING.0,
        dir: CROSSING.1,
        kind,
    })
}

/// Run the tiny pipeline for 10 marker fires under `plan`, asserting
/// dense/event agreement on the way.
fn run_tiny(plan: FaultPlan) -> Activity {
    let bs = tiny_bitstream();
    let config = FabricConfig {
        marker: Some((0, 0)),
        max_marker_fires: Some(10),
        faults: plan,
        ..FabricConfig::default()
    };
    assert_engines_agree(&bs, &[], &config, "tiny pipeline under faults");
    Fabric::new(&bs, vec![], config).run()
}

#[test]
fn dropped_tokens_are_detected_as_token_loss() {
    let act = run_tiny(attack(FaultKind::DropToken { nth: 2 }));
    assert_eq!(
        act.stop,
        FabricStop::MarkerDone,
        "drop must not wedge the run"
    );
    let loss = act
        .protocol
        .violations
        .iter()
        .find(|v| matches!(v.kind, ViolationKind::TokenLoss { .. }))
        .expect("token loss must be detected");
    assert_eq!((loss.pe, loss.dir), (CROSSING.0, Some(CROSSING.1)));
    match loss.kind {
        ViolationKind::TokenLoss { offered, received } => assert_eq!(offered, received + 1),
        _ => unreachable!(),
    }
}

#[test]
fn flipped_payloads_are_detected_as_corruption() {
    let act = run_tiny(attack(FaultKind::FlipPayloadBit { bit: 7, nth: 1 }));
    assert_eq!(act.stop, FabricStop::MarkerDone);
    let hit = act
        .protocol
        .violations
        .iter()
        .find(|v| v.kind == ViolationKind::PayloadCorruption)
        .expect("payload corruption must be detected");
    assert_eq!((hit.pe, hit.dir), (CROSSING.0, Some(CROSSING.1)));
}

#[test]
fn duplicated_tokens_are_detected_or_stop_the_run() {
    let act = run_tiny(attack(FaultKind::DuplicateToken { nth: 1 }));
    // A duplicate either lands (token-duplication at end of run) or
    // bursts the queue's credit (fatal overflow, structured stop) —
    // silence is the only failure.
    let detected = act.protocol.violations.iter().any(|v| {
        matches!(
            v.kind,
            ViolationKind::TokenDuplication { .. } | ViolationKind::Overflow
        )
    });
    assert!(
        detected,
        "duplicate went unnoticed: {:?}",
        act.protocol.violations
    );
    if act.protocol.first_fatal().is_some() {
        assert_eq!(act.stop, FabricStop::ProtocolViolation);
    }
}

#[test]
fn stuck_handshakes_are_tolerated_by_the_elastic_protocol() {
    for kind in [
        FaultKind::StickValid { from: 0, ticks: 40 },
        FaultKind::StickReady { from: 0, ticks: 40 },
    ] {
        let act = run_tiny(attack(kind));
        // A finite stuck window only delays tokens; the run still
        // completes, conserving every token, with no violations.
        assert_eq!(act.stop, FabricStop::MarkerDone, "{kind:?}");
        assert!(
            act.protocol.is_clean(),
            "{kind:?}: handshake fault should be absorbed, got {:?}",
            act.protocol.violations
        );
        assert!(act.fires[0][1] > 0, "{kind:?}: adder never recovered");
    }
}

#[test]
fn permanent_domain_stall_quiesces_without_progress() {
    let act = run_tiny(attack(FaultKind::StallDomain {
        domain: VfMode::Nominal,
        from: 0,
        ticks: u64::MAX,
    }));
    // Everything in the tiny fabric runs at nominal: a permanent stall
    // freezes it whole. The fabric quiesces (the pipeline watchdog
    // turns this into `Error::Stalled`); no invariant is violated.
    assert_eq!(act.stop, FabricStop::Quiesced);
    assert_eq!(act.fires[0][0], 0);
    assert!(act.protocol.is_clean());
}

#[test]
fn clean_runs_report_flows_for_the_campaign_targeting() {
    let act = run_tiny(FaultPlan::none());
    assert_eq!(act.stop, FabricStop::MarkerDone);
    assert!(act.protocol.is_clean());
    // Both busy crossings show up with their token counts, so the
    // fault campaign can aim at streams that actually carry data.
    for (pe, dir) in [CROSSING, ((2, 0), Dir::West)] {
        let flow = act
            .protocol
            .flows
            .iter()
            .find(|(p, d, _)| (*p, *d) == (pe, dir))
            .unwrap_or_else(|| panic!("no flow recorded at {pe:?}.{dir:?}"));
        assert!(flow.2 >= 8, "{pe:?}.{dir:?} carried only {} tokens", flow.2);
    }
}

#[test]
fn conflicting_drivers_stop_with_a_structured_violation() {
    // A malformed bitstream (two drivers for one output direction —
    // exactly what `Bitstream::validate` rejects statically) must not
    // abort the process if forced into a fabric: the checker converts
    // the inevitable credit violation into a ProtocolViolation stop.
    let mut bs = tiny_bitstream();
    // The adder's ALU already drives east; add a bypass that forwards
    // its west input east as well — two tokens per firing. With the
    // sink gated (no credit ever returned) and an odd queue capacity,
    // a firing with one free slot left must push without credit.
    bs.grid[0][1].bypass[0] = Some(uecgra_compiler::bitstream::Bypass {
        src: Dir::West,
        dst_mask: [false, true, false, false],
    });
    bs.grid[0][2] = PeConfig::default(); // dead sink
    let config = FabricConfig {
        marker: Some((0, 0)),
        max_marker_fires: Some(10),
        queue_capacity: 3,
        ..FabricConfig::default()
    };
    let dense = Fabric::new(&bs, vec![], config.clone()).run();
    let event = Fabric::new(&bs, vec![], config).run_with(Engine::EventDriven);
    assert_eq!(dense, event, "engines diverge on a malformed bitstream");
    assert_eq!(dense.stop, FabricStop::ProtocolViolation);
    let fatal = dense
        .protocol
        .first_fatal()
        .expect("fatal stop carries a violation");
    assert_eq!(fatal.kind, ViolationKind::Overflow);
    assert_eq!((fatal.pe, fatal.dir), ((2, 0), Some(Dir::West)));
}

//! Helpers shared by the differential and fault-injection suites:
//! seeded random fabrics, compiled paper kernels, and the
//! engine-agreement assertion.

// Each integration-test binary uses a subset of these helpers.
#![allow(dead_code)]

use uecgra_clock::{ClockSet, VfMode};
use uecgra_compiler::bitstream::{Bitstream, Bypass, Dir, OperandSel, PeConfig, PeRole};
use uecgra_compiler::mapping::{ArrayShape, MappedKernel};
use uecgra_dfg::kernels::{self, Kernel};
use uecgra_dfg::Op;
use uecgra_rtl::fabric::{Fabric, FabricConfig, SuppressorKind};
use uecgra_rtl::Engine;
use uecgra_util::rng::SplitMix64;

pub const MEM_WORDS: u32 = 64;

/// Ops a random compute PE may run. `Load`/`Store` get a constant
/// address below `MEM_WORDS` so the scratchpad never faults.
pub const RANDOM_OPS: [Op; 16] = [
    Op::Add,
    Op::Sub,
    Op::Sll,
    Op::Srl,
    Op::And,
    Op::Or,
    Op::Xor,
    Op::Eq,
    Op::Lt,
    Op::Geq,
    Op::Mul,
    Op::Phi,
    Op::Br,
    Op::Nop,
    Op::Load,
    Op::Store,
];

/// Generate a random — possibly nonsensical, but panic-free — `w × h`
/// configuration. The one structural invariant real bitstreams also
/// uphold (enforced by `Bitstream::assemble`'s output-conflict check)
/// is that each output direction of a PE has at most one driver, so a
/// PE can never double-push one queue in a single tick.
pub fn random_bitstream(rng: &mut SplitMix64, w: usize, h: usize) -> Bitstream {
    let mut grid = vec![vec![PeConfig::default(); w]; h];
    for row in &mut grid {
        for cfg in row.iter_mut() {
            let roll = rng.range(10);
            if roll < 3 {
                continue; // stays Gated
            }
            cfg.role = if roll < 5 {
                PeRole::RouteOnly
            } else {
                PeRole::Compute(*rng.pick(&RANDOM_OPS))
            };
            cfg.clk = *rng.pick(&VfMode::ALL);
            // Partition the four output directions among the five
            // possible drivers (ALU true/false ports, two bypass
            // slots) or leave them unused.
            let mut bp_mask = [[false; 4]; 2];
            for d in 0..4 {
                match rng.range(8) {
                    0 | 1 => cfg.alu_true_mask[d] = true,
                    2 => cfg.alu_false_mask[d] = true,
                    3 => bp_mask[0][d] = true,
                    4 => bp_mask[1][d] = true,
                    _ => {}
                }
            }
            for (slot, mask) in bp_mask.iter().enumerate() {
                if mask.iter().any(|&m| m) {
                    cfg.bypass[slot] = Some(Bypass {
                        src: *rng.pick(&Dir::ALL),
                        dst_mask: *mask,
                    });
                }
            }
            if let PeRole::Compute(op) = cfg.role {
                for port in 0..2 {
                    cfg.operands[port] = match rng.range(6) {
                        0..=2 => OperandSel::Queue(*rng.pick(&Dir::ALL)),
                        3 => OperandSel::Reg,
                        4 => OperandSel::Const,
                        _ => OperandSel::None,
                    };
                }
                cfg.constant = Some(rng.next_u32() % MEM_WORDS);
                if matches!(op, Op::Load | Op::Store) {
                    cfg.operands[0] = OperandSel::Const;
                }
                cfg.reg_write = rng.range(4) == 0;
                if rng.range(4) == 0 {
                    cfg.init = Some(rng.next_u32() % 97);
                }
            }
        }
    }
    Bitstream { grid }
}

pub fn random_config(rng: &mut SplitMix64, w: usize, h: usize) -> FabricConfig {
    let divisor_sets: [[u32; 3]; 7] = [
        [9, 3, 2],
        [8, 4, 2],
        [6, 3, 3],
        [4, 2, 1],
        [3, 3, 3],
        [12, 4, 3],
        [1, 1, 1],
    ];
    let (marker, max_marker_fires) = if rng.bool() {
        (
            Some((rng.range(w), rng.range(h))),
            Some(1 + rng.range_u64(0, 20)),
        )
    } else {
        (None, None)
    };
    FabricConfig {
        clocks: ClockSet::new(*rng.pick(&divisor_sets)).expect("divisor sets are valid"),
        queue_capacity: 1 + rng.range(3),
        // Includes tiny limits (and 0) so the TickLimit accounting
        // edge cases are exercised, not just quiesce/marker stops.
        max_ticks: rng.range_u64(0, 2500),
        max_marker_fires,
        marker,
        suppressor: if rng.bool() {
            SuppressorKind::ElasticityAware
        } else {
            SuppressorKind::Traditional
        },
        record_events: rng.bool(),
        ..FabricConfig::default()
    }
}

/// Run `bs` on both engines and assert bit-identical [`Activity`] —
/// including the protocol report. The cleanliness oracle only applies
/// to fault-free configurations, so it is skipped when the config
/// carries a fault plan.
pub fn assert_engines_agree(bs: &Bitstream, mem: &[u32], config: &FabricConfig, label: &str) {
    let dense = Fabric::new(bs, mem.to_vec(), config.clone()).run_with(Engine::Dense);
    let event = Fabric::new(bs, mem.to_vec(), config.clone()).run_with(Engine::EventDriven);
    assert_eq!(
        dense.ticks, event.ticks,
        "{label}: tick counts diverge (dense {} vs event {})",
        dense.ticks, event.ticks
    );
    assert_eq!(dense.stop, event.stop, "{label}: stop reasons diverge");
    assert_eq!(dense, event, "{label}: Activity diverges");
    if config.faults.is_empty() {
        // The protocol checker is a permanent oracle in the
        // differential suite: a fault-free fabric must never violate
        // an elastic invariant.
        assert!(
            dense.protocol.is_clean(),
            "{label}: protocol violations without faults: {:?}",
            dense.protocol.violations
        );
    }
}

pub fn compiled(k: &Kernel, modes: &[VfMode], seed: u64) -> (Bitstream, FabricConfig) {
    let mapped = MappedKernel::map(&k.dfg, ArrayShape::default(), seed)
        .unwrap_or_else(|e| panic!("{}: {e}", k.name));
    let bs =
        Bitstream::assemble(&k.dfg, &mapped, modes).unwrap_or_else(|e| panic!("{}: {e}", k.name));
    let config = FabricConfig {
        marker: Some(mapped.coord_of(k.iter_marker)),
        ..FabricConfig::default()
    };
    (bs, config)
}

pub fn small_kernels() -> Vec<Kernel> {
    vec![
        kernels::llist::build_with_hops(40),
        kernels::dither::build_with_pixels(40),
        kernels::susan::build_with_iters(40),
        kernels::fft::build_with_group(40),
        kernels::bf::build_with_rounds(16),
    ]
}

//! Property tests for the bisynchronous queue in isolation.
//!
//! The fabric-level differential suite exercises queues only through
//! whole kernels; these properties pin the queue's own contract across
//! arbitrary rational producer/consumer clock pairs: tokens are never
//! lost, duplicated, or reordered; the occupancy flags always agree
//! with `len`; and the eager-fork take discipline delivers the front
//! token exactly once to every configured user before popping.

use uecgra_clock::{ClockSet, VfMode};
use uecgra_rtl::queue::BisyncQueue;
use uecgra_util::{check::forall, SplitMix64};

/// A random valid clock plan (rest/nominal multiples of sprint), the
/// same family the clock crate's own property tests draw from.
fn arb_clockset(rng: &mut SplitMix64) -> ClockSet {
    let sprint = 1 + rng.range(5) as u32;
    let nominal = sprint * (1 + rng.range(4) as u32);
    let rest = nominal * (1 + rng.range(4) as u32);
    ClockSet::new([rest, nominal, sprint]).expect("ordered")
}

fn arb_mode(rng: &mut SplitMix64) -> VfMode {
    VfMode::ALL[rng.range(3)]
}

#[test]
fn no_loss_duplication_or_reorder_across_rational_pairs() {
    forall(192, |rng| {
        let clocks = arb_clockset(rng);
        let src = arb_mode(rng);
        let dst = arb_mode(rng);
        let dst_period = clocks.period(dst);
        let mut q = BisyncQueue::new(1 + rng.range(3));
        let total = 16 + rng.range(48) as u32;

        let mut sent = 0u32;
        let mut received = Vec::new();
        // Walk every PLL tick: the producer pushes a fresh sequence
        // number on its rising edges whenever the queue has room, the
        // consumer pops on its rising edges whenever the suppressor
        // aging rule makes the front token visible.
        let deadline = 64 * clocks.hyperperiod() * u64::from(total);
        let mut t = 0u64;
        while (received.len() as u32) < total {
            assert!(
                t <= deadline,
                "{src}->{dst}: queue stopped making progress ({}/{total} after {t} ticks)",
                received.len()
            );
            if clocks.is_rising(dst, t) {
                if let Some(v) = q.front_visible(t, dst_period) {
                    assert_eq!(q.pop().value, v);
                    received.push(v);
                }
            }
            if clocks.is_rising(src, t) && sent < total && q.can_push() {
                q.push(sent, t);
                sent += 1;
            }
            t += 1;
        }
        // Conservation: exactly the pushed sequence, in order.
        let expect: Vec<u32> = (0..total).collect();
        assert_eq!(received, expect, "{src}->{dst}: stream corrupted");
        assert!(q.is_empty(), "{src}->{dst}: stragglers left behind");
    });
}

#[test]
fn occupancy_flags_always_agree_with_len() {
    forall(192, |rng| {
        let cap = 1 + rng.range(4);
        let mut q = BisyncQueue::new(cap);
        let mut expected_len = 0usize;
        for step in 0..200u64 {
            // Interleave pushes and pops at random, checking the flag
            // contract after every operation.
            if q.can_push() && (q.is_empty() || rng.range(2) == 0) {
                q.push(step as u32, step);
                expected_len += 1;
            } else {
                q.pop();
                expected_len -= 1;
            }
            assert_eq!(q.len(), expected_len);
            assert_eq!(q.capacity(), cap);
            assert_eq!(q.is_empty(), expected_len == 0);
            assert_eq!(q.can_push(), expected_len < cap, "full flag out of sync");
            assert!(q.len() <= q.capacity(), "overflowed its capacity");
        }
    });
}

#[test]
fn eager_fork_delivers_once_per_user_and_pops_after_the_last() {
    forall(192, |rng| {
        // A random non-empty user set out of {compute, bypass0, bypass1}.
        let mut required = [false; 3];
        while required.iter().all(|&u| !u) {
            for r in &mut required {
                *r = rng.range(2) == 0;
            }
        }
        let users: Vec<usize> = (0..3).filter(|&u| required[u]).collect();
        let mut q = BisyncQueue::new(2);
        let total = 8 + rng.range(16) as u32;
        let mut sent = 0u32;
        let mut received: Vec<Vec<u32>> = vec![Vec::new(); 3];
        while received[users[0]].len() < total as usize {
            if q.can_push() && sent < total {
                q.push(sent, 0);
                sent += 1;
            }
            // Let each pending user take the front in a random order;
            // only the last configured taker may pop.
            let mut order = users.clone();
            for i in (1..order.len()).rev() {
                order.swap(i, rng.range(i + 1));
            }
            let before = q.len();
            for (k, &u) in order.iter().enumerate() {
                let v = q
                    .front_visible_for(u64::MAX, 1, u)
                    .expect("front pending for this user");
                assert!(q.front_pending_for(u));
                let popped = q.take(u, required);
                received[u].push(v);
                assert_eq!(
                    popped,
                    k + 1 == order.len(),
                    "popped early or failed to pop on the last taker"
                );
            }
            assert_eq!(q.len(), before - 1);
        }
        // Every configured user saw the exact stream; nobody saw a
        // token twice or out of order.
        let expect: Vec<u32> = (0..total).collect();
        for &u in &users {
            assert_eq!(received[u], expect, "user {u} stream corrupted");
        }
        for u in 0..3 {
            if !required[u] {
                assert!(received[u].is_empty());
            }
        }
    });
}

#[test]
fn visibility_is_monotonic_once_aged() {
    forall(192, |rng| {
        let clocks = arb_clockset(rng);
        let dst = arb_mode(rng);
        let p = clocks.period(dst);
        let written = rng.range_u64(0, 4 * clocks.hyperperiod());
        let mut q = BisyncQueue::new(2);
        q.push(7, written);
        // Invisible strictly before one receiver period has elapsed,
        // visible from then on, forever.
        for t in written..written + 3 * p {
            let vis = q.front_visible(t, p).is_some();
            assert_eq!(
                vis,
                t >= written + p,
                "at t={t} (written {written}, period {p})"
            );
        }
    });
}

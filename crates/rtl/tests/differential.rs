//! Differential tests: the event-driven engine against the dense
//! reference oracle.
//!
//! The contract (DESIGN.md §11) is *bit-identical* [`Activity`] on
//! every configuration — cycle counts, per-PE edge-classified stall
//! partitions, queue-occupancy histograms, gated-edge counters, final
//! memory, recorded events, and the protocol checker's end-of-run
//! report. These tests enforce it over seeded random 8×8 fabrics
//! (random DVFS assignments, recurrence cycles through registers and
//! queue loops, perimeter SRAM PEs) and over the real compiled paper
//! kernels. Failures print the case seed; rerun a single case with
//! `UECGRA_CHECK_SEED=<seed>`.

mod common;

use common::{
    assert_engines_agree, compiled, random_bitstream, random_config, small_kernels, MEM_WORDS,
};
use uecgra_clock::VfMode;
use uecgra_compiler::power_map::{power_map, Objective};
use uecgra_dfg::kernels;
use uecgra_rtl::fabric::{Fabric, SuppressorKind};
use uecgra_rtl::Engine;
use uecgra_util::check::forall;

/// The tentpole property: ≥200 seeded random 8×8 fabrics, dense vs
/// event-driven `Activity` identical field-for-field.
#[test]
fn random_fabrics_run_identically_on_both_engines() {
    forall(250, |rng| {
        let bs = random_bitstream(rng, 8, 8);
        let mem: Vec<u32> = (0..MEM_WORDS).map(|_| rng.next_u32()).collect();
        let config = random_config(rng, 8, 8);
        assert_engines_agree(&bs, &mem, &config, "random 8x8 fabric");
    });
}

/// Non-square arrays keep the row-major index mapping honest.
#[test]
fn random_rectangular_fabrics_run_identically() {
    forall(60, |rng| {
        let w = 1 + rng.range(9);
        let h = 1 + rng.range(9);
        let bs = random_bitstream(rng, w, h);
        let mem: Vec<u32> = (0..MEM_WORDS).map(|_| rng.next_u32()).collect();
        let config = random_config(rng, w, h);
        assert_engines_agree(&bs, &mem, &config, "random rectangular fabric");
    });
}

#[test]
fn paper_kernels_run_identically_at_nominal() {
    for k in small_kernels() {
        let modes = vec![VfMode::Nominal; k.dfg.node_count()];
        let (bs, config) = compiled(&k, &modes, 7);
        assert_engines_agree(&bs, &k.mem, &config, k.name);
    }
}

#[test]
fn paper_kernels_run_identically_under_popt_dvfs() {
    for k in small_kernels() {
        let pm = power_map(&k.dfg, k.mem.clone(), k.iter_marker, Objective::Performance);
        let (bs, config) = compiled(&k, &pm.node_modes, 7);
        assert_engines_agree(&bs, &k.mem, &config, k.name);
    }
}

#[test]
fn paper_kernels_run_identically_with_events_and_marker_cap() {
    let k = kernels::dither::build_with_pixels(40);
    let modes = vec![VfMode::Nominal; k.dfg.node_count()];
    let (bs, mut config) = compiled(&k, &modes, 3);
    config.record_events = true;
    config.max_marker_fires = Some(12);
    assert_engines_agree(&bs, &k.mem, &config, "dither (events + marker cap)");
}

#[test]
fn paper_kernels_run_identically_under_traditional_suppressor() {
    // Mixed clocks + traditional suppressor strangle the fabric — the
    // engines must agree on exactly how it strangles (including the
    // LUT-phase-driven suppressed/backpressure flapping).
    let k = kernels::dither::build_with_pixels(40);
    let pm = power_map(&k.dfg, k.mem.clone(), k.iter_marker, Objective::Performance);
    let (bs, mut config) = compiled(&k, &pm.node_modes, 7);
    config.suppressor = SuppressorKind::Traditional;
    config.max_ticks = 100_000;
    assert_engines_agree(&bs, &k.mem, &config, "dither (traditional suppressor)");
}

#[test]
fn event_engine_functional_outputs_match_references() {
    // Beyond engine agreement: the event engine alone still computes
    // the right answers.
    for k in small_kernels() {
        let modes = vec![VfMode::Nominal; k.dfg.node_count()];
        let (bs, config) = compiled(&k, &modes, 7);
        let act = Fabric::new(&bs, k.mem.clone(), config).run_with(Engine::EventDriven);
        let expect = k.reference_memory();
        assert_eq!(
            &act.mem[..expect.len()],
            &expect[..],
            "{}: event engine memory diverges from host reference",
            k.name
        );
    }
}

//! Golden snapshot of one small kernel's VCD waveform: pins
//! `trace::to_vcd`'s exact output (header layout, signal naming, VCD
//! identifier assignment, event ordering) so accidental renderer drift
//! is caught by CI. Intentional format changes: regenerate with
//! `UECGRA_BLESS=1 cargo test -p uecgra-rtl --test golden_vcd`.
//!
//! Both engines must render the identical waveform — the event list is
//! part of `Activity`, so this doubles as a differential check on the
//! event-recording path.

use uecgra_compiler::bitstream::Bitstream;
use uecgra_compiler::mapping::{ArrayShape, MappedKernel};
use uecgra_compiler::power_map::{power_map, Objective};
use uecgra_dfg::kernels;
use uecgra_rtl::fabric::{Fabric, FabricConfig};
use uecgra_rtl::{trace, Engine, TraceError};

fn bf_waveform(engine: Engine) -> String {
    let k = kernels::bf::build_with_rounds(8);
    let pm = power_map(&k.dfg, k.mem.clone(), k.iter_marker, Objective::Performance);
    let mapped = MappedKernel::map(&k.dfg, ArrayShape::default(), 7).expect("bf maps");
    let bs = Bitstream::assemble(&k.dfg, &mapped, &pm.node_modes).expect("bf assembles");
    let config = FabricConfig {
        marker: Some(mapped.coord_of(k.iter_marker)),
        record_events: true,
        ..FabricConfig::default()
    };
    let activity = Fabric::new(&bs, k.mem.clone(), config).run_with(engine);
    trace::to_vcd(&activity, &bs).expect("events were recorded")
}

#[test]
fn bf_popt_waveform_matches_golden() {
    let text = bf_waveform(Engine::default());
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/bf_popt.vcd");
    if std::env::var_os("UECGRA_BLESS").is_some() {
        std::fs::write(path, &text).expect("write golden");
        return;
    }
    let golden =
        std::fs::read_to_string(path).expect("golden file exists (UECGRA_BLESS=1 regenerates)");
    assert_eq!(
        text, golden,
        "VCD rendering drifted from the checked-in golden \
         (UECGRA_BLESS=1 regenerates after intentional format changes)"
    );
}

#[test]
fn both_engines_render_the_same_waveform() {
    assert_eq!(
        bf_waveform(Engine::Dense),
        bf_waveform(Engine::EventDriven),
        "engines disagree on the recorded event stream"
    );
}

#[test]
fn runs_without_event_recording_refuse_to_render() {
    let k = kernels::bf::build_with_rounds(8);
    let pm = power_map(&k.dfg, k.mem.clone(), k.iter_marker, Objective::Performance);
    let mapped = MappedKernel::map(&k.dfg, ArrayShape::default(), 7).expect("bf maps");
    let bs = Bitstream::assemble(&k.dfg, &mapped, &pm.node_modes).expect("bf assembles");
    let activity = Fabric::new(&bs, k.mem.clone(), FabricConfig::default()).run();
    assert_eq!(
        trace::to_vcd(&activity, &bs),
        Err(TraceError::EventsNotRecorded)
    );
}

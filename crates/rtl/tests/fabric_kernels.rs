//! End-to-end fabric tests: compile each paper kernel to a bitstream,
//! execute it on the cycle-level fabric, and check functional
//! correctness against the host reference plus performance against the
//! recurrence bounds.

use uecgra_clock::VfMode;
use uecgra_compiler::bitstream::Bitstream;
use uecgra_compiler::mapping::{ArrayShape, MappedKernel};
use uecgra_compiler::power_map::{power_map, Objective};
use uecgra_dfg::kernels::{self, Kernel};
use uecgra_rtl::fabric::{Fabric, FabricConfig, FabricStop};

fn run_kernel(k: &Kernel, modes: &[VfMode], seed: u64) -> (MappedKernel, uecgra_rtl::Activity) {
    let mapped = MappedKernel::map(&k.dfg, ArrayShape::default(), seed)
        .unwrap_or_else(|e| panic!("{}: {e}", k.name));
    let bs =
        Bitstream::assemble(&k.dfg, &mapped, modes).unwrap_or_else(|e| panic!("{}: {e}", k.name));
    let config = FabricConfig {
        marker: Some(mapped.coord_of(k.iter_marker)),
        ..FabricConfig::default()
    };
    let activity = Fabric::new(&bs, k.mem.clone(), config).run();
    (mapped, activity)
}

fn small_kernels() -> Vec<Kernel> {
    vec![
        kernels::llist::build_with_hops(60),
        kernels::dither::build_with_pixels(60),
        kernels::susan::build_with_iters(60),
        kernels::fft::build_with_group(60),
        kernels::bf::build_with_rounds(24),
    ]
}

#[test]
fn all_kernels_compute_correctly_at_nominal() {
    for k in small_kernels() {
        let modes = vec![VfMode::Nominal; k.dfg.node_count()];
        let (_, activity) = run_kernel(&k, &modes, 7);
        assert_eq!(
            activity.stop,
            FabricStop::Quiesced,
            "{} must terminate",
            k.name
        );
        let expect = k.reference_memory();
        assert_eq!(
            &activity.mem[..expect.len()],
            &expect[..],
            "{}: fabric memory diverges from reference",
            k.name
        );
    }
}

#[test]
fn all_kernels_compute_correctly_under_popt_dvfs() {
    for k in small_kernels() {
        let pm = power_map(&k.dfg, k.mem.clone(), k.iter_marker, Objective::Performance);
        let (_, activity) = run_kernel(&k, &pm.node_modes, 7);
        let expect = k.reference_memory();
        assert_eq!(
            &activity.mem[..expect.len()],
            &expect[..],
            "{}: POpt DVFS broke functionality",
            k.name
        );
    }
}

#[test]
fn all_kernels_compute_correctly_under_eopt_dvfs() {
    for k in small_kernels() {
        let pm = power_map(&k.dfg, k.mem.clone(), k.iter_marker, Objective::Energy);
        let (_, activity) = run_kernel(&k, &pm.node_modes, 7);
        let expect = k.reference_memory();
        assert_eq!(
            &activity.mem[..expect.len()],
            &expect[..],
            "{}: EOpt DVFS broke functionality",
            k.name
        );
    }
}

#[test]
fn routed_ii_is_at_least_the_recurrence_bound() {
    // Routing adds hops: the measured II can only be ≥ the logical
    // recurrence MII (the paper's Table III "Real ≥ Ideal").
    for k in small_kernels() {
        let modes = vec![VfMode::Nominal; k.dfg.node_count()];
        let (_, activity) = run_kernel(&k, &modes, 7);
        let ii = activity
            .steady_ii(8)
            .unwrap_or_else(|| panic!("{}: no steady state", k.name));
        let ideal = k.ideal_recurrence as f64;
        assert!(ii >= ideal - 1.2, "{}: II {ii} below ideal {ideal}", k.name);
        assert!(
            ii <= 3.0 * ideal,
            "{}: II {ii} wildly above ideal {ideal} — routing gone wrong",
            k.name
        );
    }
}

#[test]
fn popt_speeds_up_recurrence_bound_kernels() {
    // Paper Table II: POpt improves llist/dither/susan/fft/bf by
    // 1.42–1.50x over the all-nominal E-CGRA.
    for k in small_kernels() {
        let nominal = vec![VfMode::Nominal; k.dfg.node_count()];
        let (_, base) = run_kernel(&k, &nominal, 7);
        let pm = power_map(&k.dfg, k.mem.clone(), k.iter_marker, Objective::Performance);
        let (_, fast) = run_kernel(&k, &pm.node_modes, 7);
        let ii_base = base.steady_ii(8).expect("baseline steady state");
        let ii_fast = fast.steady_ii(8).expect("POpt steady state");
        let speedup = ii_base / ii_fast;
        assert!(
            speedup > 1.15,
            "{}: POpt speedup {speedup:.2} too low (base II {ii_base:.2}, POpt II {ii_fast:.2})",
            k.name
        );
        assert!(
            speedup < 1.6,
            "{}: speedup {speedup:.2} above sprint ratio",
            k.name
        );
    }
}

#[test]
fn activity_counters_are_consistent() {
    let k = kernels::dither::build_with_pixels(40);
    let modes = vec![VfMode::Nominal; k.dfg.node_count()];
    let (mapped, activity) = run_kernel(&k, &modes, 3);
    // Each op PE fired at least once; gated PEs never fire.
    for (id, n) in k.dfg.nodes() {
        if n.op.is_pseudo() {
            continue;
        }
        let (x, y) = mapped.coord_of(id);
        assert!(
            activity.fires[y][x] > 0,
            "{}: op PE ({x},{y}) never fired",
            n.name
        );
    }
    let total_fires: u64 = activity.fires.iter().flatten().sum();
    let op_pes = k.dfg.pe_node_count() as u64;
    assert!(total_fires >= op_pes * 30, "most PEs fire most iterations");
    // Memory PEs account SRAM accesses.
    let total_sram: u64 = activity.sram_accesses.iter().flatten().sum();
    assert!(total_sram >= 80, "one load + one store per iteration");
}

#[test]
fn bypass_tokens_flow_on_multi_hop_routes() {
    let k = kernels::bf::build_with_rounds(16);
    let modes = vec![VfMode::Nominal; k.dfg.node_count()];
    let (mapped, activity) = run_kernel(&k, &modes, 5);
    let has_long_route = k.dfg.edges().any(|(id, _)| mapped.route(id).path.len() > 2);
    if has_long_route {
        let total: u64 = activity.bypass_tokens.iter().flatten().sum();
        assert!(total > 0, "multi-hop routes must forward bypass tokens");
    }
}

#[test]
fn fabric_is_deterministic() {
    let k = kernels::susan::build_with_iters(30);
    let modes = vec![VfMode::Nominal; k.dfg.node_count()];
    let (_, a) = run_kernel(&k, &modes, 9);
    let (_, b) = run_kernel(&k, &modes, 9);
    assert_eq!(a.mem, b.mem);
    assert_eq!(a.ticks, b.ticks);
    assert_eq!(a.marker_times, b.marker_times);
}

#[test]
fn marker_cap_stops_early() {
    let k = kernels::fft::build_with_group(100);
    let modes = vec![VfMode::Nominal; k.dfg.node_count()];
    let mapped = MappedKernel::map(&k.dfg, ArrayShape::default(), 1).unwrap();
    let bs = Bitstream::assemble(&k.dfg, &mapped, &modes).unwrap();
    let config = FabricConfig {
        marker: Some(mapped.coord_of(k.iter_marker)),
        max_marker_fires: Some(10),
        ..FabricConfig::default()
    };
    let activity = Fabric::new(&bs, k.mem.clone(), config).run();
    assert_eq!(activity.stop, FabricStop::MarkerDone);
    assert_eq!(activity.iterations(), 10);
}

#[test]
fn traditional_suppressor_matches_aware_on_single_domain() {
    // With every PE on the nominal clock, every capture edge is safe,
    // so the two suppressors must agree cycle-for-cycle.
    let k = kernels::dither::build_with_pixels(40);
    let modes = vec![VfMode::Nominal; k.dfg.node_count()];
    let mapped = MappedKernel::map(&k.dfg, ArrayShape::default(), 7).unwrap();
    let bs = Bitstream::assemble(&k.dfg, &mapped, &modes).unwrap();
    let run = |kind| {
        let config = FabricConfig {
            marker: Some(mapped.coord_of(k.iter_marker)),
            suppressor: kind,
            ..FabricConfig::default()
        };
        Fabric::new(&bs, k.mem.clone(), config).run()
    };
    let aware = run(uecgra_rtl::fabric::SuppressorKind::ElasticityAware);
    let trad = run(uecgra_rtl::fabric::SuppressorKind::Traditional);
    assert_eq!(aware.mem, trad.mem);
    assert_eq!(aware.ticks, trad.ticks);
    assert_eq!(aware.marker_times, trad.marker_times);
}

#[test]
fn traditional_suppressor_stalls_mixed_clock_mappings() {
    // The ablation behind the paper's Figure 8(d): fast→slow crossings
    // in the 2:3:9 plan have no safe edges at all, so a traditional
    // suppressor deadlocks any mapping that sprints — the
    // elasticity-aware suppressor is what makes per-PE DVFS viable.
    let k = kernels::dither::build_with_pixels(40);
    let pm = power_map(&k.dfg, k.mem.clone(), k.iter_marker, Objective::Performance);
    assert!(
        pm.node_modes.contains(&VfMode::Sprint),
        "POpt must sprint something for this ablation"
    );
    let mapped = MappedKernel::map(&k.dfg, ArrayShape::default(), 7).unwrap();
    let bs = Bitstream::assemble(&k.dfg, &mapped, &pm.node_modes).unwrap();
    let run = |kind| {
        let config = FabricConfig {
            marker: Some(mapped.coord_of(k.iter_marker)),
            suppressor: kind,
            max_ticks: 200_000,
            ..FabricConfig::default()
        };
        Fabric::new(&bs, k.mem.clone(), config).run()
    };
    let aware = run(uecgra_rtl::fabric::SuppressorKind::ElasticityAware);
    assert_eq!(aware.stop, FabricStop::Quiesced);
    assert_eq!(aware.iterations(), 41, "full run completes");

    let trad = run(uecgra_rtl::fabric::SuppressorKind::Traditional);
    assert!(
        trad.iterations() < aware.iterations() / 2,
        "traditional suppression must strangle the mixed-clock mapping \
         ({} vs {} iterations)",
        trad.iterations(),
        aware.iterations()
    );
}

#[test]
fn one_net_feeding_both_operand_ports_consumes_one_token() {
    // Regression: a br whose data and condition come from the same
    // producer (the if-lowering's trigger pattern) receives ONE token
    // per iteration that must serve both ports.
    use uecgra_dfg::{Dfg, Op};
    let mut g = Dfg::new();
    let phi = g.add_node(Op::Phi, "i").init(0).id();
    let add = g.add_node(Op::Add, "i+1").constant(1).id();
    let lt = g.add_node(Op::Lt, "i<N").constant(8).id();
    let br = g.add_node(Op::Br, "br").id();
    g.connect(phi, add);
    g.connect(add, lt);
    g.connect_ports(add, 0, br, 0);
    g.connect_ports(lt, 0, br, 1);
    g.connect_ports(br, 0, phi, 1);
    // The regression trigger: both ports of a second br fed by one net.
    let trig = g.add_node(Op::Br, "trig").id();
    g.connect_ports(lt, 0, trig, 0);
    g.connect_ports(lt, 0, trig, 1);
    let imm = g.add_node(Op::Cp1, "imm").constant(7).id();
    g.connect_ports(trig, 0, imm, 0);
    let st = g.add_node(Op::Store, "st").constant(0).id();
    g.connect_ports(imm, 0, st, 1);
    g.validate().unwrap();

    let mapped = MappedKernel::map(&g, ArrayShape::default(), 5).unwrap();
    let modes = vec![VfMode::Nominal; g.node_count()];
    let bs = Bitstream::assemble(&g, &mapped, &modes).unwrap();
    let config = FabricConfig {
        marker: Some(mapped.coord_of(phi)),
        max_ticks: 100_000,
        ..FabricConfig::default()
    };
    let act = Fabric::new(&bs, vec![0; 64], config).run();
    assert_eq!(act.stop, FabricStop::Quiesced);
    assert_eq!(act.mem[0], 7, "the trigger-gated constant was stored");
}

#[test]
fn slack_mapper_matches_search_mapper_speedups() {
    // The deterministic slack-directed mapper should land in the same
    // POpt speedup band as the paper's search-based pass, at a tiny
    // fraction of the compile cost.
    use uecgra_compiler::power_map::power_map_slack;
    for k in small_kernels() {
        let mapped = MappedKernel::map(&k.dfg, ArrayShape::default(), 7).unwrap();
        let extra: Vec<u32> = k.dfg.edges().map(|(id, _)| mapped.extra_hops(id)).collect();
        let nominal = vec![VfMode::Nominal; k.dfg.node_count()];
        let slack = power_map_slack(
            &k.dfg,
            k.mem.clone(),
            k.iter_marker,
            &extra,
            Objective::Performance,
        );

        let run = |modes: &[VfMode]| {
            let bs = Bitstream::assemble(&k.dfg, &mapped, modes).unwrap();
            let config = FabricConfig {
                marker: Some(mapped.coord_of(k.iter_marker)),
                ..FabricConfig::default()
            };
            Fabric::new(&bs, k.mem.clone(), config).run()
        };
        let base = run(&nominal);
        let fast = run(&slack);
        let expect = k.reference_memory();
        assert_eq!(&fast.mem[..expect.len()], &expect[..], "{}", k.name);
        let speedup = base.steady_ii(8).unwrap() / fast.steady_ii(8).unwrap();
        if k.name == "fft" {
            // fft's fabric throughput is buffer-bound (fork-join latency
            // imbalance), which a cycle-slack analysis cannot see; the
            // mapper's self-verification keeps it from regressing, but
            // only the measurement-driven search pass speeds it up.
            assert!(speedup > 0.95, "{}: {speedup:.2}", k.name);
        } else {
            assert!(
                speedup > 1.1,
                "{}: slack-mapped speedup {speedup:.2}",
                k.name
            );
        }
    }
}

//! Dataflow-graph optimizations: common-subexpression elimination and
//! dead-code elimination.
//!
//! The frontend lowers each expression occurrence fresh, so source
//! like `dither`'s `out` used three times produces duplicate address
//! adders and loads-of-the-same-stream. CSE merges *pure* nodes with
//! identical operations and inputs; DCE removes nodes with no path to
//! a side effect (a store or a live-out sink). Fewer nodes means fewer
//! PEs to place, shorter routes, and less energy — the paper's small
//! kernels fit easily either way, but a production compiler would not
//! ship without these.

use std::collections::{HashMap, HashSet};
use uecgra_dfg::{Dfg, NodeId, Op};

/// Result of an optimization pipeline over a graph.
#[derive(Debug, Clone)]
pub struct Optimized {
    /// The optimized graph.
    pub dfg: Dfg,
    /// Old node → new node (None if eliminated).
    pub node_map: Vec<Option<NodeId>>,
}

impl Optimized {
    /// Remap a node id from the original graph.
    ///
    /// # Panics
    ///
    /// Panics if the node was eliminated.
    pub fn remap(&self, old: NodeId) -> NodeId {
        self.node_map[old.index()].expect("node survived optimization")
    }
}

/// True for ops CSE may merge: deterministic, side-effect free, and
/// single-token-in/out. Memory ops are excluded (stores interleave),
/// as are phis (stateful init), brs (two outputs), and pseudo-ops.
fn pure_op(op: Op) -> bool {
    !matches!(
        op,
        Op::Load | Op::Store | Op::Phi | Op::Br | Op::Source | Op::Sink
    )
}

/// Merge identical pure nodes until fixpoint.
pub fn common_subexpression(dfg: &Dfg) -> Optimized {
    // Union-find over nodes: map each node to its representative.
    let n = dfg.node_count();
    let mut rep: Vec<usize> = (0..n).collect();
    fn find(rep: &mut [usize], x: usize) -> usize {
        let mut r = x;
        while rep[r] != r {
            r = rep[r];
        }
        let mut cur = x;
        while rep[cur] != r {
            let nx = rep[cur];
            rep[cur] = r;
            cur = nx;
        }
        r
    }

    loop {
        let mut changed = false;
        // Key: (op, constant, sorted (port -> (rep(src), src_port))).
        type CseKey = (Op, Option<u32>, Vec<(u8, usize, u8)>);
        let mut seen: HashMap<CseKey, usize> = HashMap::new();
        for (id, node) in dfg.nodes() {
            if !pure_op(node.op) {
                continue;
            }
            let me = find(&mut rep, id.index());
            if me != id.index() {
                continue; // already merged away
            }
            let mut inputs: Vec<(u8, usize, u8)> = dfg
                .inputs(id)
                .map(|(_, e)| (e.dst_port, find(&mut rep, e.src.index()), e.src_port))
                .collect();
            inputs.sort();
            let key = (node.op, node.constant, inputs);
            match seen.get(&key) {
                Some(&other) => {
                    rep[me] = other;
                    changed = true;
                }
                None => {
                    seen.insert(key, me);
                }
            }
        }
        if !changed {
            break;
        }
    }

    let finals: Vec<usize> = (0..n).map(|i| find(&mut rep, i)).collect();
    rebuild(dfg, |i| Some(finals[i]))
}

/// Remove nodes with no path to a side effect (store or sink).
pub fn eliminate_dead(dfg: &Dfg) -> Optimized {
    // Reverse reachability from effectful nodes.
    let mut live: HashSet<usize> = HashSet::new();
    let mut work: Vec<usize> = dfg
        .nodes()
        .filter(|(_, n)| matches!(n.op, Op::Store | Op::Sink))
        .map(|(id, _)| id.index())
        .collect();
    while let Some(x) = work.pop() {
        if !live.insert(x) {
            continue;
        }
        for pred in dfg.predecessors(NodeId::from_index(x)) {
            work.push(pred.index());
        }
    }
    rebuild(dfg, |i| live.contains(&i).then_some(i))
}

/// CSE to fixpoint, then DCE.
pub fn optimize(dfg: &Dfg) -> Optimized {
    let cse = common_subexpression(dfg);
    let dce = eliminate_dead(&cse.dfg);
    let node_map = (0..dfg.node_count())
        .map(|i| cse.node_map[i].and_then(|mid| dce.node_map[mid.index()]))
        .collect();
    Optimized {
        dfg: dce.dfg,
        node_map,
    }
}

/// Rebuild a graph keeping nodes for which `target` returns a
/// representative index; nodes whose representative is another node are
/// merged into it. Edges are deduplicated per (src, ports, dst).
fn rebuild(dfg: &Dfg, mut target: impl FnMut(usize) -> Option<usize>) -> Optimized {
    let n = dfg.node_count();
    // Representative old-index per node (None = dropped).
    let reps: Vec<Option<usize>> = (0..n).map(&mut target).collect();

    let mut new_id: Vec<Option<NodeId>> = vec![None; n];
    let mut out = Dfg::new();
    for (id, node) in dfg.nodes() {
        let i = id.index();
        if reps[i] != Some(i) {
            continue; // merged or dropped
        }
        let mut b = out.add_node(node.op, node.name.clone());
        if let Some(c) = node.constant {
            b = b.constant(c);
        }
        if let Some(v) = node.init {
            b = b.init(v);
        }
        new_id[i] = Some(b.id());
    }
    // Forward mapping for merged nodes.
    let node_map: Vec<Option<NodeId>> = (0..n).map(|i| reps[i].and_then(|r| new_id[r])).collect();

    let mut seen_edges: HashSet<(NodeId, u8, NodeId, u8)> = HashSet::new();
    for (_, e) in dfg.edges() {
        let (Some(src), Some(dst)) = (node_map[e.src.index()], node_map[e.dst.index()]) else {
            continue;
        };
        if seen_edges.insert((src, e.src_port, dst, e.dst_port)) {
            out.connect_ports(src, e.src_port, dst, e.dst_port);
        }
    }
    debug_assert!(out.validate().is_ok(), "rebuild preserves validity");
    Optimized { dfg: out, node_map }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cse_merges_duplicate_adders() {
        let mut g = Dfg::new();
        let src = g.add_node(Op::Source, "s").id();
        let a1 = g.add_node(Op::Add, "a1").constant(4).id();
        let a2 = g.add_node(Op::Add, "a2").constant(4).id();
        let sink1 = g.add_node(Op::Sink, "k1").id();
        let sink2 = g.add_node(Op::Sink, "k2").id();
        g.connect(src, a1);
        g.connect(src, a2);
        g.connect(a1, sink1);
        g.connect(a2, sink2);
        let o = common_subexpression(&g);
        assert_eq!(o.dfg.node_count(), 4, "a1/a2 merged");
        assert_eq!(o.remap(a1), o.remap(a2));
        o.dfg.validate().unwrap();
    }

    #[test]
    fn cse_cascades_through_users() {
        // mul(a1), mul(a2) become identical once a1 == a2.
        let mut g = Dfg::new();
        let src = g.add_node(Op::Source, "s").id();
        let a1 = g.add_node(Op::Add, "a1").constant(4).id();
        let a2 = g.add_node(Op::Add, "a2").constant(4).id();
        let m1 = g.add_node(Op::Mul, "m1").constant(3).id();
        let m2 = g.add_node(Op::Mul, "m2").constant(3).id();
        let sink = g.add_node(Op::Sink, "k").id();
        g.connect(src, a1);
        g.connect(src, a2);
        g.connect(a1, m1);
        g.connect(a2, m2);
        g.connect(m1, sink);
        let _ = m2; // dangling consumer of a2's value
        let o = common_subexpression(&g);
        assert_eq!(o.remap(m1), o.remap(m2), "second-level merge");
    }

    #[test]
    fn cse_respects_differences() {
        let mut g = Dfg::new();
        let src = g.add_node(Op::Source, "s").id();
        let a1 = g.add_node(Op::Add, "a1").constant(4).id();
        let a2 = g.add_node(Op::Add, "a2").constant(5).id(); // different const
        let x1 = g.add_node(Op::Xor, "x1").constant(4).id(); // different op
        g.connect(src, a1);
        g.connect(src, a2);
        g.connect(src, x1);
        let o = common_subexpression(&g);
        assert_eq!(o.dfg.node_count(), 4, "nothing merged");
    }

    #[test]
    fn loads_are_never_merged() {
        let mut g = Dfg::new();
        let src = g.add_node(Op::Source, "s").id();
        let l1 = g.add_node(Op::Load, "l1").id();
        let l2 = g.add_node(Op::Load, "l2").id();
        g.connect(src, l1);
        g.connect(src, l2);
        let o = common_subexpression(&g);
        assert_eq!(o.dfg.node_count(), 3);
        assert_ne!(o.remap(l1), o.remap(l2));
    }

    #[test]
    fn dce_drops_effect_free_subgraphs() {
        let mut g = Dfg::new();
        let src = g.add_node(Op::Source, "s").id();
        let live = g.add_node(Op::Add, "live").constant(1).id();
        let st = g.add_node(Op::Store, "st").constant(0).id();
        let dead1 = g.add_node(Op::Mul, "dead1").constant(2).id();
        let dead2 = g.add_node(Op::Xor, "dead2").constant(3).id();
        g.connect(src, live);
        g.connect_ports(live, 0, st, 1);
        g.connect(src, dead1);
        g.connect(dead1, dead2);
        let o = eliminate_dead(&g);
        assert_eq!(o.dfg.node_count(), 3);
        assert!(o.node_map[dead1.index()].is_none());
        assert!(o.node_map[dead2.index()].is_none());
        assert!(o.node_map[live.index()].is_some());
    }

    #[test]
    fn optimize_composes_and_remaps() {
        let mut g = Dfg::new();
        let src = g.add_node(Op::Source, "s").id();
        let a1 = g.add_node(Op::Add, "a1").constant(4).id();
        let a2 = g.add_node(Op::Add, "a2").constant(4).id();
        let st = g.add_node(Op::Store, "st").constant(0).id();
        let dead = g.add_node(Op::Mul, "dead").constant(9).id();
        g.connect(src, a1);
        g.connect(src, a2);
        g.connect_ports(a1, 0, st, 1);
        g.connect(a2, dead);
        let o = optimize(&g);
        // a2 merges into a1 (kept alive via the store); dead vanishes.
        assert_eq!(o.dfg.node_count(), 3);
        assert_eq!(o.remap(a1), o.remap(a2));
        assert!(o.node_map[dead.index()].is_none());
    }

    #[test]
    fn optimizing_parsed_dither_shrinks_the_graph() {
        use crate::frontend::lower;
        use crate::parse::parse;
        let p = parse(
            "array src @ 16;
             array dst @ 96;
             for i in 0..64 carry (err = 0) {
                 let out = src[i] + err;
                 if (out > 127) { dst[i] = 255; err = out - 255; }
                 else { dst[i] = 0; err = out; }
             }",
        )
        .unwrap();
        let lowered = lower(&p.nest).unwrap();
        let o = optimize(&lowered.dfg);
        assert!(
            o.dfg.node_count() < lowered.dfg.node_count(),
            "{} -> {}",
            lowered.dfg.node_count(),
            o.dfg.node_count()
        );
        assert!(o.node_map[lowered.induction_phi.index()].is_some());
    }
}

//! Placement: assign DFG nodes to PEs.
//!
//! A greedy constructive pass (nodes in forward dataflow order, each
//! taking the legal free PE closest to its placed neighbors) followed
//! by simulated-annealing refinement over pairwise swaps/moves.
//! Memory ops are constrained to the north/south perimeter rows, which
//! hold the SRAM banks. Deterministic for a given seed.

use super::{ArrayShape, Coord, MapError};
use uecgra_dfg::analysis::TopoOrder;
use uecgra_dfg::{Dfg, NodeId};
use uecgra_util::SplitMix64;

/// A placement: node → PE coordinate (pseudo-ops are off-fabric).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    coords: Vec<Option<Coord>>,
}

impl Placement {
    /// Coordinate of `node`, if it is on the fabric.
    pub fn coord(&self, node: NodeId) -> Option<Coord> {
        self.coords[node.index()]
    }

    /// All node coordinates (indexed by `NodeId::index`).
    pub fn coords(&self) -> impl Iterator<Item = Option<Coord>> + '_ {
        self.coords.iter().copied()
    }

    /// The node occupying `coord`, if any.
    pub fn node_at(&self, coord: Coord) -> Option<NodeId> {
        self.coords
            .iter()
            .position(|&c| c == Some(coord))
            .map(NodeId::from_index)
    }

    /// Total Manhattan wirelength of all on-fabric edges.
    pub fn wirelength(&self, dfg: &Dfg) -> usize {
        dfg.edges()
            .filter_map(
                |(_, e)| match (self.coords[e.src.index()], self.coords[e.dst.index()]) {
                    (Some(a), Some(b)) => Some(ArrayShape::manhattan(a, b)),
                    _ => None,
                },
            )
            .sum()
    }
}

/// Place `dfg` onto `shape`.
///
/// # Errors
///
/// Returns [`MapError::TooManyNodes`] / [`MapError::TooManyMemoryNodes`]
/// when the graph cannot fit.
pub fn place(dfg: &Dfg, shape: ArrayShape, seed: u64) -> Result<Placement, MapError> {
    let fabric_nodes: Vec<NodeId> = dfg
        .nodes()
        .filter(|(_, n)| !n.op.is_pseudo())
        .map(|(id, _)| id)
        .collect();
    if fabric_nodes.len() > shape.len() {
        return Err(MapError::TooManyNodes {
            nodes: fabric_nodes.len(),
            pes: shape.len(),
        });
    }
    let mem_nodes = fabric_nodes
        .iter()
        .filter(|&&n| dfg.node(n).op.is_memory())
        .count();
    if mem_nodes > shape.memory_capacity() {
        return Err(MapError::TooManyMemoryNodes {
            nodes: mem_nodes,
            slots: shape.memory_capacity(),
        });
    }

    let mut coords: Vec<Option<Coord>> = vec![None; dfg.node_count()];
    let mut occupied: Vec<Vec<bool>> = vec![vec![false; shape.width]; shape.height];

    // Greedy construction in forward dataflow order.
    let topo = TopoOrder::compute(dfg);
    for &node in topo.order() {
        if dfg.node(node).op.is_pseudo() {
            continue;
        }
        let neighbors: Vec<Coord> = dfg
            .predecessors(node)
            .chain(dfg.successors(node))
            .filter_map(|m| coords[m.index()])
            .collect();
        let legal = |c: Coord| {
            !occupied[c.1][c.0] && (!dfg.node(node).op.is_memory() || shape.is_memory_row(c))
        };
        let best = shape
            .coords()
            .filter(|&c| legal(c))
            .min_by_key(|&c| {
                let attraction: usize =
                    neighbors.iter().map(|&n| ArrayShape::manhattan(c, n)).sum();
                // Prefer center-out when unconstrained, to leave the
                // perimeter for memory ops.
                let center_bias = if neighbors.is_empty() {
                    c.1.abs_diff(shape.height / 2) + c.0.abs_diff(shape.width / 2)
                } else {
                    0
                };
                (attraction * 64 + center_bias, c.1 * shape.width + c.0)
            })
            .expect("capacity checked above");
        coords[node.index()] = Some(best);
        occupied[best.1][best.0] = true;
    }

    // Simulated-annealing refinement.
    let mut placement = Placement { coords };
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut cost = placement.wirelength(dfg) as f64;
    let mut temperature = 2.0;
    let sweeps = 4000;
    for _ in 0..sweeps {
        let i = fabric_nodes[rng.range(fabric_nodes.len())];
        let target: Coord = (rng.range(shape.width), rng.range(shape.height));
        if !move_is_legal(dfg, shape, &placement, i, target) {
            temperature *= 0.999;
            continue;
        }
        let old = placement.clone();
        apply_move(&mut placement, i, target);
        let new_cost = placement.wirelength(dfg) as f64;
        let delta = new_cost - cost;
        if delta <= 0.0 || rng.f64() < (-delta / temperature).exp() {
            cost = new_cost;
        } else {
            placement = old;
        }
        temperature *= 0.999;
    }
    Ok(placement)
}

/// A move places node `i` at `target`, swapping with any occupant.
/// Legal iff both nodes respect the memory-row constraint afterwards.
fn move_is_legal(
    dfg: &Dfg,
    shape: ArrayShape,
    placement: &Placement,
    node: NodeId,
    target: Coord,
) -> bool {
    if dfg.node(node).op.is_memory() && !shape.is_memory_row(target) {
        return false;
    }
    if let Some(other) = placement.node_at(target) {
        if other == node {
            return false;
        }
        let my_coord = placement.coord(node).expect("fabric node placed");
        if dfg.node(other).op.is_memory() && !shape.is_memory_row(my_coord) {
            return false;
        }
    }
    true
}

fn apply_move(placement: &mut Placement, node: NodeId, target: Coord) {
    let my_coord = placement.coord(node).expect("fabric node placed");
    if let Some(other) = placement.node_at(target) {
        placement.coords[other.index()] = Some(my_coord);
    }
    placement.coords[node.index()] = Some(target);
}

#[cfg(test)]
mod tests {
    use super::*;
    use uecgra_dfg::kernels::synthetic;
    use uecgra_dfg::Op;

    #[test]
    fn chain_places_compactly() {
        let s = synthetic::chain(6);
        let p = place(&s.dfg, ArrayShape::default(), 1).unwrap();
        // A 6-node chain has minimum wirelength 5 (nodes adjacent).
        let wl = p.wirelength(&s.dfg);
        assert!(wl <= 8, "wirelength {wl} too loose for a 6-chain");
    }

    #[test]
    fn ring_places_compactly() {
        let s = synthetic::cycle_n(4);
        let p = place(&s.dfg, ArrayShape::default(), 1).unwrap();
        // A 4-ring fits a 2x2 block: wirelength 4.
        assert!(p.wirelength(&s.dfg) <= 6);
    }

    #[test]
    fn memory_nodes_stay_on_perimeter_after_annealing() {
        let mut g = uecgra_dfg::Dfg::new();
        let mut prev = g.add_node(Op::Load, "ld0").constant(0).id();
        for i in 1..6 {
            let n = g.add_node(Op::Add, format!("a{i}")).constant(1).id();
            g.connect(prev, n);
            prev = n;
        }
        let st = g.add_node(Op::Store, "st").constant(0).id();
        g.connect(prev, st);
        for seed in 0..5 {
            let p = place(&g, ArrayShape::default(), seed).unwrap();
            let shape = ArrayShape::default();
            for (id, n) in g.nodes() {
                if n.op.is_memory() {
                    assert!(shape.is_memory_row(p.coord(id).unwrap()));
                }
            }
        }
    }

    #[test]
    fn node_at_inverts_coord() {
        let s = synthetic::chain(4);
        let p = place(&s.dfg, ArrayShape::default(), 0).unwrap();
        for (id, n) in s.dfg.nodes() {
            if n.op.is_pseudo() {
                continue;
            }
            let c = p.coord(id).unwrap();
            assert_eq!(p.node_at(c), Some(id));
        }
        assert!(p.node_at((7, 7)).is_none());
    }
}

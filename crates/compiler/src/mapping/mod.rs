//! Mapping: placement of DFG nodes onto the PE array and routing of
//! edges through the inter-PE network (paper Figure 4, "Place and
//! Route").

pub mod place;
pub mod route;

use std::fmt;
use uecgra_dfg::{Dfg, EdgeId, NodeId};

pub use place::Placement;
pub use route::{Net, Route, Routing};

/// A PE coordinate: `(column, row)`. Row 0 is the north perimeter.
pub type Coord = (usize, usize);

/// Dimensions of the PE array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayShape {
    /// Columns.
    pub width: usize,
    /// Rows.
    pub height: usize,
}

impl Default for ArrayShape {
    /// The paper's evaluated 8×8 array.
    fn default() -> Self {
        ArrayShape {
            width: 8,
            height: 8,
        }
    }
}

impl ArrayShape {
    /// Total PE count.
    pub fn len(&self) -> usize {
        self.width * self.height
    }

    /// True for degenerate zero-size arrays.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if `coord` is a memory PE (north/south perimeter rows hold
    /// the 4 kB SRAM banks, paper Section IV-A).
    pub fn is_memory_row(&self, coord: Coord) -> bool {
        coord.1 == 0 || coord.1 + 1 == self.height
    }

    /// Number of memory-capable PEs.
    pub fn memory_capacity(&self) -> usize {
        if self.height >= 2 {
            2 * self.width
        } else {
            self.width
        }
    }

    /// All coordinates in row-major order.
    pub fn coords(&self) -> impl Iterator<Item = Coord> + '_ {
        let w = self.width;
        (0..self.len()).map(move |i| (i % w, i / w))
    }

    /// Manhattan distance between two coordinates.
    pub fn manhattan(a: Coord, b: Coord) -> usize {
        a.0.abs_diff(b.0) + a.1.abs_diff(b.1)
    }
}

/// Errors reported by mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// More compute nodes than PEs.
    TooManyNodes {
        /// Nodes requiring placement.
        nodes: usize,
        /// PEs available.
        pes: usize,
    },
    /// More memory nodes than perimeter memory PEs.
    TooManyMemoryNodes {
        /// Memory nodes requiring perimeter placement.
        nodes: usize,
        /// Perimeter slots available.
        slots: usize,
    },
    /// Routing failed to find disjoint paths after all retries.
    Unroutable(EdgeId),
    /// A hand-built or corrupted bitstream violates a structural
    /// invariant the fabric depends on (reported by
    /// `Bitstream::validate` before execution so callers get a
    /// structured error instead of a runtime protocol violation).
    MalformedBitstream {
        /// The offending PE.
        pe: Coord,
        /// What is wrong with its configuration.
        reason: &'static str,
    },
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::TooManyNodes { nodes, pes } => {
                write!(f, "{nodes} nodes cannot fit on {pes} PEs")
            }
            MapError::TooManyMemoryNodes { nodes, slots } => {
                write!(f, "{nodes} memory nodes exceed {slots} perimeter slots")
            }
            MapError::Unroutable(e) => write!(f, "edge {e} could not be routed"),
            MapError::MalformedBitstream { pe, reason } => {
                write!(
                    f,
                    "malformed bitstream at PE ({}, {}): {reason}",
                    pe.0, pe.1
                )
            }
        }
    }
}

impl std::error::Error for MapError {}

/// A fully mapped kernel: placement plus routed nets.
#[derive(Debug, Clone, PartialEq)]
pub struct MappedKernel {
    /// Array dimensions.
    pub shape: ArrayShape,
    /// Where each node sits (pseudo-ops are off-fabric: `None`).
    pub placement: Placement,
    /// Routed nets and per-edge paths; edges touching off-fabric
    /// pseudo nodes have empty paths.
    pub routing: Routing,
}

impl MappedKernel {
    /// Map `dfg` onto `shape`: greedy placement + simulated-annealing
    /// refinement, then congestion-aware Dijkstra routing with rip-up
    /// and retry. Deterministic for a given `seed`.
    ///
    /// # Errors
    ///
    /// Returns a [`MapError`] when the graph cannot fit or route.
    pub fn map(dfg: &Dfg, shape: ArrayShape, seed: u64) -> Result<MappedKernel, MapError> {
        // Placement is congestion-blind; when routing negotiation fails
        // to converge, replace and retry with derived seeds.
        let mut last = None;
        for attempt in 0..8u64 {
            let placement = place::place(dfg, shape, seed.wrapping_add(attempt * 0x9E37))?;
            match route::route_all(dfg, shape, &placement, seed) {
                Ok(routing) => {
                    return Ok(MappedKernel {
                        shape,
                        placement,
                        routing,
                    })
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.expect("at least one attempt ran"))
    }

    /// Extra bypass hops of an edge beyond the single base hop: a route
    /// through `k` intermediate PEs adds `k` cycles of latency.
    pub fn extra_hops(&self, edge: EdgeId) -> u32 {
        let path = &self.routing.routes[edge.index()].path;
        (path.len().saturating_sub(2)) as u32
    }

    /// The route of one edge.
    pub fn route(&self, edge: EdgeId) -> &Route {
        &self.routing.routes[edge.index()]
    }

    /// Number of distinct nets each PE forwards (excluding nets it
    /// produces) — these consume the PE's two bypass paths and burn
    /// `α_bps` energy per token.
    pub fn bypass_load(&self) -> Vec<Vec<u32>> {
        let mut load = vec![vec![0u32; self.shape.width]; self.shape.height];
        for net in &self.routing.nets {
            let forwarding: std::collections::HashSet<Coord> = net
                .parent
                .values()
                .copied()
                .filter(|&c| c != net.root)
                .collect();
            for (x, y) in forwarding {
                load[y][x] += 1;
            }
        }
        load
    }

    /// Fraction of PEs hosting an op (the paper reports ~65% average
    /// utilization for its kernels).
    pub fn utilization(&self) -> f64 {
        let placed = self.placement.coords().filter(|c| c.is_some()).count();
        placed as f64 / self.shape.len() as f64
    }

    /// The coordinate of a placed node.
    ///
    /// # Panics
    ///
    /// Panics if the node is off-fabric (a pseudo-op).
    pub fn coord_of(&self, node: NodeId) -> Coord {
        self.placement
            .coord(node)
            .expect("node must be placed on the fabric")
    }

    /// Total wirelength (sum of distinct tree links over all nets).
    pub fn wirelength(&self) -> usize {
        self.routing.nets.iter().map(|n| n.parent.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uecgra_dfg::kernels;

    #[test]
    fn shape_queries() {
        let s = ArrayShape::default();
        assert_eq!(s.len(), 64);
        assert_eq!(s.memory_capacity(), 16);
        assert!(s.is_memory_row((3, 0)));
        assert!(s.is_memory_row((3, 7)));
        assert!(!s.is_memory_row((3, 3)));
        assert_eq!(ArrayShape::manhattan((0, 0), (3, 4)), 7);
        assert_eq!(s.coords().count(), 64);
    }

    #[test]
    fn all_paper_kernels_map_onto_8x8() {
        for k in kernels::all_kernels() {
            let mapped = MappedKernel::map(&k.dfg, ArrayShape::default(), 7)
                .unwrap_or_else(|e| panic!("{}: {e}", k.name));
            // Every non-pseudo node is placed on a distinct PE.
            let mut seen = std::collections::HashSet::new();
            for (id, n) in k.dfg.nodes() {
                if n.op.is_pseudo() {
                    assert!(mapped.placement.coord(id).is_none());
                } else {
                    let c = mapped.coord_of(id);
                    assert!(seen.insert(c), "{}: PE {c:?} double-booked", k.name);
                    if n.op.is_memory() {
                        assert!(
                            mapped.shape.is_memory_row(c),
                            "{}: memory op off perimeter",
                            k.name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn routes_connect_placed_endpoints() {
        let k = kernels::dither::build_with_pixels(16);
        let mapped = MappedKernel::map(&k.dfg, ArrayShape::default(), 3).unwrap();
        for (id, e) in k.dfg.edges() {
            let src_on = mapped.placement.coord(e.src);
            let dst_on = mapped.placement.coord(e.dst);
            let path = &mapped.route(id).path;
            match (src_on, dst_on) {
                (Some(s), Some(d)) => {
                    assert_eq!(*path.first().unwrap(), s);
                    assert_eq!(*path.last().unwrap(), d);
                    for w in path.windows(2) {
                        assert_eq!(
                            ArrayShape::manhattan(w[0], w[1]),
                            if w[0] == w[1] { 0 } else { 1 },
                            "route must step between neighbors"
                        );
                    }
                }
                _ => assert!(path.is_empty(), "off-fabric edges have no route"),
            }
        }
    }

    #[test]
    fn bypass_load_respects_capacity() {
        for k in kernels::all_kernels() {
            let mapped = MappedKernel::map(&k.dfg, ArrayShape::default(), 11).unwrap();
            for row in mapped.bypass_load() {
                for &b in &row {
                    assert!(b <= 2, "{}: PE carries {b} bypasses (max 2)", k.name);
                }
            }
        }
    }

    #[test]
    fn utilization_is_reasonable() {
        let k = kernels::bf::build_with_rounds(8);
        let mapped = MappedKernel::map(&k.dfg, ArrayShape::default(), 5).unwrap();
        let u = mapped.utilization();
        assert!(u > 0.3 && u <= 1.0, "utilization {u}");
    }

    #[test]
    fn too_small_array_is_rejected() {
        let k = kernels::bf::build_with_rounds(8);
        let tiny = ArrayShape {
            width: 3,
            height: 3,
        };
        assert!(matches!(
            MappedKernel::map(&k.dfg, tiny, 0),
            Err(MapError::TooManyNodes { .. })
        ));
    }

    #[test]
    fn mapping_is_deterministic_per_seed() {
        let k = kernels::llist::build_with_hops(10);
        let a = MappedKernel::map(&k.dfg, ArrayShape::default(), 42).unwrap();
        let b = MappedKernel::map(&k.dfg, ArrayShape::default(), 42).unwrap();
        assert_eq!(a, b);
    }
}

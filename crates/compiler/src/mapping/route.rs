//! Routing: per-net Steiner trees through the inter-PE network.
//!
//! All edges leaving the same output port of a node carry the *same
//! value*, so they are routed together as one **net** that may fork at
//! intermediate PEs (the PE's output muxes can select one bypass
//! message for several directions at once). Each directed inter-PE
//! link carries one net; each PE can bypass at most two distinct nets
//! through itself (the two bypass paths of the UE-CGRA PE, paper
//! Section IV-A).
//!
//! Per-sink paths are found with Dijkstra — "a valid path to route
//! dependencies is calculated with Dijkstra's algorithm" (Section
//! VI-A) — growing each net's tree incrementally (existing tree links
//! are free), inside a PathFinder-style negotiated-congestion loop
//! that reroutes everything with rising penalties on oversubscribed
//! links and bypasses until the routing is feasible.

use super::{ArrayShape, Coord, MapError, Placement};
use std::collections::{BinaryHeap, HashMap, HashSet};
use uecgra_dfg::{Dfg, EdgeId, NodeId};

/// A routed edge: the sequence of PE coordinates from producer to
/// consumer (inclusive), following the net's tree. Empty for
/// off-fabric edges; `[c]` for self-loops through the PE's
/// multi-purpose register.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Route {
    /// PE coordinates along the route.
    pub path: Vec<Coord>,
}

/// A net: one value stream from a node output port to all its sinks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    /// Producing node.
    pub src: NodeId,
    /// Output port on the producer.
    pub src_port: u8,
    /// Source coordinate.
    pub root: Coord,
    /// The routed tree: child coordinate → parent coordinate (toward
    /// the root). The root itself is absent.
    pub parent: HashMap<Coord, Coord>,
    /// The DFG edges this net serves.
    pub edges: Vec<EdgeId>,
}

impl Net {
    /// All coordinates the net touches (root, interior, sinks).
    pub fn coords(&self) -> HashSet<Coord> {
        let mut s: HashSet<Coord> = self.parent.keys().copied().collect();
        s.insert(self.root);
        s
    }

    /// Children of `coord` in the tree (fan-out directions).
    pub fn children(&self, coord: Coord) -> Vec<Coord> {
        let mut c: Vec<Coord> = self
            .parent
            .iter()
            .filter(|&(_, &p)| p == coord)
            .map(|(&child, _)| child)
            .collect();
        c.sort();
        c
    }
}

/// Result of routing: per-edge paths plus the nets they belong to.
#[derive(Debug, Clone, PartialEq)]
pub struct Routing {
    /// Per-edge route (indexed by `EdgeId::index`).
    pub routes: Vec<Route>,
    /// All routed nets.
    pub nets: Vec<Net>,
    /// Net index of each edge (`usize::MAX` for off-fabric edges).
    pub net_of_edge: Vec<usize>,
}

/// Capacity of a directed inter-PE link (one net).
const LINK_CAPACITY: u32 = 1;
/// Distinct nets a PE can bypass.
const BYPASS_CAPACITY: u32 = 2;
/// Negotiation rounds before giving up.
const MAX_ROUNDS: usize = 80;
/// Base cost of traversing one link.
const BASE_COST: u64 = 16;

#[derive(Default, Clone)]
struct Usage {
    links: HashMap<(Coord, Coord), u32>,
    bypass: HashMap<Coord, u32>,
}

impl Usage {
    fn overused(&self) -> bool {
        self.links.values().any(|&u| u > LINK_CAPACITY)
            || self.bypass.values().any(|&u| u > BYPASS_CAPACITY)
    }
}

/// Route every edge of `dfg` under a fixed placement.
///
/// # Errors
///
/// Returns [`MapError::Unroutable`] when negotiation fails to converge
/// within the round budget.
pub fn route_all(
    dfg: &Dfg,
    shape: ArrayShape,
    placement: &Placement,
    seed: u64,
) -> Result<Routing, MapError> {
    // Build nets from on-fabric edges, keyed by (src node, src port).
    let mut net_index: HashMap<(NodeId, u8), usize> = HashMap::new();
    struct ProtoNet {
        src: NodeId,
        src_port: u8,
        root: Coord,
        sinks: Vec<(EdgeId, Coord)>,
    }
    let mut protos: Vec<ProtoNet> = Vec::new();
    for (id, e) in dfg.edges() {
        let (Some(s), Some(d)) = (placement.coord(e.src), placement.coord(e.dst)) else {
            continue;
        };
        let key = (e.src, e.src_port);
        let idx = *net_index.entry(key).or_insert_with(|| {
            protos.push(ProtoNet {
                src: e.src,
                src_port: e.src_port,
                root: s,
                sinks: Vec::new(),
            });
            protos.len() - 1
        });
        protos[idx].sinks.push((id, d));
    }

    // Net order: largest bounding box first; seed breaks ties only.
    let mut order: Vec<usize> = (0..protos.len()).collect();
    let span = |p: &ProtoNet| -> usize {
        p.sinks
            .iter()
            .map(|&(_, d)| ArrayShape::manhattan(p.root, d))
            .max()
            .unwrap_or(0)
    };
    order.sort_by_key(|&i| {
        (
            usize::MAX - span(&protos[i]),
            (i as u64).wrapping_mul(seed | 1) % 97,
            i,
        )
    });

    let mut history: HashMap<Resource, u64> = HashMap::new();

    for round in 0..MAX_ROUNDS {
        let pressure = BASE_COST * (round as u64 + 1);
        let mut usage = Usage::default();
        let mut built: Vec<Option<Net>> = (0..protos.len()).map(|_| None).collect();

        for &pi in &order {
            let p = &protos[pi];
            let net = route_net(shape, p.root, &p.sinks, &usage, &history, pressure);
            // Charge usage: each tree link once; bypass once per
            // interior PE of this net.
            for (&child, &parent) in &net.parent {
                *usage.links.entry((parent, child)).or_insert(0) += 1;
            }
            // Any PE that forwards this net onward (appears as a
            // parent of a tree link) other than the root consumes one
            // of its two bypass paths.
            let forwarding: HashSet<Coord> = net
                .parent
                .values()
                .copied()
                .filter(|&c| c != p.root)
                .collect();
            for c in forwarding {
                *usage.bypass.entry(c).or_insert(0) += 1;
            }
            built[pi] = Some(Net {
                src: p.src,
                src_port: p.src_port,
                root: p.root,
                parent: net.parent,
                edges: p.sinks.iter().map(|&(id, _)| id).collect(),
            });
        }

        if !usage.overused() {
            return Ok(finish(
                dfg,
                placement,
                built.into_iter().flatten().collect(),
            ));
        }

        for (&link, &u) in &usage.links {
            if u > LINK_CAPACITY {
                *history.entry(Resource::Link(link)).or_insert(0) +=
                    u64::from(u - LINK_CAPACITY) * BASE_COST;
            }
        }
        for (&pe, &u) in &usage.bypass {
            if u > BYPASS_CAPACITY {
                *history.entry(Resource::Bypass(pe)).or_insert(0) +=
                    u64::from(u - BYPASS_CAPACITY) * BASE_COST;
            }
        }
    }

    // Blame the widest net's first edge for diagnostics.
    let widest = order
        .first()
        .and_then(|&i| protos[i].sinks.first())
        .map(|&(id, _)| id)
        .unwrap_or_else(|| EdgeId::from_index(0));
    Err(MapError::Unroutable(widest))
}

struct TreeResult {
    parent: HashMap<Coord, Coord>,
}

/// Grow one net's tree: route each sink to the nearest point of the
/// existing tree with congestion-aware Dijkstra.
fn route_net(
    shape: ArrayShape,
    root: Coord,
    sinks: &[(EdgeId, Coord)],
    usage: &Usage,
    history: &HashMap<Resource, u64>,
    pressure: u64,
) -> TreeResult {
    let mut parent: HashMap<Coord, Coord> = HashMap::new();
    let mut tree: HashSet<Coord> = HashSet::from([root]);
    // Farthest sinks first, so trunks are laid before twigs.
    let mut ordered: Vec<Coord> = sinks.iter().map(|&(_, d)| d).collect();
    ordered.sort_by_key(|&d| (usize::MAX - ArrayShape::manhattan(root, d), d));
    ordered.dedup();

    for sink in ordered {
        if tree.contains(&sink) {
            continue;
        }
        let path = dijkstra_to_tree(shape, &tree, sink, usage, history, pressure);
        // Path runs tree-point → sink; record parents.
        for w in path.windows(2) {
            parent.insert(w[1], w[0]);
            tree.insert(w[1]);
        }
    }
    TreeResult { parent }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Resource {
    Link((Coord, Coord)),
    Bypass(Coord),
}

/// Multi-source Dijkstra from the whole tree to `sink`. Always
/// succeeds (costs are finite on a connected grid).
fn dijkstra_to_tree(
    shape: ArrayShape,
    tree: &HashSet<Coord>,
    sink: Coord,
    usage: &Usage,
    history: &HashMap<Resource, u64>,
    pressure: u64,
) -> Vec<Coord> {
    #[derive(PartialEq, Eq)]
    struct Entry {
        cost: u64,
        coord: Coord,
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            other
                .cost
                .cmp(&self.cost)
                .then_with(|| self.coord.cmp(&other.coord))
        }
    }
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut dist: HashMap<Coord, u64> = HashMap::new();
    let mut prev: HashMap<Coord, Coord> = HashMap::new();
    let mut heap = BinaryHeap::new();
    for &t in tree {
        dist.insert(t, 0);
        heap.push(Entry { cost: 0, coord: t });
    }

    while let Some(Entry { cost, coord }) = heap.pop() {
        if coord == sink {
            let mut path = vec![sink];
            let mut cur = sink;
            while let Some(&p) = prev.get(&cur) {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return path;
        }
        if cost > dist.get(&coord).copied().unwrap_or(u64::MAX) {
            continue;
        }
        for next in neighbors(shape, coord) {
            let link = (coord, next);
            let mut step = BASE_COST;
            step += history.get(&Resource::Link(link)).copied().unwrap_or(0);
            let link_use = usage.links.get(&link).copied().unwrap_or(0);
            if link_use >= LINK_CAPACITY {
                step += pressure * u64::from(link_use - LINK_CAPACITY + 1);
            }
            if next != sink {
                step += history.get(&Resource::Bypass(next)).copied().unwrap_or(0);
                let by_use = usage.bypass.get(&next).copied().unwrap_or(0);
                if by_use >= BYPASS_CAPACITY {
                    step += pressure * u64::from(by_use - BYPASS_CAPACITY + 1);
                }
            }
            let ncost = cost + step;
            if ncost < dist.get(&next).copied().unwrap_or(u64::MAX) {
                dist.insert(next, ncost);
                prev.insert(next, coord);
                heap.push(Entry {
                    cost: ncost,
                    coord: next,
                });
            }
        }
    }
    unreachable!("grid is connected; a path always exists")
}

/// Extract per-edge paths from finished nets.
fn finish(dfg: &Dfg, placement: &Placement, nets: Vec<Net>) -> Routing {
    let mut routes = vec![Route::default(); dfg.edge_count()];
    let mut net_of_edge = vec![usize::MAX; dfg.edge_count()];

    for (ni, net) in nets.iter().enumerate() {
        for &eid in &net.edges {
            let edge = dfg.edge(eid);
            let sink = placement
                .coord(edge.dst)
                .expect("net edges have placed endpoints");
            net_of_edge[eid.index()] = ni;
            if sink == net.root {
                // Self-loop through the multi-purpose register.
                routes[eid.index()] = Route {
                    path: vec![net.root],
                };
                continue;
            }
            // Walk parents from the sink back to the root.
            let mut path = vec![sink];
            let mut cur = sink;
            while cur != net.root {
                cur = *net
                    .parent
                    .get(&cur)
                    .expect("sink is connected to the net's root");
                path.push(cur);
            }
            path.reverse();
            routes[eid.index()] = Route { path };
        }
    }

    Routing {
        routes,
        nets,
        net_of_edge,
    }
}

fn neighbors(shape: ArrayShape, (x, y): Coord) -> Vec<Coord> {
    let mut n = Vec::with_capacity(4);
    if x > 0 {
        n.push((x - 1, y));
    }
    if x + 1 < shape.width {
        n.push((x + 1, y));
    }
    if y > 0 {
        n.push((x, y - 1));
    }
    if y + 1 < shape.height {
        n.push((x, y + 1));
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::place::place;
    use uecgra_dfg::{Dfg, Op};

    #[test]
    fn single_edge_routes_shortest() {
        let mut g = Dfg::new();
        let a = g.add_node(Op::Phi, "a").init(0).id();
        let b = g.add_node(Op::Add, "b").constant(1).id();
        g.connect(a, b);
        g.connect(b, a);
        let shape = ArrayShape::default();
        let placement = place(&g, shape, 0).unwrap();
        let routing = route_all(&g, shape, &placement, 0).unwrap();
        for (id, _) in g.edges() {
            let p = &routing.routes[id.index()];
            assert_eq!(p.path.len(), 2, "adjacent placement → 1-hop route");
        }
    }

    #[test]
    fn fanout_shares_one_net() {
        // One producer feeding five consumers: impossible with disjoint
        // per-edge paths (only 4 output links), fine as a forked net.
        let mut g = Dfg::new();
        let src = g.add_node(Op::Phi, "s").init(0).id();
        g.connect(src, src); // keep it firing
        for i in 0..5 {
            let c = g.add_node(Op::Add, format!("c{i}")).constant(1).id();
            g.connect_ports(src, 0, c, 0);
        }
        let shape = ArrayShape::default();
        let placement = place(&g, shape, 1).unwrap();
        let routing = route_all(&g, shape, &placement, 1).unwrap();
        // All six edges (self + 5 consumers) share one net.
        let nets: HashSet<usize> = routing
            .net_of_edge
            .iter()
            .copied()
            .filter(|&n| n != usize::MAX)
            .collect();
        assert_eq!(nets.len(), 1);
    }

    #[test]
    fn different_ports_are_different_nets() {
        let mut g = Dfg::new();
        let s = g.add_node(Op::Source, "s").id();
        let c = g.add_node(Op::Source, "c").id();
        let br = g.add_node(Op::Br, "br").id();
        let t = g.add_node(Op::Add, "t").constant(0).id();
        let f = g.add_node(Op::Add, "f").constant(0).id();
        g.connect_ports(s, 0, br, 0);
        g.connect_ports(c, 0, br, 1);
        let e_t = g.connect_ports(br, 0, t, 0);
        let e_f = g.connect_ports(br, 1, f, 0);
        let shape = ArrayShape::default();
        let placement = place(&g, shape, 0).unwrap();
        let routing = route_all(&g, shape, &placement, 0).unwrap();
        assert_ne!(
            routing.net_of_edge[e_t.index()],
            routing.net_of_edge[e_f.index()],
            "br's two ports carry different values"
        );
    }

    #[test]
    fn distinct_nets_use_distinct_links() {
        let mut g = Dfg::new();
        let a = g.add_node(Op::Phi, "a").init(0).id();
        let b = g.add_node(Op::Add, "b").constant(1).id();
        let c = g.add_node(Op::Add, "c").constant(1).id();
        g.connect(a, b);
        g.connect(b, c);
        g.connect(c, a);
        let shape = ArrayShape::default();
        let placement = place(&g, shape, 2).unwrap();
        let routing = route_all(&g, shape, &placement, 2).unwrap();
        let mut seen: HashMap<(Coord, Coord), usize> = HashMap::new();
        for (ni, net) in routing.nets.iter().enumerate() {
            for (&child, &parent) in &net.parent {
                if let Some(&other) = seen.get(&(parent, child)) {
                    panic!("link {parent:?}→{child:?} used by nets {other} and {ni}");
                }
                seen.insert((parent, child), ni);
            }
        }
    }

    #[test]
    fn self_loops_route_in_place() {
        let mut g = Dfg::new();
        let acc = g.add_node(Op::Phi, "acc").init(0).id();
        g.connect(acc, acc);
        let shape = ArrayShape::default();
        let placement = place(&g, shape, 0).unwrap();
        let routing = route_all(&g, shape, &placement, 0).unwrap();
        assert_eq!(routing.routes[0].path.len(), 1);
    }
}

//! Reference interpreter for the loop IR.
//!
//! Executes a [`LoopNest`] directly over a word memory — the semantic
//! ground truth the dataflow lowering must match. Used by the
//! differential tests: for any valid program,
//! `interp(nest) == simulate(lower(nest))`.

use crate::ir::{Expr, IrError, LoopNest, Stmt};
use std::collections::HashMap;
use uecgra_dfg::Op;

/// Errors during interpretation (beyond static [`IrError`]s).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// Static validation failed.
    Ir(IrError),
    /// A load or store left the memory.
    OutOfBounds(u32),
    /// A variable was read before assignment along the taken path
    /// (statically possible when only one if-arm defines it).
    Undefined(String),
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::Ir(e) => write!(f, "{e}"),
            InterpError::OutOfBounds(a) => write!(f, "memory access at {a} out of bounds"),
            InterpError::Undefined(v) => write!(f, "variable `{v}` undefined on taken path"),
        }
    }
}

impl std::error::Error for InterpError {}

impl From<IrError> for InterpError {
    fn from(e: IrError) -> Self {
        InterpError::Ir(e)
    }
}

struct Interp<'m> {
    mem: &'m mut [u32],
    env: HashMap<String, u32>,
}

impl Interp<'_> {
    fn expr(&mut self, e: &Expr) -> Result<u32, InterpError> {
        match e {
            Expr::Var(v) => self
                .env
                .get(v)
                .copied()
                .ok_or_else(|| InterpError::Undefined(v.clone())),
            Expr::Const(c) => Ok(*c),
            Expr::Bin(op, a, b) => {
                let a = self.expr(a)?;
                let b = self.expr(b)?;
                Ok(op.eval(a, b))
            }
            Expr::Load(addr) => {
                let a = self.expr(addr)?;
                self.mem
                    .get(a as usize)
                    .copied()
                    .ok_or(InterpError::OutOfBounds(a))
            }
        }
    }

    fn stmts(&mut self, stmts: &[Stmt]) -> Result<(), InterpError> {
        for s in stmts {
            match s {
                Stmt::Assign(name, e) => {
                    let v = self.expr(e)?;
                    self.env.insert(name.clone(), v);
                }
                Stmt::Store { addr, value } => {
                    let a = self.expr(addr)?;
                    let v = self.expr(value)?;
                    match self.mem.get_mut(a as usize) {
                        Some(w) => *w = v,
                        None => return Err(InterpError::OutOfBounds(a)),
                    }
                }
                Stmt::If {
                    cond,
                    then_arm,
                    else_arm,
                } => {
                    let c = self.expr(cond)?;
                    if c != 0 {
                        self.stmts(then_arm)?;
                    } else {
                        self.stmts(else_arm)?;
                    }
                }
            }
        }
        Ok(())
    }
}

/// Execute the loop over `mem`, returning the final memory.
///
/// # Errors
///
/// Returns an [`InterpError`] on invalid IR, out-of-bounds accesses,
/// or dynamically-undefined variables.
pub fn interpret(nest: &LoopNest, mem: &mut [u32]) -> Result<(), InterpError> {
    nest.validate()?;
    let mut it = Interp {
        mem,
        env: HashMap::new(),
    };
    for c in &nest.carried {
        it.env.insert(c.name.clone(), c.init);
    }
    for i in 0..nest.trip_count {
        it.env.insert(nest.var.clone(), i);
        it.stmts(&nest.body)?;
    }
    Ok(())
}

/// Evaluate with a fresh copy of `mem` (convenience for tests).
///
/// # Errors
///
/// See [`interpret`].
pub fn interpret_fresh(nest: &LoopNest, mem: &[u32]) -> Result<Vec<u32>, InterpError> {
    let mut m = mem.to_vec();
    interpret(nest, &mut m)?;
    Ok(m)
}

/// Ops the interpreter and lowering share (compile-time sanity export).
pub const EXPR_OPS: [Op; 16] = [
    Op::Add,
    Op::Sub,
    Op::Mul,
    Op::And,
    Op::Or,
    Op::Xor,
    Op::Sll,
    Op::Srl,
    Op::Eq,
    Op::Ne,
    Op::Gt,
    Op::Geq,
    Op::Lt,
    Op::Leq,
    Op::Cp0,
    Op::Cp1,
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Carried;

    #[test]
    fn interprets_accumulation() {
        let nest = LoopNest {
            var: "i".into(),
            trip_count: 4,
            carried: vec![Carried {
                name: "acc".into(),
                init: 10,
            }],
            body: vec![
                Stmt::assign("acc", Expr::add(Expr::var("acc"), Expr::var("i"))),
                Stmt::Store {
                    addr: Expr::var("i"),
                    value: Expr::var("acc"),
                },
            ],
        };
        let m = interpret_fresh(&nest, &[0; 8]).unwrap();
        assert_eq!(&m[..4], &[10, 11, 13, 16]);
    }

    #[test]
    fn branches_follow_the_condition() {
        let nest = LoopNest {
            var: "i".into(),
            trip_count: 6,
            carried: vec![],
            body: vec![Stmt::If {
                cond: Expr::bin(Op::Gt, Expr::var("i"), Expr::Const(2)),
                then_arm: vec![Stmt::Store {
                    addr: Expr::var("i"),
                    value: Expr::Const(1),
                }],
                else_arm: vec![Stmt::Store {
                    addr: Expr::var("i"),
                    value: Expr::Const(2),
                }],
            }],
        };
        let m = interpret_fresh(&nest, &[0; 8]).unwrap();
        assert_eq!(&m[..6], &[2, 2, 2, 1, 1, 1]);
    }

    #[test]
    fn out_of_bounds_is_reported() {
        let nest = LoopNest {
            var: "i".into(),
            trip_count: 1,
            carried: vec![],
            body: vec![Stmt::assign("x", Expr::load(Expr::Const(999)))],
        };
        assert_eq!(
            interpret_fresh(&nest, &[0; 4]),
            Err(InterpError::OutOfBounds(999))
        );
    }
}

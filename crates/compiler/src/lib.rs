//! The UE-CGRA compiler (paper Section III).
//!
//! Transforms an innermost loop into a configured UE-CGRA: source text
//! ([`mod@parse`]) or a loop IR ([`ir`]) is lowered to a dataflow graph
//! with control converted to phi/br dataflow ([`frontend`], checked
//! against the reference interpreter [`interp`]), cleaned by CSE/DCE
//! ([`opt`]), mapped onto the PE array ([`mapping`]: placement plus
//! PathFinder-style net routing with per-sink Dijkstra through PE
//! bypass paths), power-mapped with the three-phase
//! rest/nominal/sprint pass or the slack-directed alternative
//! ([`mod@power_map`]), and serialized to packed per-PE configuration
//! words ([`bitstream`]).

#![warn(missing_docs)]

pub mod bitstream;
pub mod frontend;
pub mod interp;
pub mod ir;
pub mod mapping;
pub mod opt;
pub mod parse;
pub mod power_map;

pub use bitstream::{Bitstream, PeConfig, PeRole};
pub use frontend::{lower, LoweredLoop};
pub use interp::{interpret, interpret_fresh, InterpError};
pub use ir::{Carried, Expr, IrError, LoopNest, Stmt};
pub use mapping::{ArrayShape, MapError, MappedKernel};
pub use opt::{optimize, Optimized};
pub use parse::{parse, ParseError, Program};
pub use power_map::{power_map, power_map_routed, power_map_slack, Objective, PowerMapping};

//! The compiler's loop intermediate representation.
//!
//! The UE-CGRA compiler maps small innermost loops (~10 ops reused
//! 10K+ times, paper Section VI-A). This IR captures exactly that
//! shape: one counted loop with loop-carried scalars, straight-line
//! statements, and at most structured `if/else` regions. The
//! [`crate::frontend`] pass lowers it to a dataflow graph with control
//! converted to `phi`/`br` dataflow, the same transformation the
//! paper's LLVM CDFG pass performs.

use std::fmt;
use uecgra_dfg::Op;

/// A scalar expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A named scalar (loop variable, carried scalar, or local).
    Var(String),
    /// A 32-bit constant.
    Const(u32),
    /// A binary ALU operation.
    Bin(Op, Box<Expr>, Box<Expr>),
    /// A scratchpad load from a word address.
    Load(Box<Expr>),
}

impl Expr {
    /// Shorthand: a variable reference.
    pub fn var(name: &str) -> Expr {
        Expr::Var(name.to_string())
    }

    /// Shorthand: a binary operation.
    pub fn bin(op: Op, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin(op, Box::new(lhs), Box::new(rhs))
    }

    /// Shorthand: `lhs + rhs`.
    // Deliberately named after the operation it builds; it is an
    // associated constructor, not an operator overload.
    #[allow(clippy::should_implement_trait)]
    pub fn add(lhs: Expr, rhs: Expr) -> Expr {
        Expr::bin(Op::Add, lhs, rhs)
    }

    /// Shorthand: a load.
    pub fn load(addr: Expr) -> Expr {
        Expr::Load(Box::new(addr))
    }

    /// Variables read by this expression, appended to `out`.
    pub fn reads(&self, out: &mut Vec<String>) {
        match self {
            Expr::Var(v) => {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
            Expr::Const(_) => {}
            Expr::Bin(_, a, b) => {
                a.reads(out);
                b.reads(out);
            }
            Expr::Load(a) => a.reads(out),
        }
    }
}

/// A statement in a loop body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `name = expr`.
    Assign(String, Expr),
    /// `mem[addr] = value`.
    Store {
        /// Word address expression.
        addr: Expr,
        /// Value expression.
        value: Expr,
    },
    /// Structured `if (cond) { then } else { else }`. Arms contain only
    /// `Assign` and `Store` statements (no nesting) — sufficient for
    /// the paper's kernels and keeps br/phi conversion tractable.
    If {
        /// The branch condition (nonzero = then-arm).
        cond: Expr,
        /// Statements executed when the condition holds.
        then_arm: Vec<Stmt>,
        /// Statements executed otherwise.
        else_arm: Vec<Stmt>,
    },
}

impl Stmt {
    /// Shorthand: an assignment.
    pub fn assign(name: &str, expr: Expr) -> Stmt {
        Stmt::Assign(name.to_string(), expr)
    }
}

/// A loop-carried scalar with its initial value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Carried {
    /// Variable name.
    pub name: String,
    /// Value before iteration zero.
    pub init: u32,
}

/// A counted innermost loop:
///
/// ```text
/// for (var = 0; var < trip_count; ++var) { body }
/// ```
///
/// with `carried` scalars live across iterations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopNest {
    /// Induction variable name.
    pub var: String,
    /// Trip count.
    pub trip_count: u32,
    /// Loop-carried scalars.
    pub carried: Vec<Carried>,
    /// The loop body.
    pub body: Vec<Stmt>,
}

/// Errors reported by IR validation and lowering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// A variable was read before any definition reaches it.
    UndefinedVar(String),
    /// `If` arms may not nest further `If` statements.
    NestedIf,
    /// The op is not a two-input ALU op usable in expressions.
    BadExprOp(Op),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::UndefinedVar(v) => write!(f, "variable `{v}` read before definition"),
            IrError::NestedIf => write!(f, "nested if statements are not supported"),
            IrError::BadExprOp(op) => write!(f, "op `{op}` cannot appear in an expression"),
        }
    }
}

impl std::error::Error for IrError {}

impl LoopNest {
    /// Validate structural rules: no nested ifs, only ALU ops in
    /// expressions, every read reachable from a definition (the
    /// induction variable, a carried scalar, or an earlier assign).
    ///
    /// # Errors
    ///
    /// Returns the first [`IrError`] found.
    pub fn validate(&self) -> Result<(), IrError> {
        let mut defined: Vec<String> = vec![self.var.clone()];
        defined.extend(self.carried.iter().map(|c| c.name.clone()));
        check_stmts(&self.body, &mut defined, false)
    }
}

fn check_expr(expr: &Expr, defined: &[String]) -> Result<(), IrError> {
    match expr {
        Expr::Var(v) => {
            if defined.iter().any(|d| d == v) {
                Ok(())
            } else {
                Err(IrError::UndefinedVar(v.clone()))
            }
        }
        Expr::Const(_) => Ok(()),
        Expr::Bin(op, a, b) => {
            if matches!(
                op,
                Op::Phi | Op::Br | Op::Load | Op::Store | Op::Source | Op::Sink | Op::Nop
            ) {
                return Err(IrError::BadExprOp(*op));
            }
            check_expr(a, defined)?;
            check_expr(b, defined)
        }
        Expr::Load(a) => check_expr(a, defined),
    }
}

fn check_stmts(stmts: &[Stmt], defined: &mut Vec<String>, in_arm: bool) -> Result<(), IrError> {
    for stmt in stmts {
        match stmt {
            Stmt::Assign(name, expr) => {
                check_expr(expr, defined)?;
                if !defined.contains(name) {
                    defined.push(name.clone());
                }
            }
            Stmt::Store { addr, value } => {
                check_expr(addr, defined)?;
                check_expr(value, defined)?;
            }
            Stmt::If {
                cond,
                then_arm,
                else_arm,
            } => {
                if in_arm {
                    return Err(IrError::NestedIf);
                }
                check_expr(cond, defined)?;
                // Each arm sees the pre-if environment; defs union after.
                let mut then_env = defined.clone();
                check_stmts(then_arm, &mut then_env, true)?;
                let mut else_env = defined.clone();
                check_stmts(else_arm, &mut else_env, true)?;
                for v in then_env.into_iter().chain(else_env) {
                    if !defined.contains(&v) {
                        defined.push(v);
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_loop() -> LoopNest {
        LoopNest {
            var: "i".into(),
            trip_count: 10,
            carried: vec![Carried {
                name: "acc".into(),
                init: 0,
            }],
            body: vec![Stmt::assign(
                "acc",
                Expr::add(Expr::var("acc"), Expr::load(Expr::var("i"))),
            )],
        }
    }

    #[test]
    fn valid_loop_validates() {
        simple_loop().validate().unwrap();
    }

    #[test]
    fn undefined_variable_is_rejected() {
        let mut l = simple_loop();
        l.body.push(Stmt::assign(
            "x",
            Expr::add(Expr::var("ghost"), Expr::Const(1)),
        ));
        assert_eq!(l.validate(), Err(IrError::UndefinedVar("ghost".into())));
    }

    #[test]
    fn nested_if_is_rejected() {
        let inner = Stmt::If {
            cond: Expr::Const(1),
            then_arm: vec![],
            else_arm: vec![],
        };
        let l = LoopNest {
            var: "i".into(),
            trip_count: 1,
            carried: vec![],
            body: vec![Stmt::If {
                cond: Expr::Const(1),
                then_arm: vec![inner],
                else_arm: vec![],
            }],
        };
        assert_eq!(l.validate(), Err(IrError::NestedIf));
    }

    #[test]
    fn structural_op_in_expression_is_rejected() {
        let l = LoopNest {
            var: "i".into(),
            trip_count: 1,
            carried: vec![],
            body: vec![Stmt::assign(
                "x",
                Expr::bin(Op::Phi, Expr::var("i"), Expr::Const(0)),
            )],
        };
        assert_eq!(l.validate(), Err(IrError::BadExprOp(Op::Phi)));
    }

    #[test]
    fn arm_definitions_merge_after_if() {
        let l = LoopNest {
            var: "i".into(),
            trip_count: 4,
            carried: vec![],
            body: vec![
                Stmt::If {
                    cond: Expr::var("i"),
                    then_arm: vec![Stmt::assign("x", Expr::Const(1))],
                    else_arm: vec![Stmt::assign("x", Expr::Const(2))],
                },
                Stmt::assign("y", Expr::add(Expr::var("x"), Expr::Const(3))),
            ],
        };
        l.validate().unwrap();
    }

    #[test]
    fn expr_reads_collects_unique_vars() {
        let e = Expr::add(
            Expr::var("a"),
            Expr::bin(Op::Mul, Expr::var("b"), Expr::var("a")),
        );
        let mut reads = Vec::new();
        e.reads(&mut reads);
        assert_eq!(reads, vec!["a".to_string(), "b".to_string()]);
    }
}

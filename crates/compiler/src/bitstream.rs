//! Bitstream generation: per-PE configuration words.
//!
//! Each PE is configured by one packed word carrying its opcode,
//! operand muxing, output routing (ALU broadcast masks plus two bypass
//! paths), clock selection, and accumulator enable. The paper's PE
//! uses 26 configuration bits; our slightly richer mux encoding packs
//! into 32 bits, which still fits a single inter-PE message on the
//! 32-bit data network — preserving the property that configuration is
//! forwarded systolically through the array (Section IV-A). Constants
//! and phi-initial tokens are delivered as follow-on words.

use crate::mapping::{Coord, MappedKernel};
use crate::power_map::pe_clock_grid;
use std::fmt;
use uecgra_clock::VfMode;
use uecgra_dfg::{Dfg, Op, PE_OPS};

/// A cardinal direction on the PE grid. Row 0 is north.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// Toward row − 1.
    North,
    /// Toward column + 1.
    East,
    /// Toward row + 1.
    South,
    /// Toward column − 1.
    West,
}

impl Dir {
    /// All directions in encoding order.
    pub const ALL: [Dir; 4] = [Dir::North, Dir::East, Dir::South, Dir::West];

    /// The direction from `a` to an adjacent coordinate `b`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are not orthogonal neighbors.
    pub fn between(a: Coord, b: Coord) -> Dir {
        match (b.0 as isize - a.0 as isize, b.1 as isize - a.1 as isize) {
            (0, -1) => Dir::North,
            (1, 0) => Dir::East,
            (0, 1) => Dir::South,
            (-1, 0) => Dir::West,
            _ => panic!("{a:?} and {b:?} are not adjacent"),
        }
    }

    fn code(self) -> u32 {
        self as u32
    }

    fn from_code(c: u32) -> Dir {
        Dir::ALL[c as usize & 3]
    }
}

/// Source of an operand port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OperandSel {
    /// Input queue from a direction.
    Queue(Dir),
    /// The multi-purpose register (self-loop / accumulator).
    Reg,
    /// The configured constant.
    Const,
    /// Port unused.
    #[default]
    None,
}

impl OperandSel {
    fn code(self) -> u32 {
        match self {
            OperandSel::Queue(d) => d.code(),
            OperandSel::Reg => 4,
            OperandSel::Const => 5,
            OperandSel::None => 6,
        }
    }

    fn from_code(c: u32) -> OperandSel {
        match c {
            0..=3 => OperandSel::Queue(Dir::from_code(c)),
            4 => OperandSel::Reg,
            5 => OperandSel::Const,
            _ => OperandSel::None,
        }
    }
}

/// A configured bypass path: a stream entering from `src` is forwarded
/// toward every direction in `dst_mask` without touching the ALU (the
/// PE's output muxes may all select the same bypass message, which is
/// how nets fork).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bypass {
    /// Input queue direction.
    pub src: Dir,
    /// Output directions (N, E, S, W).
    pub dst_mask: [bool; 4],
}

/// What a PE does, decoded from its opcode field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PeRole {
    /// Power-gated (unused).
    #[default]
    Gated,
    /// Executes an operation.
    Compute(Op),
    /// Awake only to forward bypass streams.
    RouteOnly,
}

/// One PE's full configuration.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PeConfig {
    /// The PE's role.
    pub role: PeRole,
    /// Operand sources.
    pub operands: [OperandSel; 2],
    /// Directions receiving the ALU's primary output (`br` true port).
    pub alu_true_mask: [bool; 4],
    /// Directions receiving the `br` false-port output.
    pub alu_false_mask: [bool; 4],
    /// Up to two bypass paths.
    pub bypass: [Option<Bypass>; 2],
    /// Clock selection (meaningless when gated).
    pub clk: VfMode,
    /// Write the ALU result into the multi-purpose register.
    pub reg_write: bool,
    /// Constant operand (delivered as a follow-on word).
    pub constant: Option<u32>,
    /// Phi initial token (delivered as a follow-on word).
    pub init: Option<u32>,
}

impl PeConfig {
    /// Pack into the 36-bit configuration word (constants excluded).
    ///
    /// The paper's narrower PE packs into 26 bits; our multicast bypass
    /// encoding needs 36, delivered as two 32-bit messages over the
    /// same systolic configuration network.
    pub fn pack(&self) -> u64 {
        let opcode: u64 = match self.role {
            PeRole::Gated => 0,
            PeRole::Compute(op) => 1 + PE_OPS.iter().position(|&o| o == op).expect("PE op") as u64,
            PeRole::RouteOnly => 22,
        };
        let mut w = opcode;
        w |= u64::from(self.operands[0].code()) << 5;
        w |= u64::from(self.operands[1].code()) << 8;
        for (i, &b) in self.alu_true_mask.iter().enumerate() {
            w |= (b as u64) << (11 + i);
        }
        for (i, &b) in self.alu_false_mask.iter().enumerate() {
            w |= (b as u64) << (15 + i);
        }
        for (slot, b) in self.bypass.iter().enumerate() {
            let base = 19 + 7 * slot as u32;
            if let Some(bp) = b {
                w |= 1 << base;
                w |= u64::from(bp.src.code()) << (base + 1);
                for (i, &m) in bp.dst_mask.iter().enumerate() {
                    w |= (m as u64) << (base + 3 + i as u32);
                }
            }
        }
        w |= (self.clk as u64) << 33;
        w |= (self.reg_write as u64) << 35;
        w
    }

    /// Unpack a configuration word (constants are side-band and come
    /// back as `None`).
    pub fn unpack(w: u64) -> PeConfig {
        let opcode = (w & 0x1F) as u32;
        let role = match opcode {
            0 => PeRole::Gated,
            22 => PeRole::RouteOnly,
            n if (n as usize) <= PE_OPS.len() => PeRole::Compute(PE_OPS[(n - 1) as usize]),
            _ => PeRole::Gated,
        };
        let mut bypass = [None; 2];
        for (slot, b) in bypass.iter_mut().enumerate() {
            let base = 19 + 7 * slot as u32;
            if (w >> base) & 1 == 1 {
                *b = Some(Bypass {
                    src: Dir::from_code(((w >> (base + 1)) & 3) as u32),
                    dst_mask: core::array::from_fn(|i| (w >> (base + 3 + i as u32)) & 1 == 1),
                });
            }
        }
        let clk = match (w >> 33) & 3 {
            0 => VfMode::Rest,
            2 => VfMode::Sprint,
            _ => VfMode::Nominal,
        };
        PeConfig {
            role,
            operands: [
                OperandSel::from_code(((w >> 5) & 7) as u32),
                OperandSel::from_code(((w >> 8) & 7) as u32),
            ],
            alu_true_mask: core::array::from_fn(|i| (w >> (11 + i)) & 1 == 1),
            alu_false_mask: core::array::from_fn(|i| (w >> (15 + i)) & 1 == 1),
            bypass,
            clk,
            reg_write: (w >> 35) & 1 == 1,
            constant: None,
            init: None,
        }
    }
}

/// Errors from bitstream assembly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BitstreamError {
    /// A PE would need more than two bypass paths.
    BypassOverflow(Coord),
    /// Two streams contend for the same output direction of a PE.
    OutputConflict(Coord, Dir),
}

impl fmt::Display for BitstreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BitstreamError::BypassOverflow(c) => write!(f, "PE {c:?} needs > 2 bypasses"),
            BitstreamError::OutputConflict(c, d) => {
                write!(f, "output {d:?} of PE {c:?} multiply driven")
            }
        }
    }
}

impl std::error::Error for BitstreamError {}

/// The assembled configuration of a whole array.
#[derive(Debug, Clone, PartialEq)]
pub struct Bitstream {
    /// Per-PE configuration, `grid[row][col]`.
    pub grid: Vec<Vec<PeConfig>>,
}

impl Bitstream {
    /// Assemble from a mapped kernel and its per-node power mapping.
    ///
    /// # Errors
    ///
    /// Returns a [`BitstreamError`] when the routed design exceeds PE
    /// resources (should not happen for routes produced by
    /// [`MappedKernel::map`]).
    pub fn assemble(
        dfg: &Dfg,
        mapped: &MappedKernel,
        node_modes: &[VfMode],
    ) -> Result<Bitstream, BitstreamError> {
        let shape = mapped.shape;
        let mut grid = vec![vec![PeConfig::default(); shape.width]; shape.height];
        let clocks = pe_clock_grid(dfg, mapped, node_modes);

        // Roles, ops, constants.
        for (id, node) in dfg.nodes() {
            if node.op.is_pseudo() {
                continue;
            }
            let (x, y) = mapped.coord_of(id);
            let cfg = &mut grid[y][x];
            cfg.role = PeRole::Compute(node.op);
            cfg.constant = node.constant;
            cfg.init = node.init;
            if node.constant.is_some() {
                // Undriven ports default to the constant; refined below
                // as edges claim their ports.
                cfg.operands = [OperandSel::Const; 2];
                if node.op.arity() < 2 {
                    cfg.operands[1] = OperandSel::None;
                }
            }
        }

        // Nets: output masks at roots, multicast bypass slots at
        // forwarding PEs, operand selects at sinks.
        for net in &mapped.routing.nets {
            // Root: ALU broadcast mask toward the root's tree children.
            let (rx, ry) = net.root;
            for child in net.children(net.root) {
                let dir = Dir::between(net.root, child);
                let cfg = &mut grid[ry][rx];
                let mask = if net.src_port == 0 {
                    &mut cfg.alu_true_mask
                } else {
                    &mut cfg.alu_false_mask
                };
                mask[dir as usize] = true;
            }

            // Forwarding PEs: one bypass slot per net, multicasting to
            // every tree child.
            let mut forwarding: Vec<Coord> = net
                .parent
                .values()
                .copied()
                .filter(|&c| c != net.root)
                .collect();
            forwarding.sort();
            forwarding.dedup();
            for f in forwarding {
                let parent = net.parent[&f];
                let mut dst_mask = [false; 4];
                for child in net.children(f) {
                    dst_mask[Dir::between(f, child) as usize] = true;
                }
                let (fx, fy) = f;
                let cfg = &mut grid[fy][fx];
                if cfg.role == PeRole::Gated {
                    cfg.role = PeRole::RouteOnly;
                }
                let bp = Bypass {
                    src: Dir::between(f, parent),
                    dst_mask,
                };
                match cfg.bypass.iter_mut().find(|s| s.is_none()) {
                    Some(slot) => *slot = Some(bp),
                    None => return Err(BitstreamError::BypassOverflow(f)),
                }
            }

            // Sinks: operand selects (self-loops use the register).
            for &eid in &net.edges {
                let edge = dfg.edge(eid);
                let sink = mapped.coord_of(edge.dst);
                let (dx, dy) = sink;
                if sink == net.root {
                    grid[dy][dx].reg_write = true;
                    grid[dy][dx].operands[edge.dst_port as usize] = OperandSel::Reg;
                } else {
                    let from = net.parent[&sink];
                    let dir = Dir::between(sink, from);
                    grid[dy][dx].operands[edge.dst_port as usize] = OperandSel::Queue(dir);
                }
            }
        }

        // Clocks.
        for (y, row) in clocks.iter().enumerate() {
            for (x, clk) in row.iter().enumerate() {
                if let Some(m) = clk {
                    grid[y][x].clk = *m;
                }
            }
        }

        // Output-conflict check: each direction of each PE driven once.
        for (y, row) in grid.iter().enumerate() {
            for (x, cfg) in row.iter().enumerate() {
                for dir in Dir::ALL {
                    let drivers = cfg.alu_true_mask[dir as usize] as u32
                        + cfg.alu_false_mask[dir as usize] as u32
                        + cfg
                            .bypass
                            .iter()
                            .flatten()
                            .filter(|b| b.dst_mask[dir as usize])
                            .count() as u32;
                    if drivers > 1 {
                        return Err(BitstreamError::OutputConflict((x, y), dir));
                    }
                }
            }
        }

        Ok(Bitstream { grid })
    }

    /// Check the structural invariants the fabric depends on but
    /// cannot express in the type: a rectangular grid, at most one
    /// driver per output direction of each PE (two drivers could
    /// double-push a neighbor queue in one tick — a credit-protocol
    /// break), and no `Const` operand without a constant word.
    ///
    /// Bitstreams produced by [`Bitstream::assemble`] always pass;
    /// this guards hand-built or corrupted configurations entering
    /// through `RunRequest`-style front doors, mapping them to a
    /// structured [`MapError::MalformedBitstream`] instead of letting
    /// the simulator trip a runtime protocol violation.
    ///
    /// # Errors
    ///
    /// Returns [`MapError::MalformedBitstream`] naming the first
    /// offending PE.
    pub fn validate(&self) -> Result<(), crate::mapping::MapError> {
        use crate::mapping::MapError;
        let width = self.grid.first().map_or(0, Vec::len);
        for (y, row) in self.grid.iter().enumerate() {
            if row.len() != width {
                return Err(MapError::MalformedBitstream {
                    pe: (0, y),
                    reason: "ragged grid row",
                });
            }
            for (x, cfg) in row.iter().enumerate() {
                for dir in Dir::ALL {
                    let drivers = cfg.alu_true_mask[dir as usize] as u32
                        + cfg.alu_false_mask[dir as usize] as u32
                        + cfg
                            .bypass
                            .iter()
                            .flatten()
                            .filter(|b| b.dst_mask[dir as usize])
                            .count() as u32;
                    if drivers > 1 {
                        return Err(MapError::MalformedBitstream {
                            pe: (x, y),
                            reason: "multiple drivers for one output direction",
                        });
                    }
                }
                if cfg.operands.contains(&OperandSel::Const) && cfg.constant.is_none() {
                    return Err(MapError::MalformedBitstream {
                        pe: (x, y),
                        reason: "const operand selected without a constant word",
                    });
                }
            }
        }
        Ok(())
    }

    /// Serialize to packed words in systolic load order (row-major,
    /// matching the top-to-bottom configuration flow of Section IV-A).
    pub fn words(&self) -> Vec<u64> {
        self.grid
            .iter()
            .flat_map(|row| row.iter().map(PeConfig::pack))
            .collect()
    }

    /// The same stream as 32-bit inter-PE messages (low word, then
    /// high word, per PE).
    pub fn message_words(&self) -> Vec<u32> {
        self.words()
            .into_iter()
            .flat_map(|w| [(w & 0xFFFF_FFFF) as u32, (w >> 32) as u32])
            .collect()
    }

    /// Count of PEs by role: `(compute, route_only, gated)`.
    pub fn role_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for cfg in self.grid.iter().flatten() {
            match cfg.role {
                PeRole::Compute(_) => counts.0 += 1,
                PeRole::RouteOnly => counts.1 += 1,
                PeRole::Gated => counts.2 += 1,
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::ArrayShape;
    use uecgra_dfg::kernels;

    fn assemble_kernel(k: &kernels::Kernel, seed: u64) -> (MappedKernel, Bitstream) {
        let mapped = MappedKernel::map(&k.dfg, ArrayShape::default(), seed).unwrap();
        let modes = vec![VfMode::Nominal; k.dfg.node_count()];
        let bs = Bitstream::assemble(&k.dfg, &mapped, &modes).unwrap();
        (mapped, bs)
    }

    #[test]
    fn pack_unpack_roundtrip_manual() {
        let cfg = PeConfig {
            role: PeRole::Compute(Op::Mul),
            operands: [OperandSel::Queue(Dir::West), OperandSel::Const],
            alu_true_mask: [true, false, false, true],
            alu_false_mask: [false; 4],
            bypass: [
                Some(Bypass {
                    src: Dir::North,
                    dst_mask: [false, true, true, false],
                }),
                None,
            ],
            clk: VfMode::Sprint,
            reg_write: true,
            constant: None,
            init: None,
        };
        assert_eq!(PeConfig::unpack(cfg.pack()), cfg);
    }

    #[test]
    fn gated_pe_packs_to_gated_word() {
        let cfg = PeConfig::default();
        let w = cfg.pack();
        assert_eq!(w & 0x1F, 0);
        assert_eq!(PeConfig::unpack(w).role, PeRole::Gated);
    }

    #[test]
    fn all_kernels_assemble() {
        for k in kernels::all_kernels() {
            let (mapped, bs) = assemble_kernel(&k, 7);
            let (compute, _route, gated) = bs.role_counts();
            assert_eq!(compute, k.dfg.pe_node_count(), "{}", k.name);
            assert!(gated > 0, "{}: kernels underutilize the 8x8", k.name);
            assert_eq!(bs.words().len(), mapped.shape.len());
            assert_eq!(
                bs.validate(),
                Ok(()),
                "{}: assembled bitstream valid",
                k.name
            );
        }
    }

    #[test]
    fn validate_rejects_malformed_bitstreams() {
        use crate::mapping::MapError;
        // Conflicting drivers: ALU and a bypass both push east.
        let mut grid = vec![vec![PeConfig::default(); 2]; 1];
        grid[0][0] = PeConfig {
            role: PeRole::Compute(Op::Add),
            operands: [OperandSel::Const, OperandSel::Const],
            constant: Some(1),
            alu_true_mask: [false, true, false, false],
            bypass: [
                Some(Bypass {
                    src: Dir::West,
                    dst_mask: [false, true, false, false],
                }),
                None,
            ],
            ..PeConfig::default()
        };
        let bs = Bitstream { grid };
        assert_eq!(
            bs.validate(),
            Err(MapError::MalformedBitstream {
                pe: (0, 0),
                reason: "multiple drivers for one output direction",
            })
        );

        // Const operand without a constant word.
        let mut grid = vec![vec![PeConfig::default(); 1]; 1];
        grid[0][0] = PeConfig {
            role: PeRole::Compute(Op::Add),
            operands: [OperandSel::Const, OperandSel::None],
            constant: None,
            ..PeConfig::default()
        };
        assert!(matches!(
            Bitstream { grid }.validate(),
            Err(MapError::MalformedBitstream { pe: (0, 0), .. })
        ));

        // Ragged rows.
        let grid = vec![vec![PeConfig::default(); 2], vec![PeConfig::default(); 1]];
        assert!(matches!(
            Bitstream { grid }.validate(),
            Err(MapError::MalformedBitstream { pe: (0, 1), .. })
        ));
    }

    #[test]
    fn operand_selects_match_routes() {
        let k = kernels::llist::build_with_hops(10);
        let (mapped, bs) = assemble_kernel(&k, 3);
        for (eid, e) in k.dfg.edges() {
            let path = &mapped.route(eid).path;
            if path.len() < 2 {
                continue;
            }
            let (dx, dy) = *path.last().unwrap();
            let sel = bs.grid[dy][dx].operands[e.dst_port as usize];
            let expect = Dir::between(path[path.len() - 1], path[path.len() - 2]);
            assert_eq!(sel, OperandSel::Queue(expect));
        }
    }

    #[test]
    fn words_roundtrip_through_unpack() {
        let k = kernels::dither::build_with_pixels(16);
        let (mapped, bs) = assemble_kernel(&k, 5);
        let words = bs.words();
        for (i, &w) in words.iter().enumerate() {
            let (x, y) = (i % mapped.shape.width, i / mapped.shape.width);
            let decoded = PeConfig::unpack(w);
            assert_eq!(decoded.role, bs.grid[y][x].role);
            assert_eq!(decoded.operands, bs.grid[y][x].operands);
            assert_eq!(decoded.bypass, bs.grid[y][x].bypass);
            assert_eq!(decoded.clk, bs.grid[y][x].clk);
        }
    }

    #[test]
    fn dir_between_adjacent_coords() {
        assert_eq!(Dir::between((1, 1), (1, 0)), Dir::North);
        assert_eq!(Dir::between((1, 1), (2, 1)), Dir::East);
        assert_eq!(Dir::between((1, 1), (1, 2)), Dir::South);
        assert_eq!(Dir::between((1, 1), (0, 1)), Dir::West);
    }

    #[test]
    #[should_panic(expected = "not adjacent")]
    fn dir_between_rejects_non_neighbors() {
        Dir::between((0, 0), (2, 0));
    }
}

//! Lowering from the loop IR to a dataflow graph.
//!
//! This pass performs the CDFG→DFG conversion of the paper's compiler
//! (Section III / VI-A): the counted loop becomes a `phi → add → lt →
//! br` induction recurrence, loop-carried scalars become phi nodes with
//! initial tokens, and structured `if/else` regions become *steered*
//! dataflow — each value live into the arms passes through a `br` node
//! keyed on the condition, each value defined by the arms merges back
//! through a `phi`. Every iteration therefore sends exactly one token
//! down exactly one arm, which is what lets the elastic fabric execute
//! control flow without a program counter.
//!
//! Termination relies on each recurrence depending (directly or through
//! loads) on the induction stream: when the loop-exit branch stops
//! forwarding indices, the dependent chains starve and the graph
//! quiesces. Pure carried chains with no such dependence would spin
//! forever; the paper's kernels do not contain any.

use crate::ir::{Expr, IrError, LoopNest, Stmt};
use std::collections::HashMap;
use uecgra_dfg::{Dfg, NodeId, Op};

/// Result of lowering: the graph plus handles for simulation.
#[derive(Debug, Clone)]
pub struct LoweredLoop {
    /// The dataflow graph.
    pub dfg: Dfg,
    /// The induction variable's phi node (iteration marker).
    pub induction_phi: NodeId,
    /// Phi node per loop-carried scalar, by name.
    pub carried_phis: HashMap<String, NodeId>,
    /// Exit branch per carried scalar: its false port emits the
    /// scalar's final value when the loop terminates (a live-out).
    pub carried_exits: HashMap<String, NodeId>,
}

/// A value in the lowering environment: either a node output port or a
/// compile-time constant (kept symbolic so it can be folded into
/// consumer nodes' immediate fields).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Operand {
    Node(NodeId, u8),
    Const(u32),
}

struct Lowerer {
    dfg: Dfg,
    env: HashMap<String, Operand>,
}

impl Lowerer {
    fn connect(&mut self, from: Operand, to: NodeId, port: u8) {
        match from {
            Operand::Node(n, p) => {
                self.dfg.connect_ports(n, p, to, port);
            }
            Operand::Const(_) => unreachable!("constants are folded, not wired"),
        }
    }

    /// Build a binary-op node with constant folding into the immediate
    /// field (both-const operands fold at compile time).
    fn bin(&mut self, op: Op, name: &str, a: Operand, b: Operand) -> Operand {
        match (a, b) {
            (Operand::Const(x), Operand::Const(y)) => Operand::Const(op.eval(x, y)),
            (Operand::Node(..), Operand::Node(..)) => {
                let n = self.dfg.add_node(op, name).id();
                self.connect(a, n, 0);
                self.connect(b, n, 1);
                Operand::Node(n, 0)
            }
            (Operand::Node(..), Operand::Const(c)) => {
                let n = self.dfg.add_node(op, name).constant(c).id();
                self.connect(a, n, 0);
                Operand::Node(n, 0)
            }
            (Operand::Const(c), Operand::Node(..)) => {
                let n = self.dfg.add_node(op, name).constant(c).id();
                self.connect(b, n, 1);
                Operand::Node(n, 0)
            }
        }
    }

    fn expr(&mut self, e: &Expr) -> Result<Operand, IrError> {
        match e {
            Expr::Var(v) => self
                .env
                .get(v)
                .copied()
                .ok_or_else(|| IrError::UndefinedVar(v.clone())),
            Expr::Const(c) => Ok(Operand::Const(*c)),
            Expr::Bin(op, a, b) => {
                if matches!(
                    op,
                    Op::Phi | Op::Br | Op::Load | Op::Store | Op::Source | Op::Sink | Op::Nop
                ) {
                    return Err(IrError::BadExprOp(*op));
                }
                let a = self.expr(a)?;
                let b = self.expr(b)?;
                Ok(self.bin(*op, op.mnemonic(), a, b))
            }
            Expr::Load(addr) => {
                let a = self.expr(addr)?;
                let n = match a {
                    Operand::Const(c) => {
                        // A constant-addressed load still needs a firing
                        // trigger per iteration; anchor it to the
                        // induction stream.
                        let i = self.env["__i"];
                        let cp = self.dfg.add_node(Op::Cp1, "addr_const").constant(c).id();
                        self.connect(i, cp, 0);
                        let ld = self.dfg.add_node(Op::Load, "ld").id();
                        self.dfg.connect_ports(cp, 0, ld, 0);
                        ld
                    }
                    Operand::Node(..) => {
                        let ld = self.dfg.add_node(Op::Load, "ld").id();
                        self.connect(a, ld, 0);
                        ld
                    }
                };
                Ok(Operand::Node(n, 0))
            }
        }
    }

    /// Materialize a constant as a per-iteration token stream gated by
    /// `trigger` (a steered arm token).
    fn materialize(&mut self, c: u32, trigger: Operand) -> Operand {
        let n = self.dfg.add_node(Op::Cp1, "imm").constant(c).id();
        self.connect(trigger, n, 0);
        Operand::Node(n, 0)
    }

    fn store(&mut self, addr: Operand, value: Operand) -> Result<(), IrError> {
        let st = match (addr, value) {
            (Operand::Const(a), Operand::Node(..)) => {
                let st = self.dfg.add_node(Op::Store, "st").constant(a).id();
                self.connect(value, st, 1);
                st
            }
            (Operand::Node(..), Operand::Const(c)) => {
                // Gate the immediate on the address stream so the store
                // fires once per address token.
                let imm = self.materialize(c, addr);
                let st = self.dfg.add_node(Op::Store, "st").id();
                self.connect(addr, st, 0);
                self.connect(imm, st, 1);
                st
            }
            (Operand::Node(..), Operand::Node(..)) => {
                let st = self.dfg.add_node(Op::Store, "st").id();
                self.connect(addr, st, 0);
                self.connect(value, st, 1);
                st
            }
            (Operand::Const(a), Operand::Const(c)) => {
                // Fully-constant store: anchor the address to the
                // induction stream (one firing per iteration) and gate
                // the immediate on it.
                let i = self.env["__i"];
                let addr_n = self.dfg.add_node(Op::Cp1, "addr_const").constant(a).id();
                self.connect(i, addr_n, 0);
                let addr = Operand::Node(addr_n, 0);
                let imm = self.materialize(c, addr);
                let st = self.dfg.add_node(Op::Store, "st").id();
                self.connect(addr, st, 0);
                self.connect(imm, st, 1);
                st
            }
        };
        let _ = st;
        Ok(())
    }

    fn assigned_vars(stmts: &[Stmt], out: &mut Vec<String>) {
        for s in stmts {
            if let Stmt::Assign(name, _) = s {
                if !out.contains(name) {
                    out.push(name.clone());
                }
            }
        }
    }

    fn read_vars(stmts: &[Stmt], out: &mut Vec<String>) {
        for s in stmts {
            match s {
                Stmt::Assign(_, e) => e.reads(out),
                Stmt::Store { addr, value } => {
                    addr.reads(out);
                    value.reads(out);
                }
                Stmt::If { .. } => unreachable!("validated: no nested ifs"),
            }
        }
    }

    fn lower_stmts(&mut self, stmts: &[Stmt]) -> Result<(), IrError> {
        for stmt in stmts {
            match stmt {
                Stmt::Assign(name, e) => {
                    let v = self.expr(e)?;
                    self.env.insert(name.clone(), v);
                }
                Stmt::Store { addr, value } => {
                    let a = self.expr(addr)?;
                    let v = self.expr(value)?;
                    self.store(a, v)?;
                }
                Stmt::If {
                    cond,
                    then_arm,
                    else_arm,
                } => self.lower_if(cond, then_arm, else_arm)?,
            }
        }
        Ok(())
    }

    fn lower_if(
        &mut self,
        cond: &Expr,
        then_arm: &[Stmt],
        else_arm: &[Stmt],
    ) -> Result<(), IrError> {
        let cond_op = self.expr(cond)?;
        if let Operand::Const(c) = cond_op {
            // Statically-decided branch: lower only the taken arm.
            return self.lower_stmts(if c != 0 { then_arm } else { else_arm });
        }

        // Variables the arms read, plus pass-through values for
        // variables assigned in only one arm.
        let mut reads = Vec::new();
        Lowerer::read_vars(then_arm, &mut reads);
        Lowerer::read_vars(else_arm, &mut reads);
        let mut then_defs = Vec::new();
        Lowerer::assigned_vars(then_arm, &mut then_defs);
        let mut else_defs = Vec::new();
        Lowerer::assigned_vars(else_arm, &mut else_defs);
        let mut live_in: Vec<String> = Vec::new();
        for v in reads.iter() {
            if self.env.contains_key(v) && !live_in.contains(v) {
                live_in.push(v.clone());
            }
        }
        for v in then_defs.iter().chain(&else_defs) {
            let one_sided = then_defs.contains(v) ^ else_defs.contains(v);
            if one_sided && self.env.contains_key(v) && !live_in.contains(v) {
                live_in.push(v.clone());
            }
        }

        // Steer each node-valued live-in through a br; constants stay
        // foldable in both arms.
        let outer_env = self.env.clone();
        let mut then_env = outer_env.clone();
        let mut else_env = outer_env.clone();
        let mut steered: HashMap<String, NodeId> = HashMap::new();
        for v in &live_in {
            if let Operand::Node(..) = outer_env[v] {
                let br = self.dfg.add_node(Op::Br, format!("br_{v}")).id();
                self.connect(outer_env[v], br, 0);
                self.connect(cond_op, br, 1);
                then_env.insert(v.clone(), Operand::Node(br, 0));
                else_env.insert(v.clone(), Operand::Node(br, 1));
                steered.insert(v.clone(), br);
            }
        }

        // Arm trigger: one token per iteration on the taken side only.
        // It anchors everything inside an arm that would otherwise tie
        // to the free-running induction stream — constant-addressed
        // loads/stores and materialized immediates — so un-taken arms
        // produce no tokens at all.
        let trig = self.dfg.add_node(Op::Br, "br_trig").id();
        self.connect(cond_op, trig, 0);
        self.connect(cond_op, trig, 1);
        then_env.insert("__i".into(), Operand::Node(trig, 0));
        else_env.insert("__i".into(), Operand::Node(trig, 1));
        let mut get_trigger = |_: &mut Lowerer| -> NodeId { trig };

        // Lower the arms in their steered environments.
        std::mem::swap(&mut self.env, &mut then_env);
        self.lower_stmts(then_arm)?;
        std::mem::swap(&mut self.env, &mut then_env);
        std::mem::swap(&mut self.env, &mut else_env);
        self.lower_stmts(else_arm)?;
        std::mem::swap(&mut self.env, &mut else_env);

        // Merge definitions.
        let mut merged: Vec<String> = then_defs.clone();
        for v in &else_defs {
            if !merged.contains(v) {
                merged.push(v.clone());
            }
        }
        for v in &merged {
            let then_def = if then_defs.contains(v) {
                Some(then_env[v.as_str()])
            } else {
                steered.get(v).map(|&br| Operand::Node(br, 0))
            };
            let else_def = if else_defs.contains(v) {
                Some(else_env[v.as_str()])
            } else {
                steered.get(v).map(|&br| Operand::Node(br, 1))
            };

            let phi = self.dfg.add_node(Op::Phi, format!("phi_{v}")).id();
            if let Some(d) = then_def {
                let d = self.to_token(d, 0, &mut get_trigger);
                self.connect(d, phi, 0);
            }
            if let Some(d) = else_def {
                let d = self.to_token(d, 1, &mut get_trigger);
                self.connect(d, phi, 1);
            }
            self.env.insert(v.clone(), Operand::Node(phi, 0));
        }
        Ok(())
    }

    /// Convert an arm definition into a token stream: node values pass
    /// through; constants are gated on the arm's trigger token.
    // `to_` here converts the *operand*, not self; node creation needs
    // the mutable graph.
    #[allow(clippy::wrong_self_convention)]
    fn to_token(
        &mut self,
        d: Operand,
        arm_port: u8,
        get_trigger: &mut impl FnMut(&mut Lowerer) -> NodeId,
    ) -> Operand {
        match d {
            Operand::Node(..) => d,
            Operand::Const(c) => {
                let trig = get_trigger(self);
                self.materialize(c, Operand::Node(trig, arm_port))
            }
        }
    }
}

/// Lower a validated loop to a dataflow graph.
///
/// # Errors
///
/// Returns an [`IrError`] if validation or lowering fails.
///
/// # Examples
///
/// ```
/// use uecgra_compiler::ir::{Carried, Expr, LoopNest, Stmt};
/// use uecgra_compiler::frontend::lower;
///
/// // for (i = 0; i < 8; ++i) acc += mem[i];
/// let l = LoopNest {
///     var: "i".into(),
///     trip_count: 8,
///     carried: vec![Carried { name: "acc".into(), init: 0 }],
///     body: vec![Stmt::assign(
///         "acc",
///         Expr::add(Expr::var("acc"), Expr::load(Expr::var("i"))),
///     )],
/// };
/// let lowered = lower(&l).unwrap();
/// assert!(lowered.dfg.node_count() >= 6);
/// ```
pub fn lower(l: &LoopNest) -> Result<LoweredLoop, IrError> {
    l.validate()?;

    let mut lw = Lowerer {
        dfg: Dfg::new(),
        env: HashMap::new(),
    };

    // Induction recurrence: phi -> add -> lt -> br -> phi.
    let phi_i = lw.dfg.add_node(Op::Phi, &l.var).init(0).id();
    let add_i = lw
        .dfg
        .add_node(Op::Add, format!("{}+1", l.var))
        .constant(1)
        .id();
    let lt = lw
        .dfg
        .add_node(Op::Lt, format!("{}<N", l.var))
        .constant(l.trip_count)
        .id();
    let br_i = lw.dfg.add_node(Op::Br, format!("br_{}", l.var)).id();
    lw.dfg.connect(phi_i, add_i);
    lw.dfg.connect(add_i, lt);
    lw.dfg.connect_ports(add_i, 0, br_i, 0);
    lw.dfg.connect_ports(lt, 0, br_i, 1);
    lw.dfg.connect_ports(br_i, 0, phi_i, 1);
    lw.env.insert(l.var.clone(), Operand::Node(phi_i, 0));
    // Internal alias used by constant-addressed loads.
    lw.env.insert("__i".into(), Operand::Node(phi_i, 0));

    // Carried scalars.
    let mut carried_phis = HashMap::new();
    for c in &l.carried {
        let phi = lw.dfg.add_node(Op::Phi, &c.name).init(c.init).id();
        lw.env.insert(c.name.clone(), Operand::Node(phi, 0));
        carried_phis.insert(c.name.clone(), phi);
    }

    lw.lower_stmts(&l.body)?;

    // Close the carried recurrences with the end-of-body definitions,
    // steering each through the loop-exit condition: the value for
    // iteration k+1 re-enters its phi only while the loop continues,
    // exactly like the induction variable. Without this gate the phi
    // would emit one post-loop value and any consumer chain fed purely
    // by carried values (e.g. a constant-operand store) would run one
    // extra iteration.
    let mut carried_exits = HashMap::new();
    for c in &l.carried {
        let phi = carried_phis[&c.name];
        let def = lw.env[&c.name];
        let def = match def {
            Operand::Node(..) => def,
            Operand::Const(cval) => {
                // Carried scalar reassigned to a constant: gate it on
                // the induction stream so it arrives once per iteration.
                let i = lw.env["__i"];
                let imm = lw.dfg.add_node(Op::Cp1, "imm").constant(cval).id();
                lw.connect(i, imm, 0);
                Operand::Node(imm, 0)
            }
        };
        let gate = lw.dfg.add_node(Op::Br, format!("br_{}", c.name)).id();
        lw.connect(def, gate, 0);
        lw.dfg.connect_ports(lt, 0, gate, 1);
        lw.dfg.connect_ports(gate, 0, phi, 1);
        carried_exits.insert(c.name.clone(), gate);
    }

    lw.dfg
        .validate()
        .expect("lowering must produce a valid graph");
    Ok(LoweredLoop {
        dfg: lw.dfg,
        induction_phi: phi_i,
        carried_phis,
        carried_exits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Carried, Stmt};
    use uecgra_clock::VfMode;
    use uecgra_model::{DfgSimulator, SimConfig, StopReason};

    fn simulate(lowered: &LoweredLoop, mem: Vec<u32>) -> Vec<u32> {
        let config = SimConfig {
            marker: Some(lowered.induction_phi),
            ..SimConfig::default()
        };
        let modes = vec![VfMode::Nominal; lowered.dfg.node_count()];
        let r = DfgSimulator::new(&lowered.dfg, modes, mem, config).run();
        assert_eq!(r.stop, StopReason::Quiesced, "lowered loop must terminate");
        r.mem
    }

    #[test]
    fn accumulate_loop_computes_prefix_sums() {
        // for (i=0; i<8; ++i) { acc += mem[i]; mem[16+i] = acc; }
        let l = LoopNest {
            var: "i".into(),
            trip_count: 8,
            carried: vec![Carried {
                name: "acc".into(),
                init: 0,
            }],
            body: vec![
                Stmt::assign(
                    "acc",
                    Expr::add(Expr::var("acc"), Expr::load(Expr::var("i"))),
                ),
                Stmt::Store {
                    addr: Expr::add(Expr::var("i"), Expr::Const(16)),
                    value: Expr::var("acc"),
                },
            ],
        };
        let lowered = lower(&l).unwrap();
        let mut mem = vec![0u32; 32];
        for i in 0..8 {
            mem[i] = (i as u32) + 1;
        }
        let out = simulate(&lowered, mem);
        let mut acc = 0;
        for i in 0..8 {
            acc += (i as u32) + 1;
            assert_eq!(out[16 + i], acc, "prefix sum at {i}");
        }
    }

    #[test]
    fn if_else_lowering_matches_dither_reference() {
        use uecgra_dfg::kernels::dither;
        let n = 64;
        let src = dither::SRC_BASE;
        let dst = dither::dst_base(n);
        let l = LoopNest {
            var: "i".into(),
            trip_count: n as u32,
            carried: vec![Carried {
                name: "err".into(),
                init: 0,
            }],
            body: vec![
                Stmt::assign(
                    "out",
                    Expr::add(
                        Expr::load(Expr::add(Expr::var("i"), Expr::Const(src))),
                        Expr::var("err"),
                    ),
                ),
                Stmt::If {
                    cond: Expr::bin(Op::Gt, Expr::var("out"), Expr::Const(127)),
                    then_arm: vec![
                        Stmt::assign("pixel", Expr::Const(255)),
                        Stmt::assign(
                            "err",
                            Expr::bin(Op::Sub, Expr::var("out"), Expr::Const(255)),
                        ),
                    ],
                    else_arm: vec![
                        Stmt::assign("pixel", Expr::Const(0)),
                        Stmt::assign("err", Expr::var("out")),
                    ],
                },
                Stmt::Store {
                    addr: Expr::add(Expr::var("i"), Expr::Const(dst)),
                    value: Expr::var("pixel"),
                },
            ],
        };
        let lowered = lower(&l).unwrap();
        // Run on the same memory image the hand-built kernel uses.
        let k = dither::build_with_pixels(n);
        let out = simulate(&lowered, k.mem.clone());
        assert_eq!(
            out,
            dither::reference(&k.mem, n),
            "IR-lowered dither diverges"
        );
    }

    #[test]
    fn constant_condition_folds_to_taken_arm() {
        let l = LoopNest {
            var: "i".into(),
            trip_count: 4,
            carried: vec![],
            body: vec![Stmt::If {
                cond: Expr::Const(1),
                then_arm: vec![Stmt::Store {
                    addr: Expr::add(Expr::var("i"), Expr::Const(8)),
                    value: Expr::var("i"),
                }],
                else_arm: vec![Stmt::Store {
                    addr: Expr::add(Expr::var("i"), Expr::Const(16)),
                    value: Expr::var("i"),
                }],
            }],
        };
        let lowered = lower(&l).unwrap();
        let out = simulate(&lowered, vec![0; 32]);
        for i in 0..4u32 {
            assert_eq!(out[8 + i as usize], i, "then-arm ran");
            assert_eq!(out[16 + i as usize], 0, "else-arm folded away");
        }
    }

    #[test]
    fn binary_constant_folding() {
        // x = (3+4)*i: the 3+4 must fold into the mul's immediate.
        let l = LoopNest {
            var: "i".into(),
            trip_count: 4,
            carried: vec![],
            body: vec![
                Stmt::assign(
                    "x",
                    Expr::bin(
                        Op::Mul,
                        Expr::add(Expr::Const(3), Expr::Const(4)),
                        Expr::var("i"),
                    ),
                ),
                Stmt::Store {
                    addr: Expr::add(Expr::var("i"), Expr::Const(8)),
                    value: Expr::var("x"),
                },
            ],
        };
        let lowered = lower(&l).unwrap();
        // No add node materialized for 3+4.
        let adds = lowered.dfg.nodes().filter(|(_, n)| n.op == Op::Add).count();
        assert_eq!(adds, 2, "only i+1 and i+8 remain");
        let out = simulate(&lowered, vec![0; 16]);
        for i in 0..4u32 {
            assert_eq!(out[8 + i as usize], 7 * i);
        }
    }

    #[test]
    fn induction_recurrence_is_four_ops() {
        let l = LoopNest {
            var: "i".into(),
            trip_count: 16,
            carried: vec![],
            body: vec![Stmt::Store {
                addr: Expr::var("i"),
                value: Expr::var("i"),
            }],
        };
        let lowered = lower(&l).unwrap();
        assert_eq!(uecgra_dfg::analysis::recurrence_mii(&lowered.dfg), 4.0);
    }

    #[test]
    fn lowering_rejects_invalid_ir() {
        let l = LoopNest {
            var: "i".into(),
            trip_count: 4,
            carried: vec![],
            body: vec![Stmt::assign("x", Expr::var("ghost"))],
        };
        assert!(matches!(lower(&l), Err(IrError::UndefinedVar(_))));
    }
}

//! The three-phase power-mapping pass (paper Section III, Figure 5).
//!
//! Selects a DVFS mode (rest / nominal / sprint) for every DFG node:
//!
//! 1. **Complexity reduction** — singly-connected chains are grouped
//!    into single logical power domains ([`Grouping::chains`]),
//!    shrinking the search from `O(M^N)` toward `O(N·M)`.
//! 2. **Energy-delay optimization** — groups start at the seed mode
//!    (all-sprint for a performance-optimized mapping, all-nominal for
//!    an energy-optimized one) and are greedily rested — most
//!    power-hungry groups first — keeping each change only when
//!    `MeasureEnergyDelay` does not regress the best energy-delay
//!    product seen so far.
//! 3. **Constraint** — logical nodes folded onto one physical PE must
//!    share a mode; a small energy-delay search picks the winner.
//!    Additionally, unused PEs that carry bypass routes are woken at
//!    the fastest mode of the streams they carry (a power-gated PE
//!    cannot forward data).

use crate::mapping::MappedKernel;
use std::collections::HashMap;
use uecgra_clock::VfMode;
use uecgra_dfg::analysis::Grouping;
use uecgra_dfg::{Dfg, NodeId};
use uecgra_model::{EnergyDelay, EnergyDelayEstimator};

/// Whether the seed configuration maximizes performance (all-sprint,
/// the paper's "POpt") or energy (all-nominal, "EOpt").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Objective {
    /// Seed all groups at sprint; trade speed for efficiency only when
    /// EDP improves.
    Performance,
    /// Seed all groups at nominal; resting is the only downward move.
    Energy,
}

impl Objective {
    fn seed(self) -> VfMode {
        match self {
            Objective::Performance => VfMode::Sprint,
            Objective::Energy => VfMode::Nominal,
        }
    }
}

/// The result of power mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerMapping {
    /// The optimization objective used for seeding.
    pub objective: Objective,
    /// Selected mode per DFG node.
    pub node_modes: Vec<VfMode>,
    /// The all-nominal (E-CGRA-equivalent) measurement.
    pub baseline: EnergyDelay,
    /// The optimized configuration's measurement.
    pub optimized: EnergyDelay,
}

impl PowerMapping {
    /// Speedup over the all-nominal elastic baseline.
    pub fn speedup(&self) -> f64 {
        self.optimized.speedup_over(&self.baseline)
    }

    /// Energy-efficiency gain over the all-nominal elastic baseline.
    pub fn efficiency(&self) -> f64 {
        self.optimized.efficiency_over(&self.baseline)
    }
}

/// Run phases 1–2 of the power-mapping pass on a logical DFG.
///
/// `mem` and `marker` parameterize the `MeasureEnergyDelay` estimator
/// (the DFG's scratchpad image and iteration-counting node).
pub fn power_map(dfg: &Dfg, mem: Vec<u32>, marker: NodeId, objective: Objective) -> PowerMapping {
    power_map_routed(dfg, mem, marker, objective, &[])
}

/// Routing-aware variant of [`power_map`]: `edge_extra_hops` gives the
/// routed bypass-hop count of each edge (from
/// [`MappedKernel::extra_hops`]), so `MeasureEnergyDelay` sees the
/// physical recurrence lengths instead of the logical ones. This is
/// the minimal form of the iterative physically-constrained mapping
/// the paper describes as future work; it lets the pass rest groups
/// whose slack only exists after routing.
pub fn power_map_routed(
    dfg: &Dfg,
    mem: Vec<u32>,
    marker: NodeId,
    objective: Objective,
    edge_extra_hops: &[u32],
) -> PowerMapping {
    let estimator =
        EnergyDelayEstimator::new(dfg, mem, marker).with_edge_latency(edge_extra_hops.to_vec());
    let baseline = estimator.measure(&vec![VfMode::Nominal; dfg.node_count()]);

    // Phase 1: complexity reduction.
    let grouping = Grouping::chains(dfg);
    let groups: Vec<usize> = (0..grouping.len())
        .filter(|&g| {
            grouping
                .members(g)
                .iter()
                .all(|&n| !dfg.node(n).op.is_pseudo())
        })
        .collect();

    // Greedy order: largest potential energy savings first. A group's
    // potential is the relative energy of its ops (memory ops include
    // their SRAM subbank access).
    let params = estimator.params().clone();
    let mut ordered = groups.clone();
    let group_power = |g: usize| -> f64 {
        grouping
            .members(g)
            .iter()
            .map(|&n| {
                let op = dfg.node(n).op;
                op.alpha()
                    + if op.is_memory() {
                        params.alpha_sram
                    } else {
                        0.0
                    }
            })
            .sum()
    };
    ordered.sort_by(|&a, &b| {
        group_power(b)
            .partial_cmp(&group_power(a))
            .expect("finite power")
            .then(a.cmp(&b))
    });

    // Phase 2: energy-delay optimization. Group modes live in a plain
    // vector indexed by group id — no hash-map iteration anywhere in
    // the pass, so the result cannot depend on hasher state even if a
    // future edit iterates the collection.
    let expand = |group_modes: &[VfMode]| -> Vec<VfMode> {
        (0..dfg.node_count())
            .map(|i| {
                let node = NodeId::from_index(i);
                if dfg.node(node).op.is_pseudo() {
                    VfMode::Nominal
                } else {
                    group_modes[grouping.group_of(node)]
                }
            })
            .collect()
    };

    let seed = objective.seed();
    let mut group_modes: Vec<VfMode> = vec![seed; grouping.len()];
    let mut best = estimator.measure(&expand(&group_modes));

    for &g in &ordered {
        let original = group_modes[g];
        let mut accepted = false;
        for candidate in [VfMode::Rest, VfMode::Nominal] {
            if candidate == original {
                break; // nominal seed: trying nominal again is a no-op
            }
            group_modes[g] = candidate;
            let measured = estimator.measure(&expand(&group_modes));
            if measured.edp_gain_over(&best) >= 1.0 {
                best = measured;
                accepted = true;
                break;
            }
        }
        if !accepted {
            group_modes[g] = original;
        }
    }

    PowerMapping {
        objective,
        node_modes: expand(&group_modes),
        baseline,
        optimized: best,
    }
}

/// Phase 3 (`ConstrainPEModes`): reconcile modes of logical nodes that
/// share a physical PE, picking each PE's mode with a small
/// energy-delay search. `assignment` maps each fabric node to an
/// opaque PE key; nodes sharing a key must share a mode.
pub fn constrain_folded(
    _dfg: &Dfg,
    estimator: &EnergyDelayEstimator<'_>,
    node_modes: &[VfMode],
    assignment: &HashMap<NodeId, usize>,
) -> Vec<VfMode> {
    let mut modes = node_modes.to_vec();
    // Gather PEs with conflicting node modes. `assignment` is a hash
    // map, so its iteration order is arbitrary: sort the pairs by
    // (PE, node) before grouping, making the walk — and therefore the
    // measurement sequence — independent of hasher state.
    let mut pairs: Vec<(usize, NodeId)> = assignment.iter().map(|(&n, &pe)| (pe, n)).collect();
    pairs.sort();
    let mut by_pe: std::collections::BTreeMap<usize, Vec<NodeId>> =
        std::collections::BTreeMap::new();
    for (pe, node) in pairs {
        by_pe.entry(pe).or_default().push(node);
    }
    for (_, nodes) in by_pe {
        let first = modes[nodes[0].index()];
        if nodes.iter().all(|n| modes[n.index()] == first) {
            continue;
        }
        // Conflict: search all three shared modes.
        let mut best_mode = first;
        let mut best_ed: Option<EnergyDelay> = None;
        for candidate in VfMode::ALL {
            let mut trial = modes.clone();
            for n in &nodes {
                trial[n.index()] = candidate;
            }
            let ed = estimator.measure(&trial);
            let better = match &best_ed {
                None => true,
                Some(b) => ed.edp_gain_over(b) > 1.0,
            };
            if better {
                best_ed = Some(ed);
                best_mode = candidate;
            }
        }
        for n in &nodes {
            modes[n.index()] = best_mode;
        }
    }
    modes
}

/// Per-PE clock selections for a mapped kernel: op PEs take their
/// node's mode; unused PEs that carry bypass routes wake at the fastest
/// mode among the streams they forward (phase 3's routing constraint);
/// remaining PEs are power-gated (`None`).
pub fn pe_clock_grid(
    dfg: &Dfg,
    mapped: &MappedKernel,
    node_modes: &[VfMode],
) -> Vec<Vec<Option<VfMode>>> {
    let mut grid: Vec<Vec<Option<VfMode>>> =
        vec![vec![None; mapped.shape.width]; mapped.shape.height];
    for (id, node) in dfg.nodes() {
        if node.op.is_pseudo() {
            continue;
        }
        let (x, y) = mapped.coord_of(id);
        grid[y][x] = Some(node_modes[id.index()]);
    }
    for net in &mapped.routing.nets {
        // A net's pace is set by its producer and consumers; forwarding
        // PEs must run at least as fast as the fastest endpoint to
        // avoid throttling the stream.
        let mut stream_mode = node_modes[net.src.index()];
        for &eid in &net.edges {
            let dst = dfg.edge(eid).dst;
            stream_mode = stream_mode.max(node_modes[dst.index()]);
        }
        // `net.parent` is a hash map; sort + dedup the forwarding set
        // so the merge below visits PEs in a fixed order. (The max
        // merge is order-independent, but a fixed order keeps the loop
        // robust against non-commutative edits.)
        let mut forwarding: Vec<_> = net
            .parent
            .values()
            .copied()
            .filter(|&c| c != net.root)
            .collect();
        forwarding.sort();
        forwarding.dedup();
        for (x, y) in forwarding {
            grid[y][x] = Some(match grid[y][x] {
                None => stream_mode,
                Some(m) => m.max(stream_mode),
            });
        }
    }
    grid
}

/// A search-free, slack-directed power mapper (the deterministic
/// alternative the paper hints at under "more sophisticated
/// variations"). Works directly from the routed cycle structure:
///
/// * **Performance objective** — repeatedly sprint every node of the
///   currently binding cycles until the binding set is fully sprinted
///   (the fixed point of "accelerate the critical recurrence"), then
///   rest everything whose slack under the final initiation interval
///   tolerates the 3× rest slowdown.
/// * **Energy objective** — no sprinting; rest every node whose cycles
///   (if any) stay within the critical II when slowed.
///
/// `edge_extra_hops` gives routed bypass hops per edge (use `&[]` for
/// the logical graph). Pseudo-ops stay nominal.
///
/// The cycle analysis cannot see buffer-bound throughput (a rested
/// branch of a fork-join can stall its sibling through the two-entry
/// queues), so the pass verifies its candidate against the
/// sprint-only assignment with one simulation each and keeps the
/// better energy-delay product — still one to two orders of magnitude
/// fewer measurements than the search-based pass.
pub fn power_map_slack(
    dfg: &Dfg,
    mem: Vec<u32>,
    marker: NodeId,
    edge_extra_hops: &[u32],
    objective: Objective,
) -> Vec<VfMode> {
    use uecgra_dfg::analysis::simple_cycles;

    let hop = |e: uecgra_dfg::EdgeId| -> f64 {
        1.0 + edge_extra_hops.get(e.index()).copied().unwrap_or(0) as f64
    };
    let latency = |m: VfMode| -> f64 {
        match m {
            VfMode::Rest => 3.0,
            VfMode::Nominal => 1.0,
            VfMode::Sprint => 2.0 / 3.0,
        }
    };

    let cycles = simple_cycles(dfg);
    // Routed ratio of a cycle under a mode assignment: each hop a→b is
    // paced by the consumer's clock over its routed length.
    let ratio = |cycle: &uecgra_dfg::analysis::Cycle, modes: &[VfMode]| -> f64 {
        let nodes = &cycle.nodes;
        let mut len = 0.0;
        for (k, &a) in nodes.iter().enumerate() {
            let b = nodes[(k + 1) % nodes.len()];
            let hops = dfg
                .outputs(a)
                .filter(|(_, e)| e.dst == b)
                .map(|(id, _)| hop(id))
                .fold(f64::INFINITY, f64::min);
            let hops = if hops.is_finite() { hops } else { 1.0 };
            len += hops * latency(modes[b.index()]);
        }
        len / cycle.tokens(dfg).max(1) as f64
    };

    let mut modes = vec![VfMode::Nominal; dfg.node_count()];

    // Performance: sprint binding cycles to a fixed point.
    if objective == Objective::Performance && !cycles.is_empty() {
        for _ in 0..cycles.len() + 1 {
            let ratios: Vec<f64> = cycles.iter().map(|c| ratio(c, &modes)).collect();
            let ii = ratios.iter().copied().fold(0.0f64, f64::max);
            let mut changed = false;
            for (c, r) in cycles.iter().zip(&ratios) {
                if *r >= ii - 1e-9 {
                    for n in &c.nodes {
                        if modes[n.index()] != VfMode::Sprint {
                            modes[n.index()] = VfMode::Sprint;
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    let ii_final = cycles
        .iter()
        .map(|c| ratio(c, &modes))
        .fold(0.0f64, f64::max);

    // Rest pass: try each non-sprinted node; keep the rest only if no
    // cycle through it exceeds the final II and the II tolerates a
    // 3-cycle occupancy.
    for (id, node) in dfg.nodes() {
        if node.op.is_pseudo() || modes[id.index()] == VfMode::Sprint {
            continue;
        }
        if ii_final < 3.0 {
            continue;
        }
        modes[id.index()] = VfMode::Rest;
        let ok = cycles
            .iter()
            .filter(|c| c.nodes.contains(&id))
            .all(|c| ratio(c, &modes) <= ii_final + 1e-9);
        if !ok {
            modes[id.index()] = VfMode::Nominal;
        }
    }

    // Buffer-boundedness check: compare against the rest-free variant.
    let no_rest: Vec<VfMode> = modes
        .iter()
        .map(|&m| {
            if m == VfMode::Rest {
                VfMode::Nominal
            } else {
                m
            }
        })
        .collect();
    if modes == no_rest {
        return modes;
    }
    let estimator = EnergyDelayEstimator::new(dfg, mem, marker)
        .with_edge_latency(edge_extra_hops.to_vec())
        .with_iterations(48);
    let with_rest = estimator.measure(&modes);
    let without = estimator.measure(&no_rest);
    if with_rest.edp_gain_over(&without) >= 1.0 {
        modes
    } else {
        no_rest
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uecgra_dfg::kernels::{self, synthetic};

    #[test]
    fn popt_on_fig2_sprints_the_cycle() {
        let toy = synthetic::fig2_toy();
        let pm = power_map(
            &toy.dfg,
            vec![0; 2048],
            toy.iter_marker,
            Objective::Performance,
        );
        assert!(pm.speedup() > 1.3, "POpt speedup {}", pm.speedup());
        for c in toy.cycle {
            assert_eq!(pm.node_modes[c.index()], VfMode::Sprint, "cycle sprints");
        }
        // The feeder chain is non-critical: it must not stay at sprint.
        for a in toy.a_chain {
            assert_ne!(pm.node_modes[a.index()], VfMode::Sprint, "feeders rest");
        }
    }

    #[test]
    fn eopt_on_fig2_improves_efficiency_without_slowdown() {
        let toy = synthetic::fig2_toy();
        let pm = power_map(&toy.dfg, vec![0; 2048], toy.iter_marker, Objective::Energy);
        assert!(pm.efficiency() > 1.0, "EOpt efficiency {}", pm.efficiency());
        assert!(pm.speedup() > 0.9, "EOpt speedup {}", pm.speedup());
    }

    #[test]
    fn popt_on_llist_matches_paper_band() {
        // Paper Table II: llist POpt = 1.49x perf at 1.09x efficiency.
        let k = kernels::llist::build_with_hops(200);
        let pm = power_map(&k.dfg, k.mem.clone(), k.iter_marker, Objective::Performance);
        assert!(
            pm.speedup() > 1.35 && pm.speedup() <= 1.55,
            "llist POpt speedup {}",
            pm.speedup()
        );
    }

    #[test]
    fn eopt_never_loses_edp_to_baseline_seed() {
        for k in [
            kernels::llist::build_with_hops(200),
            kernels::dither::build_with_pixels(200),
        ] {
            let pm = power_map(&k.dfg, k.mem.clone(), k.iter_marker, Objective::Energy);
            // Phase 2 guarantees EDP no worse than the all-nominal seed.
            assert!(
                pm.optimized.edp_gain_over(&pm.baseline) >= 1.0,
                "{}: EDP regressed",
                k.name
            );
        }
    }

    #[test]
    fn power_mapping_is_deterministic() {
        let k = kernels::dither::build_with_pixels(100);
        let a = power_map(&k.dfg, k.mem.clone(), k.iter_marker, Objective::Performance);
        let b = power_map(&k.dfg, k.mem.clone(), k.iter_marker, Objective::Performance);
        assert_eq!(a.node_modes, b.node_modes);
    }

    #[test]
    fn constrain_folded_unifies_conflicts() {
        let toy = synthetic::fig2_toy();
        let estimator = EnergyDelayEstimator::new(&toy.dfg, vec![0; 2048], toy.iter_marker);
        let mut modes = vec![VfMode::Nominal; toy.dfg.node_count()];
        modes[toy.cycle[0].index()] = VfMode::Sprint;
        // Fold a sprint node and a nominal node onto one PE.
        let assignment: HashMap<NodeId, usize> =
            [(toy.cycle[0], 0), (toy.cycle[1], 0)].into_iter().collect();
        let constrained = constrain_folded(&toy.dfg, &estimator, &modes, &assignment);
        assert_eq!(
            constrained[toy.cycle[0].index()],
            constrained[toy.cycle[1].index()],
            "folded nodes share one mode"
        );
    }

    /// The assignment as an `R`/`N`/`S` letter string, one per node.
    fn mode_string(modes: &[VfMode]) -> String {
        modes
            .iter()
            .map(|m| match m {
                VfMode::Rest => 'R',
                VfMode::Nominal => 'N',
                VfMode::Sprint => 'S',
            })
            .collect()
    }

    #[test]
    fn table2_assignments_are_pinned() {
        // Golden per-node mode strings for every Table II kernel under
        // the routed greedy pass (both objectives) and the slack pass,
        // seed 7. These pin the exact search trajectory: any
        // map-iteration-order dependence, tie-break change, or model
        // drift shows up as a changed letter, not as a silent
        // different-but-plausible assignment. Regenerate by printing
        // `mode_string(...)` here if the model intentionally changes.
        use crate::mapping::{ArrayShape, MappedKernel};
        use uecgra_dfg::kernels;
        let pins: [(&str, &str, &str, &str); 5] = [
            ("llist", "SSSNSSRN", "NNNRNNRN", "SSSNSSRN"),
            (
                "dither",
                "NNNNRRSSSSSRRRN",
                "NNRNRRNNNNNRRRN",
                "NNNNRRSSSSNRRRN",
            ),
            (
                "susan",
                "SSSSRRRRRRRNNNNNRRRRN",
                "NNNNRRRRRRRRNNRRRRRRN",
                "SSSSRRRRRRRRNNNNRRRRN",
            ),
            (
                "fft",
                "SSSSNSNNNNNNSNNNNNNNNNNNNN",
                "NNNNNNNNRNRRNNRRNRNNNNRRNR",
                "SSSSNNNNNNNNNNNNNNNNNNNNNN",
            ),
            (
                "bf",
                "NRRNRRSRSSNNSSSSSNNSSSSSSSSSSRRN",
                "RRRRRRNRNNNNNNNNNNNNNNNNNNNNNRRN",
                "RRRNRRSRSSNNSSSSSNNSSSSSSSSSSRRN",
            ),
        ];
        for (k, (name, popt, eopt, slack)) in kernels::all_kernels().iter().zip(pins) {
            assert_eq!(k.name, name);
            let mapped = MappedKernel::map(&k.dfg, ArrayShape::default(), 7).unwrap();
            let extra: Vec<u32> = k.dfg.edges().map(|(id, _)| mapped.extra_hops(id)).collect();
            let got_popt = power_map_routed(
                &k.dfg,
                k.mem.clone(),
                k.iter_marker,
                Objective::Performance,
                &extra,
            );
            assert_eq!(mode_string(&got_popt.node_modes), popt, "{name} POpt");
            let got_eopt = power_map_routed(
                &k.dfg,
                k.mem.clone(),
                k.iter_marker,
                Objective::Energy,
                &extra,
            );
            assert_eq!(mode_string(&got_eopt.node_modes), eopt, "{name} EOpt");
            let got_slack = power_map_slack(
                &k.dfg,
                k.mem.clone(),
                k.iter_marker,
                &extra,
                Objective::Performance,
            );
            assert_eq!(mode_string(&got_slack), slack, "{name} slack");
        }
    }

    #[test]
    fn bypass_pes_wake_at_stream_mode() {
        use crate::mapping::{ArrayShape, MappedKernel};
        let k = kernels::fft::build_with_group(16);
        let mapped = MappedKernel::map(&k.dfg, ArrayShape::default(), 9).unwrap();
        let pm = power_map(&k.dfg, k.mem.clone(), k.iter_marker, Objective::Performance);
        let grid = pe_clock_grid(&k.dfg, &mapped, &pm.node_modes);
        // Every intermediate hop of every route must be awake.
        for (eid, _) in k.dfg.edges() {
            let path = &mapped.route(eid).path;
            if path.len() > 2 {
                for &(x, y) in &path[1..path.len() - 1] {
                    assert!(grid[y][x].is_some(), "bypass PE ({x},{y}) gated");
                }
            }
        }
        // And op PEs carry their node's mode unless bumped by a stream.
        for (id, n) in k.dfg.nodes() {
            if n.op.is_pseudo() {
                continue;
            }
            let (x, y) = mapped.coord_of(id);
            assert!(grid[y][x] >= Some(pm.node_modes[id.index()]));
        }
    }
}

//! Text frontend: a C-like mini-language for innermost loops.
//!
//! The paper's compiler consumes C through LLVM; this reproduction's
//! equivalent surface syntax covers the same shapes (Figure 9's
//! kernels): array declarations with base addresses, one counted loop
//! with loop-carried scalars, assignments, loads/stores through array
//! indexing, and a structured `if/else`.
//!
//! ```text
//! array src @ 16;
//! array dst @ 1048;
//! for i in 0..1000 carry (err = 0) {
//!     let out = src[i] + err;
//!     if (out > 127) {
//!         dst[i] = 255;
//!         err = out - 255;
//!     } else {
//!         dst[i] = 0;
//!         err = out;
//!     }
//! }
//! ```
//!
//! Parsing produces a [`Program`]: the array symbol table plus a
//! [`LoopNest`] ready for [`crate::frontend::lower`].

use crate::ir::{Carried, Expr, LoopNest, Stmt};
use std::collections::HashMap;
use std::fmt;
use uecgra_dfg::Op;

/// A parsed program: array bases plus the loop.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Array name → base word address.
    pub arrays: HashMap<String, u32>,
    /// The loop, with array accesses lowered to address arithmetic.
    pub nest: LoopNest,
}

/// Parse errors with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the source.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Num(u32),
    Sym(&'static str),
    Kw(&'static str),
}

const KEYWORDS: [&str; 7] = ["array", "for", "in", "carry", "let", "if", "else"];
const SYMBOLS: [&str; 20] = [
    "..", "==", "!=", ">=", "<=", ">>", "<<", "@", ";", ",", "(", ")", "{", "}", "[", "]", "=",
    "+", "-", ">",
];
const MORE_SYMBOLS: [&str; 5] = ["<", "*", "&", "|", "^"];

fn tokenize(src: &str) -> Result<Vec<(usize, Tok)>, ParseError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    'outer: while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c == '/' && bytes.get(i + 1) == Some(&b'/') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let word = &src[start..i];
            let tok = if KEYWORDS.contains(&word) {
                Tok::Kw(KEYWORDS.iter().find(|k| **k == word).expect("keyword"))
            } else {
                Tok::Ident(word.to_string())
            };
            toks.push((start, tok));
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            let mut value: u64 = 0;
            if c == '0' && bytes.get(i + 1) == Some(&b'x') {
                i += 2;
                while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
                    value = value * 16 + u64::from((bytes[i] as char).to_digit(16).expect("hex"));
                    i += 1;
                }
            } else {
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    value = value * 10 + u64::from(bytes[i] - b'0');
                    i += 1;
                }
            }
            if value > u64::from(u32::MAX) {
                return Err(ParseError {
                    offset: start,
                    message: "integer literal exceeds 32 bits".into(),
                });
            }
            toks.push((start, Tok::Num(value as u32)));
            continue;
        }
        for sym in SYMBOLS.iter().chain(MORE_SYMBOLS.iter()) {
            if src[i..].starts_with(sym) {
                toks.push((i, Tok::Sym(sym)));
                i += sym.len();
                continue 'outer;
            }
        }
        return Err(ParseError {
            offset: i,
            message: format!("unexpected character `{c}`"),
        });
    }
    Ok(toks)
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    pos: usize,
    arrays: HashMap<String, u32>,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn offset(&self) -> usize {
        self.toks
            .get(self.pos)
            .map(|(o, _)| *o)
            .unwrap_or(usize::MAX)
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.offset(),
            message: message.into(),
        }
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        self.pos += 1;
        t
    }

    fn expect_sym(&mut self, sym: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Tok::Sym(s)) if s == sym => Ok(()),
            other => Err(ParseError {
                offset: self.toks.get(self.pos - 1).map(|(o, _)| *o).unwrap_or(0),
                message: format!("expected `{sym}`, found {other:?}"),
            }),
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Tok::Kw(k)) if k == kw => Ok(()),
            other => Err(ParseError {
                offset: self.toks.get(self.pos - 1).map(|(o, _)| *o).unwrap_or(0),
                message: format!("expected `{kw}`, found {other:?}"),
            }),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(ParseError {
                offset: self.toks.get(self.pos - 1).map(|(o, _)| *o).unwrap_or(0),
                message: format!("expected identifier, found {other:?}"),
            }),
        }
    }

    fn expect_num(&mut self) -> Result<u32, ParseError> {
        match self.next() {
            Some(Tok::Num(n)) => Ok(n),
            other => Err(ParseError {
                offset: self.toks.get(self.pos - 1).map(|(o, _)| *o).unwrap_or(0),
                message: format!("expected number, found {other:?}"),
            }),
        }
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Sym(s)) if *s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Kw(k)) if *k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    // Expression grammar (loosest to tightest):
    // cmp:  add (==|!=|>|>=|<|<= add)?
    // add:  mulg ((+|-|&,|,^) mulg)*
    // mulg: shift (* shift)*
    // shift: atom ((<<|>>) atom)*
    // atom: num | ident | ident[expr] | (cmp)
    fn expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Some(Tok::Sym("==")) => Some(Op::Eq),
            Some(Tok::Sym("!=")) => Some(Op::Ne),
            Some(Tok::Sym(">=")) => Some(Op::Geq),
            Some(Tok::Sym("<=")) => Some(Op::Leq),
            Some(Tok::Sym(">")) => Some(Op::Gt),
            Some(Tok::Sym("<")) => Some(Op::Lt),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.add_expr()?;
            return Ok(Expr::bin(op, lhs, rhs));
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Sym("+")) => Op::Add,
                Some(Tok::Sym("-")) => Op::Sub,
                Some(Tok::Sym("&")) => Op::And,
                Some(Tok::Sym("|")) => Op::Or,
                Some(Tok::Sym("^")) => Op::Xor,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.mul_expr()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.shift_expr()?;
        while matches!(self.peek(), Some(Tok::Sym("*"))) {
            self.pos += 1;
            let rhs = self.shift_expr()?;
            lhs = Expr::bin(Op::Mul, lhs, rhs);
        }
        Ok(lhs)
    }

    fn shift_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.atom()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Sym("<<")) => Op::Sll,
                Some(Tok::Sym(">>")) => Op::Srl,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.atom()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        match self.next() {
            Some(Tok::Num(n)) => Ok(Expr::Const(n)),
            Some(Tok::Ident(name)) => {
                if self.eat_sym("[") {
                    let idx = self.expr()?;
                    self.expect_sym("]")?;
                    let base = *self.arrays.get(&name).ok_or_else(|| ParseError {
                        offset: self.offset(),
                        message: format!("undeclared array `{name}`"),
                    })?;
                    Ok(Expr::load(Expr::add(idx, Expr::Const(base))))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            Some(Tok::Sym("(")) => {
                let e = self.expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            other => Err(ParseError {
                offset: self.toks.get(self.pos - 1).map(|(o, _)| *o).unwrap_or(0),
                message: format!("expected expression, found {other:?}"),
            }),
        }
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        if self.eat_kw("if") {
            self.expect_sym("(")?;
            let cond = self.expr()?;
            self.expect_sym(")")?;
            let then_arm = self.block()?;
            let else_arm = if self.eat_kw("else") {
                self.block()?
            } else {
                Vec::new()
            };
            return Ok(Stmt::If {
                cond,
                then_arm,
                else_arm,
            });
        }
        // `let x = e;` or `x = e;` or `arr[e] = e;`
        let _ = self.eat_kw("let");
        let name = self.expect_ident()?;
        if self.eat_sym("[") {
            let idx = self.expr()?;
            self.expect_sym("]")?;
            self.expect_sym("=")?;
            let value = self.expr()?;
            self.expect_sym(";")?;
            let base = *self.arrays.get(&name).ok_or_else(|| ParseError {
                offset: self.offset(),
                message: format!("undeclared array `{name}`"),
            })?;
            return Ok(Stmt::Store {
                addr: Expr::add(idx, Expr::Const(base)),
                value,
            });
        }
        self.expect_sym("=")?;
        let value = self.expr()?;
        self.expect_sym(";")?;
        Ok(Stmt::Assign(name, value))
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect_sym("{")?;
        let mut stmts = Vec::new();
        while !self.eat_sym("}") {
            if self.peek().is_none() {
                return Err(self.err("unterminated block"));
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }
}

/// Parse a program.
///
/// # Errors
///
/// Returns a [`ParseError`] with a byte offset on malformed input; the
/// resulting [`LoopNest`] is additionally validated by the IR rules.
///
/// # Examples
///
/// ```
/// use uecgra_compiler::parse::parse;
///
/// let program = parse(
///     "array a @ 8;\n\
///      for i in 0..4 carry (acc = 0) { acc = acc + a[i]; }",
/// ).unwrap();
/// assert_eq!(program.arrays["a"], 8);
/// assert_eq!(program.nest.trip_count, 4);
/// ```
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let toks = tokenize(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        arrays: HashMap::new(),
    };

    // Array declarations.
    while p.eat_kw("array") {
        let name = p.expect_ident()?;
        p.expect_sym("@")?;
        let base = p.expect_num()?;
        p.expect_sym(";")?;
        p.arrays.insert(name, base);
    }

    // The loop header.
    p.expect_kw("for")?;
    let var = p.expect_ident()?;
    p.expect_kw("in")?;
    let start = p.expect_num()?;
    if start != 0 {
        return Err(p.err("loops must start at 0"));
    }
    p.expect_sym("..")?;
    let trip_count = p.expect_num()?;
    let mut carried = Vec::new();
    if p.eat_kw("carry") {
        p.expect_sym("(")?;
        loop {
            let name = p.expect_ident()?;
            p.expect_sym("=")?;
            let init = p.expect_num()?;
            carried.push(Carried { name, init });
            if !p.eat_sym(",") {
                break;
            }
        }
        p.expect_sym(")")?;
    }
    let body = p.block()?;
    if p.peek().is_some() {
        return Err(p.err("trailing tokens after the loop"));
    }

    let nest = LoopNest {
        var,
        trip_count,
        carried,
        body,
    };
    nest.validate().map_err(|e| ParseError {
        offset: 0,
        message: e.to_string(),
    })?;
    Ok(Program {
        arrays: p.arrays,
        nest,
    })
}

/// Render a [`Program`] back to source text (the inverse of
/// [`parse`], up to whitespace and redundant parentheses — the
/// round-trip `parse(unparse(p))` reproduces `p` exactly).
pub fn unparse(program: &Program) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut arrays: Vec<(&String, &u32)> = program.arrays.iter().collect();
    arrays.sort();
    for (name, base) in arrays {
        let _ = writeln!(out, "array {name} @ {base};");
    }
    let nest = &program.nest;
    let _ = write!(out, "for {} in 0..{}", nest.var, nest.trip_count);
    if !nest.carried.is_empty() {
        let inits: Vec<String> = nest
            .carried
            .iter()
            .map(|c| format!("{} = {}", c.name, c.init))
            .collect();
        let _ = write!(out, " carry ({})", inits.join(", "));
    }
    let _ = writeln!(out, " {{");
    unparse_stmts(&mut out, &program.arrays, &nest.body, 1);
    out.push_str("}\n");
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn unparse_stmts(out: &mut String, arrays: &HashMap<String, u32>, stmts: &[Stmt], level: usize) {
    use std::fmt::Write as _;
    for s in stmts {
        indent(out, level);
        match s {
            Stmt::Assign(name, e) => {
                let _ = writeln!(out, "let {name} = {};", unparse_expr(arrays, e));
            }
            Stmt::Store { addr, value } => {
                // Recover `arr[idx] = v` when the address is
                // `idx + base` for a known array base; otherwise fall
                // back to an anonymous array at the literal base.
                if let Expr::Bin(Op::Add, idx, base) = addr {
                    if let Expr::Const(b) = **base {
                        if let Some((name, _)) = arrays.iter().find(|(_, v)| **v == b) {
                            let _ = writeln!(
                                out,
                                "{name}[{}] = {};",
                                unparse_expr(arrays, idx),
                                unparse_expr(arrays, value)
                            );
                            continue;
                        }
                    }
                    let _ = idx;
                }
                // No matching array: synthesize one is impossible here,
                // so print through a zero-based anonymous array access.
                let _ = writeln!(
                    out,
                    "__mem[{}] = {};",
                    unparse_expr(arrays, addr),
                    unparse_expr(arrays, value)
                );
            }
            Stmt::If {
                cond,
                then_arm,
                else_arm,
            } => {
                let _ = writeln!(out, "if ({}) {{", unparse_expr(arrays, cond));
                unparse_stmts(out, arrays, then_arm, level + 1);
                if else_arm.is_empty() {
                    indent(out, level);
                    out.push_str("}\n");
                } else {
                    indent(out, level);
                    out.push_str("} else {\n");
                    unparse_stmts(out, arrays, else_arm, level + 1);
                    indent(out, level);
                    out.push_str("}\n");
                }
            }
        }
    }
}

fn op_symbol(op: Op) -> &'static str {
    match op {
        Op::Add => "+",
        Op::Sub => "-",
        Op::Mul => "*",
        Op::And => "&",
        Op::Or => "|",
        Op::Xor => "^",
        Op::Sll => "<<",
        Op::Srl => ">>",
        Op::Eq => "==",
        Op::Ne => "!=",
        Op::Gt => ">",
        Op::Geq => ">=",
        Op::Lt => "<",
        Op::Leq => "<=",
        other => panic!("op {other} has no surface syntax"),
    }
}

fn unparse_expr(arrays: &HashMap<String, u32>, e: &Expr) -> String {
    match e {
        Expr::Var(v) => v.clone(),
        Expr::Const(c) => c.to_string(),
        Expr::Load(addr) => {
            if let Expr::Bin(Op::Add, idx, base) = &**addr {
                if let Expr::Const(b) = **base {
                    if let Some((name, _)) = arrays.iter().find(|(_, v)| **v == b) {
                        return format!("{name}[{}]", unparse_expr(arrays, idx));
                    }
                }
            }
            format!("__mem[{}]", unparse_expr(arrays, addr))
        }
        Expr::Bin(op, a, b) => format!(
            "({} {} {})",
            unparse_expr(arrays, a),
            op_symbol(*op),
            unparse_expr(arrays, b)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::lower;

    const DITHER_SRC: &str = "
        array src @ 16;
        array dst @ 96;
        for i in 0..64 carry (err = 0) {
            let out = src[i] + err;
            if (out > 127) {
                dst[i] = 255;
                err = out - 255;
            } else {
                dst[i] = 0;
                err = out;
            }
        }
    ";

    #[test]
    fn parses_dither() {
        let p = parse(DITHER_SRC).unwrap();
        assert_eq!(p.arrays["src"], 16);
        assert_eq!(p.nest.trip_count, 64);
        assert_eq!(p.nest.carried.len(), 1);
        assert_eq!(p.nest.body.len(), 2);
    }

    #[test]
    fn parsed_dither_computes_correctly() {
        use uecgra_clock::VfMode;
        use uecgra_model::{DfgSimulator, SimConfig, StopReason};

        // The textual dither must produce the same memory as the
        // hand-built kernel's reference, over the same layout (dst at
        // dither::dst_base(64) = 96).
        let k = uecgra_dfg::kernels::dither::build_with_pixels(64);
        assert_eq!(uecgra_dfg::kernels::dither::dst_base(64), 96);
        let p = parse(DITHER_SRC).unwrap();
        let lowered = lower(&p.nest).unwrap();
        let config = SimConfig {
            marker: Some(lowered.induction_phi),
            ..SimConfig::default()
        };
        let modes = vec![VfMode::Nominal; lowered.dfg.node_count()];
        let r = DfgSimulator::new(&lowered.dfg, modes, k.mem.clone(), config).run();
        assert_eq!(r.stop, StopReason::Quiesced);
        assert_eq!(r.mem, k.reference_memory());
    }

    #[test]
    fn precedence_mul_binds_tighter_than_add() {
        let p = parse("for i in 0..2 { let x = i + i * 3; }").unwrap();
        let Stmt::Assign(_, e) = &p.nest.body[0] else {
            panic!("assign expected")
        };
        // i + (i * 3)
        match e {
            Expr::Bin(Op::Add, _, rhs) => {
                assert!(matches!(**rhs, Expr::Bin(Op::Mul, _, _)));
            }
            other => panic!("wrong tree: {other:?}"),
        }
    }

    #[test]
    fn shifts_masks_and_hex() {
        let p = parse(
            "array s @ 64;
             for i in 0..4 carry (l = 0x1234) {
                 let a = (l >> 24) & 0xFF;
                 l = s[a] ^ l;
             }",
        )
        .unwrap();
        assert_eq!(p.nest.carried[0].init, 0x1234);
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse("for i in 0..4 { let x = ; }").unwrap_err();
        assert!(err.message.contains("expected expression"), "{err}");
        assert!(err.offset > 0);

        let err = parse("for i in 0..4 { dst[i] = 1; }").unwrap_err();
        assert!(err.message.contains("undeclared array"), "{err}");

        let err = parse("for i in 3..4 { }").unwrap_err();
        assert!(err.message.contains("start at 0"), "{err}");

        let err = parse("for i in 0..4 { x = ghost; }").unwrap_err();
        assert!(err.message.contains("read before definition"), "{err}");
    }

    #[test]
    fn comments_and_whitespace_are_ignored() {
        let p = parse(
            "// leading comment\n
             for i in 0..2 { // trailing\n let x = i; }",
        )
        .unwrap();
        assert_eq!(p.nest.body.len(), 1);
    }

    #[test]
    fn multiple_carried_scalars() {
        let p = parse("for i in 0..8 carry (a = 1, b = 2) { a = a + b; b = b + 1; }").unwrap();
        assert_eq!(p.nest.carried.len(), 2);
    }
}

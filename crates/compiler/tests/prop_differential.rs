//! Differential testing: for randomly generated loop programs, the
//! direct IR interpreter and the discrete-event simulation of the
//! lowered dataflow graph must produce identical memory images — the
//! lowering (including if-to-br/phi conversion and constant
//! materialization) is semantics-preserving.

use proptest::prelude::*;
use uecgra_clock::VfMode;
use uecgra_compiler::frontend::lower;
use uecgra_compiler::interp::interpret_fresh;
use uecgra_compiler::ir::{Carried, Expr, LoopNest, Stmt};
use uecgra_dfg::Op;
use uecgra_model::{DfgSimulator, SimConfig, StopReason};

include!("common/gen_loop.rs");

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lowering_matches_interpreter(
        trip in 1u32..12,
        carried in any::<bool>(),
        choices in proptest::collection::vec(any::<u32>(), 64),
        mem_seed in any::<u32>(),
    ) {
        let nest = gen_loop(trip, carried, choices);
        prop_assume!(nest.validate().is_ok());

        // Deterministic pseudo-random initial memory.
        let mut mem = vec![0u32; MEM_WORDS];
        let mut state = mem_seed | 1;
        for w in mem.iter_mut() {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            *w = state % 1000;
        }

        let expected = interpret_fresh(&nest, &mem).expect("interpreter runs");

        let lowered = lower(&nest).expect("lowering succeeds");
        let config = SimConfig {
            marker: Some(lowered.induction_phi),
            ..SimConfig::default()
        };
        let modes = vec![VfMode::Nominal; lowered.dfg.node_count()];
        let r = DfgSimulator::new(&lowered.dfg, modes, mem, config).run();
        prop_assert_eq!(r.stop, StopReason::Quiesced, "lowered graph must terminate");
        prop_assert_eq!(r.mem, expected, "lowering changed semantics");
    }

    /// The same differential under random DVFS assignments: mode
    /// choices must never change results.
    #[test]
    fn lowering_matches_interpreter_under_dvfs(
        trip in 1u32..8,
        choices in proptest::collection::vec(any::<u32>(), 64),
        mode_picks in proptest::collection::vec(0usize..3, 64),
    ) {
        let nest = gen_loop(trip, true, choices);
        prop_assume!(nest.validate().is_ok());
        let mem = vec![7u32; MEM_WORDS];
        let expected = interpret_fresh(&nest, &mem).expect("interpreter runs");

        let lowered = lower(&nest).expect("lowering succeeds");
        let modes: Vec<VfMode> = (0..lowered.dfg.node_count())
            .map(|i| VfMode::ALL[mode_picks[i % mode_picks.len()]])
            .collect();
        let config = SimConfig {
            marker: Some(lowered.induction_phi),
            ..SimConfig::default()
        };
        let r = DfgSimulator::new(&lowered.dfg, modes, mem, config).run();
        prop_assert_eq!(r.stop, StopReason::Quiesced);
        prop_assert_eq!(r.mem, expected);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The optimizer (CSE + DCE) preserves semantics end to end.
    #[test]
    fn optimizer_preserves_semantics(
        trip in 1u32..10,
        carried in any::<bool>(),
        choices in proptest::collection::vec(any::<u32>(), 64),
        mem_seed in any::<u32>(),
    ) {
        let nest = gen_loop(trip, carried, choices);
        prop_assume!(nest.validate().is_ok());
        let mut mem = vec![0u32; MEM_WORDS];
        let mut state = mem_seed | 1;
        for w in mem.iter_mut() {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            *w = state % 1000;
        }
        let expected = interpret_fresh(&nest, &mem).expect("interpreter runs");

        let lowered = lower(&nest).expect("lowering succeeds");
        let optimized = uecgra_compiler::opt::optimize(&lowered.dfg);
        prop_assert!(
            optimized.dfg.node_count() <= lowered.dfg.node_count(),
            "optimization never grows the graph"
        );
        let Some(marker) = optimized.node_map[lowered.induction_phi.index()] else {
            // The whole loop was dead (no stores reachable): legal only
            // when the program writes nothing.
            prop_assert_eq!(mem, expected, "DCE removed live effects");
            return Ok(());
        };
        let config = SimConfig {
            marker: Some(marker),
            ..SimConfig::default()
        };
        let modes = vec![VfMode::Nominal; optimized.dfg.node_count()];
        let r = DfgSimulator::new(&optimized.dfg, modes, mem, config).run();
        prop_assert_eq!(r.stop, StopReason::Quiesced);
        prop_assert_eq!(r.mem, expected, "optimizer changed semantics");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Source-text round trip: unparse then parse reproduces the loop.
    #[test]
    fn unparse_parse_roundtrip(
        trip in 1u32..20,
        carried in any::<bool>(),
        choices in proptest::collection::vec(any::<u32>(), 64),
    ) {
        use uecgra_compiler::parse::{parse, unparse, Program};
        use std::collections::HashMap;
        let nest = gen_loop(trip, carried, choices);
        prop_assume!(nest.validate().is_ok());
        let program = Program {
            arrays: HashMap::new(),
            nest,
        };
        // The generator uses raw address arithmetic (no named arrays),
        // which unparse renders through `__mem[...]`; declare it.
        let mut text = String::from("array __mem @ 0;\n");
        text.push_str(&unparse(&program));
        let reparsed = parse(&text).expect("unparsed text parses");
        // The __mem declaration rewrites loads/stores to the
        // array-at-0 form, which is address-identical: compare by
        // semantics through the interpreter.
        let mem = vec![3u32; 160];
        let a = interpret_fresh(&program.nest, &mem).expect("original runs");
        let b = interpret_fresh(&reparsed.nest, &mem).expect("reparsed runs");
        prop_assert_eq!(a, b, "round trip changed semantics");
    }
}

//! Differential testing: for randomly generated loop programs, the
//! direct IR interpreter and the discrete-event simulation of the
//! lowered dataflow graph must produce identical memory images — the
//! lowering (including if-to-br/phi conversion and constant
//! materialization) is semantics-preserving.

use uecgra_clock::VfMode;
use uecgra_compiler::frontend::lower;
use uecgra_compiler::interp::interpret_fresh;
use uecgra_compiler::ir::{Carried, Expr, LoopNest, Stmt};
use uecgra_dfg::Op;
use uecgra_model::{DfgSimulator, SimConfig, StopReason};
use uecgra_util::{check::forall, SplitMix64};

include!("common/gen_loop.rs");

fn arb_choices(rng: &mut SplitMix64) -> Vec<u32> {
    (0..64).map(|_| rng.next_u32()).collect()
}

/// Deterministic pseudo-random initial memory.
fn arb_memory(mem_seed: u32) -> Vec<u32> {
    let mut mem = vec![0u32; MEM_WORDS];
    let mut state = mem_seed | 1;
    for w in mem.iter_mut() {
        state = state.wrapping_mul(1664525).wrapping_add(1013904223);
        *w = state % 1000;
    }
    mem
}

#[test]
fn lowering_matches_interpreter() {
    forall(48, |rng| {
        let trip = 1 + rng.next_u32() % 11;
        let carried = rng.bool();
        let nest = gen_loop(trip, carried, arb_choices(rng));
        if nest.validate().is_err() {
            return;
        }
        let mem = arb_memory(rng.next_u32());

        let expected = interpret_fresh(&nest, &mem).expect("interpreter runs");

        let lowered = lower(&nest).expect("lowering succeeds");
        let config = SimConfig {
            marker: Some(lowered.induction_phi),
            ..SimConfig::default()
        };
        let modes = vec![VfMode::Nominal; lowered.dfg.node_count()];
        let r = DfgSimulator::new(&lowered.dfg, modes, mem, config).run();
        assert_eq!(r.stop, StopReason::Quiesced, "lowered graph must terminate");
        assert_eq!(r.mem, expected, "lowering changed semantics");
    });
}

/// The same differential under random DVFS assignments: mode
/// choices must never change results.
#[test]
fn lowering_matches_interpreter_under_dvfs() {
    forall(48, |rng| {
        let trip = 1 + rng.next_u32() % 7;
        let nest = gen_loop(trip, true, arb_choices(rng));
        if nest.validate().is_err() {
            return;
        }
        let mode_picks: Vec<usize> = (0..64).map(|_| rng.range(3)).collect();
        let mem = vec![7u32; MEM_WORDS];
        let expected = interpret_fresh(&nest, &mem).expect("interpreter runs");

        let lowered = lower(&nest).expect("lowering succeeds");
        let modes: Vec<VfMode> = (0..lowered.dfg.node_count())
            .map(|i| VfMode::ALL[mode_picks[i % mode_picks.len()]])
            .collect();
        let config = SimConfig {
            marker: Some(lowered.induction_phi),
            ..SimConfig::default()
        };
        let r = DfgSimulator::new(&lowered.dfg, modes, mem, config).run();
        assert_eq!(r.stop, StopReason::Quiesced);
        assert_eq!(r.mem, expected);
    });
}

/// The optimizer (CSE + DCE) preserves semantics end to end.
#[test]
fn optimizer_preserves_semantics() {
    forall(32, |rng| {
        let trip = 1 + rng.next_u32() % 9;
        let carried = rng.bool();
        let nest = gen_loop(trip, carried, arb_choices(rng));
        if nest.validate().is_err() {
            return;
        }
        let mem = arb_memory(rng.next_u32());
        let expected = interpret_fresh(&nest, &mem).expect("interpreter runs");

        let lowered = lower(&nest).expect("lowering succeeds");
        let optimized = uecgra_compiler::opt::optimize(&lowered.dfg);
        assert!(
            optimized.dfg.node_count() <= lowered.dfg.node_count(),
            "optimization never grows the graph"
        );
        let Some(marker) = optimized.node_map[lowered.induction_phi.index()] else {
            // The whole loop was dead (no stores reachable): legal only
            // when the program writes nothing.
            assert_eq!(mem, expected, "DCE removed live effects");
            return;
        };
        let config = SimConfig {
            marker: Some(marker),
            ..SimConfig::default()
        };
        let modes = vec![VfMode::Nominal; optimized.dfg.node_count()];
        let r = DfgSimulator::new(&optimized.dfg, modes, mem, config).run();
        assert_eq!(r.stop, StopReason::Quiesced);
        assert_eq!(r.mem, expected, "optimizer changed semantics");
    });
}

/// Source-text round trip: unparse then parse reproduces the loop.
#[test]
fn unparse_parse_roundtrip() {
    forall(48, |rng| {
        use std::collections::HashMap;
        use uecgra_compiler::parse::{parse, unparse, Program};
        let trip = 1 + rng.next_u32() % 19;
        let carried = rng.bool();
        let nest = gen_loop(trip, carried, arb_choices(rng));
        if nest.validate().is_err() {
            return;
        }
        let program = Program {
            arrays: HashMap::new(),
            nest,
        };
        // The generator uses raw address arithmetic (no named arrays),
        // which unparse renders through `__mem[...]`; declare it.
        let mut text = String::from("array __mem @ 0;\n");
        text.push_str(&unparse(&program));
        let reparsed = parse(&text).expect("unparsed text parses");
        // The __mem declaration rewrites loads/stores to the
        // array-at-0 form, which is address-identical: compare by
        // semantics through the interpreter.
        let mem = vec![3u32; 160];
        let a = interpret_fresh(&program.nest, &mem).expect("original runs");
        let b = interpret_fresh(&reparsed.nest, &mem).expect("reparsed runs");
        assert_eq!(a, b, "round trip changed semantics");
    });
}

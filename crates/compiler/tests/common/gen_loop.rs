const MEM_WORDS: usize = 160;
/// Loads are masked into [0, 63]. Each store *statement* gets its own
/// disjoint 8-word window above 64: dataflow imposes no order between
/// independent memory nodes, so (like the paper's compiler, which only
/// maps loops whose accesses are provably independent) the generator
/// never aliases two store statements.
const LOAD_MASK: u32 = 63;
const STORE_BASE: u32 = 64;
const STORE_MASK: u32 = 7;

#[derive(Debug, Clone)]
struct Ctx {
    vars: Vec<String>,
}

fn bin_op(idx: usize) -> Op {
    [
        Op::Add,
        Op::Sub,
        Op::Mul,
        Op::And,
        Op::Or,
        Op::Xor,
        Op::Eq,
        Op::Ne,
        Op::Gt,
        Op::Lt,
        Op::Sll,
        Op::Srl,
    ][idx % 12]
}

/// Build a depth-bounded expression from a stream of random choices.
fn gen_expr(ctx: &Ctx, choices: &[u32], pos: &mut usize, depth: usize) -> Expr {
    let mut next = || {
        let c = choices[*pos % choices.len()];
        *pos += 1;
        c
    };
    let kind = next() % if depth == 0 { 2 } else { 4 };
    match kind {
        0 => Expr::Const(next() % 300),
        1 => {
            let v = &ctx.vars[(next() as usize) % ctx.vars.len()];
            Expr::var(v)
        }
        2 => {
            // Bounded load: mem[(e & LOAD_MASK)]
            let inner = gen_expr(ctx, choices, pos, depth - 1);
            Expr::load(Expr::bin(Op::And, inner, Expr::Const(LOAD_MASK)))
        }
        _ => {
            let op = bin_op(next() as usize);
            // Shift amounts are masked by the ISA semantics, safe as-is.
            let a = gen_expr(ctx, choices, pos, depth - 1);
            let b = gen_expr(ctx, choices, pos, depth - 1);
            Expr::bin(op, a, b)
        }
    }
}

fn gen_store(ctx: &Ctx, choices: &[u32], pos: &mut usize, window: u32) -> Stmt {
    let addr_core = gen_expr(ctx, choices, pos, 1);
    let value = gen_expr(ctx, choices, pos, 2);
    Stmt::Store {
        addr: Expr::bin(
            Op::Add,
            Expr::bin(Op::And, addr_core, Expr::Const(STORE_MASK)),
            Expr::Const(STORE_BASE + window * (STORE_MASK + 1)),
        ),
        value,
    }
}

/// Build a whole random loop from a choice stream.
fn gen_loop(trip: u32, carried: bool, choices: Vec<u32>) -> LoopNest {
    let mut pos = 0usize;
    let mut ctx = Ctx {
        vars: vec!["i".to_string()],
    };
    if carried {
        ctx.vars.push("c".to_string());
    }
    let next = |pos: &mut usize| {
        let c = choices[*pos % choices.len()];
        *pos += 1;
        c
    };

    let mut body = Vec::new();
    let mut window = 0u32;
    let n_stmts = 2 + (next(&mut pos) as usize) % 4;
    for s in 0..n_stmts {
        match next(&mut pos) % 3 {
            0 => {
                let name = format!("t{s}");
                let e = gen_expr(&ctx, &choices, &mut pos, 2);
                body.push(Stmt::assign(&name, e));
                ctx.vars.push(name);
            }
            1 => {
                body.push(gen_store(&ctx, &choices, &mut pos, window));
                window += 1;
            }
            _ => {
                // Both-arm assignment keeps the variable defined on
                // every path.
                let name = format!("m{s}");
                let cond = gen_expr(&ctx, &choices, &mut pos, 1);
                let then_e = gen_expr(&ctx, &choices, &mut pos, 1);
                let else_e = gen_expr(&ctx, &choices, &mut pos, 1);
                let then_st = gen_store(&ctx, &choices, &mut pos, window);
                window += 1;
                body.push(Stmt::If {
                    cond,
                    then_arm: vec![Stmt::assign(&name, then_e), then_st],
                    else_arm: vec![Stmt::assign(&name, else_e)],
                });
                ctx.vars.push(name);
            }
        }
    }
    if carried {
        // Tie the carried update to the induction stream so the lowered
        // dataflow graph quiesces when the loop exits.
        let e = gen_expr(&ctx, &choices, &mut pos, 1);
        body.push(Stmt::assign(
            "c",
            Expr::bin(
                bin_op(next(&mut pos) as usize),
                Expr::bin(Op::Add, e, Expr::var("i")),
                Expr::var("c"),
            ),
        ));
    }

    LoopNest {
        var: "i".into(),
        trip_count: trip,
        carried: if carried {
            vec![Carried {
                name: "c".into(),
                init: next(&mut pos),
            }]
        } else {
            vec![]
        },
        body,
    }
}


//! Observer hooks the pipeline reports progress through.
//!
//! `uecgra_core::pipeline` stays allocation-free when nobody is
//! watching: a run carries an `Option<&mut dyn ProbeSink>`, and with
//! `None` the only cost is a branch per phase. Attaching a
//! [`TimingSink`] turns the callbacks into a [`PhaseTimings`] for the
//! report.

use crate::schema::PhaseTimings;

/// A pipeline phase, in execution order.
///
/// Placement and routing are one phase ([`Phase::PlaceRoute`])
/// because the mapper interleaves them in its rip-up-and-retry loop.
/// [`Phase::Parse`] and [`Phase::Lower`] only occur when a kernel
/// comes from source text (the CLI); library kernels start at
/// placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Source-text parsing.
    Parse,
    /// AST → DFG lowering and optimization.
    Lower,
    /// Placement + routing.
    PlaceRoute,
    /// Rest/nominal/sprint power mapping.
    PowerMap,
    /// Bitstream assembly.
    Assemble,
    /// Cycle-level fabric execution.
    Simulate,
}

impl Phase {
    /// Stable lowercase label (used in progress output).
    pub fn label(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::Lower => "lower",
            Phase::PlaceRoute => "place-route",
            Phase::PowerMap => "power-map",
            Phase::Assemble => "assemble",
            Phase::Simulate => "simulate",
        }
    }
}

/// Receiver for pipeline progress events.
pub trait ProbeSink {
    /// Called once per completed phase with its wall-clock duration.
    fn phase_done(&mut self, phase: Phase, nanos: u64);
}

/// A [`ProbeSink`] that accumulates durations into [`PhaseTimings`].
///
/// Durations accumulate (rather than overwrite) so a sink can be
/// reused across several runs to get totals.
#[derive(Debug, Default)]
pub struct TimingSink {
    /// The collected timings so far.
    pub timings: PhaseTimings,
}

impl TimingSink {
    /// A fresh, zeroed sink.
    pub fn new() -> TimingSink {
        TimingSink::default()
    }
}

impl ProbeSink for TimingSink {
    fn phase_done(&mut self, phase: Phase, nanos: u64) {
        let slot = match phase {
            Phase::Parse => &mut self.timings.parse_ns,
            Phase::Lower => &mut self.timings.lower_ns,
            Phase::PlaceRoute => &mut self.timings.place_route_ns,
            Phase::PowerMap => &mut self.timings.power_map_ns,
            Phase::Assemble => &mut self.timings.assemble_ns,
            Phase::Simulate => &mut self.timings.simulate_ns,
        };
        *slot += nanos;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_sink_accumulates_per_phase() {
        let mut sink = TimingSink::new();
        sink.phase_done(Phase::PlaceRoute, 10);
        sink.phase_done(Phase::Simulate, 5);
        sink.phase_done(Phase::PlaceRoute, 7);
        assert_eq!(sink.timings.place_route_ns, 17);
        assert_eq!(sink.timings.simulate_ns, 5);
        assert_eq!(sink.timings.total_ns(), 22);
    }

    #[test]
    fn phase_labels_are_stable() {
        assert_eq!(Phase::PlaceRoute.label(), "place-route");
        assert_eq!(Phase::Simulate.label(), "simulate");
    }
}
